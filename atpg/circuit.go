package atpg

import (
	"errors"
	"io"
	"math/big"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/paths"
)

// Circuit is a combinational benchmark circuit, the unit every other API in
// this package operates on.  Obtain one with [LoadBench], [ParseBench],
// [Builtin] or [Synthesize]; a Circuit is immutable and safe to share.
type Circuit struct {
	c *circuit.Circuit
}

// CircuitStats holds the structural statistics of a circuit (gate counts,
// depth, fanin/fanout extremes, per-kind gate counts).
type CircuitStats = circuit.Stats

// LoadCircuit returns the circuit selected by a built-in name or a .bench
// file path; exactly one of the two must be non-empty.  It is the common
// selection logic of the command-line tools' -circuit/-bench flag pairs.
func LoadCircuit(builtin, benchPath string) (*Circuit, error) {
	switch {
	case builtin != "" && benchPath != "":
		return nil, errors.New("atpg: specify either a built-in circuit name or a .bench file, not both")
	case builtin != "":
		return Builtin(builtin)
	case benchPath != "":
		return LoadBench(benchPath)
	default:
		return nil, errors.New("atpg: no circuit specified (want a built-in name or a .bench file)")
	}
}

// LoadBench reads an ISCAS .bench file from disk.  Sequential designs are
// converted to their combinational core: D flip-flops are removed, with DFF
// outputs becoming pseudo primary inputs and DFF data inputs pseudo primary
// outputs, exactly as in the paper's experimental setup.  Malformed input
// yields a *ParseError carrying the file and line of the problem.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBench(path, f)
}

// ParseBench reads a circuit in ISCAS .bench format from r; name is used in
// error messages and as the circuit name.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	c, err := circuit.ParseBench(name, r)
	if err != nil {
		return nil, err
	}
	return &Circuit{c: c}, nil
}

// Builtin returns one of the built-in benchmark circuits by name: the
// embedded reference circuits ("c17", "paper", "redundant"), the parametric
// families ("adder16", "parity8", "mux3", "cmp8", ...) or any profile
// stand-in of the paper's suites ("c432" ... "c7552", "s641" ... "s38584"),
// synthesized on demand.
func Builtin(name string) (*Circuit, error) {
	c, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	return &Circuit{c: c}, nil
}

// BuiltinNames lists every circuit name understood by [Builtin], with the
// parametric families shown at a default size.
func BuiltinNames() []string { return bench.Names() }

// Profile describes a synthetic benchmark circuit: structural statistics
// (inputs, outputs, gates, depth) that [Synthesize] turns into a concrete
// netlist.  The built-in profiles mirror the ISCAS85/89 suites the paper
// evaluates on.
type Profile = bench.Profile

// Profiles returns every built-in circuit profile (the ISCAS85- and
// ISCAS89-class suites of the paper's tables).
func Profiles() []Profile { return bench.Profiles() }

// ProfileByName looks up a built-in profile by circuit name.
func ProfileByName(name string) (Profile, bool) { return bench.ProfileByName(name) }

// Synthesize materializes a profile (built-in or custom) as a circuit.
func Synthesize(p Profile) (*Circuit, error) {
	c, err := bench.Synthesize(p)
	if err != nil {
		return nil, err
	}
	return &Circuit{c: c}, nil
}

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.c.Name }

// String renders a one-line summary (name, inputs, outputs, gates, depth).
func (c *Circuit) String() string { return c.c.String() }

// Stats computes the structural statistics of the circuit.
func (c *Circuit) Stats() CircuitStats { return c.c.Stats() }

// NumInputs returns the number of primary inputs (including pseudo inputs
// standing in for removed flip-flops); test vectors carry one value per
// input, in [Circuit.InputNames] order.
func (c *Circuit) NumInputs() int { return len(c.c.Inputs()) }

// InputNames returns the primary input names in vector order.
func (c *Circuit) InputNames() []string {
	ins := c.c.Inputs()
	names := make([]string, len(ins))
	for i, in := range ins {
		names[i] = c.c.NetName(in)
	}
	return names
}

// WriteBench writes the circuit in ISCAS .bench format.
func (c *Circuit) WriteBench(w io.Writer) error { return circuit.WriteBench(w, c.c) }

// PathCount returns the exact number of structural paths of the circuit.
// Path counts grow exponentially with depth, hence the big.Int.
func (c *Circuit) PathCount() *big.Int { return paths.CountPaths(c.c) }

// FaultCount returns the exact number of path delay faults (two per
// structural path, one rising and one falling).
func (c *Circuit) FaultCount() *big.Int { return paths.CountFaults(c.c) }

// NetPaths reports how many structural paths run through one net.
type NetPaths struct {
	Name  string
	Paths *big.Int
}

// BusiestNets returns the n nets carrying the most structural paths, most
// loaded first — the hot spots of path delay testing.  n <= 0 yields nil.
func (c *Circuit) BusiestNets(n int) []NetPaths {
	if n <= 0 {
		return nil
	}
	through := paths.PathsThrough(c.c)
	ids := make([]circuit.NetID, c.c.NumNets())
	for i := range ids {
		ids[i] = circuit.NetID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return through[ids[i]].Cmp(through[ids[j]]) > 0 })
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]NetPaths, n)
	for i := 0; i < n; i++ {
		out[i] = NetPaths{Name: c.c.NetName(ids[i]), Paths: through[ids[i]]}
	}
	return out
}

// Describe renders a fault with the circuit's net names, e.g.
// "b - p - x (rising at b)".
func (c *Circuit) Describe(f Fault) string { return f.Describe(c.c) }
