package atpg

import (
	"context"
	"errors"
	"testing"
)

// TestScheduleOptionValidation pins the WithSchedule / WithEscalation /
// WithFirstPassBudget contracts.
func TestScheduleOptionValidation(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, WithSchedule(Schedule(42))); err == nil {
		t.Error("New(WithSchedule(42)): expected an error")
	}
	if _, err := New(c, WithEscalation(-1)); !errors.Is(err, ErrBadWidth) {
		t.Errorf("New(WithEscalation(-1)): got %v, want ErrBadWidth", err)
	}
	if _, err := New(c, WithEscalation(MaxWordWidth+1)); !errors.Is(err, ErrBadWidth) {
		t.Errorf("New(WithEscalation(%d)): got %v, want ErrBadWidth", MaxWordWidth+1, err)
	}
	if _, err := New(c, WithFirstPassBudget(0)); err == nil {
		t.Error("New(WithFirstPassBudget(0)): expected an error")
	}
	if _, err := New(c, WithSchedule(ScheduleSteal), WithEscalation(8), WithFirstPassBudget(2)); err != nil {
		t.Errorf("valid schedule options rejected: %v", err)
	}

	for _, tc := range []struct {
		in   string
		want Schedule
		ok   bool
	}{
		{"static", ScheduleStatic, true},
		{"steal", ScheduleSteal, true},
		{"roundrobin", ScheduleStatic, false},
	} {
		got, err := ParseSchedule(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSchedule(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestStealEscalationMatchesDefault checks at the facade level that the
// dispatch dimensions do not change the engine's outcome: a work-stealing
// 4-worker adaptive run covers and aborts exactly the same faults as the
// plain sequential engine with the same escalation setting, and the
// escalation counters add up.
func TestStealEscalationMatchesDefault(t *testing.T) {
	c, err := Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 128, 1995)

	seq, err := New(c, WithInterleavedSim(0), WithEscalation(16))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	par, err := New(c, WithInterleavedSim(0), WithEscalation(16),
		WithWorkers(4), WithSchedule(ScheduleSteal))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Status != want[i].Status {
			t.Errorf("fault %s: steal/4-worker run says %v, sequential says %v",
				got[i].Fault.Key(), got[i].Status, want[i].Status)
		}
	}
	ss, sp := seq.Stats(), par.Stats()
	if sp.FirstPassSettled != ss.FirstPassSettled || sp.Escalated != ss.Escalated {
		t.Errorf("escalation counters differ: steal %d/%d, sequential %d/%d",
			sp.FirstPassSettled, sp.Escalated, ss.FirstPassSettled, ss.Escalated)
	}
	if sp.FirstPassSettled+sp.Escalated != sp.Faults {
		t.Errorf("first-pass %d + escalated %d != faults %d",
			sp.FirstPassSettled, sp.Escalated, sp.Faults)
	}
	if sp.Sched.Units == 0 {
		t.Error("scheduler stats not recorded")
	}
}
