// The repository-level benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results).  They live in the atpg
// package directory because the public facade is the layer they exercise.
//
// The benchmarks run the same harness code as cmd/experiments, but on
// scaled-down circuit stand-ins and smaller fault samples so that
// `go test -bench=. ./atpg` completes in minutes.  Full-size runs are
// produced with `go run ./cmd/experiments -all`.
package atpg_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/atpg"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/paths"
	"repro/internal/sensitize"
	"repro/internal/testability"
)

// benchConfig is the scaled-down configuration used by the table benchmarks.
func benchConfig(mode sensitize.Mode) harness.Config {
	cfg := harness.QuickConfig(mode)
	cfg.Scale = 0.10
	cfg.FaultsPerCircuit = 32
	return cfg
}

// BenchmarkTable3RobustISCAS85 regenerates Table 3: robust ATPG over the
// ISCAS85-class suite (#faults, #tested, efficiency, time per circuit).
func BenchmarkTable3RobustISCAS85(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable3(benchConfig(sensitize.Robust))
		if len(rows) != 9 {
			b.Fatalf("expected 9 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable4NonrobustISCAS85 regenerates Table 4: nonrobust ATPG over
// the ISCAS85-class suite.
func BenchmarkTable4NonrobustISCAS85(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable4(benchConfig(sensitize.Nonrobust))
		if len(rows) != 9 {
			b.Fatalf("expected 9 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable5RobustSpeedup regenerates Table 5: bit-parallel versus
// single-bit robust generation on the ISCAS89-class suite (t_sens, t_single,
// t_parallel, speed-up).
func BenchmarkTable5RobustSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable5(benchConfig(sensitize.Robust))
		if len(rows) != 11 {
			b.Fatalf("expected 11 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable6NonrobustSpeedup regenerates Table 6: the nonrobust
// counterpart of Table 5.
func BenchmarkTable6NonrobustSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable6(benchConfig(sensitize.Nonrobust))
		if len(rows) != 11 {
			b.Fatalf("expected 11 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable7NonrobustComparison regenerates Table 7: the bit-parallel
// generator against the conventional structural baseline, nonrobust, L=32.
func BenchmarkTable7NonrobustComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable7(benchConfig(sensitize.Nonrobust))
		if len(rows) != 10 {
			b.Fatalf("expected 10 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable8RobustComparison regenerates Table 8: the robust
// counterpart of Table 7.
func BenchmarkTable8RobustComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable8(benchConfig(sensitize.Robust))
		if len(rows) != 10 {
			b.Fatalf("expected 10 rows, got %d", len(rows))
		}
	}
}

// BenchmarkRun measures the multi-core scheduler-driven engine on the
// largest builtin circuit (the c7552-class profile): the same 128-fault
// robust run sharded across 1, 2, 4 and 8 workers (static dispatch), plus
// the work-stealing variant at 4 workers.  On a multi-core machine the
// wall-clock time should drop roughly with the worker count until the
// scheduler runs out of units; on a single core the worker counts tie,
// which is the overhead check.
func BenchmarkRun(b *testing.B) {
	c, err := atpg.Builtin("c7552")
	if err != nil {
		b.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 128, 1995)
	run := func(b *testing.B, opts ...atpg.Option) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			e, err := atpg.New(c, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(context.Background(), faults); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, atpg.WithWorkers(workers))
		})
	}
	b.Run("schedule=steal", func(b *testing.B) {
		run(b, atpg.WithWorkers(4), atpg.WithSchedule(atpg.ScheduleSteal))
	})
	// Testability-guided routing with the auto-derived escalation width.
	// The reported skiprate metric — the fraction of faults the hardness
	// prediction routed past the cheap first pass — is gated by CI through
	// tools/benchcmp -min-metric: a refactor that silently stops predicting
	// anything hard turns guidance into dead weight and fails the gate.
	b.Run("guided", func(b *testing.B) {
		skip := 0.0
		for i := 0; i < b.N; i++ {
			e, err := atpg.New(c, atpg.WithWorkers(4), atpg.WithGuidedEscalation(true))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(context.Background(), faults); err != nil {
				b.Fatal(err)
			}
			skip = e.Stats().SkipRate()
		}
		b.ReportMetric(skip, "skiprate")
	})
}

// BenchmarkGrouping measures the width economics on the c7552 easy-fault
// reference sample (the run behind the README Performance table): fixed
// full-width groups, the fault-serial L=1 baseline that beat them once the
// incremental implication core made single-fault implications cheap, and
// two-pass adaptive escalation, which should reclaim the best of both —
// near-L=1 cost on the easy bulk, word-parallel sharing on the hard tail.
func BenchmarkGrouping(b *testing.B) {
	c, err := atpg.Builtin("c7552")
	if err != nil {
		b.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 128, 1995)
	for _, v := range []struct {
		name string
		opts []atpg.Option
	}{
		{"fixed=64", nil},
		{"serial=1", []atpg.Option{atpg.WithWordWidth(1), atpg.WithInterleavedSim(1)}},
		{"adaptive=8", []atpg.Option{atpg.WithEscalation(8)}},
		{"adaptive=64", []atpg.Option{atpg.WithEscalation(atpg.DefaultWordWidth)}},
		{"guided=auto", []atpg.Option{atpg.WithGuidedEscalation(true)}},
		{"guided=64", []atpg.Option{atpg.WithEscalation(atpg.DefaultWordWidth), atpg.WithGuidedEscalation(true)}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := atpg.New(c, v.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(context.Background(), faults); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupingWide measures the multi-word width economics on a
// hard-fault reference: the c7552 sample is scored with the circuit's
// testability measures and only the hardest quarter is kept, so the run is
// dominated by faults whose searches are expensive enough to pay for
// word-parallel sharing.  This is the decision benchmark for the L>64 plane
// vectors: on this population L=128 and L=256 beat fixed L=64 in ns/op by a
// few percent, and L=512 is near break-even (on the easy-bulk
// BenchmarkGrouping sample above the wide widths lose; see the README
// Performance notes).
func BenchmarkGroupingWide(b *testing.B) {
	c, err := bench.Get("c7552")
	if err != nil {
		b.Fatal(err)
	}
	sample := paths.SampleFaults(c, 1024, 1995)
	tm := testability.For(c)
	sort.SliceStable(sample, func(i, j int) bool {
		return tm.FaultScore(c, sample[i], sensitize.Robust) > tm.FaultScore(c, sample[j], sensitize.Robust)
	})
	faults := sample[:256]
	for _, width := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("fixed=%d", width), func(b *testing.B) {
			opts := core.DefaultOptions(sensitize.Robust)
			opts.WordWidth = width
			opts.FaultSimInterval = width
			for i := 0; i < b.N; i++ {
				core.New(c, opts).Run(context.Background(), faults)
			}
		})
	}
}

// BenchmarkCompactionReduction measures the full static compaction pass on a
// c7552 sharded run and reports the achieved size reduction as a custom
// "reduction" metric (0..1), which the CI bench gate tracks alongside ns/op
// (tools/benchcmp -min-metric).
func BenchmarkCompactionReduction(b *testing.B) {
	c, err := atpg.Builtin("c7552")
	if err != nil {
		b.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 128, 1995)
	reduction := 0.0
	for i := 0; i < b.N; i++ {
		e, err := atpg.New(c, atpg.WithWorkers(4), atpg.WithCompaction(atpg.CompactFull))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(context.Background(), faults); err != nil {
			b.Fatal(err)
		}
		reduction = e.Stats().Compaction.Reduction()
	}
	b.ReportMetric(reduction, "reduction")
}

// figure1Faults returns the four faults processed fault-parallel in the
// Figure 1 walk-through of the paper.
func figure1Faults(c *circuit.Circuit) []paths.Fault {
	byName := func(names ...string) paths.Path {
		nets := make([]circuit.NetID, len(names))
		for i, n := range names {
			nets[i] = c.NetByName(n)
		}
		return paths.Path{Nets: nets}
	}
	return []paths.Fault{
		{Path: byName("b", "p", "x"), Transition: paths.Rising},
		{Path: byName("b", "q", "s", "x"), Transition: paths.Rising},
		{Path: byName("c", "r", "s", "x"), Transition: paths.Rising},
		{Path: byName("c", "r", "s", "y"), Transition: paths.Rising},
	}
}

// BenchmarkFigure1FPTPG regenerates the Figure 1 experiment: four paths of
// the example circuit handled simultaneously by fault-parallel generation.
func BenchmarkFigure1FPTPG(b *testing.B) {
	c := bench.PaperExample()
	faults := figure1Faults(c)
	opts := core.DefaultOptions(sensitize.Nonrobust)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.New(c, opts)
		g.Run(context.Background(), faults)
	}
}

// BenchmarkFigure2APTPG regenerates the Figure 2 experiment: path a-p-x with
// a falling transition handled by alternative-parallel generation alone.
func BenchmarkFigure2APTPG(b *testing.B) {
	c := bench.PaperExample()
	f := paths.Fault{
		Path:       paths.Path{Nets: []circuit.NetID{c.NetByName("a"), c.NetByName("p"), c.NetByName("x")}},
		Transition: paths.Falling,
	}
	opts := core.DefaultOptions(sensitize.Nonrobust)
	opts.UseFPTPG = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.New(c, opts)
		g.Run(context.Background(), []paths.Fault{f})
	}
}

// BenchmarkAblationWordWidth sweeps the word width L (the paper's central
// parameter) on the s1423-class circuit.
func BenchmarkAblationWordWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunWordWidthAblation(benchConfig(sensitize.Nonrobust), []int{1, 8, 32, 64, 128, 512})
		if len(rows) != 6 {
			b.Fatalf("expected 6 rows, got %d", len(rows))
		}
	}
}

// BenchmarkAblationModes compares FPTPG-only, APTPG-only and the combined
// generator (Section 3.3 of the paper).
func BenchmarkAblationModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunModeAblation(benchConfig(sensitize.Nonrobust))
		if len(rows) != 3 {
			b.Fatalf("expected 3 rows, got %d", len(rows))
		}
	}
}

// BenchmarkAblationFaultSim compares generation with and without the
// interleaved fault simulation after every L patterns.
func BenchmarkAblationFaultSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunFaultSimAblation(benchConfig(sensitize.Nonrobust))
		if len(rows) != 2 {
			b.Fatalf("expected 2 rows, got %d", len(rows))
		}
	}
}

// BenchmarkAblationLogicWidth compares the cost of robust (seven-valued,
// four planes) against nonrobust (three-valued, two planes effectively)
// generation on the same circuit and fault list — the price of the Table 2
// encoding relative to the Table 1 encoding at the whole-generator level.
func BenchmarkAblationLogicWidth(b *testing.B) {
	p, _ := bench.ProfileByName("s713")
	c := bench.MustSynthesize(p.Scaled(0.25))
	faults := paths.SampleFaults(c, 64, 3)
	b.Run("robust", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(c, core.DefaultOptions(sensitize.Robust)).Run(context.Background(), faults)
		}
	})
	b.Run("nonrobust", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(c, core.DefaultOptions(sensitize.Nonrobust)).Run(context.Background(), faults)
		}
	})
}

// BenchmarkSpeedupHeadline measures the single-number headline of the paper
// (Section 5: "a speedup of up to nine ... average acceleration is about
// five") on one mid-size circuit: the ratio is reported by
// cmd/experiments -summary; this benchmark just times the parallel side.
func BenchmarkSpeedupHeadline(b *testing.B) {
	p, _ := bench.ProfileByName("s713")
	c := bench.MustSynthesize(p)
	faults := paths.SampleFaults(c, 128, 5)
	b.Run("bit-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(c, core.DefaultOptions(sensitize.Robust)).Run(context.Background(), faults)
		}
	})
	b.Run("single-bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(c, core.SingleBitOptions(sensitize.Robust)).Run(context.Background(), faults)
		}
	})
}
