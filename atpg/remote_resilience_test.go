package atpg

// Resilience tests for the remote facade.  These live inside the package so
// they can shrink cancelTimeout; the happy-path equivalence tests are in
// remote_test.go (package atpg_test).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// faultingProxy fronts a coordinator handler and misbehaves on demand: it
// severs the first severEvents long-poll responses mid-body (headers sent,
// connection slammed shut) and stalls DELETEs by delayCancel.  It also
// counts job submissions and cancels, so tests can prove a reconnecting
// client never re-submits.
type faultingProxy struct {
	inner       http.Handler
	delayCancel time.Duration

	mu          sync.Mutex
	severEvents int
	posts       int
	cancels     int
}

func (p *faultingProxy) counts() (posts, cancels, severLeft int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.posts, p.cancels, p.severEvents
}

// statusRecorder captures the handler's status code so the proxy can tell
// an accepted submission from the hash-first 409 handshake.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (p *faultingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == service.API+"/jobs" {
		// Only count accepted submissions: the content-addressed handshake
		// legitimately POSTs twice (hash-only probe, 409, bench upload).
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		p.inner.ServeHTTP(rec, r)
		if rec.code < 300 {
			p.mu.Lock()
			p.posts++
			p.mu.Unlock()
		}
		return
	}
	if r.Method == http.MethodDelete {
		p.mu.Lock()
		p.cancels++
		p.mu.Unlock()
		if p.delayCancel > 0 {
			// Stall until the client gives up; return as soon as it hangs
			// up so server shutdown is not held hostage too.
			select {
			case <-time.After(p.delayCancel):
			case <-r.Context().Done():
				return
			}
		}
	}
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/events") {
		p.mu.Lock()
		sever := p.severEvents > 0
		if sever {
			p.severEvents--
		}
		p.mu.Unlock()
		if sever {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			// A believable mid-flight failure: status and headers arrive,
			// the body dies short of the declared length.
			_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"events\":["))
			_ = conn.Close()
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

// startProxiedService runs a coordinator behind proxy with n workers.
func startProxiedService(t *testing.T, proxy *faultingProxy, n int) string {
	t.Helper()
	co, err := service.NewCoordinator(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxy.inner = co
	srv := httptest.NewServer(proxy)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wk := service.NewWorker(service.WorkerConfig{
			Coordinator: srv.URL,
			ID:          "w" + string(rune('1'+i)),
			Poll:        10 * time.Millisecond,
			JobPoll:     50 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wk.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		srv.Close()
		co.Close()
	})
	return srv.URL
}

// TestRemoteEventsReconnect severs six consecutive event long-polls — enough
// to exhaust the client's per-call retry budget and force followEvents'
// reconnect layer — and demands the run still complete on the SAME job: one
// submission, every fault settling exactly once through the progress
// callback, statuses bit-identical to a local run.
func TestRemoteEventsReconnect(t *testing.T) {
	c, err := Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 48, 1995)

	local, err := New(c, WithInterleavedSim(0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	proxy := &faultingProxy{severEvents: 6}
	url := startProxiedService(t, proxy, 1)
	var progressed int
	remote, err := New(c, WithInterleavedSim(0), WithRemote(url),
		WithProgress(func(Result) { progressed++ }))
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	posts, _, severLeft := proxy.counts()
	if severLeft != 0 {
		t.Fatalf("only %d of 6 severed long-polls were consumed", 6-severLeft)
	}
	if posts != 1 {
		t.Fatalf("job submitted %d times across reconnects, want exactly 1", posts)
	}
	if progressed != len(faults) {
		t.Errorf("progress ran %d times across reconnects, want %d (no loss, no replay)",
			progressed, len(faults))
	}
	if len(got) != len(want) {
		t.Fatalf("remote returned %d results, local %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status {
			t.Errorf("fault %d: remote status %v after reconnects, local %v",
				i, got[i].Status, want[i].Status)
		}
	}
}

// TestRemoteCancelDeleteTimesOut covers the branch where cancellation
// propagation itself hangs: the DELETE stalls past cancelTimeout.  The
// caller must still get ErrCanceled promptly — a wedged coordinator cannot
// hold the local engine hostage.
func TestRemoteCancelDeleteTimesOut(t *testing.T) {
	c, err := Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 16, 1995)

	saved := cancelTimeout
	cancelTimeout = 50 * time.Millisecond
	defer func() { cancelTimeout = saved }()

	// No workers: the job can never finish, so Run blocks in Wait until the
	// context dies.  The DELETE then stalls far past cancelTimeout.
	proxy := &faultingProxy{delayCancel: 5 * time.Second}
	url := startProxiedService(t, proxy, 0)
	e, err := New(c, WithInterleavedSim(0), WithRemote(url))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.Run(ctx, faults)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run = %v, want ErrCanceled", err)
	}
	if _, cancels, _ := proxy.counts(); cancels == 0 {
		t.Fatal("cancellation was never propagated to the coordinator")
	}
	// The DELETE sleeps 5s; returning well under that proves the
	// self-deadlined context cut it loose.
	if elapsed > 3*time.Second {
		t.Fatalf("Run took %v to return after cancel; cancelTimeout did not bound the DELETE", elapsed)
	}
}
