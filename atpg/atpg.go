package atpg

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/core"
	"repro/internal/pattern"
)

// Status is the final classification of a target fault.
type Status = core.Status

// The fault classifications.
const (
	// Pending: not yet processed.  Run and Stream never return Pending
	// results (canceled faults come back Aborted with Err set); the value
	// exists as the zero status.
	Pending = core.Pending
	// Tested: a two-vector test was generated for the fault.
	Tested = core.Tested
	// Redundant: the fault was proved untestable in the selected class.
	Redundant = core.Redundant
	// Aborted: the generator gave up within its limits (or was canceled;
	// then the result's Err field carries the cause).
	Aborted = core.Aborted
	// DetectedBySim: dropped because another fault's test already detects
	// it, found by the interleaved fault simulation.
	DetectedBySim = core.DetectedBySim
)

// Phase identifies which part of the generator settled a fault.
type Phase = core.Phase

// The generator phases.
const (
	PhaseNone       = core.PhaseNone
	PhaseFPTPG      = core.PhaseFPTPG
	PhaseAPTPG      = core.PhaseAPTPG
	PhaseSimulation = core.PhaseSimulation
	PhasePruning    = core.PhasePruning
)

// Result is the outcome for one target fault: its classification, the phase
// that settled it, the generated test (when Status == Tested), the index of
// the detecting pattern in the engine's test set, and the search effort
// spent.
type Result = core.FaultResult

// TestPair is a two-vector test: the initialization vector V1 followed by
// the propagation vector V2, one value per primary input.
type TestPair = pattern.Pair

// TestSet is an ordered collection of test pairs with the fault each pair
// was generated for; it can be written to and re-read from a simple text
// format (Write/Read, see also [LoadTests]).
type TestSet = pattern.Set

// Stats aggregates a generator run: per-classification fault counts, pattern
// and search-effort counters, and the sensitization/generation time split
// reported in Tables 5 and 6.
type Stats = core.Stats

// Coverage summarizes how well the generated test set covers the targeted
// faults.
type Coverage struct {
	// Faults is the number of faults targeted so far.
	Faults int
	// Detected counts faults covered by the test set: tested directly or
	// detected by the interleaved simulation.
	Detected int
	// Redundant counts faults proved untestable.
	Redundant int
	// Aborted counts faults given up on.
	Aborted int
	// Patterns is the size of the engine's test set — after compaction when
	// the engine was built with [WithCompaction], so it can be smaller than
	// Stats.Patterns, the number of patterns generated.
	Patterns int
}

// Fraction returns the covered fraction of the targeted faults (0..1).
func (c Coverage) Fraction() float64 {
	if c.Faults == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Faults)
}

// Efficiency returns the paper's fault efficiency metric,
// (1 - aborted/faults) * 100%.
func (c Coverage) Efficiency() float64 {
	if c.Faults == 0 {
		return 100
	}
	return (1 - float64(c.Aborted)/float64(c.Faults)) * 100
}

// Engine is the bit-parallel path delay fault test pattern generator, bound
// to one circuit and one configuration.  Run and Stream may be called
// several times; the test set, statistics and learned redundant subpaths
// accumulate across calls.  With [WithWorkers] the engine parallelizes each
// run internally, but an Engine is still not safe for concurrent use by
// multiple goroutines.
type Engine struct {
	circuit  *Circuit
	gen      *core.Generator
	workers  int
	progress func(Result)
	// remote, when non-empty, routes Run and Stream to an ATPG service
	// coordinator at this base URL (see WithRemote).
	remote string
}

// New builds an engine for the circuit.  Without options it generates
// robust tests at the full word width with both FPTPG and APTPG enabled and
// fault simulation after every L patterns, the configuration of the paper's
// main experiments.  Invalid options fail construction (e.g. ErrBadWidth
// for an out-of-range WithWordWidth).
func New(c *Circuit, opts ...Option) (*Engine, error) {
	if c == nil || c.c == nil {
		return nil, ErrNilCircuit
	}
	cfg := engineConfig{opts: core.DefaultOptions(Robust)}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.simInterval != nil {
		cfg.opts.FaultSimInterval = *cfg.simInterval
	} else {
		cfg.opts.FaultSimInterval = cfg.opts.WordWidth
	}
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	if cfg.remote != "" && cfg.xfillSet {
		return nil, fmt.Errorf("%w: WithXFill installs an opaque filler the coordinator cannot deserialize", ErrRemoteOption)
	}
	return &Engine{
		circuit:  c,
		gen:      core.New(c.c, cfg.opts),
		workers:  workers,
		progress: cfg.progress,
		remote:   cfg.remote,
	}, nil
}

// Circuit returns the circuit the engine generates tests for.
func (e *Engine) Circuit() *Circuit { return e.circuit }

// Mode returns the test class the engine generates.
func (e *Engine) Mode() Mode { return e.gen.Options().Mode }

// WordWidth returns the number of bit levels L the engine exploits.
func (e *Engine) WordWidth() int { return e.gen.Options().WordWidth }

// Workers returns the number of worker goroutines each run is sharded
// across (1 = the sequential generator).
func (e *Engine) Workers() int { return e.workers }

// Run generates tests for the given faults and returns one result per
// fault, in input order (the order is deterministic regardless of the
// worker count).  It honors ctx: on cancellation or deadline expiry the run
// stops early, the error matches ErrCanceled (and wraps the context cause),
// and every fault that had not settled is returned as Aborted with the
// cause in its Err field.  An empty fault list yields ErrNoFaults.
func (e *Engine) Run(ctx context.Context, faults []Fault) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(faults) == 0 {
		return nil, ErrNoFaults
	}
	if e.remote != "" {
		return e.runRemote(ctx, faults)
	}
	e.gen.OnSettle = e.progress
	defer func() { e.gen.OnSettle = nil }()
	results := core.RunSharded(ctx, e.gen, faults, e.workers)
	if ctx.Err() != nil {
		return results, fmt.Errorf("%w after %d of %d faults: %w",
			ErrCanceled, settledCount(results), len(faults), context.Cause(ctx))
	}
	return results, nil
}

// Stream generates tests for the given faults and yields each fault's
// result as soon as its classification is final — generally not in input
// order: redundant and easy faults settle first, simulation-detected ones
// whenever a new pattern covers them, and with several workers the shards
// interleave.  Callers can stop consuming at any time (break), which
// cancels the rest of the generation; cancelling ctx has the same effect.
// After the stream ends, [Engine.Coverage] and [Engine.Tests] reflect
// everything generated.
//
// The yield function always runs on the consumer's goroutine: in a parallel
// engine the worker goroutines hand their settled results over a channel,
// so ranging over the stream needs no synchronization.  One caveat of
// parallel streams: the PatternIndex of a streamed result is worker-local
// (or -1 for cross-shard simulation drops); indices into the merged test
// set are only available from [Engine.Run].  Similarly, with
// [WithCompaction] the results stream as faults settle — before the
// compaction pass runs — so streamed indices refer to the uncompacted set;
// after the stream ends, [Engine.Tests] returns the compacted set.
func (e *Engine) Stream(ctx context.Context, faults []Fault) iter.Seq[Result] {
	return func(yield func(Result) bool) {
		if len(faults) == 0 {
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		if e.remote != "" {
			e.streamRemote(ctx, faults)(yield)
			return
		}
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		defer func() { e.gen.OnSettle = nil }()

		if e.workers <= 1 || len(faults) <= 1 {
			stopped := false
			e.gen.OnSettle = func(r Result) {
				if e.progress != nil {
					e.progress(r)
				}
				if stopped {
					return
				}
				if !yield(r) {
					stopped = true
					cancel()
				}
			}
			// Through RunSharded rather than Run directly so the run-level
			// passes (static compaction of the fresh patterns) apply to
			// sequential streams too.
			core.RunSharded(runCtx, e.gen, faults, 1)
			return
		}

		// Parallel run: workers settle faults on their own goroutines.  Every
		// fault settles exactly once, so a buffer of len(faults) lets workers
		// publish without ever blocking; the consumer drains on its own
		// goroutine.  After an early break the channel is drained to
		// completion so the engine's accumulated state is final (and the
		// master generator idle) by the time the stream returns.
		ch := make(chan Result, len(faults))
		e.gen.OnSettle = func(r Result) {
			if e.progress != nil {
				e.progress(r)
			}
			ch <- r
		}
		go func() {
			core.RunSharded(runCtx, e.gen, faults, e.workers)
			close(ch)
		}()
		for r := range ch {
			if !yield(r) {
				cancel()
				for range ch {
				}
				return
			}
		}
	}
}

// Tests returns the test set generated so far (accumulated across runs).
func (e *Engine) Tests() *TestSet { return e.gen.TestSet() }

// Stats returns the accumulated generator statistics.
func (e *Engine) Stats() Stats { return e.gen.Stats() }

// Coverage summarizes the accumulated runs.
func (e *Engine) Coverage() Coverage {
	st := e.gen.Stats()
	return Coverage{
		Faults:    st.Faults,
		Detected:  st.Tested + st.DetectedBySim,
		Redundant: st.Redundant,
		Aborted:   st.Aborted,
		Patterns:  e.gen.TestSet().Len(),
	}
}

// settledCount counts the faults that reached a real classification (i.e.
// were not cut short by cancellation).
func settledCount(results []Result) int {
	n := 0
	for i := range results {
		if results[i].Status != Pending && results[i].Err == nil {
			n++
		}
	}
	return n
}
