package atpg_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/atpg"
	"repro/internal/service"
)

// startService spins up a coordinator behind a real HTTP listener plus n
// service workers polling it, and returns the base URL.  Cleanup stops the
// workers before the server so their final polls cannot race a dead socket.
func startService(t *testing.T, n int) string {
	t.Helper()
	co, err := service.NewCoordinator(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wk := service.NewWorker(service.WorkerConfig{
			Coordinator: srv.URL,
			ID:          "w" + string(rune('1'+i)),
			Poll:        10 * time.Millisecond,
			JobPoll:     50 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wk.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		srv.Close()
		co.Close()
	})
	return srv.URL
}

// remoteOptions is the shared option set of the equivalence tests: work
// stealing and escalation exercise the full scheduling surface, simulation
// off arms the exact determinism contract, compaction exercises the merge
// pipeline end to end.
func remoteOptions(extra ...atpg.Option) []atpg.Option {
	return append([]atpg.Option{
		atpg.WithSchedule(atpg.ScheduleSteal),
		atpg.WithEscalation(8),
		atpg.WithInterleavedSim(0),
		atpg.WithCompaction(atpg.CompactReverse),
	}, extra...)
}

// TestRemoteRunMatchesLocal is the facade half of the service determinism
// contract: Engine.Run through WithRemote — two workers over real HTTP —
// must return bit-identical statuses and pattern indices, a byte-identical
// test set and equal coverage versus a local two-worker engine with the
// same options.
func TestRemoteRunMatchesLocal(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 96, 1995)

	local, err := atpg.New(c, remoteOptions(atpg.WithWorkers(2))...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	url := startService(t, 2)
	var progressed int
	remote, err := atpg.New(c, remoteOptions(
		atpg.WithRemote(url),
		atpg.WithProgress(func(atpg.Result) { progressed++ }),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("remote returned %d results, local %d", len(got), len(want))
	}
	for i := range want {
		if gd, wd := c.Describe(got[i].Fault), c.Describe(want[i].Fault); gd != wd {
			t.Errorf("result %d: remote fault %s, local %s", i, gd, wd)
		}
		if got[i].Status != want[i].Status {
			t.Errorf("fault %d: remote status %v, local %v", i, got[i].Status, want[i].Status)
		}
		if got[i].PatternIndex != want[i].PatternIndex {
			t.Errorf("fault %d: remote pattern index %d, local %d",
				i, got[i].PatternIndex, want[i].PatternIndex)
		}
	}
	var localSet, remoteSet bytes.Buffer
	if err := local.Tests().Write(&localSet); err != nil {
		t.Fatal(err)
	}
	if err := remote.Tests().Write(&remoteSet); err != nil {
		t.Fatal(err)
	}
	if localSet.String() != remoteSet.String() {
		t.Errorf("merged test sets differ: remote %d bytes, local %d bytes",
			remoteSet.Len(), localSet.Len())
	}
	if lc, rc := local.Coverage(), remote.Coverage(); lc != rc {
		t.Errorf("coverage differs: remote %+v, local %+v", rc, lc)
	}
	if progressed != len(faults) {
		t.Errorf("progress callback ran %d times, want %d", progressed, len(faults))
	}
}

// TestRemoteStream checks the streamed path: every fault settles exactly
// once on the event feed, and after the stream ends the engine holds the
// imported test set and coverage.
func TestRemoteStream(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 48, 1995)
	url := startService(t, 2)
	e, err := atpg.New(c, remoteOptions(atpg.WithRemote(url))...)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for r := range e.Stream(context.Background(), faults) {
		seen[c.Describe(r.Fault)]++
		if r.Status == atpg.Pending {
			t.Errorf("fault %s streamed as pending", c.Describe(r.Fault))
		}
	}
	if len(seen) != len(faults) {
		t.Fatalf("streamed %d distinct faults, want %d", len(seen), len(faults))
	}
	for f, n := range seen {
		if n != 1 {
			t.Errorf("fault %s streamed %d times", f, n)
		}
	}
	if cov := e.Coverage(); cov.Faults != len(faults) {
		t.Errorf("coverage tracks %d faults after stream, want %d", cov.Faults, len(faults))
	}
	if e.Tests().Len() == 0 {
		t.Error("no test set imported after complete stream")
	}
}

// TestRemoteStreamBreak: breaking out of a remote stream must return
// promptly (it cancels the job on the coordinator) and not wedge the
// worker fleet.
func TestRemoteStreamBreak(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 64, 1995)
	url := startService(t, 1)
	e, err := atpg.New(c, remoteOptions(atpg.WithRemote(url))...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range e.Stream(context.Background(), faults) {
			break
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("breaking out of a remote stream did not return")
	}
}

// TestRemoteOptionErrors: WithXFill installs an opaque function the wire
// cannot carry, so combining it with WithRemote must fail construction;
// an empty coordinator address is rejected outright.
func TestRemoteOptionErrors(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	_, err = atpg.New(c, atpg.WithRemote("http://127.0.0.1:1"), atpg.WithXFill(atpg.XFillOne()))
	if !errors.Is(err, atpg.ErrRemoteOption) {
		t.Errorf("WithRemote+WithXFill: got %v, want ErrRemoteOption", err)
	}
	_, err = atpg.New(c, atpg.WithRemote(""))
	if err == nil {
		t.Error("WithRemote(\"\") accepted")
	}
}
