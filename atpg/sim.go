package atpg

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/faultsim"
	"repro/internal/pattern"
)

// SimResult is the outcome of a fault-simulation run: per-fault detection
// flags, the index of the first detecting pair, and aggregate counts.
type SimResult = faultsim.Result

// Simulate runs the parallel-pattern path delay fault simulator: it applies
// every test pair to every fault and reports which faults are detected (in
// the robust or nonrobust class).
func Simulate(c *Circuit, pairs []TestPair, faults []Fault, robust bool) (SimResult, error) {
	if c == nil || c.c == nil {
		return SimResult{}, ErrNilCircuit
	}
	return faultsim.Run(c.c, pairs, faults, robust)
}

// SimulateParallel is Simulate sharded across workers goroutines: per-fault
// detection is independent, so the result is identical to Simulate, only
// faster on multi-core machines.  Like [WithWorkers], 0 selects one worker
// per core and negative counts are an error.
func SimulateParallel(c *Circuit, pairs []TestPair, faults []Fault, robust bool, workers int) (SimResult, error) {
	if c == nil || c.c == nil {
		return SimResult{}, ErrNilCircuit
	}
	if workers < 0 {
		return SimResult{}, fmt.Errorf("atpg: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return faultsim.RunParallel(c.c, pairs, faults, robust, workers)
}

// FaultCoverage returns the fraction of the given faults detected by the
// test pairs (0..1).
func FaultCoverage(c *Circuit, pairs []TestPair, faults []Fault, robust bool) (float64, error) {
	if c == nil || c.c == nil {
		return 0, ErrNilCircuit
	}
	return faultsim.Coverage(c.c, pairs, faults, robust)
}

// EstimateFaultCoverage estimates the coverage of the test pairs over the
// circuit's full fault population by simulating a uniform sample of
// sampleSize faults; it returns the estimate and the number of faults
// actually sampled.
func EstimateFaultCoverage(c *Circuit, pairs []TestPair, sampleSize int, seed int64, robust bool) (float64, int, error) {
	if c == nil || c.c == nil {
		return 0, 0, ErrNilCircuit
	}
	return faultsim.EstimateCoverage(c.c, pairs, sampleSize, seed, robust)
}

// ReadTests parses a test set in the text format written by TestSet.Write.
func ReadTests(r io.Reader) (*TestSet, error) { return pattern.Read(r) }

// LoadTests reads a test set file (as written by Engine.Tests().Write or
// the tip command's -out flag).
func LoadTests(path string) (*TestSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pattern.Read(f)
}
