package atpg

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/pattern"
)

func TestNewValidatesOptions(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{-1, 0, MaxWordWidth + 1, 1024} {
		if _, err := New(c, WithWordWidth(width)); !errors.Is(err, ErrBadWidth) {
			t.Errorf("New(WithWordWidth(%d)): got %v, want ErrBadWidth", width, err)
		}
	}
	if _, err := New(c, WithWordWidth(1)); err != nil {
		t.Errorf("New(WithWordWidth(1)): unexpected error %v", err)
	}
	if _, err := New(c, WithWordWidth(MaxWordWidth)); err != nil {
		t.Errorf("New(WithWordWidth(%d)): unexpected error %v", MaxWordWidth, err)
	}
	if _, err := New(nil); !errors.Is(err, ErrNilCircuit) {
		t.Errorf("New(nil): got %v, want ErrNilCircuit", err)
	}
	if _, err := New(c, WithBacktrackLimit(0)); err == nil {
		t.Error("New(WithBacktrackLimit(0)): expected an error")
	}
	if _, err := New(c, WithInterleavedSim(-1)); err == nil {
		t.Error("New(WithInterleavedSim(-1)): expected an error")
	}
}

func TestRunNoFaults(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), nil); !errors.Is(err, ErrNoFaults) {
		t.Errorf("Run(nil faults): got %v, want ErrNoFaults", err)
	}
}

func TestParseErrors(t *testing.T) {
	_, err := ParseBench("bad.bench", strings.NewReader("INPUT(a)\nG1 = AND(\n"))
	if err == nil {
		t.Fatal("expected a parse error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *ParseError", err, err)
	}
	if pe.File != "bad.bench" || pe.Line != 2 {
		t.Errorf("ParseError location = %s:%d, want bad.bench:2", pe.File, pe.Line)
	}
	if !strings.Contains(err.Error(), "bad.bench:2:") {
		t.Errorf("error message %q does not lead with file:line", err.Error())
	}
}

// TestCancellationMidRun is the acceptance test of the context redesign: a
// run on a large synthetic circuit is canceled after the first few faults
// settle, Run must return early with ErrCanceled (wrapping the context
// cause), and every unsettled fault must come back Aborted with the cause
// recorded.
func TestCancellationMidRun(t *testing.T) {
	p, ok := ProfileByName("s1423")
	if !ok {
		t.Fatal("missing s1423 profile")
	}
	c, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 512, 7)
	if len(faults) != 512 {
		t.Fatalf("sampled %d faults, want 512", len(faults))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	settledBeforeCancel := 0
	e, err := New(c, WithMode(Nonrobust), WithProgress(func(r Result) {
		if r.Err == nil {
			settledBeforeCancel++
		}
		if settledBeforeCancel >= 3 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}

	results, err := e.Run(ctx, faults)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run on canceled context: got error %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap the context cause context.Canceled", err)
	}
	if len(results) != len(faults) {
		t.Fatalf("got %d results for %d faults", len(results), len(faults))
	}
	settled, canceled := 0, 0
	for _, r := range results {
		switch {
		case r.Err != nil:
			canceled++
			if r.Status != Aborted {
				t.Errorf("canceled fault has status %v, want Aborted", r.Status)
			}
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("canceled fault cause = %v, want context.Canceled", r.Err)
			}
		case r.Status != Pending:
			settled++
		}
	}
	if settled == 0 {
		t.Error("no fault settled before the cancellation")
	}
	if canceled == 0 {
		t.Error("no fault was cut short: the run was not canceled mid-generation")
	}
	t.Logf("settled=%d canceled=%d", settled, canceled)
}

func TestDeadlineExpiry(t *testing.T) {
	p, ok := ProfileByName("s1423")
	if !ok {
		t.Fatal("missing s1423 profile")
	}
	c, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err = e.Run(ctx, SampleFaults(c, 64, 1))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run past deadline: got %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// allPairs enumerates every two-vector test of a circuit with n primary
// inputs (4^n pairs), the brute-force detectability oracle also used by
// internal/core's oracle test.
func allPairs(c *Circuit) []TestPair {
	n := c.NumInputs()
	total := 1 << uint(2*n)
	pairs := make([]TestPair, 0, total)
	for code := 0; code < total; code++ {
		p := pattern.NewPair(n)
		for i := 0; i < n; i++ {
			if code>>(uint(i))&1 == 1 {
				p.V1[i] = logic.One3
			} else {
				p.V1[i] = logic.Zero3
			}
			if code>>(uint(n+i))&1 == 1 {
				p.V2[i] = logic.One3
			} else {
				p.V2[i] = logic.Zero3
			}
		}
		pairs = append(pairs, p)
	}
	return pairs
}

// TestC17RobustMatchesOracle runs the façade end to end on c17 in robust
// mode and checks every classification against the brute-force oracle,
// mirroring internal/core/oracle_test.go: a fault is reported covered iff
// some pair of the full pair universe robustly detects it, and redundant
// faults have no detecting pair at all.
func TestC17RobustMatchesOracle(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c, 0)
	if len(faults) == 0 {
		t.Fatal("no faults enumerated for c17")
	}
	oracle, err := Simulate(c, allPairs(c), faults, true)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(c, WithMode(Robust))
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status == Aborted {
			t.Errorf("fault %s aborted on c17", c.Describe(r.Fault))
			continue
		}
		detectable := oracle.Detected[i]
		claimed := r.Status.Detected()
		if claimed && !detectable {
			t.Errorf("engine claims a test for %s but no pair detects it", c.Describe(r.Fault))
		}
		if !claimed && detectable {
			t.Errorf("engine calls %s %v but the oracle finds a detecting pair", c.Describe(r.Fault), r.Status)
		}
	}
	if cov := e.Coverage(); cov.Faults != len(faults) || cov.Detected == 0 {
		t.Errorf("odd coverage summary %+v", cov)
	}
}

// TestStreamMatchesRun checks the streaming view: Stream must yield exactly
// one settled result per targeted fault, with the same per-fault
// classifications Run produces on a fresh engine.
func TestStreamMatchesRun(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c, 0)

	runEngine, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	results, err := runEngine.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]Status, len(results))
	for _, r := range results {
		want[r.Fault.Key()] = r.Status
	}

	streamEngine, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for r := range streamEngine.Stream(context.Background(), faults) {
		seen++
		if got, ok := want[r.Fault.Key()]; !ok || got != r.Status {
			t.Errorf("stream classifies %s as %v, Run said %v", c.Describe(r.Fault), r.Status, got)
		}
	}
	if seen != len(faults) {
		t.Errorf("stream yielded %d results for %d faults", seen, len(faults))
	}
}

// TestStreamEarlyBreak checks that abandoning the stream cancels the rest of
// the generation instead of running it to completion behind the consumer's
// back.
func TestStreamEarlyBreak(t *testing.T) {
	p, ok := ProfileByName("s1423")
	if !ok {
		t.Fatal("missing s1423 profile")
	}
	c, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c, WithMode(Nonrobust))
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 512, 3)
	yielded := 0
	for range e.Stream(context.Background(), faults) {
		yielded++
		if yielded == 2 {
			break
		}
	}
	if yielded != 2 {
		t.Fatalf("consumed %d results, want 2", yielded)
	}
	st := e.Stats()
	if st.Faults != len(faults) {
		t.Fatalf("engine targeted %d faults, want %d", st.Faults, len(faults))
	}
	// The vast majority of the faults must have been cut short, not ground
	// through: breaking the loop cancels the underlying run.
	if st.Aborted < len(faults)/2 {
		t.Errorf("only %d of %d faults were cut short after the early break", st.Aborted, len(faults))
	}
}
