package atpg_test

import (
	"context"
	"testing"

	"repro/atpg"
)

func TestCompactionOptionValidation(t *testing.T) {
	c, err := atpg.Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atpg.New(c, atpg.WithCompaction(atpg.CompactionLevel(99))); err == nil {
		t.Error("WithCompaction accepted an unknown level")
	}
	if _, err := atpg.New(c, atpg.WithXFill(nil)); err == nil {
		t.Error("WithXFill accepted nil")
	}
	for _, level := range []atpg.CompactionLevel{atpg.CompactNone, atpg.CompactReverse, atpg.CompactFull} {
		if _, err := atpg.New(c, atpg.WithCompaction(level), atpg.WithXFill(atpg.XFillRandom(1))); err != nil {
			t.Errorf("WithCompaction(%v) rejected: %v", level, err)
		}
	}
	if _, err := atpg.ParseCompaction("full"); err != nil {
		t.Errorf("ParseCompaction(full): %v", err)
	}
	if _, err := atpg.ParseCompaction("nope"); err == nil {
		t.Error("ParseCompaction accepted garbage")
	}
}

// TestEngineCompactionPreservesCoverage runs the same faults through a
// plain engine and a compacting engine and checks the compacted engine
// covers the identical fault set with at most as many patterns, with the
// compaction counters exposed through Stats.
func TestEngineCompactionPreservesCoverage(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 80, 5)

	plain, err := atpg.New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Run(context.Background(), faults); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2} {
		compacting, err := atpg.New(c,
			atpg.WithWorkers(workers),
			atpg.WithCompaction(atpg.CompactFull),
			atpg.WithXFill(atpg.XFillZero()),
		)
		if err != nil {
			t.Fatal(err)
		}
		results, err := compacting.Run(context.Background(), faults)
		if err != nil {
			t.Fatal(err)
		}

		if n := compacting.Tests().Len(); n > plain.Tests().Len() {
			t.Errorf("workers=%d: compacted engine has more patterns (%d) than plain (%d)",
				workers, n, plain.Tests().Len())
		}
		st := compacting.Stats()
		if st.Compaction.PairsBefore == 0 {
			t.Errorf("workers=%d: compaction stats empty: %+v", workers, st.Compaction)
		}
		if got := compacting.Coverage().Patterns; got != compacting.Tests().Len() {
			t.Errorf("workers=%d: Coverage().Patterns = %d, want the set size %d",
				workers, got, compacting.Tests().Len())
		}

		// The full-fault-list coverage must be bit-identical to the plain
		// engine's.
		plainSim, err := atpg.Simulate(c, plain.Tests().Pairs, faults, true)
		if err != nil {
			t.Fatal(err)
		}
		compactSim, err := atpg.Simulate(c, compacting.Tests().Pairs, faults, true)
		if err != nil {
			t.Fatal(err)
		}
		for f := range plainSim.Detected {
			if plainSim.Detected[f] != compactSim.Detected[f] {
				t.Fatalf("workers=%d: fault %d: plain=%v compacted=%v",
					workers, f, plainSim.Detected[f], compactSim.Detected[f])
			}
		}

		// Pattern indices of covered faults must be valid in the compacted set.
		for i, r := range results {
			if r.Status.Detected() && (r.PatternIndex < 0 || r.PatternIndex >= compacting.Tests().Len()) {
				t.Errorf("workers=%d: fault %d index %d out of range", workers, i, r.PatternIndex)
			}
		}
	}
}

// TestCompactTests exercises the standalone CompactTests entry (the dfsim
// -compact path): coverage must be preserved exactly and the input set left
// untouched.
func TestCompactTests(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 64, 9)
	e, err := atpg.New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), faults); err != nil {
		t.Fatal(err)
	}
	set := e.Tests()
	beforeLen := set.Len()
	beforeText := set.String()

	out, st, err := atpg.CompactTests(c, set, faults, true, atpg.CompactFull, atpg.XFillRandom(3))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != beforeLen || set.String() != beforeText {
		t.Error("CompactTests modified its input set")
	}
	if out.Len() > set.Len() {
		t.Errorf("compacted set grew: %d -> %d", set.Len(), out.Len())
	}
	if st.PairsBefore != beforeLen || st.PairsAfter != out.Len() {
		t.Errorf("stats inconsistent: %+v", st)
	}
	a, err := atpg.FaultCoverage(c, set.Pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := atpg.FaultCoverage(c, out.Pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("coverage changed: %v -> %v", a, b)
	}

	if _, _, err := atpg.CompactTests(nil, set, faults, true, atpg.CompactFull, nil); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, _, err := atpg.CompactTests(c, nil, faults, true, atpg.CompactFull, nil); err == nil {
		t.Error("nil set accepted")
	}
}

// TestStreamAppliesCompaction pins the fix for the sequential Stream path
// bypassing compaction: after a stream ends, the engine's set must be the
// compacted one and Stats.Compaction populated, for 1 and 2 workers alike.
func TestStreamAppliesCompaction(t *testing.T) {
	c, err := atpg.Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := atpg.SampleFaults(c, 64, 5)
	for _, workers := range []int{1, 2} {
		e, err := atpg.New(c, atpg.WithWorkers(workers), atpg.WithCompaction(atpg.CompactFull))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for range e.Stream(context.Background(), faults) {
			n++
		}
		if n != len(faults) {
			t.Fatalf("workers=%d: streamed %d of %d results", workers, n, len(faults))
		}
		st := e.Stats()
		if st.Compaction.PairsBefore == 0 {
			t.Errorf("workers=%d: stream did not compact: %+v", workers, st.Compaction)
		}
		if e.Tests().Len() != st.Compaction.PairsAfter {
			t.Errorf("workers=%d: set len %d != PairsAfter %d",
				workers, e.Tests().Len(), st.Compaction.PairsAfter)
		}
	}
}
