package atpg

import (
	"fmt"

	"repro/internal/compact"
)

// CompactionLevel selects how aggressively the engine statically compacts
// each run's test set after generation.
type CompactionLevel = compact.Level

// The three compaction levels.
const (
	// CompactNone disables compaction (the default).
	CompactNone = compact.None
	// CompactReverse re-simulates the pairs in reverse generation order and
	// drops every pair that detects no not-yet-detected fault.
	CompactReverse = compact.Reverse
	// CompactFull first merges pairs whose three-valued vectors are
	// compatible (using the don't-care information of the unfilled pairs),
	// then applies the reverse-order pass to the merged set.
	CompactFull = compact.Full
)

// ParseCompaction parses "none", "reverse" or "full" (the spelling of the
// CLI -compact flags).
func ParseCompaction(s string) (CompactionLevel, error) { return compact.ParseLevel(s) }

// CompactionStats summarizes a compaction pass: pairs before/after,
// compatible merges and reverse-order simulation drops.  The engine
// accumulates them in Stats.Compaction.
type CompactionStats = compact.Stats

// XFill is a strategy for completing the don't-care positions of merged
// pairs after compaction.  Use [XFillZero], [XFillOne] or [XFillRandom].
type XFill = compact.Filler

// XFillZero fills every don't care with logic 0 (the default, matching the
// generator's own fill value).
func XFillZero() XFill { return compact.ZeroFill() }

// XFillOne fills every don't care with logic 1.
func XFillOne() XFill { return compact.OneFill() }

// XFillRandom fills don't cares with seed-derived pseudo-random values; the
// same seed always produces the same fill, independent of call order.
func XFillRandom(seed int64) XFill { return compact.RandomFill(seed) }

// ParseXFill parses the CLI spelling of an X-fill strategy — "zero", "one"
// or "random" (seeded with seed); the empty string means zero.
func ParseXFill(name string, seed int64) (XFill, error) {
	switch name {
	case "zero", "":
		return XFillZero(), nil
	case "one":
		return XFillOne(), nil
	case "random":
		return XFillRandom(seed), nil
	}
	return nil, fmt.Errorf("atpg: unknown X-fill strategy %q (want zero, one or random)", name)
}

// CompactTests statically compacts a test set against a fault list without
// an engine: compatible-pair merging (level CompactFull) followed by
// reverse-order fault simulation.  The returned set detects exactly the
// same faults of the list, in the selected class, as the input set — never
// fewer and never more — and the input set is not modified.  fill selects
// how merged pairs' don't cares are completed; nil means XFillZero.
//
// This is the library entry behind `dfsim -compact`; engines compact their
// own sets when built with [WithCompaction].
func CompactTests(c *Circuit, set *TestSet, faults []Fault, robust bool, level CompactionLevel, fill XFill) (*TestSet, CompactionStats, error) {
	if c == nil || c.c == nil {
		return nil, CompactionStats{}, ErrNilCircuit
	}
	if set == nil {
		return nil, CompactionStats{}, fmt.Errorf("atpg: nil test set")
	}
	return compact.Compact(c.c, set, faults, robust, level, fill)
}
