package atpg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/retry"
	"repro/internal/service"
)

// cancelPropagationTimeout bounds the best-effort DELETE that propagates a
// local cancellation to the coordinator.  The job context is already dead at
// that point, so the request runs on its own clock; if the coordinator does
// not answer within this window the job is left to the coordinator's own
// lease expiry and the caller still observes ErrCanceled.
const cancelPropagationTimeout = 5 * time.Second

// cancelTimeout is cancelPropagationTimeout as a variable so tests can
// shrink the window when exercising the DELETE-itself-times-out branch.
var cancelTimeout = cancelPropagationTimeout

// propagateCancel tells the coordinator to cancel jobID on a fresh,
// self-deadlined context.  Errors are deliberately dropped: cancellation is
// best-effort and the caller's outcome (ErrCanceled) is already decided.
func propagateCancel(cl *service.Client, jobID string) {
	cctx, cancel := context.WithTimeout(context.Background(), cancelTimeout)
	defer cancel()
	_, _ = cl.Cancel(cctx, jobID)
}

// ErrRemoteOption is returned by New when an option cannot be carried over
// the wire to a remote coordinator (currently only WithXFill: a custom
// filler is an opaque function).
var ErrRemoteOption = errors.New("atpg: option not supported with WithRemote")

// WithRemote makes the engine run on an ATPG service coordinator instead of
// in-process: Run submits the circuit (content-addressed, so repeat
// submissions of the same design skip the upload and the parse), the fault
// list and the engine's options as a job, waits for the coordinator's
// distributed workers to finish it, and imports the results — statuses are
// bit-identical to a local run with the same options whenever interleaved
// simulation is off, and the merged test set lands in [Engine.Tests] exactly
// as a local run's would.  Stream consumes the job's settle-event feed;
// breaking out cancels the job on the coordinator.
//
// addr is the coordinator's base URL, e.g. "http://127.0.0.1:9090".
// [WithWorkers] is ignored remotely (parallelism is the worker fleet's),
// and [WithXFill] fails construction with ErrRemoteOption: a custom filler
// cannot be serialized.  [WithProgress] works — it is fed from the event
// stream.
func WithRemote(addr string) Option {
	return func(c *engineConfig) error {
		if addr == "" {
			return fmt.Errorf("atpg: empty remote coordinator address")
		}
		c.remote = addr
		return nil
	}
}

// remoteWireOptions renders the engine's resolved core options in wire form.
// The facade exposes exactly the wire-expressible option surface, so the
// mapping is lossless: the coordinator's and workers' core.New normalize
// the decoded options to the same values used locally.
func remoteWireOptions(opts core.Options) service.JobOptions {
	sim := opts.FaultSimInterval
	return service.JobOptions{
		Mode:            opts.Mode.String(),
		WordWidth:       opts.WordWidth,
		Backtracks:      opts.MaxBacktracks,
		NoFPTPG:         !opts.UseFPTPG,
		NoAPTPG:         !opts.UseAPTPG,
		SimInterval:     &sim,
		Schedule:        opts.Schedule.String(),
		Escalate:        opts.EscalationWidth,
		FirstPassBudget: opts.FirstPassBacktracks,
		Guided:          opts.GuidedEscalation,
		Compact:         opts.Compaction.String(),
	}
}

// submitRemote ships the engine's circuit, options and faults as a job.
func (e *Engine) submitRemote(ctx context.Context, cl *service.Client, faults []Fault) (service.SubmitResponse, error) {
	var buf bytes.Buffer
	if err := e.circuit.WriteBench(&buf); err != nil {
		return service.SubmitResponse{}, err
	}
	return cl.SubmitBench(ctx, e.circuit.Name(), buf.String(),
		remoteWireOptions(e.gen.Options()), service.EncodeFaults(e.circuit.c, faults))
}

// importRemote folds a finished job's outcome into the engine: results are
// rebased onto the local test set and the coordinator's statistics are
// accumulated, so Tests, Stats and Coverage read exactly as after a local
// run.
func (e *Engine) importRemote(resp service.ResultsResponse) ([]Result, error) {
	results := make([]core.FaultResult, len(resp.Results))
	for i, w := range resp.Results {
		r, err := service.DecodeResult(e.circuit.c, w)
		if err != nil {
			return nil, fmt.Errorf("atpg: remote result %d: %w", i, err)
		}
		results[i] = r
	}
	set, err := pattern.Read(strings.NewReader(resp.Tests))
	if err != nil {
		return nil, fmt.Errorf("atpg: remote test set: %w", err)
	}
	return e.gen.ImportRemoteRun(results, set, resp.Stats), nil
}

// runRemote is Run against a coordinator.  Cancelling ctx cancels the job
// remotely and reports ErrCanceled, mirroring the local contract.
func (e *Engine) runRemote(ctx context.Context, faults []Fault) ([]Result, error) {
	cl := service.NewClient(e.remote)
	sub, err := e.submitRemote(ctx, cl, faults)
	if err != nil {
		return nil, err
	}
	var jobErr error
	if e.progress != nil {
		jobErr = e.followEvents(ctx, cl, sub.JobID, func(Result) bool { return true })
	} else {
		_, jobErr = cl.Wait(ctx, sub.JobID, 0)
	}
	if jobErr != nil {
		if ctx.Err() != nil {
			// Propagate the cancellation to the coordinator; the job context
			// is gone, so propagateCancel runs the DELETE on its own clock.
			propagateCancel(cl, sub.JobID)
			return nil, fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
		}
		return nil, jobErr
	}
	resp, err := cl.Results(context.WithoutCancel(ctx), sub.JobID)
	if err != nil {
		return nil, err
	}
	results, err := e.importRemote(resp)
	if err != nil {
		return nil, err
	}
	if resp.State == "canceled" {
		return results, fmt.Errorf("%w after %d of %d faults: job canceled on the coordinator",
			ErrCanceled, settledCount(results), len(faults))
	}
	return results, nil
}

// followEvents long-polls the job's settle events, feeding each decoded
// result to the engine's progress callback and to yield.  It returns when
// the stream reports done, yield stops it, or ctx ends.
//
// A transient failure of the feed — coordinator restart, dropped connection,
// severed response — does not fail the job: the loop backs off and
// reconnects, resuming from the last seen event sequence, so no settle event
// is delivered twice and none is lost.  Only terminal errors (the job is
// unknown, the request is malformed) or the caller's context ending stop it.
func (e *Engine) followEvents(ctx context.Context, cl *service.Client, jobID string, yield func(Result) bool) error {
	from := 0
	reconnect := retry.Policy{Initial: 200 * time.Millisecond, Max: 5 * time.Second, Attempts: -1}.Backoff()
	for {
		ev, err := cl.Events(ctx, jobID, from, 2000)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if retry.Classify(err) == retry.Transient && reconnect.Sleep(ctx, err) {
				continue // same cursor: resume exactly where the feed broke
			}
			return err
		}
		reconnect.Reset()
		for _, w := range ev.Events {
			r, err := service.DecodeResult(e.circuit.c, w)
			if err != nil {
				return fmt.Errorf("atpg: remote event: %w", err)
			}
			if e.progress != nil {
				e.progress(r)
			}
			if !yield(r) {
				return nil
			}
		}
		from = ev.Next
		if ev.Done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// streamRemote is Stream against a coordinator: results arrive from the
// settle-event feed (PatternIndex is -1 — merge indices exist only after
// the run; see Stream's documentation of the parallel caveat).  Breaking
// out of the stream cancels the job.  After a complete stream the job's
// merged outcome is imported, so Tests and Coverage are final.
func (e *Engine) streamRemote(ctx context.Context, faults []Fault) func(yield func(Result) bool) {
	return func(yield func(Result) bool) {
		cl := service.NewClient(e.remote)
		sub, err := e.submitRemote(ctx, cl, faults)
		if err != nil {
			return
		}
		stopped := false
		err = e.followEvents(ctx, cl, sub.JobID, func(r Result) bool {
			if !yield(r) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil || stopped {
			propagateCancel(cl, sub.JobID)
			return
		}
		if resp, err := cl.Results(context.WithoutCancel(ctx), sub.JobID); err == nil {
			_, _ = e.importRemote(resp)
		}
	}
}
