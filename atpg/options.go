package atpg

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// Mode selects the test class tests are generated for.
type Mode = sensitize.Mode

// The two test classes of the paper (Tables 3 and 4).
const (
	// Nonrobust tests only fix the final values of the off-path inputs.
	Nonrobust = sensitize.Nonrobust
	// Robust tests additionally keep off-path inputs stable where the
	// on-path input changes towards the controlling value (Lin/Reddy).
	Robust = sensitize.Robust
)

// ParseMode parses "robust" or "nonrobust".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "robust":
		return Robust, nil
	case "nonrobust":
		return Nonrobust, nil
	}
	return Nonrobust, fmt.Errorf("atpg: unknown mode %q (want robust or nonrobust)", s)
}

// MaxWordWidth is the largest word width L the generator exploits.  Widths
// above the 64-bit machine word run on multi-word plane vectors
// (structure-of-arrays storage, up to 512 bit levels); see DefaultWordWidth
// for the width engines use when none is requested.
const MaxWordWidth = logic.MaxWordWidth

// DefaultWordWidth is the width engines run at when WithWordWidth is not
// given: one machine word, 64 bit levels.  Wider planes amortize better on
// hard fault populations but cost proportionally more per implication; see
// the README performance notes before raising it.
const DefaultWordWidth = logic.WordWidth

// Schedule selects how a multi-worker engine dispatches fault groups to its
// workers (see [WithSchedule]).
type Schedule = sched.Policy

// The dispatch policies.
const (
	// ScheduleStatic hands every worker one contiguous run of fault groups
	// up front: the classic shard split, with no rebalancing.
	ScheduleStatic = sched.Static
	// ScheduleSteal starts from the same contiguous split but lets a worker
	// whose queue runs dry steal queued groups from the most loaded peer,
	// so clustered hard faults do not serialize on one worker.
	ScheduleSteal = sched.Steal
)

// ParseSchedule parses "static" or "steal".
func ParseSchedule(s string) (Schedule, error) {
	p, err := sched.ParsePolicy(s)
	if err != nil {
		return p, fmt.Errorf("atpg: unknown schedule %q (want static or steal)", s)
	}
	return p, nil
}

// Option configures an [Engine] at construction time.
type Option func(*engineConfig) error

// engineConfig accumulates the option values before they are validated and
// frozen into core options by New.
type engineConfig struct {
	opts core.Options
	// simInterval, when nil, tracks the word width (the paper simulates
	// after every L generated patterns).
	simInterval *int
	// workers is the resolved worker count; 0 (option absent) means 1, the
	// sequential engine.
	workers  int
	progress func(Result)
	// remote, when set, makes the engine submit runs to an ATPG service
	// coordinator instead of generating in-process (see WithRemote).
	remote string
	// xfillSet notes an explicit WithXFill: a custom filler is an opaque
	// function and cannot be serialized to a remote coordinator.
	xfillSet bool
}

// WithMode selects robust or nonrobust test generation (default: robust).
func WithMode(m Mode) Option {
	return func(c *engineConfig) error {
		if m != Robust && m != Nonrobust {
			return fmt.Errorf("atpg: unknown mode %d", m)
		}
		c.opts.Mode = m
		return nil
	}
}

// WithWordWidth sets the number of bit levels L exploited by both forms of
// bit parallelism (default: DefaultWordWidth).  Width 1 is the single-bit
// baseline of Tables 5 and 6; widths above 64 span multiple plane words per
// net.  Widths outside 1..MaxWordWidth make New fail with ErrBadWidth.
func WithWordWidth(w int) Option {
	return func(c *engineConfig) error {
		if w < 1 || w > MaxWordWidth {
			return fmt.Errorf("%w: %d (want 1..%d)", ErrBadWidth, w, MaxWordWidth)
		}
		c.opts.WordWidth = w
		return nil
	}
}

// WithBacktrackLimit bounds the conventional backtracks APTPG spends per
// fault before aborting it (default: 8).
func WithBacktrackLimit(n int) Option {
	return func(c *engineConfig) error {
		if n < 1 {
			return fmt.Errorf("atpg: backtrack limit must be at least 1, got %d", n)
		}
		c.opts.MaxBacktracks = n
		return nil
	}
}

// WithFaultParallel toggles FPTPG, the fault-parallel first phase (default:
// on).  With both phases disabled every fault is aborted.
func WithFaultParallel(on bool) Option {
	return func(c *engineConfig) error {
		c.opts.UseFPTPG = on
		return nil
	}
}

// WithAlternativeParallel toggles APTPG, the alternative-parallel second
// phase that takes over the faults FPTPG would have to backtrack on
// (default: on).
func WithAlternativeParallel(on bool) Option {
	return func(c *engineConfig) error {
		c.opts.UseAPTPG = on
		return nil
	}
}

// WithInterleavedSim sets the interleaved fault-simulation interval: after
// every interval generated patterns the pending faults are fault-simulated
// and the detected ones dropped.  0 disables the simulation.  The default
// follows the paper and simulates after every L patterns.
func WithInterleavedSim(interval int) Option {
	return func(c *engineConfig) error {
		if interval < 0 {
			return fmt.Errorf("atpg: negative fault-simulation interval %d", interval)
		}
		c.simInterval = &interval
		return nil
	}
}

// WithWorkers sets the number of worker goroutines the engine shards the
// fault list across, stacking core-level parallelism on top of the paper's
// word-level bit parallelism: each worker owns an independent generator over
// the shared immutable circuit and processes one contiguous shard of the
// fault slice.  When the interleaved simulation is on, workers exchange
// their patterns so one shard's tests still drop detected faults on the
// others.  n = 0 selects runtime.GOMAXPROCS(0), one worker per available
// core; negative counts fail construction.  The default is 1, the
// sequential generator of the paper.
//
// Sharding never changes which faults are covered, proved redundant or
// aborted, but it can change whether a covered fault reports Tested (its
// own pattern) or DetectedBySim (dropped by another fault's pattern), since
// that depends on the cross-shard pattern arrival order.  Statistics
// aggregate over the workers, so Stats time fields become CPU time rather
// than wall-clock time.
func WithWorkers(n int) Option {
	return func(c *engineConfig) error {
		if n < 0 {
			return fmt.Errorf("atpg: negative worker count %d", n)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
		return nil
	}
}

// WithSchedule selects the dispatch policy of a multi-worker engine: how
// the internal scheduler hands work units (word-parallel fault groups) to
// the workers.  [ScheduleStatic] (the default) pre-assigns contiguous runs
// of groups; [ScheduleSteal] additionally lets idle workers steal queued
// groups from the most loaded peer, which evens out fault lists whose hard
// faults cluster.  The policy never changes what a run achieves: results
// stay input-ordered, the merged test set is reassembled in canonical fault
// order, and the covered/redundant/aborted classification of every fault is
// policy-independent.  With the interleaved simulation disabled
// (WithInterleavedSim(0)) the guarantee is exact — identical per-fault
// statuses and an identical test set under both policies and any worker
// count; with it enabled (the default), which of the two covered labels a
// fault gets (Tested versus DetectedBySim) and hence the exact pattern set
// still depend on cross-worker pattern arrival order, as with
// [WithWorkers].  The work distribution itself is visible in the
// Stats.Sched counters.  With one worker the policies coincide.
func WithSchedule(p Schedule) Option {
	return func(c *engineConfig) error {
		if p != ScheduleStatic && p != ScheduleSteal {
			return fmt.Errorf("atpg: unknown schedule %d", p)
		}
		c.opts.Schedule = p
		return nil
	}
}

// WithEscalation enables two-pass adaptive fault grouping with the given
// escalation width.  Every fault first runs fault-serial (a width-1 group)
// under a cheap backtrack budget (see [WithFirstPassBudget]); only the
// faults that survive this first pass are regrouped into width-wide
// word-parallel groups and re-run under the engine's full backtrack limit.
// Word-level sharing — the paper's central mechanism — is thus spent only on
// the faults whose search is expensive enough to pay for it, which on
// easy-fault workloads beats both the fixed full-width grouping and the
// pure single-bit generator.  width 0 (the default) disables escalation and
// keeps the single fixed-width pass; widths outside 0..MaxWordWidth fail
// construction with ErrBadWidth.
func WithEscalation(width int) Option {
	return func(c *engineConfig) error {
		if width < 0 || width > MaxWordWidth {
			return fmt.Errorf("%w: escalation width %d (want 0..%d)", ErrBadWidth, width, MaxWordWidth)
		}
		c.opts.EscalationWidth = width
		return nil
	}
}

// WithGuidedEscalation turns testability-guided search on or off (default:
// off).  The engine scores every target fault with SCOAP-style
// controllability/observability measures computed once per circuit; faults
// above the hardness threshold skip the cheap first pass of adaptive
// grouping and go straight to the wide escalation pass, work units are
// ordered hardest first with cost-weighted scheduler splits, and — when
// [WithEscalation] was not used — the escalation width is derived from the
// score distribution of the run's faults.  Guidance only routes and orders
// work, so which faults end up covered does not depend on it; the
// first-pass skip rate is reported by [Stats.SkipRate].
func WithGuidedEscalation(on bool) Option {
	return func(c *engineConfig) error {
		c.opts.GuidedEscalation = on
		return nil
	}
}

// WithFirstPassBudget sets the backtrack budget of the cheap fault-serial
// first pass of adaptive grouping (default: 1).  It only takes effect
// together with [WithEscalation] or [WithGuidedEscalation].
func WithFirstPassBudget(n int) Option {
	return func(c *engineConfig) error {
		if n < 1 {
			return fmt.Errorf("atpg: first-pass budget must be at least 1, got %d", n)
		}
		c.opts.FirstPassBacktracks = n
		return nil
	}
}

// WithProgress registers a callback invoked once for every fault whose
// classification becomes final, in settle order.  The callback runs on the
// generating goroutine — with several workers, on whichever worker settles
// the fault, serialized by the engine — and must not call back into the
// engine.
func WithProgress(fn func(Result)) Option {
	return func(c *engineConfig) error {
		c.progress = fn
		return nil
	}
}

// WithCompaction selects the static compaction applied to every run's test
// set once after generation (and, with several workers, after the
// deterministic merge — compaction is what claws back the size difference
// between merged sharded sets and sequential ones):
//
//   - CompactNone (the default) leaves the set as generated;
//   - CompactReverse re-simulates the pairs in reverse generation order and
//     drops every pair detecting no not-yet-detected fault;
//   - CompactFull additionally merges compatible pairs first, using the
//     don't-care information of the unfilled pairs (which the engine then
//     records automatically alongside the filled ones).
//
// Compaction never changes which faults a run detects: the compacted set's
// coverage over the run's fault list is identical, for any worker count.
// Pattern indices in Run results refer to the compacted set; Stats records
// the pairs before/after, merges and simulation drops in Stats.Compaction.
func WithCompaction(level CompactionLevel) Option {
	return func(c *engineConfig) error {
		switch level {
		case CompactNone, CompactReverse, CompactFull:
			c.opts.Compaction = level
			return nil
		}
		return fmt.Errorf("atpg: unknown compaction level %d", level)
	}
}

// WithXFill selects how the don't-care positions of pairs merged during
// compaction are filled: [XFillZero] (default), [XFillOne] or
// [XFillRandom].  It only takes effect together with
// WithCompaction(CompactFull).
func WithXFill(f XFill) Option {
	return func(c *engineConfig) error {
		if f == nil {
			return fmt.Errorf("atpg: nil X-fill strategy")
		}
		c.opts.CompactionXFill = f
		c.xfillSet = true
		return nil
	}
}
