package atpg

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// cSuite returns the circuits of the builtin c-suite used by the worker
// equivalence tests: small enough to enumerate or densely sample, large
// enough that every shard gets real work.
func cSuite(t *testing.T) map[string]*Circuit {
	t.Helper()
	out := make(map[string]*Circuit)
	for _, name := range []string{"c17", "c432", "c499"} {
		c, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = c
	}
	return out
}

func suiteFaults(c *Circuit) []Fault {
	if c.NumInputs() <= 8 {
		return AllFaults(c, 0)
	}
	return SampleFaults(c, 192, 1995)
}

// statusClass collapses Tested and DetectedBySim into one "covered" class:
// with the cross-worker pattern exchange active, which of the two a covered
// fault gets depends on the shard interleaving.  Redundant and Aborted are
// classes of their own.
func statusClass(s Status) string {
	if s.Detected() {
		return "covered"
	}
	return s.String()
}

// TestWorkersMatchSequential is the acceptance test of the sharded engine:
// on the builtin c-suite, WithWorkers(4) must classify every fault the same
// as WithWorkers(1), and the Redundant/Aborted/covered counts must be
// identical.  Run under -race this also shakes out data races between the
// workers and the pattern exchange.
func TestWorkersMatchSequential(t *testing.T) {
	for name, c := range cSuite(t) {
		faults := suiteFaults(c)
		for _, mode := range []Mode{Robust, Nonrobust} {
			seq, err := New(c, WithMode(mode), WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			want, err := seq.Run(context.Background(), faults)
			if err != nil {
				t.Fatal(err)
			}
			par, err := New(c, WithMode(mode), WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			if par.Workers() != 4 {
				t.Fatalf("Workers() = %d, want 4", par.Workers())
			}
			got, err := par.Run(context.Background(), faults)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d parallel results, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i].Fault.Key() != want[i].Fault.Key() {
					t.Fatalf("%s: result %d is for %s, want %s (input order broken)",
						name, i, got[i].Fault.Key(), want[i].Fault.Key())
				}
				if statusClass(got[i].Status) != statusClass(want[i].Status) {
					t.Errorf("%s %v: fault %s is %v with 4 workers, %v with 1",
						name, mode, c.Describe(got[i].Fault), got[i].Status, want[i].Status)
				}
			}
			cs, cp := seq.Coverage(), par.Coverage()
			if cs.Detected != cp.Detected || cs.Redundant != cp.Redundant || cs.Aborted != cp.Aborted {
				t.Errorf("%s %v: parallel coverage %+v, sequential %+v", name, mode, cp, cs)
			}
		}
	}
}

// TestWorkersExactStatusesWithoutSim tightens the equivalence: with the
// interleaved simulation disabled every fault's search is independent of
// the others, so the per-fault statuses (not just the coverage classes)
// must be identical for any worker count.
func TestWorkersExactStatusesWithoutSim(t *testing.T) {
	for name, c := range cSuite(t) {
		faults := suiteFaults(c)
		base, err := New(c, WithInterleavedSim(0), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(context.Background(), faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			e, err := New(c, WithInterleavedSim(0), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Run(context.Background(), faults)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Status != want[i].Status {
					t.Errorf("%s workers=%d: fault %s is %v, want %v",
						name, workers, c.Describe(got[i].Fault), got[i].Status, want[i].Status)
				}
			}
			if got, want := e.Tests().Len(), base.Tests().Len(); got != want {
				t.Errorf("%s workers=%d: merged test set has %d pairs, sequential %d", name, workers, got, want)
			}
		}
	}
}

// TestWorkersOptionValidation pins the WithWorkers contract: negative counts
// fail construction, 0 resolves to GOMAXPROCS, and the default is 1.
func TestWorkersOptionValidation(t *testing.T) {
	c, err := Builtin("c17")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, WithWorkers(-1)); err == nil {
		t.Error("New(WithWorkers(-1)): expected an error")
	}
	e, err := New(c, WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); e.Workers() != want {
		t.Errorf("WithWorkers(0): Workers() = %d, want GOMAXPROCS = %d", e.Workers(), want)
	}
	if e, err := New(c); err != nil || e.Workers() != 1 {
		t.Errorf("default engine: Workers() = %d (err %v), want 1", e.Workers(), err)
	}
}

// TestCancellationMidParallelRun cancels a 4-worker run after a few faults
// settle: Run must return ErrCanceled, every fault must come back
// classified (no Pending leaks through the merge), and the cut-short faults
// must be Aborted with the cancellation cause recorded.
func TestCancellationMidParallelRun(t *testing.T) {
	p, ok := ProfileByName("s1423")
	if !ok {
		t.Fatal("missing s1423 profile")
	}
	c, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 512, 7)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	settled := 0
	e, err := New(c, WithMode(Nonrobust), WithWorkers(4), WithProgress(func(r Result) {
		// Serialized by the engine even with 4 workers, so no locking here.
		if r.Err == nil {
			settled++
		}
		if settled >= 8 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Run(ctx, faults)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parallel run: got error %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if len(results) != len(faults) {
		t.Fatalf("got %d results for %d faults", len(results), len(faults))
	}
	finished, canceled := 0, 0
	for _, r := range results {
		switch {
		case r.Status == Pending:
			t.Errorf("fault %s left Pending after a canceled parallel run", r.Fault.Key())
		case r.Err != nil:
			canceled++
			if r.Status != Aborted {
				t.Errorf("canceled fault has status %v, want Aborted", r.Status)
			}
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("canceled fault cause = %v, want context.Canceled", r.Err)
			}
		default:
			finished++
		}
	}
	if finished == 0 {
		t.Error("no fault settled before the cancellation")
	}
	if canceled == 0 {
		t.Error("no fault was cut short: the parallel run was not canceled mid-generation")
	}
	t.Logf("settled=%d canceled=%d", finished, canceled)
}

// TestParallelStream checks the thread-safe streaming path: a 4-worker
// stream must yield exactly one settled result per fault on the consumer's
// goroutine, and breaking out early must cancel the remaining shards before
// the stream returns.
func TestParallelStream(t *testing.T) {
	c, err := Builtin("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := SampleFaults(c, 128, 3)
	e, err := New(c, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	// SampleFaults draws with replacement, so compare per-fault yield counts
	// against the input multiplicity rather than expecting distinct keys.
	want := make(map[string]int)
	for _, f := range faults {
		want[f.Key()]++
	}
	seen := make(map[string]int)
	total := 0
	for r := range e.Stream(context.Background(), faults) {
		seen[r.Fault.Key()]++
		total++
	}
	if total != len(faults) {
		t.Fatalf("stream yielded %d results, want %d", total, len(faults))
	}
	for k, n := range seen {
		if n != want[k] {
			t.Errorf("fault %s yielded %d times, want %d", k, n, want[k])
		}
	}

	// Early break: the break must cut the run short, and by the time the
	// stream returns the engine must be idle and its stats final.
	p, ok := ProfileByName("s1423")
	if !ok {
		t.Fatal("missing s1423 profile")
	}
	big, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	be, err := New(big, WithMode(Nonrobust), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	bigFaults := SampleFaults(big, 512, 3)
	yielded := 0
	for range be.Stream(context.Background(), bigFaults) {
		yielded++
		if yielded == 2 {
			break
		}
	}
	if yielded != 2 {
		t.Fatalf("consumed %d results, want 2", yielded)
	}
	st := be.Stats()
	if st.Faults != len(bigFaults) {
		t.Fatalf("engine targeted %d faults, want %d", st.Faults, len(bigFaults))
	}
	// How many faults the workers manage to settle before the cancellation
	// propagates depends on scheduling; what must hold is that the break cut
	// the run short at all and left nothing pending.
	if st.Aborted == 0 {
		t.Error("no fault was cut short after the early break")
	}
	if got := st.Tested + st.Redundant + st.Aborted + st.DetectedBySim; got != st.Faults {
		t.Errorf("statuses sum to %d, want %d", got, st.Faults)
	}
}
