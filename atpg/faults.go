package atpg

import "repro/internal/paths"

// Fault is a path delay fault: a structural path from a primary input to a
// primary output together with the transition launched at the path input.
// Following Smith's model, every structural path carries two faults, one
// rising and one falling.
type Fault = paths.Fault

// Transition is the direction of the signal change launched at the path
// input.
type Transition = paths.Transition

// The two transition directions.
const (
	Rising  = paths.Rising
	Falling = paths.Falling
)

// AllFaults enumerates the circuit's path delay faults in topological order,
// up to limit (0 = no limit).  Beware: path counts explode on the larger
// circuits, so an unlimited enumeration is only sensible on small ones;
// use [SampleFaults] or [LongestPaths] otherwise.
func AllFaults(c *Circuit, limit int) []Fault {
	if c == nil || c.c == nil {
		return nil
	}
	return paths.EnumerateFaults(c.c, limit)
}

// SampleFaults returns n faults drawn from uniformly sampled structural
// paths, alternating rising and falling transitions.  The seed makes the
// sample reproducible.
func SampleFaults(c *Circuit, n int, seed int64) []Fault {
	if c == nil || c.c == nil {
		return nil
	}
	return paths.SampleFaults(c.c, n, seed)
}

// LongestPaths returns the faults of up to n structurally longest paths (by
// net count), both transitions per path.  Long paths have the least timing
// slack, making them the natural first targets for delay testing.
func LongestPaths(c *Circuit, n int) []Fault {
	if c == nil || c.c == nil {
		return nil
	}
	return paths.Faults(paths.LongestPaths(c.c, n, 0), true)
}
