package atpg_test

import (
	"context"
	"fmt"
	"log"

	"repro/atpg"
)

// ExampleEngine_Run generates robust tests for every path delay fault of
// the c17 reference circuit and summarizes the classifications.
func ExampleEngine_Run() {
	c, err := atpg.Builtin("c17")
	if err != nil {
		log.Fatal(err)
	}
	e, err := atpg.New(c, atpg.WithMode(atpg.Robust))
	if err != nil {
		log.Fatal(err)
	}

	faults := atpg.AllFaults(c, 0)
	results, err := e.Run(context.Background(), faults)
	if err != nil {
		log.Fatal(err)
	}

	counts := map[atpg.Status]int{}
	for _, r := range results {
		counts[r.Status]++
	}
	cov := e.Coverage()
	fmt.Printf("faults: %d\n", len(results))
	fmt.Printf("tested: %d, redundant: %d, aborted: %d\n",
		counts[atpg.Tested]+counts[atpg.DetectedBySim], counts[atpg.Redundant], counts[atpg.Aborted])
	fmt.Printf("coverage: %.1f%%, efficiency: %.1f%%\n", cov.Fraction()*100, cov.Efficiency())
	// Output:
	// faults: 22
	// tested: 22, redundant: 0, aborted: 0
	// coverage: 100.0%, efficiency: 100.0%
}

// ExampleEngine_Stream consumes results as each fault settles instead of
// waiting for the whole run; breaking out of the loop would cancel the
// rest of the generation.
func ExampleEngine_Stream() {
	c, err := atpg.Builtin("c17")
	if err != nil {
		log.Fatal(err)
	}
	e, err := atpg.New(c, atpg.WithMode(atpg.Nonrobust))
	if err != nil {
		log.Fatal(err)
	}

	tests := 0
	for r := range e.Stream(context.Background(), atpg.AllFaults(c, 0)) {
		if r.Status == atpg.Tested {
			tests++ // r.Test holds the two-vector test, ready to persist
		}
	}
	fmt.Printf("streamed %d tests, %d patterns in the set\n", tests, e.Tests().Len())
	// Output:
	// streamed 22 tests, 22 patterns in the set
}

// ExampleNew_parallel shards the fault list of a c432-class circuit across
// four workers.  Sharding never changes what a run achieves — the
// classification of every fault matches the sequential engine — it only
// uses more cores.  (The interleaved simulation is disabled here so the
// example output is byte-for-byte reproducible; with it enabled, covered
// faults may report Tested on one run and DetectedBySim on another,
// depending on which shard's pattern reaches them first.)
func ExampleNew_parallel() {
	c, err := atpg.Builtin("c432")
	if err != nil {
		log.Fatal(err)
	}
	e, err := atpg.New(c,
		atpg.WithWorkers(4), // 0 = one worker per core
		atpg.WithInterleavedSim(0),
	)
	if err != nil {
		log.Fatal(err)
	}

	faults := atpg.SampleFaults(c, 64, 1995)
	results, err := e.Run(context.Background(), faults)
	if err != nil {
		log.Fatal(err)
	}

	counts := map[atpg.Status]int{}
	for _, r := range results {
		counts[r.Status]++
	}
	fmt.Printf("workers: %d\n", e.Workers())
	fmt.Printf("tested: %d, redundant: %d, aborted: %d\n",
		counts[atpg.Tested], counts[atpg.Redundant], counts[atpg.Aborted])
	// Output:
	// workers: 4
	// tested: 43, redundant: 20, aborted: 1
}
