package atpg

import (
	"errors"

	"repro/internal/circuit"
)

// Sentinel errors returned by the package.  Match them with errors.Is; they
// are usually wrapped with additional context.
var (
	// ErrCanceled is returned by Engine.Run when the context is canceled or
	// its deadline expires before every fault has settled.  The returned
	// error also wraps the context cause, so errors.Is(err, context.Canceled)
	// or errors.Is(err, context.DeadlineExceeded) work as expected.
	ErrCanceled = errors.New("atpg: generation canceled")
	// ErrNoFaults is returned by Engine.Run when the target fault list is
	// empty.
	ErrNoFaults = errors.New("atpg: no target faults")
	// ErrBadWidth is returned by New when WithWordWidth is given a width
	// outside 1..MaxWordWidth.
	ErrBadWidth = errors.New("atpg: word width out of range")
	// ErrNilCircuit is returned by New when the circuit is nil.
	ErrNilCircuit = errors.New("atpg: nil circuit")
)

// ParseError is the error type produced by the .bench parser ([LoadBench],
// [ParseBench]): it records the file and line of the problem and wraps the
// underlying cause.  Retrieve it with errors.As.
type ParseError = circuit.ParseError
