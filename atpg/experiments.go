package atpg

import "repro/internal/harness"

// This file re-exports the experiment harness that reproduces the paper's
// tables, so cmd/experiments (and external reproductions) need nothing
// beyond repro/atpg.

// ExperimentConfig controls the size, word width and seeding of an
// experiment run over the benchmark suites.
type ExperimentConfig = harness.Config

// ATPGRow is one row of Table 3 (robust) or Table 4 (nonrobust).
type ATPGRow = harness.ATPGRow

// SpeedupRow is one row of Table 5 (robust) or Table 6 (nonrobust).
type SpeedupRow = harness.SpeedupRow

// CompareRow is one row of Table 7 (nonrobust) or Table 8 (robust).
type CompareRow = harness.CompareRow

// AblationRow is one configuration of an ablation sweep.
type AblationRow = harness.AblationRow

// GroupingRow is one circuit x engine cell of the grouping ablation: the
// Tables 5/6 width-economics comparison re-run with fault-serial, fixed-wide
// and adaptive grouping under the incremental and full-sweep engines.
type GroupingRow = harness.GroupingRow

// CoverageEstimate is the NEST-style coverage-estimation experiment result.
type CoverageEstimate = harness.CoverageEstimate

// DefaultExperimentConfig returns the full-size configuration used by
// cmd/experiments.
func DefaultExperimentConfig(mode Mode) ExperimentConfig { return harness.DefaultConfig(mode) }

// QuickExperimentConfig returns a scaled-down configuration suitable for
// tests and quick runs.
func QuickExperimentConfig(mode Mode) ExperimentConfig { return harness.QuickConfig(mode) }

// RunTable3 reproduces Table 3: robust ATPG over the ISCAS85-class suite.
func RunTable3(cfg ExperimentConfig) []ATPGRow { return harness.RunTable3(cfg) }

// RunTable4 reproduces Table 4: nonrobust ATPG over the ISCAS85-class suite.
func RunTable4(cfg ExperimentConfig) []ATPGRow { return harness.RunTable4(cfg) }

// RunTable5 reproduces Table 5: bit-parallel vs single-bit generation,
// robust.
func RunTable5(cfg ExperimentConfig) []SpeedupRow { return harness.RunTable5(cfg) }

// RunTable6 reproduces Table 6: bit-parallel vs single-bit generation,
// nonrobust.
func RunTable6(cfg ExperimentConfig) []SpeedupRow { return harness.RunTable6(cfg) }

// RunTable7 reproduces Table 7: TIP vs a structural baseline, nonrobust,
// L=32.
func RunTable7(cfg ExperimentConfig) []CompareRow { return harness.RunTable7(cfg) }

// RunTable8 reproduces Table 8: TIP vs a structural baseline, robust, L=32.
func RunTable8(cfg ExperimentConfig) []CompareRow { return harness.RunTable8(cfg) }

// FormatATPGTable renders Table 3/4 rows in the paper's layout.
func FormatATPGTable(title string, rows []ATPGRow) string {
	return harness.FormatATPGTable(title, rows)
}

// FormatSpeedupTable renders Table 5/6 rows in the paper's layout.
func FormatSpeedupTable(title string, rows []SpeedupRow) string {
	return harness.FormatSpeedupTable(title, rows)
}

// FormatCompareTable renders Table 7/8 rows in the paper's layout.
func FormatCompareTable(title string, rows []CompareRow) string {
	return harness.FormatCompareTable(title, rows)
}

// SpeedupSummary returns the average and maximum speed-up of a Table 5/6
// run, the paper's headline numbers.
func SpeedupSummary(rows []SpeedupRow) (avg, max float64) { return harness.SpeedupSummary(rows) }

// RunWordWidthAblation sweeps the word width L, the paper's central design
// parameter.
func RunWordWidthAblation(cfg ExperimentConfig, widths []int) []AblationRow {
	return harness.RunWordWidthAblation(cfg, widths)
}

// RunModeAblation compares FPTPG-only, APTPG-only and the combined
// generator.
func RunModeAblation(cfg ExperimentConfig) []AblationRow { return harness.RunModeAblation(cfg) }

// RunWorkerAblation sweeps the worker count of the sharded engine (counts
// defaults to 1, 2 and GOMAXPROCS): core-level parallelism on top of the
// paper's word-level parallelism.
func RunWorkerAblation(cfg ExperimentConfig, counts []int) []AblationRow {
	return harness.RunWorkerAblation(cfg, counts)
}

// RunFaultSimAblation compares generation with and without the interleaved
// fault simulation.
func RunFaultSimAblation(cfg ExperimentConfig) []AblationRow { return harness.RunFaultSimAblation(cfg) }

// RunCompactionAblation compares the test-set size and run time across the
// static compaction levels (none / reverse-order simulation / full
// merge+reverse).
func RunCompactionAblation(cfg ExperimentConfig) []AblationRow {
	return harness.RunCompactionAblation(cfg)
}

// RunPruningAblation compares generation with and without subpath
// redundancy pruning.
func RunPruningAblation(cfg ExperimentConfig) []AblationRow { return harness.RunPruningAblation(cfg) }

// RunGroupingAblation re-runs the Tables 5/6 comparison with fault-serial
// (L=1), fixed-wide and two-pass adaptive grouping, under both the
// incremental event-driven implication engine and the retained full-sweep
// oracle — the honest re-measurement of the paper's width economics on the
// new cost model.
func RunGroupingAblation(cfg ExperimentConfig) []GroupingRow {
	return harness.RunGroupingAblation(cfg)
}

// FormatGroupingTable renders grouping ablation rows.
func FormatGroupingTable(title string, rows []GroupingRow) string {
	return harness.FormatGroupingTable(title, rows)
}

// FormatAblationTable renders ablation rows.
func FormatAblationTable(title string, rows []AblationRow) string {
	return harness.FormatAblationTable(title, rows)
}

// RunCoverageEstimate produces the NEST-style coverage-estimation
// experiment for the named profile circuit.
func RunCoverageEstimate(cfg ExperimentConfig, profileName string, sampleSize int) CoverageEstimate {
	return harness.RunCoverageEstimate(cfg, profileName, sampleSize)
}
