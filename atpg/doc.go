// Package atpg is the public API of the HenftlingW95 reproduction: a
// bit-parallel automatic test pattern generator (ATPG) for path delay
// faults, as described in "A Single-Path-Oriented Fault-Efficient ATPG for
// Standard Scan Designs" (Henftling & Wittmann, EDAC 1995 / DATE).
//
// Everything an external program needs lives in this package: circuit
// loading ([LoadBench], [Builtin], [Synthesize]), fault selection
// ([AllFaults], [SampleFaults], [LongestPaths]), the generator itself
// ([Engine], built with [New] and functional options), fault simulation
// ([Simulate], [FaultCoverage], [EstimateFaultCoverage]) and the paper's
// experiment harness (RunTable3 … RunTable8).  The repro/internal packages
// are implementation detail and not importable.
//
// # Quickstart
//
//	c, err := atpg.Builtin("c17")
//	if err != nil { ... }
//	e, err := atpg.New(c, atpg.WithMode(atpg.Robust))
//	if err != nil { ... }
//	results, err := e.Run(context.Background(), atpg.AllFaults(c, 0))
//	for _, r := range results {
//		fmt.Println(c.Describe(r.Fault), r.Status)
//	}
//
// Results can also be consumed as they are produced, via the streaming
// iterator [Engine.Stream]:
//
//	for r := range e.Stream(ctx, faults) {
//		if r.Status == atpg.Tested { persist(r.Test) }
//	}
//
// # How the options map onto the paper
//
// The paper combines two forms of bit parallelism over the L bit levels of
// a machine word (Section 3); each option controls one published knob:
//
//   - [WithWordWidth] sets L, the number of bit levels exploited
//     (1..[MaxWordWidth], Section 3; Tables 3-6 use 64, Tables 7-8 use 32).
//     L = 1 is the single-bit baseline of Tables 5 and 6; L > 64 extends the
//     paper's machine word to multi-word plane vectors.
//   - [WithMode] selects the test class: [Robust] (Lin/Reddy robust path
//     delay tests) or [Nonrobust], the two classes of Tables 3 and 4.
//   - [WithFaultParallel] toggles FPTPG (fault-parallel test pattern
//     generation, Section 3.1): up to L target faults are sensitized
//     simultaneously, one per bit level, and justified with shared
//     bit-parallel implications.
//   - [WithAlternativeParallel] toggles APTPG (alternative-parallel test
//     pattern generation, Section 3.2): a single hard fault is flattened
//     onto all L bit levels and all value combinations of up to log2(L)
//     backtrace-selected inputs are examined in parallel.
//   - [WithBacktrackLimit] bounds the conventional backtracks APTPG spends
//     per fault before aborting it (the abort limit behind the efficiency
//     column of Tables 3 and 4).
//   - [WithInterleavedSim] sets the interleaved fault-simulation interval:
//     the paper simulates the pending faults after every L generated
//     patterns and drops the detected ones.
//   - [WithProgress] registers a callback invoked as each fault settles;
//     it observes the same stream [Engine.Stream] yields.
//
// # Beyond the paper: scheduling, work-stealing, adaptive grouping
//
// The paper's parallelism lives inside one machine word; [WithWorkers]
// multiplies it by core-level parallelism.  All fault dispatch goes
// through one scheduling layer: the fault list is cut into work units
// (word-parallel fault groups) that n worker goroutines claim from
// per-worker queues, each worker running an independent generator over
// the shared immutable circuit.  [WithSchedule] selects the dispatch
// policy — [ScheduleStatic] pre-assigns contiguous runs of units, the
// classic shard split, while [ScheduleSteal] additionally lets an idle
// worker steal queued units from the most loaded peer, so clustered hard
// faults do not serialize on one worker.  The workers cooperate: patterns
// emitted by one are fault-simulated against the others' pending faults,
// so the interleaved-simulation dropping of the paper keeps working
// across workers.  Results merge into the same deterministic,
// input-ordered slice [Engine.Run] always returns — the merged test set
// is reassembled in canonical fault order, so with the interleaved
// simulation disabled it is identical for every worker count and dispatch
// policy (with it enabled, which covered fault contributes a pattern still
// depends on cross-worker drop timing) — and the test set, statistics and
// learned redundant subpaths accumulate in the engine exactly as in a
// sequential run.
//
// [WithEscalation] enables two-pass adaptive fault grouping: every fault
// first runs fault-serial (width 1) under a cheap backtrack budget
// ([WithFirstPassBudget]), and only the survivors are regrouped into wide
// word-parallel groups under the full budget — word-level sharing is
// spent where the search is expensive enough to pay for it.  See
// docs/ARCHITECTURE.md ("Scheduling") for the design.
//
// Generation honors context cancellation and deadlines: a canceled run
// returns early with an error matching [ErrCanceled], and every fault that
// had not settled yet is reported as [Aborted] with the cancellation cause
// in its Err field.
package atpg
