package paths

import (
	"math/rand"
	"sort"

	"repro/internal/circuit"
)

// EnumOptions configures a path Enumerator.
type EnumOptions struct {
	// MaxPaths limits the number of paths produced; 0 means no limit.
	MaxPaths int
	// FromInputs restricts enumeration to paths starting at the given
	// primary inputs; empty means all inputs.
	FromInputs []circuit.NetID
	// MinLen and MaxLen restrict the number of nets on a path; 0 means
	// unrestricted.
	MinLen int
	MaxLen int
}

// Enumerator lazily produces the structural paths of a circuit in
// depth-first order.  It never materialises more than one path at a time, so
// circuits with millions of paths can be walked with a bounded budget.
type Enumerator struct {
	c       *circuit.Circuit
	opts    EnumOptions
	stack   []frame
	current []circuit.NetID
	emitted int
	done    bool
}

type frame struct {
	net  circuit.NetID
	next int // next fanout alternative to explore (0 == emit-if-output not yet considered)
}

// NewEnumerator returns an enumerator over the structural paths of c.
func NewEnumerator(c *circuit.Circuit, opts EnumOptions) *Enumerator {
	e := &Enumerator{c: c, opts: opts}
	inputs := opts.FromInputs
	if len(inputs) == 0 {
		inputs = c.Inputs()
	}
	// Seed the stack with the starting inputs in reverse order so they are
	// explored in declaration order.
	for i := len(inputs) - 1; i >= 0; i-- {
		e.stack = append(e.stack, frame{net: inputs[i], next: -1})
	}
	return e
}

// Next returns the next structural path and true, or a zero path and false
// when the enumeration is exhausted (or the MaxPaths budget is reached).
// The returned path shares no storage with the enumerator.
func (e *Enumerator) Next() (Path, bool) {
	if e.done {
		return Path{}, false
	}
	for len(e.stack) > 0 {
		if e.opts.MaxPaths > 0 && e.emitted >= e.opts.MaxPaths {
			e.done = true
			return Path{}, false
		}
		top := &e.stack[len(e.stack)-1]
		if top.next == -1 {
			// First visit of this frame: push the net onto the current path
			// and emit it if it is a primary output.
			e.current = append(e.current, top.net)
			top.next = 0
			if e.c.IsOutput(top.net) && e.lenOK(len(e.current)) {
				e.emitted++
				return Path{Nets: append([]circuit.NetID(nil), e.current...)}, true
			}
			continue
		}
		g := e.c.Gate(top.net)
		if top.next < len(g.Fanout) && (e.opts.MaxLen == 0 || len(e.current) < e.opts.MaxLen) {
			child := g.Fanout[top.next]
			top.next++
			e.stack = append(e.stack, frame{net: child, next: -1})
			continue
		}
		// Exhausted this net: pop it from both stacks.
		e.stack = e.stack[:len(e.stack)-1]
		e.current = e.current[:len(e.current)-1]
	}
	e.done = true
	return Path{}, false
}

func (e *Enumerator) lenOK(n int) bool {
	if e.opts.MinLen > 0 && n < e.opts.MinLen {
		return false
	}
	if e.opts.MaxLen > 0 && n > e.opts.MaxLen {
		return false
	}
	return true
}

// Enumerate collects up to limit structural paths of c (all of them when
// limit <= 0).
func Enumerate(c *circuit.Circuit, limit int) []Path {
	e := NewEnumerator(c, EnumOptions{MaxPaths: limit})
	var out []Path
	for {
		p, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// EnumerateFaults collects up to limit path delay faults (two per structural
// path, rising first).  A limit <= 0 collects all faults.
func EnumerateFaults(c *circuit.Circuit, limit int) []Fault {
	pathLimit := 0
	if limit > 0 {
		pathLimit = (limit + 1) / 2
	}
	ps := Enumerate(c, pathLimit)
	fs := Faults(ps, true)
	if limit > 0 && len(fs) > limit {
		fs = fs[:limit]
	}
	return fs
}

// Sample returns n structural paths drawn (approximately) uniformly at
// random from the set of all structural paths, using weighted random walks
// from the primary inputs: at every step the next edge is chosen with
// probability proportional to the number of paths continuing through it.
// Sampling is deterministic for a given seed.  Duplicate paths may appear
// when n approaches the total path count.
func Sample(c *circuit.Circuit, n int, seed int64) []Path {
	if n <= 0 {
		return nil
	}
	weights := ApproxPathsToOutputs(c)
	rng := rand.New(rand.NewSource(seed))

	inputs := c.Inputs()
	inputWeights := make([]float64, len(inputs))
	total := 0.0
	for i, in := range inputs {
		inputWeights[i] = weights[in]
		total += weights[in]
	}
	if total == 0 {
		return nil
	}

	out := make([]Path, 0, n)
	for len(out) < n {
		// Pick a starting input weighted by its path count.
		r := rng.Float64() * total
		idx := 0
		for ; idx < len(inputs)-1; idx++ {
			if r < inputWeights[idx] {
				break
			}
			r -= inputWeights[idx]
		}
		nets := []circuit.NetID{inputs[idx]}
		cur := inputs[idx]
		for {
			g := c.Gate(cur)
			// Decide whether to stop here (if cur is an output) or continue,
			// weighted by the respective path counts.
			contWeight := 0.0
			for _, fo := range g.Fanout {
				contWeight += weights[fo]
			}
			stopWeight := 0.0
			if g.IsOutput {
				stopWeight = 1.0
			}
			if contWeight+stopWeight == 0 {
				break // dead end (cannot happen in validated circuits)
			}
			if rng.Float64()*(contWeight+stopWeight) < stopWeight {
				out = append(out, Path{Nets: append([]circuit.NetID(nil), nets...)})
				break
			}
			// Choose the next fanout edge weighted by its path count.
			r := rng.Float64() * contWeight
			next := g.Fanout[len(g.Fanout)-1]
			for _, fo := range g.Fanout {
				if r < weights[fo] {
					next = fo
					break
				}
				r -= weights[fo]
			}
			nets = append(nets, next)
			cur = next
		}
	}
	return out
}

// SampleFaults returns n path delay faults drawn from uniformly sampled
// paths, alternating rising and falling transitions.
func SampleFaults(c *circuit.Circuit, n int, seed int64) []Fault {
	if n <= 0 {
		return nil
	}
	ps := Sample(c, (n+1)/2, seed)
	fs := Faults(ps, true)
	if len(fs) > n {
		fs = fs[:n]
	}
	return fs
}

// LongestPaths returns up to n of the structurally longest paths (by net
// count).  Long paths are the natural first targets for delay testing, since
// they have the least timing slack.  The implementation enumerates lazily
// but bounds its work to maxExplore paths (0 means 4*n*circuit depth).
func LongestPaths(c *circuit.Circuit, n, maxExplore int) []Path {
	if n <= 0 {
		return nil
	}
	if maxExplore <= 0 {
		maxExplore = 4 * n * (c.MaxLevel() + 2)
	}
	e := NewEnumerator(c, EnumOptions{MaxPaths: maxExplore})
	var all []Path
	for {
		p, ok := e.Next()
		if !ok {
			break
		}
		all = append(all, p)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Len() > all[j].Len() })
	if len(all) > n {
		all = all[:n]
	}
	return all
}
