// Package paths provides the structural path model for path delay faults:
// path representation, rising/falling path delay faults, exact path
// counting, lazy enumeration and uniform sampling.
//
// A structural path runs from a primary input to a primary output through
// the fanin/fanout edges of the circuit.  Following the path delay fault
// model of Smith, every structural path carries two potential delay faults,
// one for a rising and one for a falling transition at the path input.
package paths

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Path is a structural path: the sequence of nets from a primary input
// (first element) to a primary output (last element).  Consecutive nets are
// connected by a fanin edge of the circuit.
type Path struct {
	Nets []circuit.NetID
}

// Input returns the primary input the path starts at.
func (p Path) Input() circuit.NetID { return p.Nets[0] }

// Output returns the primary output the path ends at.
func (p Path) Output() circuit.NetID { return p.Nets[len(p.Nets)-1] }

// Len returns the number of nets on the path.
func (p Path) Len() int { return len(p.Nets) }

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{Nets: append([]circuit.NetID(nil), p.Nets...)}
}

// Key returns a compact unique key for the path, usable as a map key.
func (p Path) Key() string {
	var sb strings.Builder
	for i, n := range p.Nets {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	return sb.String()
}

// ContainsSubpath reports whether the consecutive net sequence sub occurs on
// the path.
func (p Path) ContainsSubpath(sub []circuit.NetID) bool {
	if len(sub) == 0 || len(sub) > len(p.Nets) {
		return false
	}
outer:
	for i := 0; i+len(sub) <= len(p.Nets); i++ {
		for j, s := range sub {
			if p.Nets[i+j] != s {
				continue outer
			}
		}
		return true
	}
	return false
}

// Describe renders the path with net names, e.g. "b - p - x".
func (p Path) Describe(c *circuit.Circuit) string {
	names := make([]string, len(p.Nets))
	for i, n := range p.Nets {
		names[i] = c.NetName(n)
	}
	return strings.Join(names, " - ")
}

// Validate checks that the path is structurally present in the circuit:
// it starts at a primary input, ends at a primary output and every
// consecutive pair is a fanin edge.
func (p Path) Validate(c *circuit.Circuit) error {
	if len(p.Nets) == 0 {
		return fmt.Errorf("paths: empty path")
	}
	if !c.IsInput(p.Input()) {
		return fmt.Errorf("paths: path does not start at a primary input (%s)", c.NetName(p.Input()))
	}
	if !c.IsOutput(p.Output()) {
		return fmt.Errorf("paths: path does not end at a primary output (%s)", c.NetName(p.Output()))
	}
	for i := 1; i < len(p.Nets); i++ {
		found := false
		for _, f := range c.Gate(p.Nets[i]).Fanin {
			if f == p.Nets[i-1] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("paths: %s is not a fanin of %s", c.NetName(p.Nets[i-1]), c.NetName(p.Nets[i]))
		}
	}
	return nil
}

// Transition is the direction of the signal change at a net.
type Transition uint8

// The two transition directions.
const (
	Rising  Transition = iota // 0 -> 1
	Falling                   // 1 -> 0
)

// String returns "rising" or "falling".
func (t Transition) String() string {
	if t == Rising {
		return "rising"
	}
	return "falling"
}

// Invert returns the opposite transition.
func (t Transition) Invert() Transition { return t ^ 1 }

// Value7 returns the seven-valued logic value representing the transition
// (its final value): a rising transition is 1ŝ, a falling transition is 0ŝ.
func (t Transition) Value7() logic.Value7 {
	if t == Rising {
		return logic.Rise7
	}
	return logic.Fall7
}

// FinalValue3 returns the three-valued final value of the transition.
func (t Transition) FinalValue3() logic.Value3 {
	if t == Rising {
		return logic.One3
	}
	return logic.Zero3
}

// Fault is a path delay fault: a structural path together with the direction
// of the transition launched at the path input.
type Fault struct {
	Path       Path
	Transition Transition
}

// Key returns a unique key for the fault.
func (f Fault) Key() string {
	return fmt.Sprintf("%s/%s", f.Path.Key(), f.Transition)
}

// Describe renders the fault with net names and the launch transition.
func (f Fault) Describe(c *circuit.Circuit) string {
	return fmt.Sprintf("%s (%s at %s)", f.Path.Describe(c), f.Transition, c.NetName(f.Path.Input()))
}

// Transitions returns the transition direction expected at every net along
// the path, starting with the launch transition at the path input.  The
// direction flips through inverting gates (NOT, NAND, NOR); for XOR and XNOR
// gates the convention of the sensitization procedure is used: side inputs
// are held at the gate's neutral value (0 for XOR, giving a non-inverting
// stage; XNOR is then inverting).
func (f Fault) Transitions(c *circuit.Circuit) []Transition {
	out := make([]Transition, len(f.Path.Nets))
	t := f.Transition
	out[0] = t
	for i := 1; i < len(f.Path.Nets); i++ {
		if c.Gate(f.Path.Nets[i]).Kind.Inverting() {
			t = t.Invert()
		}
		out[i] = t
	}
	return out
}

// Faults expands a set of paths into path delay faults.  When both is true,
// each path yields a rising and a falling fault; otherwise only the rising
// fault is produced.
func Faults(ps []Path, both bool) []Fault {
	out := make([]Fault, 0, len(ps)*2)
	for _, p := range ps {
		out = append(out, Fault{Path: p, Transition: Rising})
		if both {
			out = append(out, Fault{Path: p, Transition: Falling})
		}
	}
	return out
}
