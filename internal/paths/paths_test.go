package paths

import (
	"math/big"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
)

func TestCountPathsC17(t *testing.T) {
	c := bench.C17()
	// c17 has exactly 11 structural paths and therefore 22 path delay faults.
	if got := CountPaths(c); got.Cmp(big.NewInt(11)) != 0 {
		t.Errorf("CountPaths(c17) = %v, want 11", got)
	}
	if got := CountFaults(c); got.Cmp(big.NewInt(22)) != 0 {
		t.Errorf("CountFaults(c17) = %v, want 22", got)
	}
	if got := CountPathsFloat(c); got != 11 {
		t.Errorf("CountPathsFloat(c17) = %v, want 11", got)
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	circuits := []*circuit.Circuit{
		bench.C17(),
		bench.PaperExample(),
		bench.RedundantExample(),
		bench.Adder(4),
		bench.ParityTree(8),
		bench.MuxTree(3),
		bench.Comparator(4),
	}
	for _, c := range circuits {
		want := CountPaths(c)
		ps := Enumerate(c, 0)
		if big.NewInt(int64(len(ps))).Cmp(want) != 0 {
			t.Errorf("%s: enumerated %d paths, counted %v", c.Name, len(ps), want)
		}
		seen := make(map[string]bool, len(ps))
		for _, p := range ps {
			if err := p.Validate(c); err != nil {
				t.Errorf("%s: invalid path %s: %v", c.Name, p.Describe(c), err)
			}
			k := p.Key()
			if seen[k] {
				t.Errorf("%s: duplicate path %s", c.Name, p.Describe(c))
			}
			seen[k] = true
		}
	}
}

func TestEnumerateSyntheticMatchesCount(t *testing.T) {
	p := bench.Profile{Name: "tiny", Inputs: 8, Outputs: 4, Gates: 60, Depth: 8, Seed: 3,
		InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.2}
	c := bench.MustSynthesize(p)
	want := CountPaths(c)
	ps := Enumerate(c, 0)
	if big.NewInt(int64(len(ps))).Cmp(want) != 0 {
		t.Errorf("enumerated %d paths, counted %v", len(ps), want)
	}
}

func TestEnumerateLimit(t *testing.T) {
	c := bench.Adder(8)
	total := CountPaths(c).Int64()
	if total < 20 {
		t.Fatalf("adder8 unexpectedly small: %d paths", total)
	}
	ps := Enumerate(c, 10)
	if len(ps) != 10 {
		t.Errorf("Enumerate with limit 10 returned %d paths", len(ps))
	}
	fs := EnumerateFaults(c, 7)
	if len(fs) != 7 {
		t.Errorf("EnumerateFaults with limit 7 returned %d faults", len(fs))
	}
	for _, f := range fs {
		if err := f.Path.Validate(c); err != nil {
			t.Errorf("invalid fault path: %v", err)
		}
	}
}

func TestEnumeratorOptions(t *testing.T) {
	c := bench.C17()
	in3 := c.NetByName("3")
	e := NewEnumerator(c, EnumOptions{FromInputs: []circuit.NetID{in3}})
	count := 0
	for {
		p, ok := e.Next()
		if !ok {
			break
		}
		if p.Input() != in3 {
			t.Errorf("path %s does not start at input 3", p.Describe(c))
		}
		count++
	}
	// Input 3 reaches gate 10 (1 path) and gate 11 (3 paths).
	if count != 4 {
		t.Errorf("input 3 has %d paths, want 4", count)
	}

	e = NewEnumerator(c, EnumOptions{MinLen: 4})
	for {
		p, ok := e.Next()
		if !ok {
			break
		}
		if p.Len() < 4 {
			t.Errorf("MinLen violated: %s", p.Describe(c))
		}
	}
	e = NewEnumerator(c, EnumOptions{MaxLen: 3})
	for {
		p, ok := e.Next()
		if !ok {
			break
		}
		if p.Len() > 3 {
			t.Errorf("MaxLen violated: %s", p.Describe(c))
		}
	}
	// Exhausted enumerators stay exhausted.
	if _, ok := e.Next(); ok {
		t.Error("exhausted enumerator returned another path")
	}
}

func TestPathsThroughConsistency(t *testing.T) {
	for _, c := range []*circuit.Circuit{bench.C17(), bench.Adder(6), bench.MuxTree(3)} {
		through := PathsThrough(c)
		total := CountPaths(c)
		// The paths through all primary inputs sum to the total path count.
		sum := new(big.Int)
		for _, in := range c.Inputs() {
			sum.Add(sum, through[in])
		}
		if sum.Cmp(total) != 0 {
			t.Errorf("%s: paths through inputs sum to %v, want %v", c.Name, sum, total)
		}
		// Same for primary outputs that do not feed further logic.
		sum.SetInt64(0)
		allTerminal := true
		for _, out := range c.Outputs() {
			if len(c.Gate(out).Fanout) > 0 {
				allTerminal = false
			}
			sum.Add(sum, through[out])
		}
		if allTerminal && sum.Cmp(total) != 0 {
			t.Errorf("%s: paths through outputs sum to %v, want %v", c.Name, sum, total)
		}
	}
}

func TestFromToCountsAgree(t *testing.T) {
	c := bench.PaperExample()
	from := PathsFromInputs(c)
	to := PathsToOutputs(c)
	// Total paths computed from either direction agree.
	viaInputs := new(big.Int)
	for _, in := range c.Inputs() {
		viaInputs.Add(viaInputs, to[in])
	}
	viaOutputs := new(big.Int)
	for _, out := range c.Outputs() {
		viaOutputs.Add(viaOutputs, from[out])
	}
	if viaInputs.Cmp(viaOutputs) != 0 {
		t.Errorf("path counts disagree: %v from inputs, %v from outputs", viaInputs, viaOutputs)
	}
}

func TestPathHelpers(t *testing.T) {
	c := bench.PaperExample()
	b := c.NetByName("b")
	p := c.NetByName("p")
	x := c.NetByName("x")
	path := Path{Nets: []circuit.NetID{b, p, x}}
	if err := path.Validate(c); err != nil {
		t.Fatalf("path b-p-x should be valid: %v", err)
	}
	if path.Input() != b || path.Output() != x || path.Len() != 3 {
		t.Error("path accessors wrong")
	}
	if path.Describe(c) != "b - p - x" {
		t.Errorf("Describe = %q", path.Describe(c))
	}
	if !path.ContainsSubpath([]circuit.NetID{b, p}) || !path.ContainsSubpath([]circuit.NetID{p, x}) {
		t.Error("ContainsSubpath should find consecutive segments")
	}
	if path.ContainsSubpath([]circuit.NetID{b, x}) {
		t.Error("b-x is not a consecutive segment of b-p-x")
	}
	if path.ContainsSubpath(nil) {
		t.Error("empty subpath should not be contained")
	}
	clone := path.Clone()
	clone.Nets[0] = x
	if path.Nets[0] != b {
		t.Error("Clone should not share storage")
	}
	// Invalid paths are rejected.
	bad := Path{Nets: []circuit.NetID{p, x}}
	if err := bad.Validate(c); err == nil {
		t.Error("path starting at a gate should be invalid")
	}
	bad = Path{Nets: []circuit.NetID{b, x}}
	if err := bad.Validate(c); err == nil {
		t.Error("path with a missing edge should be invalid")
	}
	bad = Path{Nets: []circuit.NetID{b, p}}
	if err := bad.Validate(c); err == nil {
		t.Error("path ending at a gate should be invalid")
	}
	if err := (Path{}).Validate(c); err == nil {
		t.Error("empty path should be invalid")
	}
}

func TestFaultTransitions(t *testing.T) {
	c := bench.PaperExample()
	// Path b - q - s - x: q and s are NAND (inverting), x is OR.
	path := Path{Nets: []circuit.NetID{c.NetByName("b"), c.NetByName("q"), c.NetByName("s"), c.NetByName("x")}}
	if err := path.Validate(c); err != nil {
		t.Fatal(err)
	}
	f := Fault{Path: path, Transition: Rising}
	trans := f.Transitions(c)
	want := []Transition{Rising, Falling, Rising, Rising}
	for i := range want {
		if trans[i] != want[i] {
			t.Errorf("transition at %s = %v, want %v", c.NetName(path.Nets[i]), trans[i], want[i])
		}
	}
	f2 := Fault{Path: path, Transition: Falling}
	trans2 := f2.Transitions(c)
	for i := range trans {
		if trans2[i] != trans[i].Invert() {
			t.Error("falling fault transitions should be the complement of the rising ones")
		}
	}
	if f.Key() == f2.Key() {
		t.Error("rising and falling faults must have distinct keys")
	}
	if Rising.Value7() != logic.Rise7 || Falling.Value7() != logic.Fall7 {
		t.Error("Transition.Value7 mapping wrong")
	}
	if Rising.FinalValue3() != logic.One3 || Falling.FinalValue3() != logic.Zero3 {
		t.Error("Transition.FinalValue3 mapping wrong")
	}
	if Rising.String() != "rising" || Falling.String() != "falling" {
		t.Error("Transition.String wrong")
	}
}

func TestFaultsExpansion(t *testing.T) {
	c := bench.C17()
	ps := Enumerate(c, 5)
	fs := Faults(ps, true)
	if len(fs) != 10 {
		t.Errorf("Faults(both) returned %d, want 10", len(fs))
	}
	fs = Faults(ps, false)
	if len(fs) != 5 {
		t.Errorf("Faults(rising only) returned %d, want 5", len(fs))
	}
	for _, f := range fs {
		if f.Transition != Rising {
			t.Error("rising-only expansion produced a falling fault")
		}
	}
}

func TestSampleDeterministicAndValid(t *testing.T) {
	c := bench.Adder(12)
	a := Sample(c, 50, 7)
	b := Sample(c, 50, 7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("Sample returned %d and %d paths", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("sampling is not deterministic for the same seed")
		}
	}
	for _, p := range a {
		if err := p.Validate(c); err != nil {
			t.Errorf("sampled path invalid: %v", err)
		}
	}
	diff := Sample(c, 50, 8)
	same := true
	for i := range diff {
		if diff[i].Key() != a[i].Key() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different samples")
	}
	if got := Sample(c, 0, 1); got != nil {
		t.Error("Sample(0) should return nil")
	}
	fs := SampleFaults(c, 11, 3)
	if len(fs) != 11 {
		t.Errorf("SampleFaults returned %d faults, want 11", len(fs))
	}
}

func TestLongestPaths(t *testing.T) {
	c := bench.Adder(8)
	longest := LongestPaths(c, 5, 0)
	if len(longest) != 5 {
		t.Fatalf("LongestPaths returned %d paths", len(longest))
	}
	for i := 1; i < len(longest); i++ {
		if longest[i].Len() > longest[i-1].Len() {
			t.Error("LongestPaths is not sorted by decreasing length")
		}
	}
	// The longest path of a ripple-carry adder runs through every carry
	// stage: its length is at least proportional to the width.
	if longest[0].Len() < 10 {
		t.Errorf("longest path of adder8 has only %d nets", longest[0].Len())
	}
	if got := LongestPaths(c, 0, 0); got != nil {
		t.Error("LongestPaths(0) should return nil")
	}
}

func BenchmarkCountPaths(b *testing.B) {
	p, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPaths(c)
	}
}

func BenchmarkEnumerate1000(b *testing.B) {
	p, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(c, 1000)
	}
}

func BenchmarkSample1000(b *testing.B) {
	p, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(c, 1000, int64(i))
	}
}
