package paths

import (
	"math"
	"math/big"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// CountPaths returns the exact number of structural paths in the circuit
// (from any primary input to any primary output).  The count is computed
// with a single topological sweep and is exact even for circuits whose path
// count exceeds the range of uint64 (such as c6288-class multipliers).
func CountPaths(c *circuit.Circuit) *big.Int {
	toOut := PathsToOutputs(c)
	total := new(big.Int)
	for _, in := range c.Inputs() {
		total.Add(total, toOut[in])
	}
	return total
}

// CountFaults returns the number of path delay faults, i.e. twice the number
// of structural paths (a rising and a falling fault per path).  This is the
// "# faults" column of Tables 3 and 4 of the paper.
func CountFaults(c *circuit.Circuit) *big.Int {
	n := CountPaths(c)
	return n.Mul(n, big.NewInt(2))
}

// PathsToOutputs returns, for every net, the exact number of structural
// paths from that net to any primary output.  A primary output that also
// feeds further logic contributes both the path ending there and the paths
// continuing through it.
func PathsToOutputs(c *circuit.Circuit) []*big.Int {
	counts := make([]*big.Int, c.NumNets())
	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		n := new(big.Int)
		if g.IsOutput {
			n.SetInt64(1)
		}
		for _, fo := range g.Fanout {
			n.Add(n, counts[fo])
		}
		counts[id] = n
	}
	return counts
}

// PathsFromInputs returns, for every net, the exact number of structural
// paths from any primary input to that net.
func PathsFromInputs(c *circuit.Circuit) []*big.Int {
	counts := make([]*big.Int, c.NumNets())
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		n := new(big.Int)
		if g.Kind == logic.Input {
			n.SetInt64(1)
		}
		for _, f := range g.Fanin {
			n.Add(n, counts[f])
		}
		counts[id] = n
	}
	return counts
}

// PathsThrough returns, for every net, the exact number of structural paths
// passing through (or starting/ending at) that net.
func PathsThrough(c *circuit.Circuit) []*big.Int {
	from := PathsFromInputs(c)
	to := PathsToOutputs(c)
	out := make([]*big.Int, c.NumNets())
	for i := range out {
		out[i] = new(big.Int).Mul(from[i], to[i])
	}
	return out
}

// ApproxPathsToOutputs is the float64 variant of PathsToOutputs, used by
// heuristics (weighted path sampling, backtrace guidance) where exactness is
// unnecessary.  Counts that overflow float64 saturate at +Inf.
func ApproxPathsToOutputs(c *circuit.Circuit) []float64 {
	counts := make([]float64, c.NumNets())
	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		n := 0.0
		if g.IsOutput {
			n = 1
		}
		for _, fo := range g.Fanout {
			n += counts[fo]
		}
		if math.IsInf(n, 1) {
			n = math.MaxFloat64
		}
		counts[id] = n
	}
	return counts
}

// CountPathsFloat returns the structural path count as a float64 (saturating
// on overflow); convenient for reporting and sampling weights.
func CountPathsFloat(c *circuit.Circuit) float64 {
	toOut := ApproxPathsToOutputs(c)
	total := 0.0
	for _, in := range c.Inputs() {
		total += toOut[in]
	}
	return total
}
