package harness

import (
	"strings"
	"testing"

	"repro/internal/sensitize"
)

// testConfig is a deliberately tiny configuration so the harness unit tests
// stay fast; the full-size runs live in the repository-level benchmarks and
// in cmd/experiments.
func testConfig(mode sensitize.Mode) Config {
	return Config{Mode: mode, WordWidth: 64, FaultsPerCircuit: 24, Scale: 0.06, Seed: 7}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{}.normalize()
	if cfg.WordWidth != 64 || cfg.FaultsPerCircuit != 256 || cfg.Scale != 1.0 || cfg.Seed == 0 {
		t.Errorf("normalize gave %+v", cfg)
	}
	if o := DefaultConfig(sensitize.Robust); o.FaultsPerCircuit != 256 {
		t.Errorf("DefaultConfig: %+v", o)
	}
	if o := QuickConfig(sensitize.Robust); o.Scale >= 1.0 {
		t.Errorf("QuickConfig should scale down: %+v", o)
	}
	so := Config{}.normalize().structuralBaselineOptions()
	if so.WordWidth != 1 || so.UseFPTPG || so.FaultSimInterval != 0 || so.SubpathPruning {
		t.Errorf("structural baseline options wrong: %+v", so)
	}
	sb := Config{}.normalize().singleBitOptions()
	if sb.WordWidth != 1 || !sb.UseFPTPG || !sb.UseAPTPG {
		t.Errorf("single-bit options wrong: %+v", sb)
	}
}

func TestRunATPGRowConsistency(t *testing.T) {
	cfg := testConfig(sensitize.Nonrobust)
	rows := RunISCAS85(cfg)
	if len(rows) != 9 {
		t.Fatalf("ISCAS85 table should have 9 rows (c6288 skipped), got %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Circuit, r.Err)
			continue
		}
		if r.Targeted == 0 || r.NumFaults == nil || r.NumFaults.Sign() <= 0 {
			t.Errorf("%s: empty row %+v", r.Circuit, r)
		}
		if r.Tested+r.Redundant+r.Aborted > r.Targeted {
			t.Errorf("%s: classifications exceed targeted faults: %+v", r.Circuit, r)
		}
		if r.Efficiency < 0 || r.Efficiency > 100 {
			t.Errorf("%s: efficiency %v out of range", r.Circuit, r.Efficiency)
		}
	}
	text := FormatATPGTable("Table 4 (test)", rows)
	if !strings.Contains(text, "c432") || !strings.Contains(text, "efficiency") {
		t.Errorf("formatted table missing content:\n%s", text)
	}
}

func TestRunSpeedupRow(t *testing.T) {
	cfg := testConfig(sensitize.Nonrobust)
	p := ablationProfile()
	row := cfg.normalize().runSpeedupRow(p)
	if row.Err != nil {
		t.Fatalf("speedup row: %v", row.Err)
	}
	if row.SingleTime <= 0 || row.ParallelTime <= 0 || row.Speedup <= 0 {
		t.Errorf("times not measured: %+v", row)
	}
	text := FormatSpeedupTable("Table 6 (test)", []SpeedupRow{row})
	if !strings.Contains(text, row.Circuit) || !strings.Contains(text, "t_parallel") {
		t.Errorf("formatted table missing content:\n%s", text)
	}
	avg, max := SpeedupSummary([]SpeedupRow{row, {Err: nil, Speedup: 2 * row.Speedup}})
	if max < avg || avg <= 0 {
		t.Errorf("summary wrong: avg %v max %v", avg, max)
	}
}

func TestRunCompareRow(t *testing.T) {
	cfg := testConfig(sensitize.Nonrobust)
	cfg.WordWidth = 32
	p := ablationProfile()
	row := cfg.normalize().runCompareRow(p)
	if row.Err != nil {
		t.Fatalf("compare row: %v", row.Err)
	}
	if row.Targeted == 0 {
		t.Error("no faults targeted")
	}
	if row.TIPTested < row.BaselineTested-row.Targeted/4 {
		// The bit-parallel generator should not be grossly worse than the
		// conventional baseline (it explores at least the same search space).
		t.Errorf("TIP tested %d far below baseline %d", row.TIPTested, row.BaselineTested)
	}
	text := FormatCompareTable("Table 7 (test)", []CompareRow{row})
	if !strings.Contains(text, row.Circuit) {
		t.Errorf("formatted table missing circuit:\n%s", text)
	}
}

func TestAblations(t *testing.T) {
	cfg := testConfig(sensitize.Nonrobust)
	widths := RunWordWidthAblation(cfg, []int{1, 64})
	if len(widths) != 2 {
		t.Fatalf("expected 2 width rows, got %d", len(widths))
	}
	for _, r := range widths {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Label, r.Err)
		}
	}
	modes := RunModeAblation(cfg)
	if len(modes) != 3 {
		t.Fatalf("expected 3 mode rows, got %d", len(modes))
	}
	// The combined configuration covers at least as many faults as
	// FPTPG-only (which cannot backtrack).
	if modes[0].Err == nil && modes[1].Err == nil && modes[0].Tested < modes[1].Tested {
		t.Errorf("combined (%d tested) should not trail fptpg-only (%d tested)", modes[0].Tested, modes[1].Tested)
	}
	sims := RunFaultSimAblation(cfg)
	if len(sims) != 2 {
		t.Fatalf("expected 2 faultsim rows, got %d", len(sims))
	}
	prunes := RunPruningAblation(cfg)
	if len(prunes) != 2 {
		t.Fatalf("expected 2 pruning rows, got %d", len(prunes))
	}
	workerRows := RunWorkerAblation(cfg, []int{1, 2, 4})
	if len(workerRows) != 3 {
		t.Fatalf("expected 3 worker rows, got %d", len(workerRows))
	}
	for _, r := range workerRows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Label, r.Err)
		}
	}
	// Sharding must not change what the run achieves, only how fast: the
	// covered and aborted counts are identical across worker counts.
	for _, r := range workerRows[1:] {
		if r.Tested != workerRows[0].Tested || r.Aborted != workerRows[0].Aborted {
			t.Errorf("%s covers %d/aborts %d, workers=1 covers %d/aborts %d",
				r.Label, r.Tested, r.Aborted, workerRows[0].Tested, workerRows[0].Aborted)
		}
	}
	text := FormatAblationTable("ablation (test)", append(widths, modes...))
	if !strings.Contains(text, "L=64") || !strings.Contains(text, "combined") {
		t.Errorf("formatted ablation table missing content:\n%s", text)
	}
}

func TestCoverageEstimateExperiment(t *testing.T) {
	cfg := testConfig(sensitize.Nonrobust)
	est := RunCoverageEstimate(cfg, "s713", 100)
	if est.Err != nil {
		t.Fatalf("coverage estimate: %v", est.Err)
	}
	if est.Sampled == 0 {
		t.Error("no faults sampled for the estimate")
	}
	if est.Estimated < 0 || est.Estimated > 1 {
		t.Errorf("estimate %v out of range", est.Estimated)
	}
	bad := RunCoverageEstimate(cfg, "no-such-circuit", 10)
	if bad.Err == nil {
		t.Error("unknown circuit should report an error")
	}
}

func TestTableEntryPoints(t *testing.T) {
	// The Table3/5/7 wrappers force the mode (and width for 7/8); check with
	// a single-circuit subset by reusing the row runners directly.
	cfg := testConfig(sensitize.Nonrobust)
	if rows := RunTable7(Config{Scale: 0.05, FaultsPerCircuit: 8, Seed: 3}); len(rows) != 10 {
		t.Errorf("Table 7 should have 10 rows, got %d", len(rows))
	}
	_ = cfg
}
