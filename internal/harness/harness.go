// Package harness reproduces the experiments of the paper: it runs the
// bit-parallel generator (and its baselines) over the benchmark circuit
// suites and produces the rows of Tables 3 through 8.
//
// The original ISCAS netlists, the DECstation hardware and the proprietary
// comparison tools are unavailable, so the harness substitutes synthetic
// circuits with matching structural profiles, a selectable word width, and a
// conventional structural single-fault generator as the stand-in comparator
// (see DESIGN.md).  Absolute numbers therefore differ from the paper; the
// quantities that are expected to reproduce are the *shapes*: complete or
// near-complete efficiency, bit-parallel speed-ups over the single-bit
// generator, and a reduction of aborted faults.
package harness

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// Config controls the size and word width of an experiment run.
type Config struct {
	// Mode selects robust or nonrobust generation.
	Mode sensitize.Mode
	// WordWidth is the machine word length L exploited by the bit-parallel
	// generator (the paper uses 64 for Tables 3-6 and 32 for Tables 7-8).
	WordWidth int
	// FaultsPerCircuit bounds the number of target faults sampled per
	// circuit.  The ISCAS circuits have up to tens of millions of paths; the
	// paper runs for days on them, so the reproduction targets a uniform
	// sample.  0 means 256.
	FaultsPerCircuit int
	// Scale shrinks the synthetic circuit profiles (1.0 = full published
	// size).  0 means 1.0.
	Scale float64
	// Seed makes fault sampling deterministic.
	Seed int64
	// MaxBacktracks is passed to the generator (0 = default).
	MaxBacktracks int
	// Workers shards every generator run across this many goroutines
	// (core-level parallelism on top of the word-level bit parallelism).
	// 0 or 1 runs the sequential generator of the paper.
	Workers int
	// Schedule selects the dispatch policy of the sharded runs: static
	// contiguous pre-assignment or work-stealing (see internal/sched).
	Schedule sched.Policy
	// Escalate, when positive, enables two-pass adaptive fault grouping
	// with the given escalation width: a cheap fault-serial first pass,
	// then wide word-parallel groups for the survivors only.
	Escalate int
	// Guided enables testability-guided search (core.Options.
	// GuidedEscalation): predicted-hard faults skip the cheap first pass,
	// work is ordered hardest first, and — when Escalate is 0 — the
	// escalation width is derived from the score distribution.
	Guided bool
	// Compact selects the static test-set compaction applied after every
	// generator run (compact.None disables it, the default).
	Compact compact.Level
	// XFill fills the don't cares of pairs merged during compaction; nil
	// selects compact.ZeroFill().
	XFill compact.Filler
	// CPUProfile and MemProfile, when non-empty, are the pprof output paths
	// used by Config.Profiled (and by the -cpuprofile/-memprofile flags of
	// the command-line tools).
	CPUProfile string
	MemProfile string
}

// DefaultConfig returns the configuration used by cmd/experiments: full-size
// profiles, 256 sampled faults per circuit.
func DefaultConfig(mode sensitize.Mode) Config {
	return Config{Mode: mode, WordWidth: logic.WordWidth, FaultsPerCircuit: 256, Scale: 1.0, Seed: 1995}
}

// QuickConfig returns a reduced configuration suitable for unit tests and
// Go benchmarks: scaled-down circuits and few faults per circuit.
func QuickConfig(mode sensitize.Mode) Config {
	return Config{Mode: mode, WordWidth: logic.WordWidth, FaultsPerCircuit: 48, Scale: 0.12, Seed: 1995}
}

func (cfg Config) normalize() Config {
	if cfg.WordWidth <= 0 {
		cfg.WordWidth = logic.WordWidth
	}
	if cfg.FaultsPerCircuit <= 0 {
		cfg.FaultsPerCircuit = 256
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1995
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return cfg
}

// runGenerator builds a generator and runs it over the faults, sharded
// across cfg.Workers goroutines (1 = the plain sequential run).
func (cfg Config) runGenerator(c *circuit.Circuit, opts core.Options, faults []paths.Fault) *core.Generator {
	g := core.New(c, opts)
	core.RunSharded(context.Background(), g, faults, cfg.Workers)
	return g
}

// circuitFor synthesizes the (possibly scaled) stand-in for a profile.
func (cfg Config) circuitFor(p bench.Profile) (*circuit.Circuit, error) {
	if cfg.Scale != 1.0 {
		p = p.Scaled(cfg.Scale)
	}
	return bench.Synthesize(p)
}

// sampleFaults draws the bounded target fault list for a circuit.
func (cfg Config) sampleFaults(c *circuit.Circuit) []paths.Fault {
	total := paths.CountFaults(c)
	if total.Cmp(big.NewInt(int64(cfg.FaultsPerCircuit))) <= 0 {
		return paths.EnumerateFaults(c, 0)
	}
	return paths.SampleFaults(c, cfg.FaultsPerCircuit, cfg.Seed)
}

// generatorOptions builds the core options for the bit-parallel generator.
func (cfg Config) generatorOptions() core.Options {
	o := core.DefaultOptions(cfg.Mode)
	o.WordWidth = cfg.WordWidth
	o.FaultSimInterval = cfg.WordWidth
	if cfg.MaxBacktracks > 0 {
		o.MaxBacktracks = cfg.MaxBacktracks
	}
	o.Compaction = cfg.Compact
	o.CompactionXFill = cfg.XFill
	o.Schedule = cfg.Schedule
	o.EscalationWidth = cfg.Escalate
	o.GuidedEscalation = cfg.Guided
	return o
}

// singleBitOptions builds the options of the single-bit restriction used in
// Tables 5 and 6.
func (cfg Config) singleBitOptions() core.Options {
	o := cfg.generatorOptions()
	o.WordWidth = 1
	o.FaultSimInterval = 1
	o.EscalationWidth = 0 // escalating into wide groups would defeat the baseline
	o.GuidedEscalation = false
	return o
}

// structuralBaselineOptions builds the options of the conventional
// structural single-fault generator used as the stand-in for the comparison
// tools of Tables 7 and 8: one fault at a time, conventional backtracking
// only, no fault-simulation dropping and no subpath pruning.
func (cfg Config) structuralBaselineOptions() core.Options {
	o := cfg.generatorOptions()
	o.WordWidth = 1
	o.UseFPTPG = false
	o.FaultSimInterval = 0
	o.SubpathPruning = false
	o.EscalationWidth = 0
	o.GuidedEscalation = false
	return o
}

// ---------------------------------------------------------------------------
// Tables 3 and 4: full ATPG over the ISCAS85 suite.
// ---------------------------------------------------------------------------

// ATPGRow is one row of Table 3 (robust) or Table 4 (nonrobust).
type ATPGRow struct {
	Circuit    string
	NumFaults  *big.Int // total path delay faults of the circuit (# faults)
	Targeted   int      // faults actually targeted (sampled)
	Tested     int      // faults covered by the generated test set
	Redundant  int
	Aborted    int
	Efficiency float64 // (1 - aborted/targeted) * 100 %
	Patterns   int
	Time       time.Duration
	Err        error
}

// RunISCAS85 produces the rows of Table 3 (mode Robust) or Table 4 (mode
// Nonrobust): full ATPG over the ISCAS85-class circuits.  The c6288-class
// multiplier is skipped exactly as in the paper.
func RunISCAS85(cfg Config) []ATPGRow {
	cfg = cfg.normalize()
	var rows []ATPGRow
	for _, p := range bench.ISCAS85Profiles() {
		if p.Name == "c6288" {
			continue // "except circuit c6288, containing 10^20 functional paths"
		}
		rows = append(rows, cfg.runATPGRow(p))
	}
	return rows
}

// RunTable3 is RunISCAS85 in robust mode.
func RunTable3(cfg Config) []ATPGRow {
	cfg.Mode = sensitize.Robust
	return RunISCAS85(cfg)
}

// RunTable4 is RunISCAS85 in nonrobust mode.
func RunTable4(cfg Config) []ATPGRow {
	cfg.Mode = sensitize.Nonrobust
	return RunISCAS85(cfg)
}

func (cfg Config) runATPGRow(p bench.Profile) ATPGRow {
	row := ATPGRow{Circuit: p.Name}
	c, err := cfg.circuitFor(p)
	if err != nil {
		row.Err = err
		return row
	}
	row.NumFaults = paths.CountFaults(c)
	faults := cfg.sampleFaults(c)
	row.Targeted = len(faults)

	start := time.Now()
	g := cfg.runGenerator(c, cfg.generatorOptions(), faults)
	row.Time = time.Since(start)

	st := g.Stats()
	row.Tested = st.Tested + st.DetectedBySim
	row.Redundant = st.Redundant
	row.Aborted = st.Aborted
	row.Efficiency = st.Efficiency()
	row.Patterns = st.Patterns
	return row
}

// FormatATPGTable renders rows in the layout of Tables 3/4.
func FormatATPGTable(title string, rows []ATPGRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s %14s %10s %10s %10s %10s %12s %10s\n",
		"Circuit", "#faults", "#targeted", "#tested", "#redund", "#aborted", "efficiency", "time")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-10s error: %v\n", r.Circuit, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %14s %10d %10d %10d %10d %11.2f%% %10s\n",
			r.Circuit, r.NumFaults.String(), r.Targeted, r.Tested, r.Redundant, r.Aborted,
			r.Efficiency, r.Time.Round(time.Millisecond))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Tables 5 and 6: bit-parallel versus single-bit generation.
// ---------------------------------------------------------------------------

// SpeedupRow is one row of Table 5 (robust) or Table 6 (nonrobust).
type SpeedupRow struct {
	Circuit         string
	SensTime        time.Duration // t_sens: path sensitization (identical for both generators)
	SingleTime      time.Duration // t_single
	ParallelTime    time.Duration // t_parallel
	Speedup         float64       // t_single / t_parallel
	AbortedSingle   int
	AbortedParallel int
	Err             error
}

// table56Circuits lists the circuits of Tables 5 and 6 in the paper's order.
var table56Circuits = []string{
	"s713", "s838", "s938", "s991", "s1269", "s1423", "s3271", "s5378", "s9234", "s13207", "s15850",
}

// RunSpeedup produces the rows of Table 5 (robust) or Table 6 (nonrobust):
// the bit-parallel generator against the generator restricted to one bit
// level, on the ISCAS89-class circuits.
func RunSpeedup(cfg Config) []SpeedupRow {
	cfg = cfg.normalize()
	var rows []SpeedupRow
	for _, name := range table56Circuits {
		p, ok := bench.ProfileByName(name)
		if !ok {
			rows = append(rows, SpeedupRow{Circuit: name, Err: fmt.Errorf("unknown profile %q", name)})
			continue
		}
		rows = append(rows, cfg.runSpeedupRow(p))
	}
	return rows
}

// RunTable5 is RunSpeedup in robust mode.
func RunTable5(cfg Config) []SpeedupRow {
	cfg.Mode = sensitize.Robust
	return RunSpeedup(cfg)
}

// RunTable6 is RunSpeedup in nonrobust mode.
func RunTable6(cfg Config) []SpeedupRow {
	cfg.Mode = sensitize.Nonrobust
	return RunSpeedup(cfg)
}

func (cfg Config) runSpeedupRow(p bench.Profile) SpeedupRow {
	row := SpeedupRow{Circuit: p.Name}
	c, err := cfg.circuitFor(p)
	if err != nil {
		row.Err = err
		return row
	}
	faults := cfg.sampleFaults(c)

	// Bit-parallel run.
	start := time.Now()
	gp := cfg.runGenerator(c, cfg.generatorOptions(), faults)
	parallelTotal := time.Since(start)
	row.AbortedParallel = gp.Stats().Aborted

	// Single-bit run.
	start = time.Now()
	gs := cfg.runGenerator(c, cfg.singleBitOptions(), faults)
	singleTotal := time.Since(start)
	row.AbortedSingle = gs.Stats().Aborted

	// The paper reports the sensitization time separately (it is identical
	// for both generators) and compares the remaining generation time.
	row.SensTime = gp.Stats().SensitizeTime
	row.ParallelTime = parallelTotal - gp.Stats().SensitizeTime
	row.SingleTime = singleTotal - gs.Stats().SensitizeTime
	if row.ParallelTime <= 0 {
		row.ParallelTime = time.Microsecond
	}
	if row.SingleTime <= 0 {
		row.SingleTime = time.Microsecond
	}
	row.Speedup = float64(row.SingleTime) / float64(row.ParallelTime)
	return row
}

// FormatSpeedupTable renders rows in the layout of Tables 5/6.
func FormatSpeedupTable(title string, rows []SpeedupRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s %10s %14s %14s\n",
		"Circuit", "t_sens", "t_single", "t_parallel", "speedup", "aborted(1bit)", "aborted(par)")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-10s error: %v\n", r.Circuit, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %12s %12s %12s %9.1fx %14d %14d\n",
			r.Circuit, r.SensTime.Round(time.Microsecond), r.SingleTime.Round(time.Microsecond),
			r.ParallelTime.Round(time.Microsecond), r.Speedup, r.AbortedSingle, r.AbortedParallel)
	}
	return sb.String()
}

// SpeedupSummary returns the average and maximum speed-up of a table, the
// two headline numbers of the paper ("average acceleration is about five",
// "speedup of up to nine").
func SpeedupSummary(rows []SpeedupRow) (avg, max float64) {
	n := 0
	for _, r := range rows {
		if r.Err != nil || r.Speedup <= 0 {
			continue
		}
		avg += r.Speedup
		if r.Speedup > max {
			max = r.Speedup
		}
		n++
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg, max
}

// ---------------------------------------------------------------------------
// Tables 7 and 8: comparison against a conventional structural generator.
// ---------------------------------------------------------------------------

// CompareRow is one row of Table 7 (nonrobust) or Table 8 (robust): the
// bit-parallel generator (TIP) against the structural single-fault baseline
// standing in for the unavailable TSUNAMI-D and DYNAMITE tools.
type CompareRow struct {
	Circuit        string
	Targeted       int
	TIPTested      int
	TIPTime        time.Duration
	BaselineTested int
	BaselineTime   time.Duration
	Err            error
}

// table78Circuits lists the circuits of Tables 7 and 8 in the paper's order.
var table78Circuits = []string{
	"s641", "s713", "s1196", "s1238", "s1423", "s1494", "s5378", "s13207", "s15850", "s38584",
}

// RunComparison produces the rows of Table 7 (nonrobust) or Table 8
// (robust).  The paper uses a 32-bit machine for these tables; the word
// width of cfg is used as given, so pass 32 to match.
func RunComparison(cfg Config) []CompareRow {
	cfg = cfg.normalize()
	var rows []CompareRow
	for _, name := range table78Circuits {
		p, ok := bench.ProfileByName(name)
		if !ok {
			rows = append(rows, CompareRow{Circuit: name, Err: fmt.Errorf("unknown profile %q", name)})
			continue
		}
		rows = append(rows, cfg.runCompareRow(p))
	}
	return rows
}

// RunTable7 is RunComparison in nonrobust mode with L=32.
func RunTable7(cfg Config) []CompareRow {
	cfg.Mode = sensitize.Nonrobust
	cfg.WordWidth = 32
	return RunComparison(cfg)
}

// RunTable8 is RunComparison in robust mode with L=32.
func RunTable8(cfg Config) []CompareRow {
	cfg.Mode = sensitize.Robust
	cfg.WordWidth = 32
	return RunComparison(cfg)
}

func (cfg Config) runCompareRow(p bench.Profile) CompareRow {
	row := CompareRow{Circuit: p.Name}
	c, err := cfg.circuitFor(p)
	if err != nil {
		row.Err = err
		return row
	}
	faults := cfg.sampleFaults(c)
	row.Targeted = len(faults)

	start := time.Now()
	tip := cfg.runGenerator(c, cfg.generatorOptions(), faults)
	row.TIPTime = time.Since(start)
	row.TIPTested = tip.Stats().Tested + tip.Stats().DetectedBySim

	start = time.Now()
	base := cfg.runGenerator(c, cfg.structuralBaselineOptions(), faults)
	row.BaselineTime = time.Since(start)
	row.BaselineTested = base.Stats().Tested + base.Stats().DetectedBySim
	return row
}

// FormatCompareTable renders rows in the layout of Tables 7/8.
func FormatCompareTable(title string, rows []CompareRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s %10s | %10s %12s | %10s %12s\n",
		"Circuit", "#targeted", "TIP #tst", "TIP time", "base #tst", "base time")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-10s error: %v\n", r.Circuit, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %10d | %10d %12s | %10d %12s\n",
			r.Circuit, r.Targeted, r.TIPTested, r.TIPTime.Round(time.Millisecond),
			r.BaselineTested, r.BaselineTime.Round(time.Millisecond))
	}
	return sb.String()
}
