package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// GroupingRow is one circuit x engine cell of the grouping ablation: the
// Tables 5/6 width-economics comparison re-run with three grouping
// strategies plus testability-guided routing — fault-serial (L=1, the
// single-bit baseline), fixed full-width word-parallel groups, two-pass
// adaptive grouping (fault-serial first, wide groups for the survivors
// only), and guided adaptive grouping (predicted-hard faults skip the first
// pass entirely) — under either the event-driven incremental implication
// engine or the retained full-sweep oracle.
//
// The paper's Tables 5 and 6 show fixed wide grouping beating L=1 by about
// five times on the full-sweep cost model.  The incremental engine inverted
// that on easy-fault samples (single-fault implications became nearly free),
// which is exactly what this ablation makes visible: under "full-sweep" the
// wide columns win, under "incremental" adaptive grouping recovers the win
// by paying the word-sharing overhead only on the hard faults.
type GroupingRow struct {
	Circuit string
	Engine  string // "incremental" or "full-sweep"

	SingleTime   time.Duration // L=1 fault-serial generation time (t_single)
	WideTime     time.Duration // fixed L=WordWidth groups (t_parallel)
	AdaptiveTime time.Duration // two-pass adaptive grouping
	GuidedTime   time.Duration // testability-guided adaptive grouping

	AbortedSingle   int
	AbortedWide     int
	AbortedAdaptive int
	AbortedGuided   int

	// Escalated is the number of faults the adaptive run escalated into
	// wide groups (the rest settled in the cheap first pass); Skipped is
	// the number of faults the guided run predicted hard and routed
	// straight to the wide pass, never paying the first pass at all.
	Escalated int
	Skipped   int

	Err error
}

// groupingEngines names the two implication engines the ablation compares.
var groupingEngines = []struct {
	label     string
	fullSweep bool
}{
	{"incremental", false},
	{"full-sweep", true},
}

// RunGroupingAblation re-runs the Tables 5/6 comparison over the
// ISCAS89-class circuits with the three grouping strategies under both
// implication engines.  The generation times exclude sensitization (which is
// identical across the strategies), matching the t_single/t_parallel columns
// of the paper.
func RunGroupingAblation(cfg Config) []GroupingRow {
	cfg = cfg.normalize()
	var rows []GroupingRow
	for _, name := range table56Circuits {
		p, ok := bench.ProfileByName(name)
		if !ok {
			rows = append(rows, GroupingRow{Circuit: name, Err: fmt.Errorf("unknown profile %q", name)})
			continue
		}
		for _, engine := range groupingEngines {
			rows = append(rows, cfg.runGroupingRow(p, engine.label, engine.fullSweep))
		}
	}
	return rows
}

func (cfg Config) runGroupingRow(p bench.Profile, engine string, fullSweep bool) GroupingRow {
	row := GroupingRow{Circuit: p.Name, Engine: engine}
	c, err := cfg.circuitFor(p)
	if err != nil {
		row.Err = err
		return row
	}
	faults := cfg.sampleFaults(c)

	timeRun := func(opts core.Options) (time.Duration, *core.Generator) {
		opts.FullSweepImplic = fullSweep
		start := time.Now()
		g := cfg.runGenerator(c, opts, faults)
		total := time.Since(start)
		gen := total - g.Stats().SensitizeTime
		if gen <= 0 {
			gen = time.Microsecond
		}
		return gen, g
	}

	gs := func(g *core.Generator) int { return g.Stats().Aborted }

	var g *core.Generator
	row.SingleTime, g = timeRun(cfg.singleBitOptions())
	row.AbortedSingle = gs(g)

	wide := cfg.generatorOptions()
	wide.EscalationWidth = 0
	row.WideTime, g = timeRun(wide)
	row.AbortedWide = gs(g)

	adaptive := cfg.generatorOptions()
	adaptive.EscalationWidth = adaptive.WordWidth
	adaptive.GuidedEscalation = false
	row.AdaptiveTime, g = timeRun(adaptive)
	row.AbortedAdaptive = gs(g)
	row.Escalated = g.Stats().Escalated

	guided := cfg.generatorOptions()
	guided.EscalationWidth = guided.WordWidth
	guided.GuidedEscalation = true
	row.GuidedTime, g = timeRun(guided)
	row.AbortedGuided = gs(g)
	row.Skipped = g.Stats().PredictedHard
	return row
}

// FormatGroupingTable renders grouping ablation rows in a Tables 5/6-style
// layout, one line per circuit and engine.
func FormatGroupingTable(title string, rows []GroupingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s %-12s %12s %12s %12s %12s %10s %8s %18s\n",
		"Circuit", "engine", "t_single", "t_wide", "t_adaptive", "t_guided", "escalated", "skipped", "aborted s/w/a/g")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-10s %-12s error: %v\n", r.Circuit, r.Engine, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %-12s %12s %12s %12s %12s %10d %8d %18s\n",
			r.Circuit, r.Engine,
			r.SingleTime.Round(time.Microsecond), r.WideTime.Round(time.Microsecond),
			r.AdaptiveTime.Round(time.Microsecond), r.GuidedTime.Round(time.Microsecond),
			r.Escalated, r.Skipped,
			fmt.Sprintf("%d/%d/%d/%d", r.AbortedSingle, r.AbortedWide, r.AbortedAdaptive, r.AbortedGuided))
	}
	return sb.String()
}
