package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/sensitize"
)

// AblationRow is one configuration of an ablation sweep on a single circuit.
type AblationRow struct {
	Label    string
	Tested   int
	Aborted  int
	Patterns int
	Time     time.Duration
	Err      error
}

// runAblation runs the generator on the circuit/fault list with the given
// options and records the outcome.
func runAblation(label string, cfg Config, p bench.Profile, mutate func(*core.Options)) AblationRow {
	row := AblationRow{Label: label}
	c, err := cfg.circuitFor(p)
	if err != nil {
		row.Err = err
		return row
	}
	faults := cfg.sampleFaults(c)
	opts := cfg.generatorOptions()
	if mutate != nil {
		mutate(&opts)
	}
	start := time.Now()
	g := cfg.runGenerator(c, opts, faults)
	row.Time = time.Since(start)
	st := g.Stats()
	row.Tested = st.Tested + st.DetectedBySim
	row.Aborted = st.Aborted
	// The test-set size, which compaction can make smaller than the number
	// of generated patterns (st.Patterns).
	row.Patterns = g.TestSet().Len()
	return row
}

// ablationProfile is the mid-size circuit used for the ablation studies.
func ablationProfile() bench.Profile {
	p, _ := bench.ProfileByName("s1423")
	return p
}

// RunWordWidthAblation sweeps the word width L: the central design parameter
// of the paper.
func RunWordWidthAblation(cfg Config, widths []int) []AblationRow {
	cfg = cfg.normalize()
	if len(widths) == 0 {
		widths = []int{1, 8, 16, 32, 64, 128, 256, 512}
	}
	p := ablationProfile()
	var rows []AblationRow
	for _, w := range widths {
		width := w
		rows = append(rows, runAblation(fmt.Sprintf("L=%d", width), cfg, p, func(o *core.Options) {
			o.WordWidth = width
			o.FaultSimInterval = width
		}))
	}
	return rows
}

// RunModeAblation compares FPTPG-only, APTPG-only and the combined
// generator (Section 3.3 of the paper).
func RunModeAblation(cfg Config) []AblationRow {
	cfg = cfg.normalize()
	p := ablationProfile()
	return []AblationRow{
		runAblation("combined", cfg, p, nil),
		runAblation("fptpg-only", cfg, p, func(o *core.Options) { o.UseAPTPG = false }),
		runAblation("aptpg-only", cfg, p, func(o *core.Options) { o.UseFPTPG = false }),
	}
}

// RunFaultSimAblation compares generation with and without the interleaved
// parallel-pattern fault simulation after every L patterns.
func RunFaultSimAblation(cfg Config) []AblationRow {
	cfg = cfg.normalize()
	p := ablationProfile()
	return []AblationRow{
		runAblation("faultsim-every-L", cfg, p, nil),
		runAblation("faultsim-off", cfg, p, func(o *core.Options) { o.FaultSimInterval = 0 }),
	}
}

// RunWorkerAblation sweeps the worker count of the sharded engine on the
// ablation circuit: the same fault list generated sequentially and sharded
// across 2..N goroutines, the core-level counterpart of the word-width
// sweep.  counts defaults to {1, 2, runtime.GOMAXPROCS(0)}; the reported
// times are wall-clock, so on a multi-core machine the tested/aborted
// columns should hold steady while time drops.
func RunWorkerAblation(cfg Config, counts []int) []AblationRow {
	cfg = cfg.normalize()
	if len(counts) == 0 {
		counts = []int{1, 2, runtime.GOMAXPROCS(0)}
	}
	p := ablationProfile()
	var rows []AblationRow
	seen := make(map[int]bool)
	for _, n := range counts {
		if seen[n] {
			continue // e.g. the default {1, 2, GOMAXPROCS} on a 1- or 2-core host
		}
		seen[n] = true
		workerCfg := cfg
		workerCfg.Workers = n
		rows = append(rows, runAblation(fmt.Sprintf("workers=%d", n), workerCfg, p, nil))
	}
	return rows
}

// RunCompactionAblation compares the test-set size and run time without
// compaction, with reverse-order simulation dropping only, and with full
// (merge + reverse-order) compaction.  Tested/aborted counts must hold
// steady across the rows — compaction never changes what is detected —
// while the pattern counts shrink.
func RunCompactionAblation(cfg Config) []AblationRow {
	cfg = cfg.normalize()
	p := ablationProfile()
	var rows []AblationRow
	for _, level := range []compact.Level{compact.None, compact.Reverse, compact.Full} {
		l := level
		levelCfg := cfg
		levelCfg.Compact = l
		rows = append(rows, runAblation(fmt.Sprintf("compact=%s", l), levelCfg, p, nil))
	}
	return rows
}

// RunPruningAblation compares generation with and without subpath redundancy
// pruning.
func RunPruningAblation(cfg Config) []AblationRow {
	cfg = cfg.normalize()
	p := ablationProfile()
	return []AblationRow{
		runAblation("subpath-pruning", cfg, p, nil),
		runAblation("pruning-off", cfg, p, func(o *core.Options) { o.SubpathPruning = false }),
	}
}

// FormatAblationTable renders ablation rows.
func FormatAblationTable(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-20s %10s %10s %10s %12s\n", "configuration", "#tested", "#aborted", "#patterns", "time")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-20s error: %v\n", r.Label, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-20s %10d %10d %10d %12s\n", r.Label, r.Tested, r.Aborted, r.Patterns, r.Time.Round(time.Millisecond))
	}
	return sb.String()
}

// CoverageEstimate reports a sample-based path delay fault coverage estimate
// of the test set produced for a circuit (the NEST-style experiment
// mentioned in Section 5 of the paper): it generates tests for a sample of
// faults and then estimates the coverage of the resulting test set over an
// independent fault sample.
type CoverageEstimate struct {
	Circuit   string
	Patterns  int
	Sampled   int
	Estimated float64
	Time      time.Duration
	Err       error
}

// RunCoverageEstimate produces the coverage-estimation experiment for the
// named profile circuit.
func RunCoverageEstimate(cfg Config, profileName string, sampleSize int) CoverageEstimate {
	cfg = cfg.normalize()
	est := CoverageEstimate{Circuit: profileName}
	p, ok := bench.ProfileByName(profileName)
	if !ok {
		est.Err = fmt.Errorf("unknown profile %q", profileName)
		return est
	}
	c, err := cfg.circuitFor(p)
	if err != nil {
		est.Err = err
		return est
	}
	if sampleSize <= 0 {
		sampleSize = 500
	}
	start := time.Now()
	g := cfg.runGenerator(c, cfg.generatorOptions(), cfg.sampleFaults(c))
	est.Patterns = g.TestSet().Len()
	cov, n, err := faultsim.EstimateCoverage(c, g.TestSet().Pairs, sampleSize, cfg.Seed+1,
		cfg.Mode == sensitize.Robust)
	est.Time = time.Since(start)
	if err != nil {
		est.Err = err
		return est
	}
	est.Sampled = n
	est.Estimated = cov
	return est
}
