package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling support shared by the command-line tools: cmd/tip and
// cmd/experiments expose -cpuprofile/-memprofile flags so performance work
// starts from a profile instead of guesswork.  The paths can also be set on
// a Config and applied around a whole experiment run with Config.Profiled.

// StartCPUProfile starts writing a CPU profile to path and returns the stop
// function that finishes and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteMemProfile writes the current heap profile to path (after a GC, so
// the profile reflects live memory rather than collectable garbage).
func WriteMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}

// Profiled runs fn under the profiles configured on cfg: a CPU profile is
// collected while fn runs when cfg.CPUProfile is set, and a heap profile is
// written after fn returns when cfg.MemProfile is set.  fn's error wins over
// profile write errors.
func (cfg Config) Profiled(fn func() error) error {
	var stop func() error
	if cfg.CPUProfile != "" {
		var err error
		stop, err = StartCPUProfile(cfg.CPUProfile)
		if err != nil {
			return err
		}
	}
	runErr := fn()
	var profErr error
	if stop != nil {
		profErr = stop()
	}
	if cfg.MemProfile != "" {
		if err := WriteMemProfile(cfg.MemProfile); err != nil && profErr == nil {
			profErr = err
		}
	}
	if runErr != nil {
		return runErr
	}
	return profErr
}
