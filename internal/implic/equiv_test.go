package implic

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// The tests in this file validate the event-driven incremental engine
// against the retained full-sweep oracle (FullSweep = true): identical
// conflict masks, identical Sim planes, identical Val planes on every bit
// level whose closure is conflict-free (on conflicted levels the derived
// stability planes are order-dependent; see the package comment), and exact
// trail restores.  Every randomized test runs the width dimension
// {1, 64, 128, 512}, so the multi-word plane loops are exercised at K > 1.

// equivValues are the assignable seven-valued constants used to drive the
// randomized tests (X is excluded: assigning X is a no-op).
var equivValues = []logic.Value7{
	logic.Stable0, logic.Stable1, logic.Rise7, logic.Fall7, logic.Final0, logic.Final1,
}

// equivWidths is the word-width dimension of the randomized tests.
var equivWidths = []int{1, 64, 128, 512}

// randMask returns a random level mask bounded to the given word width.
func randMask(rng *rand.Rand, width int) logic.Mask {
	var m logic.Mask
	for w := 0; w < logic.KForWidth(width); w++ {
		m[w] = rng.Uint64()
	}
	return m.And(logic.LevelsMask(width))
}

// randPIWord returns a sparse random per-level assignment vector.
func randPIWord(rng *rand.Rand, width int) logic.Word7V {
	var w logic.Word7V
	for lvl := 0; lvl < width; lvl += 1 + rng.Intn(7) {
		w.Set(lvl, equivValues[rng.Intn(len(equivValues))])
	}
	return w
}

// oracleFor builds a fresh full-sweep state holding the same requirements
// and input assignments as st.  The oracle recomputes everything from
// scratch, so the externally assigned planes are all it needs.
func oracleFor(st *State) *State {
	c := st.Circuit()
	o := NewStateWidth(c, st.Width())
	o.FullSweep = true
	o.MaxSweeps = st.MaxSweeps
	o.Reset(st.Active())
	for n := 0; n < c.NumNets(); n++ {
		id := circuit.NetID(n)
		req := st.Requirement(id)
		if req.IsZero() {
			continue
		}
		for lvl := 0; lvl < st.Width(); lvl++ {
			if v := req.Get(lvl); v != logic.X7 {
				o.AddRequirement(id, v, logic.BitMask(lvl))
			}
		}
	}
	for _, in := range c.Inputs() {
		o.AssignPIWord(in, st.PIValue(in))
	}
	return o
}

// assertMatchesOracle implies and simulates a fresh oracle over st's
// current requirements and assignments and compares the results.  st must
// have called Imply and ForwardSim after its last assignment change.
func assertMatchesOracle(t *testing.T, st *State, tag string) {
	t.Helper()
	o := oracleFor(st)
	oConf := o.Imply()
	o.ForwardSim()
	conf := st.ConflictMask()
	if conf != oConf {
		t.Fatalf("%s: conflict mask %v, oracle %v", tag, conf, oConf)
	}
	c := st.Circuit()
	keep := conf.Not()
	for n := 0; n < c.NumNets(); n++ {
		id := circuit.NetID(n)
		if got, want := st.ImpliedValue(id).SelectLevels(keep), o.ImpliedValue(id).SelectLevels(keep); got != want {
			t.Fatalf("%s: Val[%s] conflict-free levels differ:\n  incremental %v\n  oracle      %v\n  actv=%v\n  conf=%v",
				tag, c.NetName(id), got.StringN(st.Width()), want.StringN(st.Width()), st.Active(), conf)
		}
		if got, want := st.SimValue(id), o.SimValue(id); got != want {
			t.Fatalf("%s: Sim[%s] differs:\n  incremental %v\n  oracle      %v",
				tag, c.NetName(id), got.StringN(st.Width()), want.StringN(st.Width()))
		}
	}
	if got, want := st.JustifiedMask(), o.JustifiedMask(); got != want {
		t.Fatalf("%s: JustifiedMask %v, oracle %v", tag, got, want)
	}
	for lvl := 0; lvl < 3; lvl++ {
		got := slices.Clone(st.Unjustified(lvl))
		want := o.Unjustified(lvl)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: Unjustified(%d) = %v, oracle %v", tag, lvl, got, want)
		}
	}
}

// equivCircuits returns the circuits the randomized equivalence tests run
// over: the paper examples, random synthesized circuits and scaled
// ISCAS-85-class stand-ins.
func equivCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	cs := []*circuit.Circuit{bench.C17(), bench.PaperExample(), bench.RedundantExample()}
	for _, p := range []bench.Profile{
		{Name: "eq-rnd1", Inputs: 10, Outputs: 5, Gates: 80, Depth: 9, Seed: 31, InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.25},
		{Name: "eq-rnd2", Inputs: 14, Outputs: 7, Gates: 160, Depth: 14, Seed: 32, InputFaninBias: 0.5, WideFaninFraction: 0.15, InverterFraction: 0.35},
	} {
		cs = append(cs, bench.MustSynthesize(p))
	}
	for _, name := range []string{"c432", "c880"} {
		p, ok := bench.ProfileByName(name)
		if !ok {
			t.Fatalf("unknown profile %q", name)
		}
		cs = append(cs, bench.MustSynthesize(p.Scaled(0.5)))
	}
	return cs
}

// TestIncrementalImplyMatchesOracleRandomOps drives random interleavings of
// requirement merges, input assignments, implications, simulations and
// trail frames through the incremental engine, comparing against the
// full-sweep oracle after every closure.
//
// The sweep bound is set high enough for every closure to converge: that is
// the equivalence precondition.  When MaxSweeps truncates a closure early,
// both engines stop at sound but different partial closures (the full sweep
// restarts from scratch each call while the incremental engine carries the
// previous rounds forward), so bit-exactness only holds for converged
// closures — which is every closure in practice; see the package comment.
func TestIncrementalImplyMatchesOracleRandomOps(t *testing.T) {
	for _, width := range equivWidths {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + width)))
			for _, c := range equivCircuits(t) {
				st := NewStateWidth(c, width)
				st.MaxSweeps = 64
				inputs := c.Inputs()
				for trial := 0; trial < 4; trial++ {
					active := randMask(rng, width)
					if active.IsZero() {
						active = logic.LevelsMask(width)
					}
					st.Reset(active)
					depth := 0
					for op := 0; op < 60; op++ {
						switch rng.Intn(10) {
						case 0, 1:
							net := circuit.NetID(rng.Intn(c.NumNets()))
							v := equivValues[rng.Intn(len(equivValues))]
							st.AddRequirement(net, v, randMask(rng, width))
						case 2, 3, 4:
							in := inputs[rng.Intn(len(inputs))]
							v := equivValues[rng.Intn(len(equivValues))]
							st.AssignPI(in, v, randMask(rng, width))
						case 5:
							st.AssignPIWord(inputs[rng.Intn(len(inputs))], randPIWord(rng, width))
						case 6:
							st.Assign()
							depth++
						case 7:
							if depth > 0 {
								st.Undo()
								depth--
							}
						default:
							st.Imply()
							st.ForwardSim()
							assertMatchesOracle(t, st, c.Name)
						}
					}
					st.Imply()
					st.ForwardSim()
					assertMatchesOracle(t, st, c.Name+"/final")
				}
			}
		})
	}
}

// TestTrailRestoresExactState checks the trail's core guarantee: Undo
// restores every plane — including closure and simulation values derived
// after the frame was opened, and including conflicted levels — to the
// bit-exact state at the matching Assign, at every word width.
func TestTrailRestoresExactState(t *testing.T) {
	for _, width := range equivWidths {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(77 + width)))
			for _, c := range equivCircuits(t) {
				st := NewStateWidth(c, width)
				inputs := c.Inputs()
				st.Reset(logic.LevelsMask(width))
				// Base requirements plus an implied base state.
				for i := 0; i < 8; i++ {
					st.AddRequirement(circuit.NetID(rng.Intn(c.NumNets())), equivValues[rng.Intn(len(equivValues))], randMask(rng, width))
				}
				st.Imply()
				st.ForwardSim()

				type snapshot struct {
					req, pi, val, sim []logic.Word7V
					conflict          logic.Mask
				}
				snap := func() snapshot {
					var s snapshot
					for n := 0; n < c.NumNets(); n++ {
						id := circuit.NetID(n)
						s.req = append(s.req, st.Requirement(id))
						s.pi = append(s.pi, st.PIValue(id))
						s.val = append(s.val, st.ImpliedValue(id))
						s.sim = append(s.sim, st.SimValue(id))
					}
					s.conflict = st.ConflictMask()
					return s
				}
				var stack []snapshot
				for op := 0; op < 120; op++ {
					switch rng.Intn(5) {
					case 0, 1, 2:
						if len(stack) < 12 {
							stack = append(stack, snap())
							st.Assign()
						}
						st.AssignPI(inputs[rng.Intn(len(inputs))], equivValues[rng.Intn(len(equivValues))], randMask(rng, width))
						if rng.Intn(2) == 0 {
							st.AddRequirement(circuit.NetID(rng.Intn(c.NumNets())), equivValues[rng.Intn(len(equivValues))], randMask(rng, width))
						}
						st.Imply()
						if rng.Intn(2) == 0 {
							st.ForwardSim()
						}
					default:
						if len(stack) == 0 {
							continue
						}
						st.Undo()
						want := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						for n := 0; n < c.NumNets(); n++ {
							id := circuit.NetID(n)
							if st.Requirement(id) != want.req[n] || st.PIValue(id) != want.pi[n] ||
								st.ImpliedValue(id) != want.val[n] || st.SimValue(id) != want.sim[n] {
								t.Fatalf("%s: plane mismatch after Undo at net %s", c.Name, c.NetName(id))
							}
						}
						if st.ConflictMask() != want.conflict {
							t.Fatalf("%s: conflict mask %v after Undo, want %v", c.Name, st.ConflictMask(), want.conflict)
						}
					}
				}
			}
		})
	}
}

// TestIncrementalSensitizationMatchesOracle replays the generator's own
// workload shape — sensitization requirements, a launch assignment, then a
// chain of framed input decisions that is finally unwound — and checks the
// incremental engine against the oracle at every step.
func TestIncrementalSensitizationMatchesOracle(t *testing.T) {
	for _, width := range []int{64, 128, 512} {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(55 + width)))
			all := logic.LevelsMask(width)
			for _, name := range []string{"c432", "c880", "c1355"} {
				p, ok := bench.ProfileByName(name)
				if !ok {
					t.Fatalf("unknown profile %q", name)
				}
				c := bench.MustSynthesize(p.Scaled(0.5))
				st := NewStateWidth(c, width)
				st.MaxSweeps = 64 // high enough to converge; see TestIncrementalImplyMatchesOracleRandomOps
				inputs := c.Inputs()
				for _, mode := range []sensitize.Mode{sensitize.Robust, sensitize.Nonrobust} {
					for _, f := range paths.SampleFaults(c, 8, int64(17+len(name))) {
						cond, err := sensitize.Sensitize(c, f, mode)
						if err != nil {
							continue
						}
						st.Reset(all)
						for _, a := range cond.Assignments {
							st.AddRequirement(a.Net, a.Value, all)
						}
						st.AssignPI(f.Path.Input(), f.Transition.Value7(), all)
						st.Imply()
						st.ForwardSim()
						assertMatchesOracle(t, st, c.Name+"/"+mode.String()+"/setup")

						depth := 0
						for d := 0; d < 6; d++ {
							st.Assign()
							depth++
							st.AssignPI(inputs[rng.Intn(len(inputs))], equivValues[rng.Intn(len(equivValues))], all)
							st.Imply()
							st.ForwardSim()
							assertMatchesOracle(t, st, c.Name+"/"+mode.String()+"/decide")
						}
						for ; depth > 0; depth-- {
							st.Undo()
							st.Imply()
							st.ForwardSim()
							assertMatchesOracle(t, st, c.Name+"/"+mode.String()+"/undo")
						}
					}
				}
			}
		})
	}
}

// TestClearPIResync checks the ClearPI fallback: retracting assignments
// outside the trail forces a full recomputation whose result matches the
// oracle, and the engine continues incrementally afterwards.
func TestClearPIResync(t *testing.T) {
	for _, width := range equivWidths {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(91 + width)))
			c := bench.MustSynthesize(bench.Profile{
				Name: "eq-clr", Inputs: 10, Outputs: 5, Gates: 70, Depth: 8, Seed: 41,
				InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.3,
			})
			st := NewStateWidth(c, width)
			inputs := c.Inputs()
			st.Reset(logic.LevelsMask(width))
			for i := 0; i < 6; i++ {
				st.AddRequirement(circuit.NetID(rng.Intn(c.NumNets())), equivValues[rng.Intn(len(equivValues))], randMask(rng, width))
			}
			for round := 0; round < 10; round++ {
				for i := 0; i < 4; i++ {
					st.AssignPI(inputs[rng.Intn(len(inputs))], equivValues[rng.Intn(len(equivValues))], randMask(rng, width))
				}
				st.Imply()
				st.ForwardSim()
				assertMatchesOracle(t, st, "pre-clear")
				st.ClearPI(randMask(rng, width))
				st.Imply()
				st.ForwardSim()
				assertMatchesOracle(t, st, "post-clear")
			}
		})
	}
}
