package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// This file holds the event machinery of the incremental engine: levelized
// event queues and the event-driven implementations of Imply and ForwardSim.
//
// Each direction keeps one bucket per topological level plus a per-net
// queued flag.  A forward round scans the buckets from the inputs up; every
// processed gate re-evaluates over the current closure, and a change
// schedules its fanout (always at a higher level, so it is reached later in
// the same round) — exactly the Gauss-Seidel order of the full forward
// sweep, with the provably-unchanged evaluations skipped.  A backward round
// scans from the outputs down with the symmetric argument.  Rounds alternate
// until both queues drain or MaxSweeps rounds have run, mirroring the sweep
// bound of the full implementation.

// pushFwd schedules a gate for forward re-evaluation.
func (s *State) pushFwd(net circuit.NetID) {
	if s.fwdQ[net] {
		return
	}
	g := s.c.Gate(net)
	if g.Kind == logic.Input {
		return
	}
	s.fwdQ[net] = true
	s.fwdB[g.Level] = append(s.fwdB[g.Level], net)
	s.fwdN++
}

// pushBwd schedules a gate for backward re-implication.
func (s *State) pushBwd(net circuit.NetID) {
	if s.bwdQ[net] {
		return
	}
	g := s.c.Gate(net)
	if g.Kind == logic.Input || len(g.Fanin) == 0 {
		return
	}
	s.bwdQ[net] = true
	s.bwdB[g.Level] = append(s.bwdB[g.Level], net)
	s.bwdN++
}

// pushSim schedules a gate for forward-simulation re-evaluation.
func (s *State) pushSim(net circuit.NetID) {
	if s.simQ[net] {
		return
	}
	g := s.c.Gate(net)
	if g.Kind == logic.Input {
		return
	}
	s.simQ[net] = true
	s.simB[g.Level] = append(s.simB[g.Level], net)
	s.simN++
}

// clearQueue empties every bucket and resets the queued flags.
func clearQueue(buckets [][]circuit.NetID, queued []bool, count *int) {
	if *count == 0 {
		return
	}
	for lvl := range buckets {
		for _, n := range buckets[lvl] {
			queued[n] = false
		}
		buckets[lvl] = buckets[lvl][:0]
	}
	*count = 0
}

// seedImply merges every pending Req/PI change (anything that differs from
// the absorbed mirrors) into the closure, scheduling propagation events.
// Constant drivers are seeded once per Reset, since the full sweep evaluates
// them unconditionally.
func (s *State) seedImply() {
	if !s.constsSeeded {
		s.constsSeeded = true
		for _, cn := range s.consts {
			s.pushFwd(cn)
		}
	}
	for i := 0; i < len(s.pendImply); i++ {
		n := s.pendImply[i]
		req := s.loadFull(&s.req, n).SelectLevels(s.active)
		if req != s.loadFull(&s.impReq, n) {
			s.note(pImpReq, n)
			s.store(&s.impReq, n, &req)
			s.mergeVal(n, &req)
		}
		if s.c.IsInput(n) {
			pi := s.loadFull(&s.pi, n).SelectLevels(s.active)
			if pi != s.loadFull(&s.impPI, n) {
				s.note(pImpPI, n)
				s.store(&s.impPI, n, &pi)
				s.mergeVal(n, &pi)
			}
		}
	}
	s.pendImply = s.pendImply[:0]
}

// runImplyRounds alternates forward and backward event rounds until both
// queues drain or the sweep bound is hit.
func (s *State) runImplyRounds() {
	maxSweeps := s.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	for round := 0; round < maxSweeps && s.fwdN+s.bwdN > 0; round++ {
		// Forward: ascending levels.  Events raised while processing always
		// target strictly higher levels, so they are consumed in this same
		// round; events raised by the backward half land in the already
		// drained buckets and carry over to the next round.
		if s.fwdN > 0 {
			for lvl := 0; lvl < len(s.fwdB); lvl++ {
				b := s.fwdB[lvl]
				for i := 0; i < len(b); i++ {
					n := b[i]
					s.fwdQ[n] = false
					s.fwdN--
					s.evalGate(s.c.Gate(n), &s.val)
					s.mergeVal(n, &s.evalReg)
				}
				s.fwdB[lvl] = s.fwdB[lvl][:0]
			}
		}
		// Backward: descending levels.  backImply writes the fanin nets, so
		// new events may target the current level (a sibling fanout of the
		// written fanin) or lower levels; both are consumed in this round,
		// higher levels carry over — the order of the reverse sweep.
		if s.bwdN > 0 {
			for lvl := len(s.bwdB) - 1; lvl >= 0; lvl-- {
				for i := 0; i < len(s.bwdB[lvl]); i++ {
					n := s.bwdB[lvl][i]
					s.bwdQ[n] = false
					s.bwdN--
					s.backImply(s.c.Gate(n))
				}
				s.bwdB[lvl] = s.bwdB[lvl][:0]
			}
		}
	}
}

// runForwardSim is the event-driven ForwardSim: it reseeds the inputs whose
// assignment changed since the last call and re-evaluates exactly the gates
// whose fanin values change, in one ascending levelized pass (simulation is
// feed-forward, so one pass always suffices).
func (s *State) runForwardSim() {
	if !s.simConstsSeeded {
		s.simConstsSeeded = true
		for _, cn := range s.consts {
			s.pushSim(cn)
		}
	}
	for i := 0; i < len(s.pendSim); i++ {
		in := s.pendSim[i]
		pi := s.loadFull(&s.pi, in).SelectLevels(s.active)
		if pi == s.loadFull(&s.simPI, in) {
			continue
		}
		s.note(pSimPI, in)
		s.store(&s.simPI, in, &pi)
		s.setSim(in, &pi)
	}
	s.pendSim = s.pendSim[:0]
	if s.simN == 0 {
		return
	}
	for lvl := 0; lvl < len(s.simB); lvl++ {
		b := s.simB[lvl]
		for i := 0; i < len(b); i++ {
			n := b[i]
			s.simQ[n] = false
			s.simN--
			s.evalGate(s.c.Gate(n), &s.sim)
			s.setSim(n, &s.evalReg)
		}
		s.simB[lvl] = s.simB[lvl][:0]
	}
}
