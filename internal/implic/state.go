// Package implic implements the bit-parallel implication engine used by the
// test pattern generator.  All L bit levels of the plane vector (L = 64, 128,
// 256 or 512; see logic.MaxWordWidth) are processed simultaneously: a bit
// level corresponds to one target fault (fault-parallel generation) or to one
// pattern alternative (alternative-parallel generation).
//
// The engine keeps three value planes per net:
//
//   - Req: the sensitization requirements of the target faults;
//   - PI: the primary input assignments (launch transitions and decisions);
//   - Val: the implication closure of Req and PI, computed by alternating
//     forward and backward propagation until a fixpoint;
//
// plus Sim, a forward-only simulation of the PI assignments used to decide
// which requirements are already justified from the primary inputs.
// Conflicts (the illegal encodings of Tables 1 and 2) are tracked per bit
// level, so a conflict on one bit level never disturbs the others.
//
// # Plane storage layout
//
// Each plane kind is stored structure-of-arrays: one []uint64 per bit plane
// (Zero/One/Stable/Instable), holding K consecutive words per net, where K is
// fixed at construction from the requested word width (NewStateWidth).  The
// four plane slices of a net's K-word window are contiguous, so the
// event-driven engine touches K adjacent words per plane per net and the
// word3/word7 kernels reduce to fixed-bound loops the compiler can unroll and
// auto-vectorize.  Operations run over the first kA ≤ K words, where kA
// covers the highest active level of the current Reset epoch: a K=8 state
// running a 64-level pass pays for one word, not eight.
//
// # Event-driven incremental operation
//
// The engine is incremental: Imply and ForwardSim only propagate from nets
// whose Req or PI actually changed since the previous call, along the
// precomputed fanout and fanin lists of the circuit, using levelized event
// queues (see event.go).  An assignment trail (Assign/Undo, see trail.go)
// lets the generator's backtracking restore the exact pre-decision state
// instead of recomputing the closure from scratch, and Reset clears only the
// nets that were written since the previous Reset.
//
// The incremental closure is bit-identical to the retained full-sweep
// implementation (the FullSweep debug option, kept as the test oracle)
// whenever the closure converges within MaxSweeps rounds — which it does on
// every practical netlist; the bound exists only to tame pathological
// circuits.  On bit levels whose closure contains a conflict the derived
// stability planes may differ between the two implementations (conflict
// encodings make individual derivations order-dependent), but the conflict
// masks themselves, all conflict-free levels, the Sim plane and therefore
// every generator decision are identical; equiv_test.go checks this contract
// on randomized and ISCAS-85-class circuits, at K=1 and at wider widths.
package implic

import (
	"slices"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// planes7 is the structure-of-arrays storage of one plane kind: each slice
// holds K consecutive words per net (net i occupies [i*K, (i+1)*K)).
type planes7 struct {
	zero     []uint64
	one      []uint64
	stable   []uint64
	instable []uint64
}

func newPlanes7(n, k int) planes7 {
	return planes7{
		zero:     make([]uint64, n*k),
		one:      make([]uint64, n*k),
		stable:   make([]uint64, n*k),
		instable: make([]uint64, n*k),
	}
}

// clearNet zeroes the first k words of net's window.
func (p *planes7) clearNet(off, k int) {
	for w := 0; w < k; w++ {
		p.zero[off+w] = 0
		p.one[off+w] = 0
		p.stable[off+w] = 0
		p.instable[off+w] = 0
	}
}

// State is the per-net value state of the implication engine.  A State is
// created once per circuit and reset cheaply between fault groups.  All
// plane access goes through the State methods (AddRequirement, AssignPI,
// Requirement, SimGet, ...) — the storage itself is unexported because direct
// writes would bypass the event scheduling, dirty tracking and assignment
// trail.
type State struct {
	c *circuit.Circuit

	// kcap is the number of plane words allocated per net (the width
	// capacity); ka ≤ kcap is the number of words covering the highest
	// active level of the current epoch — every plane loop runs over ka.
	kcap int
	ka   int

	// The plane kinds: requirements, input assignments, implication closure,
	// forward simulation, plus the absorbed mirrors of the incremental
	// engine (see the mirror comment below).
	req, pi, val, sim    planes7
	impReq, impPI, simPI planes7

	active      logic.Mask // bit levels in use
	conflict    logic.Mask // reported conflict mask (subset of active)
	valConflict logic.Mask // accumulated conflict bits of the Val plane

	// scratch registers and buffers reused across calls.  faninBuf7 is the
	// single-word gather buffer of the ka==1 fast path; the bX masks are
	// the working set of the generic backward-implication rules.  Only words
	// [0, ka) of any scratch are meaningful; the rest are stale.
	faninBuf   []logic.Word7V
	faninBuf7  []logic.Word7
	evalReg    logic.Word7V
	mergeReg   logic.Word7V
	bF1, bF0   logic.Mask
	bSt, bInst logic.Mask
	bOthers    logic.Mask

	// MaxSweeps bounds the number of forward/backward rounds of Imply.  The
	// implication closure usually converges in two or three rounds; the
	// bound only protects against pathological netlists.
	MaxSweeps int

	// FullSweep selects the original from-scratch implementation of Imply,
	// ForwardSim and Reset instead of the event-driven incremental one.  It
	// is the debug oracle the incremental engine is validated against and
	// must be set before Reset, not toggled mid-epoch.
	FullSweep bool

	// impReq/impPI mirror the Req and PI planes as last absorbed by the
	// implication closure; Imply seeds events from nets whose current plane
	// differs from its mirror.  simPI is the same mirror for ForwardSim.
	// (Storage is in the planes7 fields above.)

	// pendImply/pendSim list nets whose Req/PI may differ from the mirrors
	// (duplicates allowed); they are drained by Imply and ForwardSim.
	pendImply []circuit.NetID
	pendSim   []circuit.NetID

	// touched lists every net written since the last Reset, so Reset clears
	// only dirty nets.
	touched     []circuit.NetID
	touchedMark []bool

	// reqNetsW buckets the nets carrying a requirement by the plane word
	// their requirement bits live in (a net appears in every word bucket it
	// has bits in, usually exactly one), so the per-level and per-word scans
	// of Unjustified and JustifiedMask stay proportional to the word's own
	// requirement set rather than the whole group's — the scans cost the
	// same per fault at L=512 as at L=64.  Buckets are insertion-ordered and
	// truncated by length on Undo, so no scan of the whole circuit is ever
	// needed.
	reqNetsW  [logic.MaxK][]circuit.NetID
	unjustBuf []circuit.NetID

	// Levelized event queues: one bucket per topological level, with a
	// per-net queued flag and a pending count per direction.
	fwdB, bwdB, simB [][]circuit.NetID
	fwdQ, bwdQ, simQ []bool
	fwdN, bwdN, simN int

	// consts lists the constant-driver nets; the full sweeps evaluate every
	// gate, so the incremental engine seeds them once per Reset.
	consts          []circuit.NetID
	constsSeeded    bool
	simConstsSeeded bool

	// needResync is set when an assignment was removed outside the trail
	// (ClearPI): the monotone incremental closure cannot shrink, so the next
	// Imply recomputes from scratch and resynchronizes the bookkeeping.
	needResync bool

	// Assignment trail (see trail.go).
	frames   []frame
	trail    []trailEntry
	trailW   []uint64
	stamps   [numPlanes][]int64
	frameSeq int64
}

// NewState allocates an implication state for the circuit at the default
// 64-level word width.
func NewState(c *circuit.Circuit) *State { return NewStateWidth(c, logic.WordWidth) }

// NewStateWidth allocates an implication state whose plane vectors cover the
// given word width (rounded up to whole words, clamped to
// logic.MaxWordWidth).  The width is a capacity: Reset masks narrower than
// the capacity run over proportionally fewer plane words.
func NewStateWidth(c *circuit.Circuit, width int) *State {
	n := c.NumNets()
	k := logic.KForWidth(width)
	s := &State{
		c:           c,
		kcap:        k,
		ka:          k,
		req:         newPlanes7(n, k),
		pi:          newPlanes7(n, k),
		val:         newPlanes7(n, k),
		sim:         newPlanes7(n, k),
		impReq:      newPlanes7(n, k),
		impPI:       newPlanes7(n, k),
		simPI:       newPlanes7(n, k),
		MaxSweeps:   8,
		touchedMark: make([]bool, n),
		fwdB:        make([][]circuit.NetID, c.NumLevels()),
		bwdB:        make([][]circuit.NetID, c.NumLevels()),
		simB:        make([][]circuit.NetID, c.NumLevels()),
		fwdQ:        make([]bool, n),
		bwdQ:        make([]bool, n),
		simQ:        make([]bool, n),
	}
	maxFanin := 1
	for _, g := range c.Gates() {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
		if g.Kind == logic.Const0 || g.Kind == logic.Const1 {
			s.consts = append(s.consts, g.ID)
		}
	}
	s.faninBuf = make([]logic.Word7V, maxFanin)
	s.faninBuf7 = make([]logic.Word7, maxFanin)
	for i := range s.stamps {
		s.stamps[i] = make([]int64, n)
	}
	return s
}

// Circuit returns the circuit the state operates on.
func (s *State) Circuit() *circuit.Circuit { return s.c }

// Width returns the word-width capacity of the state in bit levels.
func (s *State) Width() int { return s.kcap * logic.WordWidth }

// off returns the first plane-word index of net's window.
func (s *State) off(net circuit.NetID) int { return int(net) * s.kcap }

// Reset clears all planes and sets the active bit level mask (clamped to the
// state's width capacity).  Only nets written since the previous Reset are
// cleared.
//
//atpgvet:noalloc
func (s *State) Reset(active logic.Mask) {
	kaOld := s.ka
	for _, n := range s.touched {
		off := s.off(n)
		s.req.clearNet(off, kaOld)
		s.pi.clearNet(off, kaOld)
		s.val.clearNet(off, kaOld)
		s.sim.clearNet(off, kaOld)
		s.impReq.clearNet(off, kaOld)
		s.impPI.clearNet(off, kaOld)
		s.simPI.clearNet(off, kaOld)
		s.touchedMark[n] = false
	}
	s.touched = s.touched[:0]
	clearQueue(s.fwdB, s.fwdQ, &s.fwdN)
	clearQueue(s.bwdB, s.bwdQ, &s.bwdN)
	clearQueue(s.simB, s.simQ, &s.simN)
	s.pendImply = s.pendImply[:0]
	s.pendSim = s.pendSim[:0]
	for w := range s.reqNetsW {
		s.reqNetsW[w] = s.reqNetsW[w][:0]
	}
	s.frames = s.frames[:0]
	s.trail = s.trail[:0]
	s.trailW = s.trailW[:0]
	for w := s.kcap; w < logic.MaxK; w++ {
		active[w] = 0
	}
	s.active = active
	ka := active.Words()
	if ka > s.kcap {
		ka = s.kcap
	}
	s.ka = ka
	s.conflict = logic.Mask{}
	s.valConflict = logic.Mask{}
	s.constsSeeded = false
	s.simConstsSeeded = false
	s.needResync = false
}

// Active returns the mask of bit levels in use.
func (s *State) Active() logic.Mask { return s.active }

// ConflictMask returns the accumulated conflict mask (restricted to the
// active levels).
func (s *State) ConflictMask() logic.Mask { return s.conflict.And(s.active) }

// AddRequirement merges a sensitization requirement for net at the levels
// selected by mask.
func (s *State) AddRequirement(net circuit.NetID, v logic.Value7, mask logic.Mask) {
	if v == logic.X7 {
		return
	}
	r := logic.FillWord7V(v, mask.And(s.active))
	ka, off := s.ka, s.off(net)
	changed := false
	var firstBits [logic.MaxK]bool
	for w := 0; w < ka; w++ {
		o := off + w
		z, on, st, in := s.req.zero[o], s.req.one[o], s.req.stable[o], s.req.instable[o]
		if r.Zero[w]&^z|r.One[w]&^on|r.Stable[w]&^st|r.Instable[w]&^in != 0 {
			changed = true
			firstBits[w] = z|on|st|in == 0
		}
	}
	if !changed {
		return
	}
	s.note(pReq, net)
	for w := 0; w < ka; w++ {
		o := off + w
		s.req.zero[o] |= r.Zero[w]
		s.req.one[o] |= r.One[w]
		s.req.stable[o] |= r.Stable[w]
		s.req.instable[o] |= r.Instable[w]
		if firstBits[w] {
			s.reqNetsW[w] = append(s.reqNetsW[w], net)
		}
	}
	s.pendImply = append(s.pendImply, net)
}

// AssignPI merges a primary input assignment for net at the levels selected
// by mask.  Assigning a non-input net is a programming error and is ignored.
func (s *State) AssignPI(net circuit.NetID, v logic.Value7, mask logic.Mask) {
	if v == logic.X7 || !s.c.IsInput(net) {
		return
	}
	r := logic.FillWord7V(v, mask.And(s.active))
	s.mergePI(net, &r)
}

// AssignPIWord merges an arbitrary per-level assignment vector for a primary
// input (used by APTPG to enumerate the 2^k combinations of k inputs).
func (s *State) AssignPIWord(net circuit.NetID, w logic.Word7V) {
	if !s.c.IsInput(net) {
		return
	}
	r := w.SelectLevels(s.active)
	s.mergePI(net, &r)
}

// mergePI merges a pre-masked assignment vector into the PI plane of an
// input and schedules the net for the next Imply and ForwardSim.
func (s *State) mergePI(net circuit.NetID, r *logic.Word7V) {
	ka, off := s.ka, s.off(net)
	changed := false
	for w := 0; w < ka; w++ {
		o := off + w
		if r.Zero[w]&^s.pi.zero[o]|r.One[w]&^s.pi.one[o]|r.Stable[w]&^s.pi.stable[o]|r.Instable[w]&^s.pi.instable[o] != 0 {
			changed = true
			break
		}
	}
	if !changed {
		return
	}
	s.note(pPI, net)
	for w := 0; w < ka; w++ {
		o := off + w
		s.pi.zero[o] |= r.Zero[w]
		s.pi.one[o] |= r.One[w]
		s.pi.stable[o] |= r.Stable[w]
		s.pi.instable[o] |= r.Instable[w]
	}
	s.pendImply = append(s.pendImply, net)
	s.pendSim = append(s.pendSim, net)
}

// ClearPI removes all primary input assignments (keeping requirements),
// restricted to the levels selected by mask.
//
// Removing assignments shrinks the closure, which the monotone incremental
// engine cannot express; the next Imply therefore falls back to one full
// from-scratch recomputation (Reset + re-assignment, or the Assign/Undo
// trail, are the cheap ways to retract assignments).
func (s *State) ClearPI(mask logic.Mask) {
	ka := s.ka
	for _, in := range s.c.Inputs() {
		off := s.off(in)
		cleared := false
		for w := 0; w < ka; w++ {
			o := off + w
			if (s.pi.zero[o]|s.pi.one[o]|s.pi.stable[o]|s.pi.instable[o])&mask[w] != 0 {
				cleared = true
				break
			}
		}
		if !cleared {
			continue
		}
		s.note(pPI, in)
		for w := 0; w < ka; w++ {
			o := off + w
			s.pi.zero[o] &^= mask[w]
			s.pi.one[o] &^= mask[w]
			s.pi.stable[o] &^= mask[w]
			s.pi.instable[o] &^= mask[w]
		}
		s.pendSim = append(s.pendSim, in)
		s.needResync = true
	}
}

// loadFull copies net's window of p into a full-width vector (upper words
// zero, so vectors from different epochs compare with ==).
func (s *State) loadFull(p *planes7, net circuit.NetID) logic.Word7V {
	var r logic.Word7V
	ka, off := s.ka, s.off(net)
	for w := 0; w < ka; w++ {
		o := off + w
		r.Zero[w] = p.zero[o]
		r.One[w] = p.one[o]
		r.Stable[w] = p.stable[o]
		r.Instable[w] = p.instable[o]
	}
	return r
}

// planeGet reads the value of one bit level of net's window of p.
func (s *State) planeGet(p *planes7, net circuit.NetID, level int) logic.Value7 {
	if level < 0 || level >= s.kcap*logic.WordWidth {
		return logic.X7
	}
	o := s.off(net) + level>>6
	b := uint64(1) << uint(level&63)
	return logic.Value7FromPlanes(p.zero[o]&b != 0, p.one[o]&b != 0, p.stable[o]&b != 0, p.instable[o]&b != 0)
}

// PIValue returns the current assignment vector of a primary input.
func (s *State) PIValue(net circuit.NetID) logic.Word7V { return s.loadFull(&s.pi, net) }

// Imply updates the implication closure Val from Req and PI and returns the
// mask of bit levels on which a conflict was detected.  A conflict on a
// level means the requirements (plus the current input assignments) are
// unsatisfiable on that level.
//
// Only nets whose Req or PI changed since the previous Imply seed new
// propagation; unchanged regions of the circuit are not revisited.
//
//atpgvet:noalloc
func (s *State) Imply() logic.Mask {
	if s.FullSweep {
		return s.implyFull()
	}
	if s.needResync {
		return s.resync()
	}
	s.seedImply()
	s.runImplyRounds()
	// Like the full sweep, Imply reports only conflicts present in the
	// closure; conflicts recorded with MarkConflict before this call are
	// discarded, so callers that track externally detected dead levels must
	// keep their own mask.
	s.conflict = s.valConflict.And(s.active)
	return s.ConflictMask()
}

// implyFull is the retained full-sweep implementation: it recomputes the
// closure from scratch with alternating whole-circuit forward and backward
// sweeps.  It is the oracle the event-driven path is validated against, and
// the recovery path after ClearPI.
func (s *State) implyFull() logic.Mask {
	order := s.c.TopoOrder()
	// Initialise the closure with the requirements and input assignments.
	for i := 0; i < s.c.NumNets(); i++ {
		id := circuit.NetID(i)
		r := s.loadFull(&s.req, id).SelectLevels(s.active)
		s.setValReplace(id, &r)
	}
	for _, in := range s.c.Inputs() {
		r := s.loadFull(&s.pi, in).SelectLevels(s.active)
		s.mergeVal(in, &r)
	}

	maxSweeps := s.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		// Forward sweep: gate outputs receive the evaluation of their fanin
		// values.
		for _, id := range order {
			g := s.c.Gate(id)
			if g.Kind == logic.Input {
				continue
			}
			s.evalGate(g, &s.val)
			if s.mergeVal(id, &s.evalReg) {
				changed = true
			}
		}
		// Backward sweep: unique implications from required output values to
		// the fanin nets.
		for i := len(order) - 1; i >= 0; i-- {
			g := s.c.Gate(order[i])
			if g.Kind == logic.Input || len(g.Fanin) == 0 {
				continue
			}
			if s.backImply(g) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var conflict logic.Mask
	ka := s.ka
	for i := 0; i < s.c.NumNets(); i++ {
		off := s.off(circuit.NetID(i))
		for w := 0; w < ka; w++ {
			o := off + w
			conflict[w] |= (s.val.zero[o] & s.val.one[o]) | (s.val.stable[o] & s.val.instable[o])
		}
	}
	s.valConflict = conflict
	s.conflict = conflict.And(s.active)
	return s.ConflictMask()
}

// resync recovers after ClearPI: one full-sweep recomputation, then the
// incremental bookkeeping (mirrors, event queues) is rebuilt to match.
func (s *State) resync() logic.Mask {
	conf := s.implyFull()
	clearQueue(s.fwdB, s.fwdQ, &s.fwdN)
	clearQueue(s.bwdB, s.bwdQ, &s.bwdN)
	s.pendImply = s.pendImply[:0]
	for _, n := range s.touched {
		req := s.loadFull(&s.req, n).SelectLevels(s.active)
		if req != s.loadFull(&s.impReq, n) {
			s.note(pImpReq, n)
			s.store(&s.impReq, n, &req)
		}
		if s.c.IsInput(n) {
			pi := s.loadFull(&s.pi, n).SelectLevels(s.active)
			if pi != s.loadFull(&s.impPI, n) {
				s.note(pImpPI, n)
				s.store(&s.impPI, n, &pi)
			}
		}
	}
	s.constsSeeded = true
	s.needResync = false
	return conf
}

// store overwrites net's window of p with r (words [0, ka)).
func (s *State) store(p *planes7, net circuit.NetID, r *logic.Word7V) {
	ka, off := s.ka, s.off(net)
	for w := 0; w < ka; w++ {
		o := off + w
		p.zero[o] = r.Zero[w]
		p.one[o] = r.One[w]
		p.stable[o] = r.Stable[w]
		p.instable[o] = r.Instable[w]
	}
}

// setValReplace overwrites Val[net] (full-sweep initialisation only).
func (s *State) setValReplace(net circuit.NetID, r *logic.Word7V) {
	ka, off := s.ka, s.off(net)
	same := true
	for w := 0; w < ka; w++ {
		o := off + w
		if s.val.zero[o] != r.Zero[w] || s.val.one[o] != r.One[w] ||
			s.val.stable[o] != r.Stable[w] || s.val.instable[o] != r.Instable[w] {
			same = false
			break
		}
	}
	if same {
		return
	}
	s.note(pVal, net)
	s.store(&s.val, net, r)
}

// mergeVal merges a vector into Val[net], accumulates conflicts, and (in
// incremental mode) schedules the affected neighbors: the fanout gates
// re-evaluate forward, the net's own gate and its fanout gates rerun their
// backward implications.  It reports whether Val[net] changed.
func (s *State) mergeVal(net circuit.NetID, r *logic.Word7V) bool {
	switch s.ka {
	case 1:
		return s.mergeVal1(net, r.Zero[0], r.One[0], r.Stable[0], r.Instable[0])
	case 2:
		return s.mergeVal2(net,
			[2]uint64{r.Zero[0], r.Zero[1]}, [2]uint64{r.One[0], r.One[1]},
			[2]uint64{r.Stable[0], r.Stable[1]}, [2]uint64{r.Instable[0], r.Instable[1]})
	}
	ka, off := s.ka, s.off(net)
	changed := false
	for w := 0; w < ka; w++ {
		o := off + w
		if r.Zero[w]&^s.val.zero[o]|r.One[w]&^s.val.one[o]|r.Stable[w]&^s.val.stable[o]|r.Instable[w]&^s.val.instable[o] != 0 {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	s.note(pVal, net)
	for w := 0; w < ka; w++ {
		o := off + w
		z := s.val.zero[o] | r.Zero[w]
		on := s.val.one[o] | r.One[w]
		st := s.val.stable[o] | r.Stable[w]
		in := s.val.instable[o] | r.Instable[w]
		s.val.zero[o], s.val.one[o], s.val.stable[o], s.val.instable[o] = z, on, st, in
		s.valConflict[w] |= (z & on) | (st & in)
	}
	if !s.FullSweep {
		s.pushBwd(net)
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushFwd(fo)
			s.pushBwd(fo)
		}
	}
	return true
}

// mergeVal1 is the single-word (ka==1) specialisation of mergeVal: the active
// plane windows are single words, so the merge runs on scalars with no vector
// registers.  Wide states running a one-word epoch use it too, hence s.off.
func (s *State) mergeVal1(net circuit.NetID, rz, ro, rs, ri uint64) bool {
	o := s.off(net)
	if rz&^s.val.zero[o]|ro&^s.val.one[o]|rs&^s.val.stable[o]|ri&^s.val.instable[o] == 0 {
		return false
	}
	s.note(pVal, net)
	z := s.val.zero[o] | rz
	on := s.val.one[o] | ro
	st := s.val.stable[o] | rs
	in := s.val.instable[o] | ri
	s.val.zero[o], s.val.one[o], s.val.stable[o], s.val.instable[o] = z, on, st, in
	s.valConflict[0] |= (z & on) | (st & in)
	if !s.FullSweep {
		s.pushBwd(net)
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushFwd(fo)
			s.pushBwd(fo)
		}
	}
	return true
}

// mergeVal2 is the two-word (ka==2) specialisation of mergeVal: the merge
// runs fully unrolled on scalar pairs, the L=128 hot path.
func (s *State) mergeVal2(net circuit.NetID, rz, ro, rs, ri [2]uint64) bool {
	o := s.off(net)
	z0, on0, st0, in0 := s.val.zero[o], s.val.one[o], s.val.stable[o], s.val.instable[o]
	z1, on1, st1, in1 := s.val.zero[o+1], s.val.one[o+1], s.val.stable[o+1], s.val.instable[o+1]
	if rz[0]&^z0|ro[0]&^on0|rs[0]&^st0|ri[0]&^in0 == 0 &&
		rz[1]&^z1|ro[1]&^on1|rs[1]&^st1|ri[1]&^in1 == 0 {
		return false
	}
	s.note(pVal, net)
	z0, on0, st0, in0 = z0|rz[0], on0|ro[0], st0|rs[0], in0|ri[0]
	z1, on1, st1, in1 = z1|rz[1], on1|ro[1], st1|rs[1], in1|ri[1]
	s.val.zero[o], s.val.one[o], s.val.stable[o], s.val.instable[o] = z0, on0, st0, in0
	s.val.zero[o+1], s.val.one[o+1], s.val.stable[o+1], s.val.instable[o+1] = z1, on1, st1, in1
	s.valConflict[0] |= (z0 & on0) | (st0 & in0)
	s.valConflict[1] |= (z1 & on1) | (st1 & in1)
	if !s.FullSweep {
		s.pushBwd(net)
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushFwd(fo)
			s.pushBwd(fo)
		}
	}
	return true
}

// evalGate evaluates gate g over the given plane storage into s.evalReg: the
// fanin windows are gathered into the scratch vector buffer and handed to the
// shared K-word kernel.  One- and two-word epochs instead sweep the scalar
// kernel per word through the compact Word7 gather buffer — a cache line of
// fanin values instead of Mask-strided Word7V writes.
func (s *State) evalGate(g *circuit.Gate, p *planes7) {
	if ka := s.ka; ka <= 2 {
		buf := s.faninBuf7[:len(g.Fanin)]
		for w := 0; w < ka; w++ {
			for i, f := range g.Fanin {
				o := s.off(f) + w
				buf[i] = logic.Word7{Zero: p.zero[o], One: p.one[o], Stable: p.stable[o], Instable: p.instable[o]}
			}
			r := logic.EvalGate7(g.Kind, buf)
			s.evalReg.Zero[w], s.evalReg.One[w] = r.Zero, r.One
			s.evalReg.Stable[w], s.evalReg.Instable[w] = r.Stable, r.Instable
		}
		return
	}
	ka := s.ka
	buf := s.faninBuf[:len(g.Fanin)]
	for i, f := range g.Fanin {
		off := s.off(f)
		for w := 0; w < ka; w++ {
			o := off + w
			buf[i].Zero[w] = p.zero[o]
			buf[i].One[w] = p.one[o]
			buf[i].Stable[w] = p.stable[o]
			buf[i].Instable[w] = p.instable[o]
		}
	}
	logic.EvalGate7VInto(&s.evalReg, g.Kind, ka, buf)
}

// ForwardSim updates Sim: a forward-only simulation of the current PI
// assignments, ignoring the requirements.  Sim tells the generator which
// values are actually produced by the inputs chosen so far, and therefore
// which requirements are justified.  Only the fanout cones of inputs whose
// assignment changed since the previous call are re-evaluated.
//
//atpgvet:noalloc
func (s *State) ForwardSim() {
	if s.FullSweep {
		s.forwardSimFull()
		return
	}
	s.runForwardSim()
}

// forwardSimFull is the retained from-scratch simulation (test oracle).
func (s *State) forwardSimFull() {
	var zero logic.Word7V
	for i := 0; i < s.c.NumNets(); i++ {
		s.setSim(circuit.NetID(i), &zero)
	}
	for _, in := range s.c.Inputs() {
		r := s.loadFull(&s.pi, in).SelectLevels(s.active)
		s.setSim(in, &r)
	}
	for _, id := range s.c.TopoOrder() {
		g := s.c.Gate(id)
		if g.Kind == logic.Input {
			continue
		}
		s.evalGate(g, &s.sim)
		s.setSim(id, &s.evalReg)
	}
}

// setSim overwrites Sim[net] and (in incremental mode) schedules the fanout
// gates for re-evaluation.
func (s *State) setSim(net circuit.NetID, r *logic.Word7V) {
	ka, off := s.ka, s.off(net)
	same := true
	for w := 0; w < ka; w++ {
		o := off + w
		if s.sim.zero[o] != r.Zero[w] || s.sim.one[o] != r.One[w] ||
			s.sim.stable[o] != r.Stable[w] || s.sim.instable[o] != r.Instable[w] {
			same = false
			break
		}
	}
	if same {
		return
	}
	s.note(pSim, net)
	s.store(&s.sim, net, r)
	if !s.FullSweep {
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushSim(fo)
		}
	}
}

// JustifiedMask returns the mask of active bit levels on which every
// requirement is covered by the forward simulation of the primary input
// assignments and no conflict has been recorded.  ForwardSim must have been
// called after the last assignment change.  Only nets carrying a
// requirement are inspected.
func (s *State) JustifiedMask() logic.Mask {
	mask := s.active.AndNot(s.conflict)
	for w := 0; w < s.ka; w++ {
		a := s.active[w]
		for _, id := range s.reqNetsW[w] {
			o := s.off(id) + w
			mask[w] &^= (s.req.zero[o] & a &^ s.sim.zero[o]) |
				(s.req.one[o] & a &^ s.sim.one[o]) |
				(s.req.stable[o] & a &^ s.sim.stable[o]) |
				(s.req.instable[o] & a &^ s.sim.instable[o])
			if mask[w] == 0 {
				break
			}
		}
	}
	return mask
}

// Unjustified returns the nets whose requirement is not yet covered by the
// forward simulation at the given bit level, in topological order (nets
// closest to the primary inputs first).  ForwardSim must be up to date.
//
// The returned slice is a scratch buffer owned by the State: it is
// overwritten by the next Unjustified call and must not be retained across
// calls (or across goroutines sharing the State).
func (s *State) Unjustified(level int) []circuit.NetID {
	lw := level >> 6
	bit := uint64(1) << uint(level&63)
	out := s.unjustBuf[:0]
	// The word bucket must stay in insertion order (the trail truncates it
	// by length on Undo), so only the filtered output is sorted.
	for _, id := range s.reqNetsW[lw] {
		o := s.off(id) + lw
		rz, ro := s.req.zero[o]&bit, s.req.one[o]&bit
		rs, ri := s.req.stable[o]&bit, s.req.instable[o]&bit
		if rz|ro|rs|ri == 0 {
			continue
		}
		miss := (rz &^ s.sim.zero[o]) | (ro &^ s.sim.one[o]) |
			(rs &^ s.sim.stable[o]) | (ri &^ s.sim.instable[o])
		if miss != 0 {
			out = append(out, id)
		}
	}
	slices.SortFunc(out, func(a, b circuit.NetID) int {
		return s.c.OrderPos(a) - s.c.OrderPos(b)
	})
	s.unjustBuf = out
	return out
}

// SimValue returns the forward-simulation vector of a net.
func (s *State) SimValue(net circuit.NetID) logic.Word7V { return s.loadFull(&s.sim, net) }

// ImpliedValue returns the implication-closure vector of a net.
func (s *State) ImpliedValue(net circuit.NetID) logic.Word7V { return s.loadFull(&s.val, net) }

// Requirement returns the requirement vector of a net.
func (s *State) Requirement(net circuit.NetID) logic.Word7V { return s.loadFull(&s.req, net) }

// SimGet returns the forward-simulation value of a net at one bit level
// without materialising the full vector (the backtrace hot path).
func (s *State) SimGet(net circuit.NetID, level int) logic.Value7 {
	return s.planeGet(&s.sim, net, level)
}

// ValGet returns the implication-closure value of a net at one bit level.
func (s *State) ValGet(net circuit.NetID, level int) logic.Value7 {
	return s.planeGet(&s.val, net, level)
}

// ReqGet returns the requirement of a net at one bit level.
func (s *State) ReqGet(net circuit.NetID, level int) logic.Value7 {
	return s.planeGet(&s.req, net, level)
}

// PIGet returns the assignment of a primary input at one bit level.
func (s *State) PIGet(net circuit.NetID, level int) logic.Value7 {
	return s.planeGet(&s.pi, net, level)
}

// MarkConflict records an externally detected conflict (for example a
// backtrace dead end) on the given levels.
func (s *State) MarkConflict(mask logic.Mask) {
	s.conflict = s.conflict.Or(mask.And(s.active))
}
