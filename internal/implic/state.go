// Package implic implements the bit-parallel implication engine used by the
// test pattern generator.  All 64 bit levels of the machine word are
// processed simultaneously: a bit level corresponds to one target fault
// (fault-parallel generation) or to one pattern alternative
// (alternative-parallel generation).
//
// The engine keeps three value planes per net:
//
//   - Req: the sensitization requirements of the target faults;
//   - PI: the primary input assignments (launch transitions and decisions);
//   - Val: the implication closure of Req and PI, computed by alternating
//     forward and backward sweeps until a fixpoint;
//
// plus Sim, a forward-only simulation of the PI assignments used to decide
// which requirements are already justified from the primary inputs.
// Conflicts (the illegal encodings of Tables 1 and 2) are tracked per bit
// level, so a conflict on one bit level never disturbs the others.
package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// State is the per-net value state of the implication engine.  A State is
// created once per circuit and reset cheaply between fault groups.
type State struct {
	c *circuit.Circuit

	// Req holds the sensitization requirements per net.
	Req []logic.Word7
	// PI holds the primary input assignments per net (only input nets are
	// ever written).
	PI []logic.Word7
	// Val holds the implication closure of Req and PI.
	Val []logic.Word7
	// Sim holds the forward-only simulation of the PI assignments.
	Sim []logic.Word7

	active   uint64 // bit levels in use
	conflict uint64 // accumulated conflict mask (subset of active)

	// scratch buffers reused across calls.
	faninBuf []logic.Word7

	// MaxSweeps bounds the number of forward/backward rounds of Imply.  The
	// implication closure usually converges in two or three rounds; the
	// bound only protects against pathological netlists.
	MaxSweeps int
}

// NewState allocates an implication state for the circuit.
func NewState(c *circuit.Circuit) *State {
	n := c.NumNets()
	return &State{
		c:         c,
		Req:       make([]logic.Word7, n),
		PI:        make([]logic.Word7, n),
		Val:       make([]logic.Word7, n),
		Sim:       make([]logic.Word7, n),
		faninBuf:  make([]logic.Word7, 0, 8),
		MaxSweeps: 8,
	}
}

// Circuit returns the circuit the state operates on.
func (s *State) Circuit() *circuit.Circuit { return s.c }

// Reset clears all planes and sets the active bit level mask.
func (s *State) Reset(active uint64) {
	for i := range s.Req {
		s.Req[i] = logic.Word7{}
		s.PI[i] = logic.Word7{}
		s.Val[i] = logic.Word7{}
		s.Sim[i] = logic.Word7{}
	}
	s.active = active
	s.conflict = 0
}

// Active returns the mask of bit levels in use.
func (s *State) Active() uint64 { return s.active }

// ConflictMask returns the accumulated conflict mask (restricted to the
// active levels).
func (s *State) ConflictMask() uint64 { return s.conflict & s.active }

// AddRequirement merges a sensitization requirement for net at the levels
// selected by mask.
func (s *State) AddRequirement(net circuit.NetID, v logic.Value7, mask uint64) {
	if v == logic.X7 {
		return
	}
	s.Req[net] = s.Req[net].MergeMasked(logic.FillWord7(v), mask&s.active)
}

// AssignPI merges a primary input assignment for net at the levels selected
// by mask.  Assigning a non-input net is a programming error and is ignored.
func (s *State) AssignPI(net circuit.NetID, v logic.Value7, mask uint64) {
	if v == logic.X7 || !s.c.IsInput(net) {
		return
	}
	s.PI[net] = s.PI[net].MergeMasked(logic.FillWord7(v), mask&s.active)
}

// AssignPIWord merges an arbitrary per-level assignment word for a primary
// input (used by APTPG to enumerate the 2^k combinations of k inputs).
func (s *State) AssignPIWord(net circuit.NetID, w logic.Word7) {
	if !s.c.IsInput(net) {
		return
	}
	s.PI[net] = s.PI[net].Merge(w.SelectLevels(s.active))
}

// ClearPI removes all primary input assignments (keeping requirements),
// restricted to the levels selected by mask.
func (s *State) ClearPI(mask uint64) {
	for _, in := range s.c.Inputs() {
		s.PI[in] = s.PI[in].ClearLevels(mask)
	}
}

// PIValue returns the current assignment of a primary input.
func (s *State) PIValue(net circuit.NetID) logic.Word7 { return s.PI[net] }

// Imply recomputes the implication closure Val from Req and PI and returns
// the mask of bit levels on which a conflict was detected.  A conflict on a
// level means the requirements (plus the current input assignments) are
// unsatisfiable on that level.
func (s *State) Imply() uint64 {
	order := s.c.TopoOrder()
	// Initialise the closure with the requirements and input assignments.
	for i := range s.Val {
		s.Val[i] = s.Req[i].SelectLevels(s.active)
	}
	for _, in := range s.c.Inputs() {
		s.Val[in] = s.Val[in].Merge(s.PI[in].SelectLevels(s.active))
	}

	maxSweeps := s.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		// Forward sweep: gate outputs receive the evaluation of their fanin
		// values.
		for _, id := range order {
			g := s.c.Gate(id)
			if g.Kind == logic.Input {
				continue
			}
			ev := s.evalGate(g, s.Val)
			merged := s.Val[id].Merge(ev)
			if merged != s.Val[id] {
				s.Val[id] = merged
				changed = true
			}
		}
		// Backward sweep: unique implications from required output values to
		// the fanin nets.
		for i := len(order) - 1; i >= 0; i-- {
			g := s.c.Gate(order[i])
			if g.Kind == logic.Input || len(g.Fanin) == 0 {
				continue
			}
			if s.backImply(g) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	conflict := uint64(0)
	for i := range s.Val {
		conflict |= s.Val[i].ConflictMask()
	}
	// Imply recomputes the conflict mask from the current closure; conflicts
	// recorded with MarkConflict before this call are discarded, so callers
	// that track externally detected dead levels must keep their own mask.
	s.conflict = conflict & s.active
	return s.ConflictMask()
}

// evalGate evaluates gate g over the given value slice.
func (s *State) evalGate(g *circuit.Gate, vals []logic.Word7) logic.Word7 {
	s.faninBuf = s.faninBuf[:0]
	for _, f := range g.Fanin {
		s.faninBuf = append(s.faninBuf, vals[f])
	}
	return logic.EvalGate7(g.Kind, s.faninBuf)
}

// ForwardSim recomputes Sim: a forward-only simulation of the current PI
// assignments, ignoring the requirements.  Sim tells the generator which
// values are actually produced by the inputs chosen so far, and therefore
// which requirements are justified.
func (s *State) ForwardSim() {
	for i := range s.Sim {
		s.Sim[i] = logic.Word7{}
	}
	for _, in := range s.c.Inputs() {
		s.Sim[in] = s.PI[in].SelectLevels(s.active)
	}
	for _, id := range s.c.TopoOrder() {
		g := s.c.Gate(id)
		if g.Kind == logic.Input {
			continue
		}
		s.Sim[id] = s.evalGate(g, s.Sim)
	}
}

// JustifiedMask returns the mask of active bit levels on which every
// requirement is covered by the forward simulation of the primary input
// assignments and no conflict has been recorded.  ForwardSim must have been
// called after the last assignment change.
func (s *State) JustifiedMask() uint64 {
	mask := s.active &^ s.conflict
	for i := range s.Req {
		req := s.Req[i].SelectLevels(s.active)
		if (req == logic.Word7{}) {
			continue
		}
		mask &= s.Sim[i].CoversMask(req)
		if mask == 0 {
			return 0
		}
	}
	return mask
}

// Unjustified returns the nets whose requirement is not yet covered by the
// forward simulation at the given bit level, in topological order (nets
// closest to the primary inputs first).  ForwardSim must be up to date.
func (s *State) Unjustified(level int) []circuit.NetID {
	bit := uint64(1) << uint(level)
	var out []circuit.NetID
	for _, id := range s.c.TopoOrder() {
		req := s.Req[id]
		if req.Get(level) == logic.X7 {
			continue
		}
		if s.Sim[id].CoversMask(req)&bit == 0 {
			out = append(out, id)
		}
	}
	return out
}

// SimValue returns the forward-simulation value of a net.
func (s *State) SimValue(net circuit.NetID) logic.Word7 { return s.Sim[net] }

// ImpliedValue returns the implication-closure value of a net.
func (s *State) ImpliedValue(net circuit.NetID) logic.Word7 { return s.Val[net] }

// Requirement returns the requirement word of a net.
func (s *State) Requirement(net circuit.NetID) logic.Word7 { return s.Req[net] }

// MarkConflict records an externally detected conflict (for example a
// backtrace dead end) on the given levels.
func (s *State) MarkConflict(mask uint64) { s.conflict |= mask & s.active }
