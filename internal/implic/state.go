// Package implic implements the bit-parallel implication engine used by the
// test pattern generator.  All 64 bit levels of the machine word are
// processed simultaneously: a bit level corresponds to one target fault
// (fault-parallel generation) or to one pattern alternative
// (alternative-parallel generation).
//
// The engine keeps three value planes per net:
//
//   - Req: the sensitization requirements of the target faults;
//   - PI: the primary input assignments (launch transitions and decisions);
//   - Val: the implication closure of Req and PI, computed by alternating
//     forward and backward propagation until a fixpoint;
//
// plus Sim, a forward-only simulation of the PI assignments used to decide
// which requirements are already justified from the primary inputs.
// Conflicts (the illegal encodings of Tables 1 and 2) are tracked per bit
// level, so a conflict on one bit level never disturbs the others.
//
// # Event-driven incremental operation
//
// The engine is incremental: Imply and ForwardSim only propagate from nets
// whose Req or PI actually changed since the previous call, along the
// precomputed fanout and fanin lists of the circuit, using levelized event
// queues (see event.go).  An assignment trail (Assign/Undo, see trail.go)
// lets the generator's backtracking restore the exact pre-decision state
// instead of recomputing the closure from scratch, and Reset clears only the
// nets that were written since the previous Reset.
//
// The incremental closure is bit-identical to the retained full-sweep
// implementation (the FullSweep debug option, kept as the test oracle)
// whenever the closure converges within MaxSweeps rounds — which it does on
// every practical netlist; the bound exists only to tame pathological
// circuits.  On bit levels whose closure contains a conflict the derived
// stability planes may differ between the two implementations (conflict
// encodings make individual derivations order-dependent), but the conflict
// masks themselves, all conflict-free levels, the Sim plane and therefore
// every generator decision are identical; equiv_test.go checks this contract
// on randomized and ISCAS-85-class circuits.
package implic

import (
	"slices"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// State is the per-net value state of the implication engine.  A State is
// created once per circuit and reset cheaply between fault groups.
//
// The value planes are exported for inspection; mutate them only through the
// State methods (AddRequirement, AssignPI, ...) — direct writes bypass the
// event scheduling, dirty tracking and assignment trail.
type State struct {
	c *circuit.Circuit

	// Req holds the sensitization requirements per net.
	Req []logic.Word7
	// PI holds the primary input assignments per net (only input nets are
	// ever written).
	PI []logic.Word7
	// Val holds the implication closure of Req and PI.
	Val []logic.Word7
	// Sim holds the forward-only simulation of the PI assignments.
	Sim []logic.Word7

	active      uint64 // bit levels in use
	conflict    uint64 // reported conflict mask (subset of active)
	valConflict uint64 // accumulated conflict bits of the Val plane

	// scratch buffers reused across calls.
	faninBuf []logic.Word7

	// MaxSweeps bounds the number of forward/backward rounds of Imply.  The
	// implication closure usually converges in two or three rounds; the
	// bound only protects against pathological netlists.
	MaxSweeps int

	// FullSweep selects the original from-scratch implementation of Imply,
	// ForwardSim and Reset instead of the event-driven incremental one.  It
	// is the debug oracle the incremental engine is validated against and
	// must be set before Reset, not toggled mid-epoch.
	FullSweep bool

	// impReq/impPI mirror the Req and PI planes as last absorbed by the
	// implication closure; Imply seeds events from nets whose current plane
	// differs from its mirror.  simPI is the same mirror for ForwardSim.
	impReq []logic.Word7
	impPI  []logic.Word7
	simPI  []logic.Word7

	// pendImply/pendSim list nets whose Req/PI may differ from the mirrors
	// (duplicates allowed); they are drained by Imply and ForwardSim.
	pendImply []circuit.NetID
	pendSim   []circuit.NetID

	// touched lists every net written since the last Reset, so Reset clears
	// only dirty nets.
	touched     []circuit.NetID
	touchedMark []bool

	// reqNets lists the nets carrying a requirement, in insertion order
	// (the trail truncates it by length), so JustifiedMask and Unjustified
	// do not scan the whole circuit.
	reqNets   []circuit.NetID
	unjustBuf []circuit.NetID

	// Levelized event queues: one bucket per topological level, with a
	// per-net queued flag and a pending count per direction.
	fwdB, bwdB, simB [][]circuit.NetID
	fwdQ, bwdQ, simQ []bool
	fwdN, bwdN, simN int

	// consts lists the constant-driver nets; the full sweeps evaluate every
	// gate, so the incremental engine seeds them once per Reset.
	consts          []circuit.NetID
	constsSeeded    bool
	simConstsSeeded bool

	// needResync is set when an assignment was removed outside the trail
	// (ClearPI): the monotone incremental closure cannot shrink, so the next
	// Imply recomputes from scratch and resynchronizes the bookkeeping.
	needResync bool

	// Assignment trail (see trail.go).
	frames   []frame
	trail    []trailEntry
	stamps   [numPlanes][]int64
	frameSeq int64
}

// NewState allocates an implication state for the circuit.
func NewState(c *circuit.Circuit) *State {
	n := c.NumNets()
	s := &State{
		c:           c,
		Req:         make([]logic.Word7, n),
		PI:          make([]logic.Word7, n),
		Val:         make([]logic.Word7, n),
		Sim:         make([]logic.Word7, n),
		faninBuf:    make([]logic.Word7, 0, 8),
		MaxSweeps:   8,
		impReq:      make([]logic.Word7, n),
		impPI:       make([]logic.Word7, n),
		simPI:       make([]logic.Word7, n),
		touchedMark: make([]bool, n),
		fwdB:        make([][]circuit.NetID, c.NumLevels()),
		bwdB:        make([][]circuit.NetID, c.NumLevels()),
		simB:        make([][]circuit.NetID, c.NumLevels()),
		fwdQ:        make([]bool, n),
		bwdQ:        make([]bool, n),
		simQ:        make([]bool, n),
	}
	for i := range s.stamps {
		s.stamps[i] = make([]int64, n)
	}
	for _, g := range c.Gates() {
		if g.Kind == logic.Const0 || g.Kind == logic.Const1 {
			s.consts = append(s.consts, g.ID)
		}
	}
	return s
}

// Circuit returns the circuit the state operates on.
func (s *State) Circuit() *circuit.Circuit { return s.c }

// Reset clears all planes and sets the active bit level mask.  Only nets
// written since the previous Reset are cleared.
//
//atpgvet:noalloc
func (s *State) Reset(active uint64) {
	for _, n := range s.touched {
		s.Req[n] = logic.Word7{}
		s.PI[n] = logic.Word7{}
		s.Val[n] = logic.Word7{}
		s.Sim[n] = logic.Word7{}
		s.impReq[n] = logic.Word7{}
		s.impPI[n] = logic.Word7{}
		s.simPI[n] = logic.Word7{}
		s.touchedMark[n] = false
	}
	s.touched = s.touched[:0]
	clearQueue(s.fwdB, s.fwdQ, &s.fwdN)
	clearQueue(s.bwdB, s.bwdQ, &s.bwdN)
	clearQueue(s.simB, s.simQ, &s.simN)
	s.pendImply = s.pendImply[:0]
	s.pendSim = s.pendSim[:0]
	s.reqNets = s.reqNets[:0]
	s.frames = s.frames[:0]
	s.trail = s.trail[:0]
	s.active = active
	s.conflict = 0
	s.valConflict = 0
	s.constsSeeded = false
	s.simConstsSeeded = false
	s.needResync = false
}

// Active returns the mask of bit levels in use.
func (s *State) Active() uint64 { return s.active }

// ConflictMask returns the accumulated conflict mask (restricted to the
// active levels).
func (s *State) ConflictMask() uint64 { return s.conflict & s.active }

// AddRequirement merges a sensitization requirement for net at the levels
// selected by mask.
func (s *State) AddRequirement(net circuit.NetID, v logic.Value7, mask uint64) {
	if v == logic.X7 {
		return
	}
	old := s.Req[net]
	merged := old.MergeMasked(logic.FillWord7(v), mask&s.active)
	if merged == old {
		return
	}
	s.note(pReq, net, old)
	s.Req[net] = merged
	if old == (logic.Word7{}) {
		s.reqNets = append(s.reqNets, net)
	}
	s.pendImply = append(s.pendImply, net)
}

// AssignPI merges a primary input assignment for net at the levels selected
// by mask.  Assigning a non-input net is a programming error and is ignored.
func (s *State) AssignPI(net circuit.NetID, v logic.Value7, mask uint64) {
	if v == logic.X7 || !s.c.IsInput(net) {
		return
	}
	s.mergePI(net, logic.FillWord7(v).SelectLevels(mask&s.active))
}

// AssignPIWord merges an arbitrary per-level assignment word for a primary
// input (used by APTPG to enumerate the 2^k combinations of k inputs).
func (s *State) AssignPIWord(net circuit.NetID, w logic.Word7) {
	if !s.c.IsInput(net) {
		return
	}
	s.mergePI(net, w.SelectLevels(s.active))
}

// mergePI merges a pre-masked assignment word into the PI plane of an input
// and schedules the net for the next Imply and ForwardSim.
func (s *State) mergePI(net circuit.NetID, w logic.Word7) {
	old := s.PI[net]
	merged := old.Merge(w)
	if merged == old {
		return
	}
	s.note(pPI, net, old)
	s.PI[net] = merged
	s.pendImply = append(s.pendImply, net)
	s.pendSim = append(s.pendSim, net)
}

// ClearPI removes all primary input assignments (keeping requirements),
// restricted to the levels selected by mask.
//
// Removing assignments shrinks the closure, which the monotone incremental
// engine cannot express; the next Imply therefore falls back to one full
// from-scratch recomputation (Reset + re-assignment, or the Assign/Undo
// trail, are the cheap ways to retract assignments).
func (s *State) ClearPI(mask uint64) {
	for _, in := range s.c.Inputs() {
		old := s.PI[in]
		cleared := old.ClearLevels(mask)
		if cleared == old {
			continue
		}
		s.note(pPI, in, old)
		s.PI[in] = cleared
		s.pendSim = append(s.pendSim, in)
		s.needResync = true
	}
}

// PIValue returns the current assignment of a primary input.
func (s *State) PIValue(net circuit.NetID) logic.Word7 { return s.PI[net] }

// Imply updates the implication closure Val from Req and PI and returns the
// mask of bit levels on which a conflict was detected.  A conflict on a
// level means the requirements (plus the current input assignments) are
// unsatisfiable on that level.
//
// Only nets whose Req or PI changed since the previous Imply seed new
// propagation; unchanged regions of the circuit are not revisited.
//
//atpgvet:noalloc
func (s *State) Imply() uint64 {
	if s.FullSweep {
		return s.implyFull()
	}
	if s.needResync {
		return s.resync()
	}
	s.seedImply()
	s.runImplyRounds()
	// Like the full sweep, Imply reports only conflicts present in the
	// closure; conflicts recorded with MarkConflict before this call are
	// discarded, so callers that track externally detected dead levels must
	// keep their own mask.
	s.conflict = s.valConflict & s.active
	return s.ConflictMask()
}

// implyFull is the retained full-sweep implementation: it recomputes the
// closure from scratch with alternating whole-circuit forward and backward
// sweeps.  It is the oracle the event-driven path is validated against, and
// the recovery path after ClearPI.
func (s *State) implyFull() uint64 {
	order := s.c.TopoOrder()
	// Initialise the closure with the requirements and input assignments.
	for i := range s.Val {
		s.setValReplace(circuit.NetID(i), s.Req[i].SelectLevels(s.active))
	}
	for _, in := range s.c.Inputs() {
		s.mergeVal(in, s.PI[in].SelectLevels(s.active))
	}

	maxSweeps := s.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		// Forward sweep: gate outputs receive the evaluation of their fanin
		// values.
		for _, id := range order {
			g := s.c.Gate(id)
			if g.Kind == logic.Input {
				continue
			}
			if s.mergeVal(id, s.evalGate(g, s.Val)) {
				changed = true
			}
		}
		// Backward sweep: unique implications from required output values to
		// the fanin nets.
		for i := len(order) - 1; i >= 0; i-- {
			g := s.c.Gate(order[i])
			if g.Kind == logic.Input || len(g.Fanin) == 0 {
				continue
			}
			if s.backImply(g) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	conflict := uint64(0)
	for i := range s.Val {
		conflict |= s.Val[i].ConflictMask()
	}
	s.valConflict = conflict
	s.conflict = conflict & s.active
	return s.ConflictMask()
}

// resync recovers after ClearPI: one full-sweep recomputation, then the
// incremental bookkeeping (mirrors, event queues) is rebuilt to match.
func (s *State) resync() uint64 {
	conf := s.implyFull()
	clearQueue(s.fwdB, s.fwdQ, &s.fwdN)
	clearQueue(s.bwdB, s.bwdQ, &s.bwdN)
	s.pendImply = s.pendImply[:0]
	for _, n := range s.touched {
		req := s.Req[n].SelectLevels(s.active)
		if req != s.impReq[n] {
			s.note(pImpReq, n, s.impReq[n])
			s.impReq[n] = req
		}
		if s.c.IsInput(n) {
			pi := s.PI[n].SelectLevels(s.active)
			if pi != s.impPI[n] {
				s.note(pImpPI, n, s.impPI[n])
				s.impPI[n] = pi
			}
		}
	}
	s.constsSeeded = true
	s.needResync = false
	return conf
}

// setValReplace overwrites Val[net] (full-sweep initialisation only).
func (s *State) setValReplace(net circuit.NetID, w logic.Word7) {
	old := s.Val[net]
	if w == old {
		return
	}
	s.note(pVal, net, old)
	s.Val[net] = w
}

// mergeVal merges a pre-masked word into Val[net], accumulates conflicts,
// and (in incremental mode) schedules the affected neighbors: the fanout
// gates re-evaluate forward, the net's own gate and its fanout gates rerun
// their backward implications.  It reports whether Val[net] changed.
func (s *State) mergeVal(net circuit.NetID, w logic.Word7) bool {
	old := s.Val[net]
	merged := old.Merge(w)
	if merged == old {
		return false
	}
	s.note(pVal, net, old)
	s.Val[net] = merged
	s.valConflict |= merged.ConflictMask()
	if !s.FullSweep {
		s.pushBwd(net)
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushFwd(fo)
			s.pushBwd(fo)
		}
	}
	return true
}

// evalGate evaluates gate g over the given value slice.
func (s *State) evalGate(g *circuit.Gate, vals []logic.Word7) logic.Word7 {
	s.faninBuf = s.faninBuf[:0]
	for _, f := range g.Fanin {
		s.faninBuf = append(s.faninBuf, vals[f])
	}
	return logic.EvalGate7(g.Kind, s.faninBuf)
}

// ForwardSim updates Sim: a forward-only simulation of the current PI
// assignments, ignoring the requirements.  Sim tells the generator which
// values are actually produced by the inputs chosen so far, and therefore
// which requirements are justified.  Only the fanout cones of inputs whose
// assignment changed since the previous call are re-evaluated.
//
//atpgvet:noalloc
func (s *State) ForwardSim() {
	if s.FullSweep {
		s.forwardSimFull()
		return
	}
	s.runForwardSim()
}

// forwardSimFull is the retained from-scratch simulation (test oracle).
func (s *State) forwardSimFull() {
	for i := range s.Sim {
		s.setSim(circuit.NetID(i), logic.Word7{})
	}
	for _, in := range s.c.Inputs() {
		s.setSim(in, s.PI[in].SelectLevels(s.active))
	}
	for _, id := range s.c.TopoOrder() {
		g := s.c.Gate(id)
		if g.Kind == logic.Input {
			continue
		}
		s.setSim(id, s.evalGate(g, s.Sim))
	}
}

// setSim overwrites Sim[net] and (in incremental mode) schedules the fanout
// gates for re-evaluation.
func (s *State) setSim(net circuit.NetID, w logic.Word7) {
	old := s.Sim[net]
	if w == old {
		return
	}
	s.note(pSim, net, old)
	s.Sim[net] = w
	if !s.FullSweep {
		for _, fo := range s.c.Gate(net).Fanout {
			s.pushSim(fo)
		}
	}
}

// JustifiedMask returns the mask of active bit levels on which every
// requirement is covered by the forward simulation of the primary input
// assignments and no conflict has been recorded.  ForwardSim must have been
// called after the last assignment change.  Only nets carrying a
// requirement are inspected.
func (s *State) JustifiedMask() uint64 {
	mask := s.active &^ s.conflict
	for _, id := range s.reqNets {
		req := s.Req[id].SelectLevels(s.active)
		if (req == logic.Word7{}) {
			continue
		}
		mask &= s.Sim[id].CoversMask(req)
		if mask == 0 {
			return 0
		}
	}
	return mask
}

// Unjustified returns the nets whose requirement is not yet covered by the
// forward simulation at the given bit level, in topological order (nets
// closest to the primary inputs first).  ForwardSim must be up to date.
//
// The returned slice is a scratch buffer owned by the State: it is
// overwritten by the next Unjustified call and must not be retained across
// calls (or across goroutines sharing the State).
func (s *State) Unjustified(level int) []circuit.NetID {
	bit := uint64(1) << uint(level)
	out := s.unjustBuf[:0]
	// reqNets must stay in insertion order (the trail truncates it by
	// length on Undo), so only the filtered output is sorted.
	for _, id := range s.reqNets {
		req := s.Req[id]
		if req.Get(level) == logic.X7 {
			continue
		}
		if s.Sim[id].CoversMask(req)&bit == 0 {
			out = append(out, id)
		}
	}
	slices.SortFunc(out, func(a, b circuit.NetID) int {
		return s.c.OrderPos(a) - s.c.OrderPos(b)
	})
	s.unjustBuf = out
	return out
}

// SimValue returns the forward-simulation value of a net.
func (s *State) SimValue(net circuit.NetID) logic.Word7 { return s.Sim[net] }

// ImpliedValue returns the implication-closure value of a net.
func (s *State) ImpliedValue(net circuit.NetID) logic.Word7 { return s.Val[net] }

// Requirement returns the requirement word of a net.
func (s *State) Requirement(net circuit.NetID) logic.Word7 { return s.Req[net] }

// MarkConflict records an externally detected conflict (for example a
// backtrace dead end) on the given levels.
func (s *State) MarkConflict(mask uint64) { s.conflict |= mask & s.active }
