package implic

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

func TestForwardSimC17(t *testing.T) {
	c := bench.C17()
	st := NewState(c)
	st.Reset(logic.LevelsMask(4))
	// Level 0: 1=1 3=1 -> 10=0 ; 3=1 6=1 -> 11=0 ; 2=1 11=0 -> 16=1 ;
	// 11=0 7=1 -> 19=1 ; 10=0 16=1 -> 22=1 ; 16=1 19=1 -> 23=0.
	assign := map[string]logic.Value7{
		"1": logic.Stable1, "2": logic.Stable1, "3": logic.Stable1, "6": logic.Stable1, "7": logic.Stable1,
	}
	for name, v := range assign {
		st.AssignPI(c.NetByName(name), v, logic.BitMask(0))
	}
	st.ForwardSim()
	want := map[string]logic.Value7{
		"10": logic.Stable0, "11": logic.Stable0, "16": logic.Stable1,
		"19": logic.Stable1, "22": logic.Stable1, "23": logic.Stable0,
	}
	for name, v := range want {
		if got := st.SimValue(c.NetByName(name)).Get(0); got != v {
			t.Errorf("sim %s = %v, want %v", name, got, v)
		}
	}
	// Unassigned levels stay X.
	if got := st.SimValue(c.NetByName("22")).Get(1); got != logic.X7 {
		t.Errorf("level 1 should be X, got %v", got)
	}
}

// TestForwardSimMatchesBooleanSim simulates random stable input vectors
// through random circuits and checks the seven-valued forward simulation
// against direct boolean evaluation.
func TestForwardSimMatchesBooleanSim(t *testing.T) {
	profiles := []bench.Profile{
		{Name: "rnd1", Inputs: 8, Outputs: 4, Gates: 60, Depth: 8, Seed: 11, InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.2},
		{Name: "rnd2", Inputs: 12, Outputs: 6, Gates: 120, Depth: 12, Seed: 12, InputFaninBias: 0.5, WideFaninFraction: 0.1, InverterFraction: 0.3},
	}
	rng := rand.New(rand.NewSource(99))
	for _, p := range profiles {
		c := bench.MustSynthesize(p)
		st := NewState(c)
		st.Reset(logic.LevelsMask(logic.WordWidth))
		// One random stable vector per bit level.
		vectors := make([]map[circuit.NetID]bool, logic.WordWidth)
		for lvl := 0; lvl < logic.WordWidth; lvl++ {
			vectors[lvl] = make(map[circuit.NetID]bool)
			for _, in := range c.Inputs() {
				bit := rng.Intn(2) == 1
				vectors[lvl][in] = bit
				v := logic.Stable0
				if bit {
					v = logic.Stable1
				}
				st.AssignPI(in, v, logic.BitMask(lvl))
			}
		}
		st.ForwardSim()
		// Compare against scalar boolean evaluation per level.
		values := make(map[circuit.NetID]bool)
		for lvl := 0; lvl < logic.WordWidth; lvl++ {
			for _, id := range c.TopoOrder() {
				g := c.Gate(id)
				if g.Kind == logic.Input {
					values[id] = vectors[lvl][id]
					continue
				}
				in := make([]logic.Value3, len(g.Fanin))
				for i, f := range g.Fanin {
					in[i] = logic.Value3FromBool(values[f])
				}
				values[id] = logic.Eval3(g.Kind, in...) == logic.One3
			}
			for _, id := range c.TopoOrder() {
				got := st.SimValue(id).Get(lvl)
				want := logic.Stable0
				if values[id] {
					want = logic.Stable1
				}
				if got != want {
					t.Fatalf("%s: net %s level %d: sim %v, want %v", p.Name, c.NetName(id), lvl, got, want)
				}
			}
		}
	}
}

func TestImplyForwardConflict(t *testing.T) {
	c := bench.C17()
	st := NewState(c)
	st.Reset(logic.LevelsMask(2))
	// Level 0: require gate 10 (NAND of 1,3) to be 0 while its inputs force
	// it to 1: 1=0 makes 10=1, so requiring 10=0 must conflict.
	st.AssignPI(c.NetByName("1"), logic.Stable0, logic.BitMask(0))
	st.AddRequirement(c.NetByName("10"), logic.Final0, logic.BitMask(0))
	// Level 1: consistent assignment, no conflict.
	st.AssignPI(c.NetByName("1"), logic.Stable1, logic.BitMask(1))
	st.AssignPI(c.NetByName("3"), logic.Stable1, logic.BitMask(1))
	st.AddRequirement(c.NetByName("10"), logic.Final0, logic.BitMask(1))
	conf := st.Imply()
	if !conf.Bit(0) {
		t.Error("level 0 should conflict")
	}
	if conf.Bit(1) {
		t.Error("level 1 should not conflict")
	}
}

func TestImplyBackwardUniqueImplications(t *testing.T) {
	c := bench.C17()
	st := NewState(c)
	st.Reset(logic.LevelsMask(1))
	// Requiring output 22 (NAND of 10,16) to be 0 forces both fanins to 1,
	// so additionally requiring 10 = 0 is contradictory: 10 = 0 forces
	// 22 = 1.  The engine must detect the conflict.
	st.AddRequirement(c.NetByName("22"), logic.Final0, logic.BitMask(0))
	st.AddRequirement(c.NetByName("10"), logic.Final0, logic.BitMask(0))
	st.Imply()
	if !st.ConflictMask().Bit(0) {
		t.Error("contradictory requirements on 22 and 10 should conflict")
	}

	st.Reset(logic.LevelsMask(1))
	// NAND output required 1 with one input already 1: the backward rule
	// only fires when all other inputs are 1, so requiring 22=0 (both inputs
	// 1) and then 16=1 is consistent; inputs 2,11 are not forced beyond what
	// is necessary.
	st.AddRequirement(c.NetByName("22"), logic.Final0, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(c.NetByName("16")).Get(0).Final(); got != logic.One3 {
		t.Errorf("16 should be implied to 1, got %v", got)
	}
	if got := st.ImpliedValue(c.NetByName("10")).Get(0).Final(); got != logic.One3 {
		t.Errorf("10 should be implied to 1, got %v", got)
	}
	// 10 = NAND(1,3) = 1 does not force its inputs individually.
	if got := st.ImpliedValue(c.NetByName("1")).Get(0); got != logic.X7 {
		t.Errorf("input 1 should stay unknown, got %v", got)
	}
	if !st.ConflictMask().IsZero() {
		t.Errorf("no conflict expected, got mask %v", st.ConflictMask())
	}
}

func TestImplyStableBackward(t *testing.T) {
	// Robust requirement: a stable 1 at an AND output implies stable 1 on
	// every input; a stable 0 with the other input known 1 implies a stable 0
	// on the remaining input.
	b := circuit.NewBuilder("and2")
	a := b.Input("a")
	bb := b.Input("b")
	z := b.Gate("z", logic.And, a, bb)
	b.Output(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(c)
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(z, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(a).Get(0); got != logic.Stable1 {
		t.Errorf("input a should be implied Stable1, got %v", got)
	}
	if got := st.ImpliedValue(bb).Get(0); got != logic.Stable1 {
		t.Errorf("input b should be implied Stable1, got %v", got)
	}

	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(z, logic.Stable0, logic.BitMask(0))
	st.AssignPI(a, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(bb).Get(0); got != logic.Stable0 {
		t.Errorf("input b should be implied Stable0, got %v", got)
	}

	// A falling output with the other input stable 1 implies a falling input.
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(z, logic.Fall7, logic.BitMask(0))
	st.AssignPI(a, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(bb).Get(0); got != logic.Fall7 {
		t.Errorf("input b should be implied falling, got %v", got)
	}

	// A rising output with one input stable implies the transition on the
	// other input.
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(z, logic.Rise7, logic.BitMask(0))
	st.AssignPI(a, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(bb).Get(0); got != logic.Rise7 {
		t.Errorf("input b should be implied rising, got %v", got)
	}
}

func TestImplyOrNorXorBackward(t *testing.T) {
	b := circuit.NewBuilder("mix")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	o := b.Gate("o", logic.Or, a, bb)
	n := b.Gate("n", logic.Nor, a, cc)
	x := b.Gate("x", logic.Xor, bb, cc)
	b.Output(o)
	b.Output(n)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(c)

	// OR output 0 forces both inputs to 0.
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(o, logic.Final0, logic.BitMask(0))
	st.Imply()
	if st.ImpliedValue(a).Get(0).Final() != logic.Zero3 || st.ImpliedValue(bb).Get(0).Final() != logic.Zero3 {
		t.Error("OR output 0 should force both inputs to 0")
	}

	// NOR output 1 forces both inputs to 0 (and stability follows).
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(n, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if st.ImpliedValue(a).Get(0) != logic.Stable0 || st.ImpliedValue(cc).Get(0) != logic.Stable0 {
		t.Errorf("NOR output stable 1 should force stable 0 inputs, got %v %v",
			st.ImpliedValue(a).Get(0), st.ImpliedValue(cc).Get(0))
	}

	// XOR output with one known input forces the other.
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(x, logic.Final1, logic.BitMask(0))
	st.AssignPI(bb, logic.Stable0, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(cc).Get(0).Final(); got != logic.One3 {
		t.Errorf("XOR backward implication failed: c = %v, want 1", got)
	}
	st.Reset(logic.LevelsMask(1))
	st.AddRequirement(x, logic.Final0, logic.BitMask(0))
	st.AssignPI(bb, logic.Stable1, logic.BitMask(0))
	st.Imply()
	if got := st.ImpliedValue(cc).Get(0).Final(); got != logic.One3 {
		t.Errorf("XOR backward implication failed: c = %v, want 1", got)
	}
}

// TestImplyConflictImpliesUnsatisfiable is the soundness property of the
// implication engine: whenever Imply reports a conflict for a requirement
// set on a small circuit, exhaustive enumeration of all input vectors
// confirms that no assignment satisfies the requirements.  (Only the final
// values of the requirements are checked, which is exactly what nonrobust
// requirements express.)
func TestImplyConflictImpliesUnsatisfiable(t *testing.T) {
	p := bench.Profile{Name: "sound", Inputs: 6, Outputs: 3, Gates: 25, Depth: 6, Seed: 21,
		InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.2}
	c := bench.MustSynthesize(p)
	rng := rand.New(rand.NewSource(5))
	st := NewState(c)
	checked := 0
	for iter := 0; iter < 300; iter++ {
		st.Reset(logic.LevelsMask(1))
		// Random nonrobust requirements on a few nets.
		reqs := make(map[circuit.NetID]logic.Value3)
		numReq := 1 + rng.Intn(4)
		for i := 0; i < numReq; i++ {
			net := circuit.NetID(rng.Intn(c.NumNets()))
			v := logic.Zero3
			if rng.Intn(2) == 1 {
				v = logic.One3
			}
			reqs[net] = v // later requirements overwrite; fine for the test
		}
		for net, v := range reqs {
			st.AddRequirement(net, logic.Value7From3(v), logic.BitMask(0))
		}
		if !st.Imply().Bit(0) {
			continue // no conflict claimed, nothing to verify
		}
		checked++
		// Exhaustive check: some input vector must violate every requirement
		// set... more precisely, NO input vector may satisfy all of them.
		inputs := c.Inputs()
		values := make(map[circuit.NetID]bool)
		for vec := 0; vec < 1<<len(inputs); vec++ {
			for i, in := range inputs {
				values[in] = (vec>>i)&1 == 1
			}
			for _, id := range c.TopoOrder() {
				g := c.Gate(id)
				if g.Kind == logic.Input {
					continue
				}
				in := make([]logic.Value3, len(g.Fanin))
				for i, f := range g.Fanin {
					in[i] = logic.Value3FromBool(values[f])
				}
				values[id] = logic.Eval3(g.Kind, in...) == logic.One3
			}
			ok := true
			for net, v := range reqs {
				if logic.Value3FromBool(values[net]) != v {
					ok = false
					break
				}
			}
			if ok {
				t.Fatalf("Imply claimed a conflict but vector %06b satisfies all requirements %v", vec, reqs)
			}
		}
	}
	if checked == 0 {
		t.Log("no conflicting requirement sets were generated; soundness not exercised this run")
	}
}

func TestJustifiedMaskAndUnjustified(t *testing.T) {
	c := bench.C17()
	st := NewState(c)
	st.Reset(logic.LevelsMask(2))
	// Level 0 requirement: net 16 = 1.  Level 1 requirement: net 16 = 0.
	n16 := c.NetByName("16")
	st.AddRequirement(n16, logic.Final1, logic.BitMask(0))
	st.AddRequirement(n16, logic.Final0, logic.BitMask(1))
	st.Imply()
	st.ForwardSim()
	if !st.JustifiedMask().IsZero() {
		t.Error("nothing should be justified before any input assignment")
	}
	unj := st.Unjustified(0)
	if len(unj) != 1 || unj[0] != n16 {
		t.Errorf("Unjustified(0) = %v, want [16]", unj)
	}
	// Setting input 2 = 0 makes 16 = NAND(2,11) = 1: level 0 justified.
	st.AssignPI(c.NetByName("2"), logic.Stable0, logic.BitMask(0))
	st.Imply()
	st.ForwardSim()
	if !st.JustifiedMask().Bit(0) {
		t.Error("level 0 should be justified after assigning 2=0")
	}
	if st.JustifiedMask().Bit(1) {
		t.Error("level 1 should not be justified")
	}
	// Level 1: 16=0 needs 2=1 and 11=1, 11=1 needs 3=0 or 6=0.
	st.AssignPI(c.NetByName("2"), logic.Stable1, logic.BitMask(1))
	st.AssignPI(c.NetByName("3"), logic.Stable0, logic.BitMask(1))
	st.Imply()
	st.ForwardSim()
	if !st.JustifiedMask().Bit(1) {
		t.Error("level 1 should be justified after assigning 2=1, 3=0")
	}
	if len(st.Unjustified(1)) != 0 {
		t.Errorf("Unjustified(1) = %v, want empty", st.Unjustified(1))
	}
}

func TestSensitizedFaultRedundantByImplication(t *testing.T) {
	// In the RedundantExample circuit, g2 = AND(NOT a, g1) with g1 = AND(a,b):
	// any path through g2 requires both a=1 (to propagate through g1 or to
	// set the side input) and NOT a = 1, which the implication engine must
	// recognise as a conflict without any decisions.
	c := bench.RedundantExample()
	a := c.NetByName("a")
	g1 := c.NetByName("g1")
	g2 := c.NetByName("g2")
	z := c.NetByName("z")
	f := paths.Fault{Path: paths.Path{Nets: []circuit.NetID{a, g1, g2, z}}, Transition: paths.Rising}
	cond, err := sensitize.Sensitize(c, f, sensitize.Nonrobust)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(c)
	st.Reset(logic.LevelsMask(1))
	for _, asg := range cond.Assignments {
		st.AddRequirement(asg.Net, asg.Value, logic.BitMask(0))
	}
	if !st.Imply().Bit(0) {
		t.Error("the implication engine should prove this fault redundant")
	}
}

func TestStateResetAndMarkConflict(t *testing.T) {
	c := bench.C17()
	st := NewState(c)
	st.Reset(logic.LevelsMask(8))
	if st.Active() != logic.LevelsMask(8) {
		t.Error("active mask not stored")
	}
	st.MarkConflict(logic.BitMask(2))
	if st.ConflictMask() != logic.BitMask(2) {
		t.Error("MarkConflict not visible")
	}
	st.AssignPI(c.NetByName("1"), logic.Stable1, logic.LevelsMask(logic.WordWidth))
	if got := st.PIValue(c.NetByName("1")); got.Get(7) != logic.Stable1 || got.Get(8) != logic.X7 {
		t.Error("PI assignment should be clipped to the active mask")
	}
	// Assigning a non-input net is ignored.
	st.AssignPI(c.NetByName("22"), logic.Stable1, logic.BitMask(0))
	if st.PIValue(c.NetByName("22")) != (logic.Word7V{}) {
		t.Error("assigning a gate output as PI should be ignored")
	}
	st.ClearPI(logic.LevelsMask(logic.WordWidth))
	if st.PIValue(c.NetByName("1")) != (logic.Word7V{}) {
		t.Error("ClearPI should clear assignments")
	}
	st.Reset(logic.LevelsMask(1))
	if !st.ConflictMask().IsZero() {
		t.Error("Reset should clear conflicts")
	}
	if st.Circuit() != c {
		t.Error("Circuit accessor broken")
	}
}

func BenchmarkImplyC880Class(b *testing.B) {
	p, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(p)
	st := NewState(c)
	fs := paths.SampleFaults(c, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(logic.LevelsMask(logic.WordWidth))
		for lvl, f := range fs {
			cond, err := sensitize.Sensitize(c, f, sensitize.Robust)
			if err != nil {
				b.Fatal(err)
			}
			for _, asg := range cond.Assignments {
				st.AddRequirement(asg.Net, asg.Value, logic.BitMask(lvl))
			}
		}
		st.Imply()
		st.ForwardSim()
	}
}
