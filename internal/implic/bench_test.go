package implic

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// The micro-benchmarks below measure the generator's hot loop: one framed
// input decision implied (and simulated) incrementally, then undone.  Run
// them with -benchmem: the steady state must not allocate (the CI bench job
// gates allocs/op at zero).  The *FullSweep variants measure the retained
// from-scratch oracle on the identical workload, which is the speed-up the
// event-driven engine is buying.

// benchImplyState builds a c880-class state loaded with the sensitization
// requirements of 64 faults (one per bit level) and an implied base closure,
// mirroring the generator's state when it starts making decisions.
func benchImplyState(b *testing.B, fullSweep bool) (*State, []circuit.NetID) {
	b.Helper()
	p, ok := bench.ProfileByName("c880")
	if !ok {
		b.Fatal("unknown profile c880")
	}
	c := bench.MustSynthesize(p)
	st := NewState(c)
	st.FullSweep = fullSweep
	st.MaxSweeps = 3 // the generator's default bound
	st.Reset(logic.AllLevels)
	for lvl, f := range paths.SampleFaults(c, 64, 1) {
		cond, err := sensitize.Sensitize(c, f, sensitize.Robust)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range cond.Assignments {
			st.AddRequirement(a.Net, a.Value, uint64(1)<<uint(lvl))
		}
	}
	st.Imply()
	st.ForwardSim()
	return st, c.Inputs()
}

// decisionStep is one framed decision: assign an input on all levels, imply
// (and optionally simulate), undo.
func decisionStep(st *State, inputs []circuit.NetID, i int, sim bool) {
	in := inputs[i%len(inputs)]
	v := logic.Stable1
	if i%2 == 1 {
		v = logic.Stable0
	}
	st.Assign()
	st.AssignPI(in, v, logic.AllLevels)
	st.Imply()
	if sim {
		st.ForwardSim()
	}
	st.Undo()
}

// BenchmarkImply measures the steady-state incremental implication closure:
// one framed input decision implied and undone per iteration.  (The few
// reported B/op are the amortized growth of the simulation-pending list,
// which this benchmark never drains because it never calls ForwardSim; the
// generator's real loop always does.  allocs/op stays zero.)
func BenchmarkImply(b *testing.B) {
	st, inputs := benchImplyState(b, false)
	for i := 0; i < 256; i++ {
		decisionStep(st, inputs, i, false) // warm up trail/queue capacities
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decisionStep(st, inputs, i, false)
	}
}

// BenchmarkImplyFullSweep is the identical workload on the full-sweep
// oracle: every Imply recomputes the closure from scratch.
func BenchmarkImplyFullSweep(b *testing.B) {
	st, inputs := benchImplyState(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := inputs[i%len(inputs)]
		st.AssignPI(in, logic.Stable1, logic.AllLevels)
		st.Imply()
	}
}

// BenchmarkForwardSim measures the steady-state incremental forward
// simulation on top of the implied decision (the generator always implies a
// decision before simulating it).
func BenchmarkForwardSim(b *testing.B) {
	st, inputs := benchImplyState(b, false)
	for i := 0; i < 256; i++ {
		decisionStep(st, inputs, i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decisionStep(st, inputs, i, true)
	}
}

// BenchmarkForwardSimFullSweep is the identical workload with from-scratch
// whole-circuit simulation.
func BenchmarkForwardSimFullSweep(b *testing.B) {
	st, inputs := benchImplyState(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := inputs[i%len(inputs)]
		st.AssignPI(in, logic.Stable1, logic.AllLevels)
		st.Imply()
		st.ForwardSim()
	}
}
