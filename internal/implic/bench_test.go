package implic

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// The micro-benchmarks below measure the generator's hot loop: one framed
// input decision implied (and simulated) incrementally, then undone.  Run
// them with -benchmem: the steady state must not allocate (the CI bench job
// gates allocs/op at zero).  The *FullSweep variants measure the retained
// from-scratch oracle on the identical workload, which is the speed-up the
// event-driven engine is buying.  Each benchmark runs at every supported
// word width so CI tracks the per-word cost of the widened planes.

// benchWidths are the word widths the micro-benchmarks parameterize over.
var benchWidths = []int{64, 128, 256, 512}

// benchImplyState builds a c880-class state loaded with the sensitization
// requirements of `width` faults (one per bit level) and an implied base
// closure, mirroring the generator's state when it starts making decisions.
func benchImplyState(b *testing.B, fullSweep bool, width int) (*State, []circuit.NetID) {
	b.Helper()
	p, ok := bench.ProfileByName("c880")
	if !ok {
		b.Fatal("unknown profile c880")
	}
	c := bench.MustSynthesize(p)
	st := NewStateWidth(c, width)
	st.FullSweep = fullSweep
	st.MaxSweeps = 3 // the generator's default bound
	active := logic.LevelsMask(width)
	st.Reset(active)
	faults := paths.SampleFaults(c, width, 1)
	for lvl := 0; lvl < width; lvl++ {
		f := faults[lvl%len(faults)]
		cond, err := sensitize.Sensitize(c, f, sensitize.Robust)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range cond.Assignments {
			st.AddRequirement(a.Net, a.Value, logic.BitMask(lvl))
		}
	}
	st.Imply()
	st.ForwardSim()
	return st, c.Inputs()
}

// decisionStep is one framed decision: assign an input on all levels, imply
// (and optionally simulate), undo.
func decisionStep(st *State, inputs []circuit.NetID, i int, sim bool) {
	in := inputs[i%len(inputs)]
	v := logic.Stable1
	if i%2 == 1 {
		v = logic.Stable0
	}
	st.Assign()
	st.AssignPI(in, v, st.Active())
	st.Imply()
	if sim {
		st.ForwardSim()
	}
	st.Undo()
}

// BenchmarkImply measures the steady-state incremental implication closure:
// one framed input decision implied and undone per iteration, at every word
// width.  (The few reported B/op are the amortized growth of the
// simulation-pending list, which this benchmark never drains because it
// never calls ForwardSim; the generator's real loop always does.  allocs/op
// stays zero.)
func BenchmarkImply(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			st, inputs := benchImplyState(b, false, width)
			for i := 0; i < 256; i++ {
				decisionStep(st, inputs, i, false) // warm up trail/queue capacities
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decisionStep(st, inputs, i, false)
			}
		})
	}
}

// BenchmarkImplyFullSweep is the identical workload on the full-sweep
// oracle: every Imply recomputes the closure from scratch.
func BenchmarkImplyFullSweep(b *testing.B) {
	st, inputs := benchImplyState(b, true, logic.WordWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := inputs[i%len(inputs)]
		st.AssignPI(in, logic.Stable1, st.Active())
		st.Imply()
	}
}

// BenchmarkForwardSim measures the steady-state incremental forward
// simulation on top of the implied decision (the generator always implies a
// decision before simulating it), at every word width.
func BenchmarkForwardSim(b *testing.B) {
	for _, width := range benchWidths {
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			st, inputs := benchImplyState(b, false, width)
			for i := 0; i < 256; i++ {
				decisionStep(st, inputs, i, true)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decisionStep(st, inputs, i, true)
			}
		})
	}
}

// BenchmarkForwardSimFullSweep is the identical workload with from-scratch
// whole-circuit simulation.
func BenchmarkForwardSimFullSweep(b *testing.B) {
	st, inputs := benchImplyState(b, true, logic.WordWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := inputs[i%len(inputs)]
		st.AssignPI(in, logic.Stable1, st.Active())
		st.Imply()
		st.ForwardSim()
	}
}
