package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// This file implements the assignment trail: Assign opens a frame, every
// subsequent plane write records the overwritten word once per frame, and
// Undo restores the exact pre-frame state.  The generator's backtracking
// undoes decisions instead of resetting and re-implying from scratch.

// Trailed plane identifiers.
const (
	pReq uint8 = iota
	pPI
	pVal
	pSim
	pImpReq
	pImpPI
	pSimPI
	numPlanes
)

// frame marks a trail position plus the scalar state restored by Undo.
type frame struct {
	seq             int64
	trailLen        int
	reqNetsLen      int
	conflict        uint64
	valConflict     uint64
	constsSeeded    bool
	simConstsSeeded bool
}

// trailEntry records the first overwrite of one plane word within a frame.
type trailEntry struct {
	net   circuit.NetID
	plane uint8
	old   logic.Word7
}

// touch marks a net dirty so Reset clears it.
func (s *State) touch(net circuit.NetID) {
	if !s.touchedMark[net] {
		s.touchedMark[net] = true
		s.touched = append(s.touched, net)
	}
}

// note is the write barrier called before every plane write: it marks the
// net dirty and, when a trail frame is open, records the overwritten word
// (only the first write per plane, net and frame is recorded — that is the
// value Undo restores).
func (s *State) note(plane uint8, net circuit.NetID, old logic.Word7) {
	s.touch(net)
	if n := len(s.frames); n > 0 {
		seq := s.frames[n-1].seq
		if s.stamps[plane][net] != seq {
			s.stamps[plane][net] = seq
			s.trail = append(s.trail, trailEntry{net: net, plane: plane, old: old})
		}
	}
}

// Assign opens a new trail frame.  Every plane change made afterwards —
// direct assignments as well as everything Imply and ForwardSim derive from
// them — is undone by the matching Undo.  Frames nest; the generator opens
// one per decision.
func (s *State) Assign() {
	s.frameSeq++
	s.frames = append(s.frames, frame{
		seq:             s.frameSeq,
		trailLen:        len(s.trail),
		reqNetsLen:      len(s.reqNets),
		conflict:        s.conflict,
		valConflict:     s.valConflict,
		constsSeeded:    s.constsSeeded,
		simConstsSeeded: s.simConstsSeeded,
	})
}

// Depth returns the number of open trail frames.
func (s *State) Depth() int { return len(s.frames) }

// Undo restores the state at the matching Assign: all plane words, the
// conflict masks and the requirement bookkeeping.  Nets whose restored
// Req/PI may disagree with what the closure or the simulation absorbed are
// re-queued, so the next Imply/ForwardSim reconciles them.  Undo without an
// open frame is a no-op.
func (s *State) Undo() {
	n := len(s.frames)
	if n == 0 {
		return
	}
	f := s.frames[n-1]
	for i := len(s.trail) - 1; i >= f.trailLen; i-- {
		e := s.trail[i]
		switch e.plane {
		case pReq:
			s.Req[e.net] = e.old
			s.pendImply = append(s.pendImply, e.net)
		case pPI:
			s.PI[e.net] = e.old
			s.pendImply = append(s.pendImply, e.net)
			s.pendSim = append(s.pendSim, e.net)
		case pVal:
			s.Val[e.net] = e.old
		case pSim:
			s.Sim[e.net] = e.old
		case pImpReq:
			s.impReq[e.net] = e.old
			s.pendImply = append(s.pendImply, e.net)
		case pImpPI:
			s.impPI[e.net] = e.old
			s.pendImply = append(s.pendImply, e.net)
		case pSimPI:
			s.simPI[e.net] = e.old
			s.pendSim = append(s.pendSim, e.net)
		}
	}
	s.trail = s.trail[:f.trailLen]
	s.reqNets = s.reqNets[:f.reqNetsLen]
	s.conflict = f.conflict
	s.valConflict = f.valConflict
	s.constsSeeded = f.constsSeeded
	s.simConstsSeeded = f.simConstsSeeded
	s.frames = s.frames[:n-1]
}
