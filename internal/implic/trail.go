package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// This file implements the assignment trail: Assign opens a frame, every
// subsequent plane write records the overwritten window once per frame, and
// Undo restores the exact pre-frame state.  The generator's backtracking
// undoes decisions instead of resetting and re-implying from scratch.

// Trailed plane identifiers.
const (
	pReq uint8 = iota
	pPI
	pVal
	pSim
	pImpReq
	pImpPI
	pSimPI
	numPlanes
)

// frame marks a trail position plus the scalar state restored by Undo.
type frame struct {
	seq             int64
	trailLen        int
	trailWLen       int
	reqNetsWLen     [logic.MaxK]int32
	conflict        logic.Mask
	valConflict     logic.Mask
	constsSeeded    bool
	simConstsSeeded bool
}

// trailEntry records the first overwrite of one plane window within a frame.
// The saved words live in the parallel trailW buffer: 4*ka words per entry,
// the four bit planes interleaved per word (Zero, One, Stable, Instable).
// ka is constant between Resets and Reset clears the trail, so entry sizes
// never mix within one trail.
type trailEntry struct {
	net   circuit.NetID
	plane uint8
}

func (s *State) planeByID(plane uint8) *planes7 {
	switch plane {
	case pReq:
		return &s.req
	case pPI:
		return &s.pi
	case pVal:
		return &s.val
	case pSim:
		return &s.sim
	case pImpReq:
		return &s.impReq
	case pImpPI:
		return &s.impPI
	default:
		return &s.simPI
	}
}

// touch marks a net dirty so Reset clears it.
func (s *State) touch(net circuit.NetID) {
	if !s.touchedMark[net] {
		s.touchedMark[net] = true
		s.touched = append(s.touched, net)
	}
}

// note is the write barrier called immediately before every plane write: it
// marks the net dirty and, when a trail frame is open, records the current
// window (only the first write per plane, net and frame is recorded — that
// is the value Undo restores).
func (s *State) note(plane uint8, net circuit.NetID) {
	s.touch(net)
	n := len(s.frames)
	if n == 0 {
		return
	}
	seq := s.frames[n-1].seq
	if s.stamps[plane][net] == seq {
		return
	}
	s.stamps[plane][net] = seq
	s.trail = append(s.trail, trailEntry{net: net, plane: plane})
	p := s.planeByID(plane)
	ka, off := s.ka, s.off(net)
	for w := 0; w < ka; w++ {
		o := off + w
		s.trailW = append(s.trailW, p.zero[o], p.one[o], p.stable[o], p.instable[o])
	}
}

// Assign opens a new trail frame.  Every plane change made afterwards —
// direct assignments as well as everything Imply and ForwardSim derive from
// them — is undone by the matching Undo.  Frames nest; the generator opens
// one per decision.
func (s *State) Assign() {
	s.frameSeq++
	f := frame{
		seq:             s.frameSeq,
		trailLen:        len(s.trail),
		trailWLen:       len(s.trailW),
		conflict:        s.conflict,
		valConflict:     s.valConflict,
		constsSeeded:    s.constsSeeded,
		simConstsSeeded: s.simConstsSeeded,
	}
	for w := 0; w < s.ka; w++ {
		f.reqNetsWLen[w] = int32(len(s.reqNetsW[w]))
	}
	s.frames = append(s.frames, f)
}

// Depth returns the number of open trail frames.
func (s *State) Depth() int { return len(s.frames) }

// Undo restores the state at the matching Assign: all plane windows, the
// conflict masks and the requirement bookkeeping.  Nets whose restored
// Req/PI may disagree with what the closure or the simulation absorbed are
// re-queued, so the next Imply/ForwardSim reconciles them.  Undo without an
// open frame is a no-op.
//
//atpgvet:noalloc
func (s *State) Undo() {
	n := len(s.frames)
	if n == 0 {
		return
	}
	f := s.frames[n-1]
	ka := s.ka
	for i := len(s.trail) - 1; i >= f.trailLen; i-- {
		e := s.trail[i]
		p := s.planeByID(e.plane)
		wbase := len(s.trailW) - 4*ka
		off := s.off(e.net)
		for w := 0; w < ka; w++ {
			b := wbase + 4*w
			o := off + w
			p.zero[o] = s.trailW[b]
			p.one[o] = s.trailW[b+1]
			p.stable[o] = s.trailW[b+2]
			p.instable[o] = s.trailW[b+3]
		}
		s.trailW = s.trailW[:wbase]
		switch e.plane {
		case pReq, pImpReq, pImpPI:
			s.pendImply = append(s.pendImply, e.net)
		case pPI:
			s.pendImply = append(s.pendImply, e.net)
			s.pendSim = append(s.pendSim, e.net)
		case pSimPI:
			s.pendSim = append(s.pendSim, e.net)
		}
	}
	s.trail = s.trail[:f.trailLen]
	s.trailW = s.trailW[:f.trailWLen]
	for w := 0; w < ka; w++ {
		s.reqNetsW[w] = s.reqNetsW[w][:f.reqNetsWLen[w]]
	}
	s.conflict = f.conflict
	s.valConflict = f.valConflict
	s.constsSeeded = f.constsSeeded
	s.simConstsSeeded = f.simConstsSeeded
	s.frames = s.frames[:n-1]
}
