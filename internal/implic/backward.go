package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// backImply applies the unique backward implications of gate g: values that
// the fanin nets must take given the current value of the gate output (and
// of the other fanins).  It merges the derived requirements into Val and
// reports whether anything changed.
//
// Only *necessary* consequences are derived, so a conflict produced by the
// implication closure proves the requirements unsatisfiable (this is what
// makes the "conflict without optional assignments => redundant" conclusion
// of the paper sound).
//
// Output inversions (NAND/NOR/XNOR) are folded by reading the output planes
// swapped rather than materialising a complemented copy — complementing a
// seven-valued word swaps only the final-value planes, so stability
// information dualises correctly.
func (s *State) backImply(g *circuit.Gate) bool {
	switch s.ka {
	case 1:
		return s.backImply1(g)
	case 2:
		return s.backImply2(g)
	}
	switch g.Kind {
	case logic.Buf:
		ka, off := s.ka, s.off(g.ID)
		req := &s.mergeReg
		for w := 0; w < ka; w++ {
			o, a := off+w, s.active[w]
			req.Zero[w] = s.val.zero[o] & a
			req.One[w] = s.val.one[o] & a
			req.Stable[w] = s.val.stable[o] & a
			req.Instable[w] = s.val.instable[o] & a
		}
		return s.mergeVal(g.Fanin[0], req)
	case logic.Not:
		ka, off := s.ka, s.off(g.ID)
		req := &s.mergeReg
		for w := 0; w < ka; w++ {
			o, a := off+w, s.active[w]
			req.Zero[w] = s.val.one[o] & a
			req.One[w] = s.val.zero[o] & a
			req.Stable[w] = s.val.stable[o] & a
			req.Instable[w] = s.val.instable[o] & a
		}
		return s.mergeVal(g.Fanin[0], req)
	case logic.And:
		return s.backImplyAnd(g.ID, g.Fanin, false, false)
	case logic.Nand:
		return s.backImplyAnd(g.ID, g.Fanin, true, false)
	case logic.Or:
		return s.backImplyAnd(g.ID, g.Fanin, true, true)
	case logic.Nor:
		return s.backImplyAnd(g.ID, g.Fanin, false, true)
	case logic.Xor:
		return s.backImplyXor(g.ID, g.Fanin, false)
	case logic.Xnor:
		return s.backImplyXor(g.ID, g.Fanin, true)
	}
	return false
}

// backImplyAnd derives the backward implications of an AND gate.  invert
// folds an output inversion (NAND, and OR/NOR via the dual) by swapping the
// output's final-value planes on the way in; dual applies the rules in the
// OR dual, complementing the fanin values on the way in and the derived
// requirements on the way out (the final-value planes of the requirement are
// swapped at write time).  The per-word working set lives in the state's
// scratch registers so the hot loops touch exactly ka words; words >= ka of
// the scratch are stale and never read.
func (s *State) backImplyAnd(out circuit.NetID, fanin []circuit.NetID, invert, dual bool) bool {
	ka, ooff := s.ka, s.off(out)
	f1, f0, st, inst := &s.bF1, &s.bF0, &s.bSt, &s.bInst
	any1, any0, anyInst := false, false, false
	for w := 0; w < ka; w++ {
		o := ooff + w
		z, on := s.val.zero[o], s.val.one[o]
		if invert {
			z, on = on, z
		}
		f1[w] = on &^ z
		f0[w] = z &^ on
		st[w] = s.val.stable[o]
		inst[w] = s.val.instable[o]
		any1 = any1 || f1[w] != 0
		any0 = any0 || f0[w] != 0
		anyInst = anyInst || inst[w] != 0
	}

	changed := false
	req := &s.mergeReg

	// Rule family 1: the output requires the non-controlling value (1).
	// Every input must then be 1; if the output is stable every input is
	// stable; if the output carries a transition and all other inputs are
	// stable, the remaining input must carry the transition.
	if any1 {
		for i, net := range fanin {
			others := &s.bOthers
			if anyInst {
				for w := 0; w < ka; w++ {
					others[w] = ^uint64(0)
				}
				for j, other := range fanin {
					if j == i {
						continue
					}
					off := s.off(other)
					for w := 0; w < ka; w++ {
						others[w] &= s.val.stable[off+w]
					}
				}
			}
			for w := 0; w < ka; w++ {
				ri := uint64(0)
				if anyInst {
					ri = f1[w] & inst[w] & others[w]
				}
				on := f1[w] | ri
				z := uint64(0)
				if dual {
					z, on = on, z
				}
				a := s.active[w]
				req.Zero[w] = z & a
				req.One[w] = on & a
				req.Stable[w] = f1[w] & st[w] & a
				req.Instable[w] = ri & a
			}
			if s.mergeVal(net, req) {
				changed = true
			}
		}
	}

	// Rule family 0: the output requires the controlling value (0).  If all
	// other inputs are known to be 1, the remaining input must be 0; it must
	// additionally be stable (resp. falling) if the output is required
	// stable (resp. carries a transition).
	if any0 {
		// Under the dual, "the other input is 1" reads the fanin's
		// complemented final value, i.e. its Zero plane.
		ones := s.val.one
		if dual {
			ones = s.val.zero
		}
		for i, net := range fanin {
			others := &s.bOthers
			for w := 0; w < ka; w++ {
				others[w] = ^uint64(0)
			}
			for j, other := range fanin {
				if j == i {
					continue
				}
				off := s.off(other)
				for w := 0; w < ka; w++ {
					others[w] &= ones[off+w]
				}
			}
			anyForced := false
			for w := 0; w < ka; w++ {
				forced := f0[w] & others[w]
				z, on := forced, uint64(0)
				if dual {
					z, on = on, z
				}
				a := s.active[w]
				req.Zero[w] = z & a
				req.One[w] = on & a
				req.Stable[w] = forced & st[w] & a
				req.Instable[w] = forced & inst[w] & a
				anyForced = anyForced || forced != 0
			}
			if !anyForced {
				continue
			}
			if s.mergeVal(net, req) {
				changed = true
			}
		}
	}
	return changed
}

// backImply1 is the single-word (ka==1) specialisation of backImply: the
// active plane windows are single words, so the rules below run on scalar
// uint64s with no Mask or Word7V registers.  It serves both kcap==1 states
// and wide states running a one-word epoch (e.g. APTPG's narrowed active
// mask), which is why every plane access goes through s.off.  The algebra is
// word-for-word the w-loop bodies of the generic variants and must be kept in
// lockstep with them (the randomized equivalence suite runs both widths
// against the same oracle).
func (s *State) backImply1(g *circuit.Gate) bool {
	a := s.active[0]
	switch g.Kind {
	case logic.Buf:
		o := s.off(g.ID)
		return s.mergeVal1(g.Fanin[0],
			s.val.zero[o]&a, s.val.one[o]&a, s.val.stable[o]&a, s.val.instable[o]&a)
	case logic.Not:
		o := s.off(g.ID)
		return s.mergeVal1(g.Fanin[0],
			s.val.one[o]&a, s.val.zero[o]&a, s.val.stable[o]&a, s.val.instable[o]&a)
	case logic.And:
		return s.backImplyAnd1(g.ID, g.Fanin, false, false)
	case logic.Nand:
		return s.backImplyAnd1(g.ID, g.Fanin, true, false)
	case logic.Or:
		return s.backImplyAnd1(g.ID, g.Fanin, true, true)
	case logic.Nor:
		return s.backImplyAnd1(g.ID, g.Fanin, false, true)
	case logic.Xor:
		return s.backImplyXor1(g.ID, g.Fanin, false)
	case logic.Xnor:
		return s.backImplyXor1(g.ID, g.Fanin, true)
	}
	return false
}

// backImplyAnd1 is the single-word backImplyAnd.
func (s *State) backImplyAnd1(out circuit.NetID, fanin []circuit.NetID, invert, dual bool) bool {
	o := s.off(out)
	z, on := s.val.zero[o], s.val.one[o]
	if invert {
		z, on = on, z
	}
	f1 := on &^ z
	f0 := z &^ on
	st, inst := s.val.stable[o], s.val.instable[o]
	a := s.active[0]
	changed := false

	if f1 != 0 {
		for i, net := range fanin {
			rOne := f1
			rStable := f1 & st
			rInst := uint64(0)
			if inst != 0 {
				othersStable := ^uint64(0)
				for j, other := range fanin {
					if j == i {
						continue
					}
					othersStable &= s.val.stable[s.off(other)]
				}
				ri := f1 & inst & othersStable
				rInst = ri
				rOne |= ri
			}
			rz, ro := uint64(0), rOne
			if dual {
				rz, ro = ro, rz
			}
			if s.mergeVal1(net, rz&a, ro&a, rStable&a, rInst&a) {
				changed = true
			}
		}
	}

	if f0 != 0 {
		// Under the dual, "the other input is 1" reads the fanin's
		// complemented final value, i.e. its Zero plane.
		ones := s.val.one
		if dual {
			ones = s.val.zero
		}
		for i, net := range fanin {
			othersOne := ^uint64(0)
			for j, other := range fanin {
				if j == i {
					continue
				}
				othersOne &= ones[s.off(other)]
			}
			forced := f0 & othersOne
			if forced == 0 {
				continue
			}
			rz, ro := forced, uint64(0)
			if dual {
				rz, ro = ro, rz
			}
			if s.mergeVal1(net, rz&a, ro&a, forced&st&a, forced&inst&a) {
				changed = true
			}
		}
	}
	return changed
}

// backImplyXor1 is the single-word backImplyXor.
func (s *State) backImplyXor1(out circuit.NetID, fanin []circuit.NetID, invert bool) bool {
	o := s.off(out)
	z, on := s.val.zero[o], s.val.one[o]
	if invert {
		z, on = on, z
	}
	f1 := on &^ z
	f0 := z &^ on
	known := f0 | f1
	if known == 0 {
		return false
	}
	a := s.active[0]
	changed := false
	for i, net := range fanin {
		othersKnown := ^uint64(0)
		othersParity := uint64(0)
		for j, other := range fanin {
			if j == i {
				continue
			}
			oo := s.off(other)
			one := s.val.one[oo] &^ s.val.zero[oo]
			zero := s.val.zero[oo] &^ s.val.one[oo]
			othersKnown &= one | zero
			othersParity ^= one
		}
		mask := known & othersKnown
		if mask == 0 {
			continue
		}
		wantOne := (f1 &^ othersParity) | (f0 & othersParity)
		if s.mergeVal1(net, (mask&^wantOne)&a, (mask&wantOne)&a, 0, 0) {
			changed = true
		}
	}
	return changed
}

// backImply2 is the two-word (ka==2) specialisation of backImply, i.e. the
// L=128 hot path: the constant loop bound lets the compiler unroll the plane
// windows into registers, where the generic variants must run dynamically
// bounded loops over Mask-sized scratch.  Like backImply1 it must stay in
// algebraic lockstep with the generic rules.
func (s *State) backImply2(g *circuit.Gate) bool {
	a := [2]uint64{s.active[0], s.active[1]}
	switch g.Kind {
	case logic.Buf:
		o := s.off(g.ID)
		return s.mergeVal2(g.Fanin[0],
			[2]uint64{s.val.zero[o] & a[0], s.val.zero[o+1] & a[1]},
			[2]uint64{s.val.one[o] & a[0], s.val.one[o+1] & a[1]},
			[2]uint64{s.val.stable[o] & a[0], s.val.stable[o+1] & a[1]},
			[2]uint64{s.val.instable[o] & a[0], s.val.instable[o+1] & a[1]})
	case logic.Not:
		o := s.off(g.ID)
		return s.mergeVal2(g.Fanin[0],
			[2]uint64{s.val.one[o] & a[0], s.val.one[o+1] & a[1]},
			[2]uint64{s.val.zero[o] & a[0], s.val.zero[o+1] & a[1]},
			[2]uint64{s.val.stable[o] & a[0], s.val.stable[o+1] & a[1]},
			[2]uint64{s.val.instable[o] & a[0], s.val.instable[o+1] & a[1]})
	case logic.And:
		return s.backImplyAnd2(g.ID, g.Fanin, false, false)
	case logic.Nand:
		return s.backImplyAnd2(g.ID, g.Fanin, true, false)
	case logic.Or:
		return s.backImplyAnd2(g.ID, g.Fanin, true, true)
	case logic.Nor:
		return s.backImplyAnd2(g.ID, g.Fanin, false, true)
	case logic.Xor:
		return s.backImplyXor2(g.ID, g.Fanin, false)
	case logic.Xnor:
		return s.backImplyXor2(g.ID, g.Fanin, true)
	}
	return false
}

// backImplyAnd2 is the two-word backImplyAnd.
func (s *State) backImplyAnd2(out circuit.NetID, fanin []circuit.NetID, invert, dual bool) bool {
	o := s.off(out)
	z := [2]uint64{s.val.zero[o], s.val.zero[o+1]}
	on := [2]uint64{s.val.one[o], s.val.one[o+1]}
	if invert {
		z, on = on, z
	}
	var f1, f0, st, inst [2]uint64
	for w := 0; w < 2; w++ {
		f1[w] = on[w] &^ z[w]
		f0[w] = z[w] &^ on[w]
		st[w] = s.val.stable[o+w]
		inst[w] = s.val.instable[o+w]
	}
	a := [2]uint64{s.active[0], s.active[1]}
	changed := false

	if f1[0]|f1[1] != 0 {
		anyInst := inst[0]|inst[1] != 0
		for i, net := range fanin {
			var others [2]uint64
			if anyInst {
				others = [2]uint64{^uint64(0), ^uint64(0)}
				for j, other := range fanin {
					if j == i {
						continue
					}
					oo := s.off(other)
					others[0] &= s.val.stable[oo]
					others[1] &= s.val.stable[oo+1]
				}
			}
			var rz, ro, rs, ri [2]uint64
			for w := 0; w < 2; w++ {
				r := uint64(0)
				if anyInst {
					r = f1[w] & inst[w] & others[w]
				}
				one := f1[w] | r
				zero := uint64(0)
				if dual {
					zero, one = one, zero
				}
				rz[w] = zero & a[w]
				ro[w] = one & a[w]
				rs[w] = f1[w] & st[w] & a[w]
				ri[w] = r & a[w]
			}
			if s.mergeVal2(net, rz, ro, rs, ri) {
				changed = true
			}
		}
	}

	if f0[0]|f0[1] != 0 {
		// Under the dual, "the other input is 1" reads the fanin's
		// complemented final value, i.e. its Zero plane.
		ones := s.val.one
		if dual {
			ones = s.val.zero
		}
		for i, net := range fanin {
			others := [2]uint64{^uint64(0), ^uint64(0)}
			for j, other := range fanin {
				if j == i {
					continue
				}
				oo := s.off(other)
				others[0] &= ones[oo]
				others[1] &= ones[oo+1]
			}
			forced := [2]uint64{f0[0] & others[0], f0[1] & others[1]}
			if forced[0]|forced[1] == 0 {
				continue
			}
			var rz, ro, rs, ri [2]uint64
			for w := 0; w < 2; w++ {
				zero, one := forced[w], uint64(0)
				if dual {
					zero, one = one, zero
				}
				rz[w] = zero & a[w]
				ro[w] = one & a[w]
				rs[w] = forced[w] & st[w] & a[w]
				ri[w] = forced[w] & inst[w] & a[w]
			}
			if s.mergeVal2(net, rz, ro, rs, ri) {
				changed = true
			}
		}
	}
	return changed
}

// backImplyXor2 is the two-word backImplyXor.
func (s *State) backImplyXor2(out circuit.NetID, fanin []circuit.NetID, invert bool) bool {
	o := s.off(out)
	z := [2]uint64{s.val.zero[o], s.val.zero[o+1]}
	on := [2]uint64{s.val.one[o], s.val.one[o+1]}
	if invert {
		z, on = on, z
	}
	var f1, f0, known [2]uint64
	for w := 0; w < 2; w++ {
		f1[w] = on[w] &^ z[w]
		f0[w] = z[w] &^ on[w]
		known[w] = f0[w] | f1[w]
	}
	if known[0]|known[1] == 0 {
		return false
	}
	a := [2]uint64{s.active[0], s.active[1]}
	changed := false
	for i, net := range fanin {
		othersKnown := [2]uint64{^uint64(0), ^uint64(0)}
		var othersParity [2]uint64
		for j, other := range fanin {
			if j == i {
				continue
			}
			oo := s.off(other)
			for w := 0; w < 2; w++ {
				one := s.val.one[oo+w] &^ s.val.zero[oo+w]
				zero := s.val.zero[oo+w] &^ s.val.one[oo+w]
				othersKnown[w] &= one | zero
				othersParity[w] ^= one
			}
		}
		var rz, ro [2]uint64
		anyMask := false
		for w := 0; w < 2; w++ {
			mask := known[w] & othersKnown[w]
			wantOne := (f1[w] &^ othersParity[w]) | (f0[w] & othersParity[w])
			rz[w] = (mask &^ wantOne) & a[w]
			ro[w] = (mask & wantOne) & a[w]
			anyMask = anyMask || mask != 0
		}
		if !anyMask {
			continue
		}
		if s.mergeVal2(net, rz, ro, [2]uint64{}, [2]uint64{}) {
			changed = true
		}
	}
	return changed
}

// backImplyXor derives the backward implications of an XOR gate (invert
// folds an XNOR output inversion): when the output final value and all but
// one input final values are known, the remaining input's final value is
// forced to the parity-consistent value.  Stability is not implied backwards
// through XOR (the necessary conditions are not unique).
func (s *State) backImplyXor(out circuit.NetID, fanin []circuit.NetID, invert bool) bool {
	ka, ooff := s.ka, s.off(out)
	f1, f0, known := &s.bF1, &s.bF0, &s.bSt
	anyKnown := false
	for w := 0; w < ka; w++ {
		o := ooff + w
		z, on := s.val.zero[o], s.val.one[o]
		if invert {
			z, on = on, z
		}
		f1[w] = on &^ z
		f0[w] = z &^ on
		known[w] = f0[w] | f1[w]
		anyKnown = anyKnown || known[w] != 0
	}
	if !anyKnown {
		return false
	}
	changed := false
	req := &s.mergeReg
	for i, net := range fanin {
		othersKnown, othersParity := &s.bOthers, &s.bInst
		for w := 0; w < ka; w++ {
			othersKnown[w] = ^uint64(0)
			othersParity[w] = 0
		}
		for j, other := range fanin {
			if j == i {
				continue
			}
			off := s.off(other)
			for w := 0; w < ka; w++ {
				o := off + w
				one := s.val.one[o] &^ s.val.zero[o]
				zero := s.val.zero[o] &^ s.val.one[o]
				othersKnown[w] &= one | zero
				othersParity[w] ^= one
			}
		}
		anyMask := false
		for w := 0; w < ka; w++ {
			mask := known[w] & othersKnown[w]
			wantOne := (f1[w] &^ othersParity[w]) | (f0[w] & othersParity[w])
			a := s.active[w]
			req.One[w] = mask & wantOne & a
			req.Zero[w] = (mask &^ wantOne) & a
			req.Stable[w] = 0
			req.Instable[w] = 0
			anyMask = anyMask || mask != 0
		}
		if !anyMask {
			continue
		}
		if s.mergeVal(net, req) {
			changed = true
		}
	}
	return changed
}
