package implic

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// backImply applies the unique backward implications of gate g: values that
// the fanin nets must take given the current value of the gate output (and
// of the other fanins).  It merges the derived requirements into Val and
// reports whether anything changed.
//
// Only *necessary* consequences are derived, so a conflict produced by the
// implication closure proves the requirements unsatisfiable (this is what
// makes the "conflict without optional assignments => redundant" conclusion
// of the paper sound).
func (s *State) backImply(g *circuit.Gate) bool {
	out := s.Val[g.ID]
	switch g.Kind {
	case logic.Buf:
		return s.mergeInto(g.Fanin[0], out)
	case logic.Not:
		return s.mergeInto(g.Fanin[0], out.Not())
	case logic.And:
		return s.backImplyAnd(out, g.Fanin, false)
	case logic.Nand:
		return s.backImplyAnd(out.Not(), g.Fanin, false)
	case logic.Or:
		return s.backImplyAnd(out.Not(), g.Fanin, true)
	case logic.Nor:
		return s.backImplyAnd(out, g.Fanin, true)
	case logic.Xor:
		return s.backImplyXor(out, g.Fanin)
	case logic.Xnor:
		return s.backImplyXor(out.Not(), g.Fanin)
	}
	return false
}

// faninVal reads the implied value of a fanin net, complemented when the
// enclosing gate is being solved in its OR dual.  It is a method rather than
// a closure so the backward-implication path stays closure-free (hotalloc).
func (s *State) faninVal(net circuit.NetID, dual bool) logic.Word7 {
	v := s.Val[net]
	if dual {
		return v.Not()
	}
	return v
}

// mergeInto merges w into Val[net] at the active levels and reports change.
// The write goes through mergeVal, so it is trailed and (in incremental
// mode) schedules the propagation events of the changed net.
func (s *State) mergeInto(net circuit.NetID, w logic.Word7) bool {
	return s.mergeVal(net, w.SelectLevels(s.active))
}

// backImplyAnd derives the backward implications of an AND gate whose output
// value (after folding away any output inversion) is outCore.  When dual is
// true the rules are applied in the OR dual: the gate is an OR/NOR and both
// the output value and the fanin values are complemented on the way in and
// the derived requirements complemented on the way out.  Complementing a
// seven-valued word swaps only the final-value planes, so stability
// information dualises correctly.
func (s *State) backImplyAnd(outCore logic.Word7, fanin []circuit.NetID, dual bool) bool {
	f1 := outCore.One &^ outCore.Zero
	f0 := outCore.Zero &^ outCore.One
	st := outCore.Stable
	inst := outCore.Instable

	changed := false

	// Rule family 1: the output requires the non-controlling value (1).
	// Every input must then be 1; if the output is stable every input is
	// stable; if the output carries a transition and all other inputs are
	// stable, the remaining input must carry the transition.
	if f1 != 0 {
		for i, net := range fanin {
			var req logic.Word7
			req.One = f1
			req.Stable = f1 & st
			if inst != 0 {
				othersStable := logic.AllLevels
				for j, other := range fanin {
					if j == i {
						continue
					}
					othersStable &= s.faninVal(other, dual).Stable
				}
				req.Instable = f1 & inst & othersStable
				req.One |= req.Instable
			}
			if dual {
				req = req.Not()
			}
			if s.mergeInto(net, req) {
				changed = true
			}
		}
	}

	// Rule family 0: the output requires the controlling value (0).  If all
	// other inputs are known to be 1, the remaining input must be 0; it must
	// additionally be stable (resp. falling) if the output is required
	// stable (resp. carries a transition).
	if f0 != 0 {
		for i, net := range fanin {
			othersOne := logic.AllLevels
			for j, other := range fanin {
				if j == i {
					continue
				}
				othersOne &= s.faninVal(other, dual).One
			}
			forced := f0 & othersOne
			if forced == 0 {
				continue
			}
			var req logic.Word7
			req.Zero = forced
			req.Stable = forced & st
			req.Instable = forced & inst
			if dual {
				req = req.Not()
			}
			if s.mergeInto(net, req) {
				changed = true
			}
		}
	}
	return changed
}

// backImplyXor derives the backward implications of an XOR gate whose output
// value (after folding away any inversion) is outCore: when the output final
// value and all but one input final values are known, the remaining input's
// final value is forced to the parity-consistent value.  Stability is not
// implied backwards through XOR (the necessary conditions are not unique).
func (s *State) backImplyXor(outCore logic.Word7, fanin []circuit.NetID) bool {
	f1 := outCore.One &^ outCore.Zero
	f0 := outCore.Zero &^ outCore.One
	known := f0 | f1
	if known == 0 {
		return false
	}
	changed := false
	for i, net := range fanin {
		othersKnown := logic.AllLevels
		othersParity := uint64(0)
		for j, other := range fanin {
			if j == i {
				continue
			}
			v := s.Val[other]
			othersKnown &= (v.One &^ v.Zero) | (v.Zero &^ v.One)
			othersParity ^= v.One &^ v.Zero
		}
		mask := known & othersKnown
		if mask == 0 {
			continue
		}
		wantOne := (f1 &^ othersParity) | (f0 & othersParity)
		var req logic.Word7
		req.One = mask & wantOne
		req.Zero = mask &^ wantOne
		if s.mergeInto(net, req) {
			changed = true
		}
	}
	return changed
}
