package testability

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// TestControllabilityC17 pins the hand-computed SCOAP controllability table
// of the c17 netlist (inputs 1,2,3,6,7; 10=NAND(1,3), 11=NAND(3,6),
// 16=NAND(2,11), 19=NAND(11,7), 22=NAND(10,16), 23=NAND(16,19)):
//
//	net   CC0  CC1         net   CC0  CC1
//	1..7    1    1          16     4    2
//	10      3    2          19     4    2
//	11      3    2          22     5    4
//	                        23     5    5
func TestControllabilityC17(t *testing.T) {
	c := bench.C17()
	m := Analyze(c)
	for _, in := range c.Inputs() {
		if m.CC0[in] != 1 || m.CC1[in] != 1 {
			t.Errorf("input %s controllability %d/%d, want 1/1",
				c.NetName(in), m.CC0[in], m.CC1[in])
		}
	}
	for _, tc := range []struct {
		net      string
		cc0, cc1 int
	}{
		{"10", 3, 2},
		{"11", 3, 2},
		{"16", 4, 2},
		{"19", 4, 2},
		{"22", 5, 4},
		{"23", 5, 5},
	} {
		n := c.NetByName(tc.net)
		if m.CC0[n] != tc.cc0 || m.CC1[n] != tc.cc1 {
			t.Errorf("net %s: CC0/CC1 = %d/%d, want %d/%d",
				tc.net, m.CC0[n], m.CC1[n], tc.cc0, tc.cc1)
		}
	}
	n10, n22 := c.NetByName("10"), c.NetByName("22")
	if m.CC0[n22] <= m.CC0[n10] {
		t.Errorf("CC0(22)=%d should exceed CC0(10)=%d (deeper gates are harder)",
			m.CC0[n22], m.CC0[n10])
	}
	if m.Cost(n10, logic.Zero3) != m.CC0[n10] || m.Cost(n10, logic.One3) != m.CC1[n10] {
		t.Error("Cost accessor inconsistent with the CC tables")
	}
}

// TestObservabilityC17 pins the hand-computed SCOAP observability table of
// c17.  Outputs 22 and 23 observe for free; a NAND side input costs its CC1:
//
//	CO(16) = CO(19) = CO(10) = 0+1+CC1(sibling=2)       = 3
//	CO(11) = 3+1+CC1(2 or 7)                            = 5  (both branches tie)
//	CO(1)  = CO(10)+1+CC1(3)                            = 5
//	CO(2)  = CO(16)+1+CC1(11)                           = 6
//	CO(3)  = min(via 10: 5, via 11: 7)                  = 5
//	CO(6)  = CO(11)+1+CC1(3)                            = 7
//	CO(7)  = CO(19)+1+CC1(11)                           = 6
func TestObservabilityC17(t *testing.T) {
	c := bench.C17()
	m := Analyze(c)
	for _, tc := range []struct {
		net string
		co  int
	}{
		{"22", 0}, {"23", 0},
		{"10", 3}, {"16", 3}, {"19", 3},
		{"11", 5},
		{"1", 5}, {"2", 6}, {"3", 5}, {"6", 7}, {"7", 6},
	} {
		n := c.NetByName(tc.net)
		if m.CO[n] != tc.co {
			t.Errorf("CO(%s) = %d, want %d", tc.net, m.CO[n], tc.co)
		}
	}
}

// TestMeasuresParityTree pins both sweeps on the 4-input XOR tree generator
// (x0_0=XOR(i0,i1), x0_1=XOR(i2,i3), x1_0=XOR(x0_0,x0_1)): the two-level
// parity DP gives every stage-0 gate CC0=CC1=3 and the root 7/7, and with
// the stable-0 convention an XOR side input costs its CC0, so
// CO(stage 0) = 0+1+CC0(sibling=3) = 4 and CO(input) = 4+1+CC0(sibling=1) = 6.
func TestMeasuresParityTree(t *testing.T) {
	c := bench.ParityTree(4)
	m := Analyze(c)
	for _, tc := range []struct {
		net          string
		cc0, cc1, co int
	}{
		{"x0_0", 3, 3, 4},
		{"x0_1", 3, 3, 4},
		{"x1_0", 7, 7, 0},
		{"i0", 1, 1, 6}, {"i1", 1, 1, 6}, {"i2", 1, 1, 6}, {"i3", 1, 1, 6},
	} {
		n := c.NetByName(tc.net)
		if m.CC0[n] != tc.cc0 || m.CC1[n] != tc.cc1 || m.CO[n] != tc.co {
			t.Errorf("net %s: CC0/CC1/CO = %d/%d/%d, want %d/%d/%d",
				tc.net, m.CC0[n], m.CC1[n], m.CO[n], tc.cc0, tc.cc1, tc.co)
		}
	}
}

// TestMeasuresComparator pins both sweeps on the 2-bit equality comparator
// generator (eq_i=XNOR(a_i,b_i), and2_0=AND(eq0,eq1)): XNOR controllability
// mirrors XOR at 3/3, the AND reduction gives CC1=3+3+1=7 and CC0=min+1=4,
// and observability costs CC1 through the AND (CO(eq)=0+1+3=4) then CC0
// through the XNOR (CO(input)=4+1+1=6).
func TestMeasuresComparator(t *testing.T) {
	c := bench.Comparator(2)
	m := Analyze(c)
	for _, tc := range []struct {
		net          string
		cc0, cc1, co int
	}{
		{"eq0", 3, 3, 4},
		{"eq1", 3, 3, 4},
		{"and2_0", 4, 7, 0},
		{"a0", 1, 1, 6}, {"b0", 1, 1, 6}, {"a1", 1, 1, 6}, {"b1", 1, 1, 6},
	} {
		n := c.NetByName(tc.net)
		if m.CC0[n] != tc.cc0 || m.CC1[n] != tc.cc1 || m.CO[n] != tc.co {
			t.Errorf("net %s: CC0/CC1/CO = %d/%d/%d, want %d/%d/%d",
				tc.net, m.CC0[n], m.CC1[n], m.CO[n], tc.cc0, tc.cc1, tc.co)
		}
	}
}

// TestControllabilityAllKinds covers every gate kind on a one-gate-deep
// circuit, including the constant pseudo-gates.
func TestControllabilityAllKinds(t *testing.T) {
	b := circuit.NewBuilder("kinds")
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate("and", logic.And, a, bb)
	or := b.Gate("or", logic.Or, a, bb)
	xor := b.Gate("xor", logic.Xor, a, bb)
	xnor := b.Gate("xnor", logic.Xnor, a, bb)
	not := b.Gate("not", logic.Not, a)
	buf := b.Gate("buf", logic.Buf, bb)
	z0 := b.Const("z0", false)
	z1 := b.Const("z1", true)
	top := b.Gate("top", logic.Or, and, or, xor, xnor, not, buf, z0, z1)
	b.Output(top)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Analyze(c)
	if m.CC1[and] != 3 || m.CC0[and] != 2 {
		t.Errorf("AND controllability %d/%d, want CC0=2 CC1=3", m.CC0[and], m.CC1[and])
	}
	if m.CC0[or] != 3 || m.CC1[or] != 2 {
		t.Errorf("OR controllability %d/%d, want CC0=3 CC1=2", m.CC0[or], m.CC1[or])
	}
	if m.CC0[xor] != 3 || m.CC1[xor] != 3 {
		t.Errorf("XOR controllability %d/%d, want 3/3", m.CC0[xor], m.CC1[xor])
	}
	if m.CC0[xnor] != 3 || m.CC1[xnor] != 3 {
		t.Errorf("XNOR controllability %d/%d, want 3/3", m.CC0[xnor], m.CC1[xnor])
	}
	if m.CC0[not] != 2 || m.CC1[not] != 2 {
		t.Errorf("NOT controllability %d/%d, want 2/2", m.CC0[not], m.CC1[not])
	}
	if m.CC0[buf] != 2 || m.CC1[buf] != 2 {
		t.Errorf("BUF controllability %d/%d, want 2/2", m.CC0[buf], m.CC1[buf])
	}
	if m.CC0[z0] != 1 || m.CC1[z0] != MaxMeasure {
		t.Errorf("CONST0 controllability %d/%d, want 1/max", m.CC0[z0], m.CC1[z0])
	}
	if m.CC1[z1] != 1 || m.CC0[z1] != MaxMeasure {
		t.Errorf("CONST1 controllability %d/%d, want max/1", m.CC0[z1], m.CC1[z1])
	}
}

// TestChainMonotonicity is the chain property: through a buffer (or inverter)
// chain of depth d, every measure grows by exactly 1 per stage — CC from the
// input side, CO from the output side.
func TestChainMonotonicity(t *testing.T) {
	for _, kind := range []logic.Kind{logic.Buf, logic.Not} {
		const depth = 12
		b := circuit.NewBuilder(fmt.Sprintf("chain-%v", kind))
		nets := make([]circuit.NetID, depth+1)
		nets[0] = b.Input("in")
		for i := 1; i <= depth; i++ {
			nets[i] = b.Gate(fmt.Sprintf("n%d", i), kind, nets[i-1])
		}
		b.Output(nets[depth])
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := Analyze(c)
		for i, n := range nets {
			// Stage i is i gates from the input, depth-i from the output.
			if m.CC0[n] != 1+i || m.CC1[n] != 1+i {
				t.Errorf("%v chain stage %d: CC0/CC1 = %d/%d, want %d/%d",
					kind, i, m.CC0[n], m.CC1[n], 1+i, 1+i)
			}
			if m.CO[n] != depth-i {
				t.Errorf("%v chain stage %d: CO = %d, want %d", kind, i, m.CO[n], depth-i)
			}
		}
	}
}

// treeCircuit builds a balanced binary tree of the kind with 2^depth leaf
// inputs and returns the circuit, the root and the first leaf.
func treeCircuit(t *testing.T, kind logic.Kind, depth int) (*circuit.Circuit, circuit.NetID, circuit.NetID) {
	t.Helper()
	b := circuit.NewBuilder(fmt.Sprintf("tree-%v-%d", kind, depth))
	level := make([]circuit.NetID, 1<<uint(depth))
	for i := range level {
		level[i] = b.Input(fmt.Sprintf("l%d", i))
	}
	leaf := level[0]
	stage := 0
	for len(level) > 1 {
		next := make([]circuit.NetID, 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Gate(fmt.Sprintf("g%d_%d", stage, i/2), kind, level[i], level[i+1]))
		}
		level = next
		stage++
	}
	b.Output(level[0])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, level[0], leaf
}

// TestTreeClosedForms checks the SCOAP closed forms on balanced binary
// AND/OR trees of depth d (2^d leaves):
//
//	AND: CC1(root) = 2^(d+1)-1   (all leaves at 1, one gate per level)
//	     CC0(root) = d+1         (one leaf at 0 up the cheapest branch)
//	OR is the dual, and for both: CO(leaf) = 2^(d+1)-2 (every sibling
//	subtree must be driven to its non-controlling value on the way out).
func TestTreeClosedForms(t *testing.T) {
	for _, kind := range []logic.Kind{logic.And, logic.Or} {
		for depth := 1; depth <= 4; depth++ {
			c, root, leaf := treeCircuit(t, kind, depth)
			m := Analyze(c)
			sum, cheap := 1<<uint(depth+1)-1, depth+1
			wantCC0, wantCC1 := cheap, sum
			if kind == logic.Or {
				wantCC0, wantCC1 = sum, cheap
			}
			if m.CC0[root] != wantCC0 || m.CC1[root] != wantCC1 {
				t.Errorf("%v tree depth %d: root CC0/CC1 = %d/%d, want %d/%d",
					kind, depth, m.CC0[root], m.CC1[root], wantCC0, wantCC1)
			}
			if wantCO := 1<<uint(depth+1) - 2; m.CO[leaf] != wantCO {
				t.Errorf("%v tree depth %d: leaf CO = %d, want %d", kind, depth, m.CO[leaf], wantCO)
			}
		}
	}
}

// TestUnobservableNet checks that a net with no structural path to an output
// keeps CO = MaxMeasure.
func TestUnobservableNet(t *testing.T) {
	b := circuit.NewBuilder("dangling")
	a := b.Input("a")
	bb := b.Input("b")
	dead := b.Gate("dead", logic.And, a, bb)
	_ = dead
	b.Output(b.Gate("z", logic.Or, a, bb))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Analyze(c)
	if m.CO[dead] != MaxMeasure {
		t.Errorf("dangling gate CO = %d, want MaxMeasure", m.CO[dead])
	}
}

// TestForCachesPerCircuit checks the per-circuit memoization: every call on
// the same compiled circuit returns the identical analysis, and distinct
// circuits do not share one.
func TestForCachesPerCircuit(t *testing.T) {
	c1, c2 := bench.C17(), bench.C17()
	if For(c1) != For(c1) {
		t.Error("For returned two different analyses for one circuit")
	}
	if For(c1) == For(c2) {
		t.Error("For shared an analysis across distinct circuits")
	}
}

// c17Fault builds the path delay fault along the named nets of c17.
func c17Fault(c *circuit.Circuit, tr paths.Transition, names ...string) paths.Fault {
	nets := make([]circuit.NetID, len(names))
	for i, n := range names {
		nets[i] = c.NetByName(n)
	}
	return paths.Fault{Path: paths.Path{Nets: nets}, Transition: tr}
}

// TestFaultScore checks the hardness score on c17 paths: it starts from the
// path input's observability, adds every on-path side input's cost, is a
// deterministic pure function, and robust scores dominate nonrobust ones
// (side inputs facing a transition towards the controlling value count
// double under the stability requirement).
func TestFaultScore(t *testing.T) {
	c := bench.C17()
	m := For(c)

	// Path 3-10-22, rising launch: CO(3)=5; gate 10 side input 1 costs
	// CC1(1)=1; gate 22 side input 16 costs CC1(16)=2.  The rising launch
	// arrives at 10 falling (NAND), i.e. towards the controlling value of
	// 22's NAND, so robust mode doubles the 16 side: 5+1+4 = 10 vs 5+1+2 = 8.
	f := c17Fault(c, paths.Rising, "3", "10", "22")
	if got := m.FaultScore(c, f, sensitize.Nonrobust); got != 8 {
		t.Errorf("nonrobust score = %d, want 8", got)
	}
	if got := m.FaultScore(c, f, sensitize.Robust); got != 10 {
		t.Errorf("robust score = %d, want 10", got)
	}

	// Robust dominance and determinism over every fault of the circuit.
	for _, f := range paths.EnumerateFaults(c, 0) {
		nr := m.FaultScore(c, f, sensitize.Nonrobust)
		r := m.FaultScore(c, f, sensitize.Robust)
		if r < nr {
			t.Errorf("fault %s: robust score %d below nonrobust %d", f.Key(), r, nr)
		}
		if m.FaultScore(c, f, sensitize.Robust) != r {
			t.Errorf("fault %s: score not deterministic", f.Key())
		}
	}

	if got := m.FaultScore(c, paths.Fault{}, sensitize.Robust); got != 0 {
		t.Errorf("empty path score = %d, want 0", got)
	}
}

// TestHardThreshold checks the cutoff policy: twice the upper median, so a
// uniform population predicts nothing hard and an empty one predicts
// everything easy.
func TestHardThreshold(t *testing.T) {
	if got := HardThreshold(nil); got != MaxMeasure {
		t.Errorf("empty threshold = %d, want MaxMeasure", got)
	}
	uniform := []int{7, 7, 7, 7, 7}
	if got := HardThreshold(uniform); got != 14 {
		t.Errorf("uniform threshold = %d, want 14", got)
	}
	for _, s := range uniform {
		if s > HardThreshold(uniform) {
			t.Error("uniform population predicted a hard fault")
		}
	}
	skewed := []int{1, 1, 1, 2, 100}
	thr := HardThreshold(skewed)
	if thr != 2 {
		t.Errorf("skewed threshold = %d, want 2 (twice the upper median 1)", thr)
	}
	hard := 0
	for _, s := range skewed {
		if s > thr {
			hard++
		}
	}
	if hard != 1 {
		t.Errorf("skewed population predicted %d hard faults, want 1 (the tail)", hard)
	}
	// The input slice must not be reordered.
	if skewed[4] != 100 {
		t.Error("HardThreshold mutated its input")
	}
	if got := HardThreshold([]int{MaxMeasure, MaxMeasure}); got != MaxMeasure {
		t.Errorf("saturated threshold = %d, want MaxMeasure", got)
	}
}

// TestAutoWidth checks the escalation width derivation: the smallest power
// of two covering the hard tail, clamped to [4, MaxWordWidth].
func TestAutoWidth(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{33, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 256},
		{400, 512}, {1000, logic.MaxWordWidth},
	} {
		if got := AutoWidth(tc.n); got != tc.want {
			t.Errorf("AutoWidth(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestAutoWidthProperties checks the invariants every derived width must
// satisfy regardless of the hard-fault count: a power of two, at least 4,
// at most logic.MaxWordWidth, monotone in the count, and minimal (covering
// the count whenever any legal width could).
func TestAutoWidthProperties(t *testing.T) {
	prev := 0
	for n := -3; n <= 2*logic.MaxWordWidth; n++ {
		w := AutoWidth(n)
		if w < 4 || w > logic.MaxWordWidth {
			t.Fatalf("AutoWidth(%d) = %d outside [4, %d]", n, w, logic.MaxWordWidth)
		}
		if w&(w-1) != 0 {
			t.Fatalf("AutoWidth(%d) = %d is not a power of two", n, w)
		}
		if w < prev {
			t.Fatalf("AutoWidth(%d) = %d < AutoWidth(%d) = %d, not monotone", n, w, n-1, prev)
		}
		if w < n && w < logic.MaxWordWidth {
			t.Fatalf("AutoWidth(%d) = %d does not cover the tail despite room to grow", n, w)
		}
		if w > 4 && w/2 >= n {
			t.Fatalf("AutoWidth(%d) = %d is not minimal (width %d already covers)", n, w, w/2)
		}
		prev = w
	}
}
