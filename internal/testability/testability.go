// Package testability computes SCOAP-style testability measures for the
// levelized circuit model: 0/1 controllability with one forward topological
// sweep, observability with one backward sweep, and a per-fault hardness
// score for robust and nonrobust path delay fault targets.
//
// The measures are pure structural estimates — integers that grow with the
// expected search effort — and are used to *order* work, never to decide
// outcomes: backtrace input selection, objective selection, hardest-first
// unit ordering and guided escalation routing all consume them as
// priorities, so a wrong estimate costs time, not coverage (see
// docs/ARCHITECTURE.md, "Testability-guided search").
package testability

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// MaxMeasure is the saturation bound of every measure: costs are added along
// reconvergent structures and must not overflow on deep circuits.
const MaxMeasure = 1 << 28

// Measures holds the per-net testability measures of one circuit, indexed by
// NetID.  CC0[n] and CC1[n] estimate the effort of driving net n to 0 and to
// 1; CO[n] estimates the effort of propagating a value change on n to some
// primary output.  Unobservable nets (no path to an output) keep
// CO == MaxMeasure.
type Measures struct {
	CC0 []int
	CC1 []int
	CO  []int
}

// Analyze computes the measures of the circuit: one forward levelized sweep
// for the controllabilities, one backward sweep for the observabilities.
func Analyze(c *circuit.Circuit) *Measures {
	n := c.NumNets()
	m := &Measures{CC0: make([]int, n), CC1: make([]int, n), CO: make([]int, n)}
	m.sweepControllability(c)
	m.sweepObservability(c)
	return m
}

// memoKey keys the cached measures on circuit.Memo; being unexported it
// cannot collide with another package's cache entries.
type memoKey struct{}

// For returns the measures of the circuit, computing them on first use and
// caching them on the circuit itself: every generator fork, backtrace and
// scheduler consumer of the same compiled circuit shares one analysis.
func For(c *circuit.Circuit) *Measures {
	return c.Memo(memoKey{}, func() any { return Analyze(c) }).(*Measures)
}

// sweepControllability fills CC0/CC1 with the classic SCOAP recurrences in
// one topological sweep: inputs cost 1; an AND output 1 needs every input at
// 1 (sum), an AND output 0 needs one input at 0 (min); OR is the dual;
// NAND/NOR swap the results; XOR/XNOR use a two-level parity approximation.
//
//atpgvet:noalloc
func (m *Measures) sweepControllability(c *circuit.Circuit) {
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		switch g.Kind {
		case logic.Input:
			m.CC0[id], m.CC1[id] = 1, 1
		case logic.Const0:
			m.CC0[id], m.CC1[id] = 1, MaxMeasure
		case logic.Const1:
			m.CC0[id], m.CC1[id] = MaxMeasure, 1
		case logic.Buf:
			m.CC0[id] = sat(m.CC0[g.Fanin[0]] + 1)
			m.CC1[id] = sat(m.CC1[g.Fanin[0]] + 1)
		case logic.Not:
			m.CC0[id] = sat(m.CC1[g.Fanin[0]] + 1)
			m.CC1[id] = sat(m.CC0[g.Fanin[0]] + 1)
		case logic.And, logic.Nand:
			sum1, min0 := 0, MaxMeasure
			for _, f := range g.Fanin {
				sum1 = sat(sum1 + m.CC1[f])
				if m.CC0[f] < min0 {
					min0 = m.CC0[f]
				}
			}
			c1 := sat(sum1 + 1)
			c0 := sat(min0 + 1)
			if g.Kind == logic.And {
				m.CC1[id], m.CC0[id] = c1, c0
			} else {
				m.CC0[id], m.CC1[id] = c1, c0
			}
		case logic.Or, logic.Nor:
			sum0, min1 := 0, MaxMeasure
			for _, f := range g.Fanin {
				sum0 = sat(sum0 + m.CC0[f])
				if m.CC1[f] < min1 {
					min1 = m.CC1[f]
				}
			}
			c0 := sat(sum0 + 1)
			c1 := sat(min1 + 1)
			if g.Kind == logic.Or {
				m.CC0[id], m.CC1[id] = c0, c1
			} else {
				m.CC1[id], m.CC0[id] = c0, c1
			}
		case logic.Xor, logic.Xnor:
			// Two-level approximation: cost of making the parity even/odd.
			even, odd := 0, MaxMeasure
			for _, f := range g.Fanin {
				ne := minInt(sat(even+m.CC0[f]), sat(odd+m.CC1[f]))
				no := minInt(sat(even+m.CC1[f]), sat(odd+m.CC0[f]))
				even, odd = ne, no
			}
			c0 := sat(even + 1)
			c1 := sat(odd + 1)
			if g.Kind == logic.Xor {
				m.CC0[id], m.CC1[id] = c0, c1
			} else {
				m.CC0[id], m.CC1[id] = c1, c0
			}
		}
	}
}

// sweepObservability fills CO with one backward sweep over the reversed
// topological order.  Primary outputs observe for free; propagating through
// a gate costs the gate itself plus driving every side input to its
// non-controlling value (AND/NAND: CC1, OR/NOR: CC0); XOR/XNOR side inputs
// follow the stable-0 convention of the sensitization conditions, so they
// cost CC0.  A multi-fanout net takes the cheapest of its branches.
//
// Reverse topological order guarantees CO[id] is final before id's fanins
// are relaxed: every gate reading id comes later in topological order and
// has therefore already been processed.
//
//atpgvet:noalloc
func (m *Measures) sweepObservability(c *circuit.Circuit) {
	for i := range m.CO {
		m.CO[i] = MaxMeasure
	}
	for _, id := range c.Outputs() {
		m.CO[id] = 0
	}
	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		if len(g.Fanin) == 0 || m.CO[id] >= MaxMeasure {
			continue
		}
		switch g.Kind {
		case logic.Buf, logic.Not:
			cand := sat(m.CO[id] + 1)
			if cand < m.CO[g.Fanin[0]] {
				m.CO[g.Fanin[0]] = cand
			}
		case logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor:
			side := 0
			for _, s := range g.Fanin {
				side = sat(side + m.sideCost(g.Kind, s))
			}
			for _, f := range g.Fanin {
				cand := sat(m.CO[id] + 1 + side - m.sideCost(g.Kind, f))
				if cand < m.CO[f] {
					m.CO[f] = cand
				}
			}
		}
	}
}

// sideCost is the cost of putting one side input of a gate of the given kind
// into its propagation-enabling state: the non-controlling value for the
// AND/OR families, stable 0 for the XOR family (the convention the
// sensitization conditions fix parity with).
func (m *Measures) sideCost(kind logic.Kind, s circuit.NetID) int {
	switch kind {
	case logic.And, logic.Nand:
		return m.CC1[s]
	case logic.Or, logic.Nor:
		return m.CC0[s]
	case logic.Xor, logic.Xnor:
		return m.CC0[s]
	}
	return 0
}

func sat(v int) int {
	if v > MaxMeasure {
		return MaxMeasure
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Cost returns the controllability cost of setting net to the given final
// value.
func (m *Measures) Cost(net circuit.NetID, v logic.Value3) int {
	if v == logic.Zero3 {
		return m.CC0[net]
	}
	return m.CC1[net]
}

// FaultScore estimates the search effort of generating a test for the path
// delay fault: the observability of the path input (how deep the launch
// point is buried) plus, for every on-path gate, the cost of driving each
// side input to its propagation-enabling value.  In robust mode a side input
// must additionally stay *stable* at the non-controlling value whenever the
// on-path input of its gate transitions towards the controlling value (the
// Lin/Reddy condition the sensitization package implements); those sides
// count double, so robust scores dominate nonrobust scores on the same
// fault.  Scores saturate at MaxMeasure.
//
// The score is a pure function of the circuit structure and the fault, so
// equal inputs always produce equal scores — the guided heuristics built on
// it stay deterministic.
func (m *Measures) FaultScore(c *circuit.Circuit, f paths.Fault, mode sensitize.Mode) int {
	nets := f.Path.Nets
	if len(nets) == 0 {
		return 0
	}
	trans := f.Transitions(c)
	score := m.CO[nets[0]]
	for i := 1; i < len(nets); i++ {
		g := c.Gate(nets[i])
		if len(g.Fanin) < 2 {
			continue
		}
		stable := false
		if mode == sensitize.Robust && g.Kind.HasControlling() {
			ctrl, _ := g.Kind.Controlling()
			stable = trans[i-1].FinalValue3() == ctrl
		}
		for _, s := range g.Fanin {
			if s == nets[i-1] {
				continue
			}
			cost := m.sideCost(g.Kind, s)
			if stable {
				cost = sat(2 * cost)
			}
			score = sat(score + cost)
		}
	}
	return score
}

// HardThreshold returns the hardness cutoff of a score population: twice the
// upper median.  Scores strictly above the cutoff are predicted hard.  The
// factor keeps the predicted-hard set a genuine tail — a uniform population
// (every score equal) predicts nothing hard, so guidance degrades to the
// unguided behavior instead of escalating everything.
func HardThreshold(scores []int) int {
	if len(scores) == 0 {
		return MaxMeasure
	}
	s := make([]int, len(scores))
	copy(s, scores)
	sort.Ints(s)
	return sat(2 * s[len(s)/2])
}

// AutoWidth derives an escalation width from the predicted-hard fault count:
// the smallest power of two covering the hard tail, clamped to [4,
// logic.MaxWordWidth].  A handful of hard faults shares one narrow word; a
// long tail gets multi-word plane vectors up to the widest supported level
// count.
func AutoWidth(nHard int) int {
	w := 4
	for w < nHard && w < logic.MaxWordWidth {
		w *= 2
	}
	return w
}
