// Package retry is the repo's one idiom for surviving transient faults on
// the service's wire edges: context-aware exponential backoff with
// decorrelated jitter, a transient/terminal error classification shared by
// every caller, and a per-operation retry budget so a hopeless endpoint
// fails in bounded time instead of retrying forever.
//
// Two shapes cover every call site:
//
//   - retry.Do wraps one operation: it retries transient failures under the
//     policy's budget and stops immediately on terminal ones.
//   - Policy.Backoff hands loops that own their own retry structure (the
//     worker lease loop, the facade's reconnecting long-polls) a jittered
//     delay sequence without the Do wrapper.
//
// Classification is deliberately conservative about what is terminal:
// connection refused/reset, timeouts (including a per-attempt deadline
// firing), severed response bodies and HTTP 5xx (plus 408/425/429) are
// transient; other 4xx responses and context cancellation are terminal.
// Do and the loop helpers check the caller's own context separately, so a
// dead parent context always stops the retrying regardless of class.  Errors may carry a server-provided retry hint
// (HTTP Retry-After) via the RetryAfterHint interface; Do and Backoff honor
// it as a lower bound on the next delay.
package retry

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// Class is the retry verdict on an error.
type Class int

const (
	// Terminal errors must not be retried: the operation failed for a
	// reason a retry cannot fix (bad request, unknown job, canceled ctx).
	Terminal Class = iota
	// Transient errors are worth retrying with backoff.
	Transient
)

// HTTPStatus lets wire errors expose their status code without this package
// importing the service types (service imports retry, not the reverse).
type HTTPStatus interface{ HTTPStatus() int }

// RetryAfterHint lets an error carry a server-provided delay hint (HTTP
// Retry-After); Do and Backoff use it as a lower bound on the next delay.
type RetryAfterHint interface{ RetryAfterHint() time.Duration }

// Classify is the default transient/terminal classification.  nil and
// deliberate cancellation are Terminal; wire-shaped failures (refused/reset
// connections, timeouts — a deadline firing on one attempt is the classic
// transient fault; the caller's own context is checked separately by the
// retry loops — truncated bodies, retryable HTTP statuses) are Transient;
// HTTP client errors are Terminal.  Unknown errors default to Transient: on
// a wire edge an unclassified failure is far more often a flaky hop than a
// permanent condition, and the budget bounds the damage.
func Classify(err error) Class {
	if err == nil {
		return Terminal
	}
	if errors.Is(err, context.Canceled) {
		return Terminal
	}
	var hs HTTPStatus
	if errors.As(err, &hs) {
		return ClassifyHTTP(hs.HTTPStatus())
	}
	return Transient
}

// ClassifyHTTP classifies a bare HTTP status code: 5xx and the retryable
// 4xx trio (408 request timeout, 425 too early, 429 rate limited) are
// Transient, everything else a client must fix before retrying.
func ClassifyHTTP(status int) Class {
	switch {
	case status >= 500:
		return Transient
	case status == 408 || status == 425 || status == 429:
		return Transient
	default:
		return Terminal
	}
}

// ClassifyStrict only deems an error transient when the request provably
// never reached the server (refused or unrouteable connection), so retrying
// cannot duplicate a non-idempotent operation.  Everything indeterminate —
// resets, timeouts, truncated responses, where the server may have already
// acted — is Terminal.  Job submission uses this.
func ClassifyStrict(err error) Class {
	if err == nil {
		return Terminal
	}
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) {
		return Transient
	}
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return Transient
	}
	return Terminal
}

// retryAfter extracts the strongest server delay hint from the error chain.
func retryAfter(err error) (time.Duration, bool) {
	var h RetryAfterHint
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// transientNetError reports whether err looks like a severed wire: used by
// tests and documented here as the shapes Classify treats as transient by
// default (net timeouts, ECONNRESET, EPIPE, EOF mid-body).
func transientNetError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// Policy tunes one operation's retry behavior.  The zero value is usable:
// it means 4 attempts, 100ms initial delay, 5s cap, default classification.
type Policy struct {
	// Initial is the first backoff delay.  Default 100ms.
	Initial time.Duration
	// Max caps every delay.  Default 5s.
	Max time.Duration
	// Attempts is the total attempt budget, first try included.  0 means
	// the default of 4; negative means unlimited (the context bounds the
	// loop instead — reconnecting long-polls use this).
	Attempts int
	// Budget, when positive, caps the total time spent across attempts
	// and backoff sleeps; once exceeded no further attempt starts.
	Budget time.Duration
	// Classify overrides the transient/terminal verdict.  Default Classify.
	Classify func(error) Class
	// Seed, when nonzero, makes the jitter sequence deterministic — chaos
	// tests pin it so a failure schedule replays exactly.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Attempts == 0 {
		p.Attempts = 4
	}
	if p.Classify == nil {
		p.Classify = Classify
	}
	return p
}

// Backoff is the stateful delay sequence of one operation: decorrelated
// jitter (each delay drawn uniformly from [Initial, 3×previous], capped at
// Max), so a fleet of clients that failed together does not retry in
// lockstep.  Not safe for concurrent use; each goroutine owns its own.
type Backoff struct {
	p       Policy
	mu      sync.Mutex
	rng     *rand.Rand
	prev    time.Duration
	tries   int
	started time.Time
}

// Backoff builds a fresh delay sequence under the policy.
func (p Policy) Backoff() *Backoff {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Backoff{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay and whether the budget allows another attempt.
// The first call (before any failure) already consumes an attempt, so a
// Policy with Attempts=1 never sleeps: the single attempt was spent.
func (b *Backoff) Next() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started.IsZero() {
		b.started = time.Now()
	}
	b.tries++
	if b.p.Attempts > 0 && b.tries >= b.p.Attempts {
		return 0, false
	}
	if b.p.Budget > 0 && time.Since(b.started) > b.p.Budget {
		return 0, false
	}
	lo := b.p.Initial
	hi := 3 * b.prev
	if hi < lo {
		hi = lo
	}
	if hi > b.p.Max {
		hi = b.p.Max
	}
	d := lo
	if hi > lo {
		d = lo + time.Duration(b.rng.Int63n(int64(hi-lo)+1))
	}
	b.prev = d
	return d, true
}

// Sleep waits out the next delay, honoring any Retry-After hint on err as a
// lower bound.  It returns false when the budget is exhausted or the context
// ended — the caller should stop retrying and surface its last error.
func (b *Backoff) Sleep(ctx context.Context, err error) bool {
	d, ok := b.Next()
	if !ok {
		return false
	}
	if hint, ok := retryAfter(err); ok && hint > d {
		d = hint
		if max := b.p.withDefaults().Max; hint > max && max > 0 {
			d = max
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Reset clears the sequence after a success, so the next failure backs off
// from Initial again.  The attempt and time budgets restart too.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.prev = 0
	b.tries = 0
	b.started = time.Time{}
	b.mu.Unlock()
}

// Last returns the most recent delay Next produced (0 before any failure).
// Worker counters expose it as the effective backoff.
func (b *Backoff) Last() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.prev
}

// Do runs op, retrying transient failures under the policy until it
// succeeds, turns terminal, or the budget or context runs out.  The last
// error is returned unwrapped, so errors.Is/As verdicts on the underlying
// failure keep working at the call site.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	b := p.Backoff()
	for {
		err := op(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || p.Classify(err) == Terminal {
			return err
		}
		if !b.Sleep(ctx, err) {
			return err
		}
	}
}
