package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// httpErr is a minimal wire error carrying a status and a Retry-After hint,
// mirroring what service.APIError exposes through the interfaces.
type httpErr struct {
	status int
	after  time.Duration
}

func (e *httpErr) Error() string                 { return fmt.Sprintf("http %d", e.status) }
func (e *httpErr) HTTPStatus() int               { return e.status }
func (e *httpErr) RetryAfterHint() time.Duration { return e.after }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Terminal},
		{"canceled", context.Canceled, Terminal},
		{"deadline", context.DeadlineExceeded, Transient},
		{"wrapped-canceled", fmt.Errorf("op: %w", context.Canceled), Terminal},
		{"refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, Transient},
		{"reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, Transient},
		{"eof", io.ErrUnexpectedEOF, Transient},
		{"http-500", &httpErr{status: 500}, Transient},
		{"http-503", &httpErr{status: 503}, Transient},
		{"http-429", &httpErr{status: 429}, Transient},
		{"http-408", &httpErr{status: 408}, Transient},
		{"http-404", &httpErr{status: 404}, Terminal},
		{"http-400", &httpErr{status: 400}, Terminal},
		{"http-409", &httpErr{status: 409}, Terminal},
		{"wrapped-http", fmt.Errorf("call: %w", &httpErr{status: 502}), Transient},
		{"unknown", errors.New("mystery"), Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The transient wire shapes document themselves.
	for _, err := range []error{
		&net.OpError{Op: "read", Err: syscall.ECONNRESET},
		syscall.EPIPE,
		io.EOF,
		io.ErrUnexpectedEOF,
	} {
		if !transientNetError(err) {
			t.Errorf("transientNetError(%v) = false", err)
		}
	}
}

func TestClassifyStrict(t *testing.T) {
	if got := ClassifyStrict(&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}); got != Transient {
		t.Fatal("connection refused must be strictly transient (request never sent)")
	}
	for _, err := range []error{
		&net.OpError{Op: "read", Err: syscall.ECONNRESET},
		io.ErrUnexpectedEOF,
		context.DeadlineExceeded,
		&httpErr{status: 503},
		errors.New("mystery"),
	} {
		if got := ClassifyStrict(err); got != Terminal {
			t.Errorf("ClassifyStrict(%v) = %v, want Terminal (indeterminate delivery)", err, got)
		}
	}
}

// TestBackoffBoundsAndDeterminism: every delay sits in [Initial, Max], the
// sequence grows from Initial, and a pinned seed replays it exactly.
func TestBackoffBoundsAndDeterminism(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 500 * time.Millisecond, Attempts: -1, Seed: 42}
	a, b := p.Backoff(), p.Backoff()
	prev := time.Duration(0)
	for i := 0; i < 32; i++ {
		da, oka := a.Next()
		db, okb := b.Next()
		if !oka || !okb {
			t.Fatalf("attempt %d: unlimited policy refused an attempt", i)
		}
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < p.Initial || da > p.Max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da, p.Initial, p.Max)
		}
		// Decorrelated jitter never exceeds 3x the previous delay.
		if prev > 0 && da > 3*prev {
			t.Fatalf("attempt %d: delay %v > 3x previous %v", i, da, prev)
		}
		prev = da
	}
	if a.Last() != prev {
		t.Fatalf("Last() = %v, want %v", a.Last(), prev)
	}
	a.Reset()
	if a.Last() != 0 {
		t.Fatal("Reset did not clear the sequence")
	}
}

func TestBackoffAttemptBudget(t *testing.T) {
	b := Policy{Initial: time.Millisecond, Attempts: 3, Seed: 1}.Backoff()
	for i := 0; i < 2; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("attempt %d refused before the budget of 3", i+1)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("fourth attempt allowed under a budget of 3")
	}
	b.Reset()
	if _, ok := b.Next(); !ok {
		t.Fatal("Reset did not restore the attempt budget")
	}
}

func TestDoRecoversFromTransient(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Initial: time.Millisecond, Attempts: 5, Seed: 7},
		func(context.Context) error {
			calls++
			if calls < 3 {
				return &httpErr{status: 503}
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on call 3", err, calls)
	}
}

func TestDoStopsOnTerminal(t *testing.T) {
	calls := 0
	want := &httpErr{status: 404}
	err := Do(context.Background(), Policy{Initial: time.Millisecond, Attempts: 5},
		func(context.Context) error { calls++; return want })
	if !errors.Is(err, want) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want the 404 after exactly 1", err, calls)
	}
}

func TestDoExhaustsBudgetAndKeepsLastError(t *testing.T) {
	calls := 0
	last := errors.New("still down")
	err := Do(context.Background(), Policy{Initial: time.Millisecond, Attempts: 3, Seed: 9},
		func(context.Context) error { calls++; return fmt.Errorf("try %d: %w", calls, last) })
	if calls != 3 {
		t.Fatalf("budget of 3 ran %d attempts", calls)
	}
	if !errors.Is(err, last) {
		t.Fatalf("Do = %v, want the final underlying error", err)
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{Initial: time.Hour, Attempts: -1},
		func(context.Context) error {
			calls++
			cancel() // fail once, then the backoff sleep must abort
			return errors.New("down")
		})
	if err == nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want 1 call then a canceled sleep", err, calls)
	}
}

func TestSleepHonorsRetryAfterHint(t *testing.T) {
	b := Policy{Initial: time.Millisecond, Max: time.Second, Attempts: -1, Seed: 3}.Backoff()
	start := time.Now()
	if !b.Sleep(context.Background(), &httpErr{status: 429, after: 60 * time.Millisecond}) {
		t.Fatal("Sleep refused under an unlimited budget")
	}
	if got := time.Since(start); got < 55*time.Millisecond {
		t.Fatalf("slept %v, want >= the 60ms Retry-After hint", got)
	}
}

func TestBackoffTimeBudget(t *testing.T) {
	b := Policy{Initial: time.Millisecond, Attempts: -1, Budget: 20 * time.Millisecond, Seed: 5}.Backoff()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d, ok := b.Next(); !ok {
			return // budget tripped, as it must
		} else {
			time.Sleep(d)
		}
	}
	t.Fatal("time budget never exhausted the backoff")
}
