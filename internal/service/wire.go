// Package service is the distributed face of the generation engine: a
// coordinator that accepts ATPG jobs over HTTP/JSON, compiles each circuit
// once into a content-addressed cache, cuts every job's fault universe into
// the same scheduler work units a local run uses, and leases those units to
// remote workers under timeout-protected leases; workers stream verified
// patterns back through the coordinator for cross-worker dropping, and the
// coordinator feeds the reported outcomes through the core's canonical
// fault-order merge and static compaction, so a distributed run is
// bit-identical in statuses (and canonical in pattern order) to a
// single-process run with the same options whenever the interleaved
// simulation is off.  See docs/ARCHITECTURE.md "Service".
package service

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// API is the URL prefix of the coordinator's HTTP endpoints.
const API = "/api/v1"

// WireFault is a path delay fault in wire form: the path's nets by name,
// input to output, and the launch transition ("rising" or "falling").
type WireFault struct {
	Nets       []string `json:"nets"`
	Transition string   `json:"transition"`
}

// EncodeFault renders a fault with the circuit's net names.
func EncodeFault(c *circuit.Circuit, f paths.Fault) WireFault {
	nets := make([]string, len(f.Path.Nets))
	for i, n := range f.Path.Nets {
		nets[i] = c.NetName(n)
	}
	return WireFault{Nets: nets, Transition: f.Transition.String()}
}

// DecodeFault resolves a wire fault against the circuit and validates that
// the nets form a structural path.
func DecodeFault(c *circuit.Circuit, wf WireFault) (paths.Fault, error) {
	var t paths.Transition
	switch wf.Transition {
	case "rising":
		t = paths.Rising
	case "falling":
		t = paths.Falling
	default:
		return paths.Fault{}, fmt.Errorf("service: unknown transition %q (want rising or falling)", wf.Transition)
	}
	p := paths.Path{Nets: make([]circuit.NetID, len(wf.Nets))}
	for i, name := range wf.Nets {
		id := c.NetByName(name)
		if id == circuit.InvalidNet {
			return paths.Fault{}, fmt.Errorf("service: circuit %s has no net %q", c.Name, name)
		}
		p.Nets[i] = id
	}
	if err := p.Validate(c); err != nil {
		return paths.Fault{}, fmt.Errorf("service: invalid fault path: %w", err)
	}
	return paths.Fault{Path: p, Transition: t}, nil
}

// EncodeFaults maps EncodeFault over a fault list.
func EncodeFaults(c *circuit.Circuit, faults []paths.Fault) []WireFault {
	out := make([]WireFault, len(faults))
	for i, f := range faults {
		out[i] = EncodeFault(c, f)
	}
	return out
}

// DecodeFaults maps DecodeFault over a wire fault list.
func DecodeFaults(c *circuit.Circuit, wfs []WireFault) ([]paths.Fault, error) {
	out := make([]paths.Fault, len(wfs))
	for i, wf := range wfs {
		f, err := DecodeFault(c, wf)
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

// JobOptions mirror the engine options of the atpg facade in wire form.
// Zero values select the engine defaults (robust mode, full word width, both
// phases on, simulation after every L patterns), so an empty object is a
// valid configuration; the No* spellings keep "enabled" the zero value.
type JobOptions struct {
	Mode            string `json:"mode,omitempty"`         // "robust" (default) or "nonrobust"
	WordWidth       int    `json:"word_width,omitempty"`   // 1..logic.MaxWordWidth; 0 = 64
	Backtracks      int    `json:"backtracks,omitempty"`   // APTPG backtrack limit; 0 = default
	NoFPTPG         bool   `json:"no_fptpg,omitempty"`     // disable the fault-parallel phase
	NoAPTPG         bool   `json:"no_aptpg,omitempty"`     // disable the alternative-parallel phase
	SimInterval     *int   `json:"sim_interval,omitempty"` // nil = word width; 0 disables
	Schedule        string `json:"schedule,omitempty"`     // "static" (default) or "steal"
	Escalate        int    `json:"escalate,omitempty"`     // escalation width; 0 = off
	FirstPassBudget int    `json:"first_pass_budget,omitempty"`
	Guided          bool   `json:"guided,omitempty"`
	Compact         string `json:"compact,omitempty"`    // "none" (default), "reverse" or "full"
	XFill           string `json:"xfill,omitempty"`      // "zero" (default), "one" or "random"
	XFillSeed       int64  `json:"xfill_seed,omitempty"` // seed of the random X-fill
}

// ToCore resolves the wire options into normalized core options.
func (o JobOptions) ToCore() (core.Options, error) {
	mode := sensitize.Robust
	if o.Mode != "" {
		switch o.Mode {
		case "robust":
			mode = sensitize.Robust
		case "nonrobust":
			mode = sensitize.Nonrobust
		default:
			return core.Options{}, fmt.Errorf("service: unknown mode %q (want robust or nonrobust)", o.Mode)
		}
	}
	opts := core.DefaultOptions(mode)
	if o.WordWidth != 0 {
		if o.WordWidth < 1 || o.WordWidth > logic.MaxWordWidth {
			return core.Options{}, fmt.Errorf("service: word width %d out of range 1..%d", o.WordWidth, logic.MaxWordWidth)
		}
		opts.WordWidth = o.WordWidth
	}
	if o.Backtracks != 0 {
		if o.Backtracks < 1 {
			return core.Options{}, fmt.Errorf("service: backtrack limit %d out of range", o.Backtracks)
		}
		opts.MaxBacktracks = o.Backtracks
	}
	opts.UseFPTPG = !o.NoFPTPG
	opts.UseAPTPG = !o.NoAPTPG
	if o.SimInterval != nil {
		if *o.SimInterval < 0 {
			return core.Options{}, fmt.Errorf("service: negative fault-simulation interval %d", *o.SimInterval)
		}
		opts.FaultSimInterval = *o.SimInterval
	} else {
		opts.FaultSimInterval = opts.WordWidth
	}
	if o.Schedule != "" {
		p, err := sched.ParsePolicy(o.Schedule)
		if err != nil {
			return core.Options{}, err
		}
		opts.Schedule = p
	}
	if o.Escalate != 0 {
		if o.Escalate < 0 || o.Escalate > logic.MaxWordWidth {
			return core.Options{}, fmt.Errorf("service: escalation width %d out of range 0..%d", o.Escalate, logic.MaxWordWidth)
		}
		opts.EscalationWidth = o.Escalate
	}
	if o.FirstPassBudget != 0 {
		if o.FirstPassBudget < 1 {
			return core.Options{}, fmt.Errorf("service: first-pass budget %d out of range", o.FirstPassBudget)
		}
		opts.FirstPassBacktracks = o.FirstPassBudget
	}
	opts.GuidedEscalation = o.Guided
	if o.Compact != "" {
		lvl, err := compact.ParseLevel(o.Compact)
		if err != nil {
			return core.Options{}, err
		}
		opts.Compaction = lvl
	}
	switch o.XFill {
	case "", "zero":
		// compact.ZeroFill is the normalize() default.
	case "one":
		opts.CompactionXFill = compact.OneFill()
	case "random":
		opts.CompactionXFill = compact.RandomFill(o.XFillSeed)
	default:
		return core.Options{}, fmt.Errorf("service: unknown xfill %q (want zero, one or random)", o.XFill)
	}
	return opts, nil
}

// WireOutcome is a core.RemoteOutcome in wire form: status and phase by
// name, patterns in the "V1 -> V2" text notation.
type WireOutcome struct {
	Status     string `json:"status"`
	Phase      string `json:"phase,omitempty"`
	Decisions  int    `json:"decisions,omitempty"`
	Backtracks int    `json:"backtracks,omitempty"`
	Test       string `json:"test,omitempty"`
	Raw        string `json:"raw,omitempty"`
}

// statusNames matches core.Status.String.
var statusNames = map[string]core.Status{
	"pending":                core.Pending,
	"tested":                 core.Tested,
	"redundant":              core.Redundant,
	"aborted":                core.Aborted,
	"detected-by-simulation": core.DetectedBySim,
}

// phaseNames matches core.Phase.String.
var phaseNames = map[string]core.Phase{
	"none":       core.PhaseNone,
	"fptpg":      core.PhaseFPTPG,
	"aptpg":      core.PhaseAPTPG,
	"simulation": core.PhaseSimulation,
	"pruning":    core.PhasePruning,
}

// EncodeOutcome renders a remote outcome for the wire.
func EncodeOutcome(o core.RemoteOutcome) WireOutcome {
	w := WireOutcome{
		Status:     o.Status.String(),
		Phase:      o.Phase.String(),
		Decisions:  o.Decisions,
		Backtracks: o.Backtracks,
	}
	if o.Status == core.Tested {
		w.Test = o.Test.String()
		if o.Raw.Len() > 0 {
			w.Raw = o.Raw.String()
		}
	}
	return w
}

// DecodeOutcome parses a wire outcome.
func DecodeOutcome(w WireOutcome) (core.RemoteOutcome, error) {
	st, ok := statusNames[w.Status]
	if !ok {
		return core.RemoteOutcome{}, fmt.Errorf("service: unknown status %q", w.Status)
	}
	ph, ok := phaseNames[w.Phase]
	if !ok && w.Phase != "" {
		return core.RemoteOutcome{}, fmt.Errorf("service: unknown phase %q", w.Phase)
	}
	o := core.RemoteOutcome{Status: st, Phase: ph, Decisions: w.Decisions, Backtracks: w.Backtracks}
	if st == core.Tested {
		p, err := pattern.ParsePair(w.Test)
		if err != nil {
			return core.RemoteOutcome{}, fmt.Errorf("service: bad test pattern: %w", err)
		}
		o.Test = p
		if w.Raw != "" {
			raw, err := pattern.ParsePair(w.Raw)
			if err != nil {
				return core.RemoteOutcome{}, fmt.Errorf("service: bad raw pattern: %w", err)
			}
			o.Raw = raw
		}
	}
	return o, nil
}

// DecodeOutcomes maps DecodeOutcome over a list.
func DecodeOutcomes(ws []WireOutcome) ([]core.RemoteOutcome, error) {
	out := make([]core.RemoteOutcome, len(ws))
	for i, w := range ws {
		o, err := DecodeOutcome(w)
		if err != nil {
			return nil, fmt.Errorf("outcome %d: %w", i, err)
		}
		out[i] = o
	}
	return out, nil
}

// WireSpec is a core.PassSpec in wire form.
type WireSpec struct {
	Width  int  `json:"width"`
	Budget int  `json:"budget"`
	Final  bool `json:"final"`
}

// EncodeSpec and DecodeSpec convert pass specs.
func EncodeSpec(ps core.PassSpec) WireSpec {
	return WireSpec{Width: ps.Width, Budget: ps.Budget, Final: ps.Final}
}
func DecodeSpec(ws WireSpec) core.PassSpec {
	return core.PassSpec{Width: ws.Width, Budget: ws.Budget, Final: ws.Final}
}

// WireUnit is one leased work unit: its stable ID within the pass and the
// fault indices (into the job's fault list) it groups.  Workers process the
// unit whole — regrouping would change FPTPG batch composition and with it
// the outcomes.
type WireUnit struct {
	ID     int   `json:"id"`
	Faults []int `json:"faults"`
}

// WirePattern is one verified pattern in the cross-worker exchange: the
// publishing worker (so workers can skip their own) and the filled pair.
type WirePattern struct {
	Worker string `json:"worker"`
	Test   string `json:"test"`
}

// WireResult is one fault's result as reported to clients (events and final
// results).  PatternIndex refers to the job's merged, compacted test set; in
// settle events it is -1 (indices exist only after the merge).
type WireResult struct {
	Fault        WireFault `json:"fault"`
	Describe     string    `json:"describe"`
	Status       string    `json:"status"`
	Phase        string    `json:"phase,omitempty"`
	PatternIndex int       `json:"pattern_index"`
	Decisions    int       `json:"decisions,omitempty"`
	Backtracks   int       `json:"backtracks,omitempty"`
	Test         string    `json:"test,omitempty"`
	Err          string    `json:"err,omitempty"`
}

// EncodeResult renders a fault result for the wire.  patternIndex overrides
// the result's own index (settle events pass -1: merge indices do not exist
// yet when a fault settles).
func EncodeResult(c *circuit.Circuit, r core.FaultResult, patternIndex int) WireResult {
	w := WireResult{
		Fault:        EncodeFault(c, r.Fault),
		Describe:     r.Fault.Describe(c),
		Status:       r.Status.String(),
		Phase:        r.Phase.String(),
		PatternIndex: patternIndex,
		Decisions:    r.Decisions,
		Backtracks:   r.Backtracks,
	}
	if r.Status == core.Tested {
		w.Test = r.Test.String()
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return w
}

// DecodeResult parses a wire result back into a core fault result (the
// inverse of EncodeResult, used by the atpg facade's remote engine).
func DecodeResult(c *circuit.Circuit, w WireResult) (core.FaultResult, error) {
	f, err := DecodeFault(c, w.Fault)
	if err != nil {
		return core.FaultResult{}, err
	}
	st, ok := statusNames[w.Status]
	if !ok {
		return core.FaultResult{}, fmt.Errorf("service: unknown status %q", w.Status)
	}
	ph, ok := phaseNames[w.Phase]
	if !ok && w.Phase != "" {
		return core.FaultResult{}, fmt.Errorf("service: unknown phase %q", w.Phase)
	}
	r := core.FaultResult{
		Fault:        f,
		Status:       st,
		Phase:        ph,
		PatternIndex: w.PatternIndex,
		Decisions:    w.Decisions,
		Backtracks:   w.Backtracks,
	}
	if w.Test != "" {
		p, err := pattern.ParsePair(w.Test)
		if err != nil {
			return core.FaultResult{}, fmt.Errorf("service: bad test pattern: %w", err)
		}
		r.Test = p
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r, nil
}

// Request and response bodies of the coordinator API.
type (
	// SubmitRequest creates a job.  CircuitBench may be omitted when the
	// coordinator already holds the circuit under CircuitHash (the cache-hit
	// fast path); submitting with only an unknown hash yields HTTP 409 and
	// the client retries with the bench text.  Either CircuitHash or
	// CircuitBench must be set.
	SubmitRequest struct {
		Name         string      `json:"name,omitempty"`
		CircuitHash  string      `json:"circuit_hash,omitempty"`
		CircuitBench string      `json:"circuit_bench,omitempty"`
		Options      JobOptions  `json:"options"`
		Faults       []WireFault `json:"faults"`
	}

	SubmitResponse struct {
		JobID       string `json:"job_id"`
		CircuitHash string `json:"circuit_hash"`
		CacheHit    bool   `json:"cache_hit"`
		Faults      int    `json:"faults"`
	}

	// JobStatus reports a job's lifecycle state and dispatch counters.
	JobStatus struct {
		JobID    string `json:"job_id"`
		Name     string `json:"name,omitempty"`
		State    string `json:"state"` // queued, running, done, canceled, failed
		Error    string `json:"error,omitempty"`
		Faults   int    `json:"faults"`
		Settled  int    `json:"settled"`
		CacheHit bool   `json:"cache_hit"`
		// Lease dispatch counters, accumulated over the job's passes.
		Leases     int `json:"leases"`
		Requeues   int `json:"requeues"`
		Duplicates int `json:"duplicates"`
		// Replayed counts units restored from the ledger on resume: their
		// outcomes were applied without re-dispatching any work.
		Replayed int `json:"replayed,omitempty"`
	}

	// LeaseRequest asks for up to MaxUnits units of any running job.
	LeaseRequest struct {
		Worker   string `json:"worker"`
		MaxUnits int    `json:"max_units,omitempty"`
	}

	// LeaseResponse hands out a batch of whole units of one job's current
	// pass.  The worker must post results for each unit before the lease
	// TTL expires, or the units are requeued to other workers.
	LeaseResponse struct {
		JobID string     `json:"job_id"`
		Pass  int        `json:"pass"`
		Spec  WireSpec   `json:"spec"`
		Units []WireUnit `json:"units"`
		TTLMS int64      `json:"ttl_ms"`
		SimOn bool       `json:"sim_on"`
	}

	// JobSpec is what a worker needs to set up a job-local generator.
	JobSpec struct {
		JobID       string      `json:"job_id"`
		CircuitHash string      `json:"circuit_hash"`
		Options     JobOptions  `json:"options"`
		Faults      []WireFault `json:"faults"`
	}

	// UnitResult reports one processed unit: the leased unit (echoed so the
	// coordinator applies outcomes positionally) and one outcome per fault.
	UnitResult struct {
		ID       int           `json:"id"`
		Faults   []int         `json:"faults"`
		Outcomes []WireOutcome `json:"outcomes"`
	}

	// PostResults reports a batch of processed units, the verified patterns
	// the batch produced (for the cross-worker exchange) and the worker's
	// search-effort delta.
	PostResults struct {
		Worker   string        `json:"worker"`
		Pass     int           `json:"pass"`
		Units    []UnitResult  `json:"units"`
		Patterns []WirePattern `json:"patterns,omitempty"`
		Effort   core.Stats    `json:"effort"`
	}

	// PostResultsResponse tells the worker how the batch was received.
	// Stale means the pass (or the job) is over and the batch was discarded
	// — not an error, just at-least-once delivery meeting a finished pass.
	PostResultsResponse struct {
		Stale    bool `json:"stale,omitempty"`
		Canceled bool `json:"canceled,omitempty"`
	}

	// PatternsResponse is the exchange delta since the requested cursor.
	// Dropped counts patterns that aged out of the bounded exchange buffer
	// before this worker fetched them (backpressure, not an error: missing
	// foreign patterns only forgo drop opportunities).
	PatternsResponse struct {
		Patterns []WirePattern `json:"patterns"`
		Next     int           `json:"next"`
		Dropped  int           `json:"dropped,omitempty"`
	}

	// EventsResponse is a page of settle events starting at cursor From.
	EventsResponse struct {
		Events []WireResult `json:"events"`
		Next   int          `json:"next"`
		Done   bool         `json:"done"`
	}

	// ResultsResponse is a finished job's full outcome: input-ordered
	// results, the merged (and compacted) test set in pattern.Set text form,
	// and the aggregated statistics.
	ResultsResponse struct {
		JobID   string       `json:"job_id"`
		State   string       `json:"state"`
		Results []WireResult `json:"results"`
		Tests   string       `json:"tests"`
		Stats   core.Stats   `json:"stats"`
	}

	// ErrorResponse is the body of every non-2xx response.
	ErrorResponse struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
)
