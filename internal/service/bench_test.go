package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServiceCache measures the compiled-circuit cache on the
// canonical service workload: one client submitting the same design
// repeatedly, hash-first.  The first submission misses twice (the unknown
// hash probe, then the compile); the rest ride the cache.  The reported
// hitrate metric is gated in CI (benchcmp -min-metric): it dropping below
// 0.5 means hash-first submission stopped hitting the cache — every job
// would re-parse and re-levelize its circuit.
func BenchmarkServiceCache(b *testing.B) {
	_, text := benchText(b, "c432")
	ctx := context.Background()
	var hits, misses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, err := NewCoordinator(Config{})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(co)
		cl := NewClient(srv.URL)
		for k := 0; k < 4; k++ {
			// Zero faults: the job completes without workers, leaving the
			// submission path (and the cache) as the measured work.
			sub, err := cl.SubmitBench(ctx, "c432", text, JobOptions{SimInterval: intp(0)}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Wait(ctx, sub.JobID, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		h, m := co.Cache().Stats()
		hits += h
		misses += m
		srv.Close()
		co.Close()
	}
	b.ReportMetric(float64(hits)/float64(hits+misses), "hitrate")
}
