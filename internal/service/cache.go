package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/circuit"
)

// HashBench returns the content address of a circuit: the hex SHA-256 of its
// .bench text.  Clients hash the exact bytes they would submit, so a second
// submission of the same design can reference the hash alone and skip both
// the upload and the parse+levelize.
func HashBench(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}

// Cache is the compiled-circuit cache: parsed, levelized circuits keyed by
// the SHA-256 of their .bench text.  Circuits are immutable and shared
// between jobs and workers, so a hit saves the whole parse+levelize (and,
// through circuit.Memo, the cached testability measures that hang off the
// circuit).  A simple bounded FIFO keeps memory flat under many distinct
// designs; hits and misses are counted for the BenchmarkServiceCache gate.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	order   []string // insertion order, for FIFO eviction
	hits    int
	misses  int
}

type cacheEntry struct {
	c     *circuit.Circuit
	bench string
}

// NewCache builds a cache bounded to max circuits (0 selects 64).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 64
	}
	return &Cache{max: max, entries: make(map[string]*cacheEntry)}
}

// Get returns the compiled circuit for the hash, if cached.
func (ca *Cache) Get(hash string) (*circuit.Circuit, bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	e, ok := ca.entries[hash]
	if ok {
		ca.hits++
		return e.c, true
	}
	ca.misses++
	return nil, false
}

// Bench returns the .bench text of a cached circuit (workers fetch it to
// compile their own shared copy via their local cache).
func (ca *Cache) Bench(hash string) (string, bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if e, ok := ca.entries[hash]; ok {
		return e.bench, true
	}
	return "", false
}

// Compile parses+levelizes the bench text, stores it under its content hash
// and returns circuit and hash.  A hash already cached is returned as-is
// (hit); the text is only parsed on a miss.
func (ca *Cache) Compile(name, bench string) (*circuit.Circuit, string, error) {
	hash := HashBench(bench)
	ca.mu.Lock()
	if e, ok := ca.entries[hash]; ok {
		ca.hits++
		ca.mu.Unlock()
		return e.c, hash, nil
	}
	ca.misses++
	ca.mu.Unlock()

	// Parse outside the lock: compiling a big design must not stall hits.
	if name == "" {
		name = hash[:12]
	}
	c, err := circuit.ParseBench(name, strings.NewReader(bench))
	if err != nil {
		return nil, "", fmt.Errorf("service: compiling circuit %s: %w", hash[:12], err)
	}

	ca.mu.Lock()
	defer ca.mu.Unlock()
	if e, ok := ca.entries[hash]; ok {
		return e.c, hash, nil // a concurrent compile won the race; share its copy
	}
	for len(ca.order) >= ca.max {
		oldest := ca.order[0]
		ca.order = ca.order[1:]
		delete(ca.entries, oldest)
	}
	ca.entries[hash] = &cacheEntry{c: c, bench: bench}
	ca.order = append(ca.order, hash)
	return c, hash, nil
}

// Stats returns the hit/miss counters.
func (ca *Cache) Stats() (hits, misses int) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.hits, ca.misses
}
