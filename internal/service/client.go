package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/retry"
)

// ErrUnknownCircuit reports a hash-only submission whose circuit the
// coordinator does not hold; the caller retries with the bench text.
var ErrUnknownCircuit = errors.New("service: circuit not cached on coordinator")

// Per-endpoint attempt deadlines.  Every request context is additionally
// bounded by the caller's own deadline (context.WithTimeout keeps the
// earlier of the two), so these only cap how long one attempt may hang on
// a dead wire — the old single 60s http.Client.Timeout also capped the
// long-polls regardless of the caller's intent, which is exactly the bug
// these replace.
const (
	// opTimeout bounds one attempt of a short control-plane call
	// (status, cancel, lease, spec, patterns, posting results).
	opTimeout = 15 * time.Second
	// submitTimeout bounds one submit attempt, which may carry the full
	// bench text and pay for parse + levelization on the coordinator.
	submitTimeout = 60 * time.Second
	// fetchTimeout bounds one bulk download attempt (results, bench text).
	fetchTimeout = 60 * time.Second
	// eventsMargin rides on top of the server's long-poll wait window: the
	// attempt deadline is the requested wait plus this slack, so a long
	// poll is never cut short by the client while the server still holds it.
	eventsMargin = 15 * time.Second
)

// APIError is a non-2xx coordinator response.  It exposes its status code
// (and any Retry-After hint) through the interfaces internal/retry
// classifies on: 5xx and 429 retry, other 4xx fail fast.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the parsed Retry-After header, 0 when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s (%d %s)", e.Message, e.Status, e.Code)
}

// HTTPStatus implements retry.HTTPStatus.
func (e *APIError) HTTPStatus() int { return e.Status }

// RetryAfterHint implements retry.RetryAfterHint.
func (e *APIError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Client talks to a coordinator.  It is used both by end clients (submit,
// wait, fetch results) and by workers (lease, post results); all methods are
// safe for concurrent use.
//
// Every call runs under a per-endpoint retry policy: idempotent reads and
// the at-least-once-safe writes (lease — a lost lease simply expires;
// result posts — the coordinator's first-completion-wins dedup absorbs the
// duplicate) retry any transient failure, while job submission only retries
// when the request provably never reached the coordinator, so a blip cannot
// double-submit a job.
type Client struct {
	base string
	hc   *http.Client

	// wide retries transient faults broadly; strict only provably-unsent
	// requests.  Tests tighten these through WithRetryPolicy.
	wide   retry.Policy
	strict retry.Policy
}

// ClientOption tunes a Client at construction.
type ClientOption func(*Client)

// WithTransport replaces the HTTP transport — the chaos injector's
// fault-wrapped transport enters here.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(cl *Client) { cl.hc.Transport = rt }
}

// WithRetryPolicy overrides the transient-retry policy of every endpoint
// (submission keeps its strict not-sent-only classification but adopts the
// delays and budget).  Tests use it to pin seeds and shrink delays.
func WithRetryPolicy(p retry.Policy) ClientOption {
	return func(cl *Client) {
		cl.wide = p
		cl.strict = p
		cl.strict.Classify = retry.ClassifyStrict
	}
}

// NewClient builds a client for the coordinator at base (e.g.
// "http://127.0.0.1:9090").
func NewClient(base string, opts ...ClientOption) *Client {
	cl := &Client{
		base: base,
		// No global http.Client.Timeout: attempts are bounded per endpoint,
		// long-polls by their own window (see the timeout constants).
		hc:     &http.Client{},
		wide:   retry.Policy{Initial: 100 * time.Millisecond, Max: 2 * time.Second, Attempts: 4},
		strict: retry.Policy{Initial: 100 * time.Millisecond, Max: 2 * time.Second, Attempts: 4, Classify: retry.ClassifyStrict},
	}
	for _, opt := range opts {
		opt(cl)
	}
	return cl
}

// call performs one JSON exchange under the retry policy, bounding each
// attempt by timeout (0 = the caller's context alone).  Returns the HTTP
// status of the last attempt; non-2xx responses come back as *APIError.
func (cl *Client) call(ctx context.Context, p retry.Policy, timeout time.Duration, method, path string, in, out any) (int, error) {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = b
	}
	var code int
	err := retry.Do(ctx, p, func(ctx context.Context) error {
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		var err error
		code, err = cl.doOnce(ctx, method, path, body, out)
		return err
	})
	return code, err
}

// doOnce is one attempt: the full response body is read before decoding, so
// a severed body surfaces as a transient read error rather than a partially
// filled out value.
func (cl *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.base+API+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, fmt.Errorf("service: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		apiErr := &APIError{
			Status:     resp.StatusCode,
			Code:       "error",
			Message:    resp.Status,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		var body ErrorResponse
		if json.Unmarshal(raw, &body) == nil && body.Code != "" {
			apiErr.Code, apiErr.Message = body.Code, body.Error
		}
		if apiErr.Code == "unknown-circuit" {
			// Keep the APIError in the chain so retry classification still
			// sees the 409 while callers match ErrUnknownCircuit.
			return resp.StatusCode, fmt.Errorf("%w: %w", ErrUnknownCircuit, apiErr)
		}
		return resp.StatusCode, apiErr
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// Submit creates a job from an explicit request.  A hash-only request whose
// circuit the coordinator does not hold fails with ErrUnknownCircuit.
// Submission is not idempotent, so only provably-unsent requests retry.
func (cl *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	_, err := cl.call(ctx, cl.strict, submitTimeout, http.MethodPost, "/jobs", req, &resp)
	return resp, err
}

// SubmitBench submits a job hash-first: the cheap hash-only request rides
// the compiled-circuit cache, and only on ErrUnknownCircuit is the bench
// text uploaded.
func (cl *Client) SubmitBench(ctx context.Context, name, bench string, opts JobOptions, faults []WireFault) (SubmitResponse, error) {
	req := SubmitRequest{Name: name, CircuitHash: HashBench(bench), Options: opts, Faults: faults}
	resp, err := cl.Submit(ctx, req)
	if errors.Is(err, ErrUnknownCircuit) {
		req.CircuitBench = bench
		resp, err = cl.Submit(ctx, req)
	}
	return resp, err
}

// Status fetches a job's lifecycle state and dispatch counters.
func (cl *Client) Status(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := cl.call(ctx, cl.wide, opTimeout, http.MethodGet, "/jobs/"+jobID, nil, &st)
	return st, err
}

// Events long-polls the job's settle-event stream from the given cursor.
// The attempt deadline tracks the requested wait window, so the caller's
// context — not a fixed client timeout — decides how long to keep polling.
func (cl *Client) Events(ctx context.Context, jobID string, from, waitMS int) (EventsResponse, error) {
	var resp EventsResponse
	path := fmt.Sprintf("/jobs/%s/events?from=%d&wait_ms=%d", jobID, from, waitMS)
	timeout := time.Duration(waitMS)*time.Millisecond + eventsMargin
	_, err := cl.call(ctx, cl.wide, timeout, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Results fetches a finished job's full outcome.  Because the coordinator
// and its ledger keep finished results, a re-fetch after a connection blip
// returns the identical payload.
func (cl *Client) Results(ctx context.Context, jobID string) (ResultsResponse, error) {
	var resp ResultsResponse
	_, err := cl.call(ctx, cl.wide, fetchTimeout, http.MethodGet, "/jobs/"+jobID+"/results", nil, &resp)
	return resp, err
}

// Cancel cancels a job and returns its status.  Cancellation is idempotent
// on the coordinator, so transient failures retry.
func (cl *Client) Cancel(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := cl.call(ctx, cl.wide, opTimeout, http.MethodDelete, "/jobs/"+jobID, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state.  Transient poll
// failures — a restarting coordinator, a severed connection — back off with
// jitter and resume; only a terminal error (the job is unknown, the caller's
// context ended) surfaces.  The context owns the overall deadline.
func (cl *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	reconnect := cl.wide
	reconnect.Attempts = -1 // the context, not an attempt budget, ends the wait
	bo := reconnect.Backoff()
	for {
		st, err := cl.Status(ctx, jobID)
		if err != nil {
			if ctx.Err() != nil || retry.Classify(err) == retry.Terminal {
				return st, err
			}
			if !bo.Sleep(ctx, err) {
				return st, err
			}
			continue
		}
		bo.Reset()
		switch st.State {
		case stateDone, stateCanceled, stateFailed:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Spec fetches what a worker needs to build a job-local generator.
func (cl *Client) Spec(ctx context.Context, jobID string) (JobSpec, error) {
	var spec JobSpec
	_, err := cl.call(ctx, cl.wide, opTimeout, http.MethodGet, "/jobs/"+jobID+"/spec", nil, &spec)
	return spec, err
}

// CircuitBench fetches the .bench text of a cached circuit.
func (cl *Client) CircuitBench(ctx context.Context, hash string) (string, error) {
	var text string
	err := retry.Do(ctx, cl.wide, func(ctx context.Context) error {
		ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.base+API+"/circuits/"+hash, nil)
		if err != nil {
			return err
		}
		resp, err := cl.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return &APIError{Status: resp.StatusCode, Code: "unknown-circuit", Message: "circuit not cached"}
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		text = string(b)
		return nil
	})
	return text, err
}

// Lease asks the coordinator for up to maxUnits work units.  ok is false
// when nothing is leasable right now (HTTP 204).  Retrying a lost lease is
// safe: if the grant never arrived, its TTL expires and the units requeue.
func (cl *Client) Lease(ctx context.Context, worker string, maxUnits int) (LeaseResponse, bool, error) {
	var resp LeaseResponse
	code, err := cl.call(ctx, cl.wide, opTimeout, http.MethodPost, "/lease", LeaseRequest{Worker: worker, MaxUnits: maxUnits}, &resp)
	if err != nil {
		return resp, false, err
	}
	return resp, code == http.StatusOK, nil
}

// Patterns fetches the job's pattern-exchange delta since the cursor.
func (cl *Client) Patterns(ctx context.Context, jobID string, from int) (PatternsResponse, error) {
	var resp PatternsResponse
	path := fmt.Sprintf("/jobs/%s/patterns?from=%d", jobID, from)
	_, err := cl.call(ctx, cl.wide, opTimeout, http.MethodGet, path, nil, &resp)
	return resp, err
}

// PostUnitResults reports a batch of processed units.  Retrying a post whose
// response was lost is safe: the coordinator's first-completion-wins dedup
// flags the duplicate and applies nothing twice.
func (cl *Client) PostUnitResults(ctx context.Context, jobID string, post PostResults) (PostResultsResponse, error) {
	var resp PostResultsResponse
	_, err := cl.call(ctx, cl.wide, opTimeout, http.MethodPost, "/jobs/"+jobID+"/results", post, &resp)
	return resp, err
}
