package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrUnknownCircuit reports a hash-only submission whose circuit the
// coordinator does not hold; the caller retries with the bench text.
var ErrUnknownCircuit = errors.New("service: circuit not cached on coordinator")

// APIError is a non-2xx coordinator response.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Client talks to a coordinator.  It is used both by end clients (submit,
// wait, fetch results) and by workers (lease, post results); all methods are
// safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the coordinator at base (e.g.
// "http://127.0.0.1:9090").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: 60 * time.Second}}
}

// do performs one JSON round trip.  A nil in skips the request body, a nil
// out discards the response body.  Returns the HTTP status code; non-2xx
// responses come back as *APIError.
func (cl *Client) do(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.base+API+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode, Code: "error", Message: resp.Status}
		var body ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Code != "" {
			apiErr.Code, apiErr.Message = body.Code, body.Error
		}
		if apiErr.Code == "unknown-circuit" {
			return resp.StatusCode, fmt.Errorf("%w (%s)", ErrUnknownCircuit, apiErr.Message)
		}
		return resp.StatusCode, apiErr
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit creates a job from an explicit request.  A hash-only request whose
// circuit the coordinator does not hold fails with ErrUnknownCircuit.
func (cl *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	_, err := cl.do(ctx, http.MethodPost, "/jobs", req, &resp)
	return resp, err
}

// SubmitBench submits a job hash-first: the cheap hash-only request rides
// the compiled-circuit cache, and only on ErrUnknownCircuit is the bench
// text uploaded.
func (cl *Client) SubmitBench(ctx context.Context, name, bench string, opts JobOptions, faults []WireFault) (SubmitResponse, error) {
	req := SubmitRequest{Name: name, CircuitHash: HashBench(bench), Options: opts, Faults: faults}
	resp, err := cl.Submit(ctx, req)
	if errors.Is(err, ErrUnknownCircuit) {
		req.CircuitBench = bench
		resp, err = cl.Submit(ctx, req)
	}
	return resp, err
}

// Status fetches a job's lifecycle state and dispatch counters.
func (cl *Client) Status(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := cl.do(ctx, http.MethodGet, "/jobs/"+jobID, nil, &st)
	return st, err
}

// Events long-polls the job's settle-event stream from the given cursor.
func (cl *Client) Events(ctx context.Context, jobID string, from, waitMS int) (EventsResponse, error) {
	var resp EventsResponse
	path := fmt.Sprintf("/jobs/%s/events?from=%d&wait_ms=%d", jobID, from, waitMS)
	_, err := cl.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Results fetches a finished job's full outcome.
func (cl *Client) Results(ctx context.Context, jobID string) (ResultsResponse, error) {
	var resp ResultsResponse
	_, err := cl.do(ctx, http.MethodGet, "/jobs/"+jobID+"/results", nil, &resp)
	return resp, err
}

// Cancel cancels a job and returns its status.
func (cl *Client) Cancel(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := cl.do(ctx, http.MethodDelete, "/jobs/"+jobID, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state.
func (cl *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := cl.Status(ctx, jobID)
		if err != nil {
			return st, err
		}
		switch st.State {
		case stateDone, stateCanceled, stateFailed:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Spec fetches what a worker needs to build a job-local generator.
func (cl *Client) Spec(ctx context.Context, jobID string) (JobSpec, error) {
	var spec JobSpec
	_, err := cl.do(ctx, http.MethodGet, "/jobs/"+jobID+"/spec", nil, &spec)
	return spec, err
}

// CircuitBench fetches the .bench text of a cached circuit.
func (cl *Client) CircuitBench(ctx context.Context, hash string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.base+API+"/circuits/"+hash, nil)
	if err != nil {
		return "", err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Code: "unknown-circuit", Message: "circuit not cached"}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Lease asks the coordinator for up to maxUnits work units.  ok is false
// when nothing is leasable right now (HTTP 204).
func (cl *Client) Lease(ctx context.Context, worker string, maxUnits int) (LeaseResponse, bool, error) {
	var resp LeaseResponse
	code, err := cl.do(ctx, http.MethodPost, "/lease", LeaseRequest{Worker: worker, MaxUnits: maxUnits}, &resp)
	if err != nil {
		return resp, false, err
	}
	return resp, code == http.StatusOK, nil
}

// Patterns fetches the job's pattern-exchange delta since the cursor.
func (cl *Client) Patterns(ctx context.Context, jobID string, from int) (PatternsResponse, error) {
	var resp PatternsResponse
	path := fmt.Sprintf("/jobs/%s/patterns?from=%d", jobID, from)
	_, err := cl.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// PostUnitResults reports a batch of processed units.
func (cl *Client) PostUnitResults(ctx context.Context, jobID string, post PostResults) (PostResultsResponse, error) {
	var resp PostResultsResponse
	_, err := cl.do(ctx, http.MethodPost, "/jobs/"+jobID+"/results", post, &resp)
	return resp, err
}
