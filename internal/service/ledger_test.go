package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/paths"
)

// driveWorker is a hand-cranked worker: it leases units one at a time,
// processes them through a job-local generator and posts the results, until
// it has completed n units or the job reaches a terminal state.  It returns
// the unit IDs it processed, by pass — the exact accounting the resume test
// needs to prove replayed units are never re-dispatched.
func driveWorker(t *testing.T, cl *Client, worker, jobID string, c *circuit.Circuit, n int) map[int][]int {
	t.Helper()
	ctx := context.Background()
	var (
		gen    *core.Generator
		faults []paths.Fault
	)
	processed := make(map[int][]int)
	done := 0
	for done < n {
		lease, ok, err := cl.Lease(ctx, worker, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			st, err := cl.Status(ctx, jobID)
			if err != nil {
				t.Fatal(err)
			}
			switch st.State {
			case stateDone, stateCanceled, stateFailed:
				return processed
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if gen == nil {
			spec, err := cl.Spec(ctx, lease.JobID)
			if err != nil {
				t.Fatal(err)
			}
			opts, err := spec.Options.ToCore()
			if err != nil {
				t.Fatal(err)
			}
			gen = core.New(c, opts)
			if faults, err = DecodeFaults(c, spec.Faults); err != nil {
				t.Fatal(err)
			}
		}
		spec := DecodeSpec(lease.Spec)
		post := PostResults{Worker: worker, Pass: lease.Pass}
		for _, u := range lease.Units {
			ufaults := make([]paths.Fault, len(u.Faults))
			for i, fi := range u.Faults {
				ufaults[i] = faults[fi]
			}
			prev := gen.Stats()
			outs := gen.ProcessRemoteUnit(ctx, ufaults, spec, nil)
			post.Effort = gen.Stats().EffortDelta(prev)
			wire := make([]WireOutcome, len(outs))
			for i, o := range outs {
				wire[i] = EncodeOutcome(o)
			}
			post.Units = append(post.Units, UnitResult{ID: u.ID, Faults: u.Faults, Outcomes: wire})
			processed[lease.Pass] = append(processed[lease.Pass], u.ID)
			done++
		}
		if _, err := cl.PostUnitResults(ctx, lease.JobID, post); err != nil {
			t.Fatal(err)
		}
	}
	return processed
}

// TestServiceLedgerResume crashes the coordinator after N units and
// restarts it on the same ledger directory: the job must resume under the
// same ID, replay exactly the N recorded units without re-dispatching them,
// and finish with statuses and test set identical to an uninterrupted
// single-process run.
func TestServiceLedgerResume(t *testing.T) {
	dir := t.TempDir()
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 48, 1995)
	// Escalation's width-1 first pass makes the accounting exact: pass 1 is
	// one unit per fault.
	opts := JobOptions{SimInterval: intp(0), Escalate: 8, Compact: "reverse"}
	localResults, localTests, _ := localRun(t, c, opts, faults)
	ctx := context.Background()

	// Phase 1: merge preCrash units, then stop the coordinator.  Shutdown
	// records no terminal ledger state — the job stays resumable.
	coA, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(coA)
	clA := NewClient(srvA.URL)
	sub, err := clA.SubmitBench(ctx, "c432", text, opts, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	const preCrash = 12
	driveWorker(t, clA, "wA", sub.JobID, c, preCrash)
	srvA.Close()
	coA.Close()

	// Phase 2: a fresh coordinator on the same ledger resumes the job.
	coB, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer coB.Close()
	srvB := httptest.NewServer(coB)
	defer srvB.Close()
	clB := NewClient(srvB.URL)

	if _, err := clB.Status(ctx, sub.JobID); err != nil {
		t.Fatalf("resumed coordinator does not know job %s: %v", sub.JobID, err)
	}
	processed := driveWorker(t, clB, "wB", sub.JobID, c, 1<<30)
	st, err := clB.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != stateDone {
		t.Fatalf("resumed job finished in state %q", st.State)
	}
	if st.Replayed != preCrash {
		t.Fatalf("replayed %d units from the ledger, want %d", st.Replayed, preCrash)
	}
	// No re-generated patterns for merged units: pass 1 has exactly one
	// unit per fault, and worker B processed only the remainder.
	if got, want := len(processed[1]), len(faults)-preCrash; got != want {
		t.Fatalf("worker processed %d pass-1 units after resume, want %d (replayed units re-dispatched)", got, want)
	}

	resp, err := clB.Results(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if want := localResults[i].Status.String(); r.Status != want {
			t.Fatalf("fault %d (%s): status %s, local %s", i, r.Describe, r.Status, want)
		}
	}
	if resp.Tests != localTests {
		t.Fatal("merged test set differs from the uninterrupted run")
	}
}

// TestServiceLedgerTerminalNotResumed checks that finished jobs stay
// finished: a restart on a ledger holding a completed job must not re-run
// it.
func TestServiceLedgerTerminalNotResumed(t *testing.T) {
	dir := t.TempDir()
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 8, 1995)
	opts := JobOptions{SimInterval: intp(0)}
	ctx := context.Background()

	coA, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(coA)
	clA := NewClient(srvA.URL)
	sub, err := clA.SubmitBench(ctx, "c432", text, opts, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	driveWorker(t, clA, "wA", sub.JobID, c, 1<<30)
	if st, err := clA.Wait(ctx, sub.JobID, 10*time.Millisecond); err != nil || st.State != stateDone {
		t.Fatalf("job did not finish cleanly: %v %+v", err, st)
	}
	srvA.Close()
	coA.Close()

	coB, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer coB.Close()
	srvB := httptest.NewServer(coB)
	defer srvB.Close()
	if _, err := NewClient(srvB.URL).Status(ctx, sub.JobID); err == nil {
		t.Fatal("terminal job resurrected after restart")
	}
}
