package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/paths"
)

// benchText loads a built-in circuit and renders the exact .bench text a
// client would submit.
func benchText(tb testing.TB, name string) (*circuit.Circuit, string) {
	tb.Helper()
	c, err := bench.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := circuit.WriteBench(&buf, c); err != nil {
		tb.Fatal(err)
	}
	return c, buf.String()
}

// localRun is the single-process baseline a distributed run must match:
// a sharded in-process run, whose canonical fault-order merge + compaction
// is exactly the pipeline distributed results flow through.  (Statuses are
// in turn identical to the sequential generator's — that is the engine's
// own determinism contract, covered by the core tests.)
func localRun(t *testing.T, c *circuit.Circuit, opts JobOptions, faults []paths.Fault) ([]core.FaultResult, string, core.Stats) {
	t.Helper()
	coreOpts, err := opts.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	master := core.New(c, coreOpts)
	results := core.RunSharded(context.Background(), master, faults, 2)
	var buf bytes.Buffer
	if err := master.TestSet().Write(&buf); err != nil {
		t.Fatal(err)
	}
	return results, buf.String(), master.Stats()
}

// startWorkers runs n service workers against the coordinator URL and
// returns a stop function that waits for them to exit.
func startWorkers(t *testing.T, url string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wk := NewWorker(WorkerConfig{
			Coordinator: url,
			ID:          "w" + string(rune('1'+i)),
			Poll:        10 * time.Millisecond,
			JobPoll:     50 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wk.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// classOf collapses a status name to its coverage class: "tested" and
// "detected-by-simulation" both mean the merged set covers the fault, and
// which one a fault gets depends on worker interleaving when the
// interleaved simulation is on.
func classOf(status string) string {
	if status == "tested" || status == "detected-by-simulation" {
		return "detected"
	}
	return status
}

func intp(v int) *int { return &v }

// TestServiceMatchesLocal is the service's half of the determinism
// contract: a distributed run over real HTTP with two workers, work
// stealing and escalation on must be bit-identical in statuses — and
// byte-identical in the merged, compacted test set — to a single-process
// run with the same options while the interleaved simulation is off.  With
// the simulation on, Tested and DetectedBySim may swap between workers, but
// the coverage class of every fault and the total coverage must not move.
func TestServiceMatchesLocal(t *testing.T) {
	for _, tc := range []struct {
		name string
		sim  *int
	}{
		{"c432", intp(0)},
		{"c499", intp(0)},
		{"c880", intp(0)},
		{"c432-sim", nil}, // default interval: interleaved simulation on
	} {
		t.Run(tc.name, func(t *testing.T) {
			circuitName := tc.name
			if tc.sim == nil {
				circuitName = "c432"
			}
			c, text := benchText(t, circuitName)
			faults := paths.SampleFaults(c, 128, 1995)
			opts := JobOptions{
				Schedule:    "steal",
				Escalate:    8,
				SimInterval: tc.sim,
				Compact:     "reverse",
			}
			localResults, localTests, localStats := localRun(t, c, opts, faults)

			co, err := NewCoordinator(Config{LeaseTTL: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close()
			srv := httptest.NewServer(co)
			defer srv.Close()
			stop := startWorkers(t, srv.URL, 2)
			defer stop()

			cl := NewClient(srv.URL)
			ctx := context.Background()
			sub, err := cl.SubmitBench(ctx, circuitName, text, opts, EncodeFaults(c, faults))
			if err != nil {
				t.Fatal(err)
			}
			if sub.Faults != len(faults) {
				t.Fatalf("submit accepted %d faults, want %d", sub.Faults, len(faults))
			}
			st, err := cl.Wait(ctx, sub.JobID, 20*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != "done" {
				t.Fatalf("job finished in state %q", st.State)
			}
			if st.Settled != len(faults) {
				t.Fatalf("settled %d of %d faults", st.Settled, len(faults))
			}
			resp, err := cl.Results(ctx, sub.JobID)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != len(localResults) {
				t.Fatalf("got %d results, want %d", len(resp.Results), len(localResults))
			}
			simOn := tc.sim == nil
			for i, r := range resp.Results {
				want := localResults[i].Status.String()
				if simOn {
					if classOf(r.Status) != classOf(want) {
						t.Fatalf("fault %d (%s): coverage class %s, local %s", i, r.Describe, r.Status, want)
					}
					continue
				}
				if r.Status != want {
					t.Fatalf("fault %d (%s): status %s, local %s", i, r.Describe, r.Status, want)
				}
				if r.PatternIndex != localResults[i].PatternIndex {
					t.Fatalf("fault %d: pattern index %d, local %d", i, r.PatternIndex, localResults[i].PatternIndex)
				}
			}
			if !simOn && resp.Tests != localTests {
				t.Fatalf("merged test set differs from local run:\nremote:\n%s\nlocal:\n%s", resp.Tests, localTests)
			}
			// Coverage must match in every mode.
			if got, want := resp.Stats.Coverage(), localStats.Coverage(); got != want {
				t.Fatalf("coverage %.4f, local %.4f", got, want)
			}
			if resp.Stats.Tested+resp.Stats.DetectedBySim != localStats.Tested+localStats.DetectedBySim {
				t.Fatalf("detected %d, local %d",
					resp.Stats.Tested+resp.Stats.DetectedBySim, localStats.Tested+localStats.DetectedBySim)
			}
		})
	}
}

// TestServiceRequeue kills a lease without completing it: a ghost worker
// grabs units and vanishes, the TTL expires, and the coordinator requeues
// the units to a live worker.  The run must still finish with the exact
// single-process statuses (at-least-once delivery cannot change
// classifications), and the late ghost report must be discarded as stale.
func TestServiceRequeue(t *testing.T) {
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 48, 1995)
	opts := JobOptions{Schedule: "steal", SimInterval: intp(0), Compact: "reverse"}
	localResults, localTests, _ := localRun(t, c, opts, faults)

	co, err := NewCoordinator(Config{
		LeaseTTL:       300 * time.Millisecond,
		ExpireInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	sub, err := cl.SubmitBench(ctx, "c432", text, opts, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	// The ghost leases a batch and never reports back.
	var ghost LeaseResponse
	for i := 0; i < 100; i++ {
		lease, ok, err := cl.Lease(ctx, "ghost", 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			ghost = lease
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(ghost.Units) == 0 {
		t.Fatal("ghost never got a lease")
	}

	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	st, err := cl.Wait(ctx, sub.JobID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job finished in state %q", st.State)
	}
	if st.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1 after the ghost's lease expired", st.Requeues)
	}
	resp, err := cl.Results(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if want := localResults[i].Status.String(); r.Status != want {
			t.Fatalf("fault %d: status %s, local %s (requeue changed a classification)", i, r.Status, want)
		}
	}
	if resp.Tests != localTests {
		t.Fatal("merged test set differs from local run after requeue")
	}
	// The ghost finally reports in: the pass is long gone, so the batch is
	// discarded as stale rather than applied or errored.
	late := PostResults{Worker: "ghost", Pass: ghost.Pass}
	for _, u := range ghost.Units {
		outs := make([]WireOutcome, len(u.Faults))
		for i := range outs {
			outs[i] = WireOutcome{Status: "redundant", Phase: "aptpg"}
		}
		late.Units = append(late.Units, UnitResult{ID: u.ID, Faults: u.Faults, Outcomes: outs})
	}
	lateResp, err := cl.PostUnitResults(ctx, sub.JobID, late)
	if err != nil {
		t.Fatal(err)
	}
	if !lateResp.Stale {
		t.Fatal("late ghost report not flagged stale")
	}
}

// TestServiceCancel checks client-driven cancellation: with no workers
// attached the job would wait forever, so DELETE must cancel the run,
// settle every fault and land the job in the terminal canceled state.
func TestServiceCancel(t *testing.T) {
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 16, 1995)
	co, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	sub, err := cl.SubmitBench(ctx, "c432", text, JobOptions{SimInterval: intp(0)}, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, sub.JobID); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "canceled" {
		t.Fatalf("state %q after cancel, want canceled", st.State)
	}
	resp, err := cl.Results(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != "canceled" {
		t.Fatalf("results state %q, want canceled", resp.State)
	}
	for _, r := range resp.Results {
		if r.Status == "pending" {
			t.Fatalf("fault %s left pending after cancel", r.Describe)
		}
	}
}

// TestServiceMultiTenant runs two jobs on different circuits through one
// worker pool concurrently; each must match its own single-process run.
func TestServiceMultiTenant(t *testing.T) {
	opts := JobOptions{Schedule: "steal", SimInterval: intp(0), Compact: "reverse"}
	type tenant struct {
		name    string
		c       *circuit.Circuit
		text    string
		faults  []paths.Fault
		jobID   string
		results []core.FaultResult
		tests   string
	}
	tenants := []*tenant{{name: "c432"}, {name: "c880"}}
	for _, tn := range tenants {
		tn.c, tn.text = benchText(t, tn.name)
		tn.faults = paths.SampleFaults(tn.c, 64, 1995)
		tn.results, tn.tests, _ = localRun(t, tn.c, opts, tn.faults)
	}

	co, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	for _, tn := range tenants {
		sub, err := cl.SubmitBench(ctx, tn.name, tn.text, opts, EncodeFaults(tn.c, tn.faults))
		if err != nil {
			t.Fatal(err)
		}
		tn.jobID = sub.JobID
	}
	for _, tn := range tenants {
		st, err := cl.Wait(ctx, tn.jobID, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("%s finished in state %q", tn.name, st.State)
		}
		resp, err := cl.Results(ctx, tn.jobID)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resp.Results {
			if want := tn.results[i].Status.String(); r.Status != want {
				t.Fatalf("%s fault %d: status %s, local %s", tn.name, i, r.Status, want)
			}
		}
		if resp.Tests != tn.tests {
			t.Fatalf("%s: merged test set differs from local run", tn.name)
		}
	}
}

// TestServiceEvents checks the settle-event stream: every fault settles
// exactly once, and the stream terminates with Done once the job is over.
func TestServiceEvents(t *testing.T) {
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 32, 1995)
	co, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	sub, err := cl.SubmitBench(ctx, "c432", text, JobOptions{SimInterval: intp(0)}, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	from := 0
	for {
		ev, err := cl.Events(ctx, sub.JobID, from, 2000)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ev.Events {
			if e.PatternIndex != -1 {
				t.Fatalf("settle event carries pattern index %d, want -1 (merge has not happened)", e.PatternIndex)
			}
			if e.Status == "pending" {
				t.Fatal("settle event with pending status")
			}
			seen++
		}
		from = ev.Next
		if ev.Done {
			break
		}
	}
	if seen != len(faults) {
		t.Fatalf("event stream delivered %d settles for %d faults", seen, len(faults))
	}
}
