package service

import (
	"context"
	"errors"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/retry"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names this worker in leases and published patterns; it must be
	// unique among the workers of one coordinator.
	ID string
	// MaxUnits is the lease batch size: leasing several units per round
	// trip amortizes the wire latency over more generation work.  Default 4.
	MaxUnits int
	// Poll is the idle backoff when nothing is leasable.  Default 100ms.
	// The actual sleep is jittered in [Poll/2, 3*Poll/2) — a fleet of idle
	// workers spreads out instead of leasing in lockstep — and coordinator
	// errors back off exponentially from Poll instead of hammering a
	// restarting coordinator on a flat period.
	Poll time.Duration
	// JobPoll is the period of the per-job status watch that propagates
	// coordinator-side cancellation into running generation.  Default 500ms.
	JobPoll time.Duration
	// CacheSize bounds the worker's own compiled-circuit cache.  Default 64.
	CacheSize int
	// Transport overrides the HTTP transport of the worker's client — the
	// chaos injector enters here.  nil uses the default transport.
	Transport http.RoundTripper
	// Seed pins the jitter sequence; 0 derives a stable per-ID seed, so a
	// named worker's idle schedule is reproducible but fleet-unique.
	Seed int64
}

// WorkerCounters exposes the loop's behavior: tests and operators read them
// to verify backoff actually engaged instead of inferring it from logs.
type WorkerCounters struct {
	// Leases counts successful non-empty lease grants.
	Leases int64
	// Units counts work units processed (whether or not the post landed).
	Units int64
	// IdlePolls counts empty (204) lease responses.
	IdlePolls int64
	// LeaseErrors counts failed lease round trips (after client retries).
	LeaseErrors int64
	// Backoff is the effective backoff: the duration of the most recent
	// idle or error sleep.
	Backoff time.Duration
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.MaxUnits <= 0 {
		cfg.MaxUnits = 4
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.JobPoll <= 0 {
		cfg.JobPoll = 500 * time.Millisecond
	}
	return cfg
}

// Worker is one remote generation process: it leases whole work units from
// the coordinator, runs them through a job-local core.Generator (compiled
// from the coordinator's cached circuit), and posts outcomes, fresh verified
// patterns and search-effort deltas back.  Foreign patterns fetched from the
// exchange feed the generator's claim sweep, so cross-worker dropping works
// exactly as it does between local shards.
type Worker struct {
	cfg   WorkerConfig
	cl    *Client
	cache *Cache

	leases, units, idlePolls, leaseErrors atomic.Int64
	backoffNS                             atomic.Int64

	mu   sync.Mutex
	rng  *rand.Rand // jitter source; guarded by mu
	jobs map[string]*workerJob
}

// workerJob is the per-job state a worker keeps between leases.
type workerJob struct {
	id     string
	ctx    context.Context
	cancel context.CancelFunc
	gen    *core.Generator
	faults []paths.Fault
	simOn  bool
	// published is how much of the local generator's test set has been
	// posted to the exchange; cursor is the exchange fetch position.
	published int
	cursor    int
}

// NewWorker builds a worker for the coordinator named in the config.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	var opts []ClientOption
	if cfg.Transport != nil {
		opts = append(opts, WithTransport(cfg.Transport))
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(cfg.ID))
		seed = int64(h.Sum64())
	}
	return &Worker{
		cfg:   cfg,
		cl:    NewClient(cfg.Coordinator, opts...),
		cache: NewCache(cfg.CacheSize),
		rng:   rand.New(rand.NewSource(seed)),
		jobs:  make(map[string]*workerJob),
	}
}

// Counters snapshots the worker's loop counters.
func (wk *Worker) Counters() WorkerCounters {
	return WorkerCounters{
		Leases:      wk.leases.Load(),
		Units:       wk.units.Load(),
		IdlePolls:   wk.idlePolls.Load(),
		LeaseErrors: wk.leaseErrors.Load(),
		Backoff:     time.Duration(wk.backoffNS.Load()),
	}
}

// idleJitter draws the next idle sleep from [Poll/2, 3*Poll/2).
func (wk *Worker) idleJitter() time.Duration {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.cfg.Poll/2 + time.Duration(wk.rng.Int63n(int64(wk.cfg.Poll)))
}

// Run leases and processes units until the context ends.  Transient
// coordinator errors (it may be restarting) back off with decorrelated
// jitter — from Poll up to errorBackoffCap — instead of hammering a
// recovering coordinator on a flat period; idle polls sleep a jittered
// Poll so a fleet of idle workers does not lease in lockstep.
//
//atpgvet:ctxloop
func (wk *Worker) Run(ctx context.Context) error {
	errBackoff := retry.Policy{
		Initial:  wk.cfg.Poll,
		Max:      errorBackoffCap(wk.cfg.Poll),
		Attempts: -1, // the context ends the loop, not an attempt budget
		Seed:     wk.rng.Int63(),
	}.Backoff()
	for ctx.Err() == nil {
		lease, ok, err := wk.cl.Lease(ctx, wk.cfg.ID, wk.cfg.MaxUnits)
		switch {
		case err != nil:
			wk.leaseErrors.Add(1)
			wk.backoffNS.Store(int64(nextDelay(errBackoff)))
			wk.sleep(ctx, time.Duration(wk.backoffNS.Load()))
		case !ok:
			wk.idlePolls.Add(1)
			errBackoff.Reset()
			d := wk.idleJitter()
			wk.backoffNS.Store(int64(d))
			wk.sleep(ctx, d)
		default:
			wk.leases.Add(1)
			errBackoff.Reset()
			wk.backoffNS.Store(0)
			wk.process(ctx, lease)
		}
	}
	wk.dropAll()
	return ctx.Err()
}

// errorBackoffCap bounds the error backoff: generous enough to ride out a
// coordinator restart, short enough to rejoin promptly.
func errorBackoffCap(poll time.Duration) time.Duration {
	limit := 20 * poll
	if limit < 2*time.Second {
		limit = 2 * time.Second
	}
	if limit > 10*time.Second {
		limit = 10 * time.Second
	}
	return limit
}

// nextDelay reads the backoff's next delay; the unlimited attempt budget
// means ok can only be false on a time budget, which the policy does not set.
func nextDelay(b *retry.Backoff) time.Duration {
	d, _ := b.Next()
	return d
}

func (wk *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// process runs one leased batch through the job's generator and posts the
// results.  Failures simply drop the batch: the lease expires and the
// coordinator requeues the units (at-least-once delivery).
func (wk *Worker) process(ctx context.Context, lease LeaseResponse) {
	wj, err := wk.jobState(ctx, lease)
	if err != nil {
		return
	}
	spec := DecodeSpec(lease.Spec)

	// Pull the exchange delta so the claim sweep can drop faults other
	// workers already covered.  Foreign patterns accumulate inside the
	// generator, so handing them to the first unit of the batch suffices.
	var foreign []pattern.Pair
	if wj.simOn {
		if pr, err := wk.cl.Patterns(ctx, wj.id, wj.cursor); err == nil {
			wj.cursor = pr.Next
			for _, wp := range pr.Patterns {
				if wp.Worker == wk.cfg.ID {
					continue
				}
				if p, err := pattern.ParsePair(wp.Test); err == nil {
					foreign = append(foreign, p)
				}
			}
		}
	}

	prev := wj.gen.Stats()
	post := PostResults{Worker: wk.cfg.ID, Pass: lease.Pass}
	for _, u := range lease.Units {
		ufaults := make([]paths.Fault, len(u.Faults))
		for i, fi := range u.Faults {
			if fi < 0 || fi >= len(wj.faults) {
				return // malformed lease; let it expire
			}
			ufaults[i] = wj.faults[fi]
		}
		outs := wj.gen.ProcessRemoteUnit(wj.ctx, ufaults, spec, foreign)
		wk.units.Add(1)
		foreign = nil
		wire := make([]WireOutcome, len(outs))
		for i, o := range outs {
			wire[i] = EncodeOutcome(o)
		}
		post.Units = append(post.Units, UnitResult{ID: u.ID, Faults: u.Faults, Outcomes: wire})
	}
	if wj.ctx.Err() != nil || ctx.Err() != nil {
		// Canceled mid-batch: the outcomes may be truncated.  Drop the batch
		// and let the leases expire instead of reporting partial work.
		return
	}
	set := wj.gen.TestSet()
	for _, p := range set.Pairs[wj.published:] {
		post.Patterns = append(post.Patterns, WirePattern{Worker: wk.cfg.ID, Test: p.String()})
	}
	wj.published = set.Len()
	post.Effort = wj.gen.Stats().EffortDelta(prev)

	resp, err := wk.cl.PostUnitResults(ctx, wj.id, post)
	if err != nil {
		return
	}
	if resp.Canceled {
		wk.dropJob(wj.id)
	}
}

// jobState returns (building on first use) the worker's state for a job:
// a generator over the coordinator's circuit plus the decoded fault list,
// and a watcher that cancels the job context when the coordinator reports
// the job finished or canceled.
func (wk *Worker) jobState(ctx context.Context, lease LeaseResponse) (*workerJob, error) {
	wk.mu.Lock()
	wj, ok := wk.jobs[lease.JobID]
	wk.mu.Unlock()
	if ok {
		return wj, nil
	}

	spec, err := wk.cl.Spec(ctx, lease.JobID)
	if err != nil {
		return nil, err
	}
	c, ok := wk.cache.Get(spec.CircuitHash)
	if !ok {
		bench, err := wk.cl.CircuitBench(ctx, spec.CircuitHash)
		if err != nil {
			return nil, err
		}
		c, _, err = wk.cache.Compile("", bench)
		if err != nil {
			return nil, err
		}
	}
	opts, err := spec.Options.ToCore()
	if err != nil {
		return nil, err
	}
	faults, err := DecodeFaults(c, spec.Faults)
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(ctx)
	wj = &workerJob{
		id:     lease.JobID,
		ctx:    jctx,
		cancel: cancel,
		gen:    core.New(c, opts),
		faults: faults,
		simOn:  lease.SimOn,
	}
	wk.mu.Lock()
	if prior, ok := wk.jobs[lease.JobID]; ok {
		wk.mu.Unlock()
		cancel()
		return prior, nil
	}
	wk.jobs[lease.JobID] = wj
	wk.mu.Unlock()
	go wk.watch(wj)
	return wj, nil
}

// watch propagates coordinator-side job termination into the worker: once
// the job is done, canceled or gone, its context is canceled so in-flight
// generation stops at the next check point.
func (wk *Worker) watch(wj *workerJob) {
	t := time.NewTicker(wk.cfg.JobPoll)
	defer t.Stop()
	for {
		select {
		case <-wj.ctx.Done():
			return
		case <-t.C:
			st, err := wk.cl.Status(wj.ctx, wj.id)
			if err != nil {
				var apiErr *APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
					wk.dropJob(wj.id)
					return
				}
				continue // transient; the coordinator may be restarting
			}
			switch st.State {
			case stateDone, stateCanceled, stateFailed:
				wk.dropJob(wj.id)
				return
			}
		}
	}
}

// dropJob cancels and forgets the worker's state for a job.
func (wk *Worker) dropJob(id string) {
	wk.mu.Lock()
	wj, ok := wk.jobs[id]
	if ok {
		delete(wk.jobs, id)
	}
	wk.mu.Unlock()
	if ok {
		wj.cancel()
	}
}

func (wk *Worker) dropAll() {
	wk.mu.Lock()
	jobs := wk.jobs
	wk.jobs = make(map[string]*workerJob)
	wk.mu.Unlock()
	for _, wj := range jobs {
		wj.cancel()
	}
}
