package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/sched"
)

// Job lifecycle states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateCanceled = "canceled"
	stateFailed   = "failed"
)

var (
	// errShutdown cancels jobs on coordinator shutdown.  It deliberately
	// records no terminal ledger state, so a restarted coordinator resumes
	// the job from its ledger instead of reporting it canceled.
	errShutdown = errors.New("service: coordinator shutting down")
	// errClientCancel cancels a job on the client's request; the job lands
	// in the terminal "canceled" state.
	errClientCancel = errors.New("service: job canceled by client")
)

// Config tunes a Coordinator.  The zero value selects sane defaults
// everywhere and disables the ledger (jobs are not resumable).
type Config struct {
	// LeaseTTL bounds how long a worker may sit on a leased unit before it
	// is requeued to someone else.  Default 30s.
	LeaseTTL time.Duration
	// ExpireInterval is the requeue sweep period.  Default LeaseTTL/4.
	ExpireInterval time.Duration
	// ExchangeCap bounds the cross-worker pattern exchange buffer per job;
	// older patterns age out (workers merely lose drop opportunities).
	// Default 4096.
	ExchangeCap int
	// MaxActive bounds how many jobs generate concurrently; the rest queue.
	// Default 4.
	MaxActive int
	// CacheSize bounds the compiled-circuit cache.  Default 64.
	CacheSize int
	// UnitsPerLease is the default batch size when a lease request does not
	// name one.  Default 4.
	UnitsPerLease int
	// LedgerDir, when set, persists a JSONL unit ledger per job and resumes
	// incomplete jobs on startup.
	LedgerDir string
	// CompactWatermark triggers a snapshot-and-truncate of a job's ledger
	// once its journal crosses this many bytes (ledgers are also compacted
	// on resume).  0 selects the 16MB default; negative disables live
	// compaction.
	CompactWatermark int64
	// Clock overrides the lease clock (leases, expiry sweeps).  nil means
	// time.Now; the chaos injector's skewed clock enters here.
	Clock func() time.Time
	// Chaos, when set, injects the configured coordinator-side faults:
	// torn ledger appends, and (unless Clock is set explicitly) the
	// lease-clock expiry storm.
	Chaos *chaos.Injector
}

func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ExpireInterval <= 0 {
		cfg.ExpireInterval = cfg.LeaseTTL / 4
		if cfg.ExpireInterval < 50*time.Millisecond {
			cfg.ExpireInterval = 50 * time.Millisecond
		}
	}
	if cfg.ExchangeCap <= 0 {
		cfg.ExchangeCap = 4096
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4
	}
	if cfg.UnitsPerLease <= 0 {
		cfg.UnitsPerLease = 4
	}
	if cfg.CompactWatermark == 0 {
		cfg.CompactWatermark = 16 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = cfg.Chaos.Clock() // nil injector yields time.Now
	}
	return cfg
}

// Coordinator is the service's brain: it owns the compiled-circuit cache and
// the multi-tenant job queue, cuts each job's fault universe into the exact
// work units a local run would use, leases them to workers, folds reported
// outcomes through core.RemoteRun (canonical merge + compaction) and serves
// the whole lifecycle over HTTP.  It implements http.Handler.
type Coordinator struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	ctx  context.Context
	stop context.CancelCauseFunc
	sem  chan struct{} // bounds concurrently generating jobs
	wg   sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order; leases scan oldest-first
	nextID int
}

// job is one submitted ATPG run.
type job struct {
	id       string
	name     string
	hash     string
	cacheHit bool

	wireOpts   JobOptions
	coreOpts   core.Options
	wireFaults []WireFault
	faults     []paths.Fault
	c          *circuit.Circuit

	ctx    context.Context
	cancel context.CancelCauseFunc
	ledger *Ledger
	replay *LedgerJob // recorded progress to restore; nil for fresh jobs
	exch   *ring

	mu         sync.Mutex
	state      string
	rr         *core.RemoteRun
	pass       *passState // current pass, nil between passes
	passSeq    int
	leaseStats sched.LeaseStats // accumulated over finished passes
	replayed   int              // units restored from the ledger
	results    []WireResult
	testsText  string
	stats      core.Stats

	evMu   sync.Mutex
	events []WireResult
	evDone bool
	evCh   chan struct{} // closed+replaced on every append (broadcast)
}

// passState is the leasable surface of the pass currently being dispatched.
type passState struct {
	seq   int
	spec  core.PassSpec
	q     *sched.LeaseQueue
	units []sched.Unit
}

// ring is the bounded cross-worker pattern exchange of one job.  Patterns
// are addressed by a monotonically growing cursor; entries that age out of
// the window are counted as dropped (backpressure, not an error — a worker
// that misses foreign patterns only forgoes drop opportunities).
type ring struct {
	mu      sync.Mutex
	cap     int
	base    int
	buf     []WirePattern
	dropped int
}

func newRing(capacity int) *ring { return &ring{cap: capacity} }

func (r *ring) publish(ps []WirePattern) {
	if len(ps) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, ps...)
	if over := len(r.buf) - r.cap; over > 0 {
		r.buf = append([]WirePattern(nil), r.buf[over:]...)
		r.base += over
		r.dropped += over
	}
}

func (r *ring) fetch(from int) (out []WirePattern, next, dropped int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < r.base {
		dropped = r.base - from
		from = r.base
	}
	if from > r.base+len(r.buf) {
		from = r.base + len(r.buf)
	}
	out = append([]WirePattern(nil), r.buf[from-r.base:]...)
	return out, r.base + len(r.buf), dropped
}

// NewCoordinator builds a coordinator and, when the config names a ledger
// directory, resumes every incomplete job found there.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancelCause(context.Background())
	co := &Coordinator{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheSize),
		mux:    http.NewServeMux(),
		ctx:    ctx,
		stop:   stop,
		sem:    make(chan struct{}, cfg.MaxActive),
		jobs:   make(map[string]*job),
		nextID: 1,
	}
	co.routes()
	if cfg.LedgerDir != "" {
		if err := co.resume(); err != nil {
			stop(errShutdown)
			return nil, err
		}
	}
	return co, nil
}

// Close stops the coordinator: running jobs are canceled with the shutdown
// cause, which records no terminal ledger state — a coordinator restarted on
// the same ledger directory resumes them where they left off.
func (co *Coordinator) Close() {
	co.stop(errShutdown)
	co.wg.Wait()
}

// Cache exposes the compiled-circuit cache (hit/miss counters for tests and
// the service cache benchmark).
func (co *Coordinator) Cache() *Cache { return co.cache }

// now reads the lease clock (time.Now unless injected).
func (co *Coordinator) now() time.Time { return co.cfg.Clock() }

func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.mux.ServeHTTP(w, r)
}

func (co *Coordinator) routes() {
	co.mux.HandleFunc("POST "+API+"/jobs", co.handleSubmit)
	co.mux.HandleFunc("GET "+API+"/jobs/{id}", co.handleStatus)
	co.mux.HandleFunc("DELETE "+API+"/jobs/{id}", co.handleCancel)
	co.mux.HandleFunc("GET "+API+"/jobs/{id}/events", co.handleEvents)
	co.mux.HandleFunc("GET "+API+"/jobs/{id}/results", co.handleResults)
	co.mux.HandleFunc("POST "+API+"/jobs/{id}/results", co.handlePostResults)
	co.mux.HandleFunc("GET "+API+"/jobs/{id}/patterns", co.handlePatterns)
	co.mux.HandleFunc("GET "+API+"/jobs/{id}/spec", co.handleSpec)
	co.mux.HandleFunc("GET "+API+"/circuits/{hash}", co.handleCircuit)
	co.mux.HandleFunc("POST "+API+"/lease", co.handleLease)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Code: code, Error: msg})
}

// ---- job lifecycle ----

func (co *Coordinator) newJobID() string {
	co.mu.Lock()
	defer co.mu.Unlock()
	id := fmt.Sprintf("j%d", co.nextID)
	co.nextID++
	return id
}

// addJob registers the job and starts its run goroutine.
func (co *Coordinator) addJob(j *job) {
	jctx, cancel := context.WithCancelCause(co.ctx)
	j.ctx, j.cancel = jctx, cancel
	j.state = stateQueued
	j.exch = newRing(co.cfg.ExchangeCap)
	j.evCh = make(chan struct{})
	co.mu.Lock()
	co.jobs[j.id] = j
	co.order = append(co.order, j.id)
	co.mu.Unlock()
	co.wg.Add(1)
	go co.runJob(j)
}

func (co *Coordinator) job(id string) *job {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobs[id]
}

func (co *Coordinator) runJob(j *job) {
	defer co.wg.Done()
	defer j.ledger.Close()
	select {
	case co.sem <- struct{}{}:
		defer func() { <-co.sem }()
	case <-j.ctx.Done():
		j.finalize(nil, "", core.Stats{})
		return
	}
	j.setState(stateRunning)

	master := core.New(j.c, j.coreOpts)
	master.OnSettle = func(r core.FaultResult) {
		// Merge indices do not exist yet when a fault settles: events carry -1.
		j.appendEvent(EncodeResult(j.c, r, -1))
	}
	rr := core.NewRemoteRun(master, j.faults)
	j.mu.Lock()
	j.rr = rr
	j.mu.Unlock()

	results := rr.Run(j.ctx, func(units []sched.Unit, spec core.PassSpec) {
		co.runPass(j, units, spec)
	})

	var buf bytes.Buffer
	_ = master.TestSet().Write(&buf)
	wire := make([]WireResult, len(results))
	for i, r := range results {
		wire[i] = EncodeResult(j.c, r, r.PatternIndex)
	}
	j.finalize(wire, buf.String(), master.Stats())
}

func (j *job) finalize(results []WireResult, tests string, stats core.Stats) {
	state := stateDone
	persist := true
	if j.ctx.Err() != nil {
		state = stateCanceled
		if errors.Is(context.Cause(j.ctx), errShutdown) {
			// Shutdown is not a verdict on the job: leave the ledger without
			// a terminal state so a restart resumes it.
			persist = false
		}
	}
	j.mu.Lock()
	j.results, j.testsText, j.stats, j.state = results, tests, stats, state
	j.mu.Unlock()
	if persist {
		j.ledger.RecordState(state)
	}
	j.closeEvents()
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// runPass dispatches one pass's units through the lease queue and blocks
// until every unit has completed (or the job is canceled).  It is the
// dispatch callback of core.RemoteRun.Run, so returning is the pass barrier.
func (co *Coordinator) runPass(j *job, units []sched.Unit, spec core.PassSpec) {
	q := sched.NewLeaseQueue(units)
	j.mu.Lock()
	j.passSeq++
	seq := j.passSeq
	j.pass = &passState{seq: seq, spec: spec, q: q, units: units}
	j.replayPassLocked(seq, spec, units, q)
	j.mu.Unlock()

	// Requeue sweep: units whose lease expired (worker died or stalled)
	// become leasable again without waiting for the next Lease call.
	tctx, stopTick := context.WithCancel(j.ctx)
	var tick sync.WaitGroup
	tick.Add(1)
	go func() {
		defer tick.Done()
		t := time.NewTicker(co.cfg.ExpireInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				q.Expire(co.now())
			case <-tctx.Done():
				return
			}
		}
	}()
	_ = q.Wait(j.ctx)
	stopTick()
	tick.Wait()

	// Pass barrier: the handler that completed the final unit holds j.mu
	// across Complete+Apply, so acquiring j.mu here guarantees every applied
	// outcome happened-before dispatch returns (see core.RemoteRun's
	// synchronization contract).
	j.mu.Lock()
	st := q.Stats()
	j.leaseStats.Leases += st.Leases
	j.leaseStats.Completed += st.Completed
	j.leaseStats.Requeues += st.Requeues
	j.leaseStats.Duplicates += st.Duplicates
	j.pass = nil
	j.mu.Unlock()
}

// replayPassLocked restores recorded completions of this pass from the
// ledger: matching units are completed and applied without dispatching any
// work, so no patterns are re-generated for units merged before the restart.
// Caller holds j.mu.
func (j *job) replayPassLocked(seq int, spec core.PassSpec, units []sched.Unit, q *sched.LeaseQueue) {
	cut := make([][]int, len(units))
	for i, u := range units {
		cut[i] = u.Faults
	}
	if j.replay != nil {
		if lp, ok := j.replay.Passes[seq]; ok && passMatches(lp, spec, cut) {
			for _, lu := range j.replay.Units[seq] {
				if lu.Unit < 0 || lu.Unit >= len(units) {
					continue
				}
				outs, err := DecodeOutcomes(lu.Outcomes)
				if err != nil || len(outs) != len(units[lu.Unit].Faults) {
					continue
				}
				if !q.Complete(lu.Unit) {
					continue
				}
				j.rr.Apply(units[lu.Unit].Faults, outs)
				j.replayed++
				// Republish replayed patterns so live workers joining the
				// resumed run still see them for claim sweeps.
				var pats []WirePattern
				for _, o := range outs {
					if o.Status == core.Tested {
						pats = append(pats, WirePattern{Worker: lu.Worker, Test: o.Test.String()})
					}
				}
				j.exch.publish(pats)
			}
			// The pass record is already on disk; nothing to append.
			return
		}
		// The recorded cut disagrees with the computed one (options or code
		// changed under the ledger): discard the remaining replay and fall
		// through to a fresh record.  Determinism makes this unreachable for
		// an unchanged binary.
		j.replay = nil
	}
	j.ledger.RecordPass(seq, EncodeSpec(spec), cut)
}

func passMatches(lp LedgerPass, spec core.PassSpec, cut [][]int) bool {
	if DecodeSpec(lp.Spec) != spec || len(lp.Units) != len(cut) {
		return false
	}
	for i, u := range lp.Units {
		if len(u) != len(cut[i]) {
			return false
		}
		for k, f := range u {
			if f != cut[i][k] {
				return false
			}
		}
	}
	return true
}

// ---- event stream ----

func (j *job) appendEvent(ev WireResult) {
	j.evMu.Lock()
	j.events = append(j.events, ev)
	close(j.evCh)
	j.evCh = make(chan struct{})
	j.evMu.Unlock()
}

func (j *job) closeEvents() {
	j.evMu.Lock()
	j.evDone = true
	close(j.evCh)
	j.evCh = make(chan struct{})
	j.evMu.Unlock()
}

func (j *job) settled() int {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	return len(j.events)
}

// ---- resume ----

func (co *Coordinator) resume() error {
	// Compact every journal before replaying: terminal jobs shrink to
	// stubs, incomplete ones lose duplicate completions and torn tails.
	// Best-effort — a journal that cannot be compacted is still replayable.
	if paths, err := filepath.Glob(filepath.Join(co.cfg.LedgerDir, "*.jsonl")); err == nil {
		for _, p := range paths {
			_, _, _ = CompactLedgerFile(p)
		}
	}
	ledgers, err := LoadLedgers(co.cfg.LedgerDir)
	if err != nil {
		return err
	}
	for _, lj := range ledgers {
		co.bumpNextID(lj.ID)
		if lj.State != "" {
			continue // terminal: nothing to resume
		}
		if err := co.resumeJob(lj); err != nil {
			// Poison the ledger so the next restart does not retry forever.
			if led, lerr := OpenLedger(co.cfg.LedgerDir, lj.ID); lerr == nil {
				led.RecordState(stateFailed)
				led.Close()
			}
		}
	}
	return nil
}

func (co *Coordinator) bumpNextID(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return
	}
	co.mu.Lock()
	if n >= co.nextID {
		co.nextID = n + 1
	}
	co.mu.Unlock()
}

func (co *Coordinator) resumeJob(lj *LedgerJob) error {
	coreOpts, err := lj.Options.ToCore()
	if err != nil {
		return err
	}
	c, hash, err := co.cache.Compile(lj.Name, lj.Bench)
	if err != nil {
		return err
	}
	if lj.Hash != "" && hash != lj.Hash {
		return fmt.Errorf("service: ledger %s: bench text does not match recorded hash", lj.ID)
	}
	faults, err := DecodeFaults(c, lj.Faults)
	if err != nil {
		return err
	}
	led, err := OpenLedger(co.cfg.LedgerDir, lj.ID)
	if err != nil {
		return err
	}
	led.SetChaos(co.cfg.Chaos)
	co.addJob(&job{
		id:         lj.ID,
		name:       lj.Name,
		hash:       hash,
		wireOpts:   lj.Options,
		coreOpts:   coreOpts,
		wireFaults: lj.Faults,
		faults:     faults,
		c:          c,
		ledger:     led,
		replay:     lj,
	})
	return nil
}

// ---- handlers ----

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	coreOpts, err := req.Options.ToCore()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-options", err.Error())
		return
	}
	var (
		c    *circuit.Circuit
		hash string
		hit  bool
	)
	switch {
	case req.CircuitBench != "":
		h := HashBench(req.CircuitBench)
		if req.CircuitHash != "" && req.CircuitHash != h {
			writeErr(w, http.StatusBadRequest, "hash-mismatch", "circuit_bench does not hash to circuit_hash")
			return
		}
		_, hit = co.cache.Bench(h)
		c, hash, err = co.cache.Compile(req.Name, req.CircuitBench)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad-circuit", err.Error())
			return
		}
	case req.CircuitHash != "":
		c, hit = co.cache.Get(req.CircuitHash)
		hash = req.CircuitHash
		if !hit {
			writeErr(w, http.StatusConflict, "unknown-circuit",
				"circuit "+req.CircuitHash+" not cached; resubmit with circuit_bench")
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "missing-circuit", "need circuit_bench or circuit_hash")
		return
	}
	faults, err := DecodeFaults(c, req.Faults)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-faults", err.Error())
		return
	}

	id := co.newJobID()
	var led *Ledger
	if co.cfg.LedgerDir != "" {
		led, err = OpenLedger(co.cfg.LedgerDir, id)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "ledger", err.Error())
			return
		}
		led.SetChaos(co.cfg.Chaos)
		bench, _ := co.cache.Bench(hash)
		led.RecordJob(id, req.Name, hash, bench, req.Options, req.Faults)
	}
	co.addJob(&job{
		id:         id,
		name:       req.Name,
		hash:       hash,
		cacheHit:   hit,
		wireOpts:   req.Options,
		coreOpts:   coreOpts,
		wireFaults: req.Faults,
		faults:     faults,
		c:          c,
		ledger:     led,
	})
	writeJSON(w, http.StatusOK, SubmitResponse{JobID: id, CircuitHash: hash, CacheHit: hit, Faults: len(faults)})
}

func (co *Coordinator) statusOf(j *job) JobStatus {
	j.mu.Lock()
	st := JobStatus{
		JobID:    j.id,
		Name:     j.name,
		State:    j.state,
		Faults:   len(j.faults),
		CacheHit: j.cacheHit,
		Replayed: j.replayed,
	}
	ls := j.leaseStats
	if j.pass != nil {
		cur := j.pass.q.Stats()
		ls.Leases += cur.Leases
		ls.Requeues += cur.Requeues
		ls.Duplicates += cur.Duplicates
	}
	j.mu.Unlock()
	st.Leases, st.Requeues, st.Duplicates = ls.Leases, ls.Requeues, ls.Duplicates
	st.Settled = j.settled()
	return st
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, co.statusOf(j))
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	j.cancel(errClientCancel)
	writeJSON(w, http.StatusOK, co.statusOf(j))
}

func (co *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, JobSpec{
		JobID:       j.id,
		CircuitHash: j.hash,
		Options:     j.wireOpts,
		Faults:      j.wireFaults,
	})
}

func (co *Coordinator) handleCircuit(w http.ResponseWriter, r *http.Request) {
	bench, ok := co.cache.Bench(r.PathValue("hash"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-circuit", "circuit not cached")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(bench))
}

func (co *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	j.mu.Lock()
	if j.state != stateDone && j.state != stateCanceled {
		state := j.state
		j.mu.Unlock()
		writeErr(w, http.StatusConflict, "not-done", "job is "+state)
		return
	}
	resp := ResultsResponse{JobID: j.id, State: j.state, Results: j.results, Tests: j.testsText, Stats: j.stats}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if from < 0 {
		from = 0
	}
	waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait_ms"))
	if waitMS > 30000 {
		waitMS = 30000
	}
	deadline := time.Now().Add(time.Duration(waitMS) * time.Millisecond)
	for {
		j.evMu.Lock()
		if from < len(j.events) || j.evDone || !time.Now().Before(deadline) {
			if from > len(j.events) {
				from = len(j.events)
			}
			resp := EventsResponse{
				Events: append([]WireResult(nil), j.events[from:]...),
				Next:   len(j.events),
				Done:   j.evDone,
			}
			j.evMu.Unlock()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		ch := j.evCh
		j.evMu.Unlock()
		wait := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
		case <-wait.C:
		case <-r.Context().Done():
			wait.Stop()
			return
		}
		wait.Stop()
	}
}

func (co *Coordinator) handlePatterns(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	pats, next, dropped := j.exch.fetch(from)
	writeJSON(w, http.StatusOK, PatternsResponse{Patterns: pats, Next: next, Dropped: dropped})
}

// handleLease hands out units of the oldest running job that has pending
// work.  204 means nothing is leasable right now; the worker backs off.
func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "bad-request", "worker id required")
		return
	}
	max := req.MaxUnits
	if max <= 0 {
		max = co.cfg.UnitsPerLease
	}
	co.mu.Lock()
	order := append([]string(nil), co.order...)
	jobs := make([]*job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, co.jobs[id])
	}
	co.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.state != stateRunning || j.pass == nil {
			j.mu.Unlock()
			continue
		}
		leased := j.pass.q.Lease(req.Worker, max, co.cfg.LeaseTTL, co.now())
		if len(leased) == 0 {
			j.mu.Unlock()
			continue
		}
		resp := LeaseResponse{
			JobID: j.id,
			Pass:  j.pass.seq,
			Spec:  EncodeSpec(j.pass.spec),
			TTLMS: co.cfg.LeaseTTL.Milliseconds(),
			SimOn: j.coreOpts.FaultSimInterval > 0,
		}
		for _, lu := range leased {
			resp.Units = append(resp.Units, WireUnit{ID: lu.ID, Faults: lu.Unit.Faults})
		}
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePostResults folds a worker's batch into the run.  Completion and
// Apply happen under j.mu — that, plus runPass re-acquiring j.mu after the
// queue drains, is the happens-before barrier core.RemoteRun requires.
func (co *Coordinator) handlePostResults(w http.ResponseWriter, r *http.Request) {
	j := co.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", "no such job")
		return
	}
	var req PostResults
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}

	j.mu.Lock()
	if j.ctx.Err() != nil || j.state == stateCanceled {
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, PostResultsResponse{Stale: true, Canceled: true})
		return
	}
	ps := j.pass
	if j.state != stateRunning || ps == nil || ps.seq != req.Pass {
		j.mu.Unlock()
		// At-least-once delivery meeting a finished pass: discard, no error.
		writeJSON(w, http.StatusOK, PostResultsResponse{Stale: true})
		return
	}
	// Validate everything before completing anything, so a malformed batch
	// is rejected whole and the worker's retry is not a duplicate.
	decoded := make([][]core.RemoteOutcome, len(req.Units))
	for i, ur := range req.Units {
		if ur.ID < 0 || ur.ID >= len(ps.units) {
			j.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "bad-unit", fmt.Sprintf("unit %d out of range", ur.ID))
			return
		}
		if len(ur.Outcomes) != len(ps.units[ur.ID].Faults) {
			j.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "bad-unit", fmt.Sprintf("unit %d: %d outcomes for %d faults", ur.ID, len(ur.Outcomes), len(ps.units[ur.ID].Faults)))
			return
		}
		outs, err := DecodeOutcomes(ur.Outcomes)
		if err != nil {
			j.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "bad-unit", err.Error())
			return
		}
		decoded[i] = outs
	}
	j.exch.publish(req.Patterns)
	j.rr.AddEffort(req.Effort)
	for i, ur := range req.Units {
		if !ps.q.Complete(ur.ID) {
			continue // duplicate completion: first write won, skip
		}
		ufaults := ps.units[ur.ID].Faults
		j.rr.Apply(ufaults, decoded[i])
		j.ledger.RecordUnit(ps.seq, ur.ID, req.Worker, ufaults, ur.Outcomes)
	}
	// Snapshot-and-truncate a journal that outgrew the watermark; holding
	// j.mu here keeps the snapshot consistent with the applied state.
	if wm := co.cfg.CompactWatermark; wm > 0 && j.ledger.Size() >= wm {
		_, _, _ = j.ledger.Compact()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, PostResultsResponse{})
}
