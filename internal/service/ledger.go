package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/chaos"
)

// The ledger makes jobs resumable across coordinator restarts: one JSONL
// file per job under the ledger directory records the job itself (circuit
// text, options, faults — everything needed to re-run it), the unit cut of
// every pass, each completed unit with its outcomes, and the terminal state.
// On startup the coordinator replays incomplete ledgers: the job is rebuilt,
// recorded unit completions are applied without re-dispatching them (no
// patterns are re-generated for already-merged units), and only the
// remainder is leased out.  Replay is sound because the pass cut is a
// deterministic function of the (replayed) outcomes, and applying a
// recorded outcome is exactly what applying the live report was.
//
// Records are appended, never rewritten in place; a torn final line (crash
// mid-write) is ignored on load, and reopening a file with a torn tail
// writes a newline first so the next record cannot concatenate onto the
// debris.  Worker effort deltas are not ledgered — they are informational,
// and the search effort of pre-crash units is simply absent from a resumed
// job's statistics.
//
// Because the journal is append-only it would grow without bound on a
// long-lived coordinator; Compact (run on resume and when a job's journal
// crosses the coordinator's size watermark) snapshots the replayable
// content and truncates the file to exactly that: terminal jobs shrink to
// a two-line stub, live jobs keep one record per pass and one per distinct
// completed unit (first completion wins, mirroring replay), with the
// redundant per-unit fault lists dropped — the pass cut already holds them.

// ledgerRecord is one JSONL line; T selects which fields are meaningful.
type ledgerRecord struct {
	T string `json:"t"` // "job", "pass", "unit" or "state"

	// T == "job"
	ID      string      `json:"id,omitempty"`
	Name    string      `json:"name,omitempty"`
	Hash    string      `json:"hash,omitempty"`
	Bench   string      `json:"bench,omitempty"`
	Options *JobOptions `json:"options,omitempty"`
	Faults  []WireFault `json:"faults,omitempty"`

	// T == "pass"
	Seq   int       `json:"seq,omitempty"`
	Spec  *WireSpec `json:"spec,omitempty"`
	Units [][]int   `json:"units,omitempty"`

	// T == "unit"
	Pass       int           `json:"pass,omitempty"`
	Unit       int           `json:"unit"`
	Worker     string        `json:"worker,omitempty"`
	UnitFaults []int         `json:"unit_faults,omitempty"`
	Outcomes   []WireOutcome `json:"outcomes,omitempty"`

	// T == "state"
	State string `json:"state,omitempty"`
}

// Ledger appends the records of one job.  All methods are safe for
// concurrent use and a nil *Ledger is a valid no-op (persistence disabled).
type Ledger struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	torn  bool // last line on disk lacks its newline; resync before appending
	chaos *chaos.Injector
}

// OpenLedger opens (creating or appending) the ledger file of a job.  A
// pre-existing torn tail (crash mid-append) is detected here so the first
// new record starts on a fresh line instead of merging with the debris.
func OpenLedger(dir, jobID string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, jobID+".jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Ledger{f: f, path: path}
	if fi, err := f.Stat(); err == nil {
		l.size = fi.Size()
	}
	l.torn = hasTornTail(path, l.size)
	return l, nil
}

// hasTornTail reports whether the file's final byte is not a newline.
func hasTornTail(path string, size int64) bool {
	if size == 0 {
		return false
	}
	rf, err := os.Open(path)
	if err != nil {
		return false
	}
	defer rf.Close()
	var last [1]byte
	if _, err := rf.ReadAt(last[:], size-1); err != nil {
		return false
	}
	return last[0] != '\n'
}

// SetChaos routes every append through the injector's torn-write failpoint.
func (l *Ledger) SetChaos(in *chaos.Injector) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.chaos = in
	l.mu.Unlock()
}

// Size returns the journal's current size in bytes.
func (l *Ledger) Size() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

func (l *Ledger) append(rec ledgerRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if l.torn {
		// Seal the torn line so this record starts fresh; the loader skips
		// the unparseable debris line.
		if _, err := l.f.Write([]byte{'\n'}); err != nil {
			return
		}
		l.size++
		l.torn = false
	}
	n, err := l.chaos.TearWrite(l.f, b)
	l.size += int64(n)
	if err != nil || n < len(b) {
		// Torn (injected or real): whatever landed lacks its newline.  A
		// write that delivered nothing left the file clean.
		l.torn = n > 0 && b[n-1] != '\n'
	}
}

// RecordJob records the job itself: everything a restarted coordinator needs
// to re-run it from scratch.
func (l *Ledger) RecordJob(id, name, hash, bench string, opts JobOptions, faults []WireFault) {
	l.append(ledgerRecord{T: "job", ID: id, Name: name, Hash: hash, Bench: bench, Options: &opts, Faults: faults})
}

// RecordPass records the unit cut of one pass.
func (l *Ledger) RecordPass(seq int, spec WireSpec, units [][]int) {
	l.append(ledgerRecord{T: "pass", Seq: seq, Spec: &spec, Units: units})
}

// RecordUnit records one completed unit with its outcomes.
func (l *Ledger) RecordUnit(pass, unit int, worker string, faults []int, outcomes []WireOutcome) {
	l.append(ledgerRecord{T: "unit", Pass: pass, Unit: unit, Worker: worker, UnitFaults: faults, Outcomes: outcomes})
}

// RecordState records a terminal state ("done", "canceled" or "failed").
func (l *Ledger) RecordState(state string) {
	l.append(ledgerRecord{T: "state", State: state})
}

// Compact snapshots the journal's replayable content and truncates the file
// to it (atomically, via rename), then keeps appending to the compacted
// file.  Replay accounting is preserved exactly: the snapshot keeps one
// record per distinct completed unit, which is precisely the set replay
// would apply.  Returns the sizes before and after.
func (l *Ledger) Compact() (before, after int64, err error) {
	if l == nil {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	before = l.size
	after, err = compactLedgerFile(l.path, before)
	if err != nil || after == before {
		return before, before, err
	}
	// Swap the append handle onto the compacted file: the old handle points
	// at the unlinked inode after the rename.
	if l.f != nil {
		_ = l.f.Close()
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil // appends become no-ops; the on-disk snapshot stays valid
		return before, after, err
	}
	l.f = f
	l.size = after
	l.torn = false
	return before, after, nil
}

// CompactLedgerFile compacts one job's ledger file in place (see
// Ledger.Compact); the coordinator runs it over every ledger on resume.
// Files that would not shrink are left untouched.
func CompactLedgerFile(path string) (before, after int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	before = fi.Size()
	after, err = compactLedgerFile(path, before)
	return before, after, err
}

// compactLedgerFile rewrites path to its compact snapshot when that is
// smaller, returning the resulting size (== before when skipped).
func compactLedgerFile(path string, before int64) (int64, error) {
	lj, err := loadLedgerFile(path)
	if err != nil {
		return before, err
	}
	if lj == nil {
		return before, nil // no job record: nothing safe to rewrite
	}
	snap := renderCompact(lj)
	if int64(len(snap)) >= before {
		return before, nil
	}
	tmp := path + ".compact"
	if err := os.WriteFile(tmp, snap, 0o644); err != nil {
		return before, err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return before, err
	}
	return int64(len(snap)), nil
}

// renderCompact serializes the snapshot form of a loaded ledger: terminal
// jobs keep only an identity stub and their state (enough for ID allocation
// and the resume skip); live jobs keep the full job record, each pass cut,
// and the first completion of each unit with the redundant per-unit fault
// list dropped — replay reads fault indices from the pass cut.
func renderCompact(lj *LedgerJob) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if lj.State != "" {
		_ = enc.Encode(ledgerRecord{T: "job", ID: lj.ID, Name: lj.Name})
		_ = enc.Encode(ledgerRecord{T: "state", State: lj.State})
		return buf.Bytes()
	}
	opts := lj.Options
	_ = enc.Encode(ledgerRecord{
		T: "job", ID: lj.ID, Name: lj.Name, Hash: lj.Hash, Bench: lj.Bench,
		Options: &opts, Faults: lj.Faults,
	})
	seqs := make([]int, 0, len(lj.Passes))
	for seq := range lj.Passes {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		lp := lj.Passes[seq]
		spec := lp.Spec
		_ = enc.Encode(ledgerRecord{T: "pass", Seq: seq, Spec: &spec, Units: lp.Units})
		done := make(map[int]bool)
		for _, lu := range lj.Units[seq] {
			if done[lu.Unit] {
				continue // duplicate completion: replay's first-wins drops it too
			}
			done[lu.Unit] = true
			_ = enc.Encode(ledgerRecord{T: "unit", Pass: seq, Unit: lu.Unit, Worker: lu.Worker, Outcomes: lu.Outcomes})
		}
	}
	return buf.Bytes()
}

// Close closes the underlying file.
func (l *Ledger) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

// LedgerJob is the replayable content of one job's ledger.
type LedgerJob struct {
	ID      string
	Name    string
	Hash    string
	Bench   string
	Options JobOptions
	Faults  []WireFault
	// State is the last terminal state recorded, or "" for a job the
	// coordinator should resume.
	State string
	// Passes and Units hold the recorded pass cuts and unit completions,
	// keyed by pass sequence number.
	Passes map[int]LedgerPass
	Units  map[int][]LedgerUnit
}

// LedgerPass is a recorded pass cut.
type LedgerPass struct {
	Spec  WireSpec
	Units [][]int
}

// LedgerUnit is a recorded unit completion.  Faults is informational and
// absent from compacted ledgers — replay takes the fault indices from the
// pass cut, never from here.
type LedgerUnit struct {
	Unit     int
	Worker   string
	Faults   []int
	Outcomes []WireOutcome
}

// LoadLedgers reads every job ledger under dir, sorted by file name for a
// deterministic resume order.  Unparseable lines (a torn tail after a
// crash) are skipped; files without a job record are ignored.
func LoadLedgers(dir string) ([]*LedgerJob, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []*LedgerJob
	for _, path := range matches {
		lj, err := loadLedgerFile(path)
		if err != nil {
			return nil, fmt.Errorf("service: ledger %s: %w", path, err)
		}
		if lj != nil {
			out = append(out, lj)
		}
	}
	return out, nil
}

func loadLedgerFile(path string) (*LedgerJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lj *LedgerJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec ledgerRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn tail from a crash mid-append: ignore
		}
		switch rec.T {
		case "job":
			lj = &LedgerJob{
				ID:     rec.ID,
				Name:   rec.Name,
				Hash:   rec.Hash,
				Bench:  rec.Bench,
				Faults: rec.Faults,
				Passes: make(map[int]LedgerPass),
				Units:  make(map[int][]LedgerUnit),
			}
			if rec.Options != nil {
				lj.Options = *rec.Options
			}
		case "pass":
			if lj != nil && rec.Spec != nil {
				lj.Passes[rec.Seq] = LedgerPass{Spec: *rec.Spec, Units: rec.Units}
			}
		case "unit":
			if lj != nil {
				lj.Units[rec.Pass] = append(lj.Units[rec.Pass], LedgerUnit{
					Unit: rec.Unit, Worker: rec.Worker, Faults: rec.UnitFaults, Outcomes: rec.Outcomes,
				})
			}
		case "state":
			if lj != nil {
				lj.State = rec.State
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lj, nil
}
