package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The ledger makes jobs resumable across coordinator restarts: one JSONL
// file per job under the ledger directory records the job itself (circuit
// text, options, faults — everything needed to re-run it), the unit cut of
// every pass, each completed unit with its outcomes, and the terminal state.
// On startup the coordinator replays incomplete ledgers: the job is rebuilt,
// recorded unit completions are applied without re-dispatching them (no
// patterns are re-generated for already-merged units), and only the
// remainder is leased out.  Replay is sound because the pass cut is a
// deterministic function of the (replayed) outcomes, and applying a
// recorded outcome is exactly what applying the live report was.
//
// Records are appended, never rewritten; a torn final line (crash mid-write)
// is ignored on load.  Worker effort deltas are not ledgered — they are
// informational, and the search effort of pre-crash units is simply absent
// from a resumed job's statistics.

// ledgerRecord is one JSONL line; T selects which fields are meaningful.
type ledgerRecord struct {
	T string `json:"t"` // "job", "pass", "unit" or "state"

	// T == "job"
	ID      string      `json:"id,omitempty"`
	Name    string      `json:"name,omitempty"`
	Hash    string      `json:"hash,omitempty"`
	Bench   string      `json:"bench,omitempty"`
	Options *JobOptions `json:"options,omitempty"`
	Faults  []WireFault `json:"faults,omitempty"`

	// T == "pass"
	Seq   int       `json:"seq,omitempty"`
	Spec  *WireSpec `json:"spec,omitempty"`
	Units [][]int   `json:"units,omitempty"`

	// T == "unit"
	Pass       int           `json:"pass,omitempty"`
	Unit       int           `json:"unit"`
	Worker     string        `json:"worker,omitempty"`
	UnitFaults []int         `json:"unit_faults,omitempty"`
	Outcomes   []WireOutcome `json:"outcomes,omitempty"`

	// T == "state"
	State string `json:"state,omitempty"`
}

// Ledger appends the records of one job.  All methods are safe for
// concurrent use and a nil *Ledger is a valid no-op (persistence disabled).
type Ledger struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLedger opens (creating or appending) the ledger file of a job.
func OpenLedger(dir, jobID string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, jobID+".jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Ledger{f: f}, nil
}

func (l *Ledger) append(rec ledgerRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = l.f.Write(b)
}

// RecordJob records the job itself: everything a restarted coordinator needs
// to re-run it from scratch.
func (l *Ledger) RecordJob(id, name, hash, bench string, opts JobOptions, faults []WireFault) {
	l.append(ledgerRecord{T: "job", ID: id, Name: name, Hash: hash, Bench: bench, Options: &opts, Faults: faults})
}

// RecordPass records the unit cut of one pass.
func (l *Ledger) RecordPass(seq int, spec WireSpec, units [][]int) {
	l.append(ledgerRecord{T: "pass", Seq: seq, Spec: &spec, Units: units})
}

// RecordUnit records one completed unit with its outcomes.
func (l *Ledger) RecordUnit(pass, unit int, worker string, faults []int, outcomes []WireOutcome) {
	l.append(ledgerRecord{T: "unit", Pass: pass, Unit: unit, Worker: worker, UnitFaults: faults, Outcomes: outcomes})
}

// RecordState records a terminal state ("done", "canceled" or "failed").
func (l *Ledger) RecordState(state string) {
	l.append(ledgerRecord{T: "state", State: state})
}

// Close closes the underlying file.
func (l *Ledger) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.f.Close()
}

// LedgerJob is the replayable content of one job's ledger.
type LedgerJob struct {
	ID      string
	Name    string
	Hash    string
	Bench   string
	Options JobOptions
	Faults  []WireFault
	// State is the last terminal state recorded, or "" for a job the
	// coordinator should resume.
	State string
	// Passes and Units hold the recorded pass cuts and unit completions,
	// keyed by pass sequence number.
	Passes map[int]LedgerPass
	Units  map[int][]LedgerUnit
}

// LedgerPass is a recorded pass cut.
type LedgerPass struct {
	Spec  WireSpec
	Units [][]int
}

// LedgerUnit is a recorded unit completion.
type LedgerUnit struct {
	Unit     int
	Worker   string
	Faults   []int
	Outcomes []WireOutcome
}

// LoadLedgers reads every job ledger under dir, sorted by file name for a
// deterministic resume order.  Unparseable lines (a torn tail after a
// crash) are skipped; files without a job record are ignored.
func LoadLedgers(dir string) ([]*LedgerJob, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []*LedgerJob
	for _, path := range matches {
		lj, err := loadLedgerFile(path)
		if err != nil {
			return nil, fmt.Errorf("service: ledger %s: %w", path, err)
		}
		if lj != nil {
			out = append(out, lj)
		}
	}
	return out, nil
}

func loadLedgerFile(path string) (*LedgerJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lj *LedgerJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec ledgerRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn tail from a crash mid-append: ignore
		}
		switch rec.T {
		case "job":
			lj = &LedgerJob{
				ID:     rec.ID,
				Name:   rec.Name,
				Hash:   rec.Hash,
				Bench:  rec.Bench,
				Faults: rec.Faults,
				Passes: make(map[int]LedgerPass),
				Units:  make(map[int][]LedgerUnit),
			}
			if rec.Options != nil {
				lj.Options = *rec.Options
			}
		case "pass":
			if lj != nil && rec.Spec != nil {
				lj.Passes[rec.Seq] = LedgerPass{Spec: *rec.Spec, Units: rec.Units}
			}
		case "unit":
			if lj != nil {
				lj.Units[rec.Pass] = append(lj.Units[rec.Pass], LedgerUnit{
					Unit: rec.Unit, Worker: rec.Worker, Faults: rec.UnitFaults, Outcomes: rec.Outcomes,
				})
			}
		case "state":
			if lj != nil {
				lj.State = rec.State
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lj, nil
}
