package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/paths"
)

// TestServiceChaosEndToEnd is the harness proving the resilience layer's
// central claim: a distributed run under injected faults — dropped requests,
// severed responses, synthetic 503s, added latency on every worker, plus a
// lease-expiry storm and torn ledger appends on the coordinator, with live
// ledger compaction after every post — still produces statuses, pattern
// indices and a merged test set byte-identical to an undisturbed
// single-process run.  The injector counters are asserted so a mis-wired
// failpoint cannot pass as "survived".
func TestServiceChaosEndToEnd(t *testing.T) {
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 48, 1995)
	opts := JobOptions{Schedule: "steal", Escalate: 8, SimInterval: intp(0), Compact: "reverse"}
	localResults, localTests, _ := localRun(t, c, opts, faults)

	coChaos := chaos.New(chaos.Config{Seed: 11, StormAfter: 5, StormSkew: time.Minute, Tear: 0.25})
	co, err := NewCoordinator(Config{
		LeaseTTL:         2 * time.Second,
		LedgerDir:        t.TempDir(),
		CompactWatermark: 1, // compact after every post: live compaction under load
		Chaos:            coChaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()

	wkChaos := chaos.New(chaos.Config{
		Seed: 7, Drop: 0.15, Sever: 0.1, Unavail: 0.05,
		DelayP: 0.2, Delay: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	workers := make([]*Worker, 2)
	for i := range workers {
		wk := NewWorker(WorkerConfig{
			Coordinator: srv.URL,
			ID:          "w" + string(rune('1'+i)),
			Poll:        10 * time.Millisecond,
			JobPoll:     50 * time.Millisecond,
			Transport:   wkChaos.Transport(nil),
		})
		workers[i] = wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wk.Run(ctx)
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	cl := NewClient(srv.URL)
	sub, err := cl.SubmitBench(context.Background(), "c432", text, opts, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(context.Background(), sub.JobID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != stateDone {
		t.Fatalf("chaotic job finished in state %q", st.State)
	}

	resp, err := cl.Results(context.Background(), sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(localResults) {
		t.Fatalf("got %d results under chaos, want %d", len(resp.Results), len(localResults))
	}
	for i, r := range resp.Results {
		if want := localResults[i].Status.String(); r.Status != want {
			t.Fatalf("fault %d (%s): status %s under chaos, local %s", i, r.Describe, r.Status, want)
		}
		if r.PatternIndex != localResults[i].PatternIndex {
			t.Fatalf("fault %d: pattern index %d under chaos, local %d",
				i, r.PatternIndex, localResults[i].PatternIndex)
		}
	}
	if resp.Tests != localTests {
		t.Fatal("merged test set under chaos differs from the undisturbed local run")
	}

	// The faults must actually have fired, and the workers must have worked.
	ws := wkChaos.Stats()
	if ws.Dropped == 0 || ws.Severed == 0 {
		t.Errorf("injector idle: %+v (dropped and severed must both fire)", ws)
	}
	if cs := coChaos.Stats(); cs.Storms != 1 {
		t.Errorf("lease-expiry storm fired %d times, want exactly 1", cs.Storms)
	}
	var leases, units int64
	for _, wk := range workers {
		cnt := wk.Counters()
		leases += cnt.Leases
		units += cnt.Units
	}
	if leases == 0 || units < int64(len(faults)) {
		t.Errorf("workers leased %d batches / processed %d units, want >0 and >=%d", leases, units, len(faults))
	}
}

// TestServiceLedgerCompactionResume interrupts a job, compacts its journal
// (with a duplicated completion line planted to prove first-wins dedup), and
// resumes on the compacted file: exactly the recorded units replay — none
// re-dispatched, none dropped, none doubled — and the finished job matches
// the uninterrupted run bit for bit.
func TestServiceLedgerCompactionResume(t *testing.T) {
	dir := t.TempDir()
	c, text := benchText(t, "c432")
	faults := paths.SampleFaults(c, 48, 1995)
	opts := JobOptions{SimInterval: intp(0), Escalate: 8, Compact: "reverse"}
	localResults, localTests, _ := localRun(t, c, opts, faults)
	ctx := context.Background()

	coA, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(coA)
	clA := NewClient(srvA.URL)
	sub, err := clA.SubmitBench(ctx, "c432", text, opts, EncodeFaults(c, faults))
	if err != nil {
		t.Fatal(err)
	}
	const preCrash = 12
	driveWorker(t, clA, "wA", sub.JobID, c, preCrash)
	srvA.Close()
	coA.Close()

	// Duplicate a completed unit's line, as a worker retrying a severed POST
	// would: compaction must keep only the first completion.
	path := filepath.Join(dir, sub.JobID+".jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dupLine string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, `{"t":"unit"`) {
			dupLine = line
			break
		}
	}
	if dupLine == "" {
		t.Fatal("no unit record in the ledger after 12 completions")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(dupLine + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before, after, err := CompactLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", before, after)
	}
	lj, err := loadLedgerFile(path)
	if err != nil || lj == nil {
		t.Fatalf("compacted ledger unreadable: %v", err)
	}
	for seq, units := range lj.Units {
		seen := make(map[int]bool)
		for _, u := range units {
			if seen[u.Unit] {
				t.Fatalf("pass %d unit %d recorded twice after compaction", seq, u.Unit)
			}
			seen[u.Unit] = true
			if u.Faults != nil {
				t.Fatalf("pass %d unit %d kept its redundant fault list after compaction", seq, u.Unit)
			}
		}
	}

	coB, err := NewCoordinator(Config{LedgerDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer coB.Close()
	srvB := httptest.NewServer(coB)
	defer srvB.Close()
	clB := NewClient(srvB.URL)
	processed := driveWorker(t, clB, "wB", sub.JobID, c, 1<<30)
	st, err := clB.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != stateDone {
		t.Fatalf("resumed job finished in state %q", st.State)
	}
	if st.Replayed != preCrash {
		t.Fatalf("replayed %d units from the compacted ledger, want %d", st.Replayed, preCrash)
	}
	if got, want := len(processed[1]), len(faults)-preCrash; got != want {
		t.Fatalf("worker processed %d pass-1 units after resume, want %d", got, want)
	}
	resp, err := clB.Results(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if want := localResults[i].Status.String(); r.Status != want {
			t.Fatalf("fault %d (%s): status %s, local %s", i, r.Describe, r.Status, want)
		}
	}
	if resp.Tests != localTests {
		t.Fatal("merged test set differs from the uninterrupted run")
	}
}

// TestLedgerCompactTerminalStub: a finished job's journal compacts to the
// two-line identity stub — enough for ID allocation and the resume skip,
// nothing more.
func TestLedgerCompactTerminalStub(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	l.RecordJob("job-000001", "c17", "deadbeef", "INPUT(a)\n", JobOptions{}, []WireFault{{Nets: []string{"a"}, Transition: "rise"}})
	l.RecordPass(1, WireSpec{}, [][]int{{0}})
	l.RecordUnit(1, 0, "wA", []int{0}, nil)
	l.RecordState(stateDone)
	l.Close()

	path := filepath.Join(dir, "job-000001.jsonl")
	if _, _, err := CompactLedgerFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("terminal stub has %d lines, want 2:\n%s", len(lines), raw)
	}
	lj, err := loadLedgerFile(path)
	if err != nil || lj == nil {
		t.Fatalf("stub unreadable: %v", err)
	}
	if lj.ID != "job-000001" || lj.State != stateDone {
		t.Fatalf("stub lost identity or state: %+v", lj)
	}
}

// TestLedgerTornTailResync is the crash-mid-append regression test: debris
// without a trailing newline must not swallow the next record appended after
// reopen (the pre-fix behavior concatenated them into one unparseable line).
func TestLedgerTornTailResync(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir, "torn")
	if err != nil {
		t.Fatal(err)
	}
	l.RecordJob("torn", "c17", "", "", JobOptions{}, nil)
	l.Close()

	// Crash mid-append: half a record, no newline.
	path := filepath.Join(dir, "torn.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"unit","pass":1,"un`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = OpenLedger(dir, "torn")
	if err != nil {
		t.Fatal(err)
	}
	l.RecordPass(1, WireSpec{}, [][]int{{0}})
	l.Close()

	lj, err := loadLedgerFile(path)
	if err != nil || lj == nil {
		t.Fatalf("resynced ledger unreadable: %v", err)
	}
	if _, ok := lj.Passes[1]; !ok {
		t.Fatal("record appended after a torn tail was lost (concatenated onto the debris)")
	}
}

// TestLedgerChaosTornWrites drives appends through the injector's torn-write
// failpoint: whatever survives must parse cleanly, be a subset of what was
// written, and the journal must accept clean appends afterwards.
func TestLedgerChaosTornWrites(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir, "chaotic")
	if err != nil {
		t.Fatal(err)
	}
	l.RecordJob("chaotic", "c17", "", "", JobOptions{}, nil)
	l.RecordPass(1, WireSpec{}, [][]int{{0}})

	inj := chaos.New(chaos.Config{Seed: 3, Tear: 0.5})
	l.SetChaos(inj)
	const writes = 40
	for u := 0; u < writes; u++ {
		l.RecordUnit(1, u, "wA", nil, nil)
	}
	l.SetChaos(nil)
	l.RecordState(stateDone) // clean append after the carnage
	l.Close()

	if torn := inj.Stats().Torn; torn == 0 {
		t.Fatal("tear failpoint never fired at probability 0.5 over 40 writes")
	}
	lj, err := loadLedgerFile(filepath.Join(dir, "chaotic.jsonl"))
	if err != nil || lj == nil {
		t.Fatalf("chaotic ledger unreadable: %v", err)
	}
	seen := make(map[int]bool)
	for _, u := range lj.Units[1] {
		if u.Unit < 0 || u.Unit >= writes || seen[u.Unit] {
			t.Fatalf("unit %d surfaced corrupt or doubled from torn writes", u.Unit)
		}
		seen[u.Unit] = true
	}
	if len(lj.Units[1]) == writes {
		t.Fatal("no unit record was lost despite torn writes — failpoint not on the write path")
	}
	if lj.State != stateDone {
		t.Fatal("clean append after torn writes was lost (tail never resealed)")
	}
}

// TestWorkerBackoffCounters: a worker facing a dead coordinator must ramp
// its error backoff beyond the poll period (and count the failures); an idle
// worker must sleep a jittered poll within [Poll/2, 3*Poll/2).
func TestWorkerBackoffCounters(t *testing.T) {
	const poll = 10 * time.Millisecond

	// Dead coordinator: the URL refuses connections immediately.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	ctx, cancel := context.WithCancel(context.Background())
	wk := NewWorker(WorkerConfig{Coordinator: deadURL, ID: "dead", Poll: poll})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = wk.Run(ctx)
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		cnt := wk.Counters()
		if cnt.LeaseErrors >= 2 {
			if cnt.Backoff < poll {
				t.Errorf("error backoff %v below the poll period %v", cnt.Backoff, poll)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never counted 2 lease errors against a dead coordinator: %+v", cnt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	// Idle coordinator: jittered poll, no errors.
	co, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co)
	defer srv.Close()
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	wk = NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "idle", Poll: poll})
	done = make(chan struct{})
	go func() {
		defer close(done)
		_ = wk.Run(ctx)
	}()
	deadline = time.Now().Add(15 * time.Second)
	for {
		cnt := wk.Counters()
		if cnt.IdlePolls >= 5 {
			if cnt.Backoff < poll/2 || cnt.Backoff >= poll*3/2 {
				t.Errorf("idle backoff %v outside the jitter window [%v, %v)", cnt.Backoff, poll/2, poll*3/2)
			}
			if cnt.LeaseErrors != 0 {
				t.Errorf("idle worker counted %d lease errors", cnt.LeaseErrors)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never counted 5 idle polls: %+v", cnt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
}

// replayCut is the accounting replay derives from a loaded ledger, applying
// replayPassLocked's own filters: only units of a recorded pass, in range of
// its cut, first completion wins.  This is exactly what resume applies, so
// compaction must preserve it bit for bit.
func replayCut(lj *LedgerJob) map[int][]LedgerUnit {
	cut := make(map[int][]LedgerUnit)
	for seq, units := range lj.Units {
		lp, ok := lj.Passes[seq]
		if !ok {
			continue // no pass record: replay never applies these
		}
		seen := make(map[int]bool)
		for _, u := range units {
			if u.Unit < 0 || u.Unit >= len(lp.Units) || seen[u.Unit] {
				continue
			}
			seen[u.Unit] = true
			u.Faults = nil // informational; compaction drops it by design
			cut[seq] = append(cut[seq], u)
		}
	}
	return cut
}

// FuzzLedgerCompact throws arbitrary bytes at the JSONL loader and then at
// the compactor, holding the resume safety property: parsing never panics,
// and for any loadable journal the replay cut — which units exist, who
// completed them first, with which outcomes — survives compaction unchanged
// (so resume can never double-dispatch a recorded unit or drop a completed
// one), terminal states survive, and compaction is idempotent.
func FuzzLedgerCompact(f *testing.F) {
	f.Add([]byte(`{"t":"job","id":"j1","name":"c17","bench":"INPUT(a)\n"}
{"t":"pass","seq":1,"spec":{},"units":[[0],[1]]}
{"t":"unit","pass":1,"unit":0,"worker":"wA","outcomes":[{"s":"tested"}]}
{"t":"unit","pass":1,"unit":0,"worker":"wB"}
{"t":"unit","pass":1,"unit":1,"worker":"wA"}
`))
	f.Add([]byte(`{"t":"job","id":"j2","name":"c17"}
{"t":"state","state":"done"}
`))
	f.Add([]byte(`{"t":"job","id":"j3"}
{"t":"unit","pa`)) // torn tail
	f.Add([]byte("\n\ngarbage not json\n{\"t\":\"job\",\"id\":\"j4\"}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		lj, err := loadLedgerFile(path)
		if err != nil || lj == nil {
			return // unloadable input: nothing to preserve
		}
		wantCut, wantState := replayCut(lj), lj.State

		if _, _, err := CompactLedgerFile(path); err != nil {
			t.Fatalf("compaction failed on a loadable journal: %v", err)
		}
		lj2, err := loadLedgerFile(path)
		if err != nil || lj2 == nil {
			t.Fatalf("journal unloadable after compaction: %v", err)
		}
		if lj2.State != wantState {
			t.Fatalf("terminal state %q became %q under compaction", wantState, lj2.State)
		}
		if wantState == "" {
			if lj2.ID != lj.ID || lj2.Bench != lj.Bench {
				t.Fatal("live job lost identity or circuit under compaction")
			}
			if got := replayCut(lj2); !reflect.DeepEqual(got, wantCut) {
				t.Fatalf("replay cut changed under compaction:\nbefore: %#v\nafter:  %#v", wantCut, got)
			}
		}

		// Idempotence: a second compaction must be a byte-level no-op.
		once, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := CompactLedgerFile(path); err != nil {
			t.Fatal(err)
		}
		twice, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once, twice) {
			t.Fatal("compaction is not idempotent")
		}
	})
}
