// Package backtrace implements the backtrace procedure of the test pattern
// generator: starting from an unjustified value requirement at an internal
// net, it walks backwards through unassigned nets to a primary input and
// proposes an input assignment that helps justify the requirement.  Input
// selection is guided by the SCOAP-style controllability measures of
// internal/testability (shared with the rest of the generator through the
// per-circuit cache).
package backtrace

import (
	"repro/internal/circuit"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/testability"
)

// Objective is the result of a backtrace: a primary input and the final
// value it should be driven to.
type Objective struct {
	Input circuit.NetID
	Value logic.Value3
}

// Backtrace walks from an unjustified requirement (net must take value want
// at the given bit level) backwards to an unassigned primary input and
// returns the input assignment to try.  The walk only descends through nets
// whose forward-simulation value at the level is still unassigned; it
// reports ok=false when no such input exists (the requirement cannot be
// helped by a new input assignment, typically because the level is already
// doomed to conflict).
func Backtrace(st *implic.State, m *testability.Measures, net circuit.NetID, want logic.Value7, level int) (Objective, bool) {
	c := st.Circuit()
	cur := net
	cur7 := want
	for steps := 0; steps <= c.NumNets(); steps++ {
		curWant := cur7.Final()
		if !curWant.IsAssigned() {
			// A pure stability requirement or an unknown value: default to
			// driving towards 1 (the exact value is refined by enumeration).
			curWant = logic.One3
		}
		g := c.Gate(cur)
		if g.Kind == logic.Input {
			if st.SimGet(cur, level) != logic.X7 {
				return Objective{}, false
			}
			return Objective{Input: cur, Value: curWant}, true
		}
		next, nextWant, ok := step(st, m, g, curWant, level)
		if !ok {
			return Objective{}, false
		}
		cur = next
		cur7 = logic.Value7From3(nextWant)
	}
	return Objective{}, false
}

// step chooses the fanin of g to descend into, and the value wanted there,
// in order to produce want at the output of g.
func step(st *implic.State, m *testability.Measures, g *circuit.Gate, want logic.Value3, level int) (circuit.NetID, logic.Value3, bool) {
	switch g.Kind {
	case logic.Buf:
		return g.Fanin[0], want, unassigned(st, g.Fanin[0], level)
	case logic.Not:
		return g.Fanin[0], want.Not(), unassigned(st, g.Fanin[0], level)
	case logic.Const0, logic.Const1, logic.Input:
		return circuit.InvalidNet, want, false
	}

	// Express the goal in terms of the monotone core of the gate.
	coreWant := want
	if g.Kind.OutputInversion() {
		coreWant = want.Not()
	}

	switch g.Kind {
	case logic.And, logic.Nand, logic.Or, logic.Nor:
		ctrl, _ := g.Kind.Controlling()
		nonCtrl, _ := g.Kind.NonControlling()
		// In core terms: AND needs all-1 for 1 and any-0 for 0; OR-family is
		// handled by the controlling/non-controlling values directly.
		needAll := false
		var inputWant logic.Value3
		if g.Kind == logic.And || g.Kind == logic.Nand {
			if coreWant == logic.One3 {
				needAll, inputWant = true, nonCtrl
			} else {
				needAll, inputWant = false, ctrl
			}
		} else {
			// OR core: output 1 needs any input 1 (controlling), output 0
			// needs all inputs 0.
			if coreWant == logic.One3 {
				needAll, inputWant = false, ctrl
			} else {
				needAll, inputWant = true, nonCtrl
			}
		}
		best := circuit.InvalidNet
		bestCost := 0
		for _, f := range g.Fanin {
			if !unassigned(st, f, level) {
				continue
			}
			cost := m.Cost(f, inputWant)
			if best == circuit.InvalidNet ||
				(needAll && cost > bestCost) || // hardest first when all inputs are needed
				(!needAll && cost < bestCost) { // easiest first when one input suffices
				best, bestCost = f, cost
			}
		}
		if best == circuit.InvalidNet {
			return circuit.InvalidNet, want, false
		}
		return best, inputWant, true

	case logic.Xor, logic.Xnor:
		// Choose an unassigned fanin; the wanted value is the parity
		// complement of the known fanins (defaulting to the core want).
		parity := logic.Zero3
		allOthersKnown := true
		best := circuit.InvalidNet
		bestCost := 0
		for _, f := range g.Fanin {
			v := st.SimGet(f, level).Final()
			if v.IsAssigned() {
				if v == logic.One3 {
					parity = parity.Not()
				}
				continue
			}
			allOthersKnown = false
			cost := m.Cost(f, logic.Zero3)
			if best == circuit.InvalidNet || cost < bestCost {
				best, bestCost = f, cost
			}
		}
		if best == circuit.InvalidNet {
			return circuit.InvalidNet, want, false
		}
		inputWant := logic.Zero3
		if allOthersKnown || onlyUnassigned(st, g, level) == 1 {
			// The last free fanin is forced by the parity of the rest.
			if coreWant == logic.One3 {
				inputWant = parity.Not()
			} else {
				inputWant = parity
			}
		}
		return best, inputWant, true
	}
	return circuit.InvalidNet, want, false
}

func unassigned(st *implic.State, net circuit.NetID, level int) bool {
	return st.SimGet(net, level) == logic.X7
}

func onlyUnassigned(st *implic.State, g *circuit.Gate, level int) int {
	n := 0
	for _, f := range g.Fanin {
		if unassigned(st, f, level) {
			n++
		}
	}
	return n
}
