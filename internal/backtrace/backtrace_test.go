package backtrace

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/implic"
	"repro/internal/logic"
)

func TestControllabilityBasics(t *testing.T) {
	c := bench.C17()
	cc := NewControllability(c)
	for _, in := range c.Inputs() {
		if cc.CC0[in] != 1 || cc.CC1[in] != 1 {
			t.Errorf("input %s controllability should be 1/1", c.NetName(in))
		}
	}
	// NAND gate 10 = NAND(1,3): setting it to 0 requires both inputs at 1
	// (cost 1+1+1 = 3), setting it to 1 requires one input at 0 (cost 2).
	n10 := c.NetByName("10")
	if cc.CC0[n10] != 3 {
		t.Errorf("CC0(10) = %d, want 3", cc.CC0[n10])
	}
	if cc.CC1[n10] != 2 {
		t.Errorf("CC1(10) = %d, want 2", cc.CC1[n10])
	}
	// Deeper gates are harder to control than shallower ones.
	n22 := c.NetByName("22")
	if cc.CC0[n22] <= cc.CC0[n10] {
		t.Errorf("CC0(22)=%d should exceed CC0(10)=%d", cc.CC0[n22], cc.CC0[n10])
	}
	if cc.Cost(n10, logic.Zero3) != cc.CC0[n10] || cc.Cost(n10, logic.One3) != cc.CC1[n10] {
		t.Error("Cost accessor inconsistent")
	}
}

func TestControllabilityAllKinds(t *testing.T) {
	b := circuit.NewBuilder("kinds")
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate("and", logic.And, a, bb)
	or := b.Gate("or", logic.Or, a, bb)
	xor := b.Gate("xor", logic.Xor, a, bb)
	xnor := b.Gate("xnor", logic.Xnor, a, bb)
	not := b.Gate("not", logic.Not, a)
	buf := b.Gate("buf", logic.Buf, bb)
	z0 := b.Const("z0", false)
	z1 := b.Const("z1", true)
	top := b.Gate("top", logic.Or, and, or, xor, xnor, not, buf, z0, z1)
	b.Output(top)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cc := NewControllability(c)
	if cc.CC1[and] != 3 || cc.CC0[and] != 2 {
		t.Errorf("AND controllability %d/%d, want CC0=2 CC1=3", cc.CC0[and], cc.CC1[and])
	}
	if cc.CC0[or] != 3 || cc.CC1[or] != 2 {
		t.Errorf("OR controllability %d/%d, want CC0=3 CC1=2", cc.CC0[or], cc.CC1[or])
	}
	if cc.CC0[xor] != 3 || cc.CC1[xor] != 3 {
		t.Errorf("XOR controllability %d/%d, want 3/3", cc.CC0[xor], cc.CC1[xor])
	}
	if cc.CC0[xnor] != 3 || cc.CC1[xnor] != 3 {
		t.Errorf("XNOR controllability %d/%d, want 3/3", cc.CC0[xnor], cc.CC1[xnor])
	}
	if cc.CC0[not] != 2 || cc.CC1[not] != 2 {
		t.Errorf("NOT controllability %d/%d, want 2/2", cc.CC0[not], cc.CC1[not])
	}
	if cc.CC0[buf] != 2 || cc.CC1[buf] != 2 {
		t.Errorf("BUF controllability %d/%d, want 2/2", cc.CC0[buf], cc.CC1[buf])
	}
	if cc.CC0[z0] != 1 || cc.CC1[z0] != maxCC {
		t.Errorf("CONST0 controllability %d/%d", cc.CC0[z0], cc.CC1[z0])
	}
	if cc.CC1[z1] != 1 || cc.CC0[z1] != maxCC {
		t.Errorf("CONST1 controllability %d/%d", cc.CC0[z1], cc.CC1[z1])
	}
}

func TestBacktraceDirectInput(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(1)
	cc := NewControllability(c)
	in2 := c.NetByName("2")
	st.ForwardSim()
	obj, ok := Backtrace(st, cc, in2, logic.Final1, 0)
	if !ok {
		t.Fatal("backtrace from an unassigned input should succeed")
	}
	if obj.Input != in2 || obj.Value != logic.One3 {
		t.Errorf("objective = %+v, want input 2 = 1", obj)
	}
	// Once the input is assigned, backtracing to it must fail.
	st.AssignPI(in2, logic.Stable0, 1)
	st.ForwardSim()
	if _, ok := Backtrace(st, cc, in2, logic.Final1, 0); ok {
		t.Error("backtrace to an already assigned input should fail")
	}
}

func TestBacktraceThroughGates(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(1)
	st.ForwardSim()
	cc := NewControllability(c)

	// Justify 16 = NAND(2,11) to 0: all inputs must be 1, so the objective
	// is one of the inputs driven towards 1 (through NAND 11 this means its
	// inputs go to 0).
	n16 := c.NetByName("16")
	obj, ok := Backtrace(st, cc, n16, logic.Final0, 0)
	if !ok {
		t.Fatal("backtrace should find an objective")
	}
	if !c.IsInput(obj.Input) {
		t.Fatalf("objective %s is not a primary input", c.NetName(obj.Input))
	}
	// The objective must be consistent: assigning it and simulating either
	// justifies something or at least assigns the chosen input.
	v := logic.Stable0
	if obj.Value == logic.One3 {
		v = logic.Stable1
	}
	st.AssignPI(obj.Input, v, 1)
	st.ForwardSim()
	if st.SimValue(obj.Input).Get(0) == logic.X7 {
		t.Error("assigned objective input should no longer be X")
	}

	// Justify 22 = NAND(10,16) to 1: one input at 0 suffices; the backtrace
	// should reach an input through the easiest fanin.
	n22 := c.NetByName("22")
	obj2, ok := Backtrace(st, cc, n22, logic.Final1, 0)
	if !ok {
		t.Fatal("backtrace for 22=1 should find an objective")
	}
	if !c.IsInput(obj2.Input) {
		t.Fatalf("objective %s is not a primary input", c.NetName(obj2.Input))
	}
}

func TestBacktraceRepeatedJustification(t *testing.T) {
	// Repeatedly backtracing and assigning must eventually justify a
	// requirement on every gate of c17 (both values), never looping.
	c := bench.C17()
	cc := NewControllability(c)
	for _, g := range c.Gates() {
		if c.IsInput(g.ID) {
			continue
		}
		for _, want := range []logic.Value7{logic.Final0, logic.Final1} {
			st := implic.NewState(c)
			st.Reset(1)
			st.AddRequirement(g.ID, want, 1)
			st.Imply()
			st.ForwardSim()
			for iter := 0; iter < 20; iter++ {
				if st.JustifiedMask()&1 != 0 {
					break
				}
				unj := st.Unjustified(0)
				if len(unj) == 0 {
					break
				}
				progressed := false
				for _, net := range unj {
					obj, ok := Backtrace(st, cc, net, st.Requirement(net).Get(0), 0)
					if !ok {
						continue
					}
					v := logic.Stable0
					if obj.Value == logic.One3 {
						v = logic.Stable1
					}
					st.AssignPI(obj.Input, v, 1)
					progressed = true
					break
				}
				if !progressed {
					break
				}
				st.Imply()
				st.ForwardSim()
			}
			if st.JustifiedMask()&1 == 0 {
				t.Errorf("could not justify %s = %v on c17", g.Name, want)
			}
		}
	}
}

func TestBacktraceXorParity(t *testing.T) {
	b := circuit.NewBuilder("xor3")
	a := b.Input("a")
	bb := b.Input("b")
	cc3 := b.Input("c")
	x := b.Gate("x", logic.Xor, a, bb, cc3)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := implic.NewState(c)
	st.Reset(1)
	st.AssignPI(a, logic.Stable1, 1)
	st.AssignPI(bb, logic.Stable0, 1)
	st.ForwardSim()
	cc := NewControllability(c)
	// With a=1 and b=0 known, making x=0 requires c=1.
	obj, ok := Backtrace(st, cc, x, logic.Final0, 0)
	if !ok {
		t.Fatal("backtrace through XOR should succeed")
	}
	if obj.Input != cc3 || obj.Value != logic.One3 {
		t.Errorf("objective = %v=%v, want c=1", c.NetName(obj.Input), obj.Value)
	}
	// Making x=1 requires c=0.
	obj, ok = Backtrace(st, cc, x, logic.Final1, 0)
	if !ok || obj.Input != cc3 || obj.Value != logic.Zero3 {
		t.Errorf("objective = %+v, want c=0", obj)
	}
}

func TestBacktraceFailsWhenEverythingAssigned(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(1)
	for _, in := range c.Inputs() {
		st.AssignPI(in, logic.Stable1, 1)
	}
	st.ForwardSim()
	cc := NewControllability(c)
	// 22 simulates to 1 under the all-ones vector; asking to justify 22=0
	// cannot propose any new input.
	if _, ok := Backtrace(st, cc, c.NetByName("22"), logic.Final0, 0); ok {
		t.Error("backtrace with all inputs assigned should fail")
	}
}
