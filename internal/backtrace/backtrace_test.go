package backtrace

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/testability"
)

func TestBacktraceDirectInput(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(logic.LevelsMask(1))
	cc := testability.Analyze(c)
	in2 := c.NetByName("2")
	st.ForwardSim()
	obj, ok := Backtrace(st, cc, in2, logic.Final1, 0)
	if !ok {
		t.Fatal("backtrace from an unassigned input should succeed")
	}
	if obj.Input != in2 || obj.Value != logic.One3 {
		t.Errorf("objective = %+v, want input 2 = 1", obj)
	}
	// Once the input is assigned, backtracing to it must fail.
	st.AssignPI(in2, logic.Stable0, logic.LevelsMask(1))
	st.ForwardSim()
	if _, ok := Backtrace(st, cc, in2, logic.Final1, 0); ok {
		t.Error("backtrace to an already assigned input should fail")
	}
}

func TestBacktraceThroughGates(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(logic.LevelsMask(1))
	st.ForwardSim()
	cc := testability.Analyze(c)

	// Justify 16 = NAND(2,11) to 0: all inputs must be 1, so the objective
	// is one of the inputs driven towards 1 (through NAND 11 this means its
	// inputs go to 0).
	n16 := c.NetByName("16")
	obj, ok := Backtrace(st, cc, n16, logic.Final0, 0)
	if !ok {
		t.Fatal("backtrace should find an objective")
	}
	if !c.IsInput(obj.Input) {
		t.Fatalf("objective %s is not a primary input", c.NetName(obj.Input))
	}
	// The objective must be consistent: assigning it and simulating either
	// justifies something or at least assigns the chosen input.
	v := logic.Stable0
	if obj.Value == logic.One3 {
		v = logic.Stable1
	}
	st.AssignPI(obj.Input, v, logic.LevelsMask(1))
	st.ForwardSim()
	if st.SimGet(obj.Input, 0) == logic.X7 {
		t.Error("assigned objective input should no longer be X")
	}

	// Justify 22 = NAND(10,16) to 1: one input at 0 suffices; the backtrace
	// should reach an input through the easiest fanin.
	n22 := c.NetByName("22")
	obj2, ok := Backtrace(st, cc, n22, logic.Final1, 0)
	if !ok {
		t.Fatal("backtrace for 22=1 should find an objective")
	}
	if !c.IsInput(obj2.Input) {
		t.Fatalf("objective %s is not a primary input", c.NetName(obj2.Input))
	}
}

func TestBacktraceRepeatedJustification(t *testing.T) {
	// Repeatedly backtracing and assigning must eventually justify a
	// requirement on every gate of c17 (both values), never looping.
	c := bench.C17()
	cc := testability.Analyze(c)
	for _, g := range c.Gates() {
		if c.IsInput(g.ID) {
			continue
		}
		for _, want := range []logic.Value7{logic.Final0, logic.Final1} {
			st := implic.NewState(c)
			st.Reset(logic.LevelsMask(1))
			st.AddRequirement(g.ID, want, logic.LevelsMask(1))
			st.Imply()
			st.ForwardSim()
			for iter := 0; iter < 20; iter++ {
				if st.JustifiedMask().Bit(0) {
					break
				}
				unj := st.Unjustified(0)
				if len(unj) == 0 {
					break
				}
				progressed := false
				for _, net := range unj {
					obj, ok := Backtrace(st, cc, net, st.Requirement(net).Get(0), 0)
					if !ok {
						continue
					}
					v := logic.Stable0
					if obj.Value == logic.One3 {
						v = logic.Stable1
					}
					st.AssignPI(obj.Input, v, logic.LevelsMask(1))
					progressed = true
					break
				}
				if !progressed {
					break
				}
				st.Imply()
				st.ForwardSim()
			}
			if !st.JustifiedMask().Bit(0) {
				t.Errorf("could not justify %s = %v on c17", g.Name, want)
			}
		}
	}
}

func TestBacktraceXorParity(t *testing.T) {
	b := circuit.NewBuilder("xor3")
	a := b.Input("a")
	bb := b.Input("b")
	cc3 := b.Input("c")
	x := b.Gate("x", logic.Xor, a, bb, cc3)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := implic.NewState(c)
	st.Reset(logic.LevelsMask(1))
	st.AssignPI(a, logic.Stable1, logic.LevelsMask(1))
	st.AssignPI(bb, logic.Stable0, logic.LevelsMask(1))
	st.ForwardSim()
	cc := testability.Analyze(c)
	// With a=1 and b=0 known, making x=0 requires c=1.
	obj, ok := Backtrace(st, cc, x, logic.Final0, 0)
	if !ok {
		t.Fatal("backtrace through XOR should succeed")
	}
	if obj.Input != cc3 || obj.Value != logic.One3 {
		t.Errorf("objective = %v=%v, want c=1", c.NetName(obj.Input), obj.Value)
	}
	// Making x=1 requires c=0.
	obj, ok = Backtrace(st, cc, x, logic.Final1, 0)
	if !ok || obj.Input != cc3 || obj.Value != logic.Zero3 {
		t.Errorf("objective = %+v, want c=0", obj)
	}
}

func TestBacktraceFailsWhenEverythingAssigned(t *testing.T) {
	c := bench.C17()
	st := implic.NewState(c)
	st.Reset(logic.LevelsMask(1))
	for _, in := range c.Inputs() {
		st.AssignPI(in, logic.Stable1, logic.LevelsMask(1))
	}
	st.ForwardSim()
	cc := testability.Analyze(c)
	// 22 simulates to 1 under the all-ones vector; asking to justify 22=0
	// cannot propose any new input.
	if _, ok := Backtrace(st, cc, c.NetByName("22"), logic.Final0, 0); ok {
		t.Error("backtrace with all inputs assigned should fail")
	}
}
