package faultsim

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
)

// pairFor builds a test pair for the circuit from a map of input name to
// (v1, v2) values.
func pairFor(c *circuit.Circuit, vals map[string][2]logic.Value3) pattern.Pair {
	p := pattern.NewPair(len(c.Inputs()))
	for i, in := range c.Inputs() {
		if v, ok := vals[c.NetName(in)]; ok {
			p.V1[i], p.V2[i] = v[0], v[1]
		}
	}
	return p
}

func pathByNames(t *testing.T, c *circuit.Circuit, names ...string) paths.Path {
	t.Helper()
	nets := make([]circuit.NetID, len(names))
	for i, n := range names {
		nets[i] = c.NetByName(n)
	}
	p := paths.Path{Nets: nets}
	if err := p.Validate(c); err != nil {
		t.Fatalf("invalid path %v: %v", names, err)
	}
	return p
}

const (
	lo = iota
	hi
)

func v(a, b int) [2]logic.Value3 {
	conv := func(x int) logic.Value3 {
		if x == hi {
			return logic.One3
		}
		return logic.Zero3
	}
	return [2]logic.Value3{conv(a), conv(b)}
}

func TestDetectsC17HandChecked(t *testing.T) {
	c := bench.C17()
	sim := New(c)
	// Target path 3 - 11 - 16 - 22, rising at 3.
	// Side conditions: 6 = 1 (final), 2 = stable 1, 10 = 1 (final).
	// 10 = NAND(1,3): with 3 rising, 10 ends at NAND(1,1): choose 1 = 0 so
	// that 10 = 1 in the final vector.
	fault := paths.Fault{Path: pathByNames(t, c, "3", "11", "16", "22"), Transition: paths.Rising}
	good := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(hi, hi), "3": v(lo, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	if _, err := sim.Load([]pattern.Pair{good}); err != nil {
		t.Fatal(err)
	}
	if mask := sim.Detects(fault, true); mask != 1 {
		t.Errorf("good pair should robustly detect the fault, mask = %b", mask)
	}
	if mask := sim.Detects(fault, false); mask != 1 {
		t.Errorf("good pair should nonrobustly detect the fault, mask = %b", mask)
	}

	// Without the launch transition (3 held stable) nothing is detected.
	noLaunch := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(hi, hi), "3": v(hi, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	if _, err := sim.Load([]pattern.Pair{noLaunch}); err != nil {
		t.Fatal(err)
	}
	if mask := sim.Detects(fault, false); mask != 0 {
		t.Errorf("pair without a launch transition must not detect, mask = %b", mask)
	}

	// Side input 2 falling (1 -> 0 would block; use 0 -> 1 rising): gate 16
	// sees its side input change, which breaks the robust condition for the
	// falling on-path transition at 11, but the nonrobust condition (final
	// value 1) still holds.
	hazard := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(lo, hi), "3": v(lo, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	if _, err := sim.Load([]pattern.Pair{hazard}); err != nil {
		t.Fatal(err)
	}
	if mask := sim.Detects(fault, true); mask != 0 {
		t.Errorf("changing side input 2 must break robust detection, mask = %b", mask)
	}
	if mask := sim.Detects(fault, false); mask != 1 {
		t.Errorf("nonrobust detection should survive a changing side input, mask = %b", mask)
	}

	// Wrong final value on a side input kills even nonrobust detection.
	blocked := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(lo, lo), "3": v(lo, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	if _, err := sim.Load([]pattern.Pair{blocked}); err != nil {
		t.Fatal(err)
	}
	if mask := sim.Detects(fault, false); mask != 0 {
		t.Errorf("controlling side value must block detection, mask = %b", mask)
	}
}

func TestDetectsBatchParallel(t *testing.T) {
	c := bench.C17()
	fault := paths.Fault{Path: pathByNames(t, c, "3", "11", "16", "22"), Transition: paths.Rising}
	good := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(hi, hi), "3": v(lo, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	bad := pairFor(c, map[string][2]logic.Value3{
		"1": v(lo, lo), "2": v(lo, lo), "3": v(lo, hi), "6": v(hi, hi), "7": v(lo, lo),
	})
	sim := New(c)
	n, err := sim.Load([]pattern.Pair{bad, good, bad, good})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d pairs", n)
	}
	if mask := sim.Detects(fault, true); mask != 0b1010 {
		t.Errorf("detection mask = %04b, want 1010", mask)
	}
	if sim.BatchMask() != 0b1111 {
		t.Errorf("batch mask = %b", sim.BatchMask())
	}
}

// TestRobustImpliesNonrobust is the fundamental containment property of the
// two test classes: any robustly detected (fault, pair) combination is also
// nonrobustly detected.
func TestRobustImpliesNonrobust(t *testing.T) {
	circuits := []*circuit.Circuit{bench.C17(), bench.PaperExample(), bench.Adder(4), bench.MuxTree(2)}
	for _, c := range circuits {
		faults := paths.EnumerateFaults(c, 200)
		pairs := randomPairs(c, 64, 12345)
		sim := New(c)
		if _, err := sim.Load(pairs); err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			rob := sim.Detects(f, true)
			non := sim.Detects(f, false)
			if rob&^non != 0 {
				t.Fatalf("%s: fault %s robustly detected on pairs %b but not nonrobustly (%b)",
					c.Name, f.Describe(c), rob, non)
			}
		}
	}
}

func randomPairs(c *circuit.Circuit, n int, seed int64) []pattern.Pair {
	// Simple deterministic pseudo-random vectors (xorshift) — enough for
	// property tests without importing math/rand here.
	state := uint64(seed)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	pairs := make([]pattern.Pair, n)
	for i := range pairs {
		p := pattern.NewPair(len(c.Inputs()))
		for j := range p.V1 {
			if next()&1 == 1 {
				p.V1[j] = logic.One3
			} else {
				p.V1[j] = logic.Zero3
			}
			if next()&1 == 1 {
				p.V2[j] = logic.One3
			} else {
				p.V2[j] = logic.Zero3
			}
		}
		pairs[i] = p
	}
	return pairs
}

func TestRunAndCoverage(t *testing.T) {
	c := bench.C17()
	faults := paths.EnumerateFaults(c, 0)
	if len(faults) != 22 {
		t.Fatalf("c17 should have 22 faults, got %d", len(faults))
	}
	pairs := randomPairs(c, 128, 999)
	res, err := Run(c, pairs, faults, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected == 0 {
		t.Error("128 random pairs should detect at least one fault of c17")
	}
	count := 0
	for i, d := range res.Detected {
		if d {
			count++
			if res.DetectedBy[i] < 0 || res.DetectedBy[i] >= len(pairs) {
				t.Errorf("DetectedBy[%d] = %d out of range", i, res.DetectedBy[i])
			}
		} else if res.DetectedBy[i] != -1 {
			t.Errorf("undetected fault %d has DetectedBy %d", i, res.DetectedBy[i])
		}
	}
	if count != res.NumDetected {
		t.Errorf("NumDetected %d != counted %d", res.NumDetected, count)
	}
	cov, err := Coverage(c, pairs, faults, false)
	if err != nil {
		t.Fatal(err)
	}
	if cov != float64(res.NumDetected)/22 {
		t.Errorf("coverage %v inconsistent with %d/22", cov, res.NumDetected)
	}
	covR, err := Coverage(c, pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	if covR > cov {
		t.Errorf("robust coverage %v cannot exceed nonrobust coverage %v", covR, cov)
	}
	// Empty fault list yields zero coverage without error.
	if z, err := Coverage(c, pairs, nil, false); err != nil || z != 0 {
		t.Errorf("Coverage with no faults = %v, %v", z, err)
	}
}

func TestEstimateCoverage(t *testing.T) {
	c := bench.Adder(6)
	pairs := randomPairs(c, 256, 4242)
	est, n, err := EstimateCoverage(c, pairs, 100, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no faults sampled")
	}
	if est < 0 || est > 1 {
		t.Errorf("estimate %v out of range", est)
	}
	// The estimate should not be wildly off the exhaustive value for this
	// small circuit.
	exact, err := Coverage(c, pairs, paths.EnumerateFaults(c, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if est == 0 && exact > 0.3 {
		t.Errorf("estimate 0 but exact coverage %v", exact)
	}
}

func TestLoadErrors(t *testing.T) {
	c := bench.C17()
	sim := New(c)
	bad := pattern.NewPair(3)
	if _, err := sim.Load([]pattern.Pair{bad}); err == nil {
		t.Error("loading a pair with the wrong arity should fail")
	}
	// More than BatchSize pairs: only the first BatchSize are loaded.
	many := make([]pattern.Pair, BatchSize+10)
	for i := range many {
		many[i] = pattern.NewPair(len(c.Inputs())).FillX(logic.Zero3)
	}
	n, err := sim.Load(many)
	if err != nil {
		t.Fatal(err)
	}
	if n != BatchSize {
		t.Errorf("loaded %d pairs, want %d", n, BatchSize)
	}
}

func BenchmarkFaultSimC880Class(b *testing.B) {
	p, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(p)
	faults := paths.SampleFaults(c, 500, 3)
	pairs := randomPairs(c, 64, 17)
	sim := New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Load(pairs); err != nil {
			b.Fatal(err)
		}
		for _, f := range faults {
			sim.Detects(f, true)
		}
	}
}

func TestRunParallelMatchesRun(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	pairs := randomPairs(c, 100, 7)
	for _, robust := range []bool{false, true} {
		want, err := Run(c, pairs, faults, robust)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 16, 1000} {
			got, err := RunParallel(c, pairs, faults, robust, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumDetected != want.NumDetected {
				t.Errorf("workers=%d robust=%v: NumDetected %d, want %d",
					workers, robust, got.NumDetected, want.NumDetected)
			}
			for i := range faults {
				if got.Detected[i] != want.Detected[i] || got.DetectedBy[i] != want.DetectedBy[i] {
					t.Errorf("workers=%d robust=%v fault %d: (%v, %d), want (%v, %d)",
						workers, robust, i, got.Detected[i], got.DetectedBy[i],
						want.Detected[i], want.DetectedBy[i])
				}
			}
		}
	}
	// A pair/input mismatch must surface from the workers, not be swallowed.
	bad := []pattern.Pair{pattern.NewPair(1)}
	if _, err := RunParallel(c, bad, faults, false, 4); err == nil {
		t.Error("RunParallel with malformed pairs: expected an error")
	}
}
