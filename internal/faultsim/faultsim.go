// Package faultsim implements parallel-pattern path delay fault simulation.
//
// Up to 64 two-vector tests are simulated simultaneously: bit level i of
// every value word corresponds to test pair i of the batch, mirroring the
// parallel-pattern fault simulators the paper builds on.  Each primary input
// is driven with the seven-valued value describing its behaviour across the
// two vectors (stable, rising, falling, or final-only when the first vector
// leaves it unspecified), the circuit is evaluated once, and every fault's
// detection condition is then checked along its path with word-wide mask
// operations.
package faultsim

import (
	"fmt"
	"sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
)

// Simulator evaluates batches of up to 64 test pairs against path delay
// faults.  A Simulator is bound to one circuit and reused across batches.
type Simulator struct {
	c    *circuit.Circuit
	vals []logic.Word7
	n    int // number of pairs in the current batch

	// faninBuf is the gate-evaluation scratch, hoisted here so Load does not
	// allocate per call.
	faninBuf []logic.Word7
}

// New returns a simulator for the circuit.
func New(c *circuit.Circuit) *Simulator {
	return &Simulator{
		c:        c,
		vals:     make([]logic.Word7, c.NumNets()),
		faninBuf: make([]logic.Word7, 0, 8),
	}
}

// BatchSize is the maximum number of test pairs per batch.
const BatchSize = logic.WordWidth

// Load simulates a batch of up to BatchSize test pairs and returns the
// number of pairs loaded.  Pairs beyond BatchSize are ignored (call Load
// again with the remainder).  Each pair must have one value per primary
// input of the circuit.
func (s *Simulator) Load(pairs []pattern.Pair) (int, error) {
	n := len(pairs)
	if n > BatchSize {
		n = BatchSize
	}
	inputs := s.c.Inputs()
	// Only the input nets accumulate batch values (MergeAt below); every
	// other net is overwritten by the evaluation sweep, so clearing the
	// inputs is enough to erase the previous batch.
	for _, in := range inputs {
		s.vals[in] = logic.Word7{}
	}
	for j := 0; j < n; j++ {
		if pairs[j].Len() != len(inputs) {
			return 0, fmt.Errorf("faultsim: pair %d has %d values for %d inputs", j, pairs[j].Len(), len(inputs))
		}
		for i, in := range inputs {
			s.vals[in].MergeAt(j, pairs[j].Value7(i))
		}
	}
	for _, id := range s.c.TopoOrder() {
		g := s.c.Gate(id)
		if g.Kind == logic.Input {
			continue
		}
		s.faninBuf = s.faninBuf[:0]
		for _, f := range g.Fanin {
			s.faninBuf = append(s.faninBuf, s.vals[f])
		}
		s.vals[id] = logic.EvalGate7(g.Kind, s.faninBuf)
	}
	s.n = n
	return n, nil
}

// Value returns the simulated value word of a net for the current batch.
func (s *Simulator) Value(net circuit.NetID) logic.Word7 { return s.vals[net] }

// BatchMask returns the mask of bit levels occupied by the current batch.
func (s *Simulator) BatchMask() uint64 { return logic.LevelMask(s.n) }

// Detects returns the mask of test pairs of the current batch that detect
// the fault, robustly when robust is true and nonrobustly otherwise.
//
// A pair detects the fault nonrobustly when it launches the fault's
// transition at the path input and every off-path input of every on-path
// gate holds the gate's non-controlling value in the final vector (off-path
// inputs of XOR-type gates must be stable).  For robust detection the
// off-path inputs must additionally be stable at the non-controlling value
// whenever the on-path input of their gate changes towards the controlling
// value, and the simulated on-path signals must carry the expected
// transitions.
func (s *Simulator) Detects(f paths.Fault, robust bool) uint64 {
	mask := s.BatchMask()
	nets := f.Path.Nets
	trans := f.Transitions(s.c)

	// The launch transition must be present at the path input.
	mask &= s.transitionMask(nets[0], trans[0])
	if mask == 0 {
		return 0
	}

	for i := 1; i < len(nets) && mask != 0; i++ {
		g := s.c.Gate(nets[i])
		onPath := nets[i-1]
		if robust {
			// The transition must propagate along the path.
			mask &= s.transitionMask(nets[i], trans[i])
			if mask == 0 {
				return 0
			}
		}
		if len(g.Fanin) < 2 {
			continue
		}
		seenOnPath := false
		for _, fanin := range g.Fanin {
			if fanin == onPath && !seenOnPath {
				seenOnPath = true
				continue
			}
			mask &= s.sideInputMask(g.Kind, fanin, trans[i-1], robust)
			if mask == 0 {
				return 0
			}
		}
	}
	return mask
}

// transitionMask returns the pairs on which net carries exactly the given
// transition.
func (s *Simulator) transitionMask(net circuit.NetID, t paths.Transition) uint64 {
	v := s.vals[net]
	if t == paths.Rising {
		return v.One & v.Instable
	}
	return v.Zero & v.Instable
}

// sideInputMask returns the pairs on which the off-path input satisfies the
// propagation condition of the gate kind for the given on-path transition.
func (s *Simulator) sideInputMask(kind logic.Kind, side circuit.NetID, onPath paths.Transition, robust bool) uint64 {
	v := s.vals[side]
	switch kind {
	case logic.And, logic.Nand, logic.Or, logic.Nor:
		ctrl, _ := kind.Controlling()
		nonCtrlPlane := v.One
		if nc, _ := kind.NonControlling(); nc == logic.Zero3 {
			nonCtrlPlane = v.Zero
		}
		if robust && onPath.FinalValue3() == ctrl {
			// Change towards the controlling value: the side input must be
			// steady at the non-controlling value.
			return nonCtrlPlane & v.Stable
		}
		return nonCtrlPlane
	case logic.Xor, logic.Xnor:
		// No controlling value: the side input must not change.
		return v.Stable
	}
	// BUF/NOT have no side inputs; anything else cannot be on a path.
	return s.BatchMask()
}

// Result summarises a fault-simulation run.
type Result struct {
	// Detected[i] is true when fault i of the fault list is detected by at
	// least one pair.
	Detected []bool
	// DetectedBy[i] is the index of the first detecting pair, or -1.
	DetectedBy []int
	// NumDetected counts the detected faults.
	NumDetected int
}

// Run simulates all pairs (in batches of BatchSize) against all faults and
// reports which faults are detected.
func Run(c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault, robust bool) (Result, error) {
	res := Result{
		Detected:   make([]bool, len(faults)),
		DetectedBy: make([]int, len(faults)),
	}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	sim := New(c)
	for base := 0; base < len(pairs); base += BatchSize {
		end := base + BatchSize
		if end > len(pairs) {
			end = len(pairs)
		}
		if _, err := sim.Load(pairs[base:end]); err != nil {
			return Result{}, err
		}
		for fi := range faults {
			if res.Detected[fi] {
				continue
			}
			if mask := sim.Detects(faults[fi], robust); mask != 0 {
				res.Detected[fi] = true
				res.DetectedBy[fi] = base + lowestBit(mask)
				res.NumDetected++
			}
		}
	}
	return res, nil
}

// RunParallel is Run sharded across workers goroutines: the fault list is
// split into contiguous near-even shards and each worker simulates all pairs
// against its shard with its own Simulator over the shared immutable
// circuit.  The result is identical to Run (per-fault detection is
// independent, and each fault still scans the pair batches in order, so
// DetectedBy stays the index of the first detecting pair).  workers <= 1
// falls back to the sequential Run.
func RunParallel(c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault, robust bool, workers int) (Result, error) {
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return Run(c, pairs, faults, robust)
	}
	res := Result{
		Detected:   make([]bool, len(faults)),
		DetectedBy: make([]int, len(faults)),
	}
	per, extra := len(faults)/workers, len(faults)%workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	detected := make([]int, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shard, err := Run(c, pairs, faults[lo:hi], robust)
			if err != nil {
				errs[w] = err
				return
			}
			copy(res.Detected[lo:hi], shard.Detected)
			copy(res.DetectedBy[lo:hi], shard.DetectedBy)
			detected[w] = shard.NumDetected
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return Result{}, errs[w]
		}
		res.NumDetected += detected[w]
	}
	return res, nil
}

// Coverage returns the fraction of the given faults detected by the pairs.
func Coverage(c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault, robust bool) (float64, error) {
	if len(faults) == 0 {
		return 0, nil
	}
	res, err := Run(c, pairs, faults, robust)
	if err != nil {
		return 0, err
	}
	return float64(res.NumDetected) / float64(len(faults)), nil
}

// EstimateCoverage estimates the path delay fault coverage of a test set by
// simulating a uniform sample of sampleSize faults (in the spirit of
// non-enumerative coverage estimators such as NEST).  It returns the
// estimated coverage and the number of sampled faults actually simulated.
func EstimateCoverage(c *circuit.Circuit, pairs []pattern.Pair, sampleSize int, seed int64, robust bool) (float64, int, error) {
	faults := paths.SampleFaults(c, sampleSize, seed)
	if len(faults) == 0 {
		return 0, 0, nil
	}
	cov, err := Coverage(c, pairs, faults, robust)
	return cov, len(faults), err
}

func lowestBit(mask uint64) int {
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}
