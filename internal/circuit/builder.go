package circuit

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Builder constructs a Circuit incrementally.  Nets are created by Input,
// Const and Gate calls; Output marks primary outputs.  Build finalizes the
// netlist: it computes fanout lists, levelizes the circuit, checks for
// combinational cycles and validates gate arities.
type Builder struct {
	name    string
	gates   []Gate
	inputs  []NetID
	outputs []NetID
	byName  map[string]NetID
	numDFF  int
	err     error
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]NetID)}
}

// Err returns the first error recorded by the builder, if any.  All builder
// methods become no-ops once an error has been recorded, so a construction
// sequence can be written without intermediate checks and the error examined
// once at Build time.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...interface{}) NetID {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return InvalidNet
}

func (b *Builder) addNet(name string, kind logic.Kind, fanin []NetID) NetID {
	if b.err != nil {
		return InvalidNet
	}
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.gates))
	}
	if _, dup := b.byName[name]; dup {
		return b.fail("circuit %q: duplicate net name %q", b.name, name)
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(b.gates) {
			return b.fail("circuit %q: gate %q references unknown net %d", b.name, name, f)
		}
	}
	id := NetID(len(b.gates))
	b.gates = append(b.gates, Gate{ID: id, Name: name, Kind: kind, Fanin: append([]NetID(nil), fanin...)})
	b.byName[name] = id
	return id
}

// Input declares a primary input net.
func (b *Builder) Input(name string) NetID {
	id := b.addNet(name, logic.Input, nil)
	if id != InvalidNet {
		b.inputs = append(b.inputs, id)
	}
	return id
}

// PseudoInput declares a pseudo primary input (a removed flip-flop output).
func (b *Builder) PseudoInput(name string) NetID {
	id := b.Input(name)
	if id != InvalidNet {
		b.gates[id].PseudoInput = true
		b.numDFF++
	}
	return id
}

// Const declares a constant driver net.
func (b *Builder) Const(name string, one bool) NetID {
	kind := logic.Const0
	if one {
		kind = logic.Const1
	}
	return b.addNet(name, kind, nil)
}

// Gate declares a logic gate driving a new net with the given name.
func (b *Builder) Gate(name string, kind logic.Kind, fanin ...NetID) NetID {
	switch kind {
	case logic.Input:
		return b.fail("circuit %q: use Input to declare primary input %q", b.name, name)
	case logic.Const0, logic.Const1:
		if len(fanin) != 0 {
			return b.fail("circuit %q: constant %q must not have fanin", b.name, name)
		}
	case logic.Buf, logic.Not:
		if len(fanin) != 1 {
			return b.fail("circuit %q: gate %q (%v) needs exactly one fanin, got %d", b.name, name, kind, len(fanin))
		}
	default:
		if len(fanin) < 2 {
			return b.fail("circuit %q: gate %q (%v) needs at least two fanins, got %d", b.name, name, kind, len(fanin))
		}
	}
	return b.addNet(name, kind, fanin)
}

// Output marks an existing net as a primary output.
func (b *Builder) Output(id NetID) {
	if b.err != nil {
		return
	}
	if id < 0 || int(id) >= len(b.gates) {
		b.fail("circuit %q: output references unknown net %d", b.name, id)
		return
	}
	if b.gates[id].IsOutput {
		return
	}
	b.gates[id].IsOutput = true
	b.outputs = append(b.outputs, id)
}

// PseudoOutput marks an existing net as a pseudo primary output (a removed
// flip-flop input).
func (b *Builder) PseudoOutput(id NetID) {
	b.Output(id)
	if b.err == nil {
		b.gates[id].PseudoOutput = true
	}
}

// Build finalizes the circuit.  It computes fanout lists and topological
// levels, verifies the netlist is acyclic and structurally valid, and
// returns the immutable Circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.inputs) == 0 {
		return nil, fmt.Errorf("circuit %q has no primary inputs", b.name)
	}
	if len(b.outputs) == 0 {
		return nil, fmt.Errorf("circuit %q has no primary outputs", b.name)
	}

	c := &Circuit{
		Name:    b.name,
		gates:   b.gates,
		inputs:  b.inputs,
		outputs: b.outputs,
		byName:  b.byName,
		numDFF:  b.numDFF,
	}

	// Fanout lists.  Build may be called more than once on the same builder
	// (for example to add outputs discovered after a first build), so reset
	// any previously computed fanout lists and levels first.
	for i := range c.gates {
		c.gates[i].Fanout = nil
		c.gates[i].Level = 0
	}
	for i := range c.gates {
		g := &c.gates[i]
		for _, f := range g.Fanin {
			c.gates[f].Fanout = append(c.gates[f].Fanout, g.ID)
		}
	}

	// Kahn levelization; detects combinational cycles.
	n := len(c.gates)
	pending := make([]int, n)
	queue := make([]NetID, 0, n)
	for i := range c.gates {
		pending[i] = len(c.gates[i].Fanin)
		if pending[i] == 0 {
			queue = append(queue, NetID(i))
		}
	}
	order := make([]NetID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		g := &c.gates[id]
		level := 0
		for _, f := range g.Fanin {
			if l := c.gates[f].Level + 1; l > level {
				level = l
			}
		}
		g.Level = level
		if level > c.maxLevel {
			c.maxLevel = level
		}
		for _, fo := range g.Fanout {
			pending[fo]--
			if pending[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("circuit %q contains a combinational cycle", b.name)
	}
	// Re-sort the order by (level, id) so iteration is deterministic and
	// level-monotone, which the implication engine relies on.
	sort.Slice(order, func(i, j int) bool {
		li, lj := c.gates[order[i]].Level, c.gates[order[j]].Level
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})
	c.order = order

	// Precompute the topological positions and per-level net buckets the
	// event-driven implication engine schedules on.
	c.orderPos = make([]int32, n)
	c.levelNets = make([][]NetID, c.maxLevel+1)
	for pos, id := range order {
		c.orderPos[id] = int32(pos)
		lvl := c.gates[id].Level
		c.levelNets[lvl] = append(c.levelNets[lvl], id)
	}

	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
