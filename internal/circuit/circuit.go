// Package circuit provides the gate-level combinational netlist model used
// by the path delay fault test pattern generator: construction, ISCAS .bench
// input/output, levelization and structural analysis.
//
// Sequential circuits are handled the way the paper handles them: only the
// combinational part is considered.  D flip-flops found in a .bench file are
// replaced by a pseudo primary input (the flip-flop output) and a pseudo
// primary output (the flip-flop input).
package circuit

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/logic"
)

// NetID identifies a net (equivalently, the gate driving it) inside a
// Circuit.  NetIDs are dense indices starting at 0 and are stable for the
// lifetime of the circuit.
type NetID int32

// InvalidNet is returned by lookups that fail.
const InvalidNet NetID = -1

// Gate is a single-output combinational gate.  The gate and the net it
// drives share the same identifier; primary inputs are modelled as gates of
// kind logic.Input with no fanin.
type Gate struct {
	ID    NetID
	Name  string
	Kind  logic.Kind
	Fanin []NetID

	// Fanout lists the gates whose fanin contains this net.  It is computed
	// by Build and never modified afterwards.
	Fanout []NetID

	// Level is the topological level: inputs have level 0, every other gate
	// has level 1 + max(level of fanin).
	Level int

	// IsOutput marks primary (or pseudo primary) outputs.
	IsOutput bool

	// PseudoInput and PseudoOutput mark nets that replaced a sequential
	// element when the combinational part was extracted.
	PseudoInput  bool
	PseudoOutput bool
}

// Circuit is an immutable combinational netlist.  Use a Builder or the
// .bench parser to construct one.
type Circuit struct {
	Name string

	gates   []Gate
	inputs  []NetID
	outputs []NetID
	order   []NetID // topological order, inputs first
	byName  map[string]NetID

	// orderPos[id] is the index of net id in order; levelNets groups the
	// nets by topological level, each bucket in topological order.  Both are
	// precomputed by Build for the event-driven implication engine.
	orderPos  []int32
	levelNets [][]NetID

	maxLevel int
	numDFF   int

	// memo caches derived analyses keyed by an analysis-owned key type (see
	// Memo).  It is the only mutable state of a Circuit; everything above is
	// frozen by Build.
	memoMu sync.Mutex
	memo   map[any]any
}

// Memo returns the value cached under key, calling compute and caching its
// result on the first request.  It lets analysis packages attach derived,
// circuit-lifetime data (e.g. testability measures) to the circuit they were
// computed from, so independent consumers share one computation without a
// global registry that would outlive the circuit.
//
// Each caller should key with its own unexported struct type, which cannot
// collide across packages.  Memo is safe for concurrent use; compute runs
// under the cache lock and must not call Memo on the same circuit.
func (c *Circuit) Memo(key any, compute func() any) any {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if v, ok := c.memo[key]; ok {
		return v
	}
	if c.memo == nil {
		c.memo = make(map[any]any)
	}
	v := compute()
	c.memo[key] = v
	return v
}

// NumNets returns the number of nets (gates plus primary inputs).
func (c *Circuit) NumNets() int { return len(c.gates) }

// NumGates returns the number of logic gates, excluding primary inputs.
func (c *Circuit) NumGates() int { return len(c.gates) - len(c.inputs) }

// NumDFF returns the number of sequential elements that were removed when
// the combinational part was extracted.
func (c *Circuit) NumDFF() int { return c.numDFF }

// Inputs returns the primary (and pseudo primary) input nets in declaration
// order.  The returned slice must not be modified.
func (c *Circuit) Inputs() []NetID { return c.inputs }

// Outputs returns the primary (and pseudo primary) output nets in
// declaration order.  The returned slice must not be modified.
func (c *Circuit) Outputs() []NetID { return c.outputs }

// Gate returns the gate driving net id.
func (c *Circuit) Gate(id NetID) *Gate { return &c.gates[id] }

// Gates returns all gates indexed by NetID.  The returned slice must not be
// modified.
func (c *Circuit) Gates() []Gate { return c.gates }

// TopoOrder returns all nets in topological order (fanin before fanout).
// The returned slice must not be modified.
func (c *Circuit) TopoOrder() []NetID { return c.order }

// OrderPos returns the position of net id in TopoOrder.  It is the ordering
// key used by the event-driven implication engine to keep levelized event
// processing consistent with the full forward/backward sweeps.
func (c *Circuit) OrderPos(id NetID) int { return int(c.orderPos[id]) }

// NumLevels returns the number of topological levels (MaxLevel + 1), the
// bucket count of per-level event queues.
func (c *Circuit) NumLevels() int { return c.maxLevel + 1 }

// LevelNets returns the nets grouped by topological level: LevelNets()[l]
// holds every net of level l, in topological order.  The returned slices
// must not be modified.
func (c *Circuit) LevelNets() [][]NetID { return c.levelNets }

// MaxLevel returns the largest topological level, i.e. the logic depth.
func (c *Circuit) MaxLevel() int { return c.maxLevel }

// NetByName returns the net with the given name, or InvalidNet if the name
// is unknown.
func (c *Circuit) NetByName(name string) NetID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return InvalidNet
}

// Name of the net with the given id.
func (c *Circuit) NetName(id NetID) string { return c.gates[id].Name }

// IsInput reports whether id is a primary (or pseudo primary) input.
func (c *Circuit) IsInput(id NetID) bool { return c.gates[id].Kind == logic.Input }

// IsOutput reports whether id is a primary (or pseudo primary) output.
func (c *Circuit) IsOutput(id NetID) bool { return c.gates[id].IsOutput }

// Stats summarises the structural properties of a circuit.
type Stats struct {
	Name        string
	Inputs      int
	Outputs     int
	Gates       int
	DFFs        int
	MaxLevel    int
	MaxFanin    int
	MaxFanout   int
	KindCounts  map[logic.Kind]int
	TotalFanins int
}

// Stats computes structural statistics of the circuit.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Name:       c.Name,
		Inputs:     len(c.inputs),
		Outputs:    len(c.outputs),
		Gates:      c.NumGates(),
		DFFs:       c.numDFF,
		MaxLevel:   c.maxLevel,
		KindCounts: make(map[logic.Kind]int),
	}
	for i := range c.gates {
		g := &c.gates[i]
		if g.Kind == logic.Input {
			continue
		}
		s.KindCounts[g.Kind]++
		s.TotalFanins += len(g.Fanin)
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
	}
	for i := range c.gates {
		if n := len(c.gates[i].Fanout); n > s.MaxFanout {
			s.MaxFanout = n
		}
	}
	return s
}

// String renders a short single-line summary of the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d inputs, %d outputs, %d gates, depth %d",
		c.Name, len(c.inputs), len(c.outputs), c.NumGates(), c.maxLevel)
}

// FaninCone returns the set of nets in the transitive fanin of the given
// nets (including the nets themselves), as a sorted slice.
func (c *Circuit) FaninCone(roots ...NetID) []NetID {
	seen := make(map[NetID]bool)
	var stack []NetID
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.gates[id].Fanin {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return sortedNetSet(seen)
}

// FanoutCone returns the set of nets in the transitive fanout of the given
// nets (including the nets themselves), as a sorted slice.
func (c *Circuit) FanoutCone(roots ...NetID) []NetID {
	seen := make(map[NetID]bool)
	var stack []NetID
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.gates[id].Fanout {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return sortedNetSet(seen)
}

func sortedNetSet(set map[NetID]bool) []NetID {
	out := make([]NetID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.  Builders and the parser validate automatically; Validate
// is exposed so tests and tools can re-check invariants.
func (c *Circuit) Validate() error {
	if len(c.inputs) == 0 {
		return fmt.Errorf("circuit %q has no primary inputs", c.Name)
	}
	if len(c.outputs) == 0 {
		return fmt.Errorf("circuit %q has no primary outputs", c.Name)
	}
	for i := range c.gates {
		g := &c.gates[i]
		if g.ID != NetID(i) {
			return fmt.Errorf("gate %q: id %d stored at index %d", g.Name, g.ID, i)
		}
		if !g.Kind.Valid() {
			return fmt.Errorf("gate %q: invalid kind", g.Name)
		}
		switch g.Kind {
		case logic.Input, logic.Const0, logic.Const1:
			if len(g.Fanin) != 0 {
				return fmt.Errorf("gate %q: %v must not have fanin", g.Name, g.Kind)
			}
		case logic.Buf, logic.Not:
			if len(g.Fanin) != 1 {
				return fmt.Errorf("gate %q: %v must have exactly one fanin, has %d", g.Name, g.Kind, len(g.Fanin))
			}
		default:
			if len(g.Fanin) < 2 {
				return fmt.Errorf("gate %q: %v must have at least two fanins, has %d", g.Name, g.Kind, len(g.Fanin))
			}
		}
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= len(c.gates) {
				return fmt.Errorf("gate %q: fanin %d out of range", g.Name, f)
			}
			if c.gates[f].Level >= g.Level {
				return fmt.Errorf("gate %q: fanin %q does not precede it in level order", g.Name, c.gates[f].Name)
			}
		}
	}
	if len(c.order) != len(c.gates) {
		return fmt.Errorf("topological order has %d entries for %d gates", len(c.order), len(c.gates))
	}
	return nil
}
