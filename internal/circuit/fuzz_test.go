package circuit_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
)

// TestParseBuilderErrorsAreParseErrors pins the fix for builder-stage
// failures (duplicate names, no primary inputs) escaping ParseBench without
// the ParseError wrapper.
func TestParseBuilderErrorsAreParseErrors(t *testing.T) {
	for _, src := range []string{
		"INPUT(a)\nINPUT(a)\n",
		"# a comment, but no inputs\n",
	} {
		_, err := circuit.ParseBenchString("t.bench", src)
		if err == nil {
			t.Fatalf("ParseBenchString(%q) succeeded, want error", src)
		}
		var pe *circuit.ParseError
		if !errors.As(err, &pe) || pe.File != "t.bench" {
			t.Errorf("ParseBenchString(%q) error = %T (%v), want *ParseError naming the source", src, err, err)
		}
	}
}

// FuzzParse feeds the .bench parser arbitrary input.  The repository ships
// no .bench files — circuits are generated — so the seed corpus is the
// serialized form of every generator in internal/bench plus a handful of
// malformed shapes.  Invariants: the parser never panics, every error is a
// *ParseError carrying the source name, and parsing is a fixpoint under
// WriteBench serialization.
func FuzzParse(f *testing.F) {
	seeds := []*circuit.Circuit{
		bench.C17(),
		bench.PaperExample(),
		bench.RedundantExample(),
		bench.Adder(2),
		bench.ParityTree(3),
		bench.MuxTree(2),
		bench.Comparator(2),
	}
	for _, c := range seeds {
		f.Add(circuit.BenchString(c))
	}
	f.Add("")
	f.Add("# comment only\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = AND(a, b)\n")
	f.Add("z = AND(z)\n")
	f.Add("INPUT(a)\nINPUT(a)\n")
	f.Add("OUTPUT(q)\nq = NAND(a b)\n")
	f.Add("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n")
	f.Add("INPUT(\nOUTPUT)\n= ()\n")

	f.Fuzz(func(t *testing.T, src string) {
		c, err := circuit.ParseBenchString("fuzz.bench", src)
		if err != nil {
			var pe *circuit.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *ParseError: %T: %v", err, err)
			}
			if pe.File != "fuzz.bench" {
				t.Fatalf("ParseError.File = %q, want %q", pe.File, "fuzz.bench")
			}
			if pe.Line < 0 {
				t.Fatalf("ParseError.Line = %d, want >= 0", pe.Line)
			}
			if !strings.HasPrefix(pe.Error(), "fuzz.bench") {
				t.Fatalf("ParseError message %q does not lead with the source name", pe.Error())
			}
			return
		}
		// A circuit the parser accepts must serialize to a form it accepts
		// again, and serialization must be a fixpoint of the round trip
		// (same source name, since the name is part of the emitted header).
		out := circuit.BenchString(c)
		c2, err := circuit.ParseBenchString("fuzz.bench", out)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nserialized:\n%s", err, out)
		}
		if got := circuit.BenchString(c2); got != out {
			t.Fatalf("round-trip is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out, got)
		}
	})
}
