package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// ParseError is the error type returned by ParseBench for malformed input:
// it records the file (or source name) and, when known, the line the problem
// was found on, and wraps the underlying cause so callers can match it with
// errors.As / errors.Is.
type ParseError struct {
	// File is the name passed to ParseBench (a path for file input).
	File string
	// Line is the 1-based source line of the problem; 0 when the error is
	// not tied to a single line (e.g. an undriven net).
	Line int
	// Err is the underlying cause.
	Err error
}

// Error renders the classical file:line: message form.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %v", e.File, e.Line, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.File, e.Err)
}

// Unwrap returns the underlying cause.
func (e *ParseError) Unwrap() error { return e.Err }

// parseErrf wraps a formatted message in a ParseError.
func parseErrf(file string, line int, format string, args ...any) error {
	return &ParseError{File: file, Line: line, Err: fmt.Errorf(format, args...)}
}

// ParseBench reads a circuit in the ISCAS .bench format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G23 = DFF(G10)
//
// D flip-flops are removed: the DFF output becomes a pseudo primary input and
// the DFF data input becomes a pseudo primary output, so the returned circuit
// is purely combinational, exactly as in the paper's experimental setup.
// Gates with a single fanin declared as AND/OR (NAND/NOR) are converted to
// BUF (NOT).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type rawGate struct {
		out    string
		kind   string
		fanin  []string
		isDFF  bool
		lineNo int
	}

	var (
		inputs   []string
		outputs  []string
		raws     []rawGate
		lineNo   int
		scanner  = bufio.NewScanner(r)
		seenOuts = make(map[string]bool)
	)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseParenArg(line, "INPUT")
			if err != nil {
				return nil, &ParseError{File: name, Line: lineNo, Err: err}
			}
			inputs = append(inputs, arg)
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseParenArg(line, "OUTPUT")
			if err != nil {
				return nil, &ParseError{File: name, Line: lineNo, Err: err}
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, parseErrf(name, lineNo, "expected assignment, got %q", line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, parseErrf(name, lineNo, "malformed gate expression %q", rhs)
			}
			kind := strings.TrimSpace(rhs[:open])
			args := splitArgs(rhs[open+1 : close])
			if out == "" {
				return nil, parseErrf(name, lineNo, "gate with empty output name")
			}
			if seenOuts[out] {
				return nil, parseErrf(name, lineNo, "net %q driven twice", out)
			}
			seenOuts[out] = true
			raws = append(raws, rawGate{
				out:    out,
				kind:   kind,
				fanin:  args,
				isDFF:  strings.EqualFold(kind, "DFF"),
				lineNo: lineNo,
			})
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, &ParseError{File: name, Err: err}
	}

	b := NewBuilder(name)
	// Primary inputs first, then DFF outputs as pseudo primary inputs.
	for _, in := range inputs {
		b.Input(in)
	}
	dffInputs := make(map[string]string) // DFF output net -> DFF data input net
	for _, rg := range raws {
		if rg.isDFF {
			if len(rg.fanin) != 1 {
				return nil, parseErrf(name, rg.lineNo, "DFF %q must have exactly one input", rg.out)
			}
			b.PseudoInput(rg.out)
			dffInputs[rg.out] = rg.fanin[0]
		}
	}

	// Combinational gates in dependency order.  The .bench format allows
	// forward references, so iterate until fixpoint.
	pendingGates := make([]rawGate, 0, len(raws))
	for _, rg := range raws {
		if !rg.isDFF {
			pendingGates = append(pendingGates, rg)
		}
	}
	for len(pendingGates) > 0 {
		progressed := false
		remaining := pendingGates[:0]
		for _, rg := range pendingGates {
			ready := true
			for _, f := range rg.fanin {
				if _, ok := b.byName[f]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				remaining = append(remaining, rg)
				continue
			}
			progressed = true
			kind, err := parseBenchKind(rg.kind, len(rg.fanin))
			if err != nil {
				return nil, &ParseError{File: name, Line: rg.lineNo, Err: err}
			}
			fanin := make([]NetID, len(rg.fanin))
			for i, f := range rg.fanin {
				fanin[i] = b.byName[f]
			}
			b.Gate(rg.out, kind, fanin...)
			if b.Err() != nil {
				return nil, &ParseError{File: name, Line: rg.lineNo, Err: b.Err()}
			}
		}
		if !progressed {
			undefined := map[string]bool{}
			for _, rg := range remaining {
				for _, f := range rg.fanin {
					if _, ok := b.byName[f]; !ok {
						undefined[f] = true
					}
				}
			}
			names := make([]string, 0, len(undefined))
			for n := range undefined {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, parseErrf(name, 0, "undriven or cyclic nets: %s", strings.Join(names, ", "))
		}
		pendingGates = remaining
	}

	// Primary outputs, then DFF data inputs as pseudo primary outputs.
	for _, out := range outputs {
		id, ok := b.byName[out]
		if !ok {
			return nil, parseErrf(name, 0, "OUTPUT(%s) references an undriven net", out)
		}
		b.Output(id)
	}
	dffOuts := make([]string, 0, len(dffInputs))
	for q := range dffInputs {
		dffOuts = append(dffOuts, q)
	}
	sort.Strings(dffOuts)
	for _, q := range dffOuts {
		d := dffInputs[q]
		id, ok := b.byName[d]
		if !ok {
			return nil, parseErrf(name, 0, "DFF %q data input %q is undriven", q, d)
		}
		b.PseudoOutput(id)
	}

	c, err := b.Build()
	if err != nil {
		// Builder errors (duplicate names, no primary inputs, ...) are not
		// tied to a single line, but callers still rely on every ParseBench
		// failure being a *ParseError that names the source.
		return nil, &ParseError{File: name, Err: err}
	}
	return c, nil
}

// ParseBenchString is a convenience wrapper around ParseBench.
func ParseBenchString(name, src string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(src))
}

// WriteBench writes the circuit in .bench format.  Pseudo primary
// inputs/outputs that stand in for removed flip-flops are emitted as regular
// INPUT/OUTPUT statements with a comment noting their origin, so the output
// always describes the combinational circuit that the tools operate on.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, depth %d\n", st.Inputs, st.Outputs, st.Gates, st.MaxLevel)
	for _, in := range c.Inputs() {
		g := c.Gate(in)
		if g.PseudoInput {
			fmt.Fprintf(bw, "INPUT(%s)  # pseudo input (DFF output)\n", g.Name)
		} else {
			fmt.Fprintf(bw, "INPUT(%s)\n", g.Name)
		}
	}
	for _, out := range c.Outputs() {
		g := c.Gate(out)
		if g.PseudoOutput {
			fmt.Fprintf(bw, "OUTPUT(%s)  # pseudo output (DFF input)\n", g.Name)
		} else {
			fmt.Fprintf(bw, "OUTPUT(%s)\n", g.Name)
		}
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Kind == logic.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.NetName(f)
		}
		switch g.Kind {
		case logic.Const0:
			fmt.Fprintf(bw, "%s = CONST0()\n", g.Name)
		case logic.Const1:
			fmt.Fprintf(bw, "%s = CONST1()\n", g.Name)
		default:
			fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, benchKindName(g.Kind), strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}

// BenchString renders the circuit as a .bench text.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	_ = WriteBench(&sb, c)
	return sb.String()
}

func benchKindName(k logic.Kind) string {
	switch k {
	case logic.Buf:
		return "BUFF"
	case logic.Not:
		return "NOT"
	default:
		return k.String()
	}
}

func parseBenchKind(s string, arity int) (logic.Kind, error) {
	kind, err := logic.ParseKind(s)
	if err != nil {
		return logic.Buf, err
	}
	if arity == 1 {
		// Single-input AND/OR behave as buffers, NAND/NOR as inverters.
		switch kind {
		case logic.And, logic.Or, logic.Xor:
			return logic.Buf, nil
		case logic.Nand, logic.Nor, logic.Xnor:
			return logic.Not, nil
		}
	}
	if arity == 0 && kind != logic.Const0 && kind != logic.Const1 {
		return logic.Buf, fmt.Errorf("gate kind %v needs at least one input", kind)
	}
	return kind, nil
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}

func parseParenArg(line, keyword string) (string, error) {
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") {
		return "", fmt.Errorf("malformed %s statement %q", keyword, line)
	}
	close := strings.Index(rest, ")")
	if close < 0 {
		return "", fmt.Errorf("missing ')' in %s statement %q", keyword, line)
	}
	arg := strings.TrimSpace(rest[1:close])
	if arg == "" {
		return "", fmt.Errorf("empty net name in %s statement %q", keyword, line)
	}
	return arg, nil
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
