package circuit

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildC17 constructs the ISCAS85 c17 benchmark with the Builder API.
func buildC17(t testing.TB) *Circuit {
	t.Helper()
	b := NewBuilder("c17")
	g1 := b.Input("1")
	g2 := b.Input("2")
	g3 := b.Input("3")
	g6 := b.Input("6")
	g7 := b.Input("7")
	g10 := b.Gate("10", logic.Nand, g1, g3)
	g11 := b.Gate("11", logic.Nand, g3, g6)
	g16 := b.Gate("16", logic.Nand, g2, g11)
	g19 := b.Gate("19", logic.Nand, g11, g7)
	g22 := b.Gate("22", logic.Nand, g10, g16)
	g23 := b.Gate("23", logic.Nand, g16, g19)
	b.Output(g22)
	b.Output(g23)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("building c17: %v", err)
	}
	return c
}

func TestBuilderC17(t *testing.T) {
	c := buildC17(t)
	if got := c.NumGates(); got != 6 {
		t.Errorf("NumGates = %d, want 6", got)
	}
	if got := len(c.Inputs()); got != 5 {
		t.Errorf("inputs = %d, want 5", got)
	}
	if got := len(c.Outputs()); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if got := c.MaxLevel(); got != 3 {
		t.Errorf("MaxLevel = %d, want 3", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if id := c.NetByName("22"); id == InvalidNet || !c.IsOutput(id) {
		t.Error("net 22 should be a primary output")
	}
	if id := c.NetByName("nope"); id != InvalidNet {
		t.Error("unknown name should return InvalidNet")
	}
	// Topological order property: every fanin appears before its fanout.
	pos := make(map[NetID]int)
	for i, id := range c.TopoOrder() {
		pos[id] = i
	}
	for _, g := range c.Gates() {
		for _, f := range g.Fanin {
			if pos[f] >= pos[g.ID] {
				t.Errorf("net %s appears after its fanout %s in topological order", c.NetName(f), g.Name)
			}
		}
	}
	// Fanout lists are the inverse of fanin lists.
	count := 0
	for _, g := range c.Gates() {
		count += len(g.Fanout)
	}
	fanins := 0
	for _, g := range c.Gates() {
		fanins += len(g.Fanin)
	}
	if count != fanins {
		t.Errorf("total fanout entries %d != total fanin entries %d", count, fanins)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a")
	b.Input("a") // duplicate
	if b.Err() == nil {
		t.Fatal("duplicate input name should record an error")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should fail after an error")
	}

	b = NewBuilder("bad2")
	a = b.Input("a")
	b.Gate("g", logic.And, a) // single-input AND
	if b.Err() == nil {
		t.Fatal("single-input AND should record an error")
	}

	b = NewBuilder("bad3")
	a = b.Input("a")
	b.Gate("n", logic.Not, a, a) // two-input NOT
	if b.Err() == nil {
		t.Fatal("two-input NOT should record an error")
	}

	b = NewBuilder("noout")
	a = b.Input("a")
	b.Gate("n", logic.Not, a)
	if _, err := b.Build(); err == nil {
		t.Fatal("circuit without outputs should not build")
	}

	b = NewBuilder("noin")
	z := b.Const("zero", false)
	b.Output(z)
	if _, err := b.Build(); err == nil {
		t.Fatal("circuit without inputs should not build")
	}

	b = NewBuilder("badref")
	a = b.Input("a")
	b.Gate("g", logic.And, a, NetID(99))
	if b.Err() == nil {
		t.Fatal("reference to unknown net should record an error")
	}

	b = NewBuilder("badinput")
	b.Gate("g", logic.Input)
	if b.Err() == nil {
		t.Fatal("declaring an input via Gate should record an error")
	}

	b = NewBuilder("badout")
	b.Input("a")
	b.Output(NetID(55))
	if b.Err() == nil {
		t.Fatal("marking an unknown net as output should record an error")
	}
}

func TestConesAndStats(t *testing.T) {
	c := buildC17(t)
	g22 := c.NetByName("22")
	cone := c.FaninCone(g22)
	wantNames := map[string]bool{"1": true, "2": true, "3": true, "6": true, "10": true, "11": true, "16": true, "22": true}
	if len(cone) != len(wantNames) {
		t.Fatalf("fanin cone of 22 has %d nets, want %d", len(cone), len(wantNames))
	}
	for _, id := range cone {
		if !wantNames[c.NetName(id)] {
			t.Errorf("unexpected net %s in fanin cone of 22", c.NetName(id))
		}
	}
	g11 := c.NetByName("11")
	fanout := c.FanoutCone(g11)
	wantOut := map[string]bool{"11": true, "16": true, "19": true, "22": true, "23": true}
	if len(fanout) != len(wantOut) {
		t.Fatalf("fanout cone of 11 has %d nets, want %d", len(fanout), len(wantOut))
	}
	st := c.Stats()
	if st.Gates != 6 || st.Inputs != 5 || st.Outputs != 2 || st.MaxLevel != 3 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.KindCounts[logic.Nand] != 6 {
		t.Errorf("KindCounts[NAND] = %d, want 6", st.KindCounts[logic.Nand])
	}
	if st.MaxFanin != 2 || st.MaxFanout < 2 {
		t.Errorf("fanin/fanout stats wrong: %+v", st)
	}
	if !strings.Contains(c.String(), "c17") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCycleDetection(t *testing.T) {
	// A cycle cannot be expressed through the Builder (nets must exist before
	// use), so check the .bench path, which allows forward references.
	src := `
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = AND(a, x)
`
	if _, err := ParseBenchString("cyclic", src); err == nil {
		t.Fatal("cyclic circuit should not parse")
	}
}

const c17Bench = `
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	ref := buildC17(t)
	if c.NumGates() != ref.NumGates() || len(c.Inputs()) != len(ref.Inputs()) || c.MaxLevel() != ref.MaxLevel() {
		t.Errorf("parsed c17 differs from reference: %s vs %s", c, ref)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseBenchForwardReferences(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(m, n)
m = NOT(a)
n = OR(a, b)
`
	c, err := ParseBenchString("fwd", src)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if c.NumGates() != 3 {
		t.Errorf("NumGates = %d, want 3", c.NumGates())
	}
}

func TestParseBenchDFFExtraction(t *testing.T) {
	src := `
# tiny sequential circuit
INPUT(a)
OUTPUT(z)
q = DFF(d)
d = AND(a, q)
z = NOT(q)
`
	c, err := ParseBenchString("seq", src)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if c.NumDFF() != 1 {
		t.Errorf("NumDFF = %d, want 1", c.NumDFF())
	}
	if len(c.Inputs()) != 2 {
		t.Errorf("inputs = %d, want 2 (a and pseudo input q)", len(c.Inputs()))
	}
	if len(c.Outputs()) != 2 {
		t.Errorf("outputs = %d, want 2 (z and pseudo output d)", len(c.Outputs()))
	}
	q := c.NetByName("q")
	if q == InvalidNet || !c.Gate(q).PseudoInput {
		t.Error("q should be a pseudo primary input")
	}
	d := c.NetByName("d")
	if d == InvalidNet || !c.Gate(d).PseudoOutput {
		t.Error("d should be a pseudo primary output")
	}
}

func TestParseBenchSingleInputGates(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
OUTPUT(z)
y = AND(a)
z = NAND(a)
`
	c, err := ParseBenchString("unary", src)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if got := c.Gate(c.NetByName("y")).Kind; got != logic.Buf {
		t.Errorf("single-input AND should become BUF, got %v", got)
	}
	if got := c.Gate(c.NetByName("z")).Kind; got != logic.Not {
		t.Errorf("single-input NAND should become NOT, got %v", got)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"double driver": "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUFF(a)\n",
		"missing paren": "INPUT a\nOUTPUT(x)\nx = NOT(a)\n",
		"bad gate":      "INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n",
		"undriven":      "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n",
		"bad output":    "INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n",
		"no equals":     "INPUT(a)\nOUTPUT(x)\nx NOT(a)\n",
		"bad dff":       "INPUT(a)\nOUTPUT(x)\nq = DFF(a, a)\nx = NOT(q)\n",
	}
	for label, src := range cases {
		if _, err := ParseBenchString(label, src); err == nil {
			t.Errorf("%s: expected a parse error", label)
		}
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	orig, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(orig)
	again, err := ParseBenchString("c17", text)
	if err != nil {
		t.Fatalf("re-parsing written bench: %v\n%s", err, text)
	}
	if again.NumGates() != orig.NumGates() ||
		len(again.Inputs()) != len(orig.Inputs()) ||
		len(again.Outputs()) != len(orig.Outputs()) ||
		again.MaxLevel() != orig.MaxLevel() {
		t.Errorf("round trip changed the circuit: %s vs %s", again, orig)
	}
	// Every original gate must exist with the same kind and fanin names.
	for _, g := range orig.Gates() {
		if g.Kind == logic.Input {
			continue
		}
		id := again.NetByName(g.Name)
		if id == InvalidNet {
			t.Fatalf("net %q lost in round trip", g.Name)
		}
		g2 := again.Gate(id)
		if g2.Kind != g.Kind || len(g2.Fanin) != len(g.Fanin) {
			t.Errorf("gate %q changed in round trip", g.Name)
		}
	}
}

func TestWriteBenchSequentialRoundTrip(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(d)
d = AND(a, q)
z = NOT(q)
`
	c, err := ParseBenchString("seq", src)
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(c)
	again, err := ParseBenchString("seq", text)
	if err != nil {
		t.Fatalf("re-parsing written bench: %v\n%s", err, text)
	}
	// The written form is already combinational: same net counts, no DFFs.
	if again.NumNets() != c.NumNets() {
		t.Errorf("round trip changed net count: %d vs %d", again.NumNets(), c.NumNets())
	}
	if again.NumDFF() != 0 {
		t.Errorf("written bench should be purely combinational")
	}
}
