package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWord7GetSet(t *testing.T) {
	var w Word7
	values := AllValues7()
	for i := 0; i < WordWidth; i++ {
		w.Set(i, values[i%len(values)])
	}
	for i := 0; i < WordWidth; i++ {
		if got := w.Get(i); got != values[i%len(values)] {
			t.Fatalf("level %d: got %v, want %v", i, got, values[i%len(values)])
		}
	}
	w.Set(9, Stable1)
	if w.Get(9) != Stable1 {
		t.Errorf("overwrite failed: %v", w.Get(9))
	}
	w.MergeAt(9, Fall7)
	if !w.Get(9).IsConflict() {
		t.Errorf("MergeAt of incompatible requirements should conflict, got %v", w.Get(9))
	}
}

func TestWord7FillAndMasks(t *testing.T) {
	w := FillWord7(Rise7)
	if w.One != AllLevels || w.Instable != AllLevels || w.Zero != 0 || w.Stable != 0 {
		t.Fatalf("FillWord7(Rise7) = %+v", w)
	}
	if w.AssignedMask() != AllLevels || w.ConflictMask() != 0 || w.XMask() != 0 {
		t.Error("mask computation wrong for a filled word")
	}
	var x Word7
	if x.XMask() != AllLevels {
		t.Error("zero word should be all X")
	}
	c := FillWord7(Stable0 | Stable1)
	if c.ConflictMask() != AllLevels {
		t.Error("0/1 conflict should be flagged at every level")
	}
	c2 := FillWord7(Stable1 | Rise7)
	if c2.ConflictMask() != AllLevels {
		t.Error("stable/instable conflict should be flagged at every level")
	}
}

func TestWord7MergeCoversContradicts(t *testing.T) {
	var a, b Word7
	a.Set(0, Stable1)
	a.Set(1, Final0)
	a.Set(2, Rise7)
	b.Set(0, Final1)
	b.Set(1, Stable0)
	b.Set(2, Fall7)
	m := a.Merge(b)
	if m.Get(0) != Stable1 {
		t.Errorf("merge at level 0 = %v, want Stable1", m.Get(0))
	}
	if m.Get(1) != Stable0 {
		t.Errorf("merge at level 1 = %v, want Stable0", m.Get(1))
	}
	if !m.Get(2).IsConflict() {
		t.Errorf("merge at level 2 = %v, want conflict", m.Get(2))
	}
	if a.CoversMask(b)&LevelMask(3) != 0b001 {
		t.Errorf("CoversMask = %03b", a.CoversMask(b)&LevelMask(3))
	}
	if a.ContradictsMask(b)&LevelMask(3) != 0b100 {
		t.Errorf("ContradictsMask = %03b", a.ContradictsMask(b)&LevelMask(3))
	}
}

func TestWord7WeakenLift(t *testing.T) {
	var w Word7
	w.Set(0, Stable1)
	w.Set(1, Fall7)
	w.Set(2, Final1)
	w3 := w.Weaken3()
	if w3.Get(0) != One3 || w3.Get(1) != Zero3 || w3.Get(2) != One3 || w3.Get(3) != X3 {
		t.Errorf("Weaken3 projection wrong: %s", w3.StringN(4))
	}
	lift := Word7From3(w3)
	if lift.Get(0) != Final1 || lift.Get(1) != Final0 || lift.Get(3) != X7 {
		t.Errorf("Word7From3 lifting wrong: %s", lift.StringN(4))
	}
}

func TestWord7InitialPlanes(t *testing.T) {
	var w Word7
	w.Set(0, Stable0) // initial 0
	w.Set(1, Stable1) // initial 1
	w.Set(2, Rise7)   // initial 0
	w.Set(3, Fall7)   // initial 1
	w.Set(4, Final0)  // initial unknown
	i0, i1 := w.InitialPlanes()
	if i0&LevelMask(5) != 0b00101 {
		t.Errorf("init0 plane = %05b", i0&LevelMask(5))
	}
	if i1&LevelMask(5) != 0b01010 {
		t.Errorf("init1 plane = %05b", i1&LevelMask(5))
	}
}

func TestWord7StringParseRoundTrip(t *testing.T) {
	lits := []string{"", "0", "1", "s", "S", "f", "r", "x", "C", "sSfr01x", "rrrr"}
	for _, lit := range lits {
		w, err := ParseWord7(lit)
		if err != nil {
			t.Fatalf("ParseWord7(%q): %v", lit, err)
		}
		if lit == "" {
			continue
		}
		if got := w.StringN(len(lit)); got != lit {
			t.Errorf("round trip of %q gave %q", lit, got)
		}
	}
	if _, err := ParseWord7("0z"); err == nil {
		t.Error("ParseWord7(\"0z\") should fail")
	}
}

// TestEvalGate7MatchesScalar cross-checks the bit-parallel seven-valued gate
// evaluation against the scalar reference at every bit level for random
// non-conflicting inputs.  This is the central correctness property of the
// Table 2 encoding.
func TestEvalGate7MatchesScalar(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	vals := AllValues7()
	rng := rand.New(rand.NewSource(1995))
	for iter := 0; iter < 200; iter++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := 1
		if kind != Buf && kind != Not {
			n = 1 + rng.Intn(4)
		}
		in := make([]Word7, n)
		for i := range in {
			for lvl := 0; lvl < WordWidth; lvl++ {
				in[i].Set(lvl, vals[rng.Intn(len(vals))])
			}
		}
		out := EvalGate7(kind, in)
		for lvl := 0; lvl < WordWidth; lvl++ {
			scalarIn := make([]Value7, n)
			for i := range in {
				scalarIn[i] = in[i].Get(lvl)
			}
			want := Eval7(kind, scalarIn...)
			if got := out.Get(lvl); got != want {
				t.Fatalf("kind %v level %d: parallel %v, scalar %v (inputs %v)",
					kind, lvl, got, want, scalarIn)
			}
		}
	}
}

// TestEvalGate7SingleLevelProperty mirrors the 3-valued property test with
// testing/quick over single levels.
func TestEvalGate7SingleLevelProperty(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	vals := AllValues7()
	f := func(kindIdx uint8, raw [3]uint8, level uint8) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		lvl := int(level) % WordWidth
		in := make([]Word7, len(raw))
		scalarIn := make([]Value7, len(raw))
		for i, r := range raw {
			v := vals[int(r)%len(vals)]
			scalarIn[i] = v
			in[i].Set(lvl, v)
		}
		out := EvalGate7(kind, in)
		return out.Get(lvl) == Eval7(kind, scalarIn...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestEvalGate7WeakensToGate3 checks that projecting the seven-valued word
// evaluation onto three values agrees with the three-valued word evaluation
// of the projected inputs, at every level.
func TestEvalGate7WeakensToGate3(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	vals := AllValues7()
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := 1 + rng.Intn(4)
		in7 := make([]Word7, n)
		in3 := make([]Word3, n)
		for i := range in7 {
			for lvl := 0; lvl < WordWidth; lvl++ {
				in7[i].Set(lvl, vals[rng.Intn(len(vals))])
			}
			in3[i] = in7[i].Weaken3()
		}
		got := EvalGate7(kind, in7).Weaken3()
		want := EvalGate3(kind, in3)
		if got != want {
			t.Fatalf("kind %v: projection mismatch\n got %s\nwant %s", kind, got.String(), want.String())
		}
	}
}

func TestEvalGate7Constants(t *testing.T) {
	if EvalGate7(Const0, nil) != FillWord7(Stable0) {
		t.Error("Const0 evaluation wrong")
	}
	if EvalGate7(Const1, nil) != FillWord7(Stable1) {
		t.Error("Const1 evaluation wrong")
	}
	if (EvalGate7(And, nil) != Word7{}) {
		t.Error("AND of no inputs should be X")
	}
	in := FillWord7(Rise7)
	if EvalGate7(Buf, []Word7{in}) != in {
		t.Error("BUF should copy its input")
	}
	if EvalGate7(Not, []Word7{in}) != FillWord7(Fall7) {
		t.Error("NOT should turn a rising transition into a falling one")
	}
}

func TestWord7FlattenClearSelect(t *testing.T) {
	var w Word7
	w.Set(0, Rise7)
	w.Set(1, Stable0)
	f := w.Flatten(0)
	if f != FillWord7(Rise7) {
		t.Errorf("Flatten(0) wrong: %s", f.StringN(4))
	}
	cl := w.ClearLevels(1)
	if cl.Get(0) != X7 || cl.Get(1) != Stable0 {
		t.Errorf("ClearLevels wrong: %s", cl.StringN(4))
	}
	sel := w.SelectLevels(1)
	if sel.Get(0) != Rise7 || sel.Get(1) != X7 {
		t.Errorf("SelectLevels wrong: %s", sel.StringN(4))
	}
	m := w.MergeMasked(FillWord7(Final1), 0b10)
	if m.Get(0) != Rise7 || !m.Get(1).IsConflict() {
		t.Errorf("MergeMasked wrong: %v %v", m.Get(0), m.Get(1))
	}
}

func BenchmarkTable2GateEval(b *testing.B) {
	// Evaluates a 4-input AND over all 64 bit levels in the seven-valued
	// robust logic; roughly twice the plane work of the Table 1 encoding.
	vals := AllValues7()
	in := make([]Word7, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		for lvl := 0; lvl < WordWidth; lvl++ {
			in[i].Set(lvl, vals[rng.Intn(len(vals))])
		}
	}
	b.ResetTimer()
	var sink Word7
	for i := 0; i < b.N; i++ {
		sink = EvalGate7(And, in)
	}
	_ = sink
}
