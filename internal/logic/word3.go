package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordWidth is the number of bit levels held by a Word3 or Word7: the machine
// word length L exploited by the bit-parallel generator.
const WordWidth = 64

// AllLevels is the mask selecting every bit level of a word.
const AllLevels uint64 = ^uint64(0)

// LevelMask returns the mask selecting the lowest n bit levels.  It is used
// to restrict the engine to a narrower effective word width (for example the
// single-bit baseline uses LevelMask(1)).
func LevelMask(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= WordWidth {
		return AllLevels
	}
	return (uint64(1) << uint(n)) - 1
}

// Word3 holds 64 three-valued logic values, one per bit level, in two bit
// planes following Table 1 of the paper.  Bit i of Zero is the 0-bit of bit
// level i; bit i of One is its 1-bit.  The zero value of Word3 is "X at every
// bit level" and is ready to use.
type Word3 struct {
	Zero uint64 // the 0-bit plane
	One  uint64 // the 1-bit plane
}

// FillWord3 returns a word holding v at every bit level.
func FillWord3(v Value3) Word3 {
	var w Word3
	if v.ZeroBit() {
		w.Zero = AllLevels
	}
	if v.OneBit() {
		w.One = AllLevels
	}
	return w
}

// Get returns the value at bit level i.
func (w Word3) Get(i int) Value3 {
	var v Value3
	if w.Zero>>uint(i)&1 != 0 {
		v |= Zero3
	}
	if w.One>>uint(i)&1 != 0 {
		v |= One3
	}
	return v
}

// Set stores v at bit level i, replacing the previous value.
func (w *Word3) Set(i int, v Value3) {
	mask := uint64(1) << uint(i)
	w.Zero &^= mask
	w.One &^= mask
	if v.ZeroBit() {
		w.Zero |= mask
	}
	if v.OneBit() {
		w.One |= mask
	}
}

// MergeAt accumulates the requirement v at bit level i (bitwise OR of the
// encodings, as in Value3.Merge).
func (w *Word3) MergeAt(i int, v Value3) {
	mask := uint64(1) << uint(i)
	if v.ZeroBit() {
		w.Zero |= mask
	}
	if v.OneBit() {
		w.One |= mask
	}
}

// Merge accumulates the requirements of o into w at every bit level.
func (w Word3) Merge(o Word3) Word3 {
	return Word3{Zero: w.Zero | o.Zero, One: w.One | o.One}
}

// MergeMasked accumulates the requirements of o into w at the bit levels
// selected by mask.
func (w Word3) MergeMasked(o Word3, mask uint64) Word3 {
	return Word3{Zero: w.Zero | o.Zero&mask, One: w.One | o.One&mask}
}

// ClearLevels resets the bit levels selected by mask to X.
func (w Word3) ClearLevels(mask uint64) Word3 {
	return Word3{Zero: w.Zero &^ mask, One: w.One &^ mask}
}

// SelectLevels keeps only the bit levels selected by mask, clearing the rest
// to X.
func (w Word3) SelectLevels(mask uint64) Word3 {
	return Word3{Zero: w.Zero & mask, One: w.One & mask}
}

// Not returns the bitwise complement of the logic values: the planes are
// swapped, so 0 becomes 1, X stays X and conflicts stay conflicts.
func (w Word3) Not() Word3 { return Word3{Zero: w.One, One: w.Zero} }

// ConflictMask returns the mask of bit levels holding the illegal (1,1)
// encoding.
func (w Word3) ConflictMask() uint64 { return w.Zero & w.One }

// AssignedMask returns the mask of bit levels holding a definite 0 or 1
// (conflicting levels are excluded).
func (w Word3) AssignedMask() uint64 { return (w.Zero ^ w.One) }

// XMask returns the mask of bit levels that are completely unassigned.
func (w Word3) XMask() uint64 { return ^(w.Zero | w.One) }

// CoversMask returns the mask of bit levels at which w satisfies the
// requirement o (every encoding bit demanded by o is present in w).
func (w Word3) CoversMask(o Word3) uint64 {
	return ^((o.Zero &^ w.Zero) | (o.One &^ w.One))
}

// ContradictsMask returns the mask of bit levels at which w directly
// contradicts the requirement o: one demands 0 where the other holds 1.
func (w Word3) ContradictsMask(o Word3) uint64 {
	return (w.Zero & o.One) | (w.One & o.Zero)
}

// Equal reports whether both words hold identical values at every bit level.
func (w Word3) Equal(o Word3) bool { return w == o }

// Flatten returns a word holding the value of bit level i at every bit level.
// It implements the "flattening of the active bit to multiple bit levels"
// used when a fault is handed from FPTPG to APTPG.
func (w Word3) Flatten(i int) Word3 {
	return FillWord3(w.Get(i))
}

// Spread copies the value at bit level from of src into the bit levels
// selected by mask of w, leaving other levels untouched.
func (w Word3) Spread(src Word3, from int, mask uint64) Word3 {
	v := src.Get(from)
	out := Word3{Zero: w.Zero &^ mask, One: w.One &^ mask}
	if v.ZeroBit() {
		out.Zero |= mask
	}
	if v.OneBit() {
		out.One |= mask
	}
	return out
}

// CountAssigned returns the number of bit levels carrying a definite value.
func (w Word3) CountAssigned() int { return bits.OnesCount64(w.AssignedMask()) }

// String renders the word with bit level L-1 on the left and bit level 0 on
// the right, matching the notation of Figures 1 and 2 of the paper, but only
// for the lowest `width` levels when the remaining levels are all X.
func (w Word3) String() string { return w.StringN(WordWidth) }

// StringN renders only the lowest n bit levels.
func (w Word3) StringN(n int) string {
	if n <= 0 {
		n = 1
	}
	if n > WordWidth {
		n = WordWidth
	}
	var sb strings.Builder
	for i := n - 1; i >= 0; i-- {
		switch w.Get(i) {
		case Zero3:
			sb.WriteByte('0')
		case One3:
			sb.WriteByte('1')
		case X3:
			sb.WriteByte('x')
		default:
			sb.WriteByte('C')
		}
	}
	return sb.String()
}

// ParseWord3 parses the notation produced by StringN: the leftmost character
// is the highest bit level.  Characters 0, 1, x/X and C are accepted.
func ParseWord3(s string) (Word3, error) {
	if len(s) > WordWidth {
		return Word3{}, fmt.Errorf("logic: word literal %q longer than %d levels", s, WordWidth)
	}
	var w Word3
	n := len(s)
	for idx := 0; idx < n; idx++ {
		level := n - 1 - idx
		switch s[idx] {
		case '0':
			w.Set(level, Zero3)
		case '1':
			w.Set(level, One3)
		case 'x', 'X':
			w.Set(level, X3)
		case 'c', 'C':
			w.Set(level, Conflict3)
		default:
			return Word3{}, fmt.Errorf("logic: invalid character %q in word literal %q", s[idx], s)
		}
	}
	return w, nil
}

// EvalGate3 evaluates a gate of the given kind over bit-parallel three-valued
// inputs.  All 64 bit levels are evaluated simultaneously using plane-wide
// boolean operations.  The result at levels where some input holds the
// conflict encoding is unspecified.
//
//atpgvet:noalloc
func EvalGate3(kind Kind, in []Word3) Word3 {
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			return Word3{}
		}
		return in[0]
	case Not:
		if len(in) == 0 {
			return Word3{}
		}
		return in[0].Not()
	case Const0:
		return FillWord3(Zero3)
	case Const1:
		return FillWord3(One3)
	case And:
		return andWord3(in)
	case Nand:
		return andWord3(in).Not()
	case Or:
		return orWord3(in)
	case Nor:
		return orWord3(in).Not()
	case Xor:
		return xorWord3(in)
	case Xnor:
		return xorWord3(in).Not()
	}
	return Word3{}
}

func andWord3(in []Word3) Word3 {
	if len(in) == 0 {
		return Word3{}
	}
	out := Word3{Zero: 0, One: AllLevels}
	for _, w := range in {
		out.Zero |= w.Zero
		out.One &= w.One
	}
	return out
}

func orWord3(in []Word3) Word3 {
	if len(in) == 0 {
		return Word3{}
	}
	out := Word3{Zero: AllLevels, One: 0}
	for _, w := range in {
		out.Zero &= w.Zero
		out.One |= w.One
	}
	return out
}

func xorWord3(in []Word3) Word3 {
	if len(in) == 0 {
		return Word3{}
	}
	assigned := AllLevels
	parity := uint64(0)
	for _, w := range in {
		assigned &= w.Zero ^ w.One
		parity ^= w.One
	}
	return Word3{Zero: assigned &^ parity, One: assigned & parity}
}
