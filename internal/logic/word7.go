package logic

import (
	"fmt"
	"strings"
)

// Word7 holds 64 seven-valued logic values, one per bit level, in four bit
// planes following Table 2 of the paper.  The zero value is "X at every bit
// level" and is ready to use.
type Word7 struct {
	Zero     uint64 // the 0-bit plane: final value 0
	One      uint64 // the 1-bit plane: final value 1
	Stable   uint64 // the stable-bit plane: constant, hazard-free
	Instable uint64 // the instable-bit plane: carries a transition
}

// FillWord7 returns a word holding v at every bit level.
func FillWord7(v Value7) Word7 {
	var w Word7
	if v.ZeroBit() {
		w.Zero = AllLevels
	}
	if v.OneBit() {
		w.One = AllLevels
	}
	if v.StableBit() {
		w.Stable = AllLevels
	}
	if v.InstableBit() {
		w.Instable = AllLevels
	}
	return w
}

// Get returns the value at bit level i.
func (w Word7) Get(i int) Value7 {
	var v Value7
	if w.Zero>>uint(i)&1 != 0 {
		v |= zeroBit7
	}
	if w.One>>uint(i)&1 != 0 {
		v |= oneBit7
	}
	if w.Stable>>uint(i)&1 != 0 {
		v |= stableBit7
	}
	if w.Instable>>uint(i)&1 != 0 {
		v |= instableBit7
	}
	return v
}

// Set stores v at bit level i, replacing the previous value.
func (w *Word7) Set(i int, v Value7) {
	mask := uint64(1) << uint(i)
	w.Zero &^= mask
	w.One &^= mask
	w.Stable &^= mask
	w.Instable &^= mask
	if v.ZeroBit() {
		w.Zero |= mask
	}
	if v.OneBit() {
		w.One |= mask
	}
	if v.StableBit() {
		w.Stable |= mask
	}
	if v.InstableBit() {
		w.Instable |= mask
	}
}

// MergeAt accumulates the requirement v at bit level i.
func (w *Word7) MergeAt(i int, v Value7) {
	mask := uint64(1) << uint(i)
	if v.ZeroBit() {
		w.Zero |= mask
	}
	if v.OneBit() {
		w.One |= mask
	}
	if v.StableBit() {
		w.Stable |= mask
	}
	if v.InstableBit() {
		w.Instable |= mask
	}
}

// Merge accumulates the requirements of o into w at every bit level.
func (w Word7) Merge(o Word7) Word7 {
	return Word7{
		Zero:     w.Zero | o.Zero,
		One:      w.One | o.One,
		Stable:   w.Stable | o.Stable,
		Instable: w.Instable | o.Instable,
	}
}

// MergeMasked accumulates the requirements of o into w at the bit levels
// selected by mask.
func (w Word7) MergeMasked(o Word7, mask uint64) Word7 {
	return Word7{
		Zero:     w.Zero | o.Zero&mask,
		One:      w.One | o.One&mask,
		Stable:   w.Stable | o.Stable&mask,
		Instable: w.Instable | o.Instable&mask,
	}
}

// ClearLevels resets the bit levels selected by mask to X.
func (w Word7) ClearLevels(mask uint64) Word7 {
	return Word7{
		Zero:     w.Zero &^ mask,
		One:      w.One &^ mask,
		Stable:   w.Stable &^ mask,
		Instable: w.Instable &^ mask,
	}
}

// SelectLevels keeps only the bit levels selected by mask.
func (w Word7) SelectLevels(mask uint64) Word7 {
	return Word7{
		Zero:     w.Zero & mask,
		One:      w.One & mask,
		Stable:   w.Stable & mask,
		Instable: w.Instable & mask,
	}
}

// Not returns the complement: the value planes are swapped while the
// stability planes are preserved.
func (w Word7) Not() Word7 {
	return Word7{Zero: w.One, One: w.Zero, Stable: w.Stable, Instable: w.Instable}
}

// ConflictMask returns the mask of bit levels holding an illegal encoding:
// both value bits set, or both stability bits set (Table 2).
func (w Word7) ConflictMask() uint64 {
	return (w.Zero & w.One) | (w.Stable & w.Instable)
}

// AssignedMask returns the mask of bit levels with a definite final value and
// no conflict.
func (w Word7) AssignedMask() uint64 {
	return (w.Zero ^ w.One) &^ (w.Stable & w.Instable)
}

// XMask returns the mask of bit levels that are completely unassigned.
func (w Word7) XMask() uint64 {
	return ^(w.Zero | w.One | w.Stable | w.Instable)
}

// CoversMask returns the mask of bit levels at which w satisfies the
// requirement o.
func (w Word7) CoversMask(o Word7) uint64 {
	return ^((o.Zero &^ w.Zero) | (o.One &^ w.One) | (o.Stable &^ w.Stable) | (o.Instable &^ w.Instable))
}

// ContradictsMask returns the mask of bit levels at which w directly
// contradicts the requirement o on the final value or the stability.
func (w Word7) ContradictsMask(o Word7) uint64 {
	return (w.Zero & o.One) | (w.One & o.Zero) | (w.Stable & o.Instable) | (w.Instable & o.Stable)
}

// Flatten returns a word holding the value of bit level i at every bit level.
func (w Word7) Flatten(i int) Word7 { return FillWord7(w.Get(i)) }

// Weaken3 projects the word onto the three-valued logic, dropping the
// stability planes.
func (w Word7) Weaken3() Word3 { return Word3{Zero: w.Zero, One: w.One} }

// Word7From3 lifts a three-valued word into the seven-valued logic with
// unknown stability at every level.
func Word7From3(w Word3) Word7 { return Word7{Zero: w.Zero, One: w.One} }

// InitialPlanes returns two planes giving, per bit level, whether the initial
// (first-vector) value is known to be 0 or known to be 1.
func (w Word7) InitialPlanes() (init0, init1 uint64) {
	init0 = (w.Zero & w.Stable) | (w.One & w.Instable)
	init1 = (w.One & w.Stable) | (w.Zero & w.Instable)
	return init0, init1
}

// String renders the word with bit level L-1 on the left, using one
// character per level: 0/1 for final values with unknown stability, s/S for
// stable 0/1, f/r for falling/rising transitions, x for X and C for a
// conflict.
func (w Word7) String() string { return w.StringN(WordWidth) }

// StringN renders only the lowest n bit levels.
func (w Word7) StringN(n int) string {
	if n <= 0 {
		n = 1
	}
	if n > WordWidth {
		n = WordWidth
	}
	var sb strings.Builder
	for i := n - 1; i >= 0; i-- {
		v := w.Get(i)
		switch {
		case v.IsConflict():
			sb.WriteByte('C')
		case v == X7:
			sb.WriteByte('x')
		case v == Stable0:
			sb.WriteByte('s')
		case v == Stable1:
			sb.WriteByte('S')
		case v == Fall7:
			sb.WriteByte('f')
		case v == Rise7:
			sb.WriteByte('r')
		case v == Final0:
			sb.WriteByte('0')
		case v == Final1:
			sb.WriteByte('1')
		default:
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// ParseWord7 parses the notation produced by StringN.
func ParseWord7(s string) (Word7, error) {
	if len(s) > WordWidth {
		return Word7{}, fmt.Errorf("logic: word literal %q longer than %d levels", s, WordWidth)
	}
	var w Word7
	n := len(s)
	for idx := 0; idx < n; idx++ {
		level := n - 1 - idx
		switch s[idx] {
		case '0':
			w.Set(level, Final0)
		case '1':
			w.Set(level, Final1)
		case 's':
			w.Set(level, Stable0)
		case 'S':
			w.Set(level, Stable1)
		case 'f':
			w.Set(level, Fall7)
		case 'r':
			w.Set(level, Rise7)
		case 'x', 'X':
			w.Set(level, X7)
		case 'c', 'C':
			w.Set(level, Stable0|Stable1)
		default:
			return Word7{}, fmt.Errorf("logic: invalid character %q in word literal %q", s[idx], s)
		}
	}
	return w, nil
}

// EvalGate7 evaluates a gate of the given kind over bit-parallel seven-valued
// inputs.  The result at levels where some input holds a conflict encoding is
// unspecified.
//
//atpgvet:noalloc
func EvalGate7(kind Kind, in []Word7) Word7 {
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			return Word7{}
		}
		return in[0]
	case Not:
		if len(in) == 0 {
			return Word7{}
		}
		return in[0].Not()
	case Const0:
		return FillWord7(Stable0)
	case Const1:
		return FillWord7(Stable1)
	case And:
		return andWord7(in)
	case Nand:
		return andWord7(in).Not()
	case Or:
		return orWord7(in)
	case Nor:
		return orWord7(in).Not()
	case Xor:
		return xorWord7(in)
	case Xnor:
		return xorWord7(in).Not()
	}
	return Word7{}
}

// andWord7 is the bit-parallel counterpart of the scalar and7: the final
// value planes follow the three-valued AND, the initial value planes follow
// the three-valued AND of the derived initial values, the output is stable
// where all inputs are stable or some input is a stable 0, and a transition
// is recorded where initial and final values are known and differ.
func andWord7(in []Word7) Word7 {
	if len(in) == 0 {
		return Word7{}
	}
	outZero := uint64(0)
	outOne := AllLevels
	outInit0 := uint64(0)
	outInit1 := AllLevels
	allStable := AllLevels
	anyStableZero := uint64(0)
	for _, w := range in {
		outZero |= w.Zero
		outOne &= w.One
		i0, i1 := w.InitialPlanes()
		outInit0 |= i0
		outInit1 &= i1
		allStable &= w.Stable
		anyStableZero |= w.Zero & w.Stable
	}
	return compose7Word(outZero, outOne, outInit0, outInit1, allStable|anyStableZero)
}

func orWord7(in []Word7) Word7 {
	if len(in) == 0 {
		return Word7{}
	}
	outZero := AllLevels
	outOne := uint64(0)
	outInit0 := AllLevels
	outInit1 := uint64(0)
	allStable := AllLevels
	anyStableOne := uint64(0)
	for _, w := range in {
		outZero &= w.Zero
		outOne |= w.One
		i0, i1 := w.InitialPlanes()
		outInit0 &= i0
		outInit1 |= i1
		allStable &= w.Stable
		anyStableOne |= w.One & w.Stable
	}
	return compose7Word(outZero, outOne, outInit0, outInit1, allStable|anyStableOne)
}

func xorWord7(in []Word7) Word7 {
	if len(in) == 0 {
		return Word7{}
	}
	finalAssigned := AllLevels
	finalParity := uint64(0)
	initAssigned := AllLevels
	initParity := uint64(0)
	allStable := AllLevels
	for _, w := range in {
		finalAssigned &= w.Zero ^ w.One
		finalParity ^= w.One
		i0, i1 := w.InitialPlanes()
		initAssigned &= i0 ^ i1
		initParity ^= i1
		allStable &= w.Stable
	}
	outZero := finalAssigned &^ finalParity
	outOne := finalAssigned & finalParity
	outInit0 := initAssigned &^ initParity
	outInit1 := initAssigned & initParity
	return compose7Word(outZero, outOne, outInit0, outInit1, allStable)
}

// compose7Word assembles the four output planes from final value planes,
// initial value planes and a per-level stability guarantee, mirroring the
// scalar compose7.
func compose7Word(zero, one, init0, init1, stable uint64) Word7 {
	f0 := zero &^ one
	f1 := one &^ zero
	known := f0 | f1
	outStable := known & stable
	outInstable := ((f1 & init0) | (f0 & init1)) &^ stable
	return Word7{
		Zero:     zero,
		One:      one,
		Stable:   outStable,
		Instable: outInstable,
	}
}
