package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelMask(t *testing.T) {
	if LevelMask(0) != 0 {
		t.Errorf("LevelMask(0) = %x", LevelMask(0))
	}
	if LevelMask(1) != 1 {
		t.Errorf("LevelMask(1) = %x", LevelMask(1))
	}
	if LevelMask(8) != 0xff {
		t.Errorf("LevelMask(8) = %x", LevelMask(8))
	}
	if LevelMask(64) != AllLevels {
		t.Errorf("LevelMask(64) = %x", LevelMask(64))
	}
	if LevelMask(100) != AllLevels {
		t.Errorf("LevelMask(100) = %x", LevelMask(100))
	}
	if LevelMask(-3) != 0 {
		t.Errorf("LevelMask(-3) = %x", LevelMask(-3))
	}
}

func TestWord3GetSet(t *testing.T) {
	var w Word3
	values := []Value3{Zero3, One3, X3, Conflict3}
	for i := 0; i < WordWidth; i++ {
		w.Set(i, values[i%len(values)])
	}
	for i := 0; i < WordWidth; i++ {
		if got := w.Get(i); got != values[i%len(values)] {
			t.Fatalf("level %d: got %v, want %v", i, got, values[i%len(values)])
		}
	}
	// Overwrite and re-check.
	w.Set(5, One3)
	if w.Get(5) != One3 {
		t.Errorf("overwrite failed: %v", w.Get(5))
	}
	w.MergeAt(5, Zero3)
	if w.Get(5) != Conflict3 {
		t.Errorf("MergeAt should accumulate into a conflict, got %v", w.Get(5))
	}
}

func TestWord3FillAndMasks(t *testing.T) {
	w := FillWord3(One3)
	if w.One != AllLevels || w.Zero != 0 {
		t.Fatalf("FillWord3(One3) = %+v", w)
	}
	if w.AssignedMask() != AllLevels {
		t.Error("all levels should be assigned")
	}
	if w.XMask() != 0 {
		t.Error("no level should be X")
	}
	if w.ConflictMask() != 0 {
		t.Error("no level should conflict")
	}
	var x Word3
	if x.XMask() != AllLevels {
		t.Error("zero word should be all X")
	}
	c := FillWord3(Conflict3)
	if c.ConflictMask() != AllLevels {
		t.Error("conflict fill should conflict at every level")
	}
	if c.AssignedMask() != 0 {
		t.Error("conflicting levels are not counted as assigned")
	}
}

func TestWord3MergeAndCovers(t *testing.T) {
	a, err := ParseWord3("01x1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseWord3("0011")
	if err != nil {
		t.Fatal(err)
	}
	m := a.Merge(b)
	want, _ := ParseWord3("0C11") // level 2 merges 1 and 0 into a conflict
	if m != want {
		t.Errorf("Merge = %s, want %s", m.StringN(4), want.StringN(4))
	}
	if got := a.CoversMask(b) & LevelMask(4); got != 0b1001 {
		t.Errorf("CoversMask = %04b, want 1001", got)
	}
	if got := a.ContradictsMask(b) & LevelMask(4); got != 0b0100 {
		t.Errorf("ContradictsMask = %04b, want 0100", got)
	}
}

func TestWord3FlattenSpreadSelect(t *testing.T) {
	w, _ := ParseWord3("10x1")
	f := w.Flatten(0)
	if f != FillWord3(One3) {
		t.Errorf("Flatten(0) = %s", f.StringN(4))
	}
	f = w.Flatten(1)
	if f != FillWord3(X3) {
		t.Errorf("Flatten(1) = %s", f.StringN(4))
	}
	s := Word3{}.Spread(w, 3, LevelMask(4))
	if s.StringN(4) != "1111" {
		t.Errorf("Spread = %s", s.StringN(4))
	}
	sel := w.SelectLevels(0b0011)
	if sel.StringN(4) != "xx"+w.StringN(2) {
		t.Errorf("SelectLevels = %s", sel.StringN(4))
	}
	cl := w.ClearLevels(0b0001)
	if cl.Get(0) != X3 || cl.Get(3) != One3 {
		t.Errorf("ClearLevels = %s", cl.StringN(4))
	}
	if w.CountAssigned() != 3 {
		t.Errorf("CountAssigned = %d", w.CountAssigned())
	}
}

func TestWord3StringParseRoundTrip(t *testing.T) {
	lits := []string{"", "0", "1", "x", "C", "10xC01", "1111", "xxxx"}
	for _, lit := range lits {
		w, err := ParseWord3(lit)
		if err != nil {
			t.Fatalf("ParseWord3(%q): %v", lit, err)
		}
		if lit == "" {
			continue
		}
		if got := w.StringN(len(lit)); got != replaceUpperX(lit) {
			t.Errorf("round trip of %q gave %q", lit, got)
		}
	}
	if _, err := ParseWord3("012"); err == nil {
		t.Error("ParseWord3(\"012\") should fail")
	}
	long := make([]byte, WordWidth+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := ParseWord3(string(long)); err == nil {
		t.Error("over-long literal should fail")
	}
}

func replaceUpperX(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == 'X' {
			b[i] = 'x'
		}
		if b[i] == 'c' {
			b[i] = 'C'
		}
	}
	return string(b)
}

// TestEvalGate3MatchesScalar cross-checks the bit-parallel gate evaluation
// against the scalar reference at every bit level, for random non-conflicting
// inputs.  This is the central correctness property of the Table 1 encoding.
func TestEvalGate3MatchesScalar(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	rng := rand.New(rand.NewSource(1995))
	for iter := 0; iter < 200; iter++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := 1
		if kind != Buf && kind != Not {
			n = 1 + rng.Intn(4)
		}
		in := make([]Word3, n)
		for i := range in {
			for lvl := 0; lvl < WordWidth; lvl++ {
				in[i].Set(lvl, []Value3{X3, Zero3, One3}[rng.Intn(3)])
			}
		}
		out := EvalGate3(kind, in)
		for lvl := 0; lvl < WordWidth; lvl++ {
			scalarIn := make([]Value3, n)
			for i := range in {
				scalarIn[i] = in[i].Get(lvl)
			}
			want := Eval3(kind, scalarIn...)
			if got := out.Get(lvl); got != want {
				t.Fatalf("kind %v level %d: parallel %v, scalar %v (inputs %v)",
					kind, lvl, got, want, scalarIn)
			}
		}
	}
}

// TestEvalGate3SingleLevelProperty uses testing/quick to compare the scalar
// evaluation with a word evaluation restricted to a single bit level.
func TestEvalGate3SingleLevelProperty(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	f := func(kindIdx uint8, raw [4]uint8, level uint8) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		lvl := int(level) % WordWidth
		in := make([]Word3, len(raw))
		scalarIn := make([]Value3, len(raw))
		for i, r := range raw {
			v := []Value3{X3, Zero3, One3}[int(r)%3]
			scalarIn[i] = v
			in[i].Set(lvl, v)
		}
		out := EvalGate3(kind, in)
		return out.Get(lvl) == Eval3(kind, scalarIn...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEvalGate3Constants(t *testing.T) {
	if EvalGate3(Const0, nil) != FillWord3(Zero3) {
		t.Error("Const0 evaluation wrong")
	}
	if EvalGate3(Const1, nil) != FillWord3(One3) {
		t.Error("Const1 evaluation wrong")
	}
	if (EvalGate3(And, nil) != Word3{}) {
		t.Error("AND of no inputs should be X")
	}
	in := FillWord3(One3)
	if EvalGate3(Buf, []Word3{in}) != in {
		t.Error("BUF should copy its input")
	}
	if EvalGate3(Not, []Word3{in}) != FillWord3(Zero3) {
		t.Error("NOT should complement its input")
	}
}

func BenchmarkTable1GateEval(b *testing.B) {
	// Evaluates a 4-input AND over all 64 bit levels; this is the elementary
	// operation the paper's Table 1 encoding is designed to make cheap.
	in := make([]Word3, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		for lvl := 0; lvl < WordWidth; lvl++ {
			in[i].Set(lvl, []Value3{X3, Zero3, One3}[rng.Intn(3)])
		}
	}
	b.ResetTimer()
	var sink Word3
	for i := 0; i < b.N; i++ {
		sink = EvalGate3(And, in)
	}
	_ = sink
}

func BenchmarkSingleBitGateEval(b *testing.B) {
	// The scalar counterpart of BenchmarkTable1GateEval: evaluating the same
	// 64 levels one by one with the scalar reference.  The ratio of the two
	// benchmarks shows the raw word-level parallelism available to the TPG.
	in := make([]Word3, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		for lvl := 0; lvl < WordWidth; lvl++ {
			in[i].Set(lvl, []Value3{X3, Zero3, One3}[rng.Intn(3)])
		}
	}
	scalar := make([][]Value3, WordWidth)
	for lvl := range scalar {
		scalar[lvl] = make([]Value3, len(in))
		for i := range in {
			scalar[lvl][i] = in[i].Get(lvl)
		}
	}
	b.ResetTimer()
	var sink Value3
	for i := 0; i < b.N; i++ {
		for lvl := 0; lvl < WordWidth; lvl++ {
			sink = Eval3(And, scalar[lvl]...)
		}
	}
	_ = sink
}
