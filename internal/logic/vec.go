package logic

import (
	"math/bits"
	"strings"
)

// This file generalizes the scalar 64-level words (Word3/Word7, one uint64
// per bit plane) to K-word plane vectors: a Mask, Word3V or Word7V carries up
// to MaxK machine words per plane, giving word widths L of 64, 128, 256 or
// 512 behind the same operation surface.  The vector types are sized for the
// maximum width; every operation takes the vector word count k and touches
// only words [0, k), so a K=1 engine pays for one word, not eight.
//
// The types are plain comparable structs of [MaxK]uint64 arrays: the plane
// loops are fixed-bound and branch-free per word, which the compiler can
// unroll and auto-vectorize, and equality (==) is bit-exact across the full
// capacity — callers that operate at k < MaxK keep the upper words zero.

// MaxK is the maximum number of 64-bit words per bit plane.
const MaxK = 8

// MaxWordWidth is the maximum number of bit levels of a plane vector: the
// widest word width L the engine supports (512 with MaxK = 8).
const MaxWordWidth = MaxK * WordWidth

// KForWidth returns the number of plane words needed for the given word
// width, clamped to [1, MaxK].
func KForWidth(width int) int {
	if width <= WordWidth {
		return 1
	}
	k := (width + WordWidth - 1) / WordWidth
	if k > MaxK {
		return MaxK
	}
	return k
}

// Mask is a wide bit-level mask: bit i of word i/64 selects bit level i.
// The zero value selects nothing.  Masks are comparable with ==.
type Mask [MaxK]uint64

// LevelsMask returns the mask selecting the lowest n bit levels (the wide
// counterpart of LevelMask).
func LevelsMask(n int) Mask {
	var m Mask
	if n <= 0 {
		return m
	}
	if n > MaxWordWidth {
		n = MaxWordWidth
	}
	for w := 0; n > 0; w++ {
		if n >= WordWidth {
			m[w] = AllLevels
			n -= WordWidth
		} else {
			m[w] = (uint64(1) << uint(n)) - 1
			n = 0
		}
	}
	return m
}

// BitMask returns the mask selecting only bit level i.
func BitMask(i int) Mask {
	var m Mask
	if i >= 0 && i < MaxWordWidth {
		m[i>>6] = uint64(1) << uint(i&63)
	}
	return m
}

// And returns m & o.
func (m Mask) And(o Mask) Mask {
	for w := range m {
		m[w] &= o[w]
	}
	return m
}

// Or returns m | o.
func (m Mask) Or(o Mask) Mask {
	for w := range m {
		m[w] |= o[w]
	}
	return m
}

// AndNot returns m &^ o.
func (m Mask) AndNot(o Mask) Mask {
	for w := range m {
		m[w] &^= o[w]
	}
	return m
}

// Not returns the complement over the full MaxWordWidth levels.  Combine
// with And(active) to bound it to the levels in use.
func (m Mask) Not() Mask {
	for w := range m {
		m[w] = ^m[w]
	}
	return m
}

// IsZero reports whether no bit level is selected.
func (m Mask) IsZero() bool { return m == Mask{} }

// Bit reports whether bit level i is selected.
func (m Mask) Bit(i int) bool {
	if i < 0 || i >= MaxWordWidth {
		return false
	}
	return m[i>>6]>>uint(i&63)&1 != 0
}

// TrailingZeros returns the lowest selected bit level, or MaxWordWidth when
// the mask is zero.
func (m Mask) TrailingZeros() int {
	for w := range m {
		if m[w] != 0 {
			return w*WordWidth + bits.TrailingZeros64(m[w])
		}
	}
	return MaxWordWidth
}

// OnesCount returns the number of selected bit levels.
func (m Mask) OnesCount() int {
	n := 0
	for w := range m {
		n += bits.OnesCount64(m[w])
	}
	return n
}

// Words returns the number of plane words up to and including the highest
// selected level (at least 1, so a zero mask still describes a one-word
// engine).
func (m Mask) Words() int {
	for w := MaxK - 1; w > 0; w-- {
		if m[w] != 0 {
			return w + 1
		}
	}
	return 1
}

// String renders the mask as the binary digits of its words, highest level
// first, trimmed to the populated words.
func (m Mask) String() string {
	var sb strings.Builder
	for w := m.Words() - 1; w >= 0; w-- {
		if sb.Len() > 0 {
			sb.WriteByte('.')
		}
		for i := WordWidth - 1; i >= 0; i-- {
			sb.WriteByte('0' + byte(m[w]>>uint(i)&1))
		}
	}
	return sb.String()
}

// Word3V holds up to MaxWordWidth three-valued logic values in two wide bit
// planes: the K-word generalization of Word3.  The zero value is "X at every
// bit level".
type Word3V struct {
	Zero Mask
	One  Mask
}

// FillWord3V returns a vector holding v at the levels selected by mask.
func FillWord3V(v Value3, mask Mask) Word3V {
	var w Word3V
	if v.ZeroBit() {
		w.Zero = mask
	}
	if v.OneBit() {
		w.One = mask
	}
	return w
}

// Get returns the value at bit level i.
func (w Word3V) Get(i int) Value3 {
	var v Value3
	if w.Zero.Bit(i) {
		v |= Zero3
	}
	if w.One.Bit(i) {
		v |= One3
	}
	return v
}

// Set stores v at bit level i, replacing the previous value.
func (w *Word3V) Set(i int, v Value3) {
	wd, b := i>>6, uint64(1)<<uint(i&63)
	w.Zero[wd] &^= b
	w.One[wd] &^= b
	if v.ZeroBit() {
		w.Zero[wd] |= b
	}
	if v.OneBit() {
		w.One[wd] |= b
	}
}

// Merge accumulates the requirements of o into w at every bit level.
func (w Word3V) Merge(o Word3V) Word3V {
	return Word3V{Zero: w.Zero.Or(o.Zero), One: w.One.Or(o.One)}
}

// SelectLevels keeps only the bit levels selected by mask.
func (w Word3V) SelectLevels(mask Mask) Word3V {
	return Word3V{Zero: w.Zero.And(mask), One: w.One.And(mask)}
}

// Not returns the complement (planes swapped).
func (w Word3V) Not() Word3V { return Word3V{Zero: w.One, One: w.Zero} }

// ConflictMask returns the levels holding the illegal (1,1) encoding.
func (w Word3V) ConflictMask() Mask { return w.Zero.And(w.One) }

// Word7V holds up to MaxWordWidth seven-valued logic values in four wide bit
// planes: the K-word generalization of Word7.  The zero value is "X at every
// bit level".
type Word7V struct {
	Zero     Mask
	One      Mask
	Stable   Mask
	Instable Mask
}

// FillWord7V returns a vector holding v at the levels selected by mask.
func FillWord7V(v Value7, mask Mask) Word7V {
	var w Word7V
	if v.ZeroBit() {
		w.Zero = mask
	}
	if v.OneBit() {
		w.One = mask
	}
	if v.StableBit() {
		w.Stable = mask
	}
	if v.InstableBit() {
		w.Instable = mask
	}
	return w
}

// Word7VFromWord7 places the 64 levels of a scalar word at vector word wd.
func Word7VFromWord7(w Word7, wd int) Word7V {
	var v Word7V
	v.Zero[wd] = w.Zero
	v.One[wd] = w.One
	v.Stable[wd] = w.Stable
	v.Instable[wd] = w.Instable
	return v
}

// Word7At extracts vector word wd as a scalar 64-level word.
func (w Word7V) Word7At(wd int) Word7 {
	return Word7{Zero: w.Zero[wd], One: w.One[wd], Stable: w.Stable[wd], Instable: w.Instable[wd]}
}

// Get returns the value at bit level i.
func (w Word7V) Get(i int) Value7 {
	wd, b := i>>6, uint64(1)<<uint(i&63)
	return Value7FromPlanes(w.Zero[wd]&b != 0, w.One[wd]&b != 0, w.Stable[wd]&b != 0, w.Instable[wd]&b != 0)
}

// Value7FromPlanes assembles a Value7 from its four plane bits (the
// structure-of-arrays accessors of the implication state read single bit
// levels directly from plane storage).
func Value7FromPlanes(zero, one, stable, instable bool) Value7 {
	var v Value7
	if zero {
		v |= zeroBit7
	}
	if one {
		v |= oneBit7
	}
	if stable {
		v |= stableBit7
	}
	if instable {
		v |= instableBit7
	}
	return v
}

// Set stores v at bit level i, replacing the previous value.
func (w *Word7V) Set(i int, v Value7) {
	wd, b := i>>6, uint64(1)<<uint(i&63)
	w.Zero[wd] &^= b
	w.One[wd] &^= b
	w.Stable[wd] &^= b
	w.Instable[wd] &^= b
	if v.ZeroBit() {
		w.Zero[wd] |= b
	}
	if v.OneBit() {
		w.One[wd] |= b
	}
	if v.StableBit() {
		w.Stable[wd] |= b
	}
	if v.InstableBit() {
		w.Instable[wd] |= b
	}
}

// MergeAt accumulates the requirement v at bit level i.
func (w *Word7V) MergeAt(i int, v Value7) {
	wd, b := i>>6, uint64(1)<<uint(i&63)
	if v.ZeroBit() {
		w.Zero[wd] |= b
	}
	if v.OneBit() {
		w.One[wd] |= b
	}
	if v.StableBit() {
		w.Stable[wd] |= b
	}
	if v.InstableBit() {
		w.Instable[wd] |= b
	}
}

// Merge accumulates the requirements of o into w at every bit level.
func (w Word7V) Merge(o Word7V) Word7V {
	return Word7V{
		Zero:     w.Zero.Or(o.Zero),
		One:      w.One.Or(o.One),
		Stable:   w.Stable.Or(o.Stable),
		Instable: w.Instable.Or(o.Instable),
	}
}

// ClearLevels resets the bit levels selected by mask to X.
func (w Word7V) ClearLevels(mask Mask) Word7V {
	return Word7V{
		Zero:     w.Zero.AndNot(mask),
		One:      w.One.AndNot(mask),
		Stable:   w.Stable.AndNot(mask),
		Instable: w.Instable.AndNot(mask),
	}
}

// SelectLevels keeps only the bit levels selected by mask.
func (w Word7V) SelectLevels(mask Mask) Word7V {
	return Word7V{
		Zero:     w.Zero.And(mask),
		One:      w.One.And(mask),
		Stable:   w.Stable.And(mask),
		Instable: w.Instable.And(mask),
	}
}

// Not returns the complement: the value planes are swapped while the
// stability planes are preserved.
func (w Word7V) Not() Word7V {
	return Word7V{Zero: w.One, One: w.Zero, Stable: w.Stable, Instable: w.Instable}
}

// ConflictMask returns the levels holding an illegal encoding.
func (w Word7V) ConflictMask() Mask {
	return w.Zero.And(w.One).Or(w.Stable.And(w.Instable))
}

// CoversMask returns the levels at which w satisfies the requirement o,
// restricted to the levels selected by within.
func (w Word7V) CoversMask(o Word7V, within Mask) Mask {
	miss := o.Zero.AndNot(w.Zero).
		Or(o.One.AndNot(w.One)).
		Or(o.Stable.AndNot(w.Stable)).
		Or(o.Instable.AndNot(w.Instable))
	return within.AndNot(miss)
}

// IsZero reports whether every level of every plane is X.
func (w Word7V) IsZero() bool { return w == Word7V{} }

// StringN renders the lowest n bit levels, highest first, in the Word7
// notation.
func (w Word7V) StringN(n int) string {
	if n <= 0 {
		n = 1
	}
	if n > MaxWordWidth {
		n = MaxWordWidth
	}
	var sb strings.Builder
	for i := n - 1; i >= 0; i-- {
		v := w.Get(i)
		switch {
		case v.IsConflict():
			sb.WriteByte('C')
		case v == X7:
			sb.WriteByte('x')
		case v == Stable0:
			sb.WriteByte('s')
		case v == Stable1:
			sb.WriteByte('S')
		case v == Fall7:
			sb.WriteByte('f')
		case v == Rise7:
			sb.WriteByte('r')
		case v == Final0:
			sb.WriteByte('0')
		case v == Final1:
			sb.WriteByte('1')
		default:
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// EvalGate3VInto evaluates a gate of the given kind over bit-parallel
// three-valued plane vectors, writing the result into dst.  Only plane words
// [0, k) are read and written; the caller keeps the upper words zero.  The
// result at levels where some input holds the conflict encoding is
// unspecified.
//
//atpgvet:noalloc
func EvalGate3VInto(dst *Word3V, kind Kind, k int, in []Word3V) {
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			*dst = Word3V{}
			return
		}
		*dst = in[0]
	case Not:
		if len(in) == 0 {
			*dst = Word3V{}
			return
		}
		*dst = in[0].Not()
	case Const0:
		*dst = FillWord3V(Zero3, LevelsMask(k*WordWidth))
	case Const1:
		*dst = FillWord3V(One3, LevelsMask(k*WordWidth))
	case And:
		andWord3V(dst, k, in, false)
	case Nand:
		andWord3V(dst, k, in, true)
	case Or:
		orWord3V(dst, k, in, false)
	case Nor:
		orWord3V(dst, k, in, true)
	case Xor:
		xorWord3V(dst, k, in, false)
	case Xnor:
		xorWord3V(dst, k, in, true)
	default:
		*dst = Word3V{}
	}
}

func andWord3V(dst *Word3V, k int, in []Word3V, invert bool) {
	if len(in) == 0 {
		*dst = Word3V{}
		return
	}
	for w := 0; w < k; w++ {
		zero, one := uint64(0), AllLevels
		for i := range in {
			zero |= in[i].Zero[w]
			one &= in[i].One[w]
		}
		if invert {
			zero, one = one, zero
		}
		dst.Zero[w], dst.One[w] = zero, one
	}
}

func orWord3V(dst *Word3V, k int, in []Word3V, invert bool) {
	if len(in) == 0 {
		*dst = Word3V{}
		return
	}
	for w := 0; w < k; w++ {
		zero, one := AllLevels, uint64(0)
		for i := range in {
			zero &= in[i].Zero[w]
			one |= in[i].One[w]
		}
		if invert {
			zero, one = one, zero
		}
		dst.Zero[w], dst.One[w] = zero, one
	}
}

func xorWord3V(dst *Word3V, k int, in []Word3V, invert bool) {
	if len(in) == 0 {
		*dst = Word3V{}
		return
	}
	for w := 0; w < k; w++ {
		assigned, parity := AllLevels, uint64(0)
		for i := range in {
			assigned &= in[i].Zero[w] ^ in[i].One[w]
			parity ^= in[i].One[w]
		}
		zero, one := assigned&^parity, assigned&parity
		if invert {
			zero, one = one, zero
		}
		dst.Zero[w], dst.One[w] = zero, one
	}
}

// EvalGate7VInto evaluates a gate of the given kind over bit-parallel
// seven-valued plane vectors, writing the result into dst.  Only plane words
// [0, k) are read and written; the caller keeps the upper words zero.  The
// per-word evaluation is exactly the scalar EvalGate7 plane algebra, so the
// result is bit-identical to evaluating each 64-level window separately.
//
//atpgvet:noalloc
func EvalGate7VInto(dst *Word7V, kind Kind, k int, in []Word7V) {
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			*dst = Word7V{}
			return
		}
		*dst = in[0]
	case Not:
		if len(in) == 0 {
			*dst = Word7V{}
			return
		}
		*dst = in[0].Not()
	case Const0:
		*dst = FillWord7V(Stable0, LevelsMask(k*WordWidth))
	case Const1:
		*dst = FillWord7V(Stable1, LevelsMask(k*WordWidth))
	case And:
		andWord7V(dst, k, in, false)
	case Nand:
		andWord7V(dst, k, in, true)
	case Or:
		orWord7V(dst, k, in, false)
	case Nor:
		orWord7V(dst, k, in, true)
	case Xor:
		xorWord7V(dst, k, in, false)
	case Xnor:
		xorWord7V(dst, k, in, true)
	default:
		*dst = Word7V{}
	}
}

func andWord7V(dst *Word7V, k int, in []Word7V, invert bool) {
	if len(in) == 0 {
		*dst = Word7V{}
		return
	}
	for w := 0; w < k; w++ {
		outZero, outOne := uint64(0), AllLevels
		outInit0, outInit1 := uint64(0), AllLevels
		allStable, anyStableZero := AllLevels, uint64(0)
		for i := range in {
			z, o := in[i].Zero[w], in[i].One[w]
			s, inst := in[i].Stable[w], in[i].Instable[w]
			outZero |= z
			outOne &= o
			outInit0 |= (z & s) | (o & inst)
			outInit1 &= (o & s) | (z & inst)
			allStable &= s
			anyStableZero |= z & s
		}
		compose7VWord(dst, w, outZero, outOne, outInit0, outInit1, allStable|anyStableZero, invert)
	}
}

func orWord7V(dst *Word7V, k int, in []Word7V, invert bool) {
	if len(in) == 0 {
		*dst = Word7V{}
		return
	}
	for w := 0; w < k; w++ {
		outZero, outOne := AllLevels, uint64(0)
		outInit0, outInit1 := AllLevels, uint64(0)
		allStable, anyStableOne := AllLevels, uint64(0)
		for i := range in {
			z, o := in[i].Zero[w], in[i].One[w]
			s, inst := in[i].Stable[w], in[i].Instable[w]
			outZero &= z
			outOne |= o
			outInit0 &= (z & s) | (o & inst)
			outInit1 |= (o & s) | (z & inst)
			allStable &= s
			anyStableOne |= o & s
		}
		compose7VWord(dst, w, outZero, outOne, outInit0, outInit1, allStable|anyStableOne, invert)
	}
}

func xorWord7V(dst *Word7V, k int, in []Word7V, invert bool) {
	if len(in) == 0 {
		*dst = Word7V{}
		return
	}
	for w := 0; w < k; w++ {
		finalAssigned, finalParity := AllLevels, uint64(0)
		initAssigned, initParity := AllLevels, uint64(0)
		allStable := AllLevels
		for i := range in {
			z, o := in[i].Zero[w], in[i].One[w]
			s, inst := in[i].Stable[w], in[i].Instable[w]
			i0 := (z & s) | (o & inst)
			i1 := (o & s) | (z & inst)
			finalAssigned &= z ^ o
			finalParity ^= o
			initAssigned &= i0 ^ i1
			initParity ^= i1
			allStable &= s
		}
		compose7VWord(dst, w,
			finalAssigned&^finalParity, finalAssigned&finalParity,
			initAssigned&^initParity, initAssigned&initParity,
			allStable, invert)
	}
}

// compose7VWord assembles plane word w of dst from final value planes,
// initial value planes and a stability guarantee, mirroring compose7Word;
// invert swaps the value planes on the way out (NAND/NOR/XNOR).
func compose7VWord(dst *Word7V, w int, zero, one, init0, init1, stable uint64, invert bool) {
	f0 := zero &^ one
	f1 := one &^ zero
	known := f0 | f1
	outStable := known & stable
	outInstable := ((f1 & init0) | (f0 & init1)) &^ stable
	if invert {
		zero, one = one, zero
	}
	dst.Zero[w] = zero
	dst.One[w] = one
	dst.Stable[w] = outStable
	dst.Instable[w] = outInstable
}
