package logic

import "fmt"

// Value7 is a scalar value of the seven-valued logic of Lin and Reddy used
// for robust test generation.  The encoding follows Table 2 of the paper and
// uses four bits: the 0-bit, the 1-bit, the stable-bit and the instable-bit.
//
//	logic value      0-bit  1-bit  stable-bit  instable-bit
//	0s  (stable 0)     1      0        1           0
//	1s  (stable 1)     0      1        1           0
//	0ŝ  (falling)      1      0        0           1
//	1ŝ  (rising)       0      1        0           1
//	0x  (final 0)      1      0        0           0
//	1x  (final 1)      0      1        0           0
//	X                  0      0        0           0
//	conflict           1      1        -           -
//	conflict           -      -        1           1
//
// The interpretation is in terms of the two-vector test (V1, V2): the 0/1
// bits give the final (V2) value; the stable bit asserts that the signal is
// constant and hazard-free across the whole test; the instable bit asserts
// that the signal carries a transition, i.e. its initial (V1) value is the
// complement of its final value.
type Value7 uint8

// Encoding bits of Value7.
const (
	zeroBit7     Value7 = 1 << 0
	oneBit7      Value7 = 1 << 1
	stableBit7   Value7 = 1 << 2
	instableBit7 Value7 = 1 << 3
)

// The seven values of the robust logic plus the unassigned value X7.
const (
	X7      Value7 = 0                       // unassigned
	Final0  Value7 = zeroBit7                // 0x: final value 0, initial value unknown
	Final1  Value7 = oneBit7                 // 1x: final value 1, initial value unknown
	Stable0 Value7 = zeroBit7 | stableBit7   // 0s: constant hazard-free 0
	Stable1 Value7 = oneBit7 | stableBit7    // 1s: constant hazard-free 1
	Fall7   Value7 = zeroBit7 | instableBit7 // 0ŝ: falling transition 1 -> 0
	Rise7   Value7 = oneBit7 | instableBit7  // 1ŝ: rising transition 0 -> 1
)

// ZeroBit reports whether the 0-bit is set (final value 0 required/known).
func (v Value7) ZeroBit() bool { return v&zeroBit7 != 0 }

// OneBit reports whether the 1-bit is set (final value 1 required/known).
func (v Value7) OneBit() bool { return v&oneBit7 != 0 }

// StableBit reports whether the stable-bit is set.
func (v Value7) StableBit() bool { return v&stableBit7 != 0 }

// InstableBit reports whether the instable-bit is set.
func (v Value7) InstableBit() bool { return v&instableBit7 != 0 }

// IsConflict reports whether the encoding is illegal, exactly as in Table 2
// of the paper: both value bits set, or both stability bits set.
func (v Value7) IsConflict() bool {
	if v.ZeroBit() && v.OneBit() {
		return true
	}
	if v.StableBit() && v.InstableBit() {
		return true
	}
	return false
}

// IsAssigned reports whether v carries a definite final value (0 or 1)
// without being a conflict.
func (v Value7) IsAssigned() bool {
	return !v.IsConflict() && (v.ZeroBit() || v.OneBit())
}

// IsX reports whether v is fully unassigned.
func (v Value7) IsX() bool { return v == X7 }

// Final returns the final (second-vector) value of v as a three-valued value.
func (v Value7) Final() Value3 {
	var out Value3
	if v.ZeroBit() {
		out |= Zero3
	}
	if v.OneBit() {
		out |= One3
	}
	return out
}

// Initial returns the initial (first-vector) value of v as a three-valued
// value.  It is known only for stable values (equal to the final value) and
// for transitions (complement of the final value).
func (v Value7) Initial() Value3 {
	if v.IsConflict() {
		return Conflict3
	}
	switch {
	case v.StableBit():
		return v.Final()
	case v.InstableBit():
		return v.Final().Not()
	}
	return X3
}

// Not returns the complement of v: the final value is inverted while the
// stability information is preserved (the complement of a constant is a
// constant; the complement of a rising transition is a falling transition).
func (v Value7) Not() Value7 {
	if v.IsConflict() {
		return v
	}
	out := v &^ (zeroBit7 | oneBit7)
	if v.ZeroBit() {
		out |= oneBit7
	}
	if v.OneBit() {
		out |= zeroBit7
	}
	return out
}

// Merge combines two value requirements on the same signal by accumulating
// their encoding bits.  Incompatible requirements produce a conflict.
func (v Value7) Merge(o Value7) Value7 { return v | o }

// Covers reports whether v satisfies the requirement o: every encoding bit
// demanded by o is present in v.
func (v Value7) Covers(o Value7) bool { return v&o == o }

// Weaken3 projects v onto the three-valued logic, dropping stability.
func (v Value7) Weaken3() Value3 { return v.Final() }

// Value7From3 lifts a three-valued value into the seven-valued logic with
// unknown stability.
func Value7From3(v Value3) Value7 {
	var out Value7
	if v.ZeroBit() {
		out |= zeroBit7
	}
	if v.OneBit() {
		out |= oneBit7
	}
	return out
}

// String renders the value using the paper's notation: 0s, 1s, 0i, 1i
// (instable), 0x, 1x, X, or C for a conflict.
func (v Value7) String() string {
	if v.IsConflict() {
		return "C"
	}
	switch v {
	case X7:
		return "X"
	case Stable0:
		return "0s"
	case Stable1:
		return "1s"
	case Fall7:
		return "0i"
	case Rise7:
		return "1i"
	case Final0:
		return "0x"
	case Final1:
		return "1x"
	}
	return fmt.Sprintf("Value7(%04b)", uint8(v))
}

// ParseValue7 parses the notation produced by String.
func ParseValue7(s string) (Value7, error) {
	switch s {
	case "X", "x":
		return X7, nil
	case "0s", "0S":
		return Stable0, nil
	case "1s", "1S":
		return Stable1, nil
	case "0i", "0I":
		return Fall7, nil
	case "1i", "1I":
		return Rise7, nil
	case "0x", "0X", "0":
		return Final0, nil
	case "1x", "1X", "1":
		return Final1, nil
	case "C", "c":
		return Stable0 | Stable1, nil
	}
	return X7, fmt.Errorf("logic: cannot parse %q as a seven-valued logic value", s)
}

// AllValues7 lists the seven legal values plus X in a deterministic order;
// useful for exhaustive tests.
func AllValues7() []Value7 {
	return []Value7{X7, Final0, Final1, Stable0, Stable1, Fall7, Rise7}
}

// Eval7 evaluates a gate of the given kind over scalar seven-valued inputs.
// It is the scalar reference implementation cross-checked against the
// bit-parallel evaluation in Word7.  The behaviour on conflicting inputs is
// unspecified (the generator abandons conflicting bit levels before they are
// ever re-evaluated); Eval7 returns a conflict in that case.
func Eval7(kind Kind, in ...Value7) Value7 {
	for _, v := range in {
		if v.IsConflict() {
			return zeroBit7 | oneBit7
		}
	}
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			return X7
		}
		return in[0]
	case Not:
		if len(in) == 0 {
			return X7
		}
		return in[0].Not()
	case Const0:
		return Stable0
	case Const1:
		return Stable1
	case And, Nand:
		out := and7(in)
		if kind == Nand {
			out = out.Not()
		}
		return out
	case Or, Nor:
		// OR is the dual of AND: complement inputs, AND, complement output.
		dual := make([]Value7, len(in))
		for i, v := range in {
			dual[i] = v.Not()
		}
		out := and7(dual).Not()
		if kind == Nor {
			out = out.Not()
		}
		return out
	case Xor, Xnor:
		out := xor7(in)
		if kind == Xnor {
			out = out.Not()
		}
		return out
	}
	return X7
}

// and7 evaluates an AND over seven-valued inputs using the waveform
// interpretation: the final value is the AND of the finals, the initial value
// is the AND of the initials, the output is stable if all inputs are stable
// or some input is a stable 0, and the output carries a transition when its
// initial and final values are known and differ.
func and7(in []Value7) Value7 {
	if len(in) == 0 {
		return X7
	}
	finals := make([]Value3, len(in))
	inits := make([]Value3, len(in))
	allStable := true
	anyStableZero := false
	for i, v := range in {
		finals[i] = v.Final()
		inits[i] = v.Initial()
		if !v.StableBit() {
			allStable = false
		}
		if v == Stable0 {
			anyStableZero = true
		}
	}
	final := and3(finals)
	init := and3(inits)
	stable := allStable || anyStableZero
	return compose7(final, init, stable)
}

// xor7 evaluates an XOR over seven-valued inputs.  The output is stable only
// when every input is stable; a guaranteed transition appears when the
// initial and final parities are both known and differ.
func xor7(in []Value7) Value7 {
	if len(in) == 0 {
		return X7
	}
	finals := make([]Value3, len(in))
	inits := make([]Value3, len(in))
	allStable := true
	for i, v := range in {
		finals[i] = v.Final()
		inits[i] = v.Initial()
		if !v.StableBit() {
			allStable = false
		}
	}
	return compose7(xor3(finals), xor3(inits), allStable)
}

// compose7 assembles a Value7 from a final value, an initial value and a
// stability guarantee.  An unknown final value collapses to X because the
// seven-valued logic cannot express "stable at an unknown value".
func compose7(final, init Value3, stable bool) Value7 {
	switch final {
	case Zero3:
		switch {
		case stable:
			return Stable0
		case init == One3:
			return Fall7
		default:
			return Final0
		}
	case One3:
		switch {
		case stable:
			return Stable1
		case init == Zero3:
			return Rise7
		default:
			return Final1
		}
	}
	return X7
}
