package logic

import "fmt"

// Value3 is a scalar value of the three-valued logic used for nonrobust test
// generation.  The encoding follows Table 1 of the paper: bit 0 is the
// "0-bit", bit 1 is the "1-bit".
//
//	logic value   0-bit   1-bit
//	0             1       0
//	1             0       1
//	X             0       0
//	conflict (C)  1       1
type Value3 uint8

// The four encodings of Value3.
const (
	X3        Value3 = 0b00 // unassigned / don't care
	Zero3     Value3 = 0b01 // logic 0
	One3      Value3 = 0b10 // logic 1
	Conflict3 Value3 = 0b11 // illegal assignment (conflicting requirements)
)

// ZeroBit reports whether the 0-bit of the encoding is set.
func (v Value3) ZeroBit() bool { return v&0b01 != 0 }

// OneBit reports whether the 1-bit of the encoding is set.
func (v Value3) OneBit() bool { return v&0b10 != 0 }

// IsConflict reports whether v is the illegal (1,1) encoding.
func (v Value3) IsConflict() bool { return v == Conflict3 }

// IsAssigned reports whether v carries a definite logic value (0 or 1).
func (v Value3) IsAssigned() bool { return v == Zero3 || v == One3 }

// IsX reports whether v is unassigned.
func (v Value3) IsX() bool { return v == X3 }

// Not returns the boolean complement.  X and conflict are unchanged.
func (v Value3) Not() Value3 {
	switch v {
	case Zero3:
		return One3
	case One3:
		return Zero3
	}
	return v
}

// Merge combines two value requirements on the same signal.  Requirements
// accumulate, so merging is the bitwise OR of the encodings; incompatible
// requirements produce Conflict3.
func (v Value3) Merge(o Value3) Value3 { return v | o }

// Covers reports whether v satisfies the requirement o, i.e. every encoding
// bit demanded by o is present in v.  Every value covers X.
func (v Value3) Covers(o Value3) bool { return v&o == o }

// String renders the value as "0", "1", "X" or "C".
func (v Value3) String() string {
	switch v {
	case X3:
		return "X"
	case Zero3:
		return "0"
	case One3:
		return "1"
	case Conflict3:
		return "C"
	}
	return fmt.Sprintf("Value3(%d)", uint8(v))
}

// Value3FromBool converts a concrete boolean to Zero3/One3.
func Value3FromBool(b bool) Value3 {
	if b {
		return One3
	}
	return Zero3
}

// ParseValue3 parses "0", "1", "x"/"X", or "c"/"C".
func ParseValue3(s string) (Value3, error) {
	switch s {
	case "0":
		return Zero3, nil
	case "1":
		return One3, nil
	case "x", "X":
		return X3, nil
	case "c", "C":
		return Conflict3, nil
	}
	return X3, fmt.Errorf("logic: cannot parse %q as a three-valued logic value", s)
}

// Eval3 evaluates a gate of the given kind over scalar three-valued inputs.
// It is the scalar reference implementation against which the bit-parallel
// evaluation in Word3 is cross-checked by the test suite.  Conflict inputs
// propagate pessimistically: the result of any gate with a conflicting input
// is itself a conflict, which mirrors the plane formulas.
func Eval3(kind Kind, in ...Value3) Value3 {
	for _, v := range in {
		if v.IsConflict() {
			return Conflict3
		}
	}
	switch kind {
	case Buf, Input:
		if len(in) == 0 {
			return X3
		}
		return in[0]
	case Not:
		if len(in) == 0 {
			return X3
		}
		return in[0].Not()
	case Const0:
		return Zero3
	case Const1:
		return One3
	case And, Nand:
		out := and3(in)
		if kind == Nand {
			out = out.Not()
		}
		return out
	case Or, Nor:
		out := or3(in)
		if kind == Nor {
			out = out.Not()
		}
		return out
	case Xor, Xnor:
		out := xor3(in)
		if kind == Xnor {
			out = out.Not()
		}
		return out
	}
	return X3
}

func and3(in []Value3) Value3 {
	anyZero, allOne := false, true
	for _, v := range in {
		if v == Zero3 {
			anyZero = true
		}
		if v != One3 {
			allOne = false
		}
	}
	switch {
	case anyZero:
		return Zero3
	case allOne && len(in) > 0:
		return One3
	}
	return X3
}

func or3(in []Value3) Value3 {
	anyOne, allZero := false, true
	for _, v := range in {
		if v == One3 {
			anyOne = true
		}
		if v != Zero3 {
			allZero = false
		}
	}
	switch {
	case anyOne:
		return One3
	case allZero && len(in) > 0:
		return Zero3
	}
	return X3
}

func xor3(in []Value3) Value3 {
	parity := Zero3
	for _, v := range in {
		if !v.IsAssigned() {
			return X3
		}
		if v == One3 {
			parity = parity.Not()
		}
	}
	if len(in) == 0 {
		return X3
	}
	return parity
}
