package logic

import (
	"testing"
	"testing/quick"
)

// TestTable1Encoding checks the nonrobust encoding against Table 1 of the
// paper: logic 0 is (0-bit=1, 1-bit=0), logic 1 is (0, 1), X is (0, 0) and
// the conflict is (1, 1).
func TestTable1Encoding(t *testing.T) {
	cases := []struct {
		v       Value3
		zeroBit bool
		oneBit  bool
	}{
		{Zero3, true, false},
		{One3, false, true},
		{X3, false, false},
		{Conflict3, true, true},
	}
	for _, c := range cases {
		if got := c.v.ZeroBit(); got != c.zeroBit {
			t.Errorf("%v.ZeroBit() = %v, want %v", c.v, got, c.zeroBit)
		}
		if got := c.v.OneBit(); got != c.oneBit {
			t.Errorf("%v.OneBit() = %v, want %v", c.v, got, c.oneBit)
		}
	}
	if !Conflict3.IsConflict() {
		t.Error("Conflict3.IsConflict() = false, want true")
	}
	for _, v := range []Value3{Zero3, One3, X3} {
		if v.IsConflict() {
			t.Errorf("%v.IsConflict() = true, want false", v)
		}
	}
}

func TestValue3Not(t *testing.T) {
	cases := map[Value3]Value3{
		Zero3:     One3,
		One3:      Zero3,
		X3:        X3,
		Conflict3: Conflict3,
	}
	for in, want := range cases {
		if got := in.Not(); got != want {
			t.Errorf("%v.Not() = %v, want %v", in, got, want)
		}
	}
}

func TestValue3MergeConflict(t *testing.T) {
	if got := Zero3.Merge(One3); got != Conflict3 {
		t.Errorf("Zero3.Merge(One3) = %v, want conflict", got)
	}
	if got := Zero3.Merge(Zero3); got != Zero3 {
		t.Errorf("Zero3.Merge(Zero3) = %v, want Zero3", got)
	}
	if got := X3.Merge(One3); got != One3 {
		t.Errorf("X3.Merge(One3) = %v, want One3", got)
	}
}

func TestValue3Covers(t *testing.T) {
	if !One3.Covers(X3) {
		t.Error("One3 should cover X3")
	}
	if !One3.Covers(One3) {
		t.Error("One3 should cover One3")
	}
	if One3.Covers(Zero3) {
		t.Error("One3 must not cover Zero3")
	}
	if X3.Covers(One3) {
		t.Error("X3 must not cover One3")
	}
	if !Conflict3.Covers(One3) || !Conflict3.Covers(Zero3) {
		t.Error("the conflict encoding covers every requirement by construction")
	}
}

func TestValue3StringParseRoundTrip(t *testing.T) {
	for _, v := range []Value3{Zero3, One3, X3, Conflict3} {
		got, err := ParseValue3(v.String())
		if err != nil {
			t.Fatalf("ParseValue3(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
	if _, err := ParseValue3("z"); err == nil {
		t.Error("ParseValue3(\"z\") should fail")
	}
}

func TestEval3TruthTables(t *testing.T) {
	type tc struct {
		kind Kind
		in   []Value3
		want Value3
	}
	cases := []tc{
		{And, []Value3{One3, One3}, One3},
		{And, []Value3{One3, Zero3}, Zero3},
		{And, []Value3{X3, Zero3}, Zero3},
		{And, []Value3{X3, One3}, X3},
		{And, []Value3{X3, X3}, X3},
		{Nand, []Value3{One3, One3}, Zero3},
		{Nand, []Value3{Zero3, X3}, One3},
		{Or, []Value3{Zero3, Zero3}, Zero3},
		{Or, []Value3{X3, One3}, One3},
		{Or, []Value3{X3, Zero3}, X3},
		{Nor, []Value3{Zero3, Zero3}, One3},
		{Nor, []Value3{One3, X3}, Zero3},
		{Xor, []Value3{One3, Zero3}, One3},
		{Xor, []Value3{One3, One3}, Zero3},
		{Xor, []Value3{One3, X3}, X3},
		{Xnor, []Value3{One3, One3}, One3},
		{Not, []Value3{Zero3}, One3},
		{Buf, []Value3{Zero3}, Zero3},
		{Const0, nil, Zero3},
		{Const1, nil, One3},
		{And, []Value3{One3, One3, One3, Zero3}, Zero3},
		{Or, []Value3{Zero3, Zero3, Zero3, One3}, One3},
		{Xor, []Value3{One3, One3, One3}, One3},
	}
	for _, c := range cases {
		if got := Eval3(c.kind, c.in...); got != c.want {
			t.Errorf("Eval3(%v, %v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

// TestEval3ConflictPropagation documents the pessimistic behaviour of the
// scalar reference on conflicting inputs.
func TestEval3ConflictPropagation(t *testing.T) {
	if got := Eval3(And, Conflict3, One3); got != Conflict3 {
		t.Errorf("Eval3(And, C, 1) = %v, want conflict", got)
	}
}

// TestEval3MatchesBoolean checks that on fully assigned inputs the
// three-valued evaluation agrees with plain boolean evaluation.
func TestEval3MatchesBoolean(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	for _, kind := range kinds {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				for c := 0; c < 2; c++ {
					in := []Value3{Value3FromBool(a == 1), Value3FromBool(b == 1), Value3FromBool(c == 1)}
					got := Eval3(kind, in...)
					want := Value3FromBool(boolEval(kind, a == 1, b == 1, c == 1))
					if got != want {
						t.Errorf("Eval3(%v, %d%d%d) = %v, want %v", kind, a, b, c, got, want)
					}
				}
			}
		}
	}
}

func boolEval(kind Kind, in ...bool) bool {
	switch kind {
	case And, Nand:
		out := true
		for _, b := range in {
			out = out && b
		}
		if kind == Nand {
			return !out
		}
		return out
	case Or, Nor:
		out := false
		for _, b := range in {
			out = out || b
		}
		if kind == Nor {
			return !out
		}
		return out
	case Xor, Xnor:
		out := false
		for _, b := range in {
			out = out != b
		}
		if kind == Xnor {
			return !out
		}
		return out
	case Not:
		return !in[0]
	case Buf:
		return in[0]
	}
	return false
}

// TestEval3Monotone is a property test: refining an X input to a concrete
// value never changes an already-determined output (the evaluation is
// monotone on the information ordering).
func TestEval3Monotone(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	f := func(kindIdx uint8, raw [4]uint8, pos uint8, refineToOne bool) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		in := make([]Value3, len(raw))
		for i, r := range raw {
			in[i] = []Value3{X3, Zero3, One3}[int(r)%3]
		}
		before := Eval3(kind, in...)
		p := int(pos) % len(in)
		if in[p] != X3 {
			return true
		}
		if refineToOne {
			in[p] = One3
		} else {
			in[p] = Zero3
		}
		after := Eval3(kind, in...)
		if before == X3 {
			return true
		}
		return after == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKindParsing(t *testing.T) {
	cases := map[string]Kind{
		"and": And, "AND": And, "NAND": Nand, "or": Or, "NOR": Nor,
		"XOR": Xor, "xnor": Xnor, "not": Not, "INV": Not, "BUFF": Buf,
		"buf": Buf, "INPUT": Input, "vdd": Const1, "gnd": Const0,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseKind(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseKind("FLUX"); err == nil {
		t.Error("ParseKind(\"FLUX\") should fail")
	}
}

func TestKindProperties(t *testing.T) {
	if v, ok := And.Controlling(); !ok || v != Zero3 {
		t.Errorf("And.Controlling() = %v, %v", v, ok)
	}
	if v, ok := Nor.Controlling(); !ok || v != One3 {
		t.Errorf("Nor.Controlling() = %v, %v", v, ok)
	}
	if v, ok := Nand.NonControlling(); !ok || v != One3 {
		t.Errorf("Nand.NonControlling() = %v, %v", v, ok)
	}
	if _, ok := Xor.Controlling(); ok {
		t.Error("Xor has no controlling value")
	}
	if !Nand.Inverting() || And.Inverting() {
		t.Error("inversion parity wrong for AND/NAND")
	}
	if !Nor.OutputInversion() || Or.OutputInversion() {
		t.Error("output inversion wrong for OR/NOR")
	}
	for k := Kind(0); k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("kind 200 should be invalid")
	}
}
