// Package logic implements the multi-valued logics and bit-parallel word
// types used by the bit-parallel path delay fault test pattern generator.
//
// Two logics are provided, following Henftling & Wittmann (DATE 1995):
//
//   - a three-valued logic {0, 1, X} for nonrobust test generation, encoded
//     in two bit planes per signal (Table 1 of the paper), and
//   - the seven-valued logic of Lin and Reddy for robust test generation,
//     encoded in four bit planes per signal (Table 2 of the paper).
//
// The bit-parallel representation stores L = 64 logic values per signal, one
// per bit level.  Each plane is a uint64; bit i of every plane belongs to bit
// level i.  Gate evaluation, implication and conflict detection then operate
// on whole planes with word-wide boolean operations, so all 64 bit levels are
// processed by a handful of machine instructions.
package logic

import "fmt"

// Kind identifies the boolean function of a gate.  The zero value is Buf.
type Kind uint8

// Supported gate kinds.  Input marks a primary (or pseudo-primary) input and
// has no evaluation rule; Const0/Const1 are constant drivers used by some
// netlists after sequential-element removal.
const (
	Buf Kind = iota
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Input
	Const0
	Const1
	numKinds
)

var kindNames = [...]string{
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
}

// String returns the conventional upper-case name of the gate kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined gate kinds.
func (k Kind) Valid() bool { return k < numKinds }

// ParseKind converts a gate name as found in ISCAS .bench files (case
// insensitive) into a Kind.  It accepts the aliases BUFF and DFF is not a
// combinational kind and is rejected here; the circuit package handles
// sequential elements before gates reach the logic level.
func ParseKind(s string) (Kind, error) {
	switch normalizeKindName(s) {
	case "BUF", "BUFF":
		return Buf, nil
	case "NOT", "INV":
		return Not, nil
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "INPUT":
		return Input, nil
	case "CONST0", "GND", "ZERO":
		return Const0, nil
	case "CONST1", "VDD", "ONE":
		return Const1, nil
	}
	return Buf, fmt.Errorf("logic: unknown gate kind %q", s)
}

func normalizeKindName(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c == ' ' || c == '\t' {
			continue
		}
		b = append(b, c)
	}
	return string(b)
}

// Inverting reports whether the gate kind logically inverts the parity of a
// transition travelling through it (NOT, NAND, NOR, XNOR).  XOR/XNOR parity
// additionally depends on the side input values; Inverting reports the
// inversion assuming the side inputs hold the gate's neutral sensitizing
// value, which is the convention used during path sensitization.
func (k Kind) Inverting() bool {
	switch k {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// HasControlling reports whether the gate kind has a controlling input value
// (AND/NAND: 0, OR/NOR: 1).  XOR-type gates and single-input gates have none.
func (k Kind) HasControlling() bool {
	switch k {
	case And, Nand, Or, Nor:
		return true
	}
	return false
}

// Controlling returns the controlling input value of the gate kind and true,
// or an undefined value and false if the kind has no controlling value.
func (k Kind) Controlling() (Value3, bool) {
	switch k {
	case And, Nand:
		return Zero3, true
	case Or, Nor:
		return One3, true
	}
	return X3, false
}

// NonControlling returns the non-controlling input value of the gate kind and
// true, or an undefined value and false if the kind has no controlling value.
func (k Kind) NonControlling() (Value3, bool) {
	switch k {
	case And, Nand:
		return One3, true
	case Or, Nor:
		return Zero3, true
	}
	return X3, false
}

// OutputInversion reports whether the output of the gate is the complement of
// the "core" monotone function (AND for NAND, OR for NOR, buffer for NOT).
func (k Kind) OutputInversion() bool {
	switch k {
	case Nand, Nor, Not, Xnor:
		return true
	}
	return false
}
