package logic

import (
	"testing"
	"testing/quick"
)

// TestTable2Encoding checks the robust encoding against Table 2 of the paper.
func TestTable2Encoding(t *testing.T) {
	cases := []struct {
		v        Value7
		zero     bool
		one      bool
		stable   bool
		instable bool
	}{
		{Stable0, true, false, true, false},
		{Stable1, false, true, true, false},
		{Fall7, true, false, false, true},
		{Rise7, false, true, false, true},
		{Final0, true, false, false, false},
		{Final1, false, true, false, false},
		{X7, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.v.ZeroBit(); got != c.zero {
			t.Errorf("%v.ZeroBit() = %v, want %v", c.v, got, c.zero)
		}
		if got := c.v.OneBit(); got != c.one {
			t.Errorf("%v.OneBit() = %v, want %v", c.v, got, c.one)
		}
		if got := c.v.StableBit(); got != c.stable {
			t.Errorf("%v.StableBit() = %v, want %v", c.v, got, c.stable)
		}
		if got := c.v.InstableBit(); got != c.instable {
			t.Errorf("%v.InstableBit() = %v, want %v", c.v, got, c.instable)
		}
		if c.v.IsConflict() {
			t.Errorf("%v must not be a conflict", c.v)
		}
	}
	// The two conflict patterns of Table 2.
	if !(Final0 | Final1).IsConflict() {
		t.Error("0-bit and 1-bit together must be a conflict")
	}
	if !(Stable1 | Rise7).IsConflict() {
		t.Error("stable-bit and instable-bit together must be a conflict")
	}
}

func TestValue7InitialFinal(t *testing.T) {
	cases := []struct {
		v           Value7
		final, init Value3
	}{
		{Stable0, Zero3, Zero3},
		{Stable1, One3, One3},
		{Fall7, Zero3, One3},
		{Rise7, One3, Zero3},
		{Final0, Zero3, X3},
		{Final1, One3, X3},
		{X7, X3, X3},
	}
	for _, c := range cases {
		if got := c.v.Final(); got != c.final {
			t.Errorf("%v.Final() = %v, want %v", c.v, got, c.final)
		}
		if got := c.v.Initial(); got != c.init {
			t.Errorf("%v.Initial() = %v, want %v", c.v, got, c.init)
		}
	}
}

func TestValue7Not(t *testing.T) {
	cases := map[Value7]Value7{
		Stable0: Stable1,
		Stable1: Stable0,
		Fall7:   Rise7,
		Rise7:   Fall7,
		Final0:  Final1,
		Final1:  Final0,
		X7:      X7,
	}
	for in, want := range cases {
		if got := in.Not(); got != want {
			t.Errorf("%v.Not() = %v, want %v", in, got, want)
		}
		if got := in.Not().Not(); got != in {
			t.Errorf("double complement of %v gave %v", in, got)
		}
	}
}

func TestValue7MergeConflicts(t *testing.T) {
	if got := Stable0.Merge(Rise7); !got.IsConflict() {
		t.Errorf("Stable0.Merge(Rise7) = %v, want conflict", got)
	}
	if got := Stable1.Merge(Fall7); !got.IsConflict() {
		t.Errorf("Stable1.Merge(Fall7) = %v, want conflict", got)
	}
	if got := Final1.Merge(Stable1); got != Stable1 {
		t.Errorf("Final1.Merge(Stable1) = %v, want Stable1", got)
	}
	if got := Final1.Merge(Rise7); got != Rise7 {
		t.Errorf("Final1.Merge(Rise7) = %v, want Rise7", got)
	}
	if got := X7.Merge(Fall7); got != Fall7 {
		t.Errorf("X7.Merge(Fall7) = %v, want Fall7", got)
	}
	if got := Fall7.Merge(Rise7); !got.IsConflict() {
		t.Errorf("Fall7.Merge(Rise7) = %v, want conflict", got)
	}
}

func TestValue7CoversAndWeaken(t *testing.T) {
	if !Stable1.Covers(Final1) {
		t.Error("Stable1 must cover the weaker requirement Final1")
	}
	if Final1.Covers(Stable1) {
		t.Error("Final1 must not cover Stable1")
	}
	if !Rise7.Covers(Final1) {
		t.Error("Rise7 must cover Final1")
	}
	if Stable1.Weaken3() != One3 || Fall7.Weaken3() != Zero3 || X7.Weaken3() != X3 {
		t.Error("Weaken3 projection is wrong")
	}
	if Value7From3(One3) != Final1 || Value7From3(Zero3) != Final0 || Value7From3(X3) != X7 {
		t.Error("Value7From3 lifting is wrong")
	}
}

func TestValue7StringParseRoundTrip(t *testing.T) {
	for _, v := range AllValues7() {
		got, err := ParseValue7(v.String())
		if err != nil {
			t.Fatalf("ParseValue7(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
	if _, err := ParseValue7("nope"); err == nil {
		t.Error("ParseValue7(\"nope\") should fail")
	}
}

func TestEval7TruthTables(t *testing.T) {
	type tc struct {
		kind Kind
		in   []Value7
		want Value7
	}
	cases := []tc{
		// A stable controlling value dominates everything.
		{And, []Value7{Stable0, Rise7}, Stable0},
		{And, []Value7{Stable0, X7}, Stable0},
		{Or, []Value7{Stable1, Fall7}, Stable1},
		{Nand, []Value7{Stable0, X7}, Stable1},
		{Nor, []Value7{Stable1, X7}, Stable0},
		// A transition propagates through a gate whose side input holds the
		// stable non-controlling value.
		{And, []Value7{Rise7, Stable1}, Rise7},
		{And, []Value7{Fall7, Stable1}, Fall7},
		{Nand, []Value7{Rise7, Stable1}, Fall7},
		{Or, []Value7{Fall7, Stable0}, Fall7},
		{Nor, []Value7{Rise7, Stable0}, Fall7},
		{Not, []Value7{Rise7}, Fall7},
		{Buf, []Value7{Rise7}, Rise7},
		// A transition also propagates when the side input only has a final
		// non-controlling value, but then the result is only a transition if
		// the initial value is still determined.
		{And, []Value7{Rise7, Final1}, Rise7},
		// With a falling on-path input the side input's unknown initial value
		// may already hold the output at 0, so only the final value is known.
		{And, []Value7{Fall7, Final1}, Final0},
		// Two opposite transitions into an AND may glitch: the output is only
		// known to end at 0.
		{And, []Value7{Rise7, Fall7}, Final0},
		{Or, []Value7{Rise7, Fall7}, Final1},
		// XOR of two transitions in the same direction cancels into a final
		// value with a possible hazard.
		{Xor, []Value7{Rise7, Rise7}, Final0},
		{Xor, []Value7{Rise7, Fall7}, Final1},
		{Xor, []Value7{Rise7, Stable0}, Rise7},
		{Xor, []Value7{Rise7, Stable1}, Fall7},
		{Xnor, []Value7{Rise7, Stable1}, Rise7},
		// Stability of XOR requires all inputs stable.
		{Xor, []Value7{Stable1, Stable1}, Stable0},
		{Xor, []Value7{Stable1, Final1}, Final0},
		// Constants.
		{Const0, nil, Stable0},
		{Const1, nil, Stable1},
		// Unknowns.
		{And, []Value7{Rise7, X7}, X7},
		{Or, []Value7{Fall7, X7}, X7},
		{And, []Value7{Final1, Final1}, Final1},
		{And, []Value7{Stable1, Stable1, Stable1}, Stable1},
		{And, []Value7{Stable1, Stable1, Rise7}, Rise7},
	}
	for _, c := range cases {
		if got := Eval7(c.kind, c.in...); got != c.want {
			t.Errorf("Eval7(%v, %v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

// TestEval7FinalProjection is a property test: the final value of the
// seven-valued evaluation always agrees with the three-valued evaluation of
// the final values of the inputs.
func TestEval7FinalProjection(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor, Buf, Not}
	vals := AllValues7()
	f := func(kindIdx uint8, raw [3]uint8) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		n := 3
		if kind == Buf || kind == Not {
			n = 1
		}
		in7 := make([]Value7, n)
		in3 := make([]Value3, n)
		for i := 0; i < n; i++ {
			in7[i] = vals[int(raw[i])%len(vals)]
			in3[i] = in7[i].Final()
		}
		got := Eval7(kind, in7...).Final()
		want := Eval3(kind, in3...)
		// The seven-valued evaluation may know less than the three-valued
		// one never; it must agree exactly on the final value.
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestEval7StabilitySound is a property test: whenever the evaluation claims
// the output is stable, every waveform consistent with the inputs indeed
// produces a constant output.  The check is performed by exhaustive
// simulation of the two-vector behaviour: stable values have equal vectors,
// transitions have complementary vectors, and "final only" values are tried
// with both initial values.
func TestEval7StabilitySound(t *testing.T) {
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor}
	vals := AllValues7()
	f := func(kindIdx uint8, raw [3]uint8) bool {
		kind := kinds[int(kindIdx)%len(kinds)]
		in := make([]Value7, 3)
		for i := range in {
			in[i] = vals[int(raw[i])%len(vals)]
		}
		out := Eval7(kind, in...)
		if !out.StableBit() && !out.InstableBit() {
			return true
		}
		// Enumerate all initial-value choices consistent with the inputs.
		choices := make([][]Value3, len(in))
		for i, v := range in {
			switch v.Initial() {
			case Zero3:
				choices[i] = []Value3{Zero3}
			case One3:
				choices[i] = []Value3{One3}
			default:
				if v.Final() == X3 {
					// Unknown final value: the output should not have claimed
					// stability from it anyway; try both.
					choices[i] = []Value3{Zero3, One3}
				} else {
					choices[i] = []Value3{Zero3, One3}
				}
			}
		}
		finals := make([]Value3, len(in))
		for i, v := range in {
			finals[i] = v.Final()
			if finals[i] == X3 {
				// Cannot check further; skip.
				return true
			}
		}
		finalOut := Eval3(kind, finals...)
		ok := true
		var rec func(i int, inits []Value3)
		rec = func(i int, inits []Value3) {
			if !ok {
				return
			}
			if i == len(in) {
				initOut := Eval3(kind, inits...)
				if out.StableBit() && initOut != finalOut {
					ok = false
				}
				if out.InstableBit() && initOut == finalOut {
					ok = false
				}
				return
			}
			for _, c := range choices[i] {
				next := append(append([]Value3{}, inits...), c)
				rec(i+1, next)
			}
		}
		rec(0, nil)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
