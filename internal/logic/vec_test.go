package logic

import (
	"math/rand"
	"testing"
)

func TestKForWidth(t *testing.T) {
	cases := []struct{ width, k int }{
		{1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
		{200, 4}, {256, 4}, {257, 5}, {511, 8}, {512, 8},
	}
	for _, c := range cases {
		if got := KForWidth(c.width); got != c.k {
			t.Errorf("KForWidth(%d) = %d, want %d", c.width, got, c.k)
		}
	}
}

func TestMaskProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1995))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200, 511, 512} {
		m := LevelsMask(n)
		if got := m.OnesCount(); got != n {
			t.Errorf("LevelsMask(%d).OnesCount() = %d", n, got)
		}
		wantWords := (n + 63) / 64
		if wantWords == 0 {
			wantWords = 1 // Words() describes at least a one-word engine
		}
		if got := m.Words(); got != wantWords {
			t.Errorf("LevelsMask(%d).Words() = %d, want %d", n, got, wantWords)
		}
		for i := 0; i < MaxWordWidth; i++ {
			if m.Bit(i) != (i < n) {
				t.Fatalf("LevelsMask(%d).Bit(%d) = %v", n, i, m.Bit(i))
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(MaxWordWidth)
		b := BitMask(i)
		if b.OnesCount() != 1 || !b.Bit(i) || b.TrailingZeros() != i {
			t.Fatalf("BitMask(%d) wrong: %v", i, b)
		}
		j := rng.Intn(MaxWordWidth)
		u := b.Or(BitMask(j))
		if !u.Bit(i) || !u.Bit(j) {
			t.Fatalf("Or lost a bit: %d %d", i, j)
		}
		if d := u.AndNot(BitMask(j)); i != j && (!d.Bit(i) || d.Bit(j)) {
			t.Fatalf("AndNot wrong: %d %d", i, j)
		}
		if x := b.And(b.Not()); !x.IsZero() {
			t.Fatalf("m AND NOT m != 0 for bit %d", i)
		}
	}
}

func TestWord7VRoundTrip(t *testing.T) {
	vals := []Value7{X7, Final0, Final1, Stable0, Stable1, Fall7, Rise7}
	rng := rand.New(rand.NewSource(7))
	var w Word7V
	ref := make([]Value7, MaxWordWidth)
	for trial := 0; trial < 4096; trial++ {
		i := rng.Intn(MaxWordWidth)
		v := vals[rng.Intn(len(vals))]
		w.Set(i, v)
		ref[i] = v
	}
	for i, v := range ref {
		if got := w.Get(i); got != v {
			t.Fatalf("Get(%d) = %v, want %v", i, got, v)
		}
	}
	for _, v := range vals {
		full := FillWord7V(v, LevelsMask(MaxWordWidth))
		for _, i := range []int{0, 63, 64, 200, 511} {
			if got := full.Get(i); got != v {
				t.Fatalf("FillWord7V(%v).Get(%d) = %v", v, i, got)
			}
		}
		if v != X7 && !full.SelectLevels(BitMask(70)).SelectLevels(BitMask(71)).IsZero() {
			t.Fatalf("SelectLevels of disjoint masks should clear %v", v)
		}
	}
	// Not swaps the final-value planes and preserves the stability planes.
	n := w.Not()
	if n.Zero != w.One || n.One != w.Zero || n.Stable != w.Stable || n.Instable != w.Instable {
		t.Error("Word7V.Not must swap Zero/One and keep Stable/Instable")
	}
	// Word round-trip through the scalar view.
	for wd := 0; wd < MaxK; wd++ {
		s := w.Word7At(wd)
		back := Word7VFromWord7(s, wd)
		if back.Word7At(wd) != s {
			t.Fatalf("Word7At/Word7VFromWord7 round-trip failed at word %d", wd)
		}
	}
}

// randWord7 builds a Word7 whose 64 levels hold independently random valid
// (conflict-free) seven-valued encodings.
func randWord7(rng *rand.Rand) Word7 {
	vals := []Value7{X7, Final0, Final1, Stable0, Stable1, Fall7, Rise7}
	var w Word7V
	for i := 0; i < WordWidth; i++ {
		w.Set(i, vals[rng.Intn(len(vals))])
	}
	return w.Word7At(0)
}

// randWord3 is the three-valued sibling of randWord7.
func randWord3(rng *rand.Rand) Word3 {
	vals := []Value3{X3, Zero3, One3}
	var w Word3V
	for i := 0; i < WordWidth; i++ {
		w.Set(i, vals[rng.Intn(len(vals))])
	}
	return Word3{Zero: w.Zero[0], One: w.One[0]}
}

// TestEvalGate7VIntoMatchesScalar checks that the K-word vector kernel is,
// word for word, the scalar kernel: a width-512 evaluation must equal eight
// independent single-word evaluations of the same inputs (the window
// independence the multi-word planes are built on).
func TestEvalGate7VIntoMatchesScalar(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Const0, Const1}
	rng := rand.New(rand.NewSource(42))
	for _, kind := range kinds {
		for _, fanins := range []int{1, 2, 3, 5} {
			if (kind == Buf || kind == Not) && fanins != 1 {
				continue
			}
			for trial := 0; trial < 20; trial++ {
				in := make([]Word7V, fanins)
				scalar := make([][]Word7, MaxK)
				for wd := range scalar {
					scalar[wd] = make([]Word7, fanins)
				}
				for f := 0; f < fanins; f++ {
					for wd := 0; wd < MaxK; wd++ {
						s := randWord7(rng)
						scalar[wd][f] = s
						in[f] = in[f].Merge(Word7VFromWord7(s, wd))
					}
				}
				var got Word7V
				EvalGate7VInto(&got, kind, MaxK, in)
				for wd := 0; wd < MaxK; wd++ {
					want := EvalGate7(kind, scalar[wd])
					if got.Word7At(wd) != want {
						t.Fatalf("%v fanins=%d word %d: vector %v != scalar %v",
							kind, fanins, wd, got.Word7At(wd), want)
					}
				}
			}
		}
	}
}

// TestEvalGate3VIntoMatchesScalar is the three-valued analogue.
func TestEvalGate3VIntoMatchesScalar(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Const0, Const1}
	rng := rand.New(rand.NewSource(43))
	for _, kind := range kinds {
		for _, fanins := range []int{1, 2, 4} {
			if (kind == Buf || kind == Not) && fanins != 1 {
				continue
			}
			for trial := 0; trial < 20; trial++ {
				in := make([]Word3V, fanins)
				scalar := make([][]Word3, MaxK)
				for wd := range scalar {
					scalar[wd] = make([]Word3, fanins)
				}
				for f := 0; f < fanins; f++ {
					for wd := 0; wd < MaxK; wd++ {
						s := randWord3(rng)
						scalar[wd][f] = s
						in[f].Zero[wd] = s.Zero
						in[f].One[wd] = s.One
					}
				}
				var got Word3V
				EvalGate3VInto(&got, kind, MaxK, in)
				for wd := 0; wd < MaxK; wd++ {
					want := EvalGate3(kind, scalar[wd])
					if got.Zero[wd] != want.Zero || got.One[wd] != want.One {
						t.Fatalf("%v fanins=%d word %d: vector != scalar", kind, fanins, wd)
					}
				}
			}
		}
	}
}

// TestEvalGateVIntoPartialK checks that a k-bounded evaluation leaves the
// words at and above k untouched, the contract the ka-bounded engine loops
// rely on.
func TestEvalGateVIntoPartialK(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	in := []Word7V{{}, {}}
	for f := range in {
		for wd := 0; wd < MaxK; wd++ {
			in[f] = in[f].Merge(Word7VFromWord7(randWord7(rng), wd))
		}
	}
	for k := 1; k < MaxK; k++ {
		var dst Word7V
		sentinel := FillWord7V(Rise7, LevelsMask(MaxWordWidth))
		dst = sentinel
		EvalGate7VInto(&dst, And, k, in)
		for wd := k; wd < MaxK; wd++ {
			if dst.Word7At(wd) != sentinel.Word7At(wd) {
				t.Fatalf("k=%d: word %d was written", k, wd)
			}
		}
		var full Word7V
		EvalGate7VInto(&full, And, MaxK, in)
		for wd := 0; wd < k; wd++ {
			if dst.Word7At(wd) != full.Word7At(wd) {
				t.Fatalf("k=%d: word %d differs from full evaluation", k, wd)
			}
		}
	}
}
