// Package bench provides the benchmark circuits used by the experiments:
// a few small embedded reference circuits (the ISCAS85 c17 netlist, a
// reconstruction of the paper's running example, parametric adders, parity
// and multiplexer trees) and deterministic synthetic generators that
// approximate the structural profile of the ISCAS85 and ISCAS89 benchmark
// suites referenced by the paper.
//
// The original ISCAS netlists are not distributed with this repository; the
// synthetic circuits substitute for them (see DESIGN.md).  A .bench parser is
// available in the circuit package, so the real netlists can be used
// unchanged when they are available.
package bench

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// C17 returns the ISCAS85 c17 benchmark, the only original ISCAS netlist
// small enough to embed verbatim.
func C17() *circuit.Circuit {
	b := circuit.NewBuilder("c17")
	g1 := b.Input("1")
	g2 := b.Input("2")
	g3 := b.Input("3")
	g6 := b.Input("6")
	g7 := b.Input("7")
	g10 := b.Gate("10", logic.Nand, g1, g3)
	g11 := b.Gate("11", logic.Nand, g3, g6)
	g16 := b.Gate("16", logic.Nand, g2, g11)
	g19 := b.Gate("19", logic.Nand, g11, g7)
	g22 := b.Gate("22", logic.Nand, g10, g16)
	g23 := b.Gate("23", logic.Nand, g16, g19)
	b.Output(g22)
	b.Output(g23)
	return mustBuild(b)
}

// PaperExample returns a reconstruction of the example circuit of Figures 1
// and 2 of the paper.  The exact netlist is not given in the paper; this
// circuit reproduces the signal names and the path structure used in the
// figures (paths a-p-x, b-p-x, b-q-s-x, c-r-s-x and c-r-s-y all exist), so
// the FPTPG and APTPG walk-throughs of Section 3 can be exercised on it.
func PaperExample() *circuit.Circuit {
	b := circuit.NewBuilder("paper-example")
	a := b.Input("a")
	bb := b.Input("b")
	c := b.Input("c")
	d := b.Input("d")
	e := b.Input("e")
	p := b.Gate("p", logic.And, a, bb)
	q := b.Gate("q", logic.Nand, bb, c)
	r := b.Gate("r", logic.Nand, c, d)
	s := b.Gate("s", logic.Nand, q, r)
	t := b.Gate("t", logic.And, d, e)
	x := b.Gate("x", logic.Or, p, s)
	y := b.Gate("y", logic.Nor, s, t)
	b.Output(x)
	b.Output(y)
	return mustBuild(b)
}

// Adder returns an n-bit ripple-carry adder with inputs a0..a(n-1),
// b0..b(n-1) and cin, and outputs s0..s(n-1) and cout.  Ripple-carry adders
// have long, well-understood critical paths and are a natural path delay
// fault target.
func Adder(n int) *circuit.Circuit {
	if n < 1 {
		n = 1
	}
	b := circuit.NewBuilder(fmt.Sprintf("adder%d", n))
	as := make([]circuit.NetID, n)
	bs := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		axb := b.Gate(fmt.Sprintf("axb%d", i), logic.Xor, as[i], bs[i])
		sum := b.Gate(fmt.Sprintf("s%d", i), logic.Xor, axb, carry)
		and1 := b.Gate(fmt.Sprintf("g%d", i), logic.And, as[i], bs[i])
		and2 := b.Gate(fmt.Sprintf("pg%d", i), logic.And, axb, carry)
		carry = b.Gate(fmt.Sprintf("c%d", i+1), logic.Or, and1, and2)
		b.Output(sum)
	}
	b.Output(carry)
	return mustBuild(b)
}

// ParityTree returns an n-input XOR tree computing the parity of its inputs.
// Every input-to-output connection is a distinct structural path and every
// path is robustly testable, which makes the circuit a convenient sanity
// check for the generator.
func ParityTree(n int) *circuit.Circuit {
	if n < 2 {
		n = 2
	}
	b := circuit.NewBuilder(fmt.Sprintf("parity%d", n))
	level := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		level[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	stage := 0
	for len(level) > 1 {
		var next []circuit.NetID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Gate(fmt.Sprintf("x%d_%d", stage, i/2), logic.Xor, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		stage++
	}
	b.Output(level[0])
	return mustBuild(b)
}

// MuxTree returns a 2^depth-to-1 multiplexer tree built from AND/OR/NOT
// gates, with data inputs d0..d(2^depth-1) and select inputs s0..s(depth-1).
// Multiplexer trees have heavy reconvergent fan-out on the select lines and
// contain many nonrobustly-but-not-robustly testable paths.
func MuxTree(depth int) *circuit.Circuit {
	if depth < 1 {
		depth = 1
	}
	b := circuit.NewBuilder(fmt.Sprintf("mux%d", depth))
	n := 1 << uint(depth)
	data := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		data[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	sels := make([]circuit.NetID, depth)
	selInv := make([]circuit.NetID, depth)
	for i := 0; i < depth; i++ {
		sels[i] = b.Input(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < depth; i++ {
		selInv[i] = b.Gate(fmt.Sprintf("ns%d", i), logic.Not, sels[i])
	}
	level := data
	for stage := 0; stage < depth; stage++ {
		var next []circuit.NetID
		for i := 0; i+1 < len(level); i += 2 {
			lo := b.Gate(fmt.Sprintf("lo%d_%d", stage, i/2), logic.And, level[i], selInv[stage])
			hi := b.Gate(fmt.Sprintf("hi%d_%d", stage, i/2), logic.And, level[i+1], sels[stage])
			next = append(next, b.Gate(fmt.Sprintf("m%d_%d", stage, i/2), logic.Or, lo, hi))
		}
		level = next
	}
	b.Output(level[0])
	return mustBuild(b)
}

// Comparator returns an n-bit equality comparator: output eq is 1 iff
// a == b.  It mixes XNOR gates with a wide AND-reduction tree.
func Comparator(n int) *circuit.Circuit {
	if n < 1 {
		n = 1
	}
	b := circuit.NewBuilder(fmt.Sprintf("cmp%d", n))
	bits := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		a := b.Input(fmt.Sprintf("a%d", i))
		bi := b.Input(fmt.Sprintf("b%d", i))
		bits[i] = b.Gate(fmt.Sprintf("eq%d", i), logic.Xnor, a, bi)
	}
	for len(bits) > 1 {
		var next []circuit.NetID
		for i := 0; i+1 < len(bits); i += 2 {
			next = append(next, b.Gate(fmt.Sprintf("and%d_%d", len(bits), i/2), logic.And, bits[i], bits[i+1]))
		}
		if len(bits)%2 == 1 {
			next = append(next, bits[len(bits)-1])
		}
		bits = next
	}
	b.Output(bits[0])
	return mustBuild(b)
}

// RedundantExample returns a small circuit that contains structurally
// present but robustly unsensitizable (redundant) paths, used to exercise
// redundancy identification.  Gate "g2" computes AND(a, NOT(a), b) folded
// through two gates, so every path through "g2" is robustly redundant (some
// remain nonrobustly testable through static hazards on g2).
func RedundantExample() *circuit.Circuit {
	b := circuit.NewBuilder("redundant-example")
	a := b.Input("a")
	bb := b.Input("b")
	c := b.Input("c")
	na := b.Gate("na", logic.Not, a)
	g1 := b.Gate("g1", logic.And, a, bb)
	g2 := b.Gate("g2", logic.And, na, g1) // a AND NOT a AND b == 0
	z := b.Gate("z", logic.Or, g2, c)
	b.Output(z)
	return mustBuild(b)
}

func mustBuild(b *circuit.Builder) *circuit.Circuit {
	c, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("bench: building embedded circuit: %v", err))
	}
	return c
}
