package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// iscas85Profiles approximate the published structural characteristics of
// the ISCAS85 circuits evaluated in Tables 3 and 4 of the paper.
var iscas85Profiles = []Profile{
	{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, Depth: 17, Seed: 432, InputFaninBias: 0.45, WideFaninFraction: 0.20, InverterFraction: 0.25},
	{Name: "c499", Inputs: 41, Outputs: 32, Gates: 202, Depth: 11, Seed: 499, InputFaninBias: 0.40, WideFaninFraction: 0.25, InverterFraction: 0.20},
	{Name: "c880", Inputs: 60, Outputs: 26, Gates: 383, Depth: 24, Seed: 880, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "c1355", Inputs: 41, Outputs: 32, Gates: 546, Depth: 24, Seed: 1355, InputFaninBias: 0.40, WideFaninFraction: 0.15, InverterFraction: 0.20},
	{Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880, Depth: 40, Seed: 1908, InputFaninBias: 0.45, WideFaninFraction: 0.10, InverterFraction: 0.30},
	{Name: "c2670", Inputs: 233, Outputs: 140, Gates: 1193, Depth: 32, Seed: 2670, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669, Depth: 47, Seed: 3540, InputFaninBias: 0.45, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307, Depth: 49, Seed: 5315, InputFaninBias: 0.50, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2406, Depth: 124, Seed: 6288, InputFaninBias: 0.10, WideFaninFraction: 0.05, InverterFraction: 0.15},
	{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512, Depth: 43, Seed: 7552, InputFaninBias: 0.50, WideFaninFraction: 0.15, InverterFraction: 0.25},
}

// iscas89Profiles approximate the combinational parts of the ISCAS89
// circuits evaluated in Tables 5 through 8 of the paper.  The input and
// output counts include the pseudo primary inputs/outputs introduced by
// removing the flip-flops.
var iscas89Profiles = []Profile{
	{Name: "s641", Inputs: 54, Outputs: 42, Gates: 379, Depth: 23, Seed: 641, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s713", Inputs: 54, Outputs: 42, Gates: 393, Depth: 26, Seed: 713, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s838", Inputs: 66, Outputs: 33, Gates: 446, Depth: 22, Seed: 838, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s938", Inputs: 66, Outputs: 33, Gates: 446, Depth: 22, Seed: 938, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s991", Inputs: 84, Outputs: 36, Gates: 519, Depth: 28, Seed: 991, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s1196", Inputs: 32, Outputs: 31, Gates: 529, Depth: 24, Seed: 1196, Sequential: true, InputFaninBias: 0.50, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s1238", Inputs: 32, Outputs: 31, Gates: 508, Depth: 22, Seed: 1238, Sequential: true, InputFaninBias: 0.50, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s1269", Inputs: 55, Outputs: 47, Gates: 569, Depth: 26, Seed: 1269, Sequential: true, InputFaninBias: 0.50, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s1423", Inputs: 91, Outputs: 79, Gates: 657, Depth: 53, Seed: 1423, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.30},
	{Name: "s1494", Inputs: 14, Outputs: 25, Gates: 647, Depth: 17, Seed: 1494, Sequential: true, InputFaninBias: 0.45, WideFaninFraction: 0.20, InverterFraction: 0.25},
	{Name: "s3271", Inputs: 142, Outputs: 130, Gates: 1572, Depth: 28, Seed: 3271, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s5378", Inputs: 214, Outputs: 228, Gates: 2779, Depth: 25, Seed: 5378, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s9234", Inputs: 247, Outputs: 250, Gates: 5597, Depth: 38, Seed: 9234, Sequential: true, InputFaninBias: 0.55, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s13207", Inputs: 700, Outputs: 790, Gates: 7951, Depth: 38, Seed: 13207, Sequential: true, InputFaninBias: 0.60, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s15850", Inputs: 611, Outputs: 684, Gates: 9772, Depth: 48, Seed: 15850, Sequential: true, InputFaninBias: 0.60, WideFaninFraction: 0.15, InverterFraction: 0.25},
	{Name: "s38584", Inputs: 1464, Outputs: 1730, Gates: 19253, Depth: 40, Seed: 38584, Sequential: true, InputFaninBias: 0.60, WideFaninFraction: 0.15, InverterFraction: 0.25},
}

// ISCAS85Profiles returns the synthetic stand-ins for the ISCAS85 suite in
// the order used by Tables 3 and 4.
func ISCAS85Profiles() []Profile {
	return append([]Profile(nil), iscas85Profiles...)
}

// ISCAS89Profiles returns the synthetic stand-ins for the ISCAS89 suite.
func ISCAS89Profiles() []Profile {
	return append([]Profile(nil), iscas89Profiles...)
}

// Profiles returns every built-in profile.
func Profiles() []Profile {
	out := append([]Profile(nil), iscas85Profiles...)
	return append(out, iscas89Profiles...)
}

// ProfileByName looks up a built-in profile by circuit name (case
// insensitive).
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Profile{}, false
}

// Get returns a benchmark circuit by name.  Recognised names are:
//
//   - "c17", "paper", "redundant" — embedded reference circuits;
//   - "adderN", "parityN", "muxN", "cmpN" — parametric circuits, e.g.
//     "adder16";
//   - any built-in profile name ("c432" … "c7552", "s641" … "s38584") —
//     synthesized on demand.
func Get(name string) (*circuit.Circuit, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	switch lower {
	case "c17":
		return C17(), nil
	case "paper", "paper-example", "example":
		return PaperExample(), nil
	case "redundant", "redundant-example":
		return RedundantExample(), nil
	}
	if n, ok := parsePrefixed(lower, "adder"); ok {
		return Adder(n), nil
	}
	if n, ok := parsePrefixed(lower, "parity"); ok {
		return ParityTree(n), nil
	}
	if n, ok := parsePrefixed(lower, "mux"); ok {
		return MuxTree(n), nil
	}
	if n, ok := parsePrefixed(lower, "cmp"); ok {
		return Comparator(n), nil
	}
	if p, ok := ProfileByName(lower); ok {
		return Synthesize(p)
	}
	return nil, fmt.Errorf("bench: unknown circuit %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names lists every circuit name understood by Get, with parametric
// families shown with a default size.
func Names() []string {
	names := []string{"c17", "paper", "redundant", "adder8", "parity8", "mux3", "cmp8"}
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

func parsePrefixed(s, prefix string) (int, bool) {
	if !strings.HasPrefix(s, prefix) {
		return 0, false
	}
	rest := s[len(prefix):]
	if rest == "" {
		return 0, false
	}
	n := 0
	for _, r := range rest {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	if n <= 0 || n > 1<<20 {
		return 0, false
	}
	return n, true
}
