package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Profile describes the structural shape of a synthetic benchmark circuit.
// The profiles shipped with this package approximate the published
// characteristics (primary inputs, outputs, gate count, logic depth) of the
// ISCAS85 and ISCAS89 circuits used in the paper's evaluation.
type Profile struct {
	// Name of the circuit, e.g. "c432" or "s1423".
	Name string
	// Inputs is the number of primary inputs.  For ISCAS89 profiles it
	// already includes the pseudo primary inputs introduced by removing the
	// flip-flops, as the paper only considers the combinational part.
	Inputs int
	// Outputs is the number of primary (plus pseudo primary) outputs.
	Outputs int
	// Gates is the approximate number of logic gates.
	Gates int
	// Depth is the target logic depth.
	Depth int
	// Seed makes the construction deterministic.
	Seed int64
	// InputFaninBias is the probability that a non-first fanin of a gate is
	// taken directly from a primary input rather than from an internal net.
	// Higher values keep the structural path count moderate; the ISCAS
	// profiles use values between 0.35 and 0.6.
	InputFaninBias float64
	// WideFaninFraction is the fraction of gates that receive three or four
	// fanins instead of two.
	WideFaninFraction float64
	// InverterFraction is the fraction of gates that are single-input
	// inverters or buffers.
	InverterFraction float64
	// Sequential marks ISCAS89-style profiles (used only for reporting).
	Sequential bool
}

func (p Profile) String() string {
	return fmt.Sprintf("%s (%d in, %d out, %d gates, depth %d)", p.Name, p.Inputs, p.Outputs, p.Gates, p.Depth)
}

// Scaled returns a copy of the profile with the gate count, input count,
// output count and depth scaled by f (at least 1 each).  It is used by the
// quick variants of the experiments.
func (p Profile) Scaled(f float64) Profile {
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	q := p
	q.Name = fmt.Sprintf("%s@%.2g", p.Name, f)
	q.Inputs = scale(p.Inputs)
	if q.Inputs < 4 {
		q.Inputs = 4
	}
	q.Outputs = scale(p.Outputs)
	q.Gates = scale(p.Gates)
	if q.Gates < 8 {
		q.Gates = 8
	}
	q.Depth = scale(p.Depth)
	if q.Depth < 4 {
		q.Depth = 4
	}
	return q
}

// Synthesize constructs a deterministic pseudo-random combinational circuit
// matching the profile.  The construction places gates level by level; each
// gate draws its first fanin from the previous level (building long paths up
// to the target depth) and its remaining fanins either from primary inputs
// or from earlier levels, creating the reconvergent fan-out that makes path
// delay ATPG hard.  Dangling gates are collected into the primary outputs.
func Synthesize(p Profile) (*circuit.Circuit, error) {
	if p.Inputs < 2 {
		return nil, fmt.Errorf("bench: profile %q needs at least two inputs", p.Name)
	}
	if p.Gates < 1 {
		return nil, fmt.Errorf("bench: profile %q needs at least one gate", p.Name)
	}
	if p.Outputs < 1 {
		return nil, fmt.Errorf("bench: profile %q needs at least one output", p.Name)
	}
	depth := p.Depth
	if depth < 2 {
		depth = 2
	}
	if depth > p.Gates {
		depth = p.Gates
	}
	rng := rand.New(rand.NewSource(p.Seed))

	b := circuit.NewBuilder(p.Name)
	inputs := make([]circuit.NetID, p.Inputs)
	for i := range inputs {
		if p.Sequential && i >= p.Inputs/2 {
			inputs[i] = b.PseudoInput(fmt.Sprintf("pi%d", i))
		} else {
			inputs[i] = b.Input(fmt.Sprintf("pi%d", i))
		}
	}

	// Distribute gates over the levels: a mild pyramid with wider early
	// levels, narrowing toward the outputs, and at least one gate per level.
	perLevel := make([]int, depth)
	remaining := p.Gates
	for l := 0; l < depth; l++ {
		perLevel[l] = 1
		remaining--
	}
	for remaining > 0 {
		// Weight early and middle levels slightly higher.
		l := int(float64(depth) * rng.Float64() * rng.Float64())
		if l >= depth {
			l = depth - 1
		}
		perLevel[l]++
		remaining--
	}

	kinds := []logic.Kind{logic.Nand, logic.Nor, logic.And, logic.Or, logic.Nand, logic.Nand, logic.Xor}
	levels := make([][]circuit.NetID, depth+1)
	levels[0] = inputs
	var all []circuit.NetID
	all = append(all, inputs...)
	unusedInputs := append([]circuit.NetID(nil), inputs...)
	gateNum := 0

	pickEarlier := func(maxLevel int) circuit.NetID {
		// Pick from a level < maxLevel with a bias toward recent levels.
		for {
			l := maxLevel - 1 - int(float64(maxLevel)*rng.Float64()*rng.Float64())
			if l < 0 {
				l = 0
			}
			if len(levels[l]) > 0 {
				return levels[l][rng.Intn(len(levels[l]))]
			}
		}
	}

	for l := 1; l <= depth; l++ {
		count := perLevel[l-1]
		for g := 0; g < count; g++ {
			gateNum++
			name := fmt.Sprintf("g%d", gateNum)
			// Single-input gates.
			if rng.Float64() < p.InverterFraction {
				src := pickEarlier(l)
				kind := logic.Not
				if rng.Float64() < 0.3 {
					kind = logic.Buf
				}
				id := b.Gate(name, kind, src)
				levels[l] = append(levels[l], id)
				all = append(all, id)
				continue
			}
			nFanin := 2
			if rng.Float64() < p.WideFaninFraction {
				nFanin = 3 + rng.Intn(2)
			}
			fanin := make([]circuit.NetID, 0, nFanin)
			// First fanin: previous level when possible, to reach the target
			// depth.
			if len(levels[l-1]) > 0 {
				fanin = append(fanin, levels[l-1][rng.Intn(len(levels[l-1]))])
			} else {
				fanin = append(fanin, pickEarlier(l))
			}
			for attempts := 0; len(fanin) < nFanin; attempts++ {
				var cand circuit.NetID
				switch {
				case len(unusedInputs) > 0 && rng.Float64() < 0.5:
					// Consume inputs that have not been used yet so every
					// primary input drives some logic.
					cand = unusedInputs[len(unusedInputs)-1]
					unusedInputs = unusedInputs[:len(unusedInputs)-1]
				case rng.Float64() < p.InputFaninBias:
					cand = inputs[rng.Intn(len(inputs))]
				default:
					cand = pickEarlier(l)
				}
				dup := false
				for _, f := range fanin {
					if f == cand {
						dup = true
						break
					}
				}
				if !dup {
					fanin = append(fanin, cand)
					continue
				}
				if attempts > 20 {
					// Tiny circuits can run out of distinct candidates; fall
					// back to a linear scan for any net not already used.
					for _, id := range all {
						dup = false
						for _, f := range fanin {
							if f == id {
								dup = true
								break
							}
						}
						if !dup {
							fanin = append(fanin, id)
							break
						}
					}
					if len(fanin) < nFanin {
						nFanin = len(fanin) // give up on widening this gate
						if nFanin < 2 {
							fanin = append(fanin, fanin[0]) // degenerate 1-net circuit
							nFanin = 2
						}
					}
				}
			}
			kind := kinds[rng.Intn(len(kinds))]
			if kind == logic.Xor && rng.Float64() < 0.5 {
				kind = logic.Xnor
			}
			id := b.Gate(name, kind, fanin...)
			levels[l] = append(levels[l], id)
			all = append(all, id)
		}
	}
	if err := b.Err(); err != nil {
		return nil, err
	}

	// Primary outputs: start with the deepest gates until the requested
	// output count is reached; after the first build, any remaining gates
	// without fanout are promoted to outputs as well so no logic dangles.
	outs := make([]circuit.NetID, 0, p.Outputs)
	seen := make(map[circuit.NetID]bool)
	addOut := func(id circuit.NetID) {
		if !seen[id] {
			seen[id] = true
			outs = append(outs, id)
		}
	}
	for l := depth; l >= 1 && len(outs) < p.Outputs; l-- {
		for _, id := range levels[l] {
			if len(outs) >= p.Outputs {
				break
			}
			addOut(id)
		}
	}
	for _, id := range outs {
		if p.Sequential && rng.Float64() < 0.5 {
			b.PseudoOutput(id)
		} else {
			b.Output(id)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Any gate without fanout that is not an output would be dead logic and
	// would distort path counts; rebuild with those gates added as outputs.
	var dangling []circuit.NetID
	for _, g := range c.Gates() {
		if g.Kind == logic.Input {
			continue
		}
		if len(g.Fanout) == 0 && !g.IsOutput {
			dangling = append(dangling, g.ID)
		}
	}
	if len(dangling) == 0 {
		return c, nil
	}
	for _, id := range dangling {
		b.Output(id)
	}
	return b.Build()
}

// MustSynthesize is like Synthesize but panics on error; intended for use
// with the built-in profiles, which are known to be valid.
func MustSynthesize(p Profile) *circuit.Circuit {
	c, err := Synthesize(p)
	if err != nil {
		panic(fmt.Sprintf("bench: synthesizing %s: %v", p.Name, err))
	}
	return c
}
