package bench

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

func TestC17(t *testing.T) {
	c := C17()
	if c.NumGates() != 6 || len(c.Inputs()) != 5 || len(c.Outputs()) != 2 {
		t.Errorf("c17 has wrong shape: %s", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPaperExample(t *testing.T) {
	c := PaperExample()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The nets named in Figures 1 and 2 must all exist.
	for _, name := range []string{"a", "b", "c", "d", "e", "p", "q", "r", "s", "t", "x", "y"} {
		if c.NetByName(name) == circuit.InvalidNet {
			t.Errorf("net %q missing from the paper example", name)
		}
	}
	// The paths used in the figures must exist structurally: each listed
	// pair must be connected by an edge.
	edges := [][2]string{{"a", "p"}, {"b", "p"}, {"p", "x"}, {"b", "q"}, {"q", "s"}, {"s", "x"}, {"c", "r"}, {"r", "s"}, {"s", "y"}}
	for _, e := range edges {
		from := c.NetByName(e[0])
		to := c.NetByName(e[1])
		found := false
		for _, f := range c.Gate(to).Fanin {
			if f == from {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("edge %s -> %s missing from the paper example", e[0], e[1])
		}
	}
	if len(c.Outputs()) != 2 {
		t.Errorf("paper example should have outputs x and y, got %d outputs", len(c.Outputs()))
	}
}

func TestParametricCircuits(t *testing.T) {
	cases := []struct {
		c         *circuit.Circuit
		inputs    int
		outputs   int
		minGates  int
		wantDepth int // 0 = don't check
	}{
		{Adder(8), 17, 9, 8 * 5, 0},
		{Adder(1), 3, 2, 5, 0},
		{ParityTree(8), 8, 1, 7, 3},
		{ParityTree(9), 9, 1, 8, 4},
		{MuxTree(3), 11, 1, 3 + 3*7, 0},
		{Comparator(8), 16, 1, 8 + 7, 0},
		{RedundantExample(), 3, 1, 4, 0},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", tc.c.Name, err)
			continue
		}
		if got := len(tc.c.Inputs()); got != tc.inputs {
			t.Errorf("%s: inputs = %d, want %d", tc.c.Name, got, tc.inputs)
		}
		if got := len(tc.c.Outputs()); got != tc.outputs {
			t.Errorf("%s: outputs = %d, want %d", tc.c.Name, got, tc.outputs)
		}
		if got := tc.c.NumGates(); got < tc.minGates {
			t.Errorf("%s: gates = %d, want at least %d", tc.c.Name, got, tc.minGates)
		}
		if tc.wantDepth != 0 && tc.c.MaxLevel() != tc.wantDepth {
			t.Errorf("%s: depth = %d, want %d", tc.c.Name, tc.c.MaxLevel(), tc.wantDepth)
		}
	}
}

func TestParametricClamping(t *testing.T) {
	// Degenerate sizes are clamped rather than rejected.
	for _, c := range []*circuit.Circuit{Adder(0), ParityTree(1), MuxTree(0), Comparator(0)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", c.Name, err)
		}
	}
}

func TestSynthesizeSmallProfile(t *testing.T) {
	p := Profile{Name: "tiny", Inputs: 6, Outputs: 3, Gates: 30, Depth: 6, Seed: 1,
		InputFaninBias: 0.4, WideFaninFraction: 0.2, InverterFraction: 0.2}
	c, err := Synthesize(p)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(c.Inputs()) != 6 {
		t.Errorf("inputs = %d, want 6", len(c.Inputs()))
	}
	if c.NumGates() != 30 {
		t.Errorf("gates = %d, want 30", c.NumGates())
	}
	if len(c.Outputs()) < 3 {
		t.Errorf("outputs = %d, want at least 3", len(c.Outputs()))
	}
	// No dangling logic: every non-output gate has fanout.
	for _, g := range c.Gates() {
		if g.Kind == logic.Input {
			continue
		}
		if !g.IsOutput && len(g.Fanout) == 0 {
			t.Errorf("gate %s dangles", g.Name)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, ok := ProfileByName("c432")
	if !ok {
		t.Fatal("profile c432 missing")
	}
	a := MustSynthesize(p)
	b := MustSynthesize(p)
	if circuit.BenchString(a) != circuit.BenchString(b) {
		t.Error("synthesis is not deterministic for the same profile")
	}
	// A different seed must give a different circuit.
	p2 := p
	p2.Seed++
	c := MustSynthesize(p2)
	if circuit.BenchString(a) == circuit.BenchString(c) {
		t.Error("different seeds should give different circuits")
	}
}

func TestSynthesizeProfilesMatchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizing all profiles is slow in -short mode")
	}
	for _, p := range Profiles() {
		if p.Gates > 6000 {
			continue // keep the unit test fast; the large ones are exercised by benches
		}
		c, err := Synthesize(p)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", p.Name, err)
		}
		if got := len(c.Inputs()); got != p.Inputs {
			t.Errorf("%s: inputs = %d, want %d", p.Name, got, p.Inputs)
		}
		if got := c.NumGates(); got != p.Gates {
			t.Errorf("%s: gates = %d, want %d", p.Name, got, p.Gates)
		}
		if got := c.MaxLevel(); got < p.Depth/2 {
			t.Errorf("%s: depth = %d, much shallower than target %d", p.Name, got, p.Depth)
		}
		if got := len(c.Outputs()); got < p.Outputs {
			t.Errorf("%s: outputs = %d, want at least %d", p.Name, got, p.Outputs)
		}
	}
}

func TestProfileScaled(t *testing.T) {
	p, _ := ProfileByName("c880")
	q := p.Scaled(0.1)
	if q.Gates >= p.Gates || q.Gates < 8 {
		t.Errorf("scaled gate count %d out of range", q.Gates)
	}
	if q.Inputs < 4 || q.Depth < 4 {
		t.Errorf("scaled profile too small: %+v", q)
	}
	c, err := Synthesize(q)
	if err != nil {
		t.Fatalf("Synthesize scaled: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGetRegistry(t *testing.T) {
	names := []string{"c17", "paper", "redundant", "adder4", "parity8", "mux2", "cmp4", "c432"}
	for _, n := range names {
		c, err := Get(n)
		if err != nil {
			t.Errorf("Get(%q): %v", n, err)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Get(%q): Validate: %v", n, err)
		}
	}
	if _, err := Get("bogus999"); err == nil {
		t.Error("Get of unknown circuit should fail")
	}
	if _, err := Get("adder"); err == nil {
		t.Error("Get(\"adder\") without a size should fail")
	}
	if len(Names()) < 20 {
		t.Errorf("Names() lists only %d circuits", len(Names()))
	}
}

func TestSynthesizeRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "noinputs", Inputs: 1, Outputs: 1, Gates: 10, Depth: 3},
		{Name: "nogates", Inputs: 4, Outputs: 1, Gates: 0, Depth: 3},
		{Name: "noout", Inputs: 4, Outputs: 0, Gates: 10, Depth: 3},
	}
	for _, p := range bad {
		if _, err := Synthesize(p); err == nil {
			t.Errorf("profile %q should be rejected", p.Name)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	if _, ok := ProfileByName("C432"); !ok {
		t.Error("profile lookup should be case insensitive")
	}
	if _, ok := ProfileByName("does-not-exist"); ok {
		t.Error("unknown profile should not be found")
	}
	if len(ISCAS85Profiles()) != 10 {
		t.Errorf("ISCAS85Profiles = %d entries, want 10", len(ISCAS85Profiles()))
	}
	if len(ISCAS89Profiles()) != 16 {
		t.Errorf("ISCAS89Profiles = %d entries, want 16", len(ISCAS89Profiles()))
	}
}
