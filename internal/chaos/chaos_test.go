package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"repro/internal/retry"
)

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,drop=0.1,sever=0.05,delay=20ms,delayp=0.2,unavail=0.02,retry-after=2s,tear=0.1,storm-after=200,storm-skew=2m")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, Drop: 0.1, Sever: 0.05, Delay: 20 * time.Millisecond, DelayP: 0.2,
		Unavail: 0.02, RetryAfter: 2 * time.Second, Tear: 0.1, StormAfter: 200, StormSkew: 2 * time.Minute,
	}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse("  "); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "frobnicate=1", "delay=fast", "seed=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

// TestTransportDeterminism: the same seed produces the same per-request
// fault schedule against the same request sequence.
func TestTransportDeterminism(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("x"), 512))
	}))
	defer srv.Close()

	run := func() []string {
		in := New(Config{Seed: 42, Drop: 0.3, Sever: 0.3})
		hc := &http.Client{Transport: in.Transport(nil)}
		var fates []string
		for i := 0; i < 40; i++ {
			resp, err := hc.Get(srv.URL)
			switch {
			case err != nil:
				fates = append(fates, "drop")
			default:
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					fates = append(fates, "sever")
				} else {
					fates = append(fates, "ok")
				}
			}
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fate %q vs %q under the same seed", i, a[i], b[i])
		}
	}
	drops, severs := 0, 0
	for _, f := range a {
		switch f {
		case "drop":
			drops++
		case "sever":
			severs++
		}
	}
	if drops == 0 || severs == 0 {
		t.Fatalf("seed 42 injected %d drops, %d severs over 40 requests; schedule looks dead", drops, severs)
	}
}

// TestTransportFaultShapes: each injected fault carries the error shape the
// retry layer classifies as intended.
func TestTransportFaultShapes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("y"), 4096))
	}))
	defer srv.Close()

	t.Run("drop is connection-refused shaped", func(t *testing.T) {
		in := New(Config{Seed: 1, Drop: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		_, err := hc.Get(srv.URL)
		if err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("dropped request error = %v, want ECONNREFUSED in the chain", err)
		}
		if retry.ClassifyStrict(errors.Unwrap(err)) != retry.Transient {
			// http.Client wraps in *url.Error; the underlying OpError must be
			// strictly retryable (the request never went out).
			t.Fatal("drop not strictly transient")
		}
	})
	t.Run("sever truncates the body", func(t *testing.T) {
		in := New(Config{Seed: 1, Sever: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		n, rerr := io.ReadAll(resp.Body)
		if rerr == nil || !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("severed body read %d bytes, err %v, want ErrUnexpectedEOF", len(n), rerr)
		}
		if retry.Classify(rerr) != retry.Transient {
			t.Fatal("severed body not transient")
		}
	})
	t.Run("unavail is a retryable 503 with a hint", func(t *testing.T) {
		in := New(Config{Seed: 1, Unavail: 1, RetryAfter: 2 * time.Second})
		hc := &http.Client{Transport: in.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
		}
		if retry.ClassifyHTTP(resp.StatusCode) != retry.Transient {
			t.Fatal("503 not transient")
		}
	})
	t.Run("stats count what fired", func(t *testing.T) {
		in := New(Config{Seed: 1, Drop: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		for i := 0; i < 3; i++ {
			_, _ = hc.Get(srv.URL)
		}
		st := in.Stats()
		if st.Requests != 3 || st.Dropped != 3 {
			t.Fatalf("stats %+v, want 3 requests all dropped", st)
		}
	})
}

// TestClockStorm: the clock reads real time until the configured read, then
// jumps forward exactly once and stays skewed.
func TestClockStorm(t *testing.T) {
	in := New(Config{Seed: 1, StormAfter: 3, StormSkew: time.Hour})
	clock := in.Clock()
	base := time.Now()
	for i := 0; i < 2; i++ {
		if d := clock().Sub(base); d > time.Minute {
			t.Fatalf("read %d skewed by %v before the storm", i, d)
		}
	}
	if d := clock().Sub(base); d < 59*time.Minute {
		t.Fatalf("storm read skewed only %v, want ~1h", d)
	}
	if d := clock().Sub(base); d < 59*time.Minute {
		t.Fatalf("post-storm read lost the skew: %v", d)
	}
	if st := in.Stats(); st.Storms != 1 {
		t.Fatalf("storms = %d, want exactly 1", st.Storms)
	}
	if nil2 := (*Injector)(nil); nil2.Clock()().IsZero() {
		t.Fatal("nil injector clock returned the zero time")
	}
}

// TestTearWrite: torn writes are strictly short, reported as ErrTorn, and
// deterministic under a seed; a nil injector passes writes through.
func TestTearWrite(t *testing.T) {
	rec := []byte(`{"t":"unit","unit":3}` + "\n")
	run := func() (string, int) {
		in := New(Config{Seed: 9, Tear: 0.5})
		var buf bytes.Buffer
		torn := 0
		for i := 0; i < 20; i++ {
			n, err := in.TearWrite(&buf, rec)
			if errors.Is(err, ErrTorn) {
				torn++
				if n >= len(rec) {
					t.Fatalf("torn write delivered %d of %d bytes (not short)", n, len(rec))
				}
			} else if err != nil || n != len(rec) {
				t.Fatalf("clean write: n=%d err=%v", n, err)
			}
		}
		return buf.String(), torn
	}
	a, tornA := run()
	b, tornB := run()
	if a != b || tornA != tornB {
		t.Fatal("tear schedule not deterministic under the same seed")
	}
	if tornA == 0 || tornA == 20 {
		t.Fatalf("torn %d of 20 writes at p=0.5; schedule looks dead", tornA)
	}
	var buf bytes.Buffer
	if n, err := (*Injector)(nil).TearWrite(&buf, rec); err != nil || n != len(rec) {
		t.Fatalf("nil injector write: n=%d err=%v", n, err)
	}
}
