// Package chaos is the repo's deterministic fault-injection harness: a
// seeded failpoint framework that injects the failures the resilience layer
// (internal/retry, the reconnecting service client, the ledger) claims to
// survive, so those claims are tested instead of assumed.
//
// Three failpoint sites cover the service's failure surface:
//
//   - the client transport (Transport): requests dropped before they are
//     sent, responses severed mid-body, added latency, and synthetic 503s
//     with a Retry-After hint;
//   - ledger appends (TearWrite): short writes modelling a crash mid-append,
//     leaving the torn tail the loader must skip;
//   - the lease clock (Clock): a one-shot forward skew after a configured
//     number of reads — every outstanding lease expires at once, the
//     "expiry storm" a stalled coordinator unleashes on recovery.
//
// All randomness flows from one seed through per-site generators, so a
// single-threaded test replays a failure schedule exactly; under
// concurrency the per-site draw sequence is still fixed — only which caller
// receives which draw varies with goroutine interleaving.  An Injector is
// wired into atpgd behind -chaos and is usable directly from tests; a nil
// *Injector is valid everywhere and injects nothing.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrTorn marks a ledger write the injector cut short.
var ErrTorn = fmt.Errorf("chaos: torn write")

// Config selects which faults to inject and how often.  Probabilities are
// in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every injection decision; the same seed replays the same
	// per-site schedule.  0 picks an arbitrary seed.
	Seed int64
	// Drop is the probability a request fails before reaching the server
	// (connection-refused shape: provably never sent).
	Drop float64
	// Sever is the probability a response body is cut off mid-read after
	// the server has fully processed the request (the indeterminate case).
	Sever float64
	// DelayP is the probability a request is delayed by up to Delay.
	DelayP float64
	// Delay is the maximum injected latency.  Default 20ms when DelayP > 0.
	Delay time.Duration
	// Unavail is the probability of a synthetic 503 carrying RetryAfter.
	Unavail float64
	// RetryAfter is the hint on synthetic 503s (header granularity is
	// seconds; sub-second hints set no header).  Default 50ms.
	RetryAfter time.Duration
	// Tear is the probability a ledger append is written short.
	Tear float64
	// StormAfter, when positive, skews the clock forward by StormSkew after
	// that many reads — a one-shot lease-expiry storm.
	StormAfter int
	// StormSkew is the storm's forward jump.  Default 1m.
	StormSkew time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Seed == 0 {
		cfg.Seed = rand.Int63()
	}
	if cfg.Delay <= 0 && cfg.DelayP > 0 {
		cfg.Delay = 20 * time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.StormSkew <= 0 {
		cfg.StormSkew = time.Minute
	}
	return cfg
}

// Parse reads the -chaos flag syntax: comma-separated key=value pairs, e.g.
//
//	seed=7,drop=0.1,sever=0.05,delay=20ms,delayp=0.2,unavail=0.02,
//	tear=0.1,storm-after=200,storm-skew=2m
//
// Unknown keys are errors, so a typo does not silently disable a fault.
func Parse(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.Drop, err = parseProb(val)
		case "sever":
			cfg.Sever, err = parseProb(val)
		case "delayp":
			cfg.DelayP, err = parseProb(val)
		case "delay":
			cfg.Delay, err = time.ParseDuration(val)
		case "unavail":
			cfg.Unavail, err = parseProb(val)
		case "retry-after":
			cfg.RetryAfter, err = time.ParseDuration(val)
		case "tear":
			cfg.Tear, err = parseProb(val)
		case "storm-after":
			cfg.StormAfter, err = strconv.Atoi(val)
		case "storm-skew":
			cfg.StormSkew, err = time.ParseDuration(val)
		default:
			return cfg, fmt.Errorf("chaos: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: %s=%s: %w", key, val, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// Stats counts what the injector actually did — chaos tests assert on these
// so a mis-wired failpoint cannot silently pass as "survived".
type Stats struct {
	Requests int64 // transport round trips seen
	Dropped  int64 // requests failed before send
	Severed  int64 // response bodies cut short
	Delayed  int64 // requests latency-injected
	Unavail  int64 // synthetic 503s
	Torn     int64 // ledger writes cut short
	Storms   int64 // clock storms fired
}

// Injector injects the configured faults.  A nil *Injector injects nothing
// and is safe to call, so callers thread it through without nil checks.
type Injector struct {
	cfg Config

	transportMu  sync.Mutex
	transportRNG *rand.Rand
	ledgerMu     sync.Mutex
	ledgerRNG    *rand.Rand

	clockReads atomic.Int64
	skewNS     atomic.Int64

	requests, dropped, severed, delayed, unavail, torn, storms atomic.Int64
}

// New builds an injector.  Per-site generators are derived from the seed,
// so transport faults and ledger tears draw independent, reproducible
// schedules.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:          cfg,
		transportRNG: rand.New(rand.NewSource(cfg.Seed)),
		ledgerRNG:    rand.New(rand.NewSource(cfg.Seed ^ 0x6c65646765725f5f)), // "ledger__"
	}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Requests: in.requests.Load(),
		Dropped:  in.dropped.Load(),
		Severed:  in.severed.Load(),
		Delayed:  in.delayed.Load(),
		Unavail:  in.unavail.Load(),
		Torn:     in.torn.Load(),
		Storms:   in.storms.Load(),
	}
}

// transportDraw is one request's pre-drawn fate: drawing the full tuple per
// request keeps the per-site draw count fixed regardless of which faults
// fire, so one decision never shifts the schedule of later ones.
type transportDraw struct {
	drop, sever, delayP, unavail float64
	delayFrac                    float64
	severAt                      int
}

func (in *Injector) drawTransport() transportDraw {
	in.transportMu.Lock()
	defer in.transportMu.Unlock()
	return transportDraw{
		drop:      in.transportRNG.Float64(),
		sever:     in.transportRNG.Float64(),
		delayP:    in.transportRNG.Float64(),
		unavail:   in.transportRNG.Float64(),
		delayFrac: in.transportRNG.Float64(),
		severAt:   in.transportRNG.Intn(256),
	}
}

// Transport wraps base (nil means http.DefaultTransport) with the
// configured request faults.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil {
		return base
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	in.requests.Add(1)
	d := in.drawTransport()
	if d.delayP < in.cfg.DelayP && in.cfg.Delay > 0 {
		in.delayed.Add(1)
		wait := time.Duration(d.delayFrac * float64(in.cfg.Delay))
		select {
		case <-time.After(wait):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.drop < in.cfg.Drop {
		in.dropped.Add(1)
		// Connection-refused shape: the request provably never went out, so
		// even strict (not-sent-only) retry policies may retry it.
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("chaos: injected drop: %w", syscall.ECONNREFUSED)}
	}
	if d.unavail < in.cfg.Unavail {
		in.unavail.Add(1)
		return in.synthetic503(req), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.sever < in.cfg.Sever {
		in.severed.Add(1)
		// The server processed the request; the client just never sees the
		// full answer — the indeterminate case at-least-once paths must absorb.
		resp.Body = &severedBody{rc: resp.Body, left: d.severAt}
	}
	return resp, nil
}

// synthetic503 is a coordinator-shaped overload response.
func (in *Injector) synthetic503(req *http.Request) *http.Response {
	h := make(http.Header)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	if secs := int(in.cfg.RetryAfter / time.Second); secs >= 1 {
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	return &http.Response{
		Status:     "503 Service Unavailable (chaos)",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader("chaos: injected unavailability\n")),
		ContentLength: -1,
		Request:       req,
	}
}

// severedBody yields at most left bytes, then fails like a reset connection.
type severedBody struct {
	rc   io.ReadCloser
	left int
}

func (s *severedBody) Read(p []byte) (int, error) {
	if s.left <= 0 {
		return 0, fmt.Errorf("chaos: response severed: %w", io.ErrUnexpectedEOF)
	}
	if len(p) > s.left {
		p = p[:s.left]
	}
	n, err := s.rc.Read(p)
	s.left -= n
	if err == io.EOF {
		return n, err // body ended inside the window: not severed after all
	}
	if err == nil && s.left <= 0 {
		err = fmt.Errorf("chaos: response severed: %w", io.ErrUnexpectedEOF)
	}
	return n, err
}

func (s *severedBody) Close() error { return s.rc.Close() }

// Clock returns a time source for the coordinator's lease bookkeeping:
// real time until StormAfter reads, then permanently skewed forward by
// StormSkew — at that instant every outstanding lease looks expired and the
// requeue sweep storms.  Without a configured storm it is time.Now.
func (in *Injector) Clock() func() time.Time {
	if in == nil {
		return time.Now
	}
	return func() time.Time {
		if in.cfg.StormAfter > 0 && in.clockReads.Add(1) == int64(in.cfg.StormAfter) {
			in.skewNS.Add(int64(in.cfg.StormSkew))
			in.storms.Add(1)
		}
		return time.Now().Add(time.Duration(in.skewNS.Load()))
	}
}

// TearWrite writes p to w, possibly cut short: a torn write models the
// crash-mid-append tail a ledger loader must tolerate.  It reports how many
// bytes reached w and ErrTorn when the write was cut.  With a nil injector
// (or no tear probability) it is a plain w.Write.
func (in *Injector) TearWrite(w io.Writer, p []byte) (int, error) {
	if in == nil || in.cfg.Tear <= 0 {
		return w.Write(p)
	}
	in.ledgerMu.Lock()
	tear := in.ledgerRNG.Float64() < in.cfg.Tear
	cut := 0
	if tear && len(p) > 0 {
		cut = in.ledgerRNG.Intn(len(p))
	}
	in.ledgerMu.Unlock()
	if !tear {
		return w.Write(p)
	}
	in.torn.Add(1)
	n, err := w.Write(p[:cut])
	if err != nil {
		return n, err
	}
	return n, ErrTorn
}
