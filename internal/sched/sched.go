// Package sched owns fault dispatch for the generation engine: it cuts a
// run's target fault list into work units (word-parallel fault groups) and
// hands them out to N workers.
//
// Two policies are provided.  Static reproduces the classic contiguous
// pre-split: every worker receives one contiguous run of units up front and
// never looks at another worker's queue, so a worker whose shard happens to
// hold the hard faults finishes long after the others have gone idle.  Steal
// starts from the same contiguous split — preserving the locality that makes
// subpath pruning and interleaved simulation effective — but lets a worker
// whose own queue runs dry take queued units from the tail of the most
// loaded peer, so clustered hard faults are rebalanced instead of serialized
// on one worker.
//
// The scheduler only decides *which worker processes which unit*; result
// ordering is untouched.  Consumers write each fault's result into a slot
// keyed by the fault's original index and reassemble test sets in input
// order, so both policies produce the same deterministic, input-ordered
// merge (see internal/core and docs/ARCHITECTURE.md "Scheduling").
package sched

import (
	"fmt"
	"sync"
)

// Policy selects how work units are handed to workers.
type Policy uint8

const (
	// Static pre-splits the units into contiguous per-worker runs with no
	// rebalancing: the scheduler-internal equivalent of the old contiguous
	// fault-shard split.
	Static Policy = iota
	// Steal uses the same initial split but lets idle workers steal queued
	// units from the tail of the most loaded peer.
	Steal
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy parses "static" or "steal".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static":
		return Static, nil
	case "steal":
		return Steal, nil
	}
	return Static, fmt.Errorf("sched: unknown schedule %q (want static or steal)", s)
}

// Unit is one work unit: a group of fault indices (into the run's target
// fault slice) processed together as one word-parallel group.  The
// scheduler is pass-agnostic; the consumer carries the pass parameters
// (width, budget, finality) alongside the scheduler it drains.
type Unit struct {
	Faults []int

	// Cost is the predicted processing cost of the unit, in arbitrary
	// consumer-defined weight (the guided engine sums testability scores).
	// Load balances the contiguous split by Cost when any unit carries one;
	// zero-cost units fall back to their fault count, so unweighted loads
	// behave exactly as before.
	Cost int
}

// Stats aggregates the dispatch behavior of one or more scheduler loads.
type Stats struct {
	// Passes counts scheduler loads (1 per generation pass).
	Passes int
	// Units counts the work units dispatched.
	Units int
	// Steals counts units a worker took from another worker's queue; it
	// stays zero under the Static policy.
	Steals int
	// IdleUnits measures skew: every time a worker goes permanently idle,
	// the units still queued (not yet started) on the other workers are
	// added up.  Under Steal it is structurally zero — a worker only goes
	// idle when nothing is left to steal — while under Static it exposes
	// how much queued work the idle worker was barred from helping with.
	IdleUnits int
}

// Add accumulates the counters of another load into s.
func (s *Stats) Add(o Stats) {
	s.Passes += o.Passes
	s.Units += o.Units
	s.Steals += o.Steals
	s.IdleUnits += o.IdleUnits
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("passes=%d units=%d steals=%d idle-units=%d",
		s.Passes, s.Units, s.Steals, s.IdleUnits)
}

// Scheduler hands out the loaded units to workers.  Next is safe for
// concurrent use by the workers; Load is not (load between passes, with the
// workers quiesced).
type Scheduler struct {
	policy Policy

	mu     sync.Mutex
	queues [][]Unit // queues[w][heads[w]:] is worker w's pending FIFO
	heads  []int
	stats  Stats
}

// New creates a scheduler for the given number of workers.
func New(policy Policy, workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{
		policy: policy,
		queues: make([][]Unit, workers),
		heads:  make([]int, workers),
	}
}

// Workers returns the number of worker queues.
func (s *Scheduler) Workers() int { return len(s.queues) }

// Load distributes the units across the worker queues: contiguous runs of
// units, balanced by unit weight — the predicted Cost when the consumer set
// one, the fault count otherwise (so an unweighted load reproduces the old
// near-even contiguous fault sharding).  Cost-weighted splits spread a
// hardest-first ordered load so every worker's shard predicts roughly equal
// work, instead of equal fault counts with all the hard faults on worker 0.
// It resets any previous load; call it once per pass, with the workers
// quiesced.
func (s *Scheduler) Load(units []Unit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Passes++
	s.stats.Units += len(units)

	remWeight := 0
	for _, u := range units {
		remWeight += unitWeight(u)
	}
	i := 0
	for w := range s.queues {
		s.heads[w] = 0
		remWorkers := len(s.queues) - w
		take, weight := 0, 0
		for i+take < len(units) && weight*remWorkers < remWeight {
			weight += unitWeight(units[i+take])
			take++
		}
		s.queues[w] = units[i : i+take]
		i += take
		remWeight -= weight
	}
	// Weight-zero tails (empty units) cannot be reached by the balancing
	// loop; give them to the last worker so nothing is dropped.
	if i < len(units) {
		last := len(s.queues) - 1
		s.queues[last] = append(append([]Unit{}, s.queues[last]...), units[i:]...)
	}
}

// unitWeight is the balancing weight of a unit: its predicted cost, or its
// fault count while the consumer did not predict one.
func unitWeight(u Unit) int {
	if u.Cost > 0 {
		return u.Cost
	}
	return len(u.Faults)
}

// Next returns the next unit for the worker: the head of its own queue, or —
// under the Steal policy — the tail of the most loaded peer's queue.  It
// returns ok=false when no unit is available anywhere, which is final for
// the current load: the worker should exit.
//
//atpgvet:noalloc
func (s *Scheduler) Next(worker int) (Unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[worker]; s.heads[worker] < len(q) {
		u := q[s.heads[worker]]
		s.heads[worker]++
		return u, true
	}
	if s.policy == Steal {
		victim, best := -1, 0
		for v := range s.queues {
			if rem := len(s.queues[v]) - s.heads[v]; rem > best {
				best, victim = rem, v
			}
		}
		if victim >= 0 {
			q := s.queues[victim]
			u := q[len(q)-1]
			s.queues[victim] = q[:len(q)-1]
			s.stats.Steals++
			return u, true
		}
	}
	// The worker goes permanently idle; record how many queued units it
	// leaves behind on the other workers (the skew a static split exposes).
	for v := range s.queues {
		s.stats.IdleUnits += len(s.queues[v]) - s.heads[v]
	}
	return Unit{}, false
}

// Stats returns the counters accumulated so far.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Group cuts the fault indices into units of at most width faults each,
// preserving input order.  The unit slices alias the indices slice, which
// must not be mutated afterwards.
func Group(indices []int, width int) []Unit {
	if width < 1 {
		width = 1
	}
	units := make([]Unit, 0, (len(indices)+width-1)/width)
	for start := 0; start < len(indices); start += width {
		end := start + width
		if end > len(indices) {
			end = len(indices)
		}
		units = append(units, Unit{Faults: indices[start:end]})
	}
	return units
}
