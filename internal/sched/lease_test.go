package sched

import (
	"context"
	"testing"
	"time"
)

func leaseUnits(n int) []Unit {
	units := make([]Unit, n)
	for i := range units {
		units[i] = Unit{Faults: []int{i}}
	}
	return units
}

func TestLeaseQueueBasic(t *testing.T) {
	q := NewLeaseQueue(leaseUnits(5))
	now := time.Unix(0, 0)
	ttl := time.Minute

	got := q.Lease("w1", 3, ttl, now)
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("lease returned %v, want units 0..2 in FIFO order", got)
	}
	if rest := q.Lease("w2", 10, ttl, now); len(rest) != 2 {
		t.Fatalf("second lease returned %d units, want 2", len(rest))
	}
	if empty := q.Lease("w3", 1, ttl, now); len(empty) != 0 {
		t.Fatalf("lease on drained queue returned %v", empty)
	}
	for id := 0; id < 5; id++ {
		if !q.Complete(id) {
			t.Fatalf("first completion of %d reported duplicate", id)
		}
	}
	if q.Remaining() != 0 {
		t.Fatalf("remaining=%d after completing all", q.Remaining())
	}
	if err := q.Wait(context.Background()); err != nil {
		t.Fatalf("wait on complete queue: %v", err)
	}
	st := q.Stats()
	if st.Leases != 5 || st.Completed != 5 || st.Requeues != 0 || st.Duplicates != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLeaseQueueExpiryRequeues(t *testing.T) {
	q := NewLeaseQueue(leaseUnits(3))
	now := time.Unix(0, 0)
	ttl := time.Minute

	ghost := q.Lease("ghost", 2, ttl, now)
	if len(ghost) != 2 {
		t.Fatalf("ghost leased %d units", len(ghost))
	}
	// Before expiry nothing is leasable beyond the remaining unit.
	if got := q.Lease("w1", 5, ttl, now.Add(30*time.Second)); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("pre-expiry lease returned %v, want just unit 2", got)
	}
	q.Complete(2)
	// After expiry the ghost's units are requeued and leasable again.
	late := now.Add(2 * time.Minute)
	if n := q.Expire(late); n != 2 {
		t.Fatalf("expire requeued %d, want 2", n)
	}
	re := q.Lease("w1", 5, ttl, late)
	if len(re) != 2 {
		t.Fatalf("post-expiry lease returned %d units, want the 2 requeued", len(re))
	}
	for _, u := range re {
		if !q.Complete(u.ID) {
			t.Fatalf("completion of requeued %d reported duplicate", u.ID)
		}
	}
	// The ghost's results arrive after the requeue completed: duplicates.
	for _, u := range ghost {
		if q.Complete(u.ID) {
			t.Fatalf("late ghost completion of %d not flagged duplicate", u.ID)
		}
	}
	st := q.Stats()
	if st.Requeues != 2 || st.Duplicates != 2 || st.Completed != 3 {
		t.Fatalf("stats %+v, want 2 requeues, 2 duplicates, 3 completed", st)
	}
	if err := q.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseQueueLeaseExpiresStaleFirst(t *testing.T) {
	// Lease itself requeues expired units, so a died worker's units are
	// re-dispatched even without an Expire ticker.
	q := NewLeaseQueue(leaseUnits(2))
	now := time.Unix(0, 0)
	q.Lease("ghost", 2, time.Second, now)
	re := q.Lease("w1", 2, time.Minute, now.Add(time.Hour))
	if len(re) != 2 {
		t.Fatalf("lease after ghost expiry returned %d units, want 2", len(re))
	}
	if q.Stats().Requeues != 2 {
		t.Fatalf("requeues=%d, want 2", q.Stats().Requeues)
	}
}

func TestLeaseQueueCompleteWhileQueued(t *testing.T) {
	// A unit completed while sitting on the pending queue (late result beat
	// the requeue) must not be leased again.
	q := NewLeaseQueue(leaseUnits(2))
	now := time.Unix(0, 0)
	q.Lease("ghost", 1, time.Second, now)
	if n := q.Expire(now.Add(time.Minute)); n != 1 {
		t.Fatalf("expire requeued %d, want 1", n)
	}
	if !q.Complete(0) {
		t.Fatal("completion of requeued-but-pending unit rejected")
	}
	got := q.Lease("w1", 5, time.Minute, now.Add(time.Minute))
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("lease returned %v, want just unit 1 (unit 0 completed while queued)", got)
	}
}

func TestLeaseQueueEmptyAndWaitCancel(t *testing.T) {
	if err := NewLeaseQueue(nil).Wait(context.Background()); err != nil {
		t.Fatalf("empty queue wait: %v", err)
	}
	q := NewLeaseQueue(leaseUnits(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.Wait(ctx); err != context.Canceled {
		t.Fatalf("wait on canceled context: %v", err)
	}
	if q.Complete(-1) || q.Complete(7) {
		t.Fatal("out-of-range completion accepted")
	}
}

// TestLeaseQueuePreseedForReplay models ledger resume: completions recorded
// in the ledger are replayed onto a fresh queue before any worker leases,
// and only the remainder is dispatched.
func TestLeaseQueuePreseedForReplay(t *testing.T) {
	q := NewLeaseQueue(leaseUnits(4))
	for _, id := range []int{1, 3} {
		if !q.Complete(id) {
			t.Fatalf("replay completion of %d rejected", id)
		}
	}
	got := q.Lease("w1", 10, time.Minute, time.Unix(0, 0))
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("post-replay lease returned %v, want units 0 and 2", got)
	}
	if q.Remaining() != 2 {
		t.Fatalf("remaining=%d, want 2", q.Remaining())
	}
}
