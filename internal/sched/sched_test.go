package sched

import (
	"sync"
	"testing"
)

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGroup(t *testing.T) {
	units := Group(seq(10), 4)
	if len(units) != 3 {
		t.Fatalf("Group(10, 4) = %d units, want 3", len(units))
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for i, u := range units {
		if len(u.Faults) != len(want[i]) {
			t.Fatalf("unit %d = %v, want %v", i, u.Faults, want[i])
		}
		for j := range u.Faults {
			if u.Faults[j] != want[i][j] {
				t.Fatalf("unit %d = %v, want %v", i, u.Faults, want[i])
			}
		}
	}
	if got := Group(nil, 4); len(got) != 0 {
		t.Errorf("Group(nil) = %v, want empty", got)
	}
	if got := Group(seq(3), 0); len(got) != 3 {
		t.Errorf("Group with width 0 should clamp to 1, got %d units", len(got))
	}
}

// TestLoadBalancesFaultCount checks that the initial contiguous split is
// balanced by covered fault count, matching the old near-even fault-shard
// bounds when the units are singletons.
func TestLoadBalancesFaultCount(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
		wantSizes  []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{4, 4, []int{1, 1, 1, 1}},
		{7, 2, []int{4, 3}},
	} {
		s := New(Static, tc.workers)
		s.Load(Group(seq(tc.n), 1))
		for w := 0; w < tc.workers; w++ {
			if got := len(s.queues[w]); got != tc.wantSizes[w] {
				t.Errorf("n=%d workers=%d: worker %d got %d units, want %d",
					tc.n, tc.workers, w, got, tc.wantSizes[w])
			}
		}
		// Contiguity and completeness: draining worker queues in worker order
		// yields 0..n-1.
		next := 0
		for w := 0; w < tc.workers; w++ {
			for {
				u, ok := s.Next(w)
				if !ok {
					break
				}
				for _, f := range u.Faults {
					if f != next {
						t.Fatalf("n=%d workers=%d: fault %d dispatched out of order (want %d)", tc.n, tc.workers, f, next)
					}
					next++
				}
			}
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: drained %d faults", tc.n, tc.workers, next)
		}
	}
}

// TestStaticNeverSteals pins the static policy: a worker with an empty queue
// goes idle even while other queues still hold units, and the idle counter
// records the units it left behind.
func TestStaticNeverSteals(t *testing.T) {
	s := New(Static, 2)
	s.Load(Group(seq(8), 1))
	// Worker 1 drains only its own 4 units, then must go idle although
	// worker 0 still holds 4.
	for i := 0; i < 4; i++ {
		if _, ok := s.Next(1); !ok {
			t.Fatalf("worker 1 ran out after %d units", i)
		}
	}
	if _, ok := s.Next(1); ok {
		t.Fatal("static worker 1 got a unit from worker 0's queue")
	}
	st := s.Stats()
	if st.Steals != 0 {
		t.Errorf("static run recorded %d steals", st.Steals)
	}
	if st.IdleUnits != 4 {
		t.Errorf("idle units = %d, want 4 (worker 0's untouched queue)", st.IdleUnits)
	}
}

// TestStealRebalances pins the steal policy: an idle worker takes units from
// the tail of the most loaded peer, and nobody goes idle while queued work
// remains anywhere.
func TestStealRebalances(t *testing.T) {
	s := New(Steal, 2)
	s.Load(Group(seq(8), 1))
	// Worker 1 drains its own 4 units, then steals worker 0's entire queue
	// from the tail.
	got := 0
	for {
		u, ok := s.Next(1)
		if !ok {
			break
		}
		got += len(u.Faults)
	}
	if got != 8 {
		t.Fatalf("worker 1 processed %d faults, want all 8", got)
	}
	st := s.Stats()
	if st.Steals != 4 {
		t.Errorf("steals = %d, want 4", st.Steals)
	}
	if st.IdleUnits != 0 {
		t.Errorf("idle units = %d, want 0 under steal", st.IdleUnits)
	}
	// Worker 0 finds its queue emptied.
	if _, ok := s.Next(0); ok {
		t.Error("worker 0 got a unit after its queue was stolen empty")
	}
}

// TestConcurrentDrainIsComplete hammers Next from several goroutines: every
// unit must be dispatched exactly once under both policies.
func TestConcurrentDrainIsComplete(t *testing.T) {
	for _, policy := range []Policy{Static, Steal} {
		const workers, n = 4, 1000
		s := New(policy, workers)
		s.Load(Group(seq(n), 3))

		var mu sync.Mutex
		seen := make(map[int]int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					u, ok := s.Next(w)
					if !ok {
						return
					}
					mu.Lock()
					for _, f := range u.Faults {
						seen[f]++
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if len(seen) != n {
			t.Fatalf("%v: dispatched %d distinct faults, want %d", policy, len(seen), n)
		}
		for f, c := range seen {
			if c != 1 {
				t.Fatalf("%v: fault %d dispatched %d times", policy, f, c)
			}
		}
		if st := s.Stats(); st.Units != (n+2)/3 {
			t.Errorf("%v: units stat = %d, want %d", policy, st.Units, (n+2)/3)
		}
	}
}

// TestLoadBalancesCost checks the cost-weighted split: when units carry a
// predicted Cost, Load balances the contiguous runs by summed cost instead
// of fault count, so one expensive unit is a whole shard of its own.
func TestLoadBalancesCost(t *testing.T) {
	units := Group(seq(4), 1)
	units[0].Cost = 3
	units[1].Cost = 1
	units[2].Cost = 1
	units[3].Cost = 1
	s := New(Static, 2)
	s.Load(units)
	if got := len(s.queues[0]); got != 1 {
		t.Errorf("worker 0 got %d units, want 1 (the cost-3 unit alone)", got)
	}
	if got := len(s.queues[1]); got != 3 {
		t.Errorf("worker 1 got %d units, want 3", got)
	}
}

// simulateDrain drains a loaded scheduler with a deterministic discrete-event
// simulation: every worker owns a clock, the free worker with the lowest
// clock (lowest index on ties) takes its next unit and advances by the
// unit's true processing cost.  It returns the number of faults processed
// and the makespan (the last worker's finish time).
func simulateDrain(s *Scheduler, workers int, trueCost func(Unit) int) (drained, makespan int) {
	clocks := make([]int, workers)
	active := make([]bool, workers)
	for w := range active {
		active[w] = true
	}
	for {
		w := -1
		for i := 0; i < workers; i++ {
			if active[i] && (w < 0 || clocks[i] < clocks[w]) {
				w = i
			}
		}
		if w < 0 {
			break
		}
		u, ok := s.Next(w)
		if !ok {
			active[w] = false
			continue
		}
		drained += len(u.Faults)
		clocks[w] += trueCost(u)
	}
	for _, c := range clocks {
		if c > makespan {
			makespan = c
		}
	}
	return drained, makespan
}

// TestCostWeightedHardestFirstReducesIdleOnSkew is the sched-level mirror of
// the engine's TestWorkStealingBeatsStaticOnSkew, driven by counters instead
// of wall clock: a skewed workload whose hard faults cluster at the tail of
// the insertion order.  The unguided load (insertion order, count-balanced)
// hands one static worker the whole hard cluster; the guided load — the same
// units ordered hardest first and balanced by predicted Cost, exactly what
// the guided engine feeds the scheduler — must strictly reduce both the
// queued units left behind idle workers and the simulated makespan, without
// any stealing.
func TestCostWeightedHardestFirstReducesIdleOnSkew(t *testing.T) {
	const (
		workers  = 4
		nHard    = 8
		nEasy    = 24
		hardCost = 16
		easyCost = 1
	)
	// Fault indices >= nEasy are the hard cluster, sitting at the tail of
	// the insertion order.
	trueCost := func(u Unit) int {
		c := 0
		for _, f := range u.Faults {
			if f >= nEasy {
				c += hardCost
			} else {
				c += easyCost
			}
		}
		return c
	}
	run := func(units []Unit) (Stats, int) {
		s := New(Static, workers)
		s.Load(units)
		drained, makespan := simulateDrain(s, workers, trueCost)
		if drained != nHard+nEasy {
			t.Fatalf("drained %d faults, want %d", drained, nHard+nEasy)
		}
		return s.Stats(), makespan
	}

	baseline, baseSpan := run(Group(seq(nHard+nEasy), 1))

	// Hardest first with the true cost as the prediction.
	ordered := make([]int, 0, nHard+nEasy)
	for f := nEasy; f < nEasy+nHard; f++ {
		ordered = append(ordered, f)
	}
	for f := 0; f < nEasy; f++ {
		ordered = append(ordered, f)
	}
	units := Group(ordered, 1)
	for i := range units {
		units[i].Cost = trueCost(units[i])
	}
	guided, guidedSpan := run(units)

	t.Logf("baseline: %v makespan=%d; guided: %v makespan=%d", baseline, baseSpan, guided, guidedSpan)
	if baseline.IdleUnits == 0 {
		t.Fatal("insertion-order load shows no idle skew; the scenario is not exercising the imbalance")
	}
	if guided.IdleUnits >= baseline.IdleUnits {
		t.Errorf("cost-weighted hardest-first did not reduce idle units: guided=%d baseline=%d",
			guided.IdleUnits, baseline.IdleUnits)
	}
	if guidedSpan >= baseSpan {
		t.Errorf("cost-weighted hardest-first did not reduce the makespan: guided=%d baseline=%d",
			guidedSpan, baseSpan)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"static", Static, true},
		{"steal", Steal, true},
		{"wild", Static, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Static.String() != "static" || Steal.String() != "steal" {
		t.Error("Policy.String spelling changed")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Passes: 1, Units: 10, Steals: 2, IdleUnits: 3}
	a.Add(Stats{Passes: 1, Units: 5, Steals: 1, IdleUnits: 4})
	if a.Passes != 2 || a.Units != 15 || a.Steals != 3 || a.IdleUnits != 7 {
		t.Errorf("Stats.Add gave %+v", a)
	}
}
