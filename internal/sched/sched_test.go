package sched

import (
	"sync"
	"testing"
)

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGroup(t *testing.T) {
	units := Group(seq(10), 4)
	if len(units) != 3 {
		t.Fatalf("Group(10, 4) = %d units, want 3", len(units))
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for i, u := range units {
		if len(u.Faults) != len(want[i]) {
			t.Fatalf("unit %d = %v, want %v", i, u.Faults, want[i])
		}
		for j := range u.Faults {
			if u.Faults[j] != want[i][j] {
				t.Fatalf("unit %d = %v, want %v", i, u.Faults, want[i])
			}
		}
	}
	if got := Group(nil, 4); len(got) != 0 {
		t.Errorf("Group(nil) = %v, want empty", got)
	}
	if got := Group(seq(3), 0); len(got) != 3 {
		t.Errorf("Group with width 0 should clamp to 1, got %d units", len(got))
	}
}

// TestLoadBalancesFaultCount checks that the initial contiguous split is
// balanced by covered fault count, matching the old near-even fault-shard
// bounds when the units are singletons.
func TestLoadBalancesFaultCount(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
		wantSizes  []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{4, 4, []int{1, 1, 1, 1}},
		{7, 2, []int{4, 3}},
	} {
		s := New(Static, tc.workers)
		s.Load(Group(seq(tc.n), 1))
		for w := 0; w < tc.workers; w++ {
			if got := len(s.queues[w]); got != tc.wantSizes[w] {
				t.Errorf("n=%d workers=%d: worker %d got %d units, want %d",
					tc.n, tc.workers, w, got, tc.wantSizes[w])
			}
		}
		// Contiguity and completeness: draining worker queues in worker order
		// yields 0..n-1.
		next := 0
		for w := 0; w < tc.workers; w++ {
			for {
				u, ok := s.Next(w)
				if !ok {
					break
				}
				for _, f := range u.Faults {
					if f != next {
						t.Fatalf("n=%d workers=%d: fault %d dispatched out of order (want %d)", tc.n, tc.workers, f, next)
					}
					next++
				}
			}
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: drained %d faults", tc.n, tc.workers, next)
		}
	}
}

// TestStaticNeverSteals pins the static policy: a worker with an empty queue
// goes idle even while other queues still hold units, and the idle counter
// records the units it left behind.
func TestStaticNeverSteals(t *testing.T) {
	s := New(Static, 2)
	s.Load(Group(seq(8), 1))
	// Worker 1 drains only its own 4 units, then must go idle although
	// worker 0 still holds 4.
	for i := 0; i < 4; i++ {
		if _, ok := s.Next(1); !ok {
			t.Fatalf("worker 1 ran out after %d units", i)
		}
	}
	if _, ok := s.Next(1); ok {
		t.Fatal("static worker 1 got a unit from worker 0's queue")
	}
	st := s.Stats()
	if st.Steals != 0 {
		t.Errorf("static run recorded %d steals", st.Steals)
	}
	if st.IdleUnits != 4 {
		t.Errorf("idle units = %d, want 4 (worker 0's untouched queue)", st.IdleUnits)
	}
}

// TestStealRebalances pins the steal policy: an idle worker takes units from
// the tail of the most loaded peer, and nobody goes idle while queued work
// remains anywhere.
func TestStealRebalances(t *testing.T) {
	s := New(Steal, 2)
	s.Load(Group(seq(8), 1))
	// Worker 1 drains its own 4 units, then steals worker 0's entire queue
	// from the tail.
	got := 0
	for {
		u, ok := s.Next(1)
		if !ok {
			break
		}
		got += len(u.Faults)
	}
	if got != 8 {
		t.Fatalf("worker 1 processed %d faults, want all 8", got)
	}
	st := s.Stats()
	if st.Steals != 4 {
		t.Errorf("steals = %d, want 4", st.Steals)
	}
	if st.IdleUnits != 0 {
		t.Errorf("idle units = %d, want 0 under steal", st.IdleUnits)
	}
	// Worker 0 finds its queue emptied.
	if _, ok := s.Next(0); ok {
		t.Error("worker 0 got a unit after its queue was stolen empty")
	}
}

// TestConcurrentDrainIsComplete hammers Next from several goroutines: every
// unit must be dispatched exactly once under both policies.
func TestConcurrentDrainIsComplete(t *testing.T) {
	for _, policy := range []Policy{Static, Steal} {
		const workers, n = 4, 1000
		s := New(policy, workers)
		s.Load(Group(seq(n), 3))

		var mu sync.Mutex
		seen := make(map[int]int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					u, ok := s.Next(w)
					if !ok {
						return
					}
					mu.Lock()
					for _, f := range u.Faults {
						seen[f]++
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if len(seen) != n {
			t.Fatalf("%v: dispatched %d distinct faults, want %d", policy, len(seen), n)
		}
		for f, c := range seen {
			if c != 1 {
				t.Fatalf("%v: fault %d dispatched %d times", policy, f, c)
			}
		}
		if st := s.Stats(); st.Units != (n+2)/3 {
			t.Errorf("%v: units stat = %d, want %d", policy, st.Units, (n+2)/3)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"static", Static, true},
		{"steal", Steal, true},
		{"wild", Static, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Static.String() != "static" || Steal.String() != "steal" {
		t.Error("Policy.String spelling changed")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Passes: 1, Units: 10, Steals: 2, IdleUnits: 3}
	a.Add(Stats{Passes: 1, Units: 5, Steals: 1, IdleUnits: 4})
	if a.Passes != 2 || a.Units != 15 || a.Steals != 3 || a.IdleUnits != 7 {
		t.Errorf("Stats.Add gave %+v", a)
	}
}
