package sched

import (
	"context"
	"sync"
	"time"
)

// LeaseQueue dispatches the work units of one generation pass to remote
// workers under time-bounded leases: a worker leases a batch of units,
// processes them and completes each one; units whose lease expires (the
// worker died or stalled) are requeued and leased to someone else.  The
// queue is at-least-once — a requeued unit may end up processed twice, which
// the consumer must tolerate (the core's RemoteRun.Apply is first-write-wins
// per fault, so duplicates are no-ops there).
//
// Time is injected: Lease and Expire take the current time as a parameter,
// so tests drive expiry deterministically and the caller owns the clock.
// All methods are safe for concurrent use.
type LeaseQueue struct {
	mu      sync.Mutex
	units   []Unit
	pending []int // unit IDs awaiting dispatch, FIFO
	leased  map[int]lease
	done    []bool
	left    int // units not yet completed
	stats   LeaseStats

	// doneCh is closed when every unit has completed.
	doneCh chan struct{}
}

type lease struct {
	worker  string
	expires time.Time
}

// LeasedUnit is one unit handed to a worker: the stable unit ID it must
// complete, and the unit itself (the exact word-parallel fault group the
// pass pipeline cut — workers must process it whole, never regroup).
type LeasedUnit struct {
	ID   int
	Unit Unit
}

// LeaseStats summarizes the dispatch behavior of a queue.
type LeaseStats struct {
	// Leases counts units handed out, including re-leases after expiry.
	Leases int
	// Completed counts units completed (first completion only).
	Completed int
	// Requeues counts expired leases put back on the pending queue.
	Requeues int
	// Duplicates counts completions of already-completed units (the
	// at-least-once case: the original worker's result arrived after the
	// requeued unit completed elsewhere).
	Duplicates int
}

// NewLeaseQueue builds a queue over the units of one pass.  Unit IDs are the
// unit's index in the slice.  A queue over zero units is complete
// immediately.
func NewLeaseQueue(units []Unit) *LeaseQueue {
	q := &LeaseQueue{
		units:  units,
		leased: make(map[int]lease),
		done:   make([]bool, len(units)),
		left:   len(units),
		doneCh: make(chan struct{}),
	}
	q.pending = make([]int, len(units))
	for i := range units {
		q.pending[i] = i
	}
	if q.left == 0 {
		close(q.doneCh)
	}
	return q
}

// Lease hands out up to max units to the worker, each under a lease that
// expires at now+ttl.  Expired leases are requeued first, so a died worker's
// units are re-dispatched by the next Lease call even without an Expire
// ticker.  Units are handed out in FIFO order — the pass pipeline's
// hardest-first ordering crosses the wire intact.  An empty result means
// nothing is pending right now (everything is completed or leased out);
// the caller should back off and retry, or Wait.
func (q *LeaseQueue) Lease(worker string, max int, ttl time.Duration, now time.Time) []LeasedUnit {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(now)
	if max < 1 {
		max = 1
	}
	var out []LeasedUnit
	for len(out) < max && len(q.pending) > 0 {
		id := q.pending[0]
		q.pending = q.pending[1:]
		if q.done[id] {
			continue // completed while queued (late result beat the requeue)
		}
		q.leased[id] = lease{worker: worker, expires: now.Add(ttl)}
		q.stats.Leases++
		out = append(out, LeasedUnit{ID: id, Unit: q.units[id]})
	}
	return out
}

// Complete marks the unit done and reports whether this was its first
// completion.  A false return is the at-least-once duplicate: the caller
// must not apply the result again (applying anyway is safe for the core's
// first-write-wins merge, but skipping keeps ledgers and counters exact).
func (q *LeaseQueue) Complete(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id < 0 || id >= len(q.done) {
		return false
	}
	if q.done[id] {
		q.stats.Duplicates++
		return false
	}
	q.done[id] = true
	delete(q.leased, id)
	q.stats.Completed++
	q.left--
	if q.left == 0 {
		close(q.doneCh)
	}
	return true
}

// Expire requeues every lease that expired before now and returns how many
// it requeued.  The coordinator runs it on a ticker so a died worker's units
// become leasable without waiting for the next Lease call.
func (q *LeaseQueue) Expire(now time.Time) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked(now)
}

func (q *LeaseQueue) expireLocked(now time.Time) int {
	n := 0
	for id, l := range q.leased {
		if !now.After(l.expires) {
			continue
		}
		delete(q.leased, id)
		if q.done[id] {
			continue
		}
		// Requeue at the front: an expired unit has waited longest.
		q.pending = append([]int{id}, q.pending...)
		q.stats.Requeues++
		n++
	}
	return n
}

// Remaining returns the number of units not yet completed.
func (q *LeaseQueue) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.left
}

// Stats returns the counters accumulated so far.
func (q *LeaseQueue) Stats() LeaseStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Wait blocks until every unit has completed or the context ends, returning
// ctx.Err() in the latter case.  It is the pass barrier of a distributed
// run: the coordinator's dispatch returns when Wait does.
func (q *LeaseQueue) Wait(ctx context.Context) error {
	select {
	case <-q.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
