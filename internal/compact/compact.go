// Package compact implements static test-set compaction for path delay
// fault test sets: the merged pattern sets of multi-worker generation runs
// are measurably larger than sequential ones (cross-shard interleaved-sim
// dropping is weaker than in-process dropping), and compaction claws the
// difference back after the fact.
//
// Two classic passes are combined, both riding on the word-level bit
// parallelism of the fault simulator (64 pattern pairs per simulation):
//
//   - Compatible-pair merging: two pairs whose three-valued vectors never
//     demand opposite values at the same position are merged into one pair
//     carrying the union of their requirements.  This needs the don't-care
//     information the generator normally discards when it fills a pattern,
//     so merging works on the X-preserving (unfilled) forms and the merged
//     pairs are re-filled afterwards by a pluggable Filler.
//
//   - Reverse-order fault simulation: the pairs are re-simulated against
//     the fault list in reverse generation order and a pair is kept only if
//     it detects a fault no later-kept pair detects.  Later patterns were
//     generated for the harder faults, so scanning backwards retires the
//     early patterns whose faults are covered incidentally.
//
// Compaction is coverage-exact by construction: the compacted set detects
// exactly the same faults of the given fault list as the input set.  A
// merge is kept only when it is coverage-neutral — a merged pair that
// detects a fault the input set missed, or that loses one of its members'
// incidental detections, is rejected and its members kept separate — and
// the reverse-order pass only drops pairs whose detections are already
// covered by the kept ones.
package compact

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
)

// Level selects how aggressively a test set is compacted.
type Level int

const (
	// None disables compaction.
	None Level = iota
	// Reverse drops pairs by reverse-order fault simulation only.
	Reverse
	// Full merges compatible pairs first, then applies the reverse-order
	// pass to the merged set.
	Full
)

// String returns the flag spelling of the level.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Reverse:
		return "reverse"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses "none", "reverse" or "full".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "":
		return None, nil
	case "reverse":
		return Reverse, nil
	case "full":
		return Full, nil
	}
	return None, fmt.Errorf("compact: unknown compaction level %q (want none, reverse or full)", s)
}

// Stats summarizes one compaction run.
type Stats struct {
	// PairsBefore and PairsAfter are the set sizes around the compaction.
	PairsBefore int
	PairsAfter  int
	// Merged counts the pairs absorbed into another pair by compatible-pair
	// merging (k pairs merging into one count as k-1).
	Merged int
	// SimDropped counts the pairs dropped by the reverse-order fault
	// simulation pass.
	SimDropped int
}

// Add accumulates another run's counters (the sharded engine merges worker
// statistics the same way).
func (s *Stats) Add(o Stats) {
	s.PairsBefore += o.PairsBefore
	s.PairsAfter += o.PairsAfter
	s.Merged += o.Merged
	s.SimDropped += o.SimDropped
}

// Reduction returns the fractional size reduction (0..1).
func (s Stats) Reduction() float64 {
	if s.PairsBefore == 0 {
		return 0
	}
	return 1 - float64(s.PairsAfter)/float64(s.PairsBefore)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("pairs %d -> %d (%.1f%% smaller): merged=%d sim-dropped=%d",
		s.PairsBefore, s.PairsAfter, s.Reduction()*100, s.Merged, s.SimDropped)
}

// entry is one candidate pattern of the selection pool.
type entry struct {
	filled   pattern.Pair
	unfilled pattern.Pair
	target   string
	det      bitset
}

// maxCompactionRounds bounds the shrink-until-fixpoint iteration of
// Compact; in practice two or three rounds reach the fixpoint.
const maxCompactionRounds = 8

// Compact statically compacts the test set against the fault list: merging
// of compatible pairs (level Full), then reverse-order fault simulation
// (levels Reverse and Full), iterated until the set stops shrinking.  It
// returns a new set — the input is never modified — plus the compaction
// statistics.  The compacted set detects exactly the same faults of the
// list, in the same (robust or nonrobust) class, as the input set; Compact
// is idempotent (a pass that fails to shrink the set is discarded, so
// compacting a compacted set returns it unchanged, with zero work
// counters).
//
// Merging operates on the X-preserving forms recorded in set.Unfilled (see
// pattern.Set.AddUnfilled and the generator's EmitUnfilled option); without
// them every value counts as specified and merging degrades to duplicate
// elimination.  fill specifies how the don't cares of merged pairs are
// completed; nil selects ZeroFill.
func Compact(c *circuit.Circuit, set *pattern.Set, faults []paths.Fault, robust bool, level Level, fill Filler) (*pattern.Set, Stats, error) {
	st := Stats{PairsBefore: set.Len(), PairsAfter: set.Len()}
	if level == None || set.Len() == 0 || len(faults) == 0 {
		return set, st, nil
	}
	if fill == nil {
		fill = ZeroFill()
	}
	cur := set
	for round := 0; round < maxCompactionRounds; round++ {
		out, roundStats, err := compactOnce(c, cur, faults, robust, level, fill)
		if err != nil {
			return nil, Stats{}, err
		}
		if out.Len() >= cur.Len() {
			// No progress: discard the pass (this is what makes Compact
			// idempotent — on an already-compact set the first round changes
			// nothing and the input is returned as is).
			break
		}
		st.Merged += roundStats.Merged
		st.SimDropped += roundStats.SimDropped
		cur = out
	}
	st.PairsAfter = cur.Len()
	return cur, st, nil
}

// compactOnce runs one merge + reverse-order pass over the set.
func compactOnce(c *circuit.Circuit, set *pattern.Set, faults []paths.Fault, robust bool, level Level, fill Filler) (*pattern.Set, Stats, error) {
	var st Stats

	// Detection bitsets of the input pairs: baseline is the detected-fault
	// set the compacted output must reproduce exactly.
	origDet, err := detections(c, set.Pairs, faults, robust)
	if err != nil {
		return nil, Stats{}, err
	}
	baseline := newBitset(len(faults))
	for p := range origDet {
		baseline.or(origDet[p])
	}

	var pool []entry
	if level == Full {
		pool, err = mergedPool(c, set, faults, robust, fill, origDet, baseline, &st)
		if err != nil {
			return nil, Stats{}, err
		}
	} else {
		pool = make([]entry, set.Len())
		for i := range pool {
			pool[i] = poolEntry(set, i, origDet[i])
		}
	}

	// Reverse-order fault simulation pass: walk the pool backwards and keep
	// a pattern only when it detects a fault none of the already-kept
	// (later) patterns detects.
	covered := newBitset(len(faults))
	keep := make([]bool, len(pool))
	kept := 0
	for i := len(pool) - 1; i >= 0; i-- {
		if pool[i].det.anyNotIn(covered) {
			keep[i] = true
			kept++
			covered.or(pool[i].det)
		}
	}
	st.SimDropped = len(pool) - kept

	out := &pattern.Set{InputNames: set.InputNames}
	trackOut := set.Unfilled != nil || level == Full
	for i, e := range pool {
		if !keep[i] {
			continue
		}
		if trackOut {
			out.AddUnfilled(e.filled, e.unfilled, e.target)
		} else {
			out.Add(e.filled, e.target)
		}
	}
	st.PairsAfter = out.Len()
	return out, st, nil
}

// poolEntry builds the pool entry of input pair i.
func poolEntry(set *pattern.Set, i int, det bitset) entry {
	target := ""
	if i < len(set.Targets) {
		target = set.Targets[i]
	}
	return entry{filled: set.Pairs[i], unfilled: set.UnfilledAt(i), target: target, det: det}
}

// mergedPool builds the candidate pool of level Full: compatible pairs are
// merged greedily on their unfilled forms, merged pairs are re-filled and
// re-simulated, and any merged pair that would detect a fault outside the
// baseline (changing coverage) is rejected in favour of its members.
// Singleton buckets keep their original filled pair (and its detections)
// bit for bit.
func mergedPool(c *circuit.Circuit, set *pattern.Set, faults []paths.Fault, robust bool, fill Filler, origDet []bitset, baseline bitset, st *Stats) ([]entry, error) {
	buckets := greedyMerge(set)

	// Re-fill and re-simulate the true merges in one parallel-pattern run.
	var mergedPairs []pattern.Pair
	var mergedIdx []int
	for bi, b := range buckets {
		if len(b.members) > 1 {
			mergedPairs = append(mergedPairs, fill.Fill(b.merged))
			mergedIdx = append(mergedIdx, bi)
		}
	}
	mergedDet, err := detections(c, mergedPairs, faults, robust)
	if err != nil {
		return nil, err
	}

	pool := make([]entry, 0, len(buckets))
	mi := 0
	for _, b := range buckets {
		if len(b.members) == 1 {
			i := b.members[0]
			pool = append(pool, poolEntry(set, i, origDet[i]))
			continue
		}
		filled, det := mergedPairs[mi], mergedDet[mi]
		mi++
		// A merge is only kept when it is coverage-neutral: it must not
		// detect a fault the input set missed (coverage may not grow — the
		// contract is bit-identical), and it must detect everything its
		// members detected, including their incidental fill-value detections
		// (coverage may not shrink).  Anything else falls back to the
		// members.
		reject := det.anyNotIn(baseline)
		for _, i := range b.members {
			if reject {
				break
			}
			reject = origDet[i].anyNotIn(det)
		}
		if reject {
			for _, i := range b.members {
				pool = append(pool, poolEntry(set, i, origDet[i]))
			}
			continue
		}
		st.Merged += len(b.members) - 1
		targets := make([]string, 0, len(b.members))
		for _, i := range b.members {
			if i < len(set.Targets) && set.Targets[i] != "" {
				targets = append(targets, set.Targets[i])
			}
		}
		pool = append(pool, entry{
			filled:   filled,
			unfilled: b.merged,
			target:   strings.Join(targets, " + "),
			det:      det,
		})
	}
	return pool, nil
}

// detections fault-simulates the pairs (in batches of faultsim.BatchSize)
// and returns, per pair, the bitset of faults it detects.
func detections(c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault, robust bool) ([]bitset, error) {
	det := make([]bitset, len(pairs))
	for i := range det {
		det[i] = newBitset(len(faults))
	}
	if len(pairs) == 0 || len(faults) == 0 {
		return det, nil
	}
	sim := faultsim.New(c)
	for base := 0; base < len(pairs); base += faultsim.BatchSize {
		end := base + faultsim.BatchSize
		if end > len(pairs) {
			end = len(pairs)
		}
		if _, err := sim.Load(pairs[base:end]); err != nil {
			return nil, err
		}
		for fi := range faults {
			mask := sim.Detects(faults[fi], robust)
			for mask != 0 {
				b := bits.TrailingZeros64(mask)
				mask &^= 1 << uint(b)
				det[base+b].set(fi)
			}
		}
	}
	return det, nil
}

// bitset is a fixed-size bit vector over fault indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

// or folds o into b (b |= o).
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}

// anyNotIn reports whether b has a bit set that o does not (b &^ o != 0).
func (b bitset) anyNotIn(o bitset) bool {
	for i := range b {
		if b[i]&^o[i] != 0 {
			return true
		}
	}
	return false
}
