package compact

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/pattern"
)

// Filler turns an X-preserving pair into a fully specified one.  Fillers are
// applied only after compatible-pair merging: merging needs the don't-care
// information, filling destroys it.  All fillers keep V1 = V2 at positions
// where both vectors were unconstrained, so no spurious transitions are
// introduced (spurious transitions could invalidate robust detections the
// merge is supposed to preserve).
type Filler interface {
	// Fill returns a fully specified copy of p.  Positions already assigned
	// are never changed.
	Fill(p pattern.Pair) pattern.Pair
	// String names the strategy, e.g. "zero" or "random(42)".
	String() string
}

// valueFill fills every don't care with one constant value.
type valueFill struct{ v logic.Value3 }

// ZeroFill returns the filler assigning logic 0 to every don't care, the
// generator's default fill value.
func ZeroFill() Filler { return valueFill{logic.Zero3} }

// OneFill returns the filler assigning logic 1 to every don't care.
func OneFill() Filler { return valueFill{logic.One3} }

func (f valueFill) Fill(p pattern.Pair) pattern.Pair { return p.FillX(f.v) }

func (f valueFill) String() string {
	if f.v == logic.One3 {
		return "one"
	}
	return "zero"
}

// randomFill fills don't cares with seed-derived pseudo-random values.  The
// fill of a pair depends only on the seed, the pair's contents and the
// position, never on call order, so repeated compactions of the same set are
// bit-identical.
type randomFill struct{ seed int64 }

// RandomFill returns the deterministic seeded random filler.
func RandomFill(seed int64) Filler { return randomFill{seed} }

func (f randomFill) Fill(p pattern.Pair) pattern.Pair {
	out := p.Clone()
	// FNV-style hash over the specified bits of the pair, salted by the
	// seed, so distinct pairs draw distinct fill streams.
	h := uint64(14695981039346656037) ^ uint64(f.seed)
	for i := range out.V2 {
		h = (h ^ uint64(out.V1[i]) ^ uint64(out.V2[i])<<2 ^ uint64(i)<<4) * 1099511628211
	}
	for i := range out.V2 {
		if out.V2[i] == logic.X3 {
			h = (h ^ uint64(i)) * 1099511628211
			if (h>>33)&1 == 1 {
				out.V2[i] = logic.One3
			} else {
				out.V2[i] = logic.Zero3
			}
		}
		if out.V1[i] == logic.X3 {
			out.V1[i] = out.V2[i]
		}
	}
	return out
}

func (f randomFill) String() string { return fmt.Sprintf("random(%d)", f.seed) }
