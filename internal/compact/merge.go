package compact

import (
	"repro/internal/logic"
	"repro/internal/pattern"
)

// bucket is one merged pattern under construction: the positionwise merge of
// the unfilled forms of its member pairs.
type bucket struct {
	// members are the indices of the merged source pairs, ascending.
	members []int
	// merged is the combined X-preserving pair: at every position the union
	// of the members' requirements (all of which are pairwise compatible).
	merged pattern.Pair
}

// compatibleVec reports whether two three-valued vectors agree at every
// position: a specified value is compatible with X and with the same value,
// and incompatible with the opposite value.  This is the paper's Table 1
// encoding at work — the merge of two requirements is the bitwise OR of
// their encodings, and incompatibility is exactly the conflict code (1,1).
func compatibleVec(a, b []logic.Value3) bool {
	for i := range a {
		if a[i].Merge(b[i]).IsConflict() {
			return false
		}
	}
	return true
}

// compatible reports whether two test pairs can be merged: both the
// initialization vectors and the propagation vectors must be conflict-free
// positionwise.  V1 and V2 are checked independently — an input may be
// constrained by one pair's first vector and the other pair's second.
func compatible(a, b pattern.Pair) bool {
	return compatibleVec(a.V1, b.V1) && compatibleVec(a.V2, b.V2)
}

// mergeInto folds pair p into the bucket's merged pair (which must be
// compatible with p).
func (b *bucket) mergeInto(p pattern.Pair, idx int) {
	for i := range b.merged.V1 {
		b.merged.V1[i] = b.merged.V1[i].Merge(p.V1[i])
		b.merged.V2[i] = b.merged.V2[i].Merge(p.V2[i])
	}
	b.members = append(b.members, idx)
}

// affinity scores how well pair p fits a bucket: the number of positions
// where both sides already demand the same assigned value.  Packing a pair
// into the bucket it overlaps most leaves the other buckets less
// constrained, which measurably beats plain first-fit on the ISCAS-class
// sets.
func affinity(b *bucket, p pattern.Pair) int {
	n := 0
	for i := range p.V1 {
		if p.V1[i].IsAssigned() && b.merged.V1[i] == p.V1[i] {
			n++
		}
		if p.V2[i].IsAssigned() && b.merged.V2[i] == p.V2[i] {
			n++
		}
	}
	return n
}

// greedyMerge partitions the set's pairs into buckets of mutually
// compatible unfilled forms: pairs are scanned in generation order and each
// joins the compatible bucket it has the highest affinity with (ties to the
// earliest bucket), or founds a new one.  The result is maximal: any two
// final buckets are pairwise incompatible (a bucket only accumulates
// requirements, so a pair rejected by a bucket's partial state is also
// rejected by its final state), which is what lets compaction converge — a
// second pass finds nothing left to merge.
func greedyMerge(set *pattern.Set) []*bucket {
	var buckets []*bucket
	for i := range set.Pairs {
		u := set.UnfilledAt(i)
		var best *bucket
		bestScore := -1
		for _, b := range buckets {
			if !compatible(b.merged, u) {
				continue
			}
			if score := affinity(b, u); score > bestScore {
				best, bestScore = b, score
			}
		}
		if best != nil {
			best.mergeInto(u, i)
		} else {
			buckets = append(buckets, &bucket{members: []int{i}, merged: u.Clone()})
		}
	}
	return buckets
}
