package compact_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want compact.Level
	}{
		{"none", compact.None},
		{"", compact.None},
		{"reverse", compact.Reverse},
		{"full", compact.Full},
	} {
		got, err := compact.ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("Level(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := compact.ParseLevel("aggressive"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func mustPair(t *testing.T, s string) pattern.Pair {
	t.Helper()
	p, err := pattern.ParsePair(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFillers(t *testing.T) {
	p := mustPair(t, "x0x -> x1x")
	zero := compact.ZeroFill().Fill(p)
	if zero.String() != "000 -> 010" {
		t.Errorf("ZeroFill: got %q", zero.String())
	}
	one := compact.OneFill().Fill(p)
	if one.String() != "101 -> 111" {
		t.Errorf("OneFill: got %q", one.String())
	}
	r1 := compact.RandomFill(42).Fill(p)
	r2 := compact.RandomFill(42).Fill(p)
	if r1.String() != r2.String() {
		t.Errorf("RandomFill not deterministic: %q vs %q", r1.String(), r2.String())
	}
	for i := range r1.V1 {
		if !r1.V1[i].IsAssigned() || !r1.V2[i].IsAssigned() {
			t.Fatalf("RandomFill left position %d unassigned: %s", i, r1.String())
		}
	}
	// Specified positions must never change, and a V1-only X must follow V2
	// (no spurious transitions).
	if r1.V2[1] != logic.One3 || r1.V1[1] != logic.Zero3 {
		t.Errorf("RandomFill changed specified values: %s", r1.String())
	}
	if r1.V1[0] != r1.V2[0] || r1.V1[2] != r1.V2[2] {
		t.Errorf("RandomFill introduced a spurious transition: %s", r1.String())
	}
	// Different seeds should (for this pair) disagree somewhere across a few
	// tries; identical everywhere would mean the seed is ignored.
	varies := false
	for seed := int64(0); seed < 8 && !varies; seed++ {
		if compact.RandomFill(seed).Fill(p).String() != r1.String() {
			varies = true
		}
	}
	if !varies {
		t.Error("RandomFill ignores its seed")
	}
}

// generate runs the bit-parallel generator with unfilled-pair tracking and
// returns the circuit, fault sample and generated set.
func generate(t *testing.T, name string, n int, mode sensitize.Mode) (*circuit.Circuit, []paths.Fault, *pattern.Set) {
	t.Helper()
	c, err := bench.Get(name)
	if err != nil {
		t.Fatalf("bench.Get(%s): %v", name, err)
	}
	faults := paths.SampleFaults(c, n, 7)
	opts := core.DefaultOptions(mode)
	opts.EmitUnfilled = true
	g := core.New(c, opts)
	g.Run(context.Background(), faults)
	return c, faults, g.TestSet()
}

// detectedVector runs the full fault simulation and returns the per-fault
// detection flags.
func detectedVector(t *testing.T, c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault, robust bool) []bool {
	t.Helper()
	res, err := faultsim.Run(c, pairs, faults, robust)
	if err != nil {
		t.Fatal(err)
	}
	return res.Detected
}

// TestCompactionInvariants is the property-style check of the compaction
// contract on three ISCAS85-class circuits: compaction never changes the
// detected-fault vector (bit-identical coverage), never grows the set, and
// is idempotent.
func TestCompactionInvariants(t *testing.T) {
	for _, name := range []string{"c432", "c499", "c880"} {
		for _, mode := range []sensitize.Mode{sensitize.Robust, sensitize.Nonrobust} {
			robust := mode == sensitize.Robust
			t.Run(name+"/"+map[bool]string{true: "robust", false: "nonrobust"}[robust], func(t *testing.T) {
				c, faults, set := generate(t, name, 96, mode)
				before := detectedVector(t, c, set.Pairs, faults, robust)

				for _, level := range []compact.Level{compact.Reverse, compact.Full} {
					out, st, err := compact.Compact(c, set, faults, robust, level, nil)
					if err != nil {
						t.Fatalf("%v: %v", level, err)
					}
					if out.Len() > set.Len() {
						t.Errorf("%v: compaction grew the set: %d -> %d", level, set.Len(), out.Len())
					}
					if st.PairsBefore != set.Len() || st.PairsAfter != out.Len() {
						t.Errorf("%v: stats disagree with sets: %+v", level, st)
					}
					after := detectedVector(t, c, out.Pairs, faults, robust)
					for f := range before {
						if before[f] != after[f] {
							t.Fatalf("%v: coverage not bit-identical at fault %d: before=%v after=%v",
								level, f, before[f], after[f])
						}
					}

					// Idempotence: compacting the compacted set is a no-op.
					out2, st2, err := compact.Compact(c, out, faults, robust, level, nil)
					if err != nil {
						t.Fatalf("%v (second pass): %v", level, err)
					}
					if out2.Len() != out.Len() || out2.String() != out.String() {
						t.Errorf("%v: not idempotent: %d pairs then %d pairs", level, out.Len(), out2.Len())
					}
					if st2.Merged != 0 || st2.SimDropped != 0 {
						t.Errorf("%v: second pass reports work: %+v", level, st2)
					}
				}
			})
		}
	}
}

// TestReverseOrderDropsDuplicates doubles a test set and checks that the
// reverse-order pass eliminates at least the duplicated half without
// changing coverage.
func TestReverseOrderDropsDuplicates(t *testing.T) {
	c, faults, set := generate(t, "c432", 64, sensitize.Robust)
	doubled := &pattern.Set{InputNames: set.InputNames}
	doubled.Append(set)
	doubled.Append(set)

	out, st, err := compact.Compact(c, doubled, faults, true, compact.Reverse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() > set.Len() {
		t.Errorf("reverse-order pass kept %d of %d pairs; want <= %d", out.Len(), doubled.Len(), set.Len())
	}
	if st.SimDropped < set.Len() {
		t.Errorf("expected at least %d sim drops, got %d", set.Len(), st.SimDropped)
	}
	before := detectedVector(t, c, doubled.Pairs, faults, true)
	after := detectedVector(t, c, out.Pairs, faults, true)
	for f := range before {
		if before[f] != after[f] {
			t.Fatalf("coverage changed at fault %d", f)
		}
	}
}

// TestMergeUsesUnfilledPairs builds two hand-made compatible pairs and
// checks that full compaction actually merges them.
func TestMergeUsesUnfilledPairs(t *testing.T) {
	c, err := bench.Get("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	opts := core.DefaultOptions(sensitize.Robust)
	opts.EmitUnfilled = true
	g := core.New(c, opts)
	g.Run(context.Background(), faults)
	set := g.TestSet()
	if set.Unfilled == nil {
		t.Fatal("generator did not record unfilled pairs despite EmitUnfilled")
	}
	for i := range set.Pairs {
		// The filled pair must be the zero-fill of its unfilled form.
		refilled := set.Unfilled[i].FillX(logic.Zero3)
		if refilled.String() != set.Pairs[i].String() {
			t.Fatalf("pair %d: fill of unfilled %q gives %q, want %q",
				i, set.Unfilled[i], refilled.String(), set.Pairs[i].String())
		}
	}

	out, st, err := compact.Compact(c, set, faults, true, compact.Full, compact.ZeroFill())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() >= set.Len() && st.Merged+st.SimDropped == 0 {
		t.Errorf("full compaction did nothing on c17: %d -> %d (%+v)", set.Len(), out.Len(), st)
	}
	// Merged targets keep every constituent's description.
	joined := strings.Join(out.Targets, "\n")
	for _, target := range set.Targets {
		if target != "" && !strings.Contains(joined, target) {
			t.Errorf("target %q lost by compaction", target)
		}
	}
}

func TestCompactNoneAndEmpty(t *testing.T) {
	c, err := bench.Get("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 4)
	empty := &pattern.Set{}
	out, st, err := compact.Compact(c, empty, faults, true, compact.Full, nil)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty set: %v, %v", out, err)
	}
	if st.PairsBefore != 0 || st.PairsAfter != 0 {
		t.Errorf("empty set stats: %+v", st)
	}
	set := &pattern.Set{}
	set.Add(pattern.NewPair(len(c.Inputs())).FillX(logic.Zero3), "t")
	if out, _, _ := compact.Compact(c, set, faults, true, compact.None, nil); out != set {
		t.Error("level None should return the input set unchanged")
	}
	if out, _, _ := compact.Compact(c, set, nil, true, compact.Full, nil); out != set {
		t.Error("empty fault list should return the input set unchanged")
	}
}

func TestStatsHelpers(t *testing.T) {
	st := compact.Stats{PairsBefore: 100, PairsAfter: 60, Merged: 30, SimDropped: 10}
	if got := st.Reduction(); got != 0.4 {
		t.Errorf("Reduction = %v, want 0.4", got)
	}
	var sum compact.Stats
	sum.Add(st)
	sum.Add(st)
	if sum.PairsBefore != 200 || sum.PairsAfter != 120 || sum.Merged != 60 {
		t.Errorf("Add: %+v", sum)
	}
	if s := st.String(); !strings.Contains(s, "100 -> 60") {
		t.Errorf("String: %q", s)
	}
	if (compact.Stats{}).Reduction() != 0 {
		t.Error("zero stats Reduction should be 0")
	}
}
