// Package core implements the paper's primary contribution: bit-parallel
// test pattern generation for path delay faults.
//
// Two modes of bit parallelism are combined, exactly as in Section 3 of the
// paper:
//
//   - FPTPG (fault-parallel test pattern generation) sensitizes up to L
//     target faults simultaneously, one per bit level, and justifies them
//     with shared bit-parallel implications.  Levels that conflict before
//     any optional decision prove their fault redundant; levels whose
//     requirements become justified yield a test.
//
//   - APTPG (alternative-parallel test pattern generation) takes a single
//     hard fault, flattens it onto all L bit levels and enumerates all value
//     combinations of up to log2(L) backtrace-selected primary inputs in
//     parallel, one combination per bit level.  Further decisions are made
//     conventionally (one value for all levels) and backtracked on conflict.
//
// The combined generator starts every fault in FPTPG and dynamically passes
// faults that would need backtracking to APTPG.  Restricting the word width
// to one bit yields the single-bit baseline used for the comparison in
// Tables 5 and 6 of the paper.
package core

import (
	"fmt"
	"time"

	"repro/internal/compact"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// Status is the final classification of a target fault.
type Status uint8

// Fault classifications.
const (
	// Pending: not yet processed.
	Pending Status = iota
	// Tested: a test pattern was generated for the fault.
	Tested
	// Redundant: the fault was proved untestable (in the selected test
	// class).
	Redundant
	// Aborted: the generator gave up within its backtrack/iteration limits.
	Aborted
	// DetectedBySim: the fault was dropped because a pattern generated for
	// another fault already detects it (found by the interleaved fault
	// simulation).
	DetectedBySim
)

// String returns a short lower-case name for the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Tested:
		return "tested"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	case DetectedBySim:
		return "detected-by-simulation"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Detected reports whether the fault is covered by the generated test set
// (either by its own test or by another fault's test).
func (s Status) Detected() bool { return s == Tested || s == DetectedBySim }

// Phase identifies which part of the generator settled a fault.
type Phase uint8

// Generator phases.
const (
	PhaseNone Phase = iota
	PhaseFPTPG
	PhaseAPTPG
	PhaseSimulation
	PhasePruning
)

// String returns a short name for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseFPTPG:
		return "fptpg"
	case PhaseAPTPG:
		return "aptpg"
	case PhaseSimulation:
		return "simulation"
	case PhasePruning:
		return "pruning"
	}
	return "none"
}

// Options configure the generator.
type Options struct {
	// Mode selects robust or nonrobust test generation.
	Mode sensitize.Mode
	// WordWidth is the number of bit levels L exploited
	// (1..logic.MaxWordWidth).  Widths above 64 span multiple plane words per
	// net (see internal/logic's vector types); width 1 is the single-bit
	// baseline of Tables 5 and 6.
	WordWidth int
	// UseFPTPG enables the fault-parallel first phase.
	UseFPTPG bool
	// UseAPTPG enables the alternative-parallel second phase.  With both
	// phases disabled every fault is aborted, so at least one should be on.
	UseAPTPG bool
	// MaxEnumInputs caps the number of primary inputs enumerated in parallel
	// by APTPG.  Zero or negative means log2(WordWidth) clamped to the
	// machine word's log2(64) = 6, the paper's limit: alternative enumeration
	// beyond one machine word pays the multi-word plane cost on every
	// implication of a single-fault search, which measures as a loss, so
	// widths above 64 keep their width for the fault-parallel phase but
	// enumerate alternatives one word at a time unless this cap is raised
	// explicitly.
	MaxEnumInputs int
	// MaxBacktracks bounds the conventional backtracks per fault in APTPG
	// before the fault is aborted.
	MaxBacktracks int
	// MaxFPTPGIterations bounds the decision rounds per FPTPG group.
	MaxFPTPGIterations int
	// FaultSimInterval runs parallel-pattern fault simulation over the
	// pending faults after every FaultSimInterval generated patterns and
	// drops the detected ones; 0 disables it.  The paper simulates after
	// every L generated patterns.
	FaultSimInterval int
	// SubpathPruning records the minimal conflicting subpath of every fault
	// proved redundant without decisions, and prunes later faults containing
	// that subpath, as described for Figure 1 of the paper.
	SubpathPruning bool
	// MaxImplySweeps bounds the forward/backward rounds of every implication
	// closure.  Small values trade implication completeness (more search)
	// for cheaper individual implications; 0 uses the implication engine's
	// default.
	MaxImplySweeps int
	// FullSweepImplic is a debug option selecting the original full-sweep
	// implication engine (from-scratch forward/backward sweeps on every
	// Imply, whole-circuit ForwardSim, rebuild-based backtracking) instead
	// of the event-driven incremental engine with its assignment trail.  It
	// is retained as the oracle the incremental engine is validated against
	// (see equiv tests); production runs leave it off.
	FullSweepImplic bool
	// VerifyTests re-simulates every generated pattern and downgrades the
	// fault to Aborted if the pattern does not actually detect it.  Enabled
	// by default; it is cheap and guards against generator bugs.
	VerifyTests bool
	// FillValue is used for primary inputs the test does not constrain.
	FillValue logic.Value3
	// Compaction selects the static compaction pass applied to a run's
	// freshly generated patterns after the (sharded) merge: compatible-pair
	// merging and/or reverse-order fault simulation (see internal/compact).
	// Compaction never changes which faults of the run are detected.
	Compaction compact.Level
	// CompactionXFill fills the don't-care positions of merged pairs during
	// compaction; nil selects compact.ZeroFill().
	CompactionXFill compact.Filler
	// EmitUnfilled records the X-preserving form of every generated pattern
	// alongside the filled one (pattern.Set.Unfilled).  Merge-level
	// compaction needs it, so normalize turns it on when Compaction is
	// compact.Full.
	EmitUnfilled bool
	// Schedule selects the fault-dispatch policy of a run: sched.Static
	// hands every worker one contiguous run of work units up front (the
	// classic shard split, now expressed inside the scheduler), sched.Steal
	// starts from the same split but lets idle workers steal queued units
	// from the most loaded peer.  With one worker the policies coincide.
	Schedule sched.Policy
	// EscalationWidth, when positive, enables two-pass adaptive grouping:
	// every fault first runs fault-serial (a width-1 group) under the cheap
	// FirstPassBacktracks budget, and only the survivors are regrouped into
	// width-EscalationWidth word-parallel groups and re-run under the full
	// MaxBacktracks budget.  Word-level sharing is thus spent only on the
	// faults whose search is expensive enough to pay for it.  Zero (the
	// default) keeps the single fixed-width pass.
	EscalationWidth int
	// FirstPassBacktracks is the APTPG backtrack budget of the cheap first
	// pass of adaptive grouping; 0 selects 1.  It is ignored while both
	// EscalationWidth and GuidedEscalation are off.
	FirstPassBacktracks int
	// GuidedEscalation turns on testability-guided search: every target
	// fault is scored with the circuit's SCOAP-style measures
	// (internal/testability), faults above the hardness threshold skip the
	// cheap first pass and go straight to the wide escalation pass, and work
	// units are ordered hardest first with cost-weighted scheduler splits.
	// With EscalationWidth 0 the escalation width is derived from the score
	// distribution (testability.AutoWidth).  Guidance reorders and routes
	// work; the per-fault search itself is unchanged.
	GuidedEscalation bool
}

// DefaultOptions returns the configuration used by the experiments: robust
// or nonrobust mode with the full word width, both phases enabled, fault
// simulation after every L patterns and moderate abort limits.
func DefaultOptions(mode sensitize.Mode) Options {
	return Options{
		Mode:               mode,
		WordWidth:          logic.WordWidth,
		UseFPTPG:           true,
		UseAPTPG:           true,
		MaxEnumInputs:      0,
		MaxBacktracks:      8,
		MaxFPTPGIterations: 128,
		FaultSimInterval:   logic.WordWidth,
		SubpathPruning:     true,
		MaxImplySweeps:     3,
		VerifyTests:        true,
		FillValue:          logic.Zero3,
	}
}

// SingleBitOptions returns the single-bit baseline configuration: the same
// algorithm restricted to one bit level, i.e. one fault and one value
// alternative at a time, as used for the comparison in Tables 5 and 6.
func SingleBitOptions(mode sensitize.Mode) Options {
	o := DefaultOptions(mode)
	o.WordWidth = 1
	o.FaultSimInterval = 1
	return o
}

// normalize clamps the options to legal values.
func (o Options) normalize() Options {
	if o.WordWidth < 1 {
		o.WordWidth = 1
	}
	if o.WordWidth > logic.MaxWordWidth {
		o.WordWidth = logic.MaxWordWidth
	}
	if o.MaxEnumInputs <= 0 {
		o.MaxEnumInputs = log2(o.WordWidth)
		if o.MaxEnumInputs > log2(logic.WordWidth) {
			o.MaxEnumInputs = log2(logic.WordWidth)
		}
	}
	if o.MaxBacktracks <= 0 {
		o.MaxBacktracks = 8
	}
	if o.MaxFPTPGIterations <= 0 {
		o.MaxFPTPGIterations = 128
	}
	if !o.FillValue.IsAssigned() {
		o.FillValue = logic.Zero3
	}
	if o.Compaction == compact.Full {
		o.EmitUnfilled = true
	}
	if o.Compaction != compact.None && o.CompactionXFill == nil {
		o.CompactionXFill = compact.ZeroFill()
	}
	if o.EscalationWidth < 0 {
		o.EscalationWidth = 0
	}
	if o.EscalationWidth > logic.MaxWordWidth {
		o.EscalationWidth = logic.MaxWordWidth
	}
	if (o.EscalationWidth > 0 || o.GuidedEscalation) && o.FirstPassBacktracks <= 0 {
		o.FirstPassBacktracks = 1
	}
	return o
}

// PassSpec describes one generation pass of the scheduler-driven pipeline:
// the word-parallel group width, the APTPG backtrack budget, and whether
// faults that exhaust the budget are final (Aborted) or left Pending for the
// escalation pass.  It is exported so the distributed service
// (internal/service) can ship the exact pass parameters to remote workers;
// local runs never need to construct one.
type PassSpec struct {
	Width  int
	Budget int
	Final  bool
}

// passes returns the pass sequence the options select: one full-width pass,
// or — with adaptive grouping or guided escalation — a cheap fault-serial
// pass followed by a wide escalation pass for its survivors.  Guided runs
// without an explicit EscalationWidth get a placeholder escalation width
// here; runPasses replaces it with the auto-tuned width once the score
// distribution of the actual target faults is known.
func (o Options) passes() []PassSpec {
	if o.EscalationWidth > 0 || o.GuidedEscalation {
		w := o.EscalationWidth
		if w == 0 {
			w = o.WordWidth
		}
		return []PassSpec{
			{Width: 1, Budget: o.FirstPassBacktracks, Final: false},
			{Width: w, Budget: o.MaxBacktracks, Final: true},
		}
	}
	return []PassSpec{{Width: o.WordWidth, Budget: o.MaxBacktracks, Final: true}}
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// FaultResult is the outcome of the generator for one target fault.
type FaultResult struct {
	Fault  paths.Fault
	Status Status
	Phase  Phase
	// Test is the generated two-vector test (valid when Status == Tested).
	Test pattern.Pair
	// PatternIndex is the index of the detecting pattern in the test set,
	// for Tested and DetectedBySim faults; -1 otherwise.
	PatternIndex int
	// Decisions and Backtracks count the search effort spent on the fault.
	Decisions  int
	Backtracks int
	// Err records why an Aborted fault was given up before its search limits
	// were exhausted (typically the context cancellation cause); it is nil
	// for faults that ran to a regular classification.
	Err error
}

// Stats aggregates a generator run.
type Stats struct {
	Faults          int
	Tested          int
	Redundant       int
	Aborted         int
	DetectedBySim   int
	PrunedRedundant int

	Patterns     int
	FPTPGGroups  int
	APTPGFaults  int
	Decisions    int
	Backtracks   int
	Implications int

	// FirstPassSettled and Escalated summarize adaptive grouping
	// (Options.EscalationWidth): faults settled by the cheap fault-serial
	// first pass, and faults entering the wide escalation pass (first-pass
	// survivors plus, under guided escalation, the predicted-hard faults
	// that skipped the first pass).  Both stay zero while escalation is off.
	FirstPassSettled int
	Escalated        int

	// PredictedHard counts the faults guided escalation routed straight to
	// the wide pass (testability score above the hardness threshold).  It
	// stays zero while Options.GuidedEscalation is off.
	PredictedHard int

	// Sched summarizes the dispatch layer of the run(s): passes, work
	// units, steals and the idle-unit skew counter (see sched.Stats).
	Sched sched.Stats

	// Compaction summarizes the static compaction passes of the run(s):
	// pairs before/after, compatible merges, reverse-order simulation drops.
	// All counters stay zero while Options.Compaction is compact.None.
	Compaction compact.Stats

	// SensitizeTime is the time spent computing sensitization conditions
	// (the t_sens column of Tables 5 and 6); GenerateTime is the rest of the
	// generation time.
	SensitizeTime time.Duration
	GenerateTime  time.Duration
}

// Add accumulates the counters and times of another run into s.  It is the
// merge operation of the sharded engine: every worker runs with its own
// Stats, and the orchestrator folds them into the master's.  The time fields
// add up to aggregate CPU time, not wall-clock time, when the runs were
// concurrent.
func (s *Stats) Add(o Stats) {
	s.Faults += o.Faults
	s.Tested += o.Tested
	s.Redundant += o.Redundant
	s.Aborted += o.Aborted
	s.DetectedBySim += o.DetectedBySim
	s.PrunedRedundant += o.PrunedRedundant

	s.Patterns += o.Patterns
	s.FPTPGGroups += o.FPTPGGroups
	s.APTPGFaults += o.APTPGFaults
	s.Decisions += o.Decisions
	s.Backtracks += o.Backtracks
	s.Implications += o.Implications

	s.FirstPassSettled += o.FirstPassSettled
	s.Escalated += o.Escalated
	s.PredictedHard += o.PredictedHard
	s.Sched.Add(o.Sched)

	s.Compaction.Add(o.Compaction)

	s.SensitizeTime += o.SensitizeTime
	s.GenerateTime += o.GenerateTime
}

// SkipRate returns the fraction of the run's target faults that guided
// escalation routed straight to the wide pass; 0 while guidance is off.
func (s Stats) SkipRate() float64 {
	if s.Faults == 0 {
		return 0
	}
	return float64(s.PredictedHard) / float64(s.Faults)
}

// Efficiency returns the paper's efficiency metric
// (1 - aborted/faults) * 100%.
func (s Stats) Efficiency() float64 {
	if s.Faults == 0 {
		return 100
	}
	return (1 - float64(s.Aborted)/float64(s.Faults)) * 100
}

// Coverage returns the fraction of faults covered by the generated test set
// (tested directly or detected by simulation).
func (s Stats) Coverage() float64 {
	if s.Faults == 0 {
		return 0
	}
	return float64(s.Tested+s.DetectedBySim) / float64(s.Faults)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("faults=%d tested=%d redundant=%d aborted=%d sim-detected=%d patterns=%d efficiency=%.2f%%",
		s.Faults, s.Tested, s.Redundant, s.Aborted, s.DetectedBySim, s.Patterns, s.Efficiency())
}
