package core

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// These tests pin the event-driven incremental implication engine (with its
// Assign/Undo trail) to the retained full-sweep oracle at the generator
// level: same faults, same options, the runs must agree on every fault
// classification, every emitted pattern and the search-effort counters.
//
// MaxImplySweeps is raised so every implication closure converges: that is
// the bit-exactness precondition (see the implic package comment).  With a
// truncating bound both engines remain sound but may stop at different
// partial closures.

// equivSweeps is a sweep bound high enough for every closure to converge on
// the test circuits.
const equivSweeps = 16

func equivGenCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	cs := []*circuit.Circuit{bench.PaperExample(), bench.RedundantExample(), bench.MuxTree(3)}
	for _, spec := range []struct {
		name  string
		scale float64
	}{
		{"c432", 1.0}, {"c880", 0.6}, {"c1355", 0.4},
	} {
		p, ok := bench.ProfileByName(spec.name)
		if !ok {
			t.Fatalf("unknown profile %q", spec.name)
		}
		cs = append(cs, bench.MustSynthesize(p.Scaled(spec.scale)))
	}
	cs = append(cs, bench.MustSynthesize(bench.Profile{
		Name: "gen-eq-rnd", Inputs: 16, Outputs: 8, Gates: 200, Depth: 12, Seed: 61,
		InputFaninBias: 0.45, WideFaninFraction: 0.2, InverterFraction: 0.3,
	}))
	return cs
}

// runEquivPair runs the same faults through the incremental engine and the
// full-sweep oracle and fails on any observable difference.
func runEquivPair(t *testing.T, c *circuit.Circuit, faults []paths.Fault, opts Options, tag string) {
	t.Helper()
	inc := New(c, opts)
	resInc := inc.Run(context.Background(), faults)

	opts.FullSweepImplic = true
	ora := New(c, opts)
	resOra := ora.Run(context.Background(), faults)

	for i := range resInc {
		a, b := resInc[i], resOra[i]
		if a.Status != b.Status || a.Phase != b.Phase || a.PatternIndex != b.PatternIndex {
			t.Fatalf("%s: fault %d (%s): incremental %v/%v idx=%d, oracle %v/%v idx=%d",
				tag, i, faults[i].Describe(c),
				a.Status, a.Phase, a.PatternIndex, b.Status, b.Phase, b.PatternIndex)
		}
		if a.Decisions != b.Decisions || a.Backtracks != b.Backtracks {
			t.Fatalf("%s: fault %d: search effort differs: incremental %d dec/%d bt, oracle %d dec/%d bt",
				tag, i, a.Decisions, a.Backtracks, b.Decisions, b.Backtracks)
		}
		if !slices.Equal(a.Test.V1, b.Test.V1) || !slices.Equal(a.Test.V2, b.Test.V2) {
			t.Fatalf("%s: fault %d: test pattern differs", tag, i)
		}
	}
	sa, sb := inc.Stats(), ora.Stats()
	if sa.Tested != sb.Tested || sa.Redundant != sb.Redundant || sa.Aborted != sb.Aborted ||
		sa.DetectedBySim != sb.DetectedBySim || sa.Patterns != sb.Patterns ||
		sa.Decisions != sb.Decisions || sa.Backtracks != sb.Backtracks {
		t.Fatalf("%s: stats differ:\n  incremental %v\n  oracle      %v", tag, sa, sb)
	}
	ta, tb := inc.TestSet(), ora.TestSet()
	if ta.Len() != tb.Len() {
		t.Fatalf("%s: test set sizes differ: %d vs %d", tag, ta.Len(), tb.Len())
	}
	for i := range ta.Pairs {
		if !slices.Equal(ta.Pairs[i].V1, tb.Pairs[i].V1) || !slices.Equal(ta.Pairs[i].V2, tb.Pairs[i].V2) {
			t.Fatalf("%s: pattern %d differs", tag, i)
		}
	}
}

// TestEventDrivenGeneratorMatchesFullSweep runs the full generator — both
// phases, fault-parallel only, and alternative-parallel only — over
// ISCAS-85-class and randomized circuits in both test classes, comparing
// the incremental engine against the full-sweep oracle fault by fault.
func TestEventDrivenGeneratorMatchesFullSweep(t *testing.T) {
	for _, c := range equivGenCircuits(t) {
		faults := paths.SampleFaults(c, 48, 1995)
		if len(faults) == 0 {
			faults = paths.EnumerateFaults(c, 0)
		}
		for _, mode := range []sensitize.Mode{sensitize.Robust, sensitize.Nonrobust} {
			for _, phases := range []struct {
				name         string
				fptpg, aptpg bool
			}{
				{"both", true, true},
				{"fptpg-only", true, false},
				{"aptpg-only", false, true},
			} {
				opts := DefaultOptions(mode)
				opts.MaxImplySweeps = equivSweeps
				opts.UseFPTPG = phases.fptpg
				opts.UseAPTPG = phases.aptpg
				tag := fmt.Sprintf("%s/%s/%s", c.Name, mode, phases.name)
				runEquivPair(t, c, faults, opts, tag)
			}
		}
	}
}

// TestBacktrackHeavyTrailMatchesFullSweep forces deep alternative-parallel
// search — narrow word, no input enumeration shortcut, generous backtrack
// budget — so the Assign/Undo trail unwinds thousands of frames, and checks
// the run is still bit-identical to the rebuild-based full-sweep oracle.
func TestBacktrackHeavyTrailMatchesFullSweep(t *testing.T) {
	c := bench.MustSynthesize(bench.Profile{
		Name: "bt-heavy", Inputs: 14, Outputs: 6, Gates: 170, Depth: 13, Seed: 71,
		InputFaninBias: 0.35, WideFaninFraction: 0.25, InverterFraction: 0.45,
	})
	faults := paths.SampleFaults(c, 256, 7)
	opts := DefaultOptions(sensitize.Robust)
	opts.MaxImplySweeps = equivSweeps
	opts.UseFPTPG = false     // every fault goes through backtracking search
	opts.WordWidth = 2        // almost no alternative-parallelism: more real backtracks
	opts.FaultSimInterval = 0 // no drops: every fault is searched in full
	opts.SubpathPruning = false
	opts.MaxBacktracks = 48
	runEquivPair(t, c, faults, opts, "backtrack-heavy")

	g := New(c, opts)
	g.Run(context.Background(), faults)
	if bt := g.Stats().Backtracks; bt < 100 {
		t.Fatalf("backtrack-heavy case only produced %d backtracks; the trail was barely exercised", bt)
	}
}
