package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// This file is the core's half of the distributed engine (internal/service):
// the worker side processes single work units shipped over the wire
// (ProcessRemoteUnit), the coordinator side drives the same pass pipeline as
// Run/RunSharded but hands the units to a dispatch callback instead of local
// goroutines (RemoteRun), and the client side folds a finished remote run
// back into a local generator (ImportRemoteRun).
//
// The determinism contract is the one RunSharded already guarantees: a unit's
// outcome under FaultSimInterval == 0 is a pure function of (circuit,
// options, pass spec, unit faults) — the search never looks at any other
// fault's state — and the merged test set is reassembled in canonical fault
// input order.  Because unit outcomes are pure, processing a unit more than
// once (a lease requeued after a worker died, with the original worker's
// result arriving late) yields the same outcome, and RemoteRun.Apply is
// first-write-wins per fault, so at-least-once dispatch cannot change any
// classification.  With the interleaved simulation on, outcomes additionally
// depend on which patterns arrived before the claim, so — exactly as across
// local workers — only the coverage class (Tested vs DetectedBySim) is
// stable, not the individual statuses.

// RemoteOutcome is the outcome of one fault of a remotely processed work
// unit, as reported back by a worker.  It carries everything the coordinator
// needs for the canonical merge; pattern indices are deliberately absent
// (worker-local test-set indices mean nothing on the coordinator — the
// merge assigns indices in fault input order, and simulation drops are
// reconciled against the final merged set).
type RemoteOutcome struct {
	Status Status
	Phase  Phase

	// Decisions and Backtracks are the search effort the worker spent on the
	// fault in this unit alone; across the passes of an escalating run they
	// accumulate on the coordinator's per-fault result.
	Decisions  int
	Backtracks int

	// Test is the verified two-vector test of a Tested fault.  Raw is its
	// X-preserving pre-fill form when the options track unfilled patterns
	// (Options.EmitUnfilled, needed by merge-level compaction); otherwise it
	// is empty.
	Test pattern.Pair
	Raw  pattern.Pair
}

// ProcessRemoteUnit is the worker side of a distributed run: it processes one
// work unit — the exact sched.Group cut the coordinator's pass pipeline
// produced — under the given pass spec and returns one outcome per fault, in
// unit order.  foreign carries the verified patterns published by the other
// workers of the job since this worker's previous fetch; as in a local
// sharded run they are swept against the unit's faults at claim time (and
// kept for later units), so a fault another worker's pattern already detects
// is dropped without a search.  Pending outcomes (a non-final pass whose
// budget ran out) are legal: the coordinator escalates those faults into the
// next pass.
//
// The generator must be dedicated to one job (same circuit and options as
// the coordinator's master, fresh test set): its test set accumulates the
// patterns of the units it processed, which the caller publishes to the
// other workers (TestSet), and its statistics accumulate the search effort,
// which the caller reports to the coordinator as periodic deltas
// (Stats.EffortDelta / RemoteRun.AddEffort).
func (g *Generator) ProcessRemoteUnit(ctx context.Context, faults []paths.Fault, spec PassSpec, foreign []pattern.Pair) []RemoteOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sensAtStart := g.stats.SensitizeTime

	_, recs := newRecs(faults)
	if len(foreign) > 0 {
		g.foreign = append(g.foreign, foreign...)
	}
	g.claimSweep(recs)
	g.processUnit(ctx, recs, spec)

	g.stats.GenerateTime += time.Since(start) - (g.stats.SensitizeTime - sensAtStart)

	out := make([]RemoteOutcome, len(recs))
	for i, r := range recs {
		o := RemoteOutcome{
			Status:     r.res.Status,
			Phase:      r.res.Phase,
			Decisions:  r.res.Decisions,
			Backtracks: r.res.Backtracks,
		}
		if r.res.Status == Tested {
			o.Test = r.res.Test
			if g.opts.EmitUnfilled && r.res.PatternIndex >= 0 {
				o.Raw = g.testSet.UnfilledAt(r.res.PatternIndex)
			}
		}
		out[i] = o
	}
	return out
}

// RemoteRun is the coordinator side of a distributed run: the same pipeline
// as Run/RunSharded — pass cutting, canonical merge, drop reconciliation,
// static compaction — with the unit processing replaced by a dispatch
// callback.  The caller (internal/service) owns the transport: it leases the
// units of each pass to workers, feeds their reported outcomes to Apply, and
// returns from dispatch once every unit of the pass has been applied.
//
// Apply and AddEffort are safe for concurrent use with each other, but the
// caller must not let them race the pass transition: every Apply for a pass
// must complete (happen before) dispatch returning for that pass — the
// service coordinator serializes completions under its per-job mutex and
// acquires that mutex once more after the pass's lease queue drains, which
// is exactly that barrier.
type RemoteRun struct {
	master  *Generator
	faults  []paths.Fault
	results []FaultResult
	recs    []*rec
	base    int

	mu       sync.Mutex
	outcomes []RemoteOutcome
}

// NewRemoteRun prepares a distributed run of the faults on the master
// generator.  The master carries the circuit, the options, the accumulated
// test set and the statistics, exactly as for a local run; its OnSettle
// callback is invoked from Apply as faults settle.
func NewRemoteRun(master *Generator, faults []paths.Fault) *RemoteRun {
	results, recs := newRecs(faults)
	master.stats.Faults += len(faults)
	return &RemoteRun{
		master:   master,
		faults:   faults,
		results:  results,
		recs:     recs,
		base:     master.testSet.Len(),
		outcomes: make([]RemoteOutcome, len(faults)),
	}
}

// Apply folds one processed unit's outcomes into the run: unit holds the
// fault indices (into the run's fault slice) of the dispatched unit, and
// outcomes the worker's report in the same order.  Application is
// first-write-wins per fault — a duplicate report for an already settled
// fault (the at-least-once case: lease requeue plus a late original result)
// is a no-op, which keeps every classification the first reported one.
// Pending outcomes only accumulate the search effort; the fault stays
// pending for the escalation pass.  The master's OnSettle fires for every
// newly settled fault; the indices of those faults are returned.
func (rr *RemoteRun) Apply(unit []int, outcomes []RemoteOutcome) []int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	m := rr.master
	var settled []int
	for i, fi := range unit {
		if i >= len(outcomes) || fi < 0 || fi >= len(rr.recs) {
			continue
		}
		o := outcomes[i]
		r := rr.recs[fi]
		if r.res.Status != Pending {
			continue // first write wins: a requeued duplicate changes nothing
		}
		r.res.Decisions += o.Decisions
		r.res.Backtracks += o.Backtracks
		if o.Status == Pending {
			continue // non-final pass, budget exhausted: escalates
		}
		r.res.Status = o.Status
		r.res.Phase = o.Phase
		if o.Status == Tested {
			r.res.Test = o.Test
		}
		rr.outcomes[fi] = o
		switch o.Status {
		case Tested:
			m.stats.Tested++
			m.stats.Patterns++
		case Redundant:
			m.stats.Redundant++
		case Aborted:
			m.stats.Aborted++
		case DetectedBySim:
			m.stats.DetectedBySim++
		}
		m.settle(r)
		settled = append(settled, fi)
	}
	return settled
}

// AddEffort folds a worker's search-effort delta (Stats.EffortDelta between
// two snapshots of the worker generator's statistics) into the master's
// statistics.  Classification counters are not touched — those are bumped by
// Apply, deduplicated per fault — so duplicated effort from an at-least-once
// requeue can at worst overstate the effort counters, never the results.
func (rr *RemoteRun) AddEffort(d Stats) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	s := &rr.master.stats
	s.FPTPGGroups += d.FPTPGGroups
	s.APTPGFaults += d.APTPGFaults
	s.Decisions += d.Decisions
	s.Backtracks += d.Backtracks
	s.Implications += d.Implications
	s.PrunedRedundant += d.PrunedRedundant
	s.SensitizeTime += d.SensitizeTime
	s.GenerateTime += d.GenerateTime
}

// Run drives the distributed run: it cuts the passes into work units exactly
// like a local run (guided routing, hardest-first ordering and cost
// weighting included) and hands each pass's units to dispatch, which must
// not return before every unit of the pass has been processed and applied
// (see the synchronization contract on RemoteRun).  After the passes it
// finishes exactly like RunSharded: pending faults are swept up (carrying
// the cancellation cause when ctx ended the run), the test set is merged in
// canonical fault order, simulation drops are reconciled against the merged
// set, and the run's patterns are statically compacted.  The results are
// input-ordered: result i belongs to fault i.
func (rr *RemoteRun) Run(ctx context.Context, dispatch func(units []sched.Unit, spec PassSpec)) []FaultResult {
	if ctx == nil {
		ctx = context.Background()
	}
	m := rr.master
	m.runPasses(rr.recs, func(units []sched.Unit, ps PassSpec) {
		if ctx.Err() != nil {
			return // canceled: skip dispatch, finish marks the rest
		}
		dispatch(units, ps)
	})
	m.finish(ctx, rr.recs)
	rr.mergeOutcomes()
	m.reconcileDrops(rr.results)
	if ctx.Err() == nil {
		m.compactRun(rr.faults, rr.results, rr.base)
	}
	return rr.results
}

// mergeOutcomes reassembles the workers' patterns on the master in canonical
// fault order: walking the results by fault input index, every Tested
// fault's pattern is appended to the master's test set, so the merged set is
// a pure function of the per-fault outcomes — independent of which worker
// processed which unit, of lease requeues and of result arrival order — and
// identical to the merged set of a local sharded run with the same
// per-fault outcomes.  DetectedBySim faults keep index -1 here and get the
// first detecting pattern of the merged set from reconcileDrops.
//
//atpgvet:deterministic
func (rr *RemoteRun) mergeOutcomes() {
	m := rr.master
	for i := range rr.results {
		r := &rr.results[i]
		if r.Status != Tested {
			continue
		}
		o := rr.outcomes[i]
		idx := m.testSet.Len()
		target := rr.faults[i].Describe(m.c)
		if m.opts.EmitUnfilled && o.Raw.Len() > 0 {
			m.testSet.AddUnfilled(o.Test, o.Raw, target)
		} else {
			m.testSet.Add(o.Test, target)
		}
		r.PatternIndex = idx
	}
	// Merged patterns are final results of a completed run: they must not be
	// re-simulated by a later sequential Run on the master.
	m.lastSimmed = m.testSet.Len()
	m.newPatterns = 0
}

// EffortDelta returns the search-effort counters accumulated between the
// prev snapshot and s: the fields RemoteRun.AddEffort folds into a
// coordinator's statistics.  Classification counters, dispatch and
// compaction summaries are zero in the delta — classifications travel with
// the unit outcomes, and dispatch/compaction happen on the coordinator.
func (s Stats) EffortDelta(prev Stats) Stats {
	return Stats{
		FPTPGGroups:     s.FPTPGGroups - prev.FPTPGGroups,
		APTPGFaults:     s.APTPGFaults - prev.APTPGFaults,
		Decisions:       s.Decisions - prev.Decisions,
		Backtracks:      s.Backtracks - prev.Backtracks,
		Implications:    s.Implications - prev.Implications,
		PrunedRedundant: s.PrunedRedundant - prev.PrunedRedundant,
		SensitizeTime:   s.SensitizeTime - prev.SensitizeTime,
		GenerateTime:    s.GenerateTime - prev.GenerateTime,
	}
}

// ImportRemoteRun is the client side of a distributed run: it folds the
// coordinator's final results, merged test set and statistics into this
// generator, as if the generator had run the faults itself.  The set is
// appended to the generator's accumulated test set and the returned results
// have their pattern indices rebased onto it; the input slices are not
// mutated.  Later local runs on the same generator compose as usual
// (patterns accumulate, imported patterns are never re-simulated).
func (g *Generator) ImportRemoteRun(results []FaultResult, set *pattern.Set, stats Stats) []FaultResult {
	base := g.testSet.Len()
	if set != nil {
		g.testSet.Append(set)
	}
	g.lastSimmed = g.testSet.Len()
	g.newPatterns = 0
	g.stats.Add(stats)
	out := make([]FaultResult, len(results))
	copy(out, results)
	for i := range out {
		if out[i].PatternIndex >= 0 {
			out[i].PatternIndex += base
		}
	}
	return out
}
