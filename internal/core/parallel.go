package core

import (
	"context"
	"sync"

	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

// RunSharded generates tests for the faults like Generator.Run, but shards
// the fault list across workers goroutines, multiplying the paper's
// word-level bit parallelism by core-level parallelism.  Each worker is a
// Fork of master — an independent generator over the shared immutable
// circuit — processing one contiguous shard.  When the interleaved fault
// simulation is enabled, workers exchange their verified patterns through a
// shared buffer, so a pattern emitted on one shard still drops detected
// faults on the others.
//
// The merged result slice is deterministic and input-ordered: result i
// belongs to faults[i].  Pattern indices refer to the merged test set, which
// master accumulates (worker sets are appended in shard order); faults
// dropped by a foreign worker's pattern get the index of the first pattern
// of the merged set that detects them.  master's OnSettle callback is
// invoked as faults settle, serialized by a mutex but in a nondeterministic
// interleaving across shards; its OnPattern and ImportPatterns hooks are not
// used.  Statistics are summed over the workers, so the time fields report
// aggregate CPU time rather than wall-clock time.
//
// When Options.Compaction is enabled, the merged test set of the run is
// statically compacted once after the deterministic merge (reverse-order
// fault simulation and, at compact.Full, compatible-pair merging), and the
// PatternIndex of every covered fault is remapped onto the compacted set.
// Compaction applies equally to the workers <= 1 path, so the sequential
// and sharded engines stay comparable.
//
// With workers <= 1 (or a single fault) the call is exactly master.Run.
// master must not be used concurrently with RunSharded.
func RunSharded(ctx context.Context, master *Generator, faults []paths.Fault, workers int) []FaultResult {
	if workers > len(faults) {
		workers = len(faults)
	}
	base := master.testSet.Len()
	if workers <= 1 {
		results := master.Run(ctx, faults)
		if ctx == nil || ctx.Err() == nil {
			master.compactRun(faults, results, base)
		}
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var settleMu sync.Mutex
	settle := master.OnSettle

	var x *exchange
	if master.opts.FaultSimInterval > 0 {
		x = newExchange(workers)
	}

	bounds := shardBounds(len(faults), workers)
	gens := make([]*Generator, workers)
	shardResults := make([][]FaultResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		g := master.Fork()
		if settle != nil {
			g.OnSettle = func(r FaultResult) {
				settleMu.Lock()
				defer settleMu.Unlock()
				settle(r)
			}
		}
		if x != nil {
			id := w
			g.OnPattern = func(p pattern.Pair) { x.publish(id, p) }
			g.ImportPatterns = func() []pattern.Pair { return x.fetch(id) }
		}
		gens[w] = g
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shardResults[w] = gens[w].Run(ctx, faults[bounds[w]:bounds[w+1]])
		}(w)
	}
	wg.Wait()

	// Merge: append the worker test sets in shard order, remap the worker-
	// local pattern indices to the merged set, and reassemble the results in
	// fault input order.
	results := make([]FaultResult, len(faults))
	var foreignDropped []int
	for w := 0; w < workers; w++ {
		base := master.Absorb(gens[w])
		for i, r := range shardResults[w] {
			if r.PatternIndex >= 0 {
				r.PatternIndex += base
			} else if r.Status == DetectedBySim {
				foreignDropped = append(foreignDropped, bounds[w]+i)
			}
			results[bounds[w]+i] = r
		}
	}

	// Faults dropped by a foreign worker's pattern carry no index yet: find
	// the first detecting pattern in the merged set.
	if len(foreignDropped) > 0 {
		dropped := make([]paths.Fault, len(foreignDropped))
		for i, idx := range foreignDropped {
			dropped[i] = results[idx].Fault
		}
		sim, err := faultsim.Run(master.c, master.testSet.Pairs, dropped,
			master.opts.Mode == sensitize.Robust)
		if err == nil {
			for i, idx := range foreignDropped {
				results[idx].PatternIndex = sim.DetectedBy[i]
			}
		}
	}

	// Static compaction of the merged set, once, after the deterministic
	// merge (skipped when the run was cut short: a canceled run should
	// return promptly, and its test set is not final anyway).
	if ctx.Err() == nil {
		master.compactRun(faults, results, base)
	}
	return results
}

// shardBounds splits n faults into workers contiguous shards of near-equal
// size: bounds[w]..bounds[w+1] is worker w's shard.
func shardBounds(n, workers int) []int {
	bounds := make([]int, workers+1)
	per, extra := n/workers, n%workers
	for w := 0; w < workers; w++ {
		size := per
		if w < extra {
			size++
		}
		bounds[w+1] = bounds[w] + size
	}
	return bounds
}

// exchange is the cross-worker pattern buffer: every worker publishes its
// verified patterns and periodically fetches the patterns the other workers
// published since its last fetch, so DetectedBySim drops happen across
// shards.
type exchange struct {
	mu      sync.Mutex
	entries []exchangeEntry
	cursors []int
}

type exchangeEntry struct {
	from int
	pair pattern.Pair
}

func newExchange(workers int) *exchange {
	return &exchange{cursors: make([]int, workers)}
}

func (x *exchange) publish(from int, p pattern.Pair) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.entries = append(x.entries, exchangeEntry{from: from, pair: p})
}

// fetch returns the patterns published by other workers since worker w's
// previous fetch.
func (x *exchange) fetch(w int) []pattern.Pair {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []pattern.Pair
	for _, e := range x.entries[x.cursors[w]:] {
		if e.from != w {
			out = append(out, e.pair)
		}
	}
	x.cursors[w] = len(x.entries)
	return out
}
