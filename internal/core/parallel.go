package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sensitize"
	"repro/internal/testability"
)

// RunSharded generates tests for the faults like Generator.Run, but spreads
// the work across workers goroutines, multiplying the paper's word-level bit
// parallelism by core-level parallelism.  Each worker is a Fork of master —
// an independent generator over the shared immutable circuit — consuming
// work units (word-parallel fault groups) from a shared scheduler
// (internal/sched).  Under Options.Schedule == sched.Static every worker
// drains one contiguous pre-assigned run of units, reproducing the classic
// contiguous shard split; under sched.Steal an idle worker steals queued
// units from the most loaded peer, so clustered hard faults no longer
// serialize on one worker.  With Options.EscalationWidth the scheduler runs
// the two passes of adaptive grouping: a cheap fault-serial pass over every
// fault, then wide word-parallel groups for the survivors.  When the
// interleaved fault simulation is enabled, workers exchange their verified
// patterns through a shared buffer, so a pattern emitted by one worker still
// drops detected faults on the others.
//
// The merged result slice is deterministic and input-ordered: result i
// belongs to faults[i].  Pattern indices refer to the merged test set, which
// is reassembled in canonical fault order — the pattern of a Tested fault
// appears at the position its fault's input index dictates, regardless of
// which worker generated it or in which order — so the merged set does not
// depend on the dispatch policy or the steal interleaving.  Faults dropped
// by a foreign worker's pattern get the index of the first pattern of the
// merged set that detects them.  master's OnSettle callback is invoked as
// faults settle, serialized by a mutex but in a nondeterministic
// interleaving across workers; its OnPattern and ImportPatterns hooks are
// not used.  Statistics are summed over the workers, so the time fields
// report aggregate CPU time rather than wall-clock time.
//
// When Options.Compaction is enabled, the merged test set of the run is
// statically compacted once after the deterministic merge (reverse-order
// fault simulation and, at compact.Full, compatible-pair merging), and the
// PatternIndex of every covered fault is remapped onto the compacted set.
// Compaction applies equally to the workers <= 1 path, so the sequential
// and sharded engines stay comparable.
//
// With workers <= 1 (or a single fault) the call is exactly master.Run.
// master must not be used concurrently with RunSharded.
func RunSharded(ctx context.Context, master *Generator, faults []paths.Fault, workers int) []FaultResult {
	if workers > len(faults) {
		workers = len(faults)
	}
	base := master.testSet.Len()
	if workers <= 1 {
		results := master.Run(ctx, faults)
		if ctx == nil || ctx.Err() == nil {
			master.compactRun(faults, results, base)
		}
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var settleMu sync.Mutex
	settle := master.OnSettle

	var x *exchange
	if master.opts.FaultSimInterval > 0 {
		x = newExchange(workers)
	}

	gens := make([]*Generator, workers)
	for w := 0; w < workers; w++ {
		g := master.Fork()
		if settle != nil {
			g.OnSettle = func(r FaultResult) {
				settleMu.Lock()
				defer settleMu.Unlock()
				settle(r)
			}
		}
		if x != nil {
			id := w
			g.OnPattern = func(p pattern.Pair) { x.publish(id, p) }
			g.ImportPatterns = func() []pattern.Pair { return x.fetch(id) }
		}
		gens[w] = g
	}

	results, recs := newRecs(faults)
	master.stats.Faults += len(faults)

	master.runPasses(recs, func(units []sched.Unit, ps PassSpec) {
		sc := sched.New(master.opts.Schedule, workers)
		sc.Load(units)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := gens[w]
				start := time.Now()
				sensAtStart := g.stats.SensitizeTime
				g.consume(ctx, sc, w, recs, ps)
				g.stats.GenerateTime += time.Since(start) - (g.stats.SensitizeTime - sensAtStart)
			}(w)
		}
		wg.Wait()
		master.stats.Sched.Add(sc.Stats())
	})

	master.finish(ctx, recs)
	mergeResults(master, gens, recs, results)
	master.reconcileDrops(results)

	// Static compaction of the merged set, once, after the deterministic
	// merge (skipped when the run was cut short: a canceled run should
	// return promptly, and its test set is not final anyway).
	if ctx.Err() == nil {
		master.compactRun(faults, results, base)
	}
	return results
}

// runPasses executes the pass sequence the options select — one fixed-width
// pass, or the cheap fault-serial pass plus the wide escalation pass of
// adaptive grouping — over the records.  For each pass it groups the
// still-pending faults into work units and hands them to drain together with
// the pass spec; drain owns the dispatch (a local scheduler, or the lease
// queue of a distributed run) and must not return before every unit of the
// pass has been fully processed.  Escalation counters accumulate into the
// master's stats.
//
// With Options.GuidedEscalation the passes are testability-guided: every
// fault is scored up front (testability.FaultScore on the circuit's cached
// measures), predicted-hard faults skip the cheap first pass and enter the
// wide pass directly, each pass processes its faults hardest first in
// cost-weighted units, and — when no explicit EscalationWidth is set — the
// escalation width is derived from the size of the predicted-hard tail.
// Guidance only routes and orders work: which searches run, under which
// budgets and at which widths is decided by the same pass specs, so its
// effect is wall-clock, not coverage (see docs/ARCHITECTURE.md).
func (g *Generator) runPasses(recs []*rec, drain func(units []sched.Unit, ps PassSpec)) {
	opts := g.opts
	passes := opts.passes()

	// Guided routing: score the targets once and flag the hard tail.
	var hard []bool
	var scores []int
	if opts.GuidedEscalation && len(passes) > 1 {
		hard, scores = g.predictHard(recs)
		nHard := 0
		for _, h := range hard {
			if h {
				nHard++
			}
		}
		g.stats.PredictedHard += nHard
		if opts.EscalationWidth == 0 {
			passes[len(passes)-1].Width = testability.AutoWidth(nHard)
		}
	}

	var firstPass []int
	for pi := range passes {
		ps := passes[pi]
		idx := make([]int, 0, len(recs))
		for i, r := range recs {
			if r.res.Status != Pending {
				continue
			}
			if !ps.Final && hard != nil && hard[i] {
				continue // predicted hard: no cheap pass, escalate directly
			}
			idx = append(idx, i)
		}
		if pi == 0 && len(passes) > 1 {
			firstPass = idx
		}
		if pi > 0 {
			settled := 0
			for _, i := range firstPass {
				if recs[i].res.Status != Pending {
					settled++
				}
			}
			g.stats.FirstPassSettled += settled
			g.stats.Escalated += len(idx)
		}
		if len(idx) == 0 {
			continue
		}
		if scores != nil {
			sortHardestFirst(idx, scores)
		}
		units := sched.Group(idx, ps.Width)
		if scores != nil {
			for ui := range units {
				cost := 0
				for _, fi := range units[ui].Faults {
					// The +1 keeps zero-score faults from producing weightless
					// units the balancing split cannot account.
					cost += 1 + scores[fi]
				}
				units[ui].Cost = cost
			}
		}
		drain(units, ps)
	}
}

// predictHard scores every target fault with the circuit's cached
// testability measures and flags the ones above the hardness threshold
// (twice the median score of this fault population).
func (g *Generator) predictHard(recs []*rec) (hard []bool, scores []int) {
	scores = make([]int, len(recs))
	for i, r := range recs {
		scores[i] = g.tm.FaultScore(g.c, r.fault, g.opts.Mode)
	}
	thr := testability.HardThreshold(scores)
	hard = make([]bool, len(recs))
	for i, s := range scores {
		hard[i] = s > thr
	}
	return hard, scores
}

// sortHardestFirst orders the fault indices by descending score, ties by
// ascending input index: hard faults start (and finish) first, so the
// stealing scheduler rebalances a genuine tail instead of discovering the
// hard cluster last, and the order is a pure function of the scores.
func sortHardestFirst(idx []int, scores []int) {
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

// mergeResults reassembles the workers' output on the master, in canonical
// fault order: walking the results by fault input index, every Tested
// fault's pattern is appended to the master set (so the merged set's order
// is a pure function of the per-fault outcomes, independent of the dispatch
// interleaving), and the worker-local PatternIndex of every covered fault is
// remapped onto the merged set.  Cross-worker simulation drops keep index -1
// here and are reconciled by reconcileDrops.  Worker statistics and
// learned redundant subpaths are absorbed into the master.
//
//atpgvet:deterministic
func mergeResults(master *Generator, gens []*Generator, recs []*rec, results []FaultResult) {
	type patKey struct{ worker, index int }
	remap := make(map[patKey]int)
	for i := range results {
		r := &results[i]
		if r.Status == Tested && r.PatternIndex >= 0 {
			k := patKey{recs[i].worker, r.PatternIndex}
			mi := master.testSet.AddFrom(gens[k.worker].testSet, k.index)
			remap[k] = mi
			r.PatternIndex = mi
		}
	}
	for i := range results {
		r := &results[i]
		if r.Status != DetectedBySim || r.PatternIndex < 0 {
			continue
		}
		if mi, ok := remap[patKey{recs[i].worker, r.PatternIndex}]; ok {
			r.PatternIndex = mi
		} else {
			// Unreachable while every worker pattern belongs to a Tested
			// fault; fail safe to the foreign-drop reconciliation.
			r.PatternIndex = -1
		}
	}
	for _, g := range gens {
		master.absorbState(g)
	}
	// Merged patterns are final results of a completed run: they must not be
	// re-simulated by a later sequential Run on master.
	master.lastSimmed = master.testSet.Len()
	master.newPatterns = 0
}

// reconcileDrops resolves the classifications that depend on the run's
// final test set, with one parallel-pattern simulation pass:
//
//   - Faults dropped by a foreign worker's pattern carry no index into any
//     worker-local set; they get the index of the first pattern of the
//     merged set that detects them.
//
//   - While the interleaved simulation is active, faults the search proved
//     Redundant but the final set demonstrably detects are reported
//     DetectedBySim.  The two classifications can genuinely coexist: the
//     search's sensitization conditions under-approximate the simulator's
//     detection criterion (e.g. XOR-rich paths, where the search fixes the
//     transition polarity along the path while the simulator accepts any
//     polarity), so whether such a fault was dropped or searched first used
//     to depend on pattern arrival order — across workers, a race.  Anchoring
//     the class to the final set makes the outcome independent of the
//     dispatch interleaving; the evidence (a concrete detecting pattern)
//     takes precedence over the narrower proof.  OnSettle may have reported
//     such a fault Redundant when it settled; the returned results are the
//     authoritative classification, as with the post-settle pattern-index
//     remapping of compaction.
func (g *Generator) reconcileDrops(results []FaultResult) {
	var idx []int
	for i := range results {
		switch {
		case results[i].Status == DetectedBySim && results[i].PatternIndex < 0:
			idx = append(idx, i)
		case results[i].Status == Redundant && g.opts.FaultSimInterval > 0:
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 || g.testSet.Len() == 0 {
		return
	}
	checked := make([]paths.Fault, len(idx))
	for i, j := range idx {
		checked[i] = results[j].Fault
	}
	sim, err := faultsim.Run(g.c, g.testSet.Pairs, checked,
		g.opts.Mode == sensitize.Robust)
	if err != nil {
		return
	}
	for i, j := range idx {
		r := &results[j]
		if r.Status == Redundant {
			if sim.DetectedBy[i] >= 0 {
				r.Status = DetectedBySim
				r.Phase = PhaseSimulation
				r.PatternIndex = sim.DetectedBy[i]
				g.stats.Redundant--
				g.stats.DetectedBySim++
			}
			continue
		}
		r.PatternIndex = sim.DetectedBy[i]
	}
}

// exchange is the cross-worker pattern buffer: every worker publishes its
// verified patterns and periodically fetches the patterns the other workers
// published since its last fetch, so DetectedBySim drops happen across
// workers regardless of the dispatch policy.
type exchange struct {
	mu      sync.Mutex
	entries []exchangeEntry
	cursors []int
}

type exchangeEntry struct {
	from int
	pair pattern.Pair
}

func newExchange(workers int) *exchange {
	return &exchange{cursors: make([]int, workers)}
}

func (x *exchange) publish(from int, p pattern.Pair) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.entries = append(x.entries, exchangeEntry{from: from, pair: p})
}

// fetch returns the patterns published by other workers since worker w's
// previous fetch.
func (x *exchange) fetch(w int) []pattern.Pair {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []pattern.Pair
	for _, e := range x.entries[x.cursors[w]:] {
		if e.from != w {
			out = append(out, e.pair)
		}
	}
	x.cursors[w] = len(x.entries)
	return out
}
