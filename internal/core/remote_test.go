package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/compact"
	"repro/internal/paths"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// dispatchInProcess runs a RemoteRun with an in-process transport: workers
// goroutines over forked generators pull whole units from a channel, process
// them with ProcessRemoteUnit, exchange verified patterns through the same
// exchange buffer the local sharded engine uses, and apply outcomes and
// effort deltas back onto the run.  It is the loopback model of the service
// coordinator/worker pair, minus HTTP.
func dispatchInProcess(ctx context.Context, rr *RemoteRun, master *Generator, faults []paths.Fault, workers int) []FaultResult {
	wks := make([]*Generator, workers)
	for i := range wks {
		wks[i] = master.Fork()
	}
	x := newExchange(workers)
	published := make([]int, workers) // per-worker test-set length already published
	return rr.Run(ctx, func(units []sched.Unit, spec PassSpec) {
		ch := make(chan sched.Unit)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				g := wks[w]
				for u := range ch {
					ufaults := make([]paths.Fault, len(u.Faults))
					for i, fi := range u.Faults {
						ufaults[i] = faults[fi]
					}
					prev := g.Stats()
					outs := g.ProcessRemoteUnit(ctx, ufaults, spec, x.fetch(w))
					for _, p := range g.TestSet().Pairs[published[w]:] {
						x.publish(w, p)
					}
					published[w] = g.TestSet().Len()
					rr.Apply(u.Faults, outs)
					rr.AddEffort(g.Stats().EffortDelta(prev))
				}
			}(w)
		}
		for _, u := range units {
			ch <- u
		}
		close(ch)
		wg.Wait()
	})
}

// TestRemoteRunMatchesLocal is the distributed counterpart of
// TestShardedMatchesSequential: a RemoteRun dispatched to in-process remote
// workers must classify every fault like the local sharded engine with the
// same options.  With the interleaved simulation off, unit outcomes are pure
// per-fault functions, so statuses, pattern indices, the serialized test set
// and the deterministic statistics must all be bit-identical; with it on,
// outcomes depend on pattern arrival order, so — as across local workers —
// the coverage class and the redundancy proofs must match.
func TestRemoteRunMatchesLocal(t *testing.T) {
	for _, name := range []string{"c17", "paper", "redundant", "adder8", "c432"} {
		c, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		faults := paths.EnumerateFaults(c, 0)
		if len(faults) > 256 {
			faults = paths.SampleFaults(c, 256, 1995)
		}
		for _, simInterval := range []int{0, 8} {
			opts := DefaultOptions(sensitize.Robust)
			opts.FaultSimInterval = simInterval
			opts.Schedule = sched.Steal
			opts.EscalationWidth = 8
			opts.Compaction = compact.Reverse

			local := New(c, opts)
			want := RunSharded(context.Background(), local, faults, 2)

			master := New(c, opts)
			rr := NewRemoteRun(master, faults)
			got := dispatchInProcess(context.Background(), rr, master, faults, 2)

			if len(got) != len(want) {
				t.Fatalf("%s sim=%d: %d remote results for %d faults", name, simInterval, len(got), len(faults))
			}
			for i := range got {
				if simInterval == 0 {
					if got[i].Status != want[i].Status {
						t.Errorf("%s sim=0: fault %s is %v remote, %v local",
							name, got[i].Fault.Key(), got[i].Status, want[i].Status)
					}
					if got[i].PatternIndex != want[i].PatternIndex {
						t.Errorf("%s sim=0: fault %s pattern index %d remote, %d local",
							name, got[i].Fault.Key(), got[i].PatternIndex, want[i].PatternIndex)
					}
				} else if classOf(got[i].Status) != classOf(want[i].Status) {
					t.Errorf("%s sim=%d: fault %s is %v remote, %v local (coverage class moved)",
						name, simInterval, got[i].Fault.Key(), got[i].Status, want[i].Status)
				}
			}
			if simInterval == 0 {
				var lb, rb strings.Builder
				if err := local.TestSet().Write(&lb); err != nil {
					t.Fatal(err)
				}
				if err := master.TestSet().Write(&rb); err != nil {
					t.Fatal(err)
				}
				if lb.String() != rb.String() {
					t.Errorf("%s sim=0: merged test sets differ:\nlocal:\n%s\nremote:\n%s",
						name, lb.String(), rb.String())
				}
				ls, rs := local.Stats(), master.Stats()
				if ls.Tested != rs.Tested || ls.Redundant != rs.Redundant ||
					ls.Aborted != rs.Aborted || ls.Patterns != rs.Patterns ||
					ls.Decisions != rs.Decisions || ls.Backtracks != rs.Backtracks {
					t.Errorf("%s sim=0: stats differ: local %+v remote %+v", name, ls, rs)
				}
			}
			if lc, rc := local.Stats().Coverage(), master.Stats().Coverage(); lc != rc {
				t.Errorf("%s sim=%d: coverage %v remote, %v local", name, simInterval, rc, lc)
			}
		}
	}
}

// TestRemoteApplyDuplicateIsNoop models the at-least-once path: a unit whose
// lease timed out is processed by a second worker, and the first worker's
// result still arrives.  Applying the same outcomes twice must not change
// any result, statistic or the merged test set.
func TestRemoteApplyDuplicateIsNoop(t *testing.T) {
	c, err := bench.Get("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	opts := DefaultOptions(sensitize.Robust)
	opts.FaultSimInterval = 0

	master := New(c, opts)
	rr := NewRemoteRun(master, faults)
	results := rr.Run(context.Background(), func(units []sched.Unit, spec PassSpec) {
		wk := master.Fork()
		for _, u := range units {
			ufaults := make([]paths.Fault, len(u.Faults))
			for i, fi := range u.Faults {
				ufaults[i] = faults[fi]
			}
			outs := wk.ProcessRemoteUnit(context.Background(), ufaults, spec, nil)
			if settled := rr.Apply(u.Faults, outs); len(settled) == 0 {
				t.Errorf("unit %v settled no faults", u.Faults)
			}
			// The duplicate: same unit, same outcomes, must settle nothing.
			if settled := rr.Apply(u.Faults, outs); len(settled) != 0 {
				t.Errorf("duplicate apply settled %v", settled)
			}
		}
	})
	st := master.Stats()
	if st.Tested+st.Redundant+st.Aborted+st.DetectedBySim != len(faults) {
		t.Errorf("classifications sum to %d, want %d (duplicate apply double-counted)",
			st.Tested+st.Redundant+st.Aborted+st.DetectedBySim, len(faults))
	}
	if st.Patterns != st.Tested || master.TestSet().Len() != st.Tested {
		t.Errorf("patterns=%d set=%d tested=%d: merged set inconsistent",
			st.Patterns, master.TestSet().Len(), st.Tested)
	}
	seq := New(c, opts)
	want := seq.Run(context.Background(), faults)
	for i := range results {
		if results[i].Status != want[i].Status {
			t.Errorf("fault %s: %v remote, %v sequential", results[i].Fault.Key(), results[i].Status, want[i].Status)
		}
	}
}

// TestRemoteRunCanceled checks cancellation: a run whose context dies
// mid-pass must stop dispatching, mark every unsettled fault Aborted with
// the cancellation cause, and skip compaction.
func TestRemoteRunCanceled(t *testing.T) {
	c, err := bench.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.SampleFaults(c, 64, 1995)
	opts := DefaultOptions(sensitize.Robust)
	opts.FaultSimInterval = 0
	opts.WordWidth = 8 // several units per pass, so the cancel lands mid-pass

	ctx, cancel := context.WithCancel(context.Background())
	master := New(c, opts)
	rr := NewRemoteRun(master, faults)
	applied := 0
	results := rr.Run(ctx, func(units []sched.Unit, spec PassSpec) {
		wk := master.Fork()
		for i, u := range units {
			if i == 2 {
				cancel() // the coordinator lost the job mid-pass
				return
			}
			ufaults := make([]paths.Fault, len(u.Faults))
			for j, fi := range u.Faults {
				ufaults[j] = faults[fi]
			}
			rr.Apply(u.Faults, wk.ProcessRemoteUnit(ctx, ufaults, spec, nil))
			applied += len(u.Faults)
		}
	})
	if applied == 0 {
		t.Fatal("no units applied before cancellation")
	}
	aborted := 0
	for i := range results {
		if results[i].Status == Pending {
			t.Errorf("fault %s still pending after canceled run", results[i].Fault.Key())
		}
		if results[i].Status == Aborted && results[i].Err != nil {
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("canceled run reported no fault with a cancellation cause")
	}
}

// TestImportRemoteRun checks the client-side fold: importing a finished
// remote run into a fresh generator must reproduce the coordinator's test
// set, rebased pattern indices and statistics.
func TestImportRemoteRun(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	opts := DefaultOptions(sensitize.Robust)
	opts.FaultSimInterval = 0

	master := New(c, opts)
	rr := NewRemoteRun(master, faults)
	results := dispatchInProcess(context.Background(), rr, master, faults, 2)

	client := New(c, opts)
	imported := client.ImportRemoteRun(results, master.TestSet(), master.Stats())
	if client.TestSet().Len() != master.TestSet().Len() {
		t.Fatalf("client set has %d pairs, coordinator %d", client.TestSet().Len(), master.TestSet().Len())
	}
	for i := range imported {
		if imported[i].Status != results[i].Status {
			t.Errorf("fault %s: status changed on import", imported[i].Fault.Key())
		}
		if results[i].PatternIndex >= 0 && imported[i].PatternIndex != results[i].PatternIndex {
			t.Errorf("fault %s: index %d imported, %d original (empty client set: rebase must be identity)",
				imported[i].Fault.Key(), imported[i].PatternIndex, results[i].PatternIndex)
		}
	}
	if client.Stats().Tested != master.Stats().Tested {
		t.Errorf("imported stats tested=%d, want %d", client.Stats().Tested, master.Stats().Tested)
	}
	// A second import on a non-empty set must rebase the indices.
	again := client.ImportRemoteRun(results, master.TestSet(), master.Stats())
	base := master.TestSet().Len()
	for i := range again {
		if results[i].PatternIndex >= 0 && again[i].PatternIndex != results[i].PatternIndex+base {
			t.Errorf("fault %s: second import index %d, want %d",
				again[i].Fault.Key(), again[i].PatternIndex, results[i].PatternIndex+base)
		}
	}
}
