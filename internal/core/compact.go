package core

import (
	"repro/internal/compact"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// compactRun statically compacts the patterns this run appended to the test
// set (indices base and up) against the run's fault list, when the options
// ask for it: compatible-pair merging and/or reverse-order fault
// simulation, followed by a PatternIndex remap of the run's results onto
// the compacted set.  Earlier runs' patterns are never touched — their
// faults are not in scope, so dropping or merging them could lose coverage.
//
// Compaction is coverage-exact (see internal/compact): the compacted set
// detects exactly the faults of this run the uncompacted set detected, so
// every result with a Detected() status keeps a valid detecting pattern.
// The Test field of a Tested result still holds the pattern as generated,
// which after merging is subsumed by (but no longer literally present in)
// the set; PatternIndex always points at a pattern of the compacted set
// that detects the fault.
func (g *Generator) compactRun(faults []paths.Fault, results []FaultResult, base int) {
	if g.opts.Compaction == compact.None || g.testSet.Len()-base < 2 {
		return
	}
	robust := g.opts.Mode == sensitize.Robust
	sub := g.testSet.Slice(base)
	compacted, st, err := compact.Compact(g.c, sub, faults, robust, g.opts.Compaction, g.opts.CompactionXFill)
	if err != nil {
		return
	}
	g.stats.Compaction.Add(st)
	if st.PairsAfter >= st.PairsBefore {
		return
	}
	g.testSet.Truncate(base)
	g.testSet.Append(compacted)
	// Patterns already in the set are final: later sequential runs on this
	// generator must not re-simulate them.
	g.lastSimmed = g.testSet.Len()
	g.newPatterns = 0

	// Remap the run's pattern indices onto the compacted set.  One more
	// parallel-pattern pass; detection of every covered fault is guaranteed,
	// so a miss (only possible with VerifyTests off and a pattern that never
	// detected its fault) or a simulation error must not leave an index
	// pointing into the replaced window — those fail safe to -1.  Indices
	// below base (an earlier run's pattern, untouched by this compaction)
	// stay valid and are kept.
	sim, simErr := faultsim.Run(g.c, compacted.Pairs, faults, robust)
	for i := range results {
		if !results[i].Status.Detected() {
			continue
		}
		switch {
		case simErr == nil && sim.DetectedBy[i] >= 0:
			results[i].PatternIndex = base + sim.DetectedBy[i]
		case results[i].PatternIndex >= base:
			results[i].PatternIndex = -1
		}
	}
}
