package core

import (
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/paths"
)

// prefixKey incrementally builds the map key of a path prefix together with
// the launch transition, so faults can be matched against recorded redundant
// subpaths in a single pass over their nets.
type prefixKey struct {
	sb strings.Builder
}

func prefixKeyBuilder(t paths.Transition) *prefixKey {
	k := &prefixKey{}
	k.sb.WriteString(t.String())
	return k
}

func (k *prefixKey) add(net circuit.NetID) {
	k.sb.WriteByte('.')
	k.sb.WriteString(strconv.Itoa(int(net)))
}

func (k *prefixKey) String() string { return k.sb.String() }
