package core

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

// TestTrailFramesClosedAfterRun guards the runAPTPG unwind: every exit from
// the decision search (test found, redundancy proof, budget exhaustion)
// must close the trail frames it opened.  A leaked frame makes a later
// backtrack restore another fault's state, which surfaces as an equivalence
// failure far from the cause.
func TestTrailFramesClosedAfterRun(t *testing.T) {
	circuits := []*circuit.Circuit{bench.C17(), bench.PaperExample(), bench.Comparator(3)}
	for _, c := range circuits {
		// A budget of 1 forces the budget-exhaustion early return, the exit
		// path most likely to leave frames open.
		for _, budget := range []int{1, 8} {
			opts := DefaultOptions(sensitize.Nonrobust)
			opts.MaxBacktracks = budget
			// Skip the FPTPG group phase: on circuits this small it settles
			// every fault, and the APTPG decision search — the only code
			// that opens trail frames — would never run.
			opts.UseFPTPG = false
			g := New(c, opts)
			g.Run(context.Background(), paths.EnumerateFaults(c, 0))
			if d := g.st.Depth(); d != 0 {
				t.Errorf("%s (budget %d): %d trail frames still open after Run", c.Name, budget, d)
			}
		}
	}
}
