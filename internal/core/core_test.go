package core

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

// runAll generates tests for every fault of the circuit with the given
// options and performs consistency checks on the results: statuses add up,
// every generated pattern really detects its fault, and every fault dropped
// by the interleaved simulation really is covered by the test set.
func runAll(t *testing.T, c *circuit.Circuit, opts Options) (*Generator, []FaultResult) {
	t.Helper()
	faults := paths.EnumerateFaults(c, 0)
	g := New(c, opts)
	results := g.Run(context.Background(), faults)
	if len(results) != len(faults) {
		t.Fatalf("%s: %d results for %d faults", c.Name, len(results), len(faults))
	}
	st := g.Stats()
	if st.Faults != len(faults) {
		t.Errorf("%s: stats.Faults = %d, want %d", c.Name, st.Faults, len(faults))
	}
	counted := map[Status]int{}
	for _, r := range results {
		counted[r.Status]++
		if r.Status == Pending {
			t.Errorf("%s: fault %s left pending", c.Name, r.Fault.Describe(c))
		}
		if r.Status == Tested {
			if r.PatternIndex < 0 || r.PatternIndex >= g.TestSet().Len() {
				t.Errorf("%s: tested fault %s has bad pattern index %d", c.Name, r.Fault.Describe(c), r.PatternIndex)
			}
		}
	}
	if counted[Tested] != st.Tested || counted[Redundant] != st.Redundant ||
		counted[Aborted] != st.Aborted || counted[DetectedBySim] != st.DetectedBySim {
		t.Errorf("%s: stats %+v disagree with per-fault statuses %v", c.Name, st, counted)
	}
	if st.Tested != g.TestSet().Len() {
		t.Errorf("%s: %d tested faults but %d patterns", c.Name, st.Tested, g.TestSet().Len())
	}
	robust := opts.Mode == sensitize.Robust
	for _, r := range results {
		if r.Status != Tested {
			continue
		}
		res, err := faultsim.Run(c, []pattern.Pair{r.Test}, []paths.Fault{r.Fault}, robust)
		if err != nil {
			t.Fatalf("fault simulation: %v", err)
		}
		if !res.Detected[0] {
			t.Errorf("%s: generated pattern %s does not detect %s (%s)",
				c.Name, r.Test, r.Fault.Describe(c), opts.Mode)
		}
	}
	var simFaults []paths.Fault
	for _, r := range results {
		if r.Status == DetectedBySim {
			simFaults = append(simFaults, r.Fault)
		}
	}
	if len(simFaults) > 0 {
		res, err := faultsim.Run(c, g.TestSet().Pairs, simFaults, robust)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range res.Detected {
			if !d {
				t.Errorf("%s: fault %s marked detected-by-simulation but the test set misses it",
					c.Name, simFaults[i].Describe(c))
			}
		}
	}
	return g, results
}

func detectedCount(results []FaultResult) int {
	n := 0
	for _, r := range results {
		if r.Status.Detected() {
			n++
		}
	}
	return n
}

func abortedCount(results []FaultResult) int {
	n := 0
	for _, r := range results {
		if r.Status == Aborted {
			n++
		}
	}
	return n
}

func TestC17FullATPG(t *testing.T) {
	c := bench.C17()
	for _, mode := range []sensitize.Mode{sensitize.Nonrobust, sensitize.Robust} {
		g, results := runAll(t, c, DefaultOptions(mode))
		if n := abortedCount(results); n != 0 {
			t.Errorf("%s: %d aborted faults on c17", mode, n)
		}
		if detectedCount(results) == 0 {
			t.Errorf("%s: no faults detected on c17", mode)
		}
		if g.Stats().Efficiency() != 100 {
			t.Errorf("%s: efficiency %.2f%% on c17, want 100%%", mode, g.Stats().Efficiency())
		}
	}
}

func TestSmallCircuitsFullATPG(t *testing.T) {
	circuits := []*circuit.Circuit{
		bench.PaperExample(),
		bench.RedundantExample(),
		bench.Adder(3),
		bench.MuxTree(2),
		bench.Comparator(3),
		bench.ParityTree(4),
	}
	for _, c := range circuits {
		for _, mode := range []sensitize.Mode{sensitize.Nonrobust, sensitize.Robust} {
			_, results := runAll(t, c, DefaultOptions(mode))
			if n := abortedCount(results); n != 0 {
				t.Errorf("%s/%s: %d aborted faults", c.Name, mode, n)
			}
		}
	}
}

// TestNonrobustCoversRobust: a fault detectable robustly is also detectable
// nonrobustly, so with complete (abort-free) runs the nonrobust detected
// count is at least the robust one.
func TestNonrobustCoversRobust(t *testing.T) {
	for _, c := range []*circuit.Circuit{bench.C17(), bench.PaperExample(), bench.Adder(3)} {
		_, robust := runAll(t, c, DefaultOptions(sensitize.Robust))
		_, nonrobust := runAll(t, c, DefaultOptions(sensitize.Nonrobust))
		if abortedCount(robust) != 0 || abortedCount(nonrobust) != 0 {
			t.Fatalf("%s: unexpected aborts", c.Name)
		}
		if detectedCount(nonrobust) < detectedCount(robust) {
			t.Errorf("%s: nonrobust detects %d faults, robust detects %d — containment violated",
				c.Name, detectedCount(nonrobust), detectedCount(robust))
		}
	}
}

// TestSingleBitEquivalence: the single-bit baseline restricts the word width
// but explores the same search space, so on small circuits (no aborts) it
// must classify exactly the same faults as detected and as redundant.
func TestSingleBitEquivalence(t *testing.T) {
	circuits := []*circuit.Circuit{bench.C17(), bench.PaperExample(), bench.RedundantExample(), bench.Adder(3)}
	for _, c := range circuits {
		for _, mode := range []sensitize.Mode{sensitize.Nonrobust, sensitize.Robust} {
			_, parallel := runAll(t, c, DefaultOptions(mode))
			_, single := runAll(t, c, SingleBitOptions(mode))
			if abortedCount(parallel) != 0 || abortedCount(single) != 0 {
				t.Fatalf("%s/%s: unexpected aborts", c.Name, mode)
			}
			for i := range parallel {
				pDet := parallel[i].Status.Detected()
				sDet := single[i].Status.Detected()
				if pDet != sDet {
					t.Errorf("%s/%s: fault %s detected=%v in parallel but %v in single-bit",
						c.Name, mode, parallel[i].Fault.Describe(c), pDet, sDet)
				}
				pRed := parallel[i].Status == Redundant
				sRed := single[i].Status == Redundant
				if pRed != sRed {
					t.Errorf("%s/%s: fault %s redundant=%v in parallel but %v in single-bit",
						c.Name, mode, parallel[i].Fault.Describe(c), pRed, sRed)
				}
			}
		}
	}
}

// TestRedundantExampleIdentifiesRedundancy: every path through gate g2 of
// the redundant example (g2 = a AND NOT a AND b, a constant 0) is robustly
// unsensitizable and must be classified Redundant (not Aborted).  Nonrobust
// tests for some of these paths exist (a static hazard on g2 can expose the
// fault when other delays cooperate), so the check applies to robust mode.
func TestRedundantExampleIdentifiesRedundancy(t *testing.T) {
	c := bench.RedundantExample()
	g2 := c.NetByName("g2")
	_, results := runAll(t, c, DefaultOptions(sensitize.Robust))
	for _, r := range results {
		throughG2 := false
		for _, n := range r.Fault.Path.Nets {
			if n == g2 {
				throughG2 = true
			}
		}
		if throughG2 && r.Status != Redundant {
			t.Errorf("fault %s through g2 should be robustly redundant, got %v", r.Fault.Describe(c), r.Status)
		}
		if !throughG2 && r.Status == Aborted {
			t.Errorf("fault %s should not be aborted", r.Fault.Describe(c))
		}
	}
}

// TestFigure1FPTPG replays the FPTPG walk-through of Figure 1: the four
// paths b-p-x, b-q-s-x, c-r-s-x and c-r-s-y of the example circuit are
// processed in one fault-parallel group (plus APTPG for any level that needs
// backtracking) and each is classified as tested or redundant, with path
// b-p-x testable.
func TestFigure1FPTPG(t *testing.T) {
	c := bench.PaperExample()
	byName := func(names ...string) paths.Path {
		nets := make([]circuit.NetID, len(names))
		for i, n := range names {
			nets[i] = c.NetByName(n)
		}
		return paths.Path{Nets: nets}
	}
	faults := []paths.Fault{
		{Path: byName("b", "p", "x"), Transition: paths.Rising},
		{Path: byName("b", "q", "s", "x"), Transition: paths.Rising},
		{Path: byName("c", "r", "s", "x"), Transition: paths.Rising},
		{Path: byName("c", "r", "s", "y"), Transition: paths.Rising},
	}
	for _, f := range faults {
		if err := f.Path.Validate(c); err != nil {
			t.Fatalf("figure-1 path invalid: %v", err)
		}
	}
	g := New(c, DefaultOptions(sensitize.Nonrobust))
	results := g.Run(context.Background(), faults)
	for _, r := range results {
		if r.Status != Tested && r.Status != Redundant && r.Status != DetectedBySim {
			t.Errorf("fault %s ended as %v; FPTPG/APTPG should settle every figure-1 fault",
				r.Fault.Describe(c), r.Status)
		}
	}
	if !results[0].Status.Detected() {
		t.Errorf("path b-p-x should be testable, got %v", results[0].Status)
	}
	if g.Stats().FPTPGGroups == 0 {
		t.Error("the four faults should have been processed in at least one FPTPG group")
	}
}

// TestFigure2APTPG replays the APTPG walk-through of Figure 2: path a-p-x
// with a falling transition at a is handed directly to APTPG (FPTPG
// disabled) and a test is found by enumerating input alternatives.
func TestFigure2APTPG(t *testing.T) {
	c := bench.PaperExample()
	f := paths.Fault{
		Path:       paths.Path{Nets: []circuit.NetID{c.NetByName("a"), c.NetByName("p"), c.NetByName("x")}},
		Transition: paths.Falling,
	}
	if err := f.Path.Validate(c); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(sensitize.Nonrobust)
	opts.UseFPTPG = false
	g := New(c, opts)
	results := g.Run(context.Background(), []paths.Fault{f})
	if !results[0].Status.Detected() {
		t.Fatalf("path a-p-x (falling) should be testable, got %v", results[0].Status)
	}
	if g.Stats().APTPGFaults != 1 {
		t.Errorf("APTPGFaults = %d, want 1", g.Stats().APTPGFaults)
	}
}

// TestPhaseAblations: FPTPG-only and APTPG-only configurations still settle
// every fault of small circuits; the combined configuration never does
// worse than either.
func TestPhaseAblations(t *testing.T) {
	c := bench.C17()
	mode := sensitize.Nonrobust

	both := DefaultOptions(mode)
	fptpgOnly := DefaultOptions(mode)
	fptpgOnly.UseAPTPG = false
	aptpgOnly := DefaultOptions(mode)
	aptpgOnly.UseFPTPG = false

	_, rBoth := runAll(t, c, both)
	_, rA := runAll(t, c, aptpgOnly)
	gF := New(c, fptpgOnly)
	rF := gF.Run(context.Background(), paths.EnumerateFaults(c, 0))

	if detectedCount(rBoth) < detectedCount(rA) {
		t.Error("combined configuration should not detect fewer faults than APTPG-only")
	}
	// FPTPG-only may abort faults that need backtracking, but must never
	// misclassify: whatever it calls tested/redundant must agree with the
	// complete runs.
	for i := range rF {
		switch rF[i].Status {
		case Tested, DetectedBySim:
			if !rBoth[i].Status.Detected() {
				t.Errorf("FPTPG-only detected %s but the complete run did not", rF[i].Fault.Describe(c))
			}
		case Redundant:
			if rBoth[i].Status != Redundant {
				t.Errorf("FPTPG-only called %s redundant but the complete run says %v",
					rF[i].Fault.Describe(c), rBoth[i].Status)
			}
		}
	}

	neither := DefaultOptions(mode)
	neither.UseFPTPG = false
	neither.UseAPTPG = false
	gN := New(c, neither)
	rN := gN.Run(context.Background(), paths.EnumerateFaults(c, 4))
	for _, r := range rN {
		if r.Status != Aborted {
			t.Errorf("with both phases disabled every fault should abort, got %v", r.Status)
		}
	}
}

// TestWordWidthSweep: every word width from 1 to the multi-word maximum
// produces a complete and consistent classification on c17.
func TestWordWidthSweep(t *testing.T) {
	c := bench.C17()
	var reference []FaultResult
	for _, width := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		opts := DefaultOptions(sensitize.Robust)
		opts.WordWidth = width
		opts.FaultSimInterval = width
		_, results := runAll(t, c, opts)
		if abortedCount(results) != 0 {
			t.Fatalf("width %d: unexpected aborts", width)
		}
		if reference == nil {
			reference = results
			continue
		}
		for i := range results {
			if results[i].Status.Detected() != reference[i].Status.Detected() {
				t.Errorf("width %d: fault %s detection differs from width 1",
					width, results[i].Fault.Describe(c))
			}
		}
	}
}

// TestSubpathPruning: with pruning enabled, once one fault through the
// unsensitizable gate g2 is proved redundant, later faults sharing the
// prefix are classified by the pruning phase without a new search.
func TestSubpathPruning(t *testing.T) {
	c := bench.RedundantExample()
	opts := DefaultOptions(sensitize.Nonrobust)
	g := New(c, opts)
	results := g.Run(context.Background(), paths.EnumerateFaults(c, 0))
	pruned := 0
	for _, r := range results {
		if r.Phase == PhasePruning {
			pruned++
			if r.Status != Redundant {
				t.Errorf("pruned fault %s has status %v", r.Fault.Describe(c), r.Status)
			}
		}
	}
	if g.Stats().PrunedRedundant != pruned {
		t.Errorf("stats.PrunedRedundant = %d, counted %d", g.Stats().PrunedRedundant, pruned)
	}
	// Pruning must not change the classification: compare with pruning off.
	opts.SubpathPruning = false
	g2 := New(c, opts)
	results2 := g2.Run(context.Background(), paths.EnumerateFaults(c, 0))
	for i := range results {
		if (results[i].Status == Redundant) != (results2[i].Status == Redundant) {
			t.Errorf("pruning changed the classification of %s", results[i].Fault.Describe(c))
		}
	}
}

// TestFaultSimulationDrop: a pattern generated for one fault drops a second
// fault that shares the same launch and side conditions, through the
// interleaved fault simulation.  The circuit is built so the drop is
// guaranteed: z1 = AND(a,b) and z2 = NAND(a,b) share the side condition
// b = 1 for a rising launch at a.
func TestFaultSimulationDrop(t *testing.T) {
	bld := circuit.NewBuilder("simdrop")
	a := bld.Input("a")
	b := bld.Input("b")
	z1 := bld.Gate("z1", logic.And, a, b)
	z2 := bld.Gate("z2", logic.Nand, a, b)
	bld.Output(z1)
	bld.Output(z2)
	c, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	faults := []paths.Fault{
		{Path: paths.Path{Nets: []circuit.NetID{a, z1}}, Transition: paths.Rising},
		{Path: paths.Path{Nets: []circuit.NetID{a, z2}}, Transition: paths.Rising},
	}
	opts := SingleBitOptions(sensitize.Robust)
	opts.FaultSimInterval = 1
	g := New(c, opts)
	results := g.Run(context.Background(), faults)
	if !results[0].Status.Detected() || !results[1].Status.Detected() {
		t.Fatalf("both faults should be detected: %v, %v", results[0].Status, results[1].Status)
	}
	if g.Stats().DetectedBySim != 1 {
		t.Errorf("DetectedBySim = %d, want 1 (the second fault dropped by simulation)", g.Stats().DetectedBySim)
	}
	if results[1].Status != DetectedBySim || results[1].Phase != PhaseSimulation {
		t.Errorf("second fault should be detected by simulation, got %v/%v", results[1].Status, results[1].Phase)
	}

	// Switching fault simulation off must not reduce coverage, and nothing
	// may then be attributed to simulation.
	opts.FaultSimInterval = 0
	g2 := New(c, opts)
	results2 := g2.Run(context.Background(), faults)
	if detectedCount(results2) < detectedCount(results) {
		t.Errorf("coverage without fault simulation (%d) below coverage with it (%d)",
			detectedCount(results2), detectedCount(results))
	}
	if g2.Stats().DetectedBySim != 0 {
		t.Error("fault simulation disabled but faults dropped by it")
	}
}

// TestStatusAndOptionHelpers covers the small helper types.
func TestStatusAndOptionHelpers(t *testing.T) {
	if Pending.String() != "pending" || Tested.String() != "tested" ||
		Redundant.String() != "redundant" || Aborted.String() != "aborted" ||
		DetectedBySim.String() != "detected-by-simulation" {
		t.Error("Status.String wrong")
	}
	if !Tested.Detected() || !DetectedBySim.Detected() || Redundant.Detected() || Aborted.Detected() {
		t.Error("Status.Detected wrong")
	}
	if PhaseFPTPG.String() != "fptpg" || PhaseAPTPG.String() != "aptpg" ||
		PhaseSimulation.String() != "simulation" || PhasePruning.String() != "pruning" || PhaseNone.String() != "none" {
		t.Error("Phase.String wrong")
	}
	o := Options{Mode: sensitize.Robust, WordWidth: 200, MaxBacktracks: -1}.normalize()
	if o.WordWidth != 200 || o.MaxBacktracks <= 0 || o.MaxEnumInputs != 6 {
		t.Errorf("normalize gave %+v", o)
	}
	o = Options{Mode: sensitize.Robust, WordWidth: 4 * logic.MaxWordWidth}.normalize()
	if o.WordWidth != logic.MaxWordWidth || o.MaxEnumInputs != 6 {
		t.Errorf("normalize gave %+v", o)
	}
	o = Options{Mode: sensitize.Robust, EscalationWidth: 4 * logic.MaxWordWidth}.normalize()
	if o.EscalationWidth != logic.MaxWordWidth {
		t.Errorf("normalize gave %+v", o)
	}
	o = Options{WordWidth: 0}.normalize()
	if o.WordWidth != 1 || o.MaxEnumInputs != 0 {
		t.Errorf("normalize gave %+v", o)
	}
	if log2(64) != 6 || log2(1) != 0 || log2(32) != 5 {
		t.Error("log2 wrong")
	}
	s := Stats{Faults: 200, Aborted: 2, Tested: 150, DetectedBySim: 40}
	if s.Efficiency() != 99 {
		t.Errorf("Efficiency = %v", s.Efficiency())
	}
	if s.Coverage() != 0.95 {
		t.Errorf("Coverage = %v", s.Coverage())
	}
	if (Stats{}).Efficiency() != 100 || (Stats{}).Coverage() != 0 {
		t.Error("empty stats helpers wrong")
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

// TestSyntheticCircuitATPG runs the generator end to end on a synthetic
// ISCAS-like circuit with a sampled fault list, checking consistency and a
// reasonable efficiency.
func TestSyntheticCircuitATPG(t *testing.T) {
	p := bench.Profile{Name: "synth", Inputs: 16, Outputs: 8, Gates: 150, Depth: 12, Seed: 77,
		InputFaninBias: 0.5, WideFaninFraction: 0.15, InverterFraction: 0.25}
	c := bench.MustSynthesize(p)
	faults := paths.SampleFaults(c, 200, 9)
	for _, mode := range []sensitize.Mode{sensitize.Nonrobust, sensitize.Robust} {
		g := New(c, DefaultOptions(mode))
		results := g.Run(context.Background(), faults)
		st := g.Stats()
		if st.Faults != len(faults) {
			t.Fatalf("stats faults %d != %d", st.Faults, len(faults))
		}
		for _, r := range results {
			if r.Status == Pending {
				t.Errorf("%s: fault left pending", mode)
			}
		}
		if st.Efficiency() < 90 {
			t.Errorf("%s: efficiency %.2f%% unexpectedly low on a small synthetic circuit", mode, st.Efficiency())
		}
		robust := mode == sensitize.Robust
		for _, r := range results {
			if r.Status != Tested {
				continue
			}
			res, err := faultsim.Run(c, []pattern.Pair{r.Test}, []paths.Fault{r.Fault}, robust)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Detected[0] {
				t.Errorf("%s: pattern fails to detect %s", mode, r.Fault.Describe(c))
			}
		}
	}
}
