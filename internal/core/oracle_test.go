package core

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

// allPairs enumerates every two-vector test of a circuit with n primary
// inputs (4^n pairs), for use as a brute-force detectability oracle on tiny
// circuits.
func allPairs(c *circuit.Circuit) []pattern.Pair {
	n := len(c.Inputs())
	total := 1 << uint(2*n)
	pairs := make([]pattern.Pair, 0, total)
	for code := 0; code < total; code++ {
		p := pattern.NewPair(n)
		for i := 0; i < n; i++ {
			if code>>(uint(i))&1 == 1 {
				p.V1[i] = logic.One3
			} else {
				p.V1[i] = logic.Zero3
			}
			if code>>(uint(n+i))&1 == 1 {
				p.V2[i] = logic.One3
			} else {
				p.V2[i] = logic.Zero3
			}
		}
		pairs = append(pairs, p)
	}
	return pairs
}

// oracleCircuits are small circuits without XOR gates (the generator fixes
// XOR side inputs at stable 0 by convention, which is deliberately
// conservative; see DESIGN.md) so exact agreement with the brute-force
// oracle is required.
func oracleCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("mix5")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	n1 := b.Gate("n1", logic.Nand, a, bb)
	o1 := b.Gate("o1", logic.Nor, cc, d)
	i1 := b.Gate("i1", logic.Not, n1)
	g1 := b.Gate("g1", logic.And, n1, o1)
	g2 := b.Gate("g2", logic.Or, i1, o1, a)
	z1 := b.Gate("z1", logic.Nand, g1, g2)
	b.Output(z1)
	b.Output(g2)
	mix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return []*circuit.Circuit{
		bench.PaperExample(),
		bench.C17(),
		bench.RedundantExample(),
		bench.MuxTree(2),
		mix,
	}
}

// TestGeneratorMatchesBruteForceOracle is the strongest end-to-end property
// of the generator: on circuits small enough to enumerate every possible
// two-vector test, a fault is classified as detected if and only if some
// pair detects it (in the selected test class), and a fault classified as
// redundant has no detecting pair at all.  Aborted faults (there should be
// none on these circuits) are excluded.
func TestGeneratorMatchesBruteForceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force enumeration is skipped in -short mode")
	}
	for _, c := range oracleCircuits(t) {
		if len(c.Inputs()) > 6 {
			t.Fatalf("%s has too many inputs for the oracle", c.Name)
		}
		pairs := allPairs(c)
		faults := paths.EnumerateFaults(c, 0)
		for _, mode := range []sensitize.Mode{sensitize.Nonrobust, sensitize.Robust} {
			robust := mode == sensitize.Robust
			oracle, err := faultsim.Run(c, pairs, faults, robust)
			if err != nil {
				t.Fatal(err)
			}
			g := New(c, DefaultOptions(mode))
			results := g.Run(context.Background(), faults)
			for i, r := range results {
				if r.Status == Aborted {
					t.Errorf("%s/%s: fault %s aborted on a tiny circuit", c.Name, mode, r.Fault.Describe(c))
					continue
				}
				detectable := oracle.Detected[i]
				claimed := r.Status.Detected()
				if claimed && !detectable {
					t.Errorf("%s/%s: generator claims a test for %s but no pair detects it",
						c.Name, mode, r.Fault.Describe(c))
				}
				if !claimed && detectable {
					t.Errorf("%s/%s: generator calls %s %v but the oracle finds a detecting pair",
						c.Name, mode, r.Fault.Describe(c), r.Status)
				}
			}
		}
	}
}

// TestOracleMonotonicity checks, on the same tiny circuits, the containment
// the two test classes must satisfy pair by pair: the set of robustly
// detected faults of the whole pair universe is a subset of the nonrobustly
// detected ones.
func TestOracleMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force enumeration is skipped in -short mode")
	}
	for _, c := range oracleCircuits(t) {
		pairs := allPairs(c)
		faults := paths.EnumerateFaults(c, 0)
		rob, err := faultsim.Run(c, pairs, faults, true)
		if err != nil {
			t.Fatal(err)
		}
		non, err := faultsim.Run(c, pairs, faults, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range faults {
			if rob.Detected[i] && !non.Detected[i] {
				t.Errorf("%s: fault %s robustly detectable but not nonrobustly", c.Name, faults[i].Describe(c))
			}
		}
	}
}
