package core

import (
	"context"
	"math/bits"
	"time"

	"repro/internal/backtrace"
	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/implic"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sensitize"
	"repro/internal/testability"
)

// Generator is the bit-parallel path delay fault test pattern generator.
// It is bound to one circuit and one option set; Run may be called several
// times, accumulating into the same test set and statistics.
type Generator struct {
	c    *circuit.Circuit
	opts Options

	st      *implic.State
	pruneSt *implic.State
	// aptpgSt, present only on multi-word engines, is a single-word state the
	// narrowed APTPG searches swap in: a per-fault search on the wide state
	// would stride its plane reads by the group's word capacity, paying the
	// wide cache footprint for single-word epochs.
	aptpgSt *implic.State
	tm      *testability.Measures
	sim     *faultsim.Simulator

	// objBuf is the scratch buffer of orderObjectives, reused across calls.
	objBuf []circuit.NetID

	testSet *pattern.Set
	stats   Stats

	// OnSettle, when non-nil, is invoked once for every fault whose
	// classification becomes final, in the order the faults settle (which is
	// generally not the order they were passed in).  It must be set before
	// Run and must not call back into the generator.
	OnSettle func(FaultResult)

	// OnPattern, when non-nil, is invoked for every verified test pattern as
	// it is added to the test set.  The sharded engine (RunSharded) uses it
	// to publish each worker's patterns to the other workers; the pair must
	// be treated as immutable.
	OnPattern func(pattern.Pair)

	// ImportPatterns, when non-nil, is polled at every fault-simulation
	// point for patterns generated outside this generator (by other workers
	// of a sharded run).  The returned pairs are fault-simulated against the
	// still-pending faults, and detected faults are dropped exactly like
	// drops from the generator's own interleaved simulation, except that
	// their PatternIndex is -1: foreign patterns have no index in this
	// generator's test set.  It is ignored while FaultSimInterval is 0.
	ImportPatterns func() []pattern.Pair

	// redundantPrefixes maps a subpath key (path prefix + launch transition)
	// proved unsensitizable to true; faults containing such a prefix are
	// redundant without further work.
	redundantPrefixes map[string]bool

	// newPatterns counts patterns generated since the last interleaved fault
	// simulation; lastSimmed is the test-set index already simulated.
	newPatterns int
	lastSimmed  int

	// runBase is the test-set length at the start of the current run: the
	// claim-time sweep only simulates the run's own patterns, so faults of
	// one run are never dropped by an earlier run's tests.
	runBase int

	// foreign accumulates the patterns imported from the other workers of a
	// sharded run, so faults claimed later are still checked against every
	// foreign pattern that arrived before them.
	foreign []pattern.Pair
}

// rec is the per-fault working record.
type rec struct {
	fault  paths.Fault
	res    *FaultResult
	cond   sensitize.Conditions
	sensOK bool
	// worker is the index of the worker that claimed the fault; the merge
	// uses it to locate the worker-local test set a PatternIndex refers to.
	worker int
}

// newRecs builds the result slots and working records for a fault list.
func newRecs(faults []paths.Fault) ([]FaultResult, []*rec) {
	results := make([]FaultResult, len(faults))
	recs := make([]*rec, len(faults))
	for i := range faults {
		results[i] = FaultResult{Fault: faults[i], Status: Pending, PatternIndex: -1}
		recs[i] = &rec{fault: faults[i], res: &results[i]}
	}
	return results, recs
}

// New creates a generator for the circuit with the given options.
func New(c *circuit.Circuit, opts Options) *Generator {
	opts = opts.normalize()
	// The implication state's word capacity must cover the widest pass the
	// run can take: the escalation width when configured, the full engine
	// maximum when guided escalation derives the width at run time.
	capW := opts.WordWidth
	if opts.EscalationWidth > capW {
		capW = opts.EscalationWidth
	}
	if opts.GuidedEscalation && opts.EscalationWidth == 0 {
		capW = logic.MaxWordWidth
	}
	g := &Generator{
		c:                 c,
		opts:              opts,
		st:                implic.NewStateWidth(c, capW),
		pruneSt:           implic.NewStateWidth(c, 1),
		tm:                testability.For(c),
		sim:               faultsim.New(c),
		testSet:           pattern.NewSet(c),
		redundantPrefixes: make(map[string]bool),
	}
	if capW > logic.WordWidth {
		g.aptpgSt = implic.NewState(c)
	}
	if opts.MaxImplySweeps > 0 {
		g.st.MaxSweeps = opts.MaxImplySweeps
		g.pruneSt.MaxSweeps = opts.MaxImplySweeps
		if g.aptpgSt != nil {
			g.aptpgSt.MaxSweeps = opts.MaxImplySweeps
		}
	}
	if opts.FullSweepImplic {
		g.st.FullSweep = true
		g.pruneSt.FullSweep = true
		if g.aptpgSt != nil {
			g.aptpgSt.FullSweep = true
		}
	}
	return g
}

// Fork returns a fresh generator over the same (immutable, shared) circuit
// and options, with an empty test set and zeroed statistics, but carrying a
// snapshot of the redundant subpaths learned so far.  Forked generators are
// the workers of a sharded run: each owns its complete mutable state, so
// forks may run concurrently with each other (but not with their parent).
func (g *Generator) Fork() *Generator {
	w := New(g.c, g.opts)
	for k := range g.redundantPrefixes {
		w.redundantPrefixes[k] = true
	}
	return w
}

// absorbState merges a finished worker's non-pattern state back into g: its
// statistics are added and the redundant subpaths it learned are kept for
// later runs.  Patterns are merged separately, in canonical fault order, by
// the sharded orchestrator (see mergeResults).  The worker must not be used
// afterwards.
func (g *Generator) absorbState(w *Generator) {
	g.stats.Add(w.stats)
	//atpgvet:ignore detmerge -- order-independent map-to-map copy; the set union is the same whatever the iteration order
	for k := range w.redundantPrefixes {
		g.redundantPrefixes[k] = true
	}
}

// Options returns the (normalized) options the generator runs with.
func (g *Generator) Options() Options { return g.opts }

// Circuit returns the circuit the generator operates on.
func (g *Generator) Circuit() *circuit.Circuit { return g.c }

// TestSet returns the test patterns generated so far.
func (g *Generator) TestSet() *pattern.Set { return g.testSet }

// Stats returns the accumulated statistics.
func (g *Generator) Stats() Stats { return g.stats }

// Run generates tests for the given target faults and returns one result per
// fault, in the same order.  The context bounds the run: when it is canceled
// or its deadline expires, generation stops at the next check point and every
// fault that has not settled yet is returned as Aborted with the cancellation
// cause in its Err field.  Callers that need to distinguish a canceled run
// from a completed one inspect ctx.Err (or context.Cause) after Run returns.
//
// Internally the run is scheduler-driven: the fault list is cut into work
// units (word-parallel groups) that a single consumer drains in input order,
// in one pass or — with Options.EscalationWidth — in the two passes of
// adaptive grouping.  The multi-worker variant of the same pipeline is
// RunSharded.
func (g *Generator) Run(ctx context.Context, faults []paths.Fault) []FaultResult {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sensAtStart := g.stats.SensitizeTime

	results, recs := newRecs(faults)
	g.stats.Faults += len(faults)
	g.runBase = g.testSet.Len()

	g.runPasses(recs, func(units []sched.Unit, ps PassSpec) {
		sc := sched.New(g.opts.Schedule, 1)
		sc.Load(units)
		g.consume(ctx, sc, 0, recs, ps)
		g.stats.Sched.Add(sc.Stats())
	})
	g.finish(ctx, recs)
	g.reconcileDrops(results)

	g.stats.GenerateTime += time.Since(start) - (g.stats.SensitizeTime - sensAtStart)
	return results
}

// consume drains the scheduler as worker w: it claims units, drops claimed
// faults that existing patterns already detect, processes the rest as
// word-parallel groups, and runs the interleaved fault simulation.  Each
// fault index of a unit refers into recs.
//
// The simulation scope follows ownership.  A single-worker scheduler gives
// the consumer exclusive ownership of every record, so each pattern batch
// is simulated once against all still-pending faults at the interval points
// (the paper's dropping, linear in the pattern count) and no claim-time
// sweep is needed.  With several workers a record is only safely mutable
// after its unit is claimed, so the eager scope shrinks to the claimed
// records and each claimed unit is instead swept once against the patterns
// that accumulated before it was claimed.
//
//atpgvet:ctxloop
func (g *Generator) consume(ctx context.Context, sc *sched.Scheduler, w int, recs []*rec, ps PassSpec) {
	exclusive := sc.Workers() == 1
	scope := recs
	if !exclusive {
		scope = nil
	}
	for ctx.Err() == nil {
		u, ok := sc.Next(w)
		if !ok {
			return
		}
		unit := make([]*rec, len(u.Faults))
		//atpgvet:ignore ctxloop -- bounded setup loop over one claimed unit (at most a word of faults), not a claim loop
		for i, f := range u.Faults {
			unit[i] = recs[f]
			unit[i].worker = w
		}
		if !exclusive {
			g.claimSweep(unit)
			scope = append(scope, unit...)
		}
		g.processUnit(ctx, unit, ps)
		if ctx.Err() == nil {
			g.maybeSimulate(scope)
		}
	}
}

// processUnit runs one work unit: subpath pruning, one fault-parallel FPTPG
// group per width-window of the unit's still-pending faults, and the
// alternative-parallel search for the faults FPTPG hands over.  Faults that
// exhaust the pass budget are Aborted on a final pass and left Pending for
// escalation otherwise.
func (g *Generator) processUnit(ctx context.Context, unit []*rec, ps PassSpec) {
	var group []*rec
	for _, r := range unit {
		if ctx.Err() != nil {
			return
		}
		if r.res.Status != Pending {
			continue
		}
		if g.opts.SubpathPruning && g.pruneIfKnownRedundant(r) {
			continue
		}
		group = append(group, r)
	}
	for start := 0; start < len(group); start += ps.Width {
		end := start + ps.Width
		if end > len(group) {
			end = len(group)
		}
		batch := group[start:end]
		var hard []*rec
		if g.opts.UseFPTPG {
			g.stats.FPTPGGroups++
			hard = g.runGroup(ctx, batch)
		} else {
			hard = batch
		}
		switch {
		case g.opts.UseAPTPG:
			for _, r := range hard {
				if ctx.Err() != nil {
					return
				}
				if r.res.Status != Pending {
					continue
				}
				g.runAPTPG(ctx, r, ps)
			}
		case ps.Final:
			for _, r := range hard {
				if r.res.Status == Pending && ctx.Err() == nil {
					g.markAborted(r, PhaseFPTPG)
				}
			}
		}
	}
}

// claimSweep drops just-claimed faults that are already detected: by a
// pattern another worker published (the accumulated foreign buffer), or by a
// pattern this worker generated earlier in the run.  It runs at unit claim
// time on multi-worker schedulers — where a worker cannot eagerly drop
// faults it has not claimed — so a fault is never searched when the
// worker's existing tests already cover it.  Disabled together with the
// interleaved simulation.
func (g *Generator) claimSweep(unit []*rec) {
	if g.opts.FaultSimInterval <= 0 {
		return
	}
	if g.ImportPatterns != nil {
		if foreign := g.ImportPatterns(); len(foreign) > 0 {
			g.foreign = append(g.foreign, foreign...)
		}
	}
	if len(g.foreign) > 0 {
		g.dropDetected(unit, g.foreign, -1)
	}
	if g.testSet.Len() > g.runBase {
		g.dropDetected(unit, g.testSet.Pairs[g.runBase:], g.runBase)
	}
}

// finish sweeps up records that are still pending after the passes: faults
// cut short by cancellation carry the cause in their Err field, anything
// else (unreachable in a normal configuration) is Aborted.
func (g *Generator) finish(ctx context.Context, recs []*rec) {
	if err := ctx.Err(); err != nil {
		cause := context.Cause(ctx)
		if cause == nil {
			cause = err
		}
		for _, r := range recs {
			if r.res.Status == Pending {
				g.markCanceled(r, cause)
			}
		}
	}
	for _, r := range recs {
		if r.res.Status == Pending {
			g.markAborted(r, PhaseNone)
		}
	}
}

// launchValue is the value assigned to the path input primary input: the
// transition itself for robust generation, and just its final value for
// nonrobust generation (the first vector is derived by flipping the path
// input when the pattern is extracted).
func (g *Generator) launchValue(t paths.Transition) logic.Value7 {
	if g.opts.Mode == sensitize.Robust {
		return t.Value7()
	}
	return logic.Value7From3(t.FinalValue3())
}

// decisionValue maps a backtrace objective value to the value actually
// assigned at a primary input: stable values for robust generation (primary
// inputs do not glitch), plain final values for nonrobust generation.
func (g *Generator) decisionValue(v logic.Value3) logic.Value7 {
	if g.opts.Mode == sensitize.Robust {
		if v == logic.One3 {
			return logic.Stable1
		}
		return logic.Stable0
	}
	return logic.Value7From3(v)
}

// sensitizeRec computes (and caches) the sensitization conditions of the
// fault, accounting the time separately (the t_sens column of Tables 5/6).
func (g *Generator) sensitizeRec(r *rec) bool {
	if r.sensOK {
		return true
	}
	start := time.Now()
	cond, err := sensitize.Sensitize(g.c, r.fault, g.opts.Mode)
	g.stats.SensitizeTime += time.Since(start)
	if err != nil {
		return false
	}
	r.cond = cond
	r.sensOK = true
	return true
}

// ---------------------------------------------------------------------------
// FPTPG: fault-parallel test pattern generation.
// ---------------------------------------------------------------------------

// runGroup processes up to WordWidth faults simultaneously, one per bit
// level, and returns the faults that need backtracking (handed to APTPG).
// On context cancellation the group is abandoned mid-iteration; its unsettled
// faults stay Pending and are swept up by Run.
func (g *Generator) runGroup(ctx context.Context, batch []*rec) []*rec {
	var needPhase2 []*rec
	active := logic.LevelsMask(len(batch))
	g.st.Reset(active)

	var alive logic.Mask
	for i, r := range batch {
		if !g.sensitizeRec(r) {
			g.markAborted(r, PhaseFPTPG)
			continue
		}
		bit := logic.BitMask(i)
		for _, a := range r.cond.Assignments {
			g.st.AddRequirement(a.Net, a.Value, bit)
		}
		g.st.AssignPI(r.fault.Path.Input(), g.launchValue(r.fault.Transition), bit)
		alive = alive.Or(bit)
	}

	var decided logic.Mask
	conf := g.implyCounted()
	if newConf := conf.And(alive); !newConf.IsZero() {
		for i, r := range batch {
			if newConf.Bit(i) {
				g.markRedundant(r, PhaseFPTPG)
			}
		}
		alive = alive.AndNot(newConf)
	}

	for iter := 0; !alive.IsZero() && iter < g.opts.MaxFPTPGIterations; iter++ {
		if ctx.Err() != nil {
			return nil
		}
		g.st.ForwardSim()
		if just := g.st.JustifiedMask().And(alive); !just.IsZero() {
			for i, r := range batch {
				if !just.Bit(i) {
					continue
				}
				bit := logic.BitMask(i)
				if g.emitTest(r, i, PhaseFPTPG) {
					alive = alive.AndNot(bit)
				} else {
					// Verification failed: give the fault to APTPG.
					needPhase2 = append(needPhase2, r)
					alive = alive.AndNot(bit)
				}
			}
		}
		if alive.IsZero() {
			break
		}

		// One backtrace-guided input assignment per still-alive level.
		progress := false
		for i, r := range batch {
			if !alive.Bit(i) {
				continue
			}
			bit := logic.BitMask(i)
			obj, ok := g.findObjective(i)
			if !ok {
				needPhase2 = append(needPhase2, r)
				alive = alive.AndNot(bit)
				continue
			}
			g.st.AssignPI(obj.Input, g.decisionValue(obj.Value), bit)
			decided = decided.Or(bit)
			r.res.Decisions++
			g.stats.Decisions++
			progress = true
		}
		if !progress {
			break
		}

		conf = g.implyCounted()
		if newConf := conf.And(alive); !newConf.IsZero() {
			for i, r := range batch {
				if !newConf.Bit(i) {
					continue
				}
				if decided.Bit(i) {
					// The conflict may stem from a wrong decision: this is
					// exactly the situation in which the paper passes over to
					// APTPG instead of backtracking inside FPTPG.
					needPhase2 = append(needPhase2, r)
				} else {
					g.markRedundant(r, PhaseFPTPG)
				}
			}
			alive = alive.AndNot(newConf)
		}
	}

	// Whatever is still alive after the iteration limit goes to APTPG.
	for i, r := range batch {
		if alive.Bit(i) {
			needPhase2 = append(needPhase2, r)
		}
	}
	return needPhase2
}

// objectiveCost is the testability cost of justifying the unjustified
// requirement on net at the given bit level: the controllability of the
// required final value (a pure stability requirement defaults to 1, the
// value Backtrace refines towards).
func (g *Generator) objectiveCost(net circuit.NetID, level int) int {
	want := g.st.ReqGet(net, level).Final()
	if !want.IsAssigned() {
		want = logic.One3
	}
	return g.tm.Cost(net, want)
}

// orderObjectives returns the unjustified nets of the bit level ordered
// cheapest requirement first (by the controllability of the required value)
// instead of the plain topological order of Unjustified: justifying the easy
// requirements first lets their implications constrain the state before the
// expensive ones are attacked, which measurably lowers the abort count on
// the ISCAS circuits (hardest-first raised it).  Ties keep the topological
// order, making the selection deterministic and identical for both
// implication engines.  The returned slice is a generator-owned scratch
// buffer, valid until the next call.
func (g *Generator) orderObjectives(level int) []circuit.NetID {
	nets := g.st.Unjustified(level)
	g.objBuf = append(g.objBuf[:0], nets...)
	buf := g.objBuf
	// Insertion sort by ascending cost: the buffer is small (the open
	// requirements of one level) and already deterministically ordered, and
	// sorting in place keeps the hot path allocation-free.
	for i := 1; i < len(buf); i++ {
		net, cost := buf[i], g.objectiveCost(buf[i], level)
		j := i
		for j > 0 && g.objectiveCost(buf[j-1], level) > cost {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = net
	}
	return buf
}

// findObjective returns a primary input assignment helping to justify some
// requirement that is still unjustified at the given bit level, preferring
// the cheapest requirement (see orderObjectives).
func (g *Generator) findObjective(level int) (backtrace.Objective, bool) {
	for _, net := range g.orderObjectives(level) {
		want := g.st.ReqGet(net, level)
		if obj, ok := backtrace.Backtrace(g.st, g.tm, net, want, level); ok {
			return obj, true
		}
	}
	return backtrace.Objective{}, false
}

// findObjectives collects up to max distinct primary input objectives from
// the unjustified requirements of the given bit level, in the same
// cheapest-first order as findObjective; APTPG enumerates all their value
// combinations at once.
func (g *Generator) findObjectives(level, max int) []backtrace.Objective {
	var objs []backtrace.Objective
	seen := make(map[circuit.NetID]bool)
	for _, net := range g.orderObjectives(level) {
		if len(objs) >= max {
			break
		}
		want := g.st.ReqGet(net, level)
		obj, ok := backtrace.Backtrace(g.st, g.tm, net, want, level)
		if !ok || seen[obj.Input] {
			continue
		}
		seen[obj.Input] = true
		objs = append(objs, obj)
	}
	return objs
}

func (g *Generator) implyCounted() logic.Mask {
	g.stats.Implications++
	return g.st.Imply()
}

// ---------------------------------------------------------------------------
// APTPG: alternative-parallel test pattern generation.
// ---------------------------------------------------------------------------

type decision struct {
	input      circuit.NetID
	value      logic.Value3
	enumerated bool
	enumIdx    int
	flipped    bool
}

// runAPTPG handles one hard fault: the fault is flattened onto the pass's
// bit levels, up to log2(width) backtrace-selected inputs are enumerated in
// parallel (one value combination per bit level) and any further decisions
// are made conventionally with chronological backtracking on all levels at
// once.  The pass spec bounds the search: ps.Budget backtracks, after which
// the fault is Aborted (final pass) or left Pending for escalation.
func (g *Generator) runAPTPG(ctx context.Context, r *rec, ps PassSpec) {
	g.stats.APTPGFaults++
	if !g.sensitizeRec(r) {
		g.markAborted(r, PhaseAPTPG)
		return
	}
	width := ps.Width
	maxEnum := log2(width)
	if maxEnum > g.opts.MaxEnumInputs {
		maxEnum = g.opts.MaxEnumInputs
	}
	// The enumeration distinguishes at most 2^maxEnum value combinations;
	// bit levels beyond that replay duplicates of the first 2^maxEnum (see
	// enumWord), so the active mask is narrowed to the alternatives the
	// search can actually tell apart.  APTPG cost thus tracks the real
	// alternative count, not the (possibly much wider) group width — wide
	// multi-word groups pay their width in the fault-parallel phase, where
	// the sharing is, and drop back to the efficient word here.
	if ew := 1 << uint(maxEnum); ew < width {
		width = ew
	}
	// A narrowed search fits one machine word: run it on the dedicated
	// single-word state, whose planes are stored contiguously, instead of
	// striding word 0 of the wide state's multi-word windows.  The search is
	// self-contained between Reset and the final Undo sweep, so swapping the
	// state pointer for the duration is safe.
	if g.aptpgSt != nil && width <= logic.WordWidth {
		wide := g.st
		g.st = g.aptpgSt
		defer func() { g.st = wide }()
	}
	active := logic.LevelsMask(width)
	g.st.Reset(active)
	for _, a := range r.cond.Assignments {
		g.st.AddRequirement(a.Net, a.Value, active)
	}
	pathIn := r.fault.Path.Input()
	launch := g.launchValue(r.fault.Transition)
	g.st.AssignPI(pathIn, launch, active)

	if conf := g.implyCounted(); conf == active {
		// Conflict on every level with no optional assignment: redundant.
		g.markRedundant(r, PhaseAPTPG)
		return
	}

	var decisions []decision
	enumCount := 0
	backtracks := 0 // backtracks spent on the fault in this pass
	var deadMask logic.Mask
	sawStuck := false

	// The incremental engine backtracks over the assignment trail: every
	// decision opens a frame (implic.State.Assign) whose Undo restores the
	// exact pre-decision closure and simulation.  The full-sweep oracle has
	// no trail and rebuilds the remaining decisions from scratch instead.
	useTrail := !g.opts.FullSweepImplic
	if useTrail {
		// Every exit from the search (test emitted, redundancy proof, budget
		// exhaustion, cancellation) must close the frames it opened: a frame
		// leaked across faults makes a later backtrack restore another
		// fault's state, which surfaces as an equivalence failure much later.
		defer func() {
			for g.st.Depth() > 0 {
				g.st.Undo()
			}
		}()
	}

	rebuild := func() {
		g.st.ClearPI(active)
		g.st.AssignPI(pathIn, launch, active)
		for _, d := range decisions {
			if d.enumerated {
				g.st.AssignPIWord(d.input, g.enumWord(d.enumIdx, width))
			} else {
				g.st.AssignPI(d.input, g.decisionValue(d.value), active)
			}
		}
		g.implyCounted()
		deadMask = logic.Mask{}
	}

	maxSteps := 64 * (ps.Budget + 4) * (len(g.c.Inputs()) + 4)
	for step := 0; step < maxSteps; step++ {
		// The step loop can run long on hard faults; poll the context every
		// few steps so cancellation stays responsive without a per-step lock.
		if step&15 == 0 && ctx.Err() != nil {
			return
		}
		g.st.ForwardSim()
		aliveMask := active.AndNot(g.st.ConflictMask()).AndNot(deadMask)
		if just := g.st.JustifiedMask().And(aliveMask); !just.IsZero() {
			lvl := just.TrailingZeros()
			if g.emitTest(r, lvl, PhaseAPTPG) {
				return
			}
			deadMask = deadMask.Or(logic.BitMask(lvl))
			sawStuck = true
			continue
		}

		if aliveMask.IsZero() {
			// Every alternative currently under consideration conflicts:
			// backtrack chronologically over the conventional decisions.
			backtracks++
			r.res.Backtracks++
			g.stats.Backtracks++
			if backtracks > ps.Budget {
				g.abortOrEscalate(r, ps)
				return
			}
			flipped := false
			for len(decisions) > 0 {
				last := &decisions[len(decisions)-1]
				if !last.enumerated && !last.flipped {
					if useTrail {
						g.st.Undo()
					}
					last.flipped = true
					last.value = last.value.Not()
					if useTrail {
						g.st.Assign()
						g.st.AssignPI(last.input, g.decisionValue(last.value), active)
					}
					flipped = true
					break
				}
				if last.enumerated {
					enumCount--
				}
				if useTrail {
					g.st.Undo()
				}
				decisions = decisions[:len(decisions)-1]
			}
			if !flipped {
				// The whole search space has been explored.  A completed
				// search without dead levels is a redundancy proof (valid at
				// any width); a search that had to skip levels stays
				// inconclusive and escalates on a non-final pass.
				if sawStuck {
					g.abortOrEscalate(r, ps)
				} else {
					g.markRedundant(r, PhaseAPTPG)
				}
				return
			}
			if useTrail {
				g.implyCounted()
				deadMask = logic.Mask{}
			} else {
				rebuild()
			}
			continue
		}

		// Make new decisions, guided by the lowest still-alive level.  While
		// the enumeration budget of log2(L) inputs lasts, several backtrace
		// objectives are collected at once and all their value combinations
		// are examined with a single bit-parallel implication, as described
		// in Section 3.2 of the paper.  Beyond the budget, decisions are
		// conventional: one input, one value on all levels.
		lvl := aliveMask.TrailingZeros()
		if enumCount < maxEnum {
			objs := g.findObjectives(lvl, maxEnum-enumCount)
			if len(objs) == 0 {
				deadMask = deadMask.Or(logic.BitMask(lvl))
				sawStuck = true
				continue
			}
			for _, obj := range objs {
				r.res.Decisions++
				g.stats.Decisions++
				decisions = append(decisions, decision{input: obj.Input, enumerated: true, enumIdx: enumCount})
				if useTrail {
					g.st.Assign()
				}
				g.st.AssignPIWord(obj.Input, g.enumWord(enumCount, width))
				enumCount++
			}
		} else {
			obj, ok := g.findObjective(lvl)
			if !ok {
				deadMask = deadMask.Or(logic.BitMask(lvl))
				sawStuck = true
				continue
			}
			r.res.Decisions++
			g.stats.Decisions++
			decisions = append(decisions, decision{input: obj.Input, value: obj.Value})
			if useTrail {
				g.st.Assign()
			}
			g.st.AssignPI(obj.Input, g.decisionValue(obj.Value), active)
		}
		g.implyCounted()
	}
	g.abortOrEscalate(r, ps)
}

// abortOrEscalate gives up on a fault whose pass budget is exhausted: on a
// final pass it is Aborted, on the cheap first pass of adaptive grouping it
// stays Pending and the orchestrator escalates it into a wide group.
func (g *Generator) abortOrEscalate(r *rec, ps PassSpec) {
	if ps.Final {
		g.markAborted(r, PhaseAPTPG)
	}
}

// enumWord builds the per-level assignment word of the idx-th enumerated
// input at the given word width: bit level j receives value bit idx of j, so
// across the active levels all combinations of the enumerated inputs appear.
func (g *Generator) enumWord(idx, width int) logic.Word7V {
	one := g.decisionValue(logic.One3)
	zero := g.decisionValue(logic.Zero3)
	var w logic.Word7V
	for j := 0; j < width; j++ {
		if (j>>uint(idx))&1 == 1 {
			w.Set(j, one)
		} else {
			w.Set(j, zero)
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// Pattern extraction, verification and bookkeeping.
// ---------------------------------------------------------------------------

// extractPattern builds the two-vector test from the primary input
// assignments of the given bit level.  It returns both the filled test and
// its X-preserving (pre-fill) form: inputs the justification never
// constrained stay X in the raw pair, which is what static compaction
// merges on.  Applying FillX(FillValue) to the raw pair reproduces the
// filled pair exactly.
func (g *Generator) extractPattern(r *rec, level int) (filled, raw pattern.Pair) {
	inputs := g.c.Inputs()
	raw = pattern.NewPair(len(inputs))
	for i, in := range inputs {
		v7 := g.st.PIGet(in, level)
		final := v7.Final()
		if !final.IsAssigned() {
			continue
		}
		raw.V2[i] = final
		switch {
		case v7.StableBit():
			raw.V1[i] = final
		case v7.InstableBit():
			raw.V1[i] = final.Not()
		}
		// Otherwise only the final value is constrained (the weaker
		// final-only assignment of nonrobust generation): the first vector
		// stays X and the fill keeps it equal to V2.
	}
	if g.opts.Mode == sensitize.Nonrobust {
		// Nonrobust generation only fixes final values; the transition is
		// launched by flipping the path input in the first vector.
		for i, in := range inputs {
			if in == r.fault.Path.Input() {
				raw.V2[i] = r.fault.Transition.FinalValue3()
				raw.V1[i] = raw.V2[i].Not()
			}
		}
	}
	return raw.FillX(g.opts.FillValue), raw
}

// emitTest extracts, verifies and records a test for the fault from the
// given bit level.  It returns false (and leaves the fault pending) when the
// verification rejects the pattern.
func (g *Generator) emitTest(r *rec, level int, phase Phase) bool {
	p, raw := g.extractPattern(r, level)
	if g.opts.VerifyTests && !g.verifyPattern(r.fault, p) {
		return false
	}
	idx := g.testSet.Len()
	if g.opts.EmitUnfilled {
		g.testSet.AddUnfilled(p, raw, r.fault.Describe(g.c))
	} else {
		g.testSet.Add(p, r.fault.Describe(g.c))
	}
	if g.OnPattern != nil {
		g.OnPattern(p)
	}
	r.res.Status = Tested
	r.res.Phase = phase
	r.res.Test = p
	r.res.PatternIndex = idx
	g.stats.Tested++
	g.stats.Patterns++
	g.newPatterns++
	g.settle(r)
	return true
}

// verifyPattern checks with the fault simulator that the pattern actually
// detects the fault in the selected test class.
func (g *Generator) verifyPattern(f paths.Fault, p pattern.Pair) bool {
	if _, err := g.sim.Load([]pattern.Pair{p}); err != nil {
		return false
	}
	return g.sim.Detects(f, g.opts.Mode == sensitize.Robust) != 0
}

func (g *Generator) markRedundant(r *rec, phase Phase) {
	r.res.Status = Redundant
	r.res.Phase = phase
	g.stats.Redundant++
	if g.opts.SubpathPruning && phase != PhasePruning {
		g.recordRedundantPrefix(r)
	}
	g.settle(r)
}

func (g *Generator) markAborted(r *rec, phase Phase) {
	r.res.Status = Aborted
	r.res.Phase = phase
	g.stats.Aborted++
	g.settle(r)
}

// markCanceled aborts a fault the run never finished because its context was
// canceled, carrying the cancellation cause in the result.
func (g *Generator) markCanceled(r *rec, cause error) {
	r.res.Err = cause
	g.markAborted(r, PhaseNone)
}

// settle reports a freshly finalized fault to the OnSettle callback.
func (g *Generator) settle(r *rec) {
	if g.OnSettle != nil {
		g.OnSettle(*r.res)
	}
}

// ---------------------------------------------------------------------------
// Interleaved fault simulation.
// ---------------------------------------------------------------------------

// maybeSimulate drops still-pending faults that are already detected by
// existing patterns.  Patterns imported from other workers of a sharded run
// are simulated whenever they arrive (and kept in the foreign buffer for the
// claim-time sweep of later units); the generator's own patterns are
// simulated after every FaultSimInterval of them, as the paper does after
// every L generated patterns.
func (g *Generator) maybeSimulate(recs []*rec) {
	if g.opts.FaultSimInterval <= 0 {
		return
	}
	if g.ImportPatterns != nil {
		if foreign := g.ImportPatterns(); len(foreign) > 0 {
			g.foreign = append(g.foreign, foreign...)
			g.dropDetected(recs, foreign, -1)
		}
	}
	if g.newPatterns < g.opts.FaultSimInterval {
		return
	}
	g.newPatterns = 0
	base := g.lastSimmed
	pairs := g.testSet.Pairs[base:]
	g.lastSimmed = g.testSet.Len()
	g.dropDetected(recs, pairs, base)
}

// dropDetected fault-simulates the pairs against every still-pending fault
// and settles the detected ones as DetectedBySim.  base is the test-set
// index of pairs[0]; a negative base marks foreign patterns that have no
// index in this generator's test set (PatternIndex stays -1 and is
// reconciled against the merged set by the sharded orchestrator).
func (g *Generator) dropDetected(recs []*rec, pairs []pattern.Pair, base int) {
	robust := g.opts.Mode == sensitize.Robust
	for start := 0; start < len(pairs); start += faultsim.BatchSize {
		end := start + faultsim.BatchSize
		if end > len(pairs) {
			end = len(pairs)
		}
		if _, err := g.sim.Load(pairs[start:end]); err != nil {
			return
		}
		for _, r := range recs {
			if r.res.Status != Pending {
				continue
			}
			if mask := g.sim.Detects(r.fault, robust); mask != 0 {
				r.res.Status = DetectedBySim
				r.res.Phase = PhaseSimulation
				if base >= 0 {
					r.res.PatternIndex = base + start + bits.TrailingZeros64(mask)
				}
				g.stats.DetectedBySim++
				g.settle(r)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Subpath redundancy pruning.
// ---------------------------------------------------------------------------

// pruneIfKnownRedundant checks whether the fault contains a subpath already
// proved unsensitizable and, if so, marks it redundant without any search.
func (g *Generator) pruneIfKnownRedundant(r *rec) bool {
	if len(g.redundantPrefixes) == 0 {
		return false
	}
	key := prefixKeyBuilder(r.fault.Transition)
	for i, net := range r.fault.Path.Nets {
		key.add(net)
		if i == 0 {
			continue
		}
		if g.redundantPrefixes[key.String()] {
			g.markRedundant(r, PhasePruning)
			g.stats.PrunedRedundant++
			return true
		}
	}
	return false
}

// recordRedundantPrefix finds the shortest prefix of the redundant fault's
// path whose sensitization requirements are already contradictory, and
// records it so later faults sharing the prefix are pruned, exactly as in
// the Figure 1 discussion of the paper ("all paths containing this subpath
// are proved to be redundant, too").
func (g *Generator) recordRedundantPrefix(r *rec) {
	if !r.sensOK {
		return
	}
	nets := r.fault.Path.Nets
	// Binary search for the smallest conflicting prefix length: requirements
	// grow with the prefix, so conflicts are monotone in the length.
	lo, hi := 2, len(nets)
	if !g.prefixConflicts(r, hi) {
		return // the conflict needs the whole path plus implications elsewhere
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if g.prefixConflicts(r, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	key := prefixKeyBuilder(r.fault.Transition)
	for i := 0; i < lo; i++ {
		key.add(nets[i])
	}
	g.redundantPrefixes[key.String()] = true
}

// prefixConflicts reports whether the sensitization requirements of the
// first n nets of the fault's path are contradictory on their own.
func (g *Generator) prefixConflicts(r *rec, n int) bool {
	conds, err := sensitize.SensitizeSubpath(g.c, r.fault, g.opts.Mode, n)
	if err != nil {
		return false
	}
	one := logic.LevelsMask(1)
	g.pruneSt.Reset(one)
	for _, a := range conds.Assignments {
		g.pruneSt.AddRequirement(a.Net, a.Value, one)
	}
	g.pruneSt.AssignPI(r.fault.Path.Input(), g.launchValue(r.fault.Transition), one)
	return g.pruneSt.Imply().Bit(0)
}
