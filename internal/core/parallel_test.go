package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

// classOf collapses a status to its coverage class: Tested and DetectedBySim
// both mean "the merged test set covers the fault", and which of the two a
// fault gets depends on the worker interleaving when the cross-worker
// pattern exchange is active.
func classOf(s Status) string {
	if s.Detected() {
		return "detected"
	}
	return s.String()
}

// TestShardedMatchesSequential checks the cornerstone of the sharded engine
// on several circuits and modes: any worker count must classify every fault
// the same as the sequential generator.  With the interleaved simulation
// disabled every fault's search is independent, so the statuses must match
// exactly; with it enabled, Tested and DetectedBySim may swap (coverage
// class equality), but redundancy proofs and the merged coverage must not
// move.
func TestShardedMatchesSequential(t *testing.T) {
	for _, name := range []string{"c17", "paper", "redundant", "adder8", "cmp8"} {
		c, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		faults := paths.EnumerateFaults(c, 0)
		for _, mode := range []sensitize.Mode{sensitize.Robust, sensitize.Nonrobust} {
			for _, simInterval := range []int{0, 4} {
				opts := DefaultOptions(mode)
				opts.FaultSimInterval = simInterval
				seq := New(c, opts)
				want := seq.Run(context.Background(), faults)
				for _, workers := range []int{2, 3, 8} {
					g := New(c, opts)
					got := RunSharded(context.Background(), g, faults, workers)
					if len(got) != len(want) {
						t.Fatalf("%s: %d sharded results for %d faults", name, len(got), len(faults))
					}
					for i := range got {
						if got[i].Fault.Key() != want[i].Fault.Key() {
							t.Fatalf("%s workers=%d: result %d is for fault %s, want %s (merge order broken)",
								name, workers, i, got[i].Fault.Key(), want[i].Fault.Key())
						}
						if simInterval == 0 {
							if got[i].Status != want[i].Status {
								t.Errorf("%s workers=%d mode=%v: fault %s is %v, sequential says %v",
									name, workers, mode, got[i].Fault.Key(), got[i].Status, want[i].Status)
							}
						} else if classOf(got[i].Status) != classOf(want[i].Status) {
							t.Errorf("%s workers=%d mode=%v sim=%d: fault %s is %v, sequential says %v",
								name, workers, mode, simInterval, got[i].Fault.Key(), got[i].Status, want[i].Status)
						}
					}
					gs, ss := g.Stats(), seq.Stats()
					if gs.Faults != ss.Faults || gs.Redundant != ss.Redundant ||
						gs.Tested+gs.DetectedBySim != ss.Tested+ss.DetectedBySim ||
						gs.Aborted != ss.Aborted {
						t.Errorf("%s workers=%d: sharded stats %v disagree with sequential %v",
							name, workers, gs, ss)
					}
				}
			}
		}
	}
}

// TestShardedPatternIndices checks that every merged result's PatternIndex
// points at a pattern of the merged test set that actually detects the
// fault, for tested and simulation-dropped faults alike.
func TestShardedPatternIndices(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	opts := DefaultOptions(sensitize.Robust)
	opts.FaultSimInterval = 2 // aggressive dropping to exercise the exchange
	g := New(c, opts)
	results := RunSharded(context.Background(), g, faults, 4)
	set := g.TestSet()
	if set.Len() == 0 {
		t.Fatal("no patterns generated")
	}
	sim := New(c, opts).sim
	for _, r := range results {
		if !r.Status.Detected() {
			continue
		}
		if r.PatternIndex < 0 || r.PatternIndex >= set.Len() {
			t.Errorf("fault %s (%v) has pattern index %d outside the merged set (len %d)",
				r.Fault.Key(), r.Status, r.PatternIndex, set.Len())
			continue
		}
		if _, err := sim.Load([]pattern.Pair{set.Pairs[r.PatternIndex]}); err != nil {
			t.Fatal(err)
		}
		if sim.Detects(r.Fault, true) == 0 {
			t.Errorf("pattern %d does not detect fault %s it is recorded for", r.PatternIndex, r.Fault.Key())
		}
	}
}

// TestShardedSettleCallback checks that the serialized OnSettle callback
// fires exactly once per fault across all workers.
func TestShardedSettleCallback(t *testing.T) {
	c, err := bench.Get("cmp8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	var mu sync.Mutex
	seen := make(map[string]int)
	g := New(c, DefaultOptions(sensitize.Nonrobust))
	g.OnSettle = func(r FaultResult) {
		mu.Lock()
		defer mu.Unlock()
		seen[r.Fault.Key()]++
	}
	RunSharded(context.Background(), g, faults, 4)
	if len(seen) != len(faults) {
		t.Fatalf("OnSettle saw %d distinct faults, want %d", len(seen), len(faults))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("fault %s settled %d times", k, n)
		}
	}
}

// TestShardBounds checks the deterministic near-even shard split.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
		want       []int
	}{
		{10, 4, []int{0, 3, 6, 8, 10}},
		{4, 4, []int{0, 1, 2, 3, 4}},
		{7, 2, []int{0, 4, 7}},
	} {
		got := shardBounds(tc.n, tc.workers)
		if len(got) != len(tc.want) {
			t.Fatalf("shardBounds(%d,%d) = %v, want %v", tc.n, tc.workers, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("shardBounds(%d,%d) = %v, want %v", tc.n, tc.workers, got, tc.want)
				break
			}
		}
	}
}
