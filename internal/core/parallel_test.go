package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/compact"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sensitize"
)

// detectedVector fault-simulates the pairs over the faults and returns the
// per-fault detection vector.
func detectedVector(t *testing.T, c *circuit.Circuit, pairs []pattern.Pair, faults []paths.Fault) []bool {
	t.Helper()
	res, err := faultsim.Run(c, pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	return res.Detected
}

// classOf collapses a status to its coverage class: Tested and DetectedBySim
// both mean "the merged test set covers the fault", and which of the two a
// fault gets depends on the worker interleaving when the cross-worker
// pattern exchange is active.
func classOf(s Status) string {
	if s.Detected() {
		return "detected"
	}
	return s.String()
}

// TestShardedMatchesSequential checks the cornerstone of the scheduler-driven
// engine on several circuits and modes: any worker count, under either
// dispatch policy, must classify every fault the same as the sequential
// generator.  With the interleaved simulation disabled every fault's search
// is independent, so the statuses must match exactly; with it enabled,
// Tested and DetectedBySim may swap (coverage class equality), but
// redundancy proofs and the merged coverage must not move.
func TestShardedMatchesSequential(t *testing.T) {
	for _, name := range []string{"c17", "paper", "redundant", "adder8", "cmp8"} {
		c, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		faults := paths.EnumerateFaults(c, 0)
		for _, mode := range []sensitize.Mode{sensitize.Robust, sensitize.Nonrobust} {
			for _, simInterval := range []int{0, 4} {
				for _, schedule := range []sched.Policy{sched.Static, sched.Steal} {
					opts := DefaultOptions(mode)
					opts.FaultSimInterval = simInterval
					opts.Schedule = schedule
					seq := New(c, opts)
					want := seq.Run(context.Background(), faults)
					for _, workers := range []int{2, 3, 8} {
						g := New(c, opts)
						got := RunSharded(context.Background(), g, faults, workers)
						if len(got) != len(want) {
							t.Fatalf("%s: %d sharded results for %d faults", name, len(got), len(faults))
						}
						for i := range got {
							if got[i].Fault.Key() != want[i].Fault.Key() {
								t.Fatalf("%s workers=%d %v: result %d is for fault %s, want %s (merge order broken)",
									name, workers, schedule, i, got[i].Fault.Key(), want[i].Fault.Key())
							}
							if simInterval == 0 {
								if got[i].Status != want[i].Status {
									t.Errorf("%s workers=%d mode=%v %v: fault %s is %v, sequential says %v",
										name, workers, mode, schedule, got[i].Fault.Key(), got[i].Status, want[i].Status)
								}
							} else if classOf(got[i].Status) != classOf(want[i].Status) {
								t.Errorf("%s workers=%d mode=%v sim=%d %v: fault %s is %v, sequential says %v",
									name, workers, mode, simInterval, schedule, got[i].Fault.Key(), got[i].Status, want[i].Status)
							}
						}
						gs, ss := g.Stats(), seq.Stats()
						if gs.Faults != ss.Faults || gs.Redundant != ss.Redundant ||
							gs.Tested+gs.DetectedBySim != ss.Tested+ss.DetectedBySim ||
							gs.Aborted != ss.Aborted {
							t.Errorf("%s workers=%d %v: sharded stats %v disagree with sequential %v",
								name, workers, schedule, gs, ss)
						}
					}
				}
			}
		}
	}
}

// TestShardedPatternIndices checks that every merged result's PatternIndex
// points at a pattern of the merged test set that actually detects the
// fault, for tested and simulation-dropped faults alike, under both
// dispatch policies.
func TestShardedPatternIndices(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	for _, schedule := range []sched.Policy{sched.Static, sched.Steal} {
		opts := DefaultOptions(sensitize.Robust)
		opts.FaultSimInterval = 2 // aggressive dropping to exercise the exchange
		opts.Schedule = schedule
		g := New(c, opts)
		results := RunSharded(context.Background(), g, faults, 4)
		set := g.TestSet()
		if set.Len() == 0 {
			t.Fatal("no patterns generated")
		}
		sim := New(c, opts).sim
		for _, r := range results {
			if !r.Status.Detected() {
				continue
			}
			if r.PatternIndex < 0 || r.PatternIndex >= set.Len() {
				t.Errorf("%v: fault %s (%v) has pattern index %d outside the merged set (len %d)",
					schedule, r.Fault.Key(), r.Status, r.PatternIndex, set.Len())
				continue
			}
			if _, err := sim.Load([]pattern.Pair{set.Pairs[r.PatternIndex]}); err != nil {
				t.Fatal(err)
			}
			if sim.Detects(r.Fault, true) == 0 {
				t.Errorf("%v: pattern %d does not detect fault %s it is recorded for",
					schedule, r.PatternIndex, r.Fault.Key())
			}
		}
	}
}

// TestShardedSettleCallback checks that the serialized OnSettle callback
// fires exactly once per fault across all workers.
func TestShardedSettleCallback(t *testing.T) {
	c, err := bench.Get("cmp8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	var mu sync.Mutex
	seen := make(map[string]int)
	g := New(c, DefaultOptions(sensitize.Nonrobust))
	g.OnSettle = func(r FaultResult) {
		mu.Lock()
		defer mu.Unlock()
		seen[r.Fault.Key()]++
	}
	RunSharded(context.Background(), g, faults, 4)
	if len(seen) != len(faults) {
		t.Fatalf("OnSettle saw %d distinct faults, want %d", len(seen), len(faults))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("fault %s settled %d times", k, n)
		}
	}
}

// sortedPatterns renders a test set as a sorted multiset of pattern strings:
// the canonical form for comparing what was generated regardless of order.
func sortedPatterns(set *pattern.Set) []string {
	out := make([]string, set.Len())
	for i, p := range set.Pairs {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}

// TestSchedulerDeterminism is the determinism matrix of the dispatch layer:
// with the interleaved simulation off, every combination of workers in
// {1,2,4,8}, schedule in {static, steal}, escalation on/off and guidance
// on/off must produce identical per-fault classifications and an identical
// pattern multiset — the outcome may not depend on how work was spread over
// cores.  On top of the per-configuration matrix, prediction must not touch
// outcomes: the guided adaptive run must reproduce the unguided adaptive
// run's per-fault statuses exactly (hence coverage and aborts bit-identical)
// and generate the same number of patterns.  The patterns themselves may
// differ: a predicted-hard fault that would have settled in the width-1
// first pass takes its (equally valid) pattern from the width-W APTPG run
// instead, and APTPG enumerates alternatives across bit levels, so its
// pattern choice is width-dependent by design.  Pattern *multiset* equality
// is therefore guaranteed per configuration (the matrix above), not across
// the prediction dimension.
func TestSchedulerDeterminism(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	type config struct {
		escalate int
		guided   bool
	}
	statuses := make(map[config][]Status)
	patterns := make(map[config][]string)
	predicted := make(map[config]int)
	for _, cfg := range []config{{0, false}, {8, false}, {0, true}, {8, true}} {
		base := DefaultOptions(sensitize.Robust)
		base.FaultSimInterval = 0
		base.EscalationWidth = cfg.escalate
		base.GuidedEscalation = cfg.guided

		ref := New(c, base)
		want := ref.Run(context.Background(), faults)
		wantPatterns := sortedPatterns(ref.TestSet())
		statuses[cfg] = make([]Status, len(want))
		for i := range want {
			statuses[cfg][i] = want[i].Status
		}
		patterns[cfg] = wantPatterns
		predicted[cfg] = ref.Stats().PredictedHard

		for _, workers := range []int{1, 2, 4, 8} {
			for _, schedule := range []sched.Policy{sched.Static, sched.Steal} {
				opts := base
				opts.Schedule = schedule
				g := New(c, opts)
				got := RunSharded(context.Background(), g, faults, workers)
				tag := fmt.Sprintf("workers=%d schedule=%v escalate=%d guided=%v",
					workers, schedule, cfg.escalate, cfg.guided)
				for i := range got {
					if got[i].Status != want[i].Status {
						t.Errorf("%s: fault %s is %v, reference says %v",
							tag, got[i].Fault.Key(), got[i].Status, want[i].Status)
					}
				}
				gotPatterns := sortedPatterns(g.TestSet())
				if len(gotPatterns) != len(wantPatterns) {
					t.Fatalf("%s: %d patterns, reference has %d", tag, len(gotPatterns), len(wantPatterns))
				}
				for i := range gotPatterns {
					if gotPatterns[i] != wantPatterns[i] {
						t.Fatalf("%s: pattern multiset differs from the reference at %d:\n  %s\n  %s",
							tag, i, gotPatterns[i], wantPatterns[i])
					}
				}
			}
		}
	}

	// The guided dimension must actually be exercised, not vacuously equal.
	guidedAdaptive := config{8, true}
	if predicted[guidedAdaptive] == 0 {
		t.Fatal("guided adaptive run predicted no hard faults; the matrix does not exercise guidance")
	}
	t.Logf("guided adaptive: %d/%d faults predicted hard", predicted[guidedAdaptive], len(faults))

	// Prediction invariance: guided adaptive classifies every fault exactly
	// as unguided adaptive and emits one pattern per tested fault.
	unguided := config{8, false}
	for i, s := range statuses[guidedAdaptive] {
		if s != statuses[unguided][i] {
			t.Errorf("prediction changed fault %s: guided %v, unguided %v",
				faults[i].Key(), s, statuses[unguided][i])
		}
	}
	if len(patterns[guidedAdaptive]) != len(patterns[unguided]) {
		t.Fatalf("prediction changed the pattern count: guided %d, unguided %d",
			len(patterns[guidedAdaptive]), len(patterns[unguided]))
	}
}

// TestWidthDeterminism is the width dimension of the determinism matrix:
// with the interleaved simulation off, the per-fault classification may not
// depend on the word width — the single-bit baseline, the one-word width and
// the multi-word widths must produce bit-identical statuses, sequential or
// sharded.  (Patterns may differ across widths: APTPG enumerates alternatives
// across bit levels, so its pattern choice is width-dependent by design.)
func TestWidthDeterminism(t *testing.T) {
	c, err := bench.Get("adder8")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.EnumerateFaults(c, 0)
	var want []Status
	for _, width := range []int{1, 64, 128, 512} {
		opts := DefaultOptions(sensitize.Robust)
		opts.WordWidth = width
		opts.FaultSimInterval = 0
		g := New(c, opts)
		res := g.Run(context.Background(), faults)
		got := make([]Status, len(res))
		for i := range res {
			if res[i].Status == Aborted {
				t.Fatalf("width %d: fault %s aborted; the matrix needs complete searches",
					width, res[i].Fault.Key())
			}
			got[i] = res[i].Status
		}
		if want == nil {
			want = got
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("width %d: fault %s is %v, width 1 says %v",
					width, res[i].Fault.Key(), got[i], want[i])
			}
		}
		for _, workers := range []int{2, 8} {
			gs := New(c, opts)
			sharded := RunSharded(context.Background(), gs, faults, workers)
			for i := range sharded {
				if sharded[i].Status != want[i] {
					t.Errorf("width %d workers %d: fault %s is %v, reference says %v",
						width, workers, sharded[i].Fault.Key(), sharded[i].Status, want[i])
				}
			}
		}
	}
}

// TestSchedulerCompactedCoverage completes the determinism matrix on the
// compaction layer: with full compaction and the interleaved simulation on,
// the post-compaction coverage over the complete fault list must be
// bit-identical for every workers x schedule x escalation combination.
func TestSchedulerCompactedCoverage(t *testing.T) {
	c, err := bench.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.SampleFaults(c, 96, 11)

	for _, cfg := range []struct {
		escalate int
		guided   bool
	}{{0, false}, {16, false}, {16, true}} {
		// The coverage baseline is per grouping setting: adaptive grouping
		// legitimately generates different patterns than the fixed-width run
		// (and guided routing different ones than unguided, since APTPG
		// pattern choice is width-dependent), but within one setting the
		// dispatch dimensions must not matter.
		var want []bool
		for _, workers := range []int{1, 4} {
			for _, schedule := range []sched.Policy{sched.Static, sched.Steal} {
				opts := DefaultOptions(sensitize.Robust)
				opts.Compaction = compact.Full
				opts.Schedule = schedule
				opts.EscalationWidth = cfg.escalate
				opts.GuidedEscalation = cfg.guided
				g := New(c, opts)
				RunSharded(context.Background(), g, faults, workers)
				detected := detectedVector(t, c, g.TestSet().Pairs, faults)
				if want == nil {
					want = detected
					continue
				}
				for f := range want {
					if want[f] != detected[f] {
						t.Fatalf("workers=%d schedule=%v escalate=%d guided=%v: post-compaction coverage differs at fault %d",
							workers, schedule, cfg.escalate, cfg.guided, f)
					}
				}
			}
		}
	}
}

// TestWorkStealingBeatsStaticOnSkew is the shard-skew regression test: a
// fault ordering whose hard faults are clustered at the front must leave the
// static contiguous split with idle workers (queued units they are barred
// from taking), while the work-stealing policy rebalances them — asserted
// through the scheduler's steal/idle counters rather than wall clock.
func TestWorkStealingBeatsStaticOnSkew(t *testing.T) {
	c := bench.MustSynthesize(bench.Profile{
		Name: "skew", Inputs: 14, Outputs: 6, Gates: 170, Depth: 13, Seed: 71,
		InputFaninBias: 0.35, WideFaninFraction: 0.25, InverterFraction: 0.45,
	})
	opts := DefaultOptions(sensitize.Robust)
	opts.UseFPTPG = false // every fault pays the full backtracking search
	opts.WordWidth = 4    // small units, so the scheduler has something to balance
	opts.FaultSimInterval = 0
	opts.SubpathPruning = false
	opts.MaxBacktracks = 64

	// Probe a sample for the most and least expensive faults.
	sample := paths.SampleFaults(c, 96, 7)
	probe := New(c, opts)
	res := probe.Run(context.Background(), sample)
	hard, easy, hardCost, easyCost := 0, 0, -1, int(^uint(0)>>1)
	for i, r := range res {
		cost := r.Decisions + 16*r.Backtracks
		if cost > hardCost {
			hardCost, hard = cost, i
		}
		if cost < easyCost {
			easyCost, easy = cost, i
		}
	}
	if hardCost <= easyCost {
		t.Skipf("no cost skew in the sample (hard=%d easy=%d)", hardCost, easyCost)
	}
	t.Logf("hard fault cost %d (%v), easy fault cost %d", hardCost, res[hard].Status, easyCost)

	// Cluster 48 instances of the hard fault at the front, then 144 easy
	// ones: the static contiguous split gives the whole cluster to the first
	// worker.
	var faults []paths.Fault
	for i := 0; i < 48; i++ {
		faults = append(faults, sample[hard])
	}
	for i := 0; i < 144; i++ {
		faults = append(faults, sample[easy])
	}

	stats := make(map[sched.Policy]sched.Stats)
	for _, schedule := range []sched.Policy{sched.Static, sched.Steal} {
		o := opts
		o.Schedule = schedule
		g := New(c, o)
		RunSharded(context.Background(), g, faults, 4)
		stats[schedule] = g.Stats().Sched
		t.Logf("%v: %v", schedule, g.Stats().Sched)
	}

	if s := stats[sched.Steal]; s.Steals == 0 {
		t.Error("work-stealing run recorded no steals on a skewed ordering")
	}
	if s := stats[sched.Steal]; s.IdleUnits != 0 {
		t.Errorf("work-stealing run left %d queued units behind idle workers, want 0", s.IdleUnits)
	}
	if s := stats[sched.Static]; s.IdleUnits == 0 {
		t.Error("static run shows no idle skew; the regression scenario is not exercising the imbalance")
	}
	if stats[sched.Steal].IdleUnits >= stats[sched.Static].IdleUnits {
		t.Errorf("stealing did not beat static on idle units: steal=%d static=%d",
			stats[sched.Steal].IdleUnits, stats[sched.Static].IdleUnits)
	}
}

// TestEscalationAdaptiveGrouping pins the semantics of two-pass adaptive
// grouping: the cheap fault-serial pass settles the easy faults, only the
// survivors are escalated, and — since the escalation pass re-runs survivors
// at full width and budget — coverage never drops and aborts never grow
// relative to the fixed-width run.
func TestEscalationAdaptiveGrouping(t *testing.T) {
	for _, name := range []string{"c432", "cmp8"} {
		c, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		faults := paths.SampleFaults(c, 96, 5)
		fixed := DefaultOptions(sensitize.Robust)
		fixed.FaultSimInterval = 0
		gf := New(c, fixed)
		gf.Run(context.Background(), faults)

		adaptive := fixed
		adaptive.EscalationWidth = 32
		ga := New(c, adaptive)
		ga.Run(context.Background(), faults)

		sf, sa := gf.Stats(), ga.Stats()
		if sa.FirstPassSettled+sa.Escalated != sa.Faults {
			t.Errorf("%s: first-pass %d + escalated %d != faults %d",
				name, sa.FirstPassSettled, sa.Escalated, sa.Faults)
		}
		if sa.Escalated > 0 && sa.Sched.Passes != 2 {
			t.Errorf("%s: expected 2 scheduler passes with survivors, got %d", name, sa.Sched.Passes)
		}
		coverageF := sf.Tested + sf.DetectedBySim
		coverageA := sa.Tested + sa.DetectedBySim
		if coverageA < coverageF {
			t.Errorf("%s: adaptive grouping lost coverage: %d < %d", name, coverageA, coverageF)
		}
		if sa.Aborted > sf.Aborted {
			t.Errorf("%s: adaptive grouping aborted more faults (%d) than fixed width (%d)",
				name, sa.Aborted, sf.Aborted)
		}
		t.Logf("%s: first-pass settled %d/%d, escalated %d, sched %v",
			name, sa.FirstPassSettled, sa.Faults, sa.Escalated, sa.Sched)

		// The guided variant routes predicted-hard faults straight to the
		// wide pass.  The accounting invariant is unchanged (skipped faults
		// are escalated without a first-pass attempt), predictions are
		// reported, and the acceptance bar of every routing heuristic holds:
		// coverage never drops and aborts never grow relative to unguided
		// adaptive grouping.
		guided := adaptive
		guided.GuidedEscalation = true
		gg := New(c, guided)
		gg.Run(context.Background(), faults)
		sg := gg.Stats()
		if sg.FirstPassSettled+sg.Escalated != sg.Faults {
			t.Errorf("%s guided: first-pass %d + escalated %d != faults %d",
				name, sg.FirstPassSettled, sg.Escalated, sg.Faults)
		}
		// c432's reconvergent control logic has a genuine hard tail; cmp8's
		// score population is uniform (every path crosses the same XNOR/AND
		// reduction), and a uniform population must predict *nothing* hard —
		// the threshold policy's graceful degradation to unguided behavior.
		if name == "c432" && sg.PredictedHard == 0 {
			t.Errorf("%s guided: no fault predicted hard; the scenario does not exercise routing", name)
		}
		if name == "cmp8" && sg.PredictedHard != 0 {
			t.Errorf("%s guided: %d faults predicted hard on a uniform score population, want 0",
				name, sg.PredictedHard)
		}
		if sg.Escalated < sg.PredictedHard {
			t.Errorf("%s guided: escalated %d below the %d predicted-hard faults routed to the wide pass",
				name, sg.Escalated, sg.PredictedHard)
		}
		if want := float64(sg.PredictedHard) / float64(sg.Faults); sg.SkipRate() != want {
			t.Errorf("%s guided: SkipRate() = %v, want %v", name, sg.SkipRate(), want)
		}
		coverageG := sg.Tested + sg.DetectedBySim
		if coverageG < coverageA {
			t.Errorf("%s: guided routing lost coverage: %d < %d", name, coverageG, coverageA)
		}
		if sg.Aborted > sa.Aborted {
			t.Errorf("%s: guided routing aborted more faults (%d) than unguided adaptive (%d)",
				name, sg.Aborted, sa.Aborted)
		}
		t.Logf("%s guided: predicted hard %d/%d (skip rate %.1f%%), first-pass settled %d, escalated %d",
			name, sg.PredictedHard, sg.Faults, 100*sg.SkipRate(), sg.FirstPassSettled, sg.Escalated)
	}
}

// TestCancellationDrainsQueue cancels a multi-worker steal-scheduled
// escalating run mid-flight: RunSharded must return promptly with every
// fault settled (canceled ones Aborted with the cause), and the scheduler
// queues must not wedge any worker.
func TestCancellationDrainsQueue(t *testing.T) {
	c, err := bench.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.SampleFaults(c, 256, 9)
	opts := DefaultOptions(sensitize.Robust)
	opts.Schedule = sched.Steal
	opts.EscalationWidth = 16

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	settled := 0
	g := New(c, opts)
	var mu sync.Mutex
	g.OnSettle = func(FaultResult) {
		mu.Lock()
		defer mu.Unlock()
		settled++
		if settled == 4 {
			cancel()
		}
	}
	results := RunSharded(ctx, g, faults, 4)
	if len(results) != len(faults) {
		t.Fatalf("got %d results for %d faults", len(results), len(faults))
	}
	canceled := 0
	for _, r := range results {
		if r.Status == Pending {
			t.Fatalf("fault %s left Pending after cancellation", r.Fault.Key())
		}
		if r.Err != nil {
			canceled++
			if r.Status != Aborted {
				t.Errorf("canceled fault %s has status %v, want Aborted", r.Fault.Key(), r.Status)
			}
		}
	}
	if canceled == 0 {
		t.Error("no fault was cut short: cancellation did not interrupt the run")
	}
	st := g.Stats()
	if got := st.Tested + st.Redundant + st.Aborted + st.DetectedBySim; got != st.Faults {
		t.Errorf("statuses sum to %d, want %d", got, st.Faults)
	}
}
