package core

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/compact"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
	"repro/internal/sensitize"
)

// TestShardedCompactedMatchesSequentialCoverage is the cross-layer
// equivalence guarantee of the compaction subsystem: for any worker count,
// the compacted merged set must detect exactly the faults the sequential
// uncompacted run's set detects (measured by full fault simulation over the
// complete fault list), and every detected fault's PatternIndex must point
// at a pattern of the compacted set that really detects it.
func TestShardedCompactedMatchesSequentialCoverage(t *testing.T) {
	c, err := bench.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.SampleFaults(c, 96, 11)

	// Sequential, uncompacted reference.
	ref := New(c, DefaultOptions(sensitize.Robust))
	RunSharded(context.Background(), ref, faults, 1)
	want, err := faultsim.Run(c, ref.TestSet().Pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		opts := DefaultOptions(sensitize.Robust)
		opts.Compaction = compact.Full
		g := New(c, opts)
		results := RunSharded(context.Background(), g, faults, workers)
		set := g.TestSet()

		got, err := faultsim.Run(c, set.Pairs, faults, true)
		if err != nil {
			t.Fatal(err)
		}
		for f := range want.Detected {
			if want.Detected[f] != got.Detected[f] {
				t.Fatalf("workers=%d: fault %d detection differs: sequential=%v compacted=%v",
					workers, f, want.Detected[f], got.Detected[f])
			}
		}
		if set.Len() > ref.TestSet().Len() {
			t.Errorf("workers=%d: compacted set (%d pairs) larger than sequential uncompacted (%d)",
				workers, set.Len(), ref.TestSet().Len())
		}

		st := g.Stats()
		if st.Compaction.PairsBefore == 0 || st.Compaction.PairsAfter != set.Len() {
			t.Errorf("workers=%d: compaction stats inconsistent with set: %+v (set %d)",
				workers, st.Compaction, set.Len())
		}

		// Every covered fault must carry a valid index into the compacted set.
		for i, r := range results {
			if !r.Status.Detected() {
				continue
			}
			if r.PatternIndex < 0 || r.PatternIndex >= set.Len() {
				t.Fatalf("workers=%d: fault %d has pattern index %d outside the compacted set (len %d)",
					workers, i, r.PatternIndex, set.Len())
			}
			one, err := faultsim.Run(c, []pattern.Pair{set.Pairs[r.PatternIndex]},
				[]paths.Fault{r.Fault}, true)
			if err != nil {
				t.Fatal(err)
			}
			if !one.Detected[0] {
				t.Fatalf("workers=%d: pattern %d does not detect fault %d after compaction",
					workers, r.PatternIndex, i)
			}
		}
	}
}

// TestCompactionAccumulatesAcrossRuns checks that a second Run on the same
// generator compacts only its own patterns: the first run's compacted
// patterns stay in place.
func TestCompactionAccumulatesAcrossRuns(t *testing.T) {
	c, err := bench.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	all := paths.SampleFaults(c, 64, 3)
	opts := DefaultOptions(sensitize.Robust)
	opts.Compaction = compact.Full
	g := New(c, opts)

	RunSharded(context.Background(), g, all[:32], 2)
	firstLen := g.TestSet().Len()
	firstPairs := append([]pattern.Pair(nil), g.TestSet().Pairs...)

	RunSharded(context.Background(), g, all[32:], 2)
	if g.TestSet().Len() < firstLen {
		t.Fatalf("second run shrank the first run's patterns: %d -> %d", firstLen, g.TestSet().Len())
	}
	for i := range firstPairs {
		if g.TestSet().Pairs[i].String() != firstPairs[i].String() {
			t.Fatalf("pattern %d of the first run changed during the second run", i)
		}
	}
	// Coverage of both fault subsets must hold on the accumulated set.
	res, err := faultsim.Run(c, g.TestSet().Pairs, all, true)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, d := range res.Detected {
		if d {
			covered++
		}
	}
	if st := g.Stats(); covered < st.Tested+st.DetectedBySim {
		t.Errorf("accumulated set covers %d faults, stats claim %d", covered, st.Tested+st.DetectedBySim)
	}
}

// TestC7552ShardedCompactionReduction is the headline acceptance check: on
// the largest builtin circuit with four workers, full compaction must
// shrink the merged sharded test set by at least 20% while the measured
// fault coverage over the complete fault list stays bit-identical.
func TestC7552ShardedCompactionReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("c7552 generation is expensive; skipped with -short")
	}
	c, err := bench.Get("c7552")
	if err != nil {
		t.Fatal(err)
	}
	faults := paths.SampleFaults(c, 192, 1995)

	// One sharded run with unfilled tracking but no compaction: its set is
	// the uncompacted baseline, so before/after are measured on the same
	// run.
	opts := DefaultOptions(sensitize.Robust)
	opts.EmitUnfilled = true
	g := New(c, opts)
	RunSharded(context.Background(), g, faults, 4)
	set := g.TestSet()

	before, err := faultsim.Run(c, set.Pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	compacted, st, err := compact.Compact(c, set, faults, true, compact.Full, compact.ZeroFill())
	if err != nil {
		t.Fatal(err)
	}
	after, err := faultsim.Run(c, compacted.Pairs, faults, true)
	if err != nil {
		t.Fatal(err)
	}
	for f := range before.Detected {
		if before.Detected[f] != after.Detected[f] {
			t.Fatalf("coverage not bit-identical at fault %d: before=%v after=%v",
				f, before.Detected[f], after.Detected[f])
		}
	}
	if set.Len() == 0 {
		t.Fatal("no patterns generated")
	}
	reduction := st.Reduction()
	t.Logf("c7552 workers=4: %s", st)
	if reduction < 0.20 {
		t.Errorf("compaction reduced the set by %.1f%%, want >= 20%% (pairs %d -> %d)",
			reduction*100, set.Len(), compacted.Len())
	}
}
