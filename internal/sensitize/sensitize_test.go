package sensitize

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
)

func pathByNames(t *testing.T, c *circuit.Circuit, names ...string) paths.Path {
	t.Helper()
	nets := make([]circuit.NetID, len(names))
	for i, n := range names {
		nets[i] = c.NetByName(n)
		if nets[i] == circuit.InvalidNet {
			t.Fatalf("net %q not found", n)
		}
	}
	p := paths.Path{Nets: nets}
	if err := p.Validate(c); err != nil {
		t.Fatalf("path %v invalid: %v", names, err)
	}
	return p
}

func findAssignment(cond Conditions, net circuit.NetID) (logic.Value7, bool) {
	var v logic.Value7
	found := false
	for _, a := range cond.Assignments {
		if a.Net == net {
			v = v.Merge(a.Value)
			found = true
		}
	}
	return v, found
}

// TestSideInputValues checks the classical sensitization conditions for all
// gate kinds, transitions and test classes.
func TestSideInputValues(t *testing.T) {
	cases := []struct {
		kind logic.Kind
		tr   paths.Transition
		mode Mode
		want logic.Value7
	}{
		// AND/NAND: controlling value 0.  A falling on-path transition moves
		// towards the controlling value, so robust tests need stable 1.
		{logic.And, paths.Falling, Robust, logic.Stable1},
		{logic.And, paths.Rising, Robust, logic.Final1},
		{logic.And, paths.Falling, Nonrobust, logic.Final1},
		{logic.And, paths.Rising, Nonrobust, logic.Final1},
		{logic.Nand, paths.Falling, Robust, logic.Stable1},
		{logic.Nand, paths.Rising, Robust, logic.Final1},
		// OR/NOR: controlling value 1.  A rising on-path transition moves
		// towards the controlling value.
		{logic.Or, paths.Rising, Robust, logic.Stable0},
		{logic.Or, paths.Falling, Robust, logic.Final0},
		{logic.Or, paths.Rising, Nonrobust, logic.Final0},
		{logic.Nor, paths.Rising, Robust, logic.Stable0},
		{logic.Nor, paths.Falling, Robust, logic.Final0},
		// XOR/XNOR: no controlling value, side inputs must be steady.
		{logic.Xor, paths.Rising, Robust, logic.Stable0},
		{logic.Xor, paths.Falling, Robust, logic.Stable0},
		{logic.Xor, paths.Rising, Nonrobust, logic.Final0},
		{logic.Xnor, paths.Falling, Nonrobust, logic.Final0},
	}
	for _, tc := range cases {
		got, err := SideInputValue(tc.kind, tc.tr, tc.mode)
		if err != nil {
			t.Errorf("SideInputValue(%v, %v, %v): %v", tc.kind, tc.tr, tc.mode, err)
			continue
		}
		if got != tc.want {
			t.Errorf("SideInputValue(%v, %v, %v) = %v, want %v", tc.kind, tc.tr, tc.mode, got, tc.want)
		}
	}
	if _, err := SideInputValue(logic.Input, paths.Rising, Robust); err == nil {
		t.Error("SideInputValue should reject the Input kind")
	}
}

func TestSensitizeC17Robust(t *testing.T) {
	c := bench.C17()
	// Path 3 - 11 - 16 - 22 (three NAND stages), rising at input 3.
	p := pathByNames(t, c, "3", "11", "16", "22")
	f := paths.Fault{Path: p, Transition: paths.Rising}
	cond, err := Sensitize(c, f, Robust)
	if err != nil {
		t.Fatal(err)
	}
	// On-path transitions: rising at 3, falling at 11, rising at 16,
	// falling at 22.
	onPath := map[string]logic.Value7{
		"3": logic.Rise7, "11": logic.Fall7, "16": logic.Rise7, "22": logic.Fall7,
	}
	for name, want := range onPath {
		got, ok := findAssignment(cond, c.NetByName(name))
		if !ok {
			t.Errorf("no assignment for on-path net %s", name)
			continue
		}
		if got != want {
			t.Errorf("on-path %s = %v, want %v", name, got, want)
		}
	}
	// Side inputs: gate 11 = NAND(3,6) with rising on-path input (towards the
	// non-controlling 1): side input 6 needs final 1 only.  Gate 16 =
	// NAND(2,11) with falling on-path input (towards controlling 0): side
	// input 2 needs stable 1.  Gate 22 = NAND(10,16) with rising on-path
	// input: side input 10 needs final 1.
	sides := map[string]logic.Value7{
		"6": logic.Final1, "2": logic.Stable1, "10": logic.Final1,
	}
	for name, want := range sides {
		got, ok := findAssignment(cond, c.NetByName(name))
		if !ok {
			t.Errorf("no assignment for side input %s", name)
			continue
		}
		if got != want {
			t.Errorf("side input %s = %v, want %v", name, got, want)
		}
	}
	if cond.SelfConflicting() {
		t.Error("this fault's conditions should not self-conflict")
	}
}

func TestSensitizeNonrobustWeakensRobust(t *testing.T) {
	c := bench.PaperExample()
	// Every fault: the nonrobust conditions must be implied by (weaker than
	// or equal to) the robust ones on every net.
	for _, f := range paths.EnumerateFaults(c, 0) {
		robust, err := Sensitize(c, f, Robust)
		if err != nil {
			t.Fatal(err)
		}
		nonrobust, err := Sensitize(c, f, Nonrobust)
		if err != nil {
			t.Fatal(err)
		}
		robustByNet := make(map[circuit.NetID]logic.Value7)
		for _, a := range robust.Assignments {
			robustByNet[a.Net] = robustByNet[a.Net].Merge(a.Value)
		}
		for _, a := range nonrobust.Assignments {
			r := robustByNet[a.Net]
			if !r.Covers(a.Value) {
				t.Errorf("fault %s: nonrobust requirement %v at %s is not covered by robust %v",
					f.Describe(c), a.Value, c.NetName(a.Net), r)
			}
		}
	}
}

func TestSensitizeOnPathMatchesTransitions(t *testing.T) {
	c := bench.PaperExample()
	for _, f := range paths.EnumerateFaults(c, 0) {
		cond, err := Sensitize(c, f, Robust)
		if err != nil {
			t.Fatal(err)
		}
		trans := f.Transitions(c)
		idx := 0
		for _, a := range cond.Assignments {
			if !a.OnPath {
				continue
			}
			if a.Net != f.Path.Nets[idx] {
				t.Fatalf("on-path assignments out of order for %s", f.Describe(c))
			}
			if a.Value != trans[idx].Value7() {
				t.Errorf("fault %s: on-path value at %s = %v, want %v",
					f.Describe(c), c.NetName(a.Net), a.Value, trans[idx].Value7())
			}
			idx++
		}
		if idx != f.Path.Len() {
			t.Errorf("fault %s: %d on-path assignments, want %d", f.Describe(c), idx, f.Path.Len())
		}
	}
}

func TestSensitizeRejectsInvalidPath(t *testing.T) {
	c := bench.C17()
	bad := paths.Fault{Path: paths.Path{Nets: []circuit.NetID{c.NetByName("10"), c.NetByName("22")}}}
	if _, err := Sensitize(c, bad, Robust); err == nil {
		t.Error("Sensitize should reject a path that does not start at a primary input")
	}
}

func TestRequirementWords(t *testing.T) {
	c := bench.C17()
	p := pathByNames(t, c, "3", "11", "16", "22")
	f := paths.Fault{Path: p, Transition: paths.Rising}
	cond, err := Sensitize(c, f, Robust)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]logic.Word7, c.NumNets())
	cond.RequirementWords(words, 5)
	if got := words[c.NetByName("3")].Get(5); got != logic.Rise7 {
		t.Errorf("requirement at level 5 = %v, want Rise", got)
	}
	if got := words[c.NetByName("3")].Get(4); got != logic.X7 {
		t.Errorf("level 4 should be untouched, got %v", got)
	}
	wordsAll := make([]logic.Word7, c.NumNets())
	cond.RequirementWordsAll(wordsAll, logic.LevelMask(8))
	for lvl := 0; lvl < 8; lvl++ {
		if got := wordsAll[c.NetByName("2")].Get(lvl); got != logic.Stable1 {
			t.Errorf("flattened requirement at level %d = %v, want Stable1", lvl, got)
		}
	}
	if got := wordsAll[c.NetByName("2")].Get(8); got != logic.X7 {
		t.Errorf("level 8 should be untouched, got %v", got)
	}
}

// TestSelfConflicting builds a fault whose side-input requirements contradict
// each other: in the paper example, the path b-q-s-x with a rising transition
// at b requires side input c of gate q to be non-controlling while the
// reconvergent gate r (also fed by c) imposes its own requirement; depending
// on the structure this may or may not conflict, so here we use a dedicated
// circuit where the conflict is certain: z = AND(a, NOT a).
func TestSelfConflicting(t *testing.T) {
	b := circuit.NewBuilder("selfconflict")
	a := b.Input("a")
	na := b.Gate("na", logic.Not, a)
	z := b.Gate("z", logic.And, a, na)
	b.Output(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Path a - z (direct fanin), rising at a.  The side input "na" must be
	// final 1, which together with the on-path requirement a=1 is
	// inconsistent, but the inconsistency is only visible through the
	// inverter, so SelfConflicting (which does no implication) must NOT
	// report it; the implication engine will.
	p := paths.Path{Nets: []circuit.NetID{a, z}}
	f := paths.Fault{Path: p, Transition: paths.Rising}
	cond, err := Sensitize(c, f, Nonrobust)
	if err != nil {
		t.Fatal(err)
	}
	if cond.SelfConflicting() {
		t.Error("conflict through the inverter should not be visible without implications")
	}
	// Path a - na - z falling at a: on-path requires na = 1 while z's side
	// input a (the same net as the path input) requires 1 as well; the path
	// input itself requires final 0 -> direct self conflict on net a.
	p2 := paths.Path{Nets: []circuit.NetID{a, na, z}}
	f2 := paths.Fault{Path: p2, Transition: paths.Falling}
	cond2, err := Sensitize(c, f2, Nonrobust)
	if err != nil {
		t.Fatal(err)
	}
	if !cond2.SelfConflicting() {
		t.Error("requirements 0 and 1 on the same net should self-conflict")
	}
}
