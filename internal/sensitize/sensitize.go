// Package sensitize computes the path sensitization conditions for path
// delay faults: the values required on the on-path signals and on the
// off-path (side) inputs of every gate along the target path, for both the
// nonrobust and the robust test classes.
//
// The conditions follow the classical formulation used by the paper (and by
// Lin/Reddy for the robust class):
//
//   - every on-path signal carries the transition launched at the path input,
//     with its direction flipped by inverting gates;
//   - for nonrobust tests, every off-path input of an on-path gate must take
//     the gate's non-controlling value in the final (second) vector;
//   - for robust tests, an off-path input must in addition be stable at the
//     non-controlling value whenever the on-path input of its gate changes
//     towards the controlling value; when the on-path input changes towards
//     the non-controlling value the final non-controlling value suffices;
//   - XOR/XNOR gates have no controlling value: their off-path inputs must be
//     stable for both test classes; this package fixes them at stable 0,
//     matching the parity convention used by paths.Fault.Transitions.
package sensitize

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
)

// Mode selects the test class the conditions are generated for.
type Mode uint8

// The two test classes of the paper.
const (
	Nonrobust Mode = iota
	Robust
)

// String returns "nonrobust" or "robust".
func (m Mode) String() string {
	if m == Robust {
		return "robust"
	}
	return "nonrobust"
}

// Assignment is a single value requirement produced by sensitization.
type Assignment struct {
	Net   circuit.NetID
	Value logic.Value7
	// OnPath marks requirements on the target path itself (as opposed to
	// off-path side inputs).
	OnPath bool
}

// Conditions is the full set of requirements for one fault.
type Conditions struct {
	Fault       paths.Fault
	Mode        Mode
	Assignments []Assignment
}

// Sensitize computes the sensitization conditions of the fault in the given
// mode.  It returns an error if the fault's path is not structurally valid
// for the circuit.  Conflicting requirements (for example a net that is both
// an on-path signal and a side input demanding an incompatible value) are
// not resolved here; they are merged and detected by the implication engine,
// which is what identifies such faults as redundant.
func Sensitize(c *circuit.Circuit, f paths.Fault, mode Mode) (Conditions, error) {
	if err := f.Path.Validate(c); err != nil {
		return Conditions{}, fmt.Errorf("sensitize: %w", err)
	}
	return sensitizePrefix(c, f, mode, f.Path.Len())
}

// SensitizeSubpath computes the sensitization conditions of only the first
// length nets of the fault's path (the launch transition plus the on-path
// and off-path conditions of the corresponding gates).  It is used for
// subpath redundancy identification: if these conditions alone are
// contradictory, every fault whose path starts with the same prefix and
// launch transition is redundant.
func SensitizeSubpath(c *circuit.Circuit, f paths.Fault, mode Mode, length int) (Conditions, error) {
	if length < 1 || length > f.Path.Len() {
		return Conditions{}, fmt.Errorf("sensitize: prefix length %d out of range for a path of %d nets", length, f.Path.Len())
	}
	if err := f.Path.Validate(c); err != nil {
		return Conditions{}, fmt.Errorf("sensitize: %w", err)
	}
	return sensitizePrefix(c, f, mode, length)
}

func sensitizePrefix(c *circuit.Circuit, f paths.Fault, mode Mode, length int) (Conditions, error) {
	trans := f.Transitions(c)
	cond := Conditions{Fault: f, Mode: mode}

	// On-path requirements.
	for i, net := range f.Path.Nets[:length] {
		var v logic.Value7
		if mode == Robust {
			v = trans[i].Value7()
		} else {
			v = logic.Value7From3(trans[i].FinalValue3())
		}
		cond.Assignments = append(cond.Assignments, Assignment{Net: net, Value: v, OnPath: true})
	}

	// Off-path requirements: for every gate on the path (all path nets except
	// the primary input), every fanin that is not the on-path predecessor is
	// a side input.
	for i := 1; i < length; i++ {
		gateNet := f.Path.Nets[i]
		onPathIn := f.Path.Nets[i-1]
		g := c.Gate(gateNet)
		if len(g.Fanin) < 2 {
			continue // BUF/NOT have no side inputs
		}
		side, err := SideInputValue(g.Kind, trans[i-1], mode)
		if err != nil {
			return Conditions{}, fmt.Errorf("sensitize: gate %s: %w", g.Name, err)
		}
		seenOnPath := false
		for _, fanin := range g.Fanin {
			if fanin == onPathIn && !seenOnPath {
				// Only the first occurrence is the on-path connection; a gate
				// may (in degenerate netlists) list the same net twice.
				seenOnPath = true
				continue
			}
			cond.Assignments = append(cond.Assignments, Assignment{Net: fanin, Value: side})
		}
	}
	return cond, nil
}

// SideInputValue returns the value required on an off-path input of a gate
// of the given kind when the on-path input carries the given transition, for
// the given test class.
func SideInputValue(kind logic.Kind, onPath paths.Transition, mode Mode) (logic.Value7, error) {
	switch kind {
	case logic.And, logic.Nand, logic.Or, logic.Nor:
		ctrl, _ := kind.Controlling()
		nonCtrl, _ := kind.NonControlling()
		// Does the on-path input change towards the controlling value?
		towardsControlling := onPath.FinalValue3() == ctrl
		if mode == Robust && towardsControlling {
			// Robust tests demand the side inputs be steady at the
			// non-controlling value, otherwise an early change of a side
			// input could mask the late on-path transition.
			if nonCtrl == logic.One3 {
				return logic.Stable1, nil
			}
			return logic.Stable0, nil
		}
		// Nonrobust tests, and robust tests with the on-path transition
		// towards the non-controlling value, only need the final value.
		return logic.Value7From3(nonCtrl), nil
	case logic.Xor, logic.Xnor:
		// No controlling value: side inputs must not change.  Stable 0 is
		// the parity convention used throughout (paths.Fault.Transitions).
		if mode == Robust {
			return logic.Stable0, nil
		}
		return logic.Final0, nil
	case logic.Buf, logic.Not:
		return logic.X7, nil
	}
	return logic.X7, fmt.Errorf("gate kind %v cannot appear on a sensitized path", kind)
}

// RequirementWords folds the assignments into one requirement word per net,
// placing the requirement at the given bit level.  Assignments to the same
// net merge; incompatible requirements produce the conflict encoding, which
// the implication engine reports.  The words slice must have one entry per
// net of the circuit.
func (cond Conditions) RequirementWords(words []logic.Word7, level int) {
	for _, a := range cond.Assignments {
		if a.Value == logic.X7 {
			continue
		}
		words[a.Net].MergeAt(level, a.Value)
	}
}

// RequirementWordsAll folds the assignments into the requirement words at
// every bit level selected by mask (used when a fault is flattened for
// APTPG).
func (cond Conditions) RequirementWordsAll(words []logic.Word7, mask uint64) {
	for _, a := range cond.Assignments {
		if a.Value == logic.X7 {
			continue
		}
		words[a.Net] = words[a.Net].MergeMasked(logic.FillWord7(a.Value), mask)
	}
}

// SelfConflicting reports whether the conditions already contradict each
// other on some net, before any implication is performed (for example a
// reconvergent side input required at both 0 and 1).  Such faults are
// trivially redundant for the given test class.
func (cond Conditions) SelfConflicting() bool {
	merged := make(map[circuit.NetID]logic.Value7)
	for _, a := range cond.Assignments {
		v := merged[a.Net].Merge(a.Value)
		if v.IsConflict() {
			return true
		}
		merged[a.Net] = v
	}
	return false
}
