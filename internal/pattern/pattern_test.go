package pattern

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
)

func TestPairBasics(t *testing.T) {
	p := NewPair(4)
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 4; i++ {
		if p.V1[i] != logic.X3 || p.V2[i] != logic.X3 {
			t.Fatal("new pair should be all X")
		}
	}
	p.V1[0], p.V2[0] = logic.Zero3, logic.One3 // rising
	p.V1[1], p.V2[1] = logic.One3, logic.One3  // stable 1
	p.V1[2], p.V2[2] = logic.X3, logic.Zero3   // final 0 only
	if p.Value7(0) != logic.Rise7 {
		t.Errorf("Value7(0) = %v", p.Value7(0))
	}
	if p.Value7(1) != logic.Stable1 {
		t.Errorf("Value7(1) = %v", p.Value7(1))
	}
	if p.Value7(2) != logic.Final0 {
		t.Errorf("Value7(2) = %v", p.Value7(2))
	}
	if p.Value7(3) != logic.X7 {
		t.Errorf("Value7(3) = %v", p.Value7(3))
	}
	if p.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", p.Transitions())
	}

	clone := p.Clone()
	clone.V1[0] = logic.One3
	if p.V1[0] != logic.Zero3 {
		t.Error("Clone shares storage")
	}

	filled := p.FillX(logic.Zero3)
	if filled.V2[3] != logic.Zero3 || filled.V1[3] != logic.Zero3 {
		t.Error("FillX should fill unassigned positions")
	}
	if filled.V1[2] != logic.Zero3 {
		t.Error("FillX should copy the final value into an unknown initial value")
	}
	if filled.Transitions() != 1 {
		t.Error("FillX must not introduce new transitions")
	}
}

func TestPairStringRoundTrip(t *testing.T) {
	p := NewPair(3)
	p.V1[0], p.V2[0] = logic.Zero3, logic.One3
	p.V1[1], p.V2[1] = logic.One3, logic.One3
	s := p.String()
	if s != "01x -> 11x" {
		t.Errorf("String = %q", s)
	}
	q, err := ParsePair(s)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != s {
		t.Errorf("round trip gave %q", q.String())
	}
	if _, err := ParsePair("01"); err == nil {
		t.Error("pair without -> should fail")
	}
	if _, err := ParsePair("01 -> 0"); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := ParsePair("0z -> 00"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestSetWriteRead(t *testing.T) {
	c := bench.C17()
	s := NewSet(c)
	if len(s.InputNames) != 5 {
		t.Fatalf("input names = %v", s.InputNames)
	}
	p1 := NewPair(5).FillX(logic.Zero3)
	p2 := NewPair(5).FillX(logic.One3)
	p2.V1[0] = logic.Zero3
	s.Add(p1, "fault A")
	s.Add(p2, "")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	text := s.String()
	if !strings.Contains(text, "# inputs: 1 2 3 6 7") {
		t.Errorf("missing header in:\n%s", text)
	}
	if !strings.Contains(text, "fault A") {
		t.Errorf("missing target comment in:\n%s", text)
	}
	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("read back %d pairs", back.Len())
	}
	if back.Pairs[1].String() != p2.String() {
		t.Errorf("pair 1 changed: %q vs %q", back.Pairs[1].String(), p2.String())
	}
	if back.Targets[0] != "fault A" {
		t.Errorf("target lost: %q", back.Targets[0])
	}
	if len(back.InputNames) != 5 {
		t.Errorf("input names lost: %v", back.InputNames)
	}
	if _, err := Read(strings.NewReader("garbage line\n")); err == nil {
		t.Error("malformed set should fail to parse")
	}
}
