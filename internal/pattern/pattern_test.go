package pattern

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
)

func TestPairBasics(t *testing.T) {
	p := NewPair(4)
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 4; i++ {
		if p.V1[i] != logic.X3 || p.V2[i] != logic.X3 {
			t.Fatal("new pair should be all X")
		}
	}
	p.V1[0], p.V2[0] = logic.Zero3, logic.One3 // rising
	p.V1[1], p.V2[1] = logic.One3, logic.One3  // stable 1
	p.V1[2], p.V2[2] = logic.X3, logic.Zero3   // final 0 only
	if p.Value7(0) != logic.Rise7 {
		t.Errorf("Value7(0) = %v", p.Value7(0))
	}
	if p.Value7(1) != logic.Stable1 {
		t.Errorf("Value7(1) = %v", p.Value7(1))
	}
	if p.Value7(2) != logic.Final0 {
		t.Errorf("Value7(2) = %v", p.Value7(2))
	}
	if p.Value7(3) != logic.X7 {
		t.Errorf("Value7(3) = %v", p.Value7(3))
	}
	if p.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", p.Transitions())
	}

	clone := p.Clone()
	clone.V1[0] = logic.One3
	if p.V1[0] != logic.Zero3 {
		t.Error("Clone shares storage")
	}

	filled := p.FillX(logic.Zero3)
	if filled.V2[3] != logic.Zero3 || filled.V1[3] != logic.Zero3 {
		t.Error("FillX should fill unassigned positions")
	}
	if filled.V1[2] != logic.Zero3 {
		t.Error("FillX should copy the final value into an unknown initial value")
	}
	if filled.Transitions() != 1 {
		t.Error("FillX must not introduce new transitions")
	}
}

func TestPairStringRoundTrip(t *testing.T) {
	p := NewPair(3)
	p.V1[0], p.V2[0] = logic.Zero3, logic.One3
	p.V1[1], p.V2[1] = logic.One3, logic.One3
	s := p.String()
	if s != "01x -> 11x" {
		t.Errorf("String = %q", s)
	}
	q, err := ParsePair(s)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != s {
		t.Errorf("round trip gave %q", q.String())
	}
	if _, err := ParsePair("01"); err == nil {
		t.Error("pair without -> should fail")
	}
	if _, err := ParsePair("01 -> 0"); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := ParsePair("0z -> 00"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestSetWriteRead(t *testing.T) {
	c := bench.C17()
	s := NewSet(c)
	if len(s.InputNames) != 5 {
		t.Fatalf("input names = %v", s.InputNames)
	}
	p1 := NewPair(5).FillX(logic.Zero3)
	p2 := NewPair(5).FillX(logic.One3)
	p2.V1[0] = logic.Zero3
	s.Add(p1, "fault A")
	s.Add(p2, "")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	text := s.String()
	if !strings.Contains(text, "# inputs: 1 2 3 6 7") {
		t.Errorf("missing header in:\n%s", text)
	}
	if !strings.Contains(text, "fault A") {
		t.Errorf("missing target comment in:\n%s", text)
	}
	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("read back %d pairs", back.Len())
	}
	if back.Pairs[1].String() != p2.String() {
		t.Errorf("pair 1 changed: %q vs %q", back.Pairs[1].String(), p2.String())
	}
	if back.Targets[0] != "fault A" {
		t.Errorf("target lost: %q", back.Targets[0])
	}
	if len(back.InputNames) != 5 {
		t.Errorf("input names lost: %v", back.InputNames)
	}
	if _, err := Read(strings.NewReader("garbage line\n")); err == nil {
		t.Error("malformed set should fail to parse")
	}
}

// TestWriteReadRoundTripUnfilled checks the full round trip of a set with
// unfilled tracking, as produced by merged/compacted test sets: pair order,
// target association and unfilled annotations must all survive, and the
// serialization must be deterministic.
func TestWriteReadRoundTripUnfilled(t *testing.T) {
	s := &Set{InputNames: []string{"a", "b", "c"}}
	p1, _ := ParsePair("010 -> 011")
	u1, _ := ParsePair("x1x -> x11")
	p2, _ := ParsePair("111 -> 101")
	s.AddUnfilled(p1, u1, "fault A + fault B")
	s.Add(p2, "fault C")

	text := s.String()
	if !strings.Contains(text, "#~ unfilled: x1x -> x11") {
		t.Fatalf("unfilled annotation missing:\n%s", text)
	}
	if text != s.String() {
		t.Error("Write is not deterministic")
	}

	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("read back %d pairs", back.Len())
	}
	if back.Targets[0] != "fault A + fault B" || back.Targets[1] != "fault C" {
		t.Errorf("target ordering lost: %v", back.Targets)
	}
	if back.UnfilledAt(0).String() != u1.String() {
		t.Errorf("unfilled form lost: %q", back.UnfilledAt(0).String())
	}
	if back.UnfilledAt(1).String() != p2.String() {
		t.Errorf("fully specified pair's unfilled form should be itself: %q", back.UnfilledAt(1).String())
	}
	// Second round trip must be byte-identical (deterministic output).
	if back.String() != text {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", back.String(), text)
	}
}

// TestAppendKeepsUnfilled checks that Append propagates unfilled forms when
// either side tracks them (the sharded merge path).
func TestAppendKeepsUnfilled(t *testing.T) {
	p1, _ := ParsePair("00 -> 01")
	u1, _ := ParsePair("x0 -> x1")
	p2, _ := ParsePair("11 -> 10")

	a := &Set{}
	a.Add(p2, "plain")
	b := &Set{}
	b.AddUnfilled(p1, u1, "tracked")

	base := a.Append(b)
	if base != 1 || a.Len() != 2 {
		t.Fatalf("Append base=%d len=%d", base, a.Len())
	}
	if a.Unfilled == nil {
		t.Fatal("Append dropped unfilled tracking")
	}
	if a.UnfilledAt(0).String() != p2.String() {
		t.Errorf("backfilled unfilled form wrong: %q", a.UnfilledAt(0).String())
	}
	if a.UnfilledAt(1).String() != u1.String() {
		t.Errorf("appended unfilled form wrong: %q", a.UnfilledAt(1).String())
	}
	if a.Targets[1] != "tracked" {
		t.Errorf("target lost in Append: %v", a.Targets)
	}
}

// TestAddFrom checks the single-pair merge primitive the canonical-order
// sharded merge is built on: the pair arrives with its target and unfilled
// form, in any tracking combination.
func TestAddFrom(t *testing.T) {
	p1, _ := ParsePair("00 -> 01")
	u1, _ := ParsePair("x0 -> x1")
	p2, _ := ParsePair("11 -> 10")

	src := &Set{}
	src.Add(p2, "plain")
	src.AddUnfilled(p1, u1, "tracked")

	dst := &Set{}
	if idx := dst.AddFrom(src, 0); idx != 0 {
		t.Fatalf("first AddFrom returned index %d", idx)
	}
	if idx := dst.AddFrom(src, 1); idx != 1 {
		t.Fatalf("second AddFrom returned index %d", idx)
	}
	if dst.Len() != 2 || dst.Targets[0] != "plain" || dst.Targets[1] != "tracked" {
		t.Fatalf("AddFrom lost pairs or targets: len=%d targets=%v", dst.Len(), dst.Targets)
	}
	if dst.UnfilledAt(1).String() != u1.String() {
		t.Errorf("AddFrom lost the unfilled form: %q", dst.UnfilledAt(1).String())
	}
	if dst.UnfilledAt(0).String() != p2.String() {
		t.Errorf("backfilled unfilled form wrong: %q", dst.UnfilledAt(0).String())
	}

	// An untracked source into an untracked destination stays untracked.
	plain := &Set{}
	plainSrc := &Set{}
	plainSrc.Add(p2, "")
	plain.AddFrom(plainSrc, 0)
	if plain.Unfilled != nil {
		t.Error("AddFrom invented unfilled tracking for untracked sets")
	}
}

// TestSliceTruncate checks the window operations compaction splices with.
func TestSliceTruncate(t *testing.T) {
	s := &Set{InputNames: []string{"a", "b"}}
	for i := 0; i < 4; i++ {
		p, _ := ParsePair("01 -> 10")
		s.AddUnfilled(p, p, string(rune('a'+i)))
	}
	w := s.Slice(2)
	if w.Len() != 2 || w.Targets[0] != "c" || len(w.Unfilled) != 2 {
		t.Fatalf("Slice(2): len=%d targets=%v unfilled=%d", w.Len(), w.Targets, len(w.Unfilled))
	}
	if w.InputNames[0] != "a" {
		t.Error("Slice lost input names")
	}
	s.Truncate(1)
	if s.Len() != 1 || len(s.Targets) != 1 || len(s.Unfilled) != 1 {
		t.Fatalf("Truncate(1): len=%d targets=%d unfilled=%d", s.Len(), len(s.Targets), len(s.Unfilled))
	}
	s.Truncate(5) // no-op beyond length
	if s.Len() != 1 {
		t.Error("Truncate beyond length changed the set")
	}
}

// TestWriteNoHeaderWithoutNames checks that a set without input names emits
// no header (so Write/Read round-trips cleanly).
func TestWriteNoHeaderWithoutNames(t *testing.T) {
	s := &Set{}
	p, _ := ParsePair("0 -> 1")
	s.Add(p, "")
	if strings.Contains(s.String(), "# inputs") {
		t.Errorf("unexpected header: %q", s.String())
	}
	back, err := Read(strings.NewReader(s.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.InputNames != nil {
		t.Errorf("InputNames should stay nil, got %v", back.InputNames)
	}
	if back.String() != s.String() {
		t.Error("round trip differs")
	}
}
