// Package pattern represents two-vector delay test patterns and test sets.
//
// A path delay test is a pair of input vectors (V1, V2): V1 initialises the
// circuit, V2 launches the transitions, and the outputs are sampled one
// clock period after V2 is applied.  Vectors are stored positionally,
// aligned with circuit.Inputs().
package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Pair is a two-vector test.  V1 and V2 hold one three-valued value per
// primary input, in the order of circuit.Inputs().  X entries are inputs the
// test does not care about.
type Pair struct {
	V1 []logic.Value3
	V2 []logic.Value3
}

// NewPair returns a pair with both vectors fully unassigned for a circuit
// with n primary inputs.
func NewPair(n int) Pair {
	p := Pair{V1: make([]logic.Value3, n), V2: make([]logic.Value3, n)}
	for i := 0; i < n; i++ {
		p.V1[i] = logic.X3
		p.V2[i] = logic.X3
	}
	return p
}

// Len returns the number of inputs covered by the pair.
func (p Pair) Len() int { return len(p.V2) }

// Clone returns a deep copy.
func (p Pair) Clone() Pair {
	return Pair{
		V1: append([]logic.Value3(nil), p.V1...),
		V2: append([]logic.Value3(nil), p.V2...),
	}
}

// FillX replaces every unassigned value by fill in both vectors (keeping
// V1 = V2 at positions where both were X, so no spurious transitions are
// introduced).
func (p Pair) FillX(fill logic.Value3) Pair {
	out := p.Clone()
	for i := range out.V1 {
		if out.V2[i] == logic.X3 {
			out.V2[i] = fill
		}
		if out.V1[i] == logic.X3 {
			out.V1[i] = out.V2[i]
		}
	}
	return out
}

// Value7 returns the seven-valued value seen by input position i across the
// two vectors: a stable value when V1 equals V2, a transition when they
// differ, and the weaker final-only value when V1 is unknown.
func (p Pair) Value7(i int) logic.Value7 {
	v1, v2 := p.V1[i], p.V2[i]
	switch {
	case !v2.IsAssigned():
		return logic.X7
	case !v1.IsAssigned():
		return logic.Value7From3(v2)
	case v1 == v2 && v2 == logic.One3:
		return logic.Stable1
	case v1 == v2:
		return logic.Stable0
	case v2 == logic.One3:
		return logic.Rise7
	default:
		return logic.Fall7
	}
}

// Transitions returns the number of input positions whose value changes
// between V1 and V2.
func (p Pair) Transitions() int {
	n := 0
	for i := range p.V1 {
		if p.V1[i].IsAssigned() && p.V2[i].IsAssigned() && p.V1[i] != p.V2[i] {
			n++
		}
	}
	return n
}

// String renders the pair as "V1 -> V2" bit strings (x for unassigned),
// input 0 leftmost.
func (p Pair) String() string {
	return vectorString(p.V1) + " -> " + vectorString(p.V2)
}

func vectorString(v []logic.Value3) string {
	var sb strings.Builder
	for _, x := range v {
		sb.WriteString(x.String())
	}
	return strings.ToLower(sb.String())
}

// ParsePair parses the notation produced by String.
func ParsePair(s string) (Pair, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return Pair{}, fmt.Errorf("pattern: missing \"->\" in %q", s)
	}
	v1, err := parseVector(strings.TrimSpace(parts[0]))
	if err != nil {
		return Pair{}, err
	}
	v2, err := parseVector(strings.TrimSpace(parts[1]))
	if err != nil {
		return Pair{}, err
	}
	if len(v1) != len(v2) {
		return Pair{}, fmt.Errorf("pattern: vector lengths differ in %q", s)
	}
	return Pair{V1: v1, V2: v2}, nil
}

func parseVector(s string) ([]logic.Value3, error) {
	out := make([]logic.Value3, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			out[i] = logic.Zero3
		case '1':
			out[i] = logic.One3
		case 'x', 'X':
			out[i] = logic.X3
		default:
			return nil, fmt.Errorf("pattern: invalid character %q in vector %q", s[i], s)
		}
	}
	return out, nil
}

// Set is an ordered collection of test pairs for one circuit.
type Set struct {
	InputNames []string
	Pairs      []Pair
	// Targets optionally records, per pair, a description of the fault the
	// pair was generated for (informational only).
	Targets []string
	// Unfilled, when non-nil, holds one X-preserving pair per test pair: the
	// pair as emitted by the generator before don't-care filling, with every
	// input the test does not constrain left at X.  It is the raw material of
	// static compaction (compatible pairs can only be recognized while the
	// don't-care information is still present).  Either nil (not tracked) or
	// exactly len(Pairs) long.
	Unfilled []Pair
}

// NewSet returns an empty test set for the circuit.
func NewSet(c *circuit.Circuit) *Set {
	names := make([]string, len(c.Inputs()))
	for i, in := range c.Inputs() {
		names[i] = c.NetName(in)
	}
	return &Set{InputNames: names}
}

// Add appends a pair (with an optional target description).
func (s *Set) Add(p Pair, target string) {
	s.Pairs = append(s.Pairs, p)
	s.Targets = append(s.Targets, target)
	if s.Unfilled != nil {
		// A pair added without an explicit unfilled form is its own: every
		// value is treated as specified.
		s.Unfilled = append(s.Unfilled, p)
	}
}

// AddUnfilled appends a pair together with its X-preserving (pre-fill) form
// and switches the set to unfilled tracking if it was not tracking yet.
func (s *Set) AddUnfilled(filled, unfilled Pair, target string) {
	s.trackUnfilled()
	s.Pairs = append(s.Pairs, filled)
	s.Targets = append(s.Targets, target)
	s.Unfilled = append(s.Unfilled, unfilled)
}

// trackUnfilled switches the set to unfilled tracking, backfilling earlier
// pairs with themselves (a fully specified pair is its own unfilled form).
func (s *Set) trackUnfilled() {
	if s.Unfilled != nil {
		return
	}
	s.Unfilled = make([]Pair, len(s.Pairs))
	copy(s.Unfilled, s.Pairs)
}

// UnfilledAt returns the X-preserving form of pair i: the recorded unfilled
// pair when the set tracks them, and the (fully specified) pair itself
// otherwise.
func (s *Set) UnfilledAt(i int) Pair {
	if s.Unfilled != nil && i < len(s.Unfilled) {
		return s.Unfilled[i]
	}
	return s.Pairs[i]
}

// Len returns the number of pairs in the set.
func (s *Set) Len() int { return len(s.Pairs) }

// Append appends every pair of other (with its target description and, when
// tracked by either set, its unfilled form) to s and returns the index the
// first appended pair received.  The pairs themselves are shared, not
// copied; they are treated as immutable after generation.
//
//atpgvet:deterministic
func (s *Set) Append(other *Set) int {
	base := len(s.Pairs)
	if other == nil {
		return base
	}
	if s.Unfilled != nil || other.Unfilled != nil {
		s.trackUnfilled()
		for i := range other.Pairs {
			s.Unfilled = append(s.Unfilled, other.UnfilledAt(i))
		}
	}
	s.Pairs = append(s.Pairs, other.Pairs...)
	for i := range other.Pairs {
		target := ""
		if i < len(other.Targets) {
			target = other.Targets[i]
		}
		s.Targets = append(s.Targets, target)
	}
	return base
}

// AddFrom appends pair i of other — with its target description and, when
// tracked by either set, its unfilled form — to s and returns the index it
// received.  It is the single-pair counterpart of Append, used by the
// sharded merge to reassemble worker sets in canonical fault order.  The
// pair is shared, not copied (pairs are immutable after generation).
//
//atpgvet:deterministic
func (s *Set) AddFrom(other *Set, i int) int {
	idx := len(s.Pairs)
	if s.Unfilled != nil || other.Unfilled != nil {
		s.trackUnfilled()
		s.Unfilled = append(s.Unfilled, other.UnfilledAt(i))
	}
	s.Pairs = append(s.Pairs, other.Pairs[i])
	target := ""
	if i < len(other.Targets) {
		target = other.Targets[i]
	}
	s.Targets = append(s.Targets, target)
	return idx
}

// Slice returns a new set holding the pairs from index from on (sharing the
// underlying pairs, which are immutable after generation).
func (s *Set) Slice(from int) *Set {
	if from < 0 {
		from = 0
	}
	if from > len(s.Pairs) {
		from = len(s.Pairs)
	}
	out := &Set{InputNames: s.InputNames}
	out.Pairs = append(out.Pairs, s.Pairs[from:]...)
	for i := from; i < len(s.Pairs); i++ {
		target := ""
		if i < len(s.Targets) {
			target = s.Targets[i]
		}
		out.Targets = append(out.Targets, target)
	}
	if s.Unfilled != nil {
		out.Unfilled = append([]Pair{}, s.Unfilled[from:]...)
	}
	return out
}

// Truncate shortens the set to its first n pairs.
func (s *Set) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(s.Pairs) {
		return
	}
	s.Pairs = s.Pairs[:n]
	if n < len(s.Targets) {
		s.Targets = s.Targets[:n]
	}
	if s.Unfilled != nil && n < len(s.Unfilled) {
		s.Unfilled = s.Unfilled[:n]
	}
}

// Write emits the test set in a simple deterministic text format: a header
// line with the input names (omitted when there are none), then one
// "V1 -> V2  # target" line per pair, in pair order, each followed by a
// "#~ unfilled:" annotation when the set tracks an unfilled form that
// differs from the pair.  The output depends only on the set's contents, so
// equal sets always serialize to identical bytes.
//
//atpgvet:deterministic
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if len(s.InputNames) > 0 {
		fmt.Fprintf(bw, "# inputs: %s\n", strings.Join(s.InputNames, " "))
	}
	for i, p := range s.Pairs {
		target := ""
		if i < len(s.Targets) && s.Targets[i] != "" {
			target = "  # " + sanitizeTarget(s.Targets[i])
		}
		fmt.Fprintf(bw, "%s%s\n", p.String(), target)
		if s.Unfilled != nil && i < len(s.Unfilled) && !samePair(s.Unfilled[i], p) {
			fmt.Fprintf(bw, "#~ unfilled: %s\n", s.Unfilled[i].String())
		}
	}
	return bw.Flush()
}

// sanitizeTarget makes a target description safe for the one-line format.
func sanitizeTarget(t string) string {
	t = strings.ReplaceAll(t, "\n", " ")
	return strings.ReplaceAll(t, "\r", " ")
}

// samePair reports whether two pairs carry identical vectors.
func samePair(a, b Pair) bool {
	if len(a.V1) != len(b.V1) || len(a.V2) != len(b.V2) {
		return false
	}
	for i := range a.V1 {
		if a.V1[i] != b.V1[i] || a.V2[i] != b.V2[i] {
			return false
		}
	}
	return true
}

// Read parses a test set written by Write.  Input names are restored from
// the header and unfilled forms from their "#~ unfilled:" annotations when
// present.
func Read(r io.Reader) (*Set, error) {
	s := &Set{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case strings.HasPrefix(line, "# inputs:") && s.InputNames == nil:
				s.InputNames = strings.Fields(strings.TrimPrefix(line, "# inputs:"))
			case strings.HasPrefix(line, "#~ unfilled:"):
				if len(s.Pairs) == 0 {
					return nil, fmt.Errorf("line %d: unfilled annotation before any pair", lineNo)
				}
				u, err := ParsePair(strings.TrimSpace(strings.TrimPrefix(line, "#~ unfilled:")))
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				s.trackUnfilled()
				s.Unfilled[len(s.Pairs)-1] = u
			}
			continue
		}
		target := ""
		if idx := strings.Index(line, "#"); idx >= 0 {
			target = strings.TrimSpace(line[idx+1:])
			line = strings.TrimSpace(line[:idx])
		}
		p, err := ParsePair(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.Pairs = append(s.Pairs, p)
		s.Targets = append(s.Targets, target)
		if s.Unfilled != nil {
			s.Unfilled = append(s.Unfilled, p)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the whole set.
func (s *Set) String() string {
	var sb strings.Builder
	_ = s.Write(&sb)
	return sb.String()
}
