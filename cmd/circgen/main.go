// Command circgen materialises benchmark circuits as ISCAS .bench files:
// either one of the built-in profile stand-ins (c432 ... s38584), one of the
// embedded/parametric circuits (c17, paper, adder16, ...), or a custom
// synthetic circuit described by flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/atpg"
)

func main() {
	var (
		name    = flag.String("circuit", "", "built-in circuit or profile name")
		list    = flag.Bool("list", false, "list all built-in circuit names")
		out     = flag.String("out", "", "output file (default: stdout)")
		inputs  = flag.Int("inputs", 0, "custom circuit: number of primary inputs")
		outputs = flag.Int("outputs", 0, "custom circuit: number of primary outputs")
		gates   = flag.Int("gates", 0, "custom circuit: number of gates")
		depth   = flag.Int("depth", 0, "custom circuit: target logic depth")
		seed    = flag.Int64("seed", 1, "custom circuit: generator seed")
	)
	flag.Parse()

	if *list {
		for _, n := range atpg.BuiltinNames() {
			fmt.Println(n)
		}
		return
	}

	var (
		c   *atpg.Circuit
		err error
	)
	switch {
	case *name != "":
		c, err = atpg.Builtin(*name)
	case *gates > 0:
		p := atpg.Profile{
			Name: "custom", Inputs: *inputs, Outputs: *outputs, Gates: *gates, Depth: *depth, Seed: *seed,
			InputFaninBias: 0.5, WideFaninFraction: 0.15, InverterFraction: 0.25,
		}
		c, err = atpg.Synthesize(p)
	default:
		err = fmt.Errorf("either -circuit or a custom -gates/-inputs/-outputs description is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteBench(w); err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}
