// Command circgen materialises benchmark circuits as ISCAS .bench files:
// either one of the built-in profile stand-ins (c432 ... s38584), one of the
// embedded/parametric circuits (c17, paper, adder16, ...), or a custom
// synthetic circuit described by flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/atpg"
)

func main() {
	var (
		name    = flag.String("circuit", "", "built-in circuit or profile name")
		list    = flag.Bool("list", false, "list all built-in circuit names")
		all     = flag.Bool("all", false, "materialize every built-in profile circuit into -dir")
		dir     = flag.String("dir", "", "with -all: directory to write the .bench files to")
		workers = flag.Int("workers", 1, "with -all: synthesize circuits on this many goroutines (0 = one per core)")
		out     = flag.String("out", "", "output file (default: stdout)")
		inputs  = flag.Int("inputs", 0, "custom circuit: number of primary inputs")
		outputs = flag.Int("outputs", 0, "custom circuit: number of primary outputs")
		gates   = flag.Int("gates", 0, "custom circuit: number of gates")
		depth   = flag.Int("depth", 0, "custom circuit: target logic depth")
		seed    = flag.Int64("seed", 1, "custom circuit: generator seed")
	)
	flag.Parse()

	if *list {
		for _, n := range atpg.BuiltinNames() {
			fmt.Println(n)
		}
		return
	}
	if *all {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "circgen: -all requires -dir")
			os.Exit(1)
		}
		if err := writeAll(*dir, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "circgen:", err)
			os.Exit(1)
		}
		return
	}

	var (
		c   *atpg.Circuit
		err error
	)
	switch {
	case *name != "":
		c, err = atpg.Builtin(*name)
	case *gates > 0:
		p := atpg.Profile{
			Name: "custom", Inputs: *inputs, Outputs: *outputs, Gates: *gates, Depth: *depth, Seed: *seed,
			InputFaninBias: 0.5, WideFaninFraction: 0.15, InverterFraction: 0.25,
		}
		c, err = atpg.Synthesize(p)
	default:
		err = fmt.Errorf("either -circuit or a custom -gates/-inputs/-outputs description is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := c.WriteBench(w); err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}

// writeAll synthesizes every built-in profile circuit on workers goroutines
// and writes one <name>.bench file per profile into dir.
func writeAll(dir string, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	profiles := atpg.Profiles()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = writeOne(dir, profiles[i])
			}
		}()
	}
	for i := range profiles {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s: %w", profiles[i].Name, err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, profiles[i].Name+".bench"))
	}
	return nil
}

func writeOne(dir string, p atpg.Profile) error {
	c, err := atpg.Synthesize(p)
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, p.Name+".bench"))
	if err != nil {
		return err
	}
	if err := c.WriteBench(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
