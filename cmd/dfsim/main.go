// Command dfsim is a parallel-pattern path delay fault simulator: it reads a
// test set (as written by cmd/tip) and reports the robust and nonrobust path
// delay fault coverage over a sample of the circuit's faults.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/pattern"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		patternFile = flag.String("patterns", "", "test set file (as written by cmd/tip -out)")
		sample      = flag.Int("sample", 1000, "number of faults to sample (0 = enumerate all; beware of path explosion)")
		seed        = flag.Int64("seed", 1, "fault sampling seed")
	)
	flag.Parse()

	c, err := loadCircuit(*circuitName, *benchFile)
	if err != nil {
		fail(err)
	}
	if *patternFile == "" {
		fail(fmt.Errorf("-patterns is required"))
	}
	f, err := os.Open(*patternFile)
	if err != nil {
		fail(err)
	}
	set, err := pattern.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if set.Len() == 0 {
		fail(fmt.Errorf("test set %s is empty", *patternFile))
	}
	if got, want := set.Pairs[0].Len(), len(c.Inputs()); got != want {
		fail(fmt.Errorf("test set has %d inputs per vector, circuit has %d", got, want))
	}

	var faults []paths.Fault
	if *sample <= 0 {
		faults = paths.EnumerateFaults(c, 0)
	} else {
		faults = paths.SampleFaults(c, *sample, *seed)
	}

	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("test pairs: %d, faults simulated: %d\n", set.Len(), len(faults))
	for _, robust := range []bool{false, true} {
		cov, err := faultsim.Coverage(c, set.Pairs, faults, robust)
		if err != nil {
			fail(err)
		}
		label := "nonrobust"
		if robust {
			label = "robust"
		}
		fmt.Printf("%-10s coverage: %6.2f%%\n", label, cov*100)
	}
}

func loadCircuit(name, file string) (*circuit.Circuit, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -circuit or -bench, not both")
	case name != "":
		return bench.Get(name)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(file, f)
	default:
		return nil, fmt.Errorf("one of -circuit or -bench is required")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfsim:", err)
	os.Exit(1)
}
