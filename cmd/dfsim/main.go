// Command dfsim is a parallel-pattern path delay fault simulator: it reads a
// test set (as written by cmd/tip) and reports the robust and nonrobust path
// delay fault coverage over a sample of the circuit's faults.  With
// -compact it also statically compacts the test set against the sampled
// fault list (reverse-order simulation dropping, plus compatible-pair
// merging at level full) before reporting, and -out writes the compacted
// set back out; the compacted coverage in the selected class is identical
// by construction.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/atpg"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		patternFile = flag.String("patterns", "", "test set file (as written by cmd/tip -out)")
		sample      = flag.Int("sample", 1000, "number of faults to sample (0 = enumerate all; beware of path explosion)")
		seed        = flag.Int64("seed", 1, "fault sampling seed")
		workers     = flag.Int("workers", 1, "worker goroutines to shard the fault list across (0 = one per core)")
		compactStr  = flag.String("compact", "none", "statically compact the test set against the fault list: none, reverse or full")
		class       = flag.String("class", "robust", "test class the compaction preserves coverage in: robust or nonrobust")
		xfill       = flag.String("xfill", "zero", "don't-care fill for merged pairs: zero, one or random")
		xfillSeed   = flag.Int64("xfill-seed", 1995, "seed for -xfill random")
		out         = flag.String("out", "", "write the (compacted) test set to this file")
	)
	flag.Parse()

	c, err := atpg.LoadCircuit(*circuitName, *benchFile)
	if err != nil {
		fail(err)
	}
	if *patternFile == "" {
		fail(fmt.Errorf("-patterns is required"))
	}
	set, err := atpg.LoadTests(*patternFile)
	if err != nil {
		fail(err)
	}
	if set.Len() == 0 {
		fail(fmt.Errorf("test set %s is empty", *patternFile))
	}
	if got, want := set.Pairs[0].Len(), c.NumInputs(); got != want {
		fail(fmt.Errorf("test set has %d inputs per vector, circuit has %d", got, want))
	}

	var faults []atpg.Fault
	if *sample <= 0 {
		faults = atpg.AllFaults(c, 0)
	} else {
		faults = atpg.SampleFaults(c, *sample, *seed)
	}

	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("test pairs: %d, faults simulated: %d\n", set.Len(), len(faults))

	level, err := atpg.ParseCompaction(*compactStr)
	if err != nil {
		fail(err)
	}
	if level != atpg.CompactNone {
		mode, err := atpg.ParseMode(*class)
		if err != nil {
			fail(err)
		}
		fill, err := atpg.ParseXFill(*xfill, *xfillSeed)
		if err != nil {
			fail(err)
		}
		compacted, st, err := atpg.CompactTests(c, set, faults, mode == atpg.Robust, level, fill)
		if err != nil {
			fail(err)
		}
		set = compacted
		fmt.Printf("compaction (%s, %s class): %s\n", level, *class, st)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := set.Write(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d test pairs to %s\n", set.Len(), *out)
	}

	for _, robust := range []bool{false, true} {
		res, err := atpg.SimulateParallel(c, set.Pairs, faults, robust, *workers)
		if err != nil {
			fail(err)
		}
		label := "nonrobust"
		if robust {
			label = "robust"
		}
		cov := 0.0
		if len(faults) > 0 {
			cov = float64(res.NumDetected) / float64(len(faults))
		}
		fmt.Printf("%-10s coverage: %6.2f%%\n", label, cov*100)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfsim:", err)
	os.Exit(1)
}
