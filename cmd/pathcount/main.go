// Command pathcount reports the structural statistics of a benchmark
// circuit that matter for path delay fault testing: gate counts, logic
// depth, the exact number of structural paths and path delay faults, and the
// nets carrying the most paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/atpg"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		top         = flag.Int("top", 5, "list the N nets with the most paths through them")
		all         = flag.Bool("all", false, "report every built-in profile circuit")
		workers     = flag.Int("workers", 1, "with -all: synthesize and count circuits on this many goroutines (0 = one per core)")
	)
	flag.Parse()

	if *all {
		fmt.Printf("%-10s %8s %8s %8s %8s %18s\n", "circuit", "inputs", "outputs", "gates", "depth", "path delay faults")
		profiles := atpg.Profiles()
		rows := make([]string, len(profiles))
		n := *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					p := profiles[i]
					c, err := atpg.Synthesize(p)
					if err != nil {
						rows[i] = fmt.Sprintf("%-10s error: %v\n", p.Name, err)
						continue
					}
					st := c.Stats()
					rows[i] = fmt.Sprintf("%-10s %8d %8d %8d %8d %18s\n",
						p.Name, st.Inputs, st.Outputs, st.Gates, st.MaxLevel, c.FaultCount().String())
				}
			}()
		}
		for i := range profiles {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for _, r := range rows {
			fmt.Print(r)
		}
		return
	}

	c, err := atpg.LoadCircuit(*circuitName, *benchFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathcount:", err)
		os.Exit(1)
	}
	st := c.Stats()
	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("gate mix:")
	for kind, n := range st.KindCounts {
		fmt.Printf(" %s=%d", kind, n)
	}
	fmt.Println()
	fmt.Printf("structural paths:  %s\n", c.PathCount().String())
	fmt.Printf("path delay faults: %s\n", c.FaultCount().String())

	if *top > 0 {
		fmt.Printf("nets carrying the most paths:\n")
		for _, np := range c.BusiestNets(*top) {
			fmt.Printf("  %-12s %s paths\n", np.Name, np.Paths.String())
		}
	}
}
