// Command pathcount reports the structural statistics of a benchmark
// circuit that matter for path delay fault testing: gate counts, logic
// depth, the exact number of structural paths and path delay faults, and the
// nets carrying the most paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/paths"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		top         = flag.Int("top", 5, "list the N nets with the most paths through them")
		all         = flag.Bool("all", false, "report every built-in profile circuit")
	)
	flag.Parse()

	if *all {
		fmt.Printf("%-10s %8s %8s %8s %8s %18s\n", "circuit", "inputs", "outputs", "gates", "depth", "path delay faults")
		for _, p := range bench.Profiles() {
			c, err := bench.Synthesize(p)
			if err != nil {
				fmt.Printf("%-10s error: %v\n", p.Name, err)
				continue
			}
			st := c.Stats()
			fmt.Printf("%-10s %8d %8d %8d %8d %18s\n",
				p.Name, st.Inputs, st.Outputs, st.Gates, st.MaxLevel, paths.CountFaults(c).String())
		}
		return
	}

	c, err := loadCircuit(*circuitName, *benchFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathcount:", err)
		os.Exit(1)
	}
	st := c.Stats()
	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("gate mix:")
	for kind, n := range st.KindCounts {
		fmt.Printf(" %s=%d", kind, n)
	}
	fmt.Println()
	fmt.Printf("structural paths:  %s\n", paths.CountPaths(c).String())
	fmt.Printf("path delay faults: %s\n", paths.CountFaults(c).String())

	if *top > 0 {
		through := paths.PathsThrough(c)
		ids := make([]circuit.NetID, 0, c.NumNets())
		for i := 0; i < c.NumNets(); i++ {
			ids = append(ids, circuit.NetID(i))
		}
		sort.Slice(ids, func(i, j int) bool { return through[ids[i]].Cmp(through[ids[j]]) > 0 })
		fmt.Printf("nets carrying the most paths:\n")
		for i := 0; i < *top && i < len(ids); i++ {
			fmt.Printf("  %-12s %s paths\n", c.NetName(ids[i]), through[ids[i]].String())
		}
	}
}

func loadCircuit(name, file string) (*circuit.Circuit, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -circuit or -bench, not both")
	case name != "":
		return bench.Get(name)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(file, f)
	default:
		return nil, fmt.Errorf("one of -circuit or -bench is required")
	}
}
