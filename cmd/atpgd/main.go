// Command atpgd is the ATPG service daemon.  It runs in one of two roles:
//
//	atpgd -role coordinator -listen :9090 -ledger /var/lib/atpgd
//	atpgd -role worker -coordinator http://127.0.0.1:9090 -id w1
//
// A coordinator accepts jobs over HTTP/JSON (see cmd/atpgctl and the atpg
// package's WithRemote option), compiles each submitted circuit once into a
// content-addressed cache, cuts the fault universe into leased work units
// and merges the workers' verified patterns deterministically.  With
// -ledger it journals every job to a JSON-lines file and resumes
// interrupted jobs on restart.
//
// A worker polls the coordinator for leases, runs each unit through the
// bit-parallel generator and streams results back.  Killing a worker is
// safe at any point: its outstanding leases expire and are requeued.
//
// Both roles shut down cleanly on SIGINT/SIGTERM; a worker prints its loop
// counters (leases, units, idle polls, lease errors) on the way out.
//
// Both roles accept -chaos, a comma-separated fault-injection spec (e.g.
// -chaos "seed=7,drop=0.1,sever=0.05,storm-after=200") for resilience
// testing: on a worker the faults hit its HTTP transport, on a coordinator
// they hit ledger appends and the lease clock.  See internal/chaos.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/service"
)

func main() {
	var (
		role = flag.String("role", "coordinator", "process role: coordinator or worker")

		// Coordinator flags.
		listen        = flag.String("listen", "127.0.0.1:9090", "coordinator listen address")
		ledger        = flag.String("ledger", "", "directory for per-job ledger files (empty = no persistence, jobs are not resumable)")
		compactAt     = flag.Int64("compact-watermark", 0, "ledger bytes that trigger a snapshot-and-truncate compaction (0 = 16MB default, negative = only compact on resume)")
		leaseTTL      = flag.Duration("lease", 30*time.Second, "work unit lease time-to-live; expired leases are requeued")
		exchangeCap   = flag.Int("exchange-cap", 4096, "bound on the buffered cross-worker pattern exchange (oldest dropped first)")
		maxActive     = flag.Int("max-active", 4, "jobs generating concurrently; further jobs queue")
		cacheSize     = flag.Int("cache", 0, "compiled-circuit cache capacity (0 = default)")
		unitsPerLease = flag.Int("units-per-lease", 4, "max work units handed out per lease request")

		// Worker flags.
		coordinator = flag.String("coordinator", "http://127.0.0.1:9090", "coordinator base URL (worker role)")
		id          = flag.String("id", "", "worker ID; must be unique per fleet (default: host/pid derived)")
		maxUnits    = flag.Int("max-units", 4, "units requested per lease (worker role)")
		poll        = flag.Duration("poll", 100*time.Millisecond, "lease poll interval when idle (worker role)")

		// Shared.
		chaosSpec = flag.String("chaos", "", "fault-injection spec, e.g. seed=7,drop=0.1,sever=0.05,tear=0.1,storm-after=200 (empty = off)")
	)
	flag.Parse()

	var inj *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atpgd:", err)
			os.Exit(2)
		}
		inj = chaos.New(cfg)
		fmt.Printf("atpgd: chaos injection armed: %s\n", *chaosSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch *role {
	case "coordinator":
		err = runCoordinator(ctx, service.Config{
			LeaseTTL:         *leaseTTL,
			ExchangeCap:      *exchangeCap,
			MaxActive:        *maxActive,
			CacheSize:        *cacheSize,
			UnitsPerLease:    *unitsPerLease,
			LedgerDir:        *ledger,
			CompactWatermark: *compactAt,
			Chaos:            inj,
		}, *listen)
	case "worker":
		wid := *id
		if wid == "" {
			host, _ := os.Hostname()
			wid = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		fmt.Printf("atpgd: worker %s polling %s\n", wid, *coordinator)
		wk := service.NewWorker(service.WorkerConfig{
			Coordinator: *coordinator,
			ID:          wid,
			MaxUnits:    *maxUnits,
			Poll:        *poll,
			Transport:   inj.Transport(nil),
		})
		err = wk.Run(ctx)
		cnt := wk.Counters()
		fmt.Printf("atpgd: worker %s: %d leases, %d units, %d idle polls, %d lease errors\n",
			wid, cnt.Leases, cnt.Units, cnt.IdlePolls, cnt.LeaseErrors)
	default:
		err = fmt.Errorf("unknown role %q (want coordinator or worker)", *role)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "atpgd:", err)
		os.Exit(1)
	}
}

// runCoordinator serves the coordinator until ctx is canceled, then shuts
// the HTTP server down and closes the coordinator — which, with a ledger,
// leaves running jobs resumable by the next start.
func runCoordinator(ctx context.Context, cfg service.Config, listen string) error {
	co, err := service.NewCoordinator(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: listen, Handler: co}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if cfg.LedgerDir != "" {
		fmt.Printf("atpgd: coordinator on %s, ledger in %s\n", listen, cfg.LedgerDir)
	} else {
		fmt.Printf("atpgd: coordinator on %s (no ledger)\n", listen)
	}
	select {
	case err := <-errCh:
		co.Close()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	co.Close()
	return nil
}
