// Command atpgctl submits ATPG jobs to an atpgd coordinator and waits for
// the distributed result.  Its flags mirror cmd/tip so a distributed run is
// launched with the same vocabulary as a local one, and its -out/-statuses
// files use the same formats, so the two are directly diffable:
//
//	tip     -circuit c432 -sim 0 -compact reverse -out local.tests  -statuses local.status
//	atpgctl -circuit c432 -sim 0 -compact reverse -out remote.tests -statuses remote.status
//	diff local.status remote.status && diff local.tests remote.tests
//
// With the interleaved simulation off (-sim 0) both diffs are empty by the
// service's determinism contract, for any worker fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/service"
)

func main() {
	var (
		server      = flag.String("server", "http://127.0.0.1:9090", "coordinator base URL")
		circuitName = flag.String("circuit", "", "built-in circuit name (see cmd/circgen -list)")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		mode        = flag.String("mode", "robust", "test class: robust or nonrobust")
		numFaults   = flag.Int("faults", 256, "number of target faults (0 = all structural faults; beware of path explosion)")
		seed        = flag.Int64("seed", 1995, "seed for fault sampling")
		width       = flag.Int("width", 0, fmt.Sprintf("word width L (1..%d, 0 = default %d)", logic.MaxWordWidth, logic.WordWidth))
		schedule    = flag.String("schedule", "", "dispatch policy on each worker: static or steal")
		escalate    = flag.Int("escalate", 0, "adaptive grouping escalation width W (0 = off)")
		guided      = flag.Bool("guided", false, "testability-guided search")
		backtracks  = flag.Int("backtracks", 64, "backtrack limit per fault (matches cmd/tip's default)")
		noFPTPG     = flag.Bool("no-fptpg", false, "disable fault-parallel generation")
		noAPTPG     = flag.Bool("no-aptpg", false, "disable alternative-parallel generation")
		compactStr  = flag.String("compact", "", "static test-set compaction: none, reverse or full")
		xfill       = flag.String("xfill", "", "don't-care fill for merged pairs: zero, one or random")
		xfillSeed   = flag.Int64("xfill-seed", 1995, "seed for -xfill random")
		sim         = flag.Int("sim", -1, "interleaved fault-simulation interval in patterns (0 = off, -1 = track the word width)")
		out         = flag.String("out", "", "write the merged test set to this file")
		statuses    = flag.String("statuses", "", "write one 'fault<TAB>status' line per target fault (input order) to this file")
		verbose     = flag.Bool("v", false, "stream one line per fault as it settles")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, benchTxt, err := loadCircuit(*circuitName, *benchFile)
	if err != nil {
		fail(err)
	}
	var faults []paths.Fault
	if *numFaults <= 0 {
		faults = paths.EnumerateFaults(c, 0)
	} else {
		faults = paths.SampleFaults(c, *numFaults, *seed)
	}
	opts := service.JobOptions{
		Mode:       *mode,
		WordWidth:  *width,
		Backtracks: *backtracks,
		NoFPTPG:    *noFPTPG,
		NoAPTPG:    *noAPTPG,
		Schedule:   *schedule,
		Escalate:   *escalate,
		Guided:     *guided,
		Compact:    *compactStr,
		XFill:      *xfill,
		XFillSeed:  *xfillSeed,
	}
	if *sim >= 0 {
		opts.SimInterval = sim
	}

	cl := service.NewClient(*server)
	sub, err := cl.SubmitBench(ctx, c.Name, benchTxt, opts, service.EncodeFaults(c, faults))
	if err != nil {
		fail(err)
	}
	fmt.Printf("submitted %s: job %s, %d faults, cache hit %v\n",
		c.Name, sub.JobID, sub.Faults, sub.CacheHit)

	// On interrupt, cancel the job on the coordinator before exiting.
	go func() {
		<-ctx.Done()
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = cl.Cancel(cctx, sub.JobID)
	}()

	if *verbose {
		if err := follow(ctx, cl, sub.JobID); err != nil {
			fail(err)
		}
	} else if _, err := cl.Wait(ctx, sub.JobID, 0); err != nil {
		fail(err)
	}

	resp, err := cl.Results(context.Background(), sub.JobID)
	if err != nil {
		fail(err)
	}
	st, err := cl.Status(context.Background(), sub.JobID)
	if err != nil {
		fail(err)
	}
	if resp.State != "done" {
		fail(fmt.Errorf("job %s ended %s: %s", sub.JobID, resp.State, st.Error))
	}

	fmt.Printf("result: %s\n", resp.Stats)
	fmt.Printf("service: leases=%d requeues=%d duplicates=%d replayed=%d cachehit=%v\n",
		st.Leases, st.Requeues, st.Duplicates, st.Replayed, sub.CacheHit)

	if *out != "" {
		if err := os.WriteFile(*out, []byte(resp.Tests), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote test set to %s\n", *out)
	}
	if *statuses != "" {
		var sb strings.Builder
		for _, r := range resp.Results {
			fmt.Fprintf(&sb, "%s\t%s\n", r.Describe, r.Status)
		}
		if err := os.WriteFile(*statuses, []byte(sb.String()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d fault statuses to %s\n", len(resp.Results), *statuses)
	}
}

// loadCircuit loads exactly one of a built-in profile or a .bench file and
// returns the circuit together with its canonical bench text (what the
// coordinator hashes and compiles).
func loadCircuit(name, file string) (*circuit.Circuit, string, error) {
	switch {
	case name != "" && file != "":
		return nil, "", fmt.Errorf("set only one of -circuit and -bench")
	case name != "":
		c, err := bench.Get(name)
		if err != nil {
			return nil, "", err
		}
		var sb strings.Builder
		if err := circuit.WriteBench(&sb, c); err != nil {
			return nil, "", err
		}
		return c, sb.String(), nil
	case file != "":
		text, err := os.ReadFile(file)
		if err != nil {
			return nil, "", err
		}
		c, err := circuit.ParseBench(file, strings.NewReader(string(text)))
		if err != nil {
			return nil, "", err
		}
		return c, string(text), nil
	}
	return nil, "", fmt.Errorf("set -circuit or -bench")
}

// follow streams the job's settle events, printing one line per fault in
// the same format as tip -v.
func follow(ctx context.Context, cl *service.Client, jobID string) error {
	from := 0
	for {
		ev, err := cl.Events(ctx, jobID, from, 2000)
		if err != nil {
			return err
		}
		for _, w := range ev.Events {
			fmt.Printf("  %-60s %-12s %s\n", w.Describe, w.Status, w.Phase)
		}
		from = ev.Next
		if ev.Done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpgctl:", err)
	os.Exit(1)
}
