// Command experiments reproduces the tables of the paper: robust and
// nonrobust ATPG over the ISCAS85-class suite (Tables 3 and 4), the
// bit-parallel versus single-bit comparison on the ISCAS89-class suite
// (Tables 5 and 6), the comparison against a conventional structural
// generator (Tables 7 and 8), the headline speed-up summary, and the
// ablation studies described in DESIGN.md.
//
// Usage:
//
//	experiments -table 5                # one table at full size
//	experiments -all -quick             # everything, scaled down
//	experiments -summary                # speed-up summary (Section 5 prose)
//	experiments -ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/atpg"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce a single table (3-8)")
		all       = flag.Bool("all", false, "reproduce every table")
		summary   = flag.Bool("summary", false, "print the speed-up summary over Tables 5 and 6")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		grouping  = flag.Bool("grouping", false, "run the grouping ablation: the Tables 5/6 comparison with fault-serial, fixed-wide, adaptive and testability-guided grouping under the incremental and full-sweep engines")
		quick     = flag.Bool("quick", false, "use scaled-down circuits and fewer faults")
		scale     = flag.Float64("scale", 0, "override the circuit scale factor (1.0 = published size)")
		faults    = flag.Int("faults", 0, "override the number of faults sampled per circuit")
		seed      = flag.Int64("seed", 1995, "fault sampling seed")
		workers   = flag.Int("workers", 1, "worker goroutines per generator run (0 = one per core)")
		schedule  = flag.String("schedule", "static", "multi-worker dispatch policy: static or steal")
		escalate  = flag.Int("escalate", 0, "adaptive grouping escalation width W (0 = off)")
		guided    = flag.Bool("guided", false, "testability-guided search: predicted-hard faults skip the first pass, hardest-first unit ordering, auto width when -escalate is 0")
		compactS  = flag.String("compact", "none", "static test-set compaction per run: none, reverse or full")
		xfill     = flag.String("xfill", "zero", "don't-care fill for merged pairs: zero, one or random")
		xfillSeed = flag.Int64("xfill-seed", 1995, "seed for -xfill random")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected runs to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	)
	flag.Parse()

	compactLevel, err := atpg.ParseCompaction(*compactS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fill, err := atpg.ParseXFill(*xfill, *xfillSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	dispatch, err := atpg.ParseSchedule(*schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	baseCfg := func(mode atpg.Mode) atpg.ExperimentConfig {
		cfg := atpg.DefaultExperimentConfig(mode)
		if *quick {
			cfg = atpg.QuickExperimentConfig(mode)
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *faults > 0 {
			cfg.FaultsPerCircuit = *faults
		}
		cfg.Seed = *seed
		cfg.Workers = *workers
		if cfg.Workers <= 0 {
			cfg.Workers = runtime.GOMAXPROCS(0)
		}
		cfg.Compact = compactLevel
		cfg.XFill = fill
		cfg.Schedule = dispatch
		cfg.Escalate = *escalate
		cfg.Guided = *guided
		return cfg
	}

	if *table == 0 && !*all && !*summary && !*ablations && !*grouping {
		fmt.Fprintln(os.Stderr, "experiments: nothing to do; use -table N, -all, -summary, -ablations or -grouping")
		os.Exit(1)
	}

	runTable := func(n int) {
		switch n {
		case 3:
			fmt.Print(atpg.FormatATPGTable("Table 3: robust ATPG for the ISCAS85-class circuits",
				atpg.RunTable3(baseCfg(atpg.Robust))))
		case 4:
			fmt.Print(atpg.FormatATPGTable("Table 4: nonrobust ATPG for the ISCAS85-class circuits",
				atpg.RunTable4(baseCfg(atpg.Nonrobust))))
		case 5:
			fmt.Print(atpg.FormatSpeedupTable("Table 5: bit-parallel vs single-bit generation (robust)",
				atpg.RunTable5(baseCfg(atpg.Robust))))
		case 6:
			fmt.Print(atpg.FormatSpeedupTable("Table 6: bit-parallel vs single-bit generation (nonrobust)",
				atpg.RunTable6(baseCfg(atpg.Nonrobust))))
		case 7:
			fmt.Print(atpg.FormatCompareTable("Table 7: TIP vs structural baseline, nonrobust (L=32)",
				atpg.RunTable7(baseCfg(atpg.Nonrobust))))
		case 8:
			fmt.Print(atpg.FormatCompareTable("Table 8: TIP vs structural baseline, robust (L=32)",
				atpg.RunTable8(baseCfg(atpg.Robust))))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown table %d (want 3-8)\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}

	// runSelected executes the tables, summary and ablations chosen on the
	// command line; the pprof profile below wraps all of it.
	runSelected := func() {
		if *table != 0 {
			runTable(*table)
		}
		if *all {
			for n := 3; n <= 8; n++ {
				runTable(n)
			}
		}
		if *summary {
			rows5 := atpg.RunTable5(baseCfg(atpg.Robust))
			avg5, max5 := atpg.SpeedupSummary(rows5)
			rows6 := atpg.RunTable6(baseCfg(atpg.Nonrobust))
			avg6, max6 := atpg.SpeedupSummary(rows6)
			fmt.Println("Speed-up summary (paper: average about five, maximum up to nine):")
			fmt.Printf("  robust    (Table 5): average %.1fx, maximum %.1fx\n", avg5, max5)
			fmt.Printf("  nonrobust (Table 6): average %.1fx, maximum %.1fx\n", avg6, max6)
			fmt.Println()
		}
		if *grouping {
			fmt.Print(atpg.FormatGroupingTable(
				"Grouping ablation: fault-serial vs fixed-wide vs adaptive vs guided, per implication engine (Tables 5/6 re-measured)",
				atpg.RunGroupingAblation(baseCfg(atpg.Robust))))
			fmt.Println()
		}
		if *ablations {
			cfg := baseCfg(atpg.Nonrobust)
			fmt.Print(atpg.FormatAblationTable("Ablation: word width L", atpg.RunWordWidthAblation(cfg, nil)))
			fmt.Println()
			fmt.Print(atpg.FormatAblationTable("Ablation: FPTPG / APTPG / combined", atpg.RunModeAblation(cfg)))
			fmt.Println()
			fmt.Print(atpg.FormatAblationTable("Ablation: interleaved fault simulation", atpg.RunFaultSimAblation(cfg)))
			fmt.Println()
			fmt.Print(atpg.FormatAblationTable("Ablation: subpath redundancy pruning", atpg.RunPruningAblation(cfg)))
			fmt.Println()
			fmt.Print(atpg.FormatAblationTable("Ablation: sharded-engine workers", atpg.RunWorkerAblation(cfg, nil)))
			fmt.Println()
			fmt.Print(atpg.FormatAblationTable("Ablation: static test-set compaction", atpg.RunCompactionAblation(cfg)))
			fmt.Println()
			est := atpg.RunCoverageEstimate(cfg, "s713", 500)
			if est.Err != nil {
				fmt.Fprintf(os.Stderr, "coverage estimate: %v\n", est.Err)
			} else {
				fmt.Printf("Coverage estimate (NEST-style, %s): %d patterns, %.1f%% of %d sampled faults covered\n",
					est.Circuit, est.Patterns, est.Estimated*100, est.Sampled)
			}
		}
	}

	// The profile covers every table, summary and ablation selected above.
	prof := atpg.ExperimentConfig{CPUProfile: *cpuprof, MemProfile: *memprof}
	if err := prof.Profiled(func() error {
		runSelected()
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
