// Command tip is the bit-parallel path delay fault test pattern generator
// (named after the paper's tool).  It reads a benchmark circuit, selects a
// set of target path delay faults, generates robust or nonrobust two-vector
// tests for them and reports the per-fault outcome.
//
// Usage:
//
//	tip -circuit c432 -mode robust -faults 256
//	tip -bench mydesign.bench -mode nonrobust -faults 1000 -out tests.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name (see cmd/circgen -list)")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		mode        = flag.String("mode", "robust", "test class: robust or nonrobust")
		numFaults   = flag.Int("faults", 256, "number of target faults (0 = all structural faults; beware of path explosion)")
		seed        = flag.Int64("seed", 1995, "seed for fault sampling")
		width       = flag.Int("width", logic.WordWidth, "word width L (1..64); 1 is the single-bit baseline")
		backtracks  = flag.Int("backtracks", 64, "backtrack limit per fault")
		noFPTPG     = flag.Bool("no-fptpg", false, "disable fault-parallel generation")
		noAPTPG     = flag.Bool("no-aptpg", false, "disable alternative-parallel generation")
		out         = flag.String("out", "", "write the generated test set to this file")
		verbose     = flag.Bool("v", false, "print one line per fault")
	)
	flag.Parse()

	c, err := loadCircuit(*circuitName, *benchFile)
	if err != nil {
		fail(err)
	}
	m := sensitize.Robust
	switch *mode {
	case "robust":
	case "nonrobust":
		m = sensitize.Nonrobust
	default:
		fail(fmt.Errorf("unknown mode %q (want robust or nonrobust)", *mode))
	}

	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("structural paths: %s, path delay faults: %s\n",
		paths.CountPaths(c).String(), paths.CountFaults(c).String())

	var faults []paths.Fault
	if *numFaults <= 0 {
		faults = paths.EnumerateFaults(c, 0)
	} else {
		faults = paths.SampleFaults(c, *numFaults, *seed)
	}
	fmt.Printf("target faults: %d (%s)\n", len(faults), m)

	opts := core.DefaultOptions(m)
	opts.WordWidth = *width
	opts.FaultSimInterval = *width
	opts.MaxBacktracks = *backtracks
	opts.UseFPTPG = !*noFPTPG
	opts.UseAPTPG = !*noAPTPG

	g := core.New(c, opts)
	results := g.Run(faults)

	if *verbose {
		for _, r := range results {
			fmt.Printf("  %-60s %-12s %s\n", r.Fault.Describe(c), r.Status, r.Phase)
		}
	}
	st := g.Stats()
	fmt.Printf("result: %s\n", st)
	fmt.Printf("sensitization time: %s, generation time: %s\n", st.SensitizeTime, st.GenerateTime)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := g.TestSet().Write(f); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d test pairs to %s\n", g.TestSet().Len(), *out)
	}
}

func loadCircuit(name, file string) (*circuit.Circuit, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -circuit or -bench, not both")
	case name != "":
		return bench.Get(name)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(file, f)
	default:
		return nil, fmt.Errorf("one of -circuit or -bench is required")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tip:", err)
	os.Exit(1)
}
