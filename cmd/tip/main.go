// Command tip is the bit-parallel path delay fault test pattern generator
// (named after the paper's tool).  It reads a benchmark circuit, selects a
// set of target path delay faults, generates robust or nonrobust two-vector
// tests for them and reports the per-fault outcome.
//
// Usage:
//
//	tip -circuit c432 -mode robust -faults 256
//	tip -bench mydesign.bench -mode nonrobust -faults 1000 -out tests.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/atpg"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name (see cmd/circgen -list)")
		benchFile   = flag.String("bench", "", "path to an ISCAS .bench file")
		mode        = flag.String("mode", "robust", "test class: robust or nonrobust")
		numFaults   = flag.Int("faults", 256, "number of target faults (0 = all structural faults; beware of path explosion)")
		seed        = flag.Int64("seed", 1995, "seed for fault sampling")
		width       = flag.Int("width", atpg.DefaultWordWidth, fmt.Sprintf("word width L (1..%d); 1 is the single-bit baseline, widths above 64 use multi-word planes", atpg.MaxWordWidth))
		workers     = flag.Int("workers", 1, "worker goroutines to shard the fault list across (0 = one per core)")
		schedule    = flag.String("schedule", "static", "multi-worker dispatch policy: static (contiguous pre-split) or steal (work-stealing)")
		escalate    = flag.Int("escalate", 0, "adaptive grouping escalation width W: run every fault fault-serial first, escalate survivors into W-wide groups (0 = off)")
		guided      = flag.Bool("guided", false, "testability-guided search: predicted-hard faults skip the first pass, hardest-first unit ordering, auto-tuned escalation width when -escalate is 0")
		backtracks  = flag.Int("backtracks", 64, "backtrack limit per fault")
		noFPTPG     = flag.Bool("no-fptpg", false, "disable fault-parallel generation")
		noAPTPG     = flag.Bool("no-aptpg", false, "disable alternative-parallel generation")
		compactStr  = flag.String("compact", "none", "static test-set compaction: none, reverse (reverse-order sim dropping) or full (+ compatible-pair merging)")
		xfill       = flag.String("xfill", "zero", "don't-care fill for merged pairs: zero, one or random")
		xfillSeed   = flag.Int64("xfill-seed", 1995, "seed for -xfill random")
		sim         = flag.Int("sim", -1, "interleaved fault-simulation interval in patterns (0 = off, -1 = track the word width)")
		out         = flag.String("out", "", "write the generated test set to this file")
		statuses    = flag.String("statuses", "", "write one 'fault<TAB>status' line per target fault (input order) to this file")
		verbose     = flag.Bool("v", false, "print one line per fault")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the generation run to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	)
	flag.Parse()

	c, err := atpg.LoadCircuit(*circuitName, *benchFile)
	if err != nil {
		fail(err)
	}
	m, err := atpg.ParseMode(*mode)
	if err != nil {
		fail(err)
	}
	level, err := atpg.ParseCompaction(*compactStr)
	if err != nil {
		fail(err)
	}
	fill, err := atpg.ParseXFill(*xfill, *xfillSeed)
	if err != nil {
		fail(err)
	}
	sched, err := atpg.ParseSchedule(*schedule)
	if err != nil {
		fail(err)
	}

	fmt.Printf("circuit: %s\n", c)
	fmt.Printf("structural paths: %s, path delay faults: %s\n",
		c.PathCount().String(), c.FaultCount().String())

	var faults []atpg.Fault
	if *numFaults <= 0 {
		faults = atpg.AllFaults(c, 0)
	} else {
		faults = atpg.SampleFaults(c, *numFaults, *seed)
	}
	fmt.Printf("target faults: %d (%s)\n", len(faults), m)

	engineOpts := []atpg.Option{
		atpg.WithMode(m),
		atpg.WithWordWidth(*width),
		atpg.WithWorkers(*workers),
		atpg.WithSchedule(sched),
		atpg.WithEscalation(*escalate),
		atpg.WithGuidedEscalation(*guided),
		atpg.WithBacktrackLimit(*backtracks),
		atpg.WithFaultParallel(!*noFPTPG),
		atpg.WithAlternativeParallel(!*noAPTPG),
		atpg.WithCompaction(level),
		atpg.WithXFill(fill),
	}
	if *sim >= 0 {
		engineOpts = append(engineOpts, atpg.WithInterleavedSim(*sim))
	}
	e, err := atpg.New(c, engineOpts...)
	if errors.Is(err, atpg.ErrBadWidth) {
		fail(fmt.Errorf("invalid width: %v (valid: -width 1..%d, -escalate 0..%d)",
			err, atpg.MaxWordWidth, atpg.MaxWordWidth))
	}
	if err != nil {
		fail(err)
	}
	if e.Workers() != 1 {
		fmt.Printf("workers: %d (schedule %s)\n", e.Workers(), sched)
	}
	switch {
	case *guided:
		fmt.Printf("testability-guided adaptive grouping, escalation width %s\n",
			widthLabel(*escalate))
	case *escalate > 0:
		fmt.Printf("adaptive grouping: fault-serial first pass, escalation width %d\n", *escalate)
	}

	var results []atpg.Result
	profiled := atpg.ExperimentConfig{CPUProfile: *cpuprofile, MemProfile: *memprofile}
	if err := profiled.Profiled(func() error {
		var runErr error
		results, runErr = e.Run(context.Background(), faults)
		return runErr
	}); err != nil {
		fail(err)
	}

	if *verbose {
		for _, r := range results {
			fmt.Printf("  %-60s %-12s %s\n", c.Describe(r.Fault), r.Status, r.Phase)
		}
	}
	st := e.Stats()
	fmt.Printf("result: %s\n", st)
	fmt.Printf("sensitization time: %s, generation time: %s\n", st.SensitizeTime, st.GenerateTime)
	if *escalate > 0 || *guided {
		fmt.Printf("escalation: %d faults settled fault-serial, %d escalated to width %s\n",
			st.FirstPassSettled, st.Escalated, widthLabel(*escalate))
	}
	if *guided {
		fmt.Printf("guided routing: %d/%d faults predicted hard, first-pass skip rate %.1f%%\n",
			st.PredictedHard, st.Faults, 100*st.SkipRate())
	}
	if e.Workers() != 1 {
		fmt.Printf("scheduling: %s\n", st.Sched)
	}
	if level != atpg.CompactNone {
		fmt.Printf("compaction: %s\n", st.Compaction)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := e.Tests().Write(f); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d test pairs to %s\n", e.Tests().Len(), *out)
	}
	if *statuses != "" {
		f, err := os.Create(*statuses)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		// Status only, not phase: which phase settles a fault can shift with
		// worker interleaving, the classification cannot.
		for _, r := range results {
			fmt.Fprintf(f, "%s\t%s\n", c.Describe(r.Fault), r.Status)
		}
		fmt.Printf("wrote %d fault statuses to %s\n", len(results), *statuses)
	}
}

// widthLabel names an escalation width: the explicit value, or "auto" when
// guided escalation derives it from the score distribution.
func widthLabel(escalate int) string {
	if escalate > 0 {
		return fmt.Sprintf("%d", escalate)
	}
	return "auto"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tip:", err)
	os.Exit(1)
}
