// Package astcheck holds the AST and type inspection helpers shared by the
// atpgvet analyzers: engine-type matching, annotation directives, a
// same-package call graph, and function-scope traversal.
package astcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// IsMethodOn reports whether the call invokes the named method on a
// (pointer to a) named type typeName defined in a package whose import path
// ends with pkgSuffix, and returns the receiver expression.  Matching by
// (package suffix, type, method) instead of the full import path lets
// analysistest fixtures mock the engine types in testdata packages.
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, method string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	named := NamedRecv(sig.Recv().Type())
	if named == nil {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil || !PathHasSuffix(obj.Pkg().Path(), pkgSuffix) {
		return nil, false
	}
	return sel.X, true
}

// NamedRecv strips pointers off a receiver type and returns its named type.
func NamedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// PathHasSuffix reports whether an import path equals suffix or ends with
// "/"+suffix.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// HasAnnotation reports whether the function declaration carries the
// //atpgvet:<name> directive in its doc comment group.
func HasAnnotation(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	directive := "//atpgvet:" + name
	for _, c := range decl.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FuncScope is one function-like body: a declared function/method or a
// function literal.  Nested literals are separate scopes.
type FuncScope struct {
	// Decl is the enclosing declaration (also set for literals, pointing at
	// the declaration the literal appears in, if any).
	Decl *ast.FuncDecl
	// Lit is non-nil for function literal scopes.
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name returns a human-readable name for diagnostics.
func (s *FuncScope) Name() string {
	if s.Lit != nil {
		if s.Decl != nil {
			return "func literal in " + s.Decl.Name.Name
		}
		return "func literal"
	}
	return s.Decl.Name.Name
}

// Scopes returns every function-like scope of the file in source order.
func Scopes(f *ast.File) []*FuncScope {
	var out []*FuncScope
	for _, d := range f.Decls {
		decl, ok := d.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			continue
		}
		out = append(out, &FuncScope{Decl: decl, Body: decl.Body})
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, &FuncScope{Decl: decl, Lit: lit, Body: lit.Body})
			}
			return true
		})
	}
	return out
}

// WalkShallow visits the nodes of body without descending into nested
// function literals, so per-scope checks do not leak across scopes.
func WalkShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return false
		}
		return visit(n)
	})
}

// CallGraph maps every function or method declared in the package to the
// package-local functions it calls directly (static calls only: identifier
// and selector calls that resolve to a declared *types.Func).
type CallGraph struct {
	Decls map[*types.Func]*ast.FuncDecl
	Calls map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the same-package static call graph.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Calls: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = decl
		}
	}
	for fn, decl := range g.Decls {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := Callee(info, call); callee != nil {
				if _, local := g.Decls[callee]; local {
					g.Calls[fn] = append(g.Calls[fn], callee)
				}
			}
			return true
		})
	}
	return g
}

// Callee resolves the static callee of a call, or nil for dynamic calls.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Reachable returns the set of declared functions reachable from the roots
// through package-local static calls, including the roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range g.Calls[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
